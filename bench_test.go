package redotheory_test

// The benchmark harness: one benchmark (or family) per paper figure and
// per experiment in DESIGN.md's index. The paper reports no absolute
// numbers, so the quantities of record are the shapes: who wins, by what
// factor, and how costs scale with history length. EXPERIMENTS.md records
// a run of these next to the paper's claims.

import (
	"fmt"
	"math/rand"
	"testing"

	"redotheory/internal/btree"
	"redotheory/internal/conflict"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/stategraph"
	"redotheory/internal/workload"
	"redotheory/internal/writegraph"
)

// --- Figures 1–3: scenario verdicts (checker + replay costs) ---

func BenchmarkFig1Scenario1Detection(b *testing.B) {
	sc := workload.Scenario1()
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		b.Fatal(err)
	}
	installed := graph.NewSet(sc.Installed...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ig.Explains(sg, installed, sc.CrashState) == nil {
			b.Fatal("scenario 1 accepted")
		}
	}
}

func BenchmarkFig2Scenario2Replay(b *testing.B) {
	sc := workload.Scenario2()
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		b.Fatal(err)
	}
	installed := graph.NewSet(sc.Installed...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ig.Replay(sg, installed, sc.CrashState); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3ExposureAnalysis(b *testing.B) {
	sc := workload.Scenario3()
	cg := conflict.FromOps(sc.Ops...)
	installed := graph.NewSet(sc.Installed...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if install.Exposed(cg, installed, "x") || !install.Exposed(cg, installed, "y") {
			b.Fatal("exposure verdicts changed")
		}
	}
}

// --- Figure 4: conflict (state) graph construction at scale ---

func BenchmarkFig4ConflictStateGraph(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			pages := workload.Pages(32)
			ops := workload.ReadManyWriteOne(n, pages, 3, 42)
			s0 := workload.InitialState(pages)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cg := conflict.FromOps(ops...)
				if _, err := stategraph.FromConflict(cg, s0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// --- Figure 5: installation graph derivation and prefix checks ---

func BenchmarkFig5InstallationGraph(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			pages := workload.Pages(32)
			cg := conflict.FromOps(workload.ReadManyWriteOne(n, pages, 3, 42)...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				install.FromConflict(cg)
			}
		})
	}
}

func BenchmarkFig5PrefixCheck(b *testing.B) {
	pages := workload.Pages(32)
	cg := conflict.FromOps(workload.ReadManyWriteOne(5000, pages, 3, 42)...)
	ig := install.FromConflict(cg)
	// Half the history, closed into a prefix.
	half := graph.NewSet[model.OpID]()
	for i, id := range cg.OpIDs() {
		if i < 2500 {
			half.Add(id)
		}
	}
	prefix := ig.DAG().PrefixClosure(half)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ig.IsPrefix(prefix) {
			b.Fatal("closure is not a prefix")
		}
	}
}

// --- Figure 6: the abstract recovery procedure ---

func BenchmarkFig6Recover(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			pages := workload.Pages(32)
			s0 := workload.InitialState(pages)
			ops := workload.SinglePage(n, pages, 42, false)
			lg := core.NewLog()
			for _, op := range ops {
				lg.Append(op)
			}
			redo := func(*model.Op, *model.State, *core.Log, core.Analysis) bool { return true }
			none := graph.NewSet[model.OpID]()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Recover(s0.Clone(), lg, none, redo, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "replays/s")
		})
	}
}

// --- Figure 7: write graph mutation throughput ---

func BenchmarkFig7WriteGraphCollapse(b *testing.B) {
	pages := workload.Pages(16)
	ops := workload.SinglePage(512, pages, 42, false)
	cg := conflict.FromOps(ops...)
	sg, err := stategraph.FromConflict(cg, workload.InitialState(pages))
	if err != nil {
		b.Fatal(err)
	}
	ig := install.FromConflict(cg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := writegraph.FromInstallation(ig, sg)
		// Collapse each page's chain of nodes pairwise, as a cache with
		// one copy per page does.
		collapses := 0
		for _, p := range pages {
			for {
				ws := g.Writers(model.Var(p))
				if len(ws) < 2 {
					break
				}
				if _, err := g.Collapse(ws[0], ws[1]); err != nil {
					b.Fatal(err)
				}
				collapses++
			}
		}
		if i == 0 {
			b.ReportMetric(float64(collapses), "collapses/op")
		}
	}
}

func BenchmarkFig7WriteGraphInstallDrain(b *testing.B) {
	pages := workload.Pages(16)
	ops := workload.SinglePage(256, pages, 42, false)
	cg := conflict.FromOps(ops...)
	sg, err := stategraph.FromConflict(cg, workload.InitialState(pages))
	if err != nil {
		b.Fatal(err)
	}
	ig := install.FromConflict(cg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := writegraph.FromInstallation(ig, sg)
		for {
			m := g.UninstalledMinimal()
			if len(m) == 0 {
				break
			}
			if err := g.Install(m[0]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 8 / E10: B-tree splits under the two logging strategies ---

func benchBTree(b *testing.B, strategy btree.SplitStrategy, mk func() btree.Executor, statsOf func() method.Stats) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	b.ResetTimer()
	var lastBytes int
	for i := 0; i < b.N; i++ {
		tr := btree.New(mk(), strategy, 32, 1)
		for _, k := range keys {
			if err := tr.Insert(k); err != nil {
				b.Fatal(err)
			}
		}
		lastBytes = statsOf().LogBytes
	}
	b.ReportMetric(float64(lastBytes), "logbytes/1k-inserts")
}

func BenchmarkFig8BTreeSplitPhysiological(b *testing.B) {
	var db *method.Physiological
	benchBTree(b, btree.PhysiologicalSplit,
		func() btree.Executor { db = method.NewPhysiological(model.NewState()); return db },
		func() method.Stats { return db.Stats() })
}

func BenchmarkFig8BTreeSplitGeneralized(b *testing.B) {
	var db *method.GenLSN
	benchBTree(b, btree.GeneralizedSplit,
		func() btree.Executor { db = method.NewGenLSN(model.NewState()); return db },
		func() method.Stats { return db.Stats() })
}

// --- E9: full crash/recovery cycles per method ---

func benchMethodRecovery(b *testing.B, name string, mk sim.Factory) {
	pages := workload.Pages(16)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod(name, 200, pages, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(mk, sim.Config{
			Ops: ops, Initial: s0, CrashAfter: 150, Seed: int64(i), SkipChecker: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered {
			b.Fatal("recovery diverged")
		}
	}
}

func BenchmarkRecoveryLogical(b *testing.B) {
	benchMethodRecovery(b, "logical", func(s *model.State) method.DB { return method.NewLogical(s) })
}

func BenchmarkRecoveryPhysical(b *testing.B) {
	benchMethodRecovery(b, "physical", func(s *model.State) method.DB { return method.NewPhysical(s) })
}

func BenchmarkRecoveryPhysiological(b *testing.B) {
	benchMethodRecovery(b, "physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) })
}

func BenchmarkRecoveryGenLSN(b *testing.B) {
	benchMethodRecovery(b, "genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) })
}

func BenchmarkRecoveryPhysiologicalDPT(b *testing.B) {
	benchMethodRecovery(b, "physiological+dpt", func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) })
}

func BenchmarkRecoveryGenLSNMV(b *testing.B) {
	benchMethodRecovery(b, "genlsn+mv", func(s *model.State) method.DB { return method.NewGenLSNMV(s) })
}

// --- Parallel redo recovery: partitioned replay vs Figure 6 ---

// heavyCrashedDB builds one crashed physiological DB: heavy single-page
// operations over nPages pages, log forced, no page flushes — so the
// whole history is uninstalled, the redo set is everything, and the
// partition planner finds one component per page. rounds controls how
// much recomputation each replayed operation costs.
func heavyCrashedDB(tb testing.TB, nOps, nPages, rounds int) method.DB {
	tb.Helper()
	pages := workload.Pages(nPages)
	s0 := workload.InitialState(pages)
	ops := workload.HeavySinglePage(nOps, pages, rounds, 42)
	db := method.NewPhysiological(s0)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			tb.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	return db
}

// BenchmarkRecoveryParallel compares sequential Recover against
// RecoverParallel at increasing worker counts on a multi-component
// fixture. Recovery reads only fresh projections of the crashed DB
// (StableState, StableLog), so one fixture serves every sub-benchmark.
func BenchmarkRecoveryParallel(b *testing.B) {
	db := heavyCrashedDB(b, 512, 16, 400)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := method.Recover(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := method.RecoverParallel(db, method.ParallelOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryParallelSkewed is the adversarial shape: a Zipf-hot
// page concentrates most of the redo set into one component, bounding
// the speedup by the critical path (Amdahl's law for redo).
func BenchmarkRecoveryParallelSkewed(b *testing.B) {
	pages := workload.Pages(16)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(512, pages, 42, true)
	db := method.NewPhysiological(s0)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			b.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := method.Recover(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCampaignParallel measures the fault campaign on a worker pool
// against the sequential sweep of the same matrix.
func BenchmarkCampaignParallel(b *testing.B) {
	mkConfig := func(workers int) sim.CampaignConfig {
		return sim.CampaignConfig{
			Methods: []sim.NamedFactory{
				{Name: "physiological", New: func(s *model.State) method.DB { return method.NewPhysiological(s) }},
				{Name: "genlsn", New: func(s *model.State) method.DB { return method.NewGenLSN(s) }},
			},
			NumOps:       10,
			NumPages:     4,
			Seeds:        []int64{1, 2},
			TruncateProb: 0.5,
			Workers:      workers,
		}
	}
	for _, workers := range []int{0, 4} {
		name := "sequential"
		if workers > 0 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := sim.Campaign(mkConfig(workers))
				if err != nil {
					b.Fatal(err)
				}
				if sim.SummarizeCampaign(rs).Silent != 0 {
					b.Fatal("silent corruption in benchmark campaign")
				}
			}
		})
	}
}

// BenchmarkMVCacheDrain measures version-at-a-time draining of a cache
// full of crosswise dependencies, the multi-version extension's worst
// case.
func BenchmarkMVCacheDrain(b *testing.B) {
	pages := workload.Pages(8)
	s0 := workload.InitialState(pages)
	ops := workload.ReadManyWriteOne(400, pages, 4, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := method.NewGenLSNMV(s0)
		for _, op := range ops {
			if err := db.Exec(op); err != nil {
				b.Fatal(err)
			}
		}
		for db.FlushOne() {
		}
	}
}

// BenchmarkRestartInstallingRecovery measures the restart-recovery path
// (persisting redone pages as it goes).
func BenchmarkRestartInstallingRecovery(b *testing.B) {
	pages := workload.Pages(16)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(500, pages, 42, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := method.NewPhysiological(s0)
		for _, op := range ops {
			if err := db.Exec(op); err != nil {
				b.Fatal(err)
			}
		}
		db.FlushLog()
		db.Crash()
		b.StartTimer()
		if _, done, err := method.RecoverInstalling(db, -1); err != nil || !done {
			b.Fatal(err)
		}
	}
}

// --- E12: theory-layer costs at scale ---

func BenchmarkExposedVarsAnalysis(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			pages := workload.Pages(64)
			cg := conflict.FromOps(workload.ReadManyWriteOne(n, pages, 3, 42)...)
			ig := install.FromConflict(cg)
			half := graph.NewSet[model.OpID]()
			for i, id := range cg.OpIDs() {
				if i < n/2 {
					half.Add(id)
				}
			}
			prefix := ig.DAG().PrefixClosure(half)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				install.ExposedVars(cg, prefix)
			}
		})
	}
}

func BenchmarkInvariantCheck(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			pages := workload.Pages(32)
			s0 := workload.InitialState(pages)
			ops := workload.SinglePage(n, pages, 42, false)
			lg := core.NewLog()
			for _, op := range ops {
				lg.Append(op)
			}
			ck, err := core.NewChecker(lg, s0)
			if err != nil {
				b.Fatal(err)
			}
			state := ck.FinalState()
			all := lg.Operations()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := ck.CheckInstalled(state, all); !rep.OK {
					b.Fatal(rep.Summary())
				}
			}
		})
	}
}

func BenchmarkReplayTheorem3(b *testing.B) {
	pages := workload.Pages(32)
	s0 := workload.InitialState(pages)
	ops := workload.ReadManyWriteOne(2000, pages, 3, 42)
	cg := conflict.FromOps(ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, s0)
	if err != nil {
		b.Fatal(err)
	}
	none := graph.NewSet[model.OpID]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ig.Replay(sg, none, s0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2000*float64(b.N)/b.Elapsed().Seconds(), "replays/s")
}

// --- Ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblationExposureChainVsReachability compares the chain-walk
// exposure analysis against the brute-force reachability definition it
// is proven equivalent to.
func BenchmarkAblationExposureChainVsReachability(b *testing.B) {
	pages := workload.Pages(16)
	cg := conflict.FromOps(workload.ReadManyWriteOne(400, pages, 3, 42)...)
	ig := install.FromConflict(cg)
	half := graph.NewSet[model.OpID]()
	for i, id := range cg.OpIDs() {
		if i < 200 {
			half.Add(id)
		}
	}
	prefix := ig.DAG().PrefixClosure(half)
	b.Run("chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range cg.Vars() {
				install.Exposed(cg, prefix, x)
			}
		}
	})
	b.Run("reachability", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range cg.Vars() {
				install.ExposedByReachability(cg, prefix, x)
			}
		}
	})
}

// BenchmarkAblationMinimalDirectVsReachability compares the direct-edge
// minimal-uninstalled computation against the full path-order reference.
func BenchmarkAblationMinimalDirectVsReachability(b *testing.B) {
	pages := workload.Pages(16)
	cg := conflict.FromOps(workload.ReadManyWriteOne(300, pages, 3, 42)...)
	ig := install.FromConflict(cg)
	half := graph.NewSet[model.OpID]()
	for i, id := range cg.OpIDs() {
		if i < 150 {
			half.Add(id)
		}
	}
	prefix := ig.DAG().PrefixClosure(half)
	complement := graph.NewSet[model.OpID]()
	for _, id := range cg.OpIDs() {
		if !prefix.Has(id) {
			complement.Add(id)
		}
	}
	b.Run("direct-edges", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ig.MinimalUninstalled(prefix)
		}
	})
	b.Run("reachability", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cg.DAG().MinimalByReachability(complement)
		}
	})
}

// --- E11: legacy installation graph derivation ---

func BenchmarkLegacyInstallationGraph(b *testing.B) {
	pages := workload.Pages(16)
	cg := conflict.FromOps(workload.AnyShape(2000, pages, 42)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		install.LegacyFromConflict(cg)
	}
}
