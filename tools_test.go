package redotheory_test

// End-to-end tests of the command-line tools: build each binary once,
// then drive it the way EXPERIMENTS.md and the README do.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var buildOnce sync.Once
var binDir string
var buildErr error

func builtTool(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "redotheory-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"redograph", "redosim", "redocheck", "redofuzz", "redotrace", "redostats"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return filepath.Join(binDir, name)
}

func runTool(t *testing.T, name string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(builtTool(t, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, buf.String())
	}
	return buf.String(), code
}

func TestRedographFigures(t *testing.T) {
	out, code := runTool(t, "redograph", "", "-figure", "5")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"prefix counts: installation graph 5, conflict graph 4",
		"dropped:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 output missing %q", want)
		}
	}
	out, code = runTool(t, "redograph", "", "-figure", "8", "-dot")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"write graph (same-variable writers collapsed):",
		"legal install sequence:",
		"digraph writegraph",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 8 output missing %q", want)
		}
	}
	out, code = runTool(t, "redograph", "", "-scenario", "H,J")
	if code != 0 || !strings.Contains(out, "Section 5 (H,J)") {
		t.Errorf("-scenario lookup failed (exit %d)", code)
	}
	if _, code := runTool(t, "redograph", "", "-scenario", "nonexistent"); code == 0 {
		t.Error("unknown scenario accepted")
	}
	out, code = runTool(t, "redograph", "", "-all")
	if code != 0 || !strings.Contains(out, "Scenario 1") || !strings.Contains(out, "Figure 8") {
		t.Errorf("-all output incomplete (exit %d)", code)
	}
	if out, code = runTool(t, "redograph", "", "-figure", "99"); code == 0 {
		t.Errorf("unknown figure accepted:\n%s", out)
	}
}

func TestRedosimMatrix(t *testing.T) {
	out, code := runTool(t, "redosim", "", "-matrix", "-ops", "15", "-pages", "5")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: all methods recovered") {
		t.Errorf("matrix did not pass:\n%s", out)
	}
	for _, m := range []string{"logical", "physical", "physiological", "physiological+dpt", "genlsn", "genlsn+mv"} {
		if !strings.Contains(out, m) {
			t.Errorf("matrix missing method %s", m)
		}
	}
}

func TestRedosimSplitLog(t *testing.T) {
	out, code := runTool(t, "redosim", "", "-experiment", "splitlog")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "Section 6.4") {
		t.Errorf("splitlog output unexpected:\n%s", out)
	}
}

func TestRedosimWALFault(t *testing.T) {
	out, code := runTool(t, "redosim", "", "-walfault", "-ops", "25", "-pages", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "the checker catches write-ahead-log violations") {
		t.Errorf("walfault output unexpected:\n%s", out)
	}
}

func TestRedosimSingleRun(t *testing.T) {
	out, code := runTool(t, "redosim", "", "-method", "genlsn", "-ops", "20", "-crash", "12")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"recovered      true", "invariant ok   true"} {
		if !strings.Contains(out, want) {
			t.Errorf("single run missing %q:\n%s", want, out)
		}
	}
	if _, code := runTool(t, "redosim", "", "-method", "bogus"); code == 0 {
		t.Error("unknown method accepted")
	}
}

func TestRedocheckRoundTrip(t *testing.T) {
	example, code := runTool(t, "redocheck", "", "-example")
	if code != 0 {
		t.Fatalf("-example failed")
	}
	out, code := runTool(t, "redocheck", example, "-v", "-")
	if code != 0 {
		t.Fatalf("healthy trace rejected (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("output = %s", out)
	}
	// A violating trace exits 1 with a diagnosis.
	bad := strings.Replace(example, `"installed": [2]`, `"installed": [1, 2]`, 1)
	// Installing both with only x in the state: y missing but exposed.
	out, code = runTool(t, "redocheck", bad, "-")
	if code != 1 {
		t.Fatalf("violating trace exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATED") {
		t.Errorf("output = %s", out)
	}
	// Garbage input is a usage error.
	if _, code := runTool(t, "redocheck", "not json", "-"); code == 0 {
		t.Error("garbage accepted")
	}
}

func TestRedosimEmitTracePipesIntoRedocheck(t *testing.T) {
	traceJSON, code := runTool(t, "redosim", "", "-emit-trace", "-method", "genlsn", "-ops", "20", "-crash", "14")
	if code != 0 {
		t.Fatalf("emit-trace exit %d:\n%s", code, traceJSON)
	}
	out, code := runTool(t, "redocheck", traceJSON, "-")
	if code != 0 || !strings.Contains(out, "HOLDS") {
		t.Errorf("piped trace verdict (exit %d): %s", code, out)
	}
	if _, code := runTool(t, "redosim", "", "-emit-trace"); code == 0 {
		t.Error("emit-trace without -method/-crash accepted")
	}
}

func TestRedofuzzSmokeGrid(t *testing.T) {
	out, code := runTool(t, "redofuzz", "", "-seeds", "1", "-histories", "1", "-ops", "8")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"all cells agree", "partition shapes", "redo-set sizes"} {
		if !strings.Contains(out, want) {
			t.Errorf("fuzz output missing %q:\n%s", want, out)
		}
	}
}

func TestRedofuzzReproReplay(t *testing.T) {
	// The checked-in walkthrough artifact replays deterministically: the
	// recorded disagreement came from a test-only planted bug, so the
	// real oracle passes the cell — twice, with identical output.
	path := filepath.Join("examples", "fuzzrepro", "repro.json")
	first, code := runTool(t, "redofuzz", "", "-repro", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, first)
	}
	if !strings.Contains(first, "cell passes") {
		t.Errorf("replay output unexpected:\n%s", first)
	}
	second, code := runTool(t, "redofuzz", "", "-repro", path)
	if code != 0 || first != second {
		t.Errorf("replay is not deterministic:\n%s\nvs\n%s", first, second)
	}

	// A malformed artifact is a usage error, not a pass.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"bogus"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runTool(t, "redofuzz", "", "-repro", bad); code == 0 {
		t.Errorf("malformed artifact accepted:\n%s", out)
	}
}

func TestRedosimTracePipesIntoRedotrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out, code := runTool(t, "redosim", "", "-trace", trace, "-ops", "16", "-pages", "4")
	if code != 0 {
		t.Fatalf("redosim -trace exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "trace written to") {
		t.Errorf("redosim -trace output unexpected:\n%s", out)
	}

	out, code = runTool(t, "redotrace", "", "-check", trace)
	if code != 0 || !strings.Contains(out, "valid redotheory/trace/v1 trace") {
		t.Fatalf("redotrace -check verdict (exit %d): %s", code, out)
	}
	out, code = runTool(t, "redotrace", "", trace)
	if code != 0 {
		t.Fatalf("redotrace exit %d:\n%s", code, out)
	}
	for _, want := range []string{"critical path", "stragglers", "timeline", "supervised"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}

	chrome := filepath.Join(dir, "chrome.json")
	out, code = runTool(t, "redotrace", "", "-chrome", chrome, trace)
	if code != 0 || !strings.Contains(out, "Chrome trace-event JSON") {
		t.Fatalf("redotrace -chrome (exit %d): %s", code, out)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome export carries no events")
	}

	// A malformed trace is rejected in every mode.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"bogus","events":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runTool(t, "redotrace", "", "-check", bad); code == 0 {
		t.Errorf("malformed trace accepted:\n%s", out)
	}
}

func TestRedotraceCheckedInExample(t *testing.T) {
	// The walkthrough trace under examples/ stays loadable and profilable.
	path := filepath.Join("examples", "tracing", "trace.json")
	out, code := runTool(t, "redotrace", "", "-check", path)
	if code != 0 || !strings.Contains(out, "valid redotheory/trace/v1 trace") {
		t.Fatalf("checked-in trace invalid (exit %d): %s", code, out)
	}
	out, code = runTool(t, "redotrace", "", "-top", "5", "-width", "64", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"critical path", "stragglers", "timeline", "component"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

func TestRedostatsTopRoutesOnSchema(t *testing.T) {
	dir := t.TempDir()

	// Trace input: slowest spans.
	trace := filepath.Join("examples", "tracing", "trace.json")
	out, code := runTool(t, "redostats", "", "-top", "5", trace)
	if code != 0 || !strings.Contains(out, "spans:") {
		t.Fatalf("trace -top verdict (exit %d): %s", code, out)
	}

	// Metrics input: slowest (method, phase) totals.
	metrics := filepath.Join(dir, "metrics.json")
	if out, code := runTool(t, "redosim", "", "-matrix", "-ops", "12", "-pages", "4", "-metrics", metrics); code != 0 {
		t.Fatalf("redosim -metrics exit %d:\n%s", code, out)
	}
	out, code = runTool(t, "redostats", "", "-top", "5", metrics)
	if code != 0 || !strings.Contains(out, "(method, phase) totals:") {
		t.Fatalf("metrics -top verdict (exit %d): %s", code, out)
	}

	// Unknown schema: exit 1 naming both families.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"bogus"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runTool(t, "redostats", "", "-top", "5", bad)
	if code == 0 {
		t.Errorf("unknown schema accepted:\n%s", out)
	}
}

func TestToolsCleanup(t *testing.T) {
	t.Cleanup(func() {
		if binDir != "" {
			os.RemoveAll(binDir)
		}
	})
}
