module redotheory

go 1.22
