// Command redobench measures parallel redo recovery against the
// sequential Figure 6 procedure on a large multi-component fixture and
// writes the results as JSON (the BENCH_parallel.json artifact):
//
//	redobench -out BENCH_parallel.json
//
// The fixture is the heavy single-page workload: every page's operation
// chain is an independent component of the redo partition, and each
// replayed operation performs real recomputation, so the benchmark
// exercises the partitioned engine rather than scheduling overhead.
//
// The command enforces the perf contract and exits non-zero when it is
// broken:
//
//   - with ≥2 CPUs available, parallel recovery at the widest worker
//     count must beat sequential recovery (speedup > 1);
//   - on a single CPU, where no wall-clock speedup is physically
//     possible, parallel recovery must stay within a small overhead
//     tolerance of sequential — the engine may not make recovery worse
//     on the hardware it happens to land on;
//   - with -baseline pointing at a checked-in report, allocs_per_op may
//     not regress more than -allocs.tolerance (default 10%) against it,
//     for sequential recovery and for every matching worker count;
//   - instrumented (metrics-only recorder) and traced (full event
//     stream into a flight-recorder ring) recovery may not exceed
//     -obs.tolerance and -trace.tolerance times a bare run measured in
//     interleaved repetitions with it (both default 1.05) — adjacency
//     keeps machine drift out of the ratio.
//
// With -trace.out the command additionally runs one fully traced
// parallel recovery on the fixture and writes the causal trace
// artifact for redotrace to profile.
//
// With -baseline the command also prints a delta table (time and
// allocations against the baseline) and carries the baseline's trend
// history forward: each report embeds a "history" array of prior runs'
// num_cpu, gomaxprocs, and allocation numbers, so the checked-in
// artifact records how the hot path evolved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"redotheory/internal/method"
	"redotheory/internal/obs"
	"redotheory/internal/rtrace"
	"redotheory/internal/trendlog"
	"redotheory/internal/workload"
)

// measurement is one benchmarked configuration.
type measurement struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers,omitempty"`
	NsPerOp int64   `json:"ns_per_op"`
	Runs    int     `json:"runs"`
	Bytes   int64   `json:"bytes_per_op"`
	Allocs  int64   `json:"allocs_per_op"`
	Speedup float64 `json:"speedup_vs_sequential,omitempty"`
}

// report is the BENCH_parallel.json schema.
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Fixture     struct {
		Ops        int    `json:"ops"`
		Pages      int    `json:"pages"`
		Rounds     int    `json:"compute_rounds"`
		Method     string `json:"method"`
		Components int    `json:"components"`
		Largest    int    `json:"largest_component"`
	} `json:"fixture"`
	Sequential measurement   `json:"sequential"`
	Parallel   []measurement `json:"parallel"`
	// Instrumentation is the telemetry overhead experiment: sequential
	// recovery with a metrics-only recorder attached (no event sink)
	// versus the uninstrumented baseline.
	Instrumentation struct {
		Observed  measurement `json:"observed"`
		Ratio     float64     `json:"ratio_vs_uninstrumented"`
		Tolerance float64     `json:"tolerance"`
	} `json:"instrumentation"`
	// Tracing is the causal-tracing overhead experiment: the same
	// sequential recovery with full tracing on — a recorder sinking
	// span/verdict events into a bounded flight-recorder ring, the
	// always-on-capable configuration — versus the untraced baseline.
	Tracing struct {
		Observed  measurement `json:"observed"`
		Ratio     float64     `json:"ratio_vs_untraced"`
		Tolerance float64     `json:"tolerance"`
	} `json:"tracing"`
	// History is the allocation trend: one entry per prior benchmark
	// run, carried forward from the -baseline report (oldest first,
	// deduped and capped by trendlog.Append).
	History []trend `json:"history,omitempty"`
	Verdict string  `json:"verdict"`
}

// trend is one historical run in the report's trend log.
type trend struct {
	GeneratedAt string `json:"generated_at"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	SeqNsPerOp  int64  `json:"sequential_ns_per_op"`
	SeqAllocs   int64  `json:"sequential_allocs_per_op"`
	ParNsPerOp  int64  `json:"parallel_ns_per_op"`
	ParAllocs   int64  `json:"parallel_allocs_per_op"`
	ParWorkers  int    `json:"parallel_workers"`
}

// trendOf summarises a report as a trend entry, using its widest
// parallel measurement.
func trendOf(r *report) trend {
	t := trend{
		GeneratedAt: r.GeneratedAt,
		NumCPU:      r.NumCPU,
		GoMaxProcs:  r.GoMaxProcs,
		SeqNsPerOp:  r.Sequential.NsPerOp,
		SeqAllocs:   r.Sequential.Allocs,
	}
	if n := len(r.Parallel); n > 0 {
		wide := r.Parallel[n-1]
		t.ParNsPerOp = wide.NsPerOp
		t.ParAllocs = wide.Allocs
		t.ParWorkers = wide.Workers
	}
	return t
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output path for the JSON report")
	nOps := flag.Int("ops", 512, "operations in the fixture log")
	nPages := flag.Int("pages", 16, "pages (= independent components) in the fixture")
	rounds := flag.Int("rounds", 400, "recomputation rounds per replayed operation")
	tolerance := flag.Float64("tolerance", 1.25, "single-CPU gate: max allowed parallel/sequential time ratio")
	obsTolerance := flag.Float64("obs.tolerance", 1.05, "instrumentation gate: max allowed instrumented/uninstrumented time ratio")
	traceTolerance := flag.Float64("trace.tolerance", 1.05, "tracing gate: max allowed traced/untraced time ratio (tracing into the flight-recorder ring)")
	traceOut := flag.String("trace.out", "", "also run one traced parallel recovery on the fixture and write the trace artifact here (redotrace's input)")
	baseline := flag.String("baseline", "", "checked-in report to gate allocations against and inherit trend history from")
	allocsTolerance := flag.Float64("allocs.tolerance", 1.10, "baseline gate: max allowed allocs_per_op ratio vs the baseline")
	reps := flag.Int("reps", 3, "benchmark repetitions per configuration; the fastest is reported (damps scheduler noise in the ratio gates)")
	debugAddr := flag.String("debug.addr", "", "serve net/http/pprof, expvar, and /metrics on this address while benchmarking (e.g. localhost:6060)")
	flag.Parse()

	var base *report
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("reading baseline: %w", err))
		}
		base = new(report)
		if err := json.Unmarshal(data, base); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baseline, err))
		}
	}

	benchRec := obs.New()
	if *debugAddr != "" {
		_, addr, err := obs.ServeDebug(*debugAddr, func() any {
			s := benchRec.Snapshot()
			return &s
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "redobench: debug server (pprof, expvar, /metrics) on http://%s\n", addr)
	}

	pages := workload.Pages(*nPages)
	s0 := workload.InitialState(pages)
	ops := workload.HeavySinglePage(*nOps, pages, *rounds, 42)
	db := method.NewPhysiological(s0)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()

	// One recovery up front: sanity-check the fixture shape and the
	// parallel engine's agreement with the sequential procedure before
	// timing anything.
	seq, err := method.Recover(db)
	if err != nil {
		fatal(err)
	}
	probe, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 4})
	if err != nil {
		fatal(err)
	}
	if err := probe.SameOutcome(seq); err != nil {
		fatal(fmt.Errorf("parallel recovery diverged from sequential: %w", err))
	}

	var rep report
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.Fixture.Ops = *nOps
	rep.Fixture.Pages = *nPages
	rep.Fixture.Rounds = *rounds
	rep.Fixture.Method = db.Name()
	rep.Fixture.Components = probe.Plan.Components
	rep.Fixture.Largest = probe.Plan.Largest

	rep.Sequential = measure("sequential", 0, *reps, func() error {
		_, err := method.Recover(db)
		return err
	})

	workerCounts := []int{1, 2, 4, 8}
	for _, w := range workerCounts {
		w := w
		m := measure(fmt.Sprintf("workers=%d", w), w, *reps, func() error {
			_, err := method.RecoverParallel(db, method.ParallelOptions{Workers: w})
			return err
		})
		m.Speedup = round3(float64(rep.Sequential.NsPerOp) / float64(m.NsPerOp))
		rep.Parallel = append(rep.Parallel, m)
	}

	// Telemetry overhead: the same sequential recovery with a live
	// metrics recorder (counters, phase spans; no event sink — the
	// always-on configuration). The gate keeps instrumentation honest:
	// observability may not tax recovery beyond the tolerance.
	bareFn := func() error {
		_, err := method.Recover(db)
		return err
	}
	_, instrumented, obsRatio := measurePair("sequential", "sequential+obs", *reps, bareFn, func() error {
		_, err := method.RecoverObserved(db, benchRec)
		return err
	})
	rep.Instrumentation.Observed = instrumented
	rep.Instrumentation.Ratio = round3(obsRatio)
	rep.Instrumentation.Tolerance = *obsTolerance

	// Tracing overhead: the same recovery with the event stream fully
	// on, sinking into a bounded flight ring — what a deployment would
	// leave attached permanently. The gate keeps the causal-tracing
	// layer always-on-capable: spans, ids, and timestamps may not tax
	// recovery beyond the tolerance.
	traceRec := obs.New()
	traceRec.SetSink(obs.NewFlightRecorder(4096))
	_, traced, traceRatio := measurePair("sequential", "sequential+trace", *reps, bareFn, func() error {
		_, err := method.RecoverObserved(db, traceRec)
		return err
	})
	traceRec.SetSink(nil)
	rep.Tracing.Observed = traced
	rep.Tracing.Ratio = round3(traceRatio)
	rep.Tracing.Tolerance = *traceTolerance

	wide := rep.Parallel[len(rep.Parallel)-1]
	fail := ""
	if rep.Instrumentation.Ratio > *obsTolerance {
		fail = fmt.Sprintf("instrumented recovery is %.3fx uninstrumented, over the %.2fx tolerance", rep.Instrumentation.Ratio, *obsTolerance)
	}
	if rep.Tracing.Ratio > *traceTolerance && fail == "" {
		fail = fmt.Sprintf("traced recovery is %.3fx untraced, over the %.2fx tolerance", rep.Tracing.Ratio, *traceTolerance)
	}
	if base != nil {
		// Inherit the baseline's trend log and append the baseline run
		// itself, so the committed artifact accumulates one entry per
		// regenerate.
		rep.History = trendlog.Append(base.History,
			func(t trend) string { return t.GeneratedAt }, trendOf(base))
		if msg := gateAllocs(&rep, base, *allocsTolerance); msg != "" && fail == "" {
			fail = msg
		}
	}
	if rep.GoMaxProcs >= 2 {
		best := 0.0
		for _, m := range rep.Parallel {
			if m.Workers >= 4 && m.Speedup > best {
				best = m.Speedup
			}
		}
		if best <= 1.0 {
			fail = fmt.Sprintf("parallel recovery at ≥4 workers is not faster than sequential (best speedup %.3f) on %d CPUs", best, rep.GoMaxProcs)
		} else {
			rep.Verdict = fmt.Sprintf("ok: best speedup %.3fx at ≥4 workers on %d CPUs", best, rep.GoMaxProcs)
		}
	} else {
		ratio := float64(wide.NsPerOp) / float64(rep.Sequential.NsPerOp)
		if ratio > *tolerance {
			fail = fmt.Sprintf("single CPU: parallel recovery is %.2fx sequential, over the %.2fx tolerance", ratio, *tolerance)
		} else {
			rep.Verdict = fmt.Sprintf("ok: single CPU, parallel within %.2fx of sequential (no speedup possible)", ratio)
		}
	}
	if fail != "" {
		rep.Verdict = "FAIL: " + fail
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("cpus: %d (GOMAXPROCS %d)\n", rep.NumCPU, rep.GoMaxProcs)
	fmt.Printf("fixture: %d ops over %d pages → %d components (largest %d)\n",
		*nOps, *nPages, rep.Fixture.Components, rep.Fixture.Largest)
	fmt.Printf("sequential: %s\n", fmtNs(rep.Sequential.NsPerOp))
	for _, m := range rep.Parallel {
		fmt.Printf("%-10s  %s  (%.3fx)\n", m.Name, fmtNs(m.NsPerOp), m.Speedup)
	}
	fmt.Printf("instrumented: %s (%.3fx of uninstrumented, tolerance %.2fx)\n",
		fmtNs(rep.Instrumentation.Observed.NsPerOp), rep.Instrumentation.Ratio, *obsTolerance)
	fmt.Printf("traced:       %s (%.3fx of untraced, tolerance %.2fx)\n",
		fmtNs(rep.Tracing.Observed.NsPerOp), rep.Tracing.Ratio, *traceTolerance)
	if *traceOut != "" {
		if err := writeTrace(db, *traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace artifact %s\n", *traceOut)
	}
	if base != nil {
		printDelta(&rep, base)
	}
	fmt.Printf("wrote %s\n%s\n", *out, rep.Verdict)
	if fail != "" {
		os.Exit(1)
	}
}

// writeTrace runs one parallel recovery on the fixture with full
// tracing into a memory sink and writes the causal trace artifact —
// the input redotrace profiles for its critical path, straggler table,
// and timeline.
func writeTrace(db method.DB, path string) error {
	rec := obs.New()
	ms := &obs.MemorySink{}
	rec.SetSink(ms)
	_, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 4, Recorder: rec})
	rec.SetSink(nil)
	if err != nil {
		return fmt.Errorf("traced recovery: %w", err)
	}
	return rtrace.New("redobench -trace.out", ms.Events()).WriteFile(path)
}

// gateAllocs compares allocations against the baseline report:
// sequential recovery and every worker count present in both reports
// may not allocate more than tolerance times the baseline. Timing is
// deliberately not gated here — it is machine-dependent, while
// allocs_per_op is deterministic and comparable across machines.
func gateAllocs(rep, base *report, tolerance float64) string {
	check := func(name string, now, was int64) string {
		if was > 0 && float64(now) > float64(was)*tolerance {
			return fmt.Sprintf("%s allocs_per_op regressed %d → %d (%.2fx, over the %.2fx baseline tolerance)",
				name, was, now, float64(now)/float64(was), tolerance)
		}
		return ""
	}
	if msg := check("sequential", rep.Sequential.Allocs, base.Sequential.Allocs); msg != "" {
		return msg
	}
	baseByWorkers := make(map[int]measurement, len(base.Parallel))
	for _, m := range base.Parallel {
		baseByWorkers[m.Workers] = m
	}
	for _, m := range rep.Parallel {
		if was, ok := baseByWorkers[m.Workers]; ok {
			if msg := check(m.Name, m.Allocs, was.Allocs); msg != "" {
				return msg
			}
		}
	}
	return ""
}

// printDelta prints the per-configuration deltas against the baseline.
func printDelta(rep, base *report) {
	fmt.Printf("delta vs baseline (%s):\n", base.GeneratedAt)
	fmt.Printf("  %-14s %12s %12s %8s %10s %10s %8s\n", "config", "base ns/op", "ns/op", "Δns", "base allocs", "allocs", "Δallocs")
	row := func(name string, b, n measurement) {
		fmt.Printf("  %-14s %12d %12d %7s%% %10d %10d %7s%%\n",
			name, b.NsPerOp, n.NsPerOp, pct(b.NsPerOp, n.NsPerOp), b.Allocs, n.Allocs, pct(b.Allocs, n.Allocs))
	}
	row("sequential", base.Sequential, rep.Sequential)
	baseByWorkers := make(map[int]measurement, len(base.Parallel))
	for _, m := range base.Parallel {
		baseByWorkers[m.Workers] = m
	}
	for _, m := range rep.Parallel {
		if b, ok := baseByWorkers[m.Workers]; ok {
			row(m.Name, b, m)
		}
	}
}

// pct formats the signed percentage change from a to b.
func pct(a, b int64) string {
	if a == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f", 100*float64(b-a)/float64(a))
}

// measure runs fn under the testing benchmark harness reps times and
// reports the fastest run: minimum-of-N damps scheduler and frequency
// noise, which matters for the ratio gates on small fixtures. Allocs
// are effectively deterministic; the minimum also sheds one-time pool
// warm-up from the first repetition.
func measure(name string, workers, reps int, fn func() error) measurement {
	var best measurement
	for i := 0; i < reps || i < 1; i++ {
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					failed = err
					b.Fatal(err)
				}
			}
		})
		if failed != nil {
			fatal(failed)
		}
		m := measurement{
			Name:    name,
			Workers: workers,
			NsPerOp: r.NsPerOp(),
			Runs:    r.N,
			Bytes:   r.AllocedBytesPerOp(),
			Allocs:  r.AllocsPerOp(),
		}
		if i == 0 || m.NsPerOp < best.NsPerOp {
			best.Name, best.Workers, best.NsPerOp, best.Runs, best.Bytes = m.Name, m.Workers, m.NsPerOp, m.Runs, m.Bytes
		}
		if i == 0 || m.Allocs < best.Allocs {
			best.Allocs = m.Allocs
		}
	}
	return best
}

// measurePair interleaves repetitions of a bare and a loaded
// configuration and reports both minima plus the overhead ratio. The
// ratio gates resolve single-digit percentages, which machine drift
// (frequency scaling, a shared container's neighbors) swamps when the
// baseline is measured minutes away from the overhead configuration.
// Two defenses: each repetition runs the pair back-to-back and takes
// its own loaded/bare ratio, so drift that slows a whole repetition
// cancels inside the quotient; and the reported ratio is the minimum
// over repetitions — the noise-floor estimate of the true overhead,
// since noise only ever inflates a paired ratio's numerator or
// deflates its denominator by chance, never both systematically.
func measurePair(bareName, loadedName string, reps int, bareFn, loadedFn func() error) (bare, loaded measurement, ratio float64) {
	if reps < 5 {
		reps = 5
	}
	for i := 0; i < reps; i++ {
		b := measure(bareName, 0, 1, bareFn)
		l := measure(loadedName, 0, 1, loadedFn)
		r := float64(l.NsPerOp) / float64(b.NsPerOp)
		if i == 0 {
			bare, loaded, ratio = b, l, r
			continue
		}
		if r < ratio {
			ratio = r
		}
		if b.NsPerOp < bare.NsPerOp {
			bare.NsPerOp, bare.Runs, bare.Bytes = b.NsPerOp, b.Runs, b.Bytes
		}
		if l.NsPerOp < loaded.NsPerOp {
			loaded.NsPerOp, loaded.Runs, loaded.Bytes = l.NsPerOp, l.Runs, l.Bytes
		}
		if b.Allocs < bare.Allocs {
			bare.Allocs = b.Allocs
		}
		if l.Allocs < loaded.Allocs {
			loaded.Allocs = l.Allocs
		}
	}
	return bare, loaded, ratio
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redobench: %v\n", err)
	os.Exit(1)
}
