// Command redobench measures parallel redo recovery against the
// sequential Figure 6 procedure on a large multi-component fixture and
// writes the results as JSON (the BENCH_parallel.json artifact):
//
//	redobench -out BENCH_parallel.json
//
// The fixture is the heavy single-page workload: every page's operation
// chain is an independent component of the redo partition, and each
// replayed operation performs real recomputation, so the benchmark
// exercises the partitioned engine rather than scheduling overhead.
//
// The command enforces the perf contract and exits non-zero when it is
// broken:
//
//   - with ≥2 CPUs available, parallel recovery at the widest worker
//     count must beat sequential recovery (speedup > 1);
//   - on a single CPU, where no wall-clock speedup is physically
//     possible, parallel recovery must stay within a small overhead
//     tolerance of sequential — the engine may not make recovery worse
//     on the hardware it happens to land on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"redotheory/internal/method"
	"redotheory/internal/obs"
	"redotheory/internal/workload"
)

// measurement is one benchmarked configuration.
type measurement struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers,omitempty"`
	NsPerOp int64   `json:"ns_per_op"`
	Runs    int     `json:"runs"`
	Bytes   int64   `json:"bytes_per_op"`
	Allocs  int64   `json:"allocs_per_op"`
	Speedup float64 `json:"speedup_vs_sequential,omitempty"`
}

// report is the BENCH_parallel.json schema.
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Fixture     struct {
		Ops        int    `json:"ops"`
		Pages      int    `json:"pages"`
		Rounds     int    `json:"compute_rounds"`
		Method     string `json:"method"`
		Components int    `json:"components"`
		Largest    int    `json:"largest_component"`
	} `json:"fixture"`
	Sequential measurement   `json:"sequential"`
	Parallel   []measurement `json:"parallel"`
	// Instrumentation is the telemetry overhead experiment: sequential
	// recovery with a metrics-only recorder attached (no event sink)
	// versus the uninstrumented baseline.
	Instrumentation struct {
		Observed  measurement `json:"observed"`
		Ratio     float64     `json:"ratio_vs_uninstrumented"`
		Tolerance float64     `json:"tolerance"`
	} `json:"instrumentation"`
	Verdict string `json:"verdict"`
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output path for the JSON report")
	nOps := flag.Int("ops", 512, "operations in the fixture log")
	nPages := flag.Int("pages", 16, "pages (= independent components) in the fixture")
	rounds := flag.Int("rounds", 400, "recomputation rounds per replayed operation")
	tolerance := flag.Float64("tolerance", 1.25, "single-CPU gate: max allowed parallel/sequential time ratio")
	obsTolerance := flag.Float64("obs.tolerance", 1.05, "instrumentation gate: max allowed instrumented/uninstrumented time ratio")
	debugAddr := flag.String("debug.addr", "", "serve net/http/pprof, expvar, and /metrics on this address while benchmarking (e.g. localhost:6060)")
	flag.Parse()

	benchRec := obs.New()
	if *debugAddr != "" {
		_, addr, err := obs.ServeDebug(*debugAddr, func() any {
			s := benchRec.Snapshot()
			return &s
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "redobench: debug server (pprof, expvar, /metrics) on http://%s\n", addr)
	}

	pages := workload.Pages(*nPages)
	s0 := workload.InitialState(pages)
	ops := workload.HeavySinglePage(*nOps, pages, *rounds, 42)
	db := method.NewPhysiological(s0)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()

	// One recovery up front: sanity-check the fixture shape and the
	// parallel engine's agreement with the sequential procedure before
	// timing anything.
	seq, err := method.Recover(db)
	if err != nil {
		fatal(err)
	}
	probe, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 4})
	if err != nil {
		fatal(err)
	}
	if err := probe.SameOutcome(seq); err != nil {
		fatal(fmt.Errorf("parallel recovery diverged from sequential: %w", err))
	}

	var rep report
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.Fixture.Ops = *nOps
	rep.Fixture.Pages = *nPages
	rep.Fixture.Rounds = *rounds
	rep.Fixture.Method = db.Name()
	rep.Fixture.Components = probe.Plan.Components
	rep.Fixture.Largest = probe.Plan.Largest

	rep.Sequential = measure("sequential", 0, func() error {
		_, err := method.Recover(db)
		return err
	})

	workerCounts := []int{1, 2, 4, 8}
	for _, w := range workerCounts {
		w := w
		m := measure(fmt.Sprintf("workers=%d", w), w, func() error {
			_, err := method.RecoverParallel(db, method.ParallelOptions{Workers: w})
			return err
		})
		m.Speedup = round3(float64(rep.Sequential.NsPerOp) / float64(m.NsPerOp))
		rep.Parallel = append(rep.Parallel, m)
	}

	// Telemetry overhead: the same sequential recovery with a live
	// metrics recorder (counters, phase spans; no event sink — the
	// always-on configuration). The gate keeps instrumentation honest:
	// observability may not tax recovery beyond the tolerance.
	rep.Instrumentation.Observed = measure("sequential+obs", 0, func() error {
		_, err := method.RecoverObserved(db, benchRec)
		return err
	})
	rep.Instrumentation.Ratio = round3(float64(rep.Instrumentation.Observed.NsPerOp) / float64(rep.Sequential.NsPerOp))
	rep.Instrumentation.Tolerance = *obsTolerance

	wide := rep.Parallel[len(rep.Parallel)-1]
	fail := ""
	if rep.Instrumentation.Ratio > *obsTolerance {
		fail = fmt.Sprintf("instrumented recovery is %.3fx uninstrumented, over the %.2fx tolerance", rep.Instrumentation.Ratio, *obsTolerance)
	}
	if rep.GoMaxProcs >= 2 {
		best := 0.0
		for _, m := range rep.Parallel {
			if m.Workers >= 4 && m.Speedup > best {
				best = m.Speedup
			}
		}
		if best <= 1.0 {
			fail = fmt.Sprintf("parallel recovery at ≥4 workers is not faster than sequential (best speedup %.3f) on %d CPUs", best, rep.GoMaxProcs)
		} else {
			rep.Verdict = fmt.Sprintf("ok: best speedup %.3fx at ≥4 workers on %d CPUs", best, rep.GoMaxProcs)
		}
	} else {
		ratio := float64(wide.NsPerOp) / float64(rep.Sequential.NsPerOp)
		if ratio > *tolerance {
			fail = fmt.Sprintf("single CPU: parallel recovery is %.2fx sequential, over the %.2fx tolerance", ratio, *tolerance)
		} else {
			rep.Verdict = fmt.Sprintf("ok: single CPU, parallel within %.2fx of sequential (no speedup possible)", ratio)
		}
	}
	if fail != "" {
		rep.Verdict = "FAIL: " + fail
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("cpus: %d (GOMAXPROCS %d)\n", rep.NumCPU, rep.GoMaxProcs)
	fmt.Printf("fixture: %d ops over %d pages → %d components (largest %d)\n",
		*nOps, *nPages, rep.Fixture.Components, rep.Fixture.Largest)
	fmt.Printf("sequential: %s\n", fmtNs(rep.Sequential.NsPerOp))
	for _, m := range rep.Parallel {
		fmt.Printf("%-10s  %s  (%.3fx)\n", m.Name, fmtNs(m.NsPerOp), m.Speedup)
	}
	fmt.Printf("instrumented: %s (%.3fx of uninstrumented, tolerance %.2fx)\n",
		fmtNs(rep.Instrumentation.Observed.NsPerOp), rep.Instrumentation.Ratio, *obsTolerance)
	fmt.Printf("wrote %s\n%s\n", *out, rep.Verdict)
	if fail != "" {
		os.Exit(1)
	}
}

// measure runs fn under the testing benchmark harness.
func measure(name string, workers int, fn func() error) measurement {
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				failed = err
				b.Fatal(err)
			}
		}
	})
	if failed != nil {
		fatal(failed)
	}
	return measurement{
		Name:    name,
		Workers: workers,
		NsPerOp: r.NsPerOp(),
		Runs:    r.N,
		Bytes:   r.AllocedBytesPerOp(),
		Allocs:  r.AllocsPerOp(),
	}
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redobench: %v\n", err)
	os.Exit(1)
}
