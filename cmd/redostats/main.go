// Command redostats renders the telemetry reports written by
// `redosim -metrics` (and any other producer of the v1 metrics schema):
//
//	redostats out.json           # per-method phase-time/selectivity table
//	redostats -widths out.json   # + the partition width histogram
//	redostats -check out.json    # validate the schema; exit 1 on any gap
//
// The table shows, per recovery method, the total time spent in each
// phase of the instrumented pipeline (scan, analysis, decide, partition,
// replay, merge), the redo selectivity (admitted/examined), and the
// partition component width percentiles.
package main

import (
	"flag"
	"fmt"
	"os"

	"redotheory/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "validate the report against the v1 schema and exit (0 ok, 1 invalid)")
	widths := flag.Bool("widths", false, "also render the partition width histogram")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: redostats [-check] [-widths] report.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	rep, err := obs.ReadReportFile(path)
	if err != nil {
		fatal(err)
	}
	if *check {
		if err := rep.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "redostats: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report (%d methods)\n", path, rep.Schema, len(rep.Methods))
		return
	}

	// Rendering a structurally corrupt report produces garbage tables, so
	// the render path validates too and names the schema gaps instead.
	if err := rep.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "redostats: %s: refusing to render an invalid report: %v\n", path, err)
		os.Exit(1)
	}

	fmt.Printf("source: %s  generated: %s\n\n", rep.Source, rep.GeneratedAt)
	rep.RenderTable(os.Stdout)
	if *widths {
		fmt.Println()
		rep.RenderWidths(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redostats: %v\n", err)
	os.Exit(1)
}
