// Command redostats renders the telemetry reports written by
// `redosim -metrics` (and any other producer of the v1 metrics schema):
//
//	redostats out.json           # per-method phase-time/selectivity table
//	redostats -widths out.json   # + the partition width histogram
//	redostats -check out.json    # validate the schema; exit 1 on any gap
//	redostats -top 10 out.json   # slowest (method, phase) totals
//	redostats -top 10 trace.json # slowest spans of a causal trace
//
// The table shows, per recovery method, the total time spent in each
// phase of the instrumented pipeline (scan, analysis, decide, partition,
// replay, merge), the redo selectivity (admitted/examined), the
// partition component width percentiles, and the memoization-cache hit
// rates.
//
// The -top mode accepts either artifact family and routes on the
// embedded schema tag: a redotheory/metrics/v1 report yields the
// slowest per-method phase totals, a redotheory/trace/v1 causal trace
// yields the slowest spans across its recoveries. Both paths validate
// the artifact before rendering and exit 1 on schema gaps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"redotheory/internal/obs"
	"redotheory/internal/rtrace"
)

func main() {
	check := flag.Bool("check", false, "validate the report against the v1 schema and exit (0 ok, 1 invalid)")
	widths := flag.Bool("widths", false, "also render the partition width histogram")
	top := flag.Int("top", 0, "render the K slowest phase totals (metrics report) or spans (trace artifact) instead of the table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: redostats [-check] [-widths] [-top K] report.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *top > 0 {
		renderTop(path, *top)
		return
	}

	rep, err := obs.ReadReportFile(path)
	if err != nil {
		fatal(err)
	}
	if *check {
		if err := rep.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "redostats: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report (%d methods)\n", path, rep.Schema, len(rep.Methods))
		return
	}

	// Rendering a structurally corrupt report produces garbage tables, so
	// the render path validates too and names the schema gaps instead.
	if err := rep.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "redostats: %s: refusing to render an invalid report: %v\n", path, err)
		os.Exit(1)
	}

	fmt.Printf("source: %s  generated: %s\n\n", rep.Source, rep.GeneratedAt)
	rep.RenderTable(os.Stdout)
	fmt.Println()
	rep.RenderCaches(os.Stdout)
	if *widths {
		fmt.Println()
		rep.RenderWidths(os.Stdout)
	}
}

// renderTop routes the -top view on the artifact's schema tag: metrics
// reports list the slowest (method, phase) totals, causal traces list
// the slowest spans. Either way the artifact is validated first.
func renderTop(path string, k int) {
	switch schema := sniffSchema(path); schema {
	case rtrace.SchemaV1:
		t, err := rtrace.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := t.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "redostats: %s: refusing to render an invalid trace: %v\n", path, err)
			os.Exit(1)
		}
		recs, err := rtrace.Split(t.Events)
		if err != nil {
			fatal(err)
		}
		spans := rtrace.SlowestSpans(recs)
		if len(spans) == 0 {
			fmt.Println("top spans: (trace carries no spans)")
			return
		}
		if k > len(spans) {
			k = len(spans)
		}
		fmt.Printf("top %d of %d spans:\n", k, len(spans))
		for _, n := range spans[:k] {
			fmt.Printf("  %-28s %12s\n", n.Label(), n.Dur())
		}
	case obs.SchemaV1:
		rep, err := obs.ReadReportFile(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "redostats: %s: refusing to render an invalid report: %v\n", path, err)
			os.Exit(1)
		}
		rows := rep.SlowestPhases()
		if len(rows) == 0 {
			fmt.Println("top phases: (report carries no methods)")
			return
		}
		if k > len(rows) {
			k = len(rows)
		}
		fmt.Printf("top %d of %d (method, phase) totals:\n", k, len(rows))
		for _, r := range rows[:k] {
			fmt.Printf("  %-20s %-10s %12s\n", r.Method, r.Phase, r.Total)
		}
	default:
		fmt.Fprintf(os.Stderr, "redostats: %s: schema %q is neither %q nor %q\n",
			path, schema, obs.SchemaV1, rtrace.SchemaV1)
		os.Exit(1)
	}
}

// sniffSchema reads just the artifact's schema tag so -top can route
// between the metrics-report and trace renderers.
func sniffSchema(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return probe.Schema
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redostats: %v\n", err)
	os.Exit(1)
}
