// Command redotrace analyzes causal recovery traces (the v1 trace
// schema written by `redobench -trace.out` and `redosim -trace`):
//
//	redotrace trace.json                 # summary, critical path, stragglers, timeline
//	redotrace -check trace.json          # validate well-formedness; exit 1 on any gap
//	redotrace -chrome out.json trace.json  # export Chrome trace-event JSON (Perfetto)
//	redotrace -width 64 trace.json       # wider ASCII timeline
//
// Well-formedness means: the schema tag, a strictly increasing Seq
// total order, non-decreasing timestamps, and balanced, properly
// nested spans. The analysis leads with the trace's main recovery (the
// one with the most spans): its critical path — the chain of spans the
// recovery's wall clock actually waited on — then the straggler table
// of interference components (slowest first, with worker/size/write
// attribution), then an ASCII timeline. See DESIGN.md §13.
package main

import (
	"flag"
	"fmt"
	"os"

	"redotheory/internal/rtrace"
)

func main() {
	check := flag.Bool("check", false, "validate the trace against the v1 schema and exit (0 ok, 1 invalid)")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto-loadable) to this path")
	width := flag.Int("width", 48, "ASCII timeline width in columns")
	top := flag.Int("top", 8, "straggler-table size")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: redotrace [-check] [-chrome out.json] [-width N] [-top K] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	t, err := rtrace.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	// Every mode validates first: analyzing or exporting a malformed
	// trace would produce confidently wrong tables.
	if err := t.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "redotrace: %s: %v\n", path, err)
		os.Exit(1)
	}
	if *check {
		fmt.Printf("%s: valid %s trace (%d events)\n", path, t.Schema, len(t.Events))
		return
	}

	if *chrome != "" {
		data, err := rtrace.ChromeTrace(t)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*chrome, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: wrote Chrome trace-event JSON (load in Perfetto or chrome://tracing)\n", *chrome)
		return
	}

	recs, err := rtrace.Split(t.Events)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("source: %s  generated: %s  (%d recoveries)\n\n", t.Source, t.GeneratedAt, len(recs))
	rtrace.RenderSummary(os.Stdout, recs)

	main := rtrace.Main(recs)
	if main == nil || len(main.Roots) == 0 {
		fmt.Println("\nno identified spans — nothing to profile")
		return
	}
	fmt.Println()
	rtrace.RenderCriticalPath(os.Stdout, rtrace.CriticalPath(main.Roots[0]))
	fmt.Println()
	rtrace.RenderStragglers(os.Stdout, main, *top)
	fmt.Println()
	rtrace.RenderTimeline(os.Stdout, main, *width)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redotrace: %v\n", err)
	os.Exit(1)
}
