// Command redosim drives the crash/recovery experiments of Section 6:
//
//	redosim -matrix              # E9: methods × crash points, invariant audited at each
//	redosim -experiment splitlog # E10: B-tree split log volume, physiological vs generalized
//	redosim -walfault            # WAL fault injection: violations must be detected
//	redosim -campaign            # E18: media faults × methods, zero silent corruption
//	redosim -nested-crash        # E-series: crash recovery itself, supervised restart must converge
//	redosim -method genlsn -ops 50 -crash 30   # one run, verbose
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"redotheory/internal/btree"
	"redotheory/internal/core"
	"redotheory/internal/fault"
	"redotheory/internal/fuzz"
	"redotheory/internal/graph"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/rtrace"
	"redotheory/internal/sim"
	"redotheory/internal/supervise"
	"redotheory/internal/trace"
	"redotheory/internal/workload"
)

var factories = []struct {
	name string
	mk   sim.Factory
}{
	{"logical", func(s *model.State) method.DB { return method.NewLogical(s) }},
	{"physical", func(s *model.State) method.DB { return method.NewPhysical(s) }},
	{"physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) }},
	{"physiological+dpt", func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }},
	{"genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) }},
	{"genlsn+mv", func(s *model.State) method.DB { return method.NewGenLSNMV(s) }},
	{"grouplsn", func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
}

func factory(name string) (sim.Factory, bool) {
	for _, f := range factories {
		if f.name == name {
			return f.mk, true
		}
	}
	return nil, false
}

func main() {
	matrix := flag.Bool("matrix", false, "run the E9 crash matrix over all methods")
	experiment := flag.String("experiment", "", "named experiment: splitlog")
	walfault := flag.Bool("walfault", false, "run WAL fault injection")
	campaign := flag.Bool("campaign", false, "run the E18 media-fault campaign over all methods and fault kinds")
	nestedCrash := flag.Bool("nested-crash", false, "run the nested-crash campaign: crash recovery itself on every schedule and assert the supervised restart loop converges")
	shardsFlag := flag.String("shards", "", "comma-separated shard counts (e.g. 2,4): run the sharded certified-cut differential grid — per-shard recovery under the certified cut vs the merged single-log oracle — over all eligible methods × crash patterns × seeds")
	maxAttempts := flag.Int("max-attempts", 0, "with -nested-crash: supervised attempt budget per cell (0 = schedule length + 8)")
	progressCkpt := flag.Int("progress-ckpt", 0, "with -nested-crash: progress-checkpoint period K in installed ops (0 = after every install)")
	artifactDir := flag.String("out", "", "with -nested-crash: directory for fuzz repro artifacts of failing cells")
	seeds := flag.Int("seeds", 3, "with -campaign or -nested-crash: number of seeds per cell")
	workers := flag.Int("workers", 1, "worker pool size: -campaign runs cells concurrently; -matrix and -method also cross-check parallel partitioned recovery")
	methodName := flag.String("method", "", "single method to run")
	nOps := flag.Int("ops", 40, "operations in the workload")
	nPages := flag.Int("pages", 8, "pages in the database")
	crash := flag.Int("crash", -1, "crash after N ops (-1 = sweep all points)")
	seed := flag.Int64("seed", 1, "random seed")
	online := flag.Bool("online", false, "attach the live invariant auditor (page-LSN methods only)")
	emitTrace := flag.Bool("emit-trace", false, "with -method and -crash: print the crash as a redocheck trace (JSON) instead of a report")
	metricsOut := flag.String("metrics", "", "write a per-method telemetry report (redostats-compatible JSON) to this path; with -matrix it implies the partitioned cross-check so the full phase breakdown is observed")
	traceOut := flag.String("trace", "", "after the selected mode, trace one representative recovery per method (plus one supervised nested-crash run) and write the causal trace artifact (redotrace's input) to this path")
	debugAddr := flag.String("debug.addr", "", "serve net/http/pprof, expvar, and /metrics on this address for the duration of the run (e.g. localhost:6060)")
	flag.Parse()

	// The live metric sink: one recorder per method, shared by every run
	// of that method, snapshotted into the -metrics report and the debug
	// server's /metrics endpoint.
	var metrics *sim.CampaignMetrics
	if *metricsOut != "" || *debugAddr != "" {
		metrics = sim.NewCampaignMetrics()
	}
	if *debugAddr != "" {
		_, addr, err := obs.ServeDebug(*debugAddr, func() any { return metrics.Report("redosim -debug.addr") })
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "redosim: debug server (pprof, expvar, /metrics) on http://%s\n", addr)
	}

	switch {
	case *matrix:
		runMatrix(*nOps, *nPages, *seed, *workers, metrics)
	case *experiment == "splitlog":
		runSplitLog(*seed)
	case *experiment != "":
		fmt.Fprintf(os.Stderr, "redosim: unknown experiment %q\n", *experiment)
		os.Exit(2)
	case *walfault:
		runWALFault(*nOps, *nPages, *seed)
	case *campaign:
		runCampaign(*nOps, *nPages, *seeds, *workers, metrics)
	case *nestedCrash:
		runNestedCrash(*nOps, *nPages, *seeds, *workers, *maxAttempts, *progressCkpt, *artifactDir, metrics)
	case *shardsFlag != "":
		runSharded(*shardsFlag, *nOps, *seeds, *artifactDir, metrics)
	case *emitTrace:
		if *methodName == "" || *crash < 0 {
			fmt.Fprintln(os.Stderr, "redosim: -emit-trace requires -method and -crash")
			os.Exit(2)
		}
		emitCrashTrace(*methodName, *nOps, *nPages, *crash, *seed)
	case *methodName != "":
		runOne(*methodName, *nOps, *nPages, *crash, *seed, *online, *workers, metrics)
	case *traceOut != "":
		// Trace-only run: no experiment mode, just the representative
		// recoveries traced below.
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *metricsOut != "" {
		writeMetrics(metrics, *metricsOut, sourceLabel(*matrix, *campaign, *nestedCrash, *shardsFlag, *methodName))
	}
	if *traceOut != "" {
		writeTraceArtifact(*traceOut, *nOps, *nPages, *seed)
	}
}

// writeTraceArtifact traces representative recoveries into one causal
// trace artifact: one partitioned parallel recovery per method, plus
// one supervised run that crashes recovery itself once — so the
// artifact exhibits both the component fan-out and the attempt/restart
// span shapes. All recoveries share one recorder and sink; each opens
// its own trace id, so redotrace splits them back apart.
func writeTraceArtifact(path string, nOps, nPages int, seed int64) {
	rec := obs.New()
	ms := &obs.MemorySink{}
	rec.SetSink(ms)
	defer rec.SetSink(nil)

	pages := workload.Pages(nPages)
	s0 := workload.InitialState(pages)
	for _, f := range factories {
		ops, err := workload.ForMethod(f.name, nOps, pages, seed)
		if err != nil {
			fatal(err)
		}
		db := f.mk(s0)
		for _, op := range ops {
			if err := db.Exec(op); err != nil {
				fatal(err)
			}
		}
		db.FlushLog()
		db.Crash()
		if _, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 4, Recorder: rec}); err != nil {
			fatal(fmt.Errorf("tracing %s: %w", f.name, err))
		}
	}

	// One supervised recovery with a single nested crash: the trace gains
	// a supervise root with two attempt spans and their install batches.
	ops, err := workload.ForMethod("physiological", nOps, pages, seed)
	if err != nil {
		fatal(err)
	}
	db := method.NewPhysiological(s0)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	sup, err := supervise.Supervise(db, supervise.Options{
		MaxAttempts:   8,
		ProgressEvery: 2,
		Seed:          seed,
		Crashes:       supervise.CrashPlan{Points: []int{1}},
		Recorder:      rec,
		Sleep:         func(time.Duration) {},
	})
	if err != nil {
		fatal(fmt.Errorf("tracing supervised recovery: %w", err))
	}
	if !sup.Converged {
		fatal(fmt.Errorf("tracing supervised recovery: did not converge"))
	}

	t := rtrace.New(sourceTraceLabel(nOps, nPages, seed), ms.Events())
	if err := t.Check(); err != nil {
		fatal(fmt.Errorf("trace self-check: %w", err))
	}
	if err := t.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Printf("trace written to %s (%d events); profile with: redotrace %s\n", path, len(t.Events), path)
}

func sourceTraceLabel(nOps, nPages int, seed int64) string {
	return fmt.Sprintf("redosim -trace (ops=%d pages=%d seed=%d)", nOps, nPages, seed)
}

// sourceLabel names the producing mode for the report's source field.
func sourceLabel(matrix, campaign, nestedCrash bool, shards, methodName string) string {
	switch {
	case matrix:
		return "redosim -matrix"
	case campaign:
		return "redosim -campaign"
	case nestedCrash:
		return "redosim -nested-crash"
	case shards != "":
		return "redosim -shards " + shards
	case methodName != "":
		return "redosim -method " + methodName
	default:
		return "redosim"
	}
}

// writeMetrics snapshots the aggregator into the v1 report and writes
// it, warning (but not failing) on schema gaps — a single-method
// sequential run legitimately lacks the partition phases.
func writeMetrics(metrics *sim.CampaignMetrics, path, source string) {
	rep := metrics.Report(source)
	if err := rep.WriteFile(path); err != nil {
		fatal(err)
	}
	if err := rep.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "redosim: warning: %s is incomplete: %v\n", path, err)
	}
	fmt.Printf("metrics written to %s (%d methods); render with: redostats %s\n", path, len(rep.Methods), path)
}

func runMatrix(nOps, nPages int, seed int64, workers int, metrics *sim.CampaignMetrics) {
	pages := workload.Pages(nPages)
	s0 := workload.InitialState(pages)
	parallel := workers > 1
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "method\tcrash points\trecovered\tinvariant held\treplayed ops\treplayed p50/p99\texamined records\trecovery wall\twall p50/p99"
	if parallel {
		header += "\tparallel agreed"
	}
	fmt.Fprintln(w, header)
	bad := false
	for _, f := range factories {
		ops, err := workload.ForMethod(f.name, nOps, pages, seed)
		if err != nil {
			fatal(err)
		}
		sweepWorkers := 0
		if parallel {
			sweepWorkers = workers
		}
		if metrics != nil && sweepWorkers == 0 {
			// The phase breakdown's decide/partition/replay/merge stages
			// only exist in the partitioned engine; observe it.
			sweepWorkers = 2
		}
		results, err := sim.SweepObserved(f.mk, ops, s0, seed, sweepWorkers, metrics.Recorder(f.name))
		if err != nil {
			fatal(err)
		}
		s := sim.Summarize(results)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d/%d\t%d\t%s\t%s/%s",
			s.Method, s.Runs, s.Recovered, s.InvariantOK, s.Replayed,
			s.ReplayedP50, s.ReplayedP99, s.Examined,
			s.Wall.Round(time.Microsecond), s.WallP50.Round(time.Microsecond), s.WallP99.Round(time.Microsecond))
		if parallel {
			fmt.Fprintf(w, "\t%d", s.ParallelOK)
		}
		fmt.Fprintln(w)
		if s.Recovered != s.Runs || s.InvariantOK != s.Runs || s.ParallelOK != s.Runs {
			bad = true
		}
	}
	w.Flush()
	if bad {
		fmt.Println("\nRESULT: FAIL — some crash point did not recover, violated the invariant, or diverged under parallel replay")
		os.Exit(1)
	}
	if parallel {
		fmt.Printf("\nRESULT: all methods recovered at every crash point; parallel replay (%d workers) agreed everywhere\n", workers)
		return
	}
	fmt.Println("\nRESULT: all methods recovered at every crash point with the invariant holding")
}

func runSplitLog(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, 2000)
	for i := range keys {
		keys[i] = rng.Int63n(10_000_000)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "order\tsplits\tphysio split bytes\tgenlsn split bytes\tratio\tphysio total\tgenlsn total")
	for _, order := range []int{8, 16, 32, 64} {
		physio := method.NewPhysiological(model.NewState())
		trP := btree.New(physio, btree.PhysiologicalSplit, order, 1)
		gen := method.NewGenLSN(model.NewState())
		trG := btree.New(gen, btree.GeneralizedSplit, order, 1)
		for _, k := range keys {
			if err := trP.Insert(k); err != nil {
				fatal(err)
			}
			if err := trG.Insert(k); err != nil {
				fatal(err)
			}
		}
		pSplit, gSplit := btree.SplitLogBytes(physio.Log()), btree.SplitLogBytes(gen.Log())
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2fx\t%d\t%d\n",
			order, trP.Splits, pSplit, gSplit, float64(pSplit)/float64(gSplit),
			physio.Stats().LogBytes, gen.Stats().LogBytes)
	}
	w.Flush()
	fmt.Println("\nratio = physiological / generalized split-record bytes; the gap is the physically-logged moved half (Section 6.4)")
}

func runWALFault(nOps, nPages int, seed int64) {
	pages := workload.Pages(nPages)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(nOps, pages, seed, false)
	detected, runs := 0, 0
	for crashAt := 1; crashAt <= len(ops); crashAt++ {
		res, err := sim.Run(factoryMust("physiological"), sim.Config{
			Ops: ops, Initial: s0, CrashAfter: crashAt, Seed: seed + int64(crashAt),
			DisableWAL: true, FlushProb: 0.6, ForceProb: 0.05,
		})
		if err != nil {
			fatal(err)
		}
		runs++
		if !res.InvariantOK || !res.Recovered {
			detected++
			if detected == 1 {
				fmt.Printf("first detection at crash point %d (invariant ok=%v, recovered=%v):\n",
					crashAt, res.InvariantOK, res.Recovered)
				for _, v := range res.Violations {
					fmt.Printf("  %s\n", v)
				}
			}
		}
	}
	fmt.Printf("\nWAL disabled: %d/%d crash points produced a detectable invariant violation\n", detected, runs)
	if detected == 0 {
		fmt.Println("RESULT: FAIL — fault injection was inert")
		os.Exit(1)
	}
	fmt.Println("RESULT: the checker catches write-ahead-log violations")
}

// runCampaign sweeps methods × fault kinds × crash points × seeds,
// classifying every run; the headline assertion is zero silent
// corruption across the whole matrix.
func runCampaign(nOps, nPages, nSeeds, workers int, metrics *sim.CampaignMetrics) {
	methods := make([]sim.NamedFactory, len(factories))
	for i, f := range factories {
		methods[i] = sim.NamedFactory{Name: f.name, New: f.mk}
	}
	seeds := make([]int64, 0, max(nSeeds, 0))
	for i := 0; i < nSeeds; i++ {
		seeds = append(seeds, int64(i+1))
	}
	results, err := sim.Campaign(sim.CampaignConfig{
		Methods:      methods,
		NumOps:       nOps,
		NumPages:     nPages,
		CrashPoints:  []int{0, nOps / 2, nOps},
		Seeds:        seeds,
		TruncateProb: 0.5,
		Workers:      workers,
		Metrics:      metrics,
	})
	if err != nil {
		fatal(err)
	}
	sum := sim.SummarizeCampaign(results)

	outcomes := []sim.Outcome{sim.RecoveredExact, sim.RecoveredDegraded,
		sim.DetectedUnrecoverable, sim.FaultNotFired, sim.SilentCorruption}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "fault kind\texact\tdegraded\tunrecoverable\tnot fired\tSILENT")
	for _, k := range fault.Kinds() {
		by := sum.ByKind[k]
		fmt.Fprintf(w, "%s", k)
		for _, o := range outcomes {
			fmt.Fprintf(w, "\t%d", by[o])
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\texact\tdegraded\tunrecoverable\tnot fired\tSILENT")
	for _, m := range sum.Methods() {
		by := sum.ByMethod[m]
		fmt.Fprintf(w, "%s", m)
		for _, o := range outcomes {
			fmt.Fprintf(w, "\t%d", by[o])
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Printf("\n%d runs: %d exact, %d degraded, %d unrecoverable, %d not fired, %d silent\n",
		sum.Runs, sum.ByOutcome[sim.RecoveredExact], sum.ByOutcome[sim.RecoveredDegraded],
		sum.ByOutcome[sim.DetectedUnrecoverable], sum.ByOutcome[sim.FaultNotFired], sum.Silent)
	if sum.Silent != 0 {
		for _, r := range results {
			if r.Outcome == sim.SilentCorruption {
				fmt.Printf("  SILENT: %s/%s crash=%d seed=%d\n", r.Method, r.Kind, r.CrashAfter, r.Seed)
			}
		}
		fmt.Println("RESULT: FAIL — silent corruption detected")
		os.Exit(1)
	}
	fmt.Println("RESULT: zero silent corruption — every media fault was repaired, degraded, or detected")
}

// runNestedCrash sweeps methods × seeds × crash points × nested-crash
// schedules, crashing *recovery itself* per schedule and supervising the
// restart loop; the headline assertion is that every cell converges to
// the determined state with strictly monotone install progress.
func runNestedCrash(nOps, nPages, nSeeds, workers, maxAttempts, progressEvery int, outDir string, metrics *sim.CampaignMetrics) {
	methods := make([]sim.NamedFactory, len(factories))
	for i, f := range factories {
		methods[i] = sim.NamedFactory{Name: f.name, New: f.mk}
	}
	seeds := make([]int64, 0, max(nSeeds, 0))
	for i := 0; i < nSeeds; i++ {
		seeds = append(seeds, int64(i+1))
	}
	results, err := sim.NestedCrashCampaign(sim.NestedCrashConfig{
		Methods:       methods,
		NumOps:        nOps,
		NumPages:      nPages,
		Seeds:         seeds,
		MaxAttempts:   maxAttempts,
		ProgressEvery: progressEvery,
		Workers:       workers,
		Metrics:       metrics,
	})
	if err != nil {
		fatal(err)
	}
	sum := sim.SummarizeNestedCrash(results)

	type agg struct{ ok, cells, crashes, attempts, installs, ckpts, escalations int }
	byMethod := make(map[string]*agg)
	for _, r := range results {
		a := byMethod[r.Method]
		if a == nil {
			a = &agg{}
			byMethod[r.Method] = a
		}
		a.cells++
		if r.OK() {
			a.ok++
		}
		a.crashes += r.CrashesInjected
		a.attempts += r.Attempts
		a.installs += r.TotalInstalls
		a.ckpts += r.ProgressCheckpoints
		a.escalations += r.Escalations
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tcells\tok\tnested crashes\tattempts\tinstalls\tprogress ckpts\tescalations")
	for _, m := range sum.Methods() {
		a := byMethod[m]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m, a.cells, a.ok, a.crashes, a.attempts, a.installs, a.ckpts, a.escalations)
	}
	w.Flush()

	fmt.Printf("\n%d cells: %d converged (%d parallel / %d sequential / %d degraded), %d nested crashes injected, %d attempts total\n",
		sum.Runs, sum.Converged,
		sum.ByRung[supervise.RungParallel], sum.ByRung[supervise.RungSequential], sum.ByRung[supervise.RungDegraded],
		sum.TotalCrashes, sum.TotalAttempts)

	if sum.NonConverged+sum.OracleMismatches+sum.MonotoneViolations+sum.Errors == 0 {
		fmt.Println("RESULT: every crashed recovery converged to the determined state with monotone install progress")
		return
	}
	n := 0
	for _, r := range results {
		if r.OK() {
			continue
		}
		check, detail := nestedFailure(r)
		fmt.Printf("  FAIL: %s crash=%d seed=%d schedule=%v: %s (%s)\n",
			r.Method, r.CrashAfter, r.Seed, r.Schedule, check, detail)
		if outDir != "" {
			writeNestedArtifact(outDir, n, r, nPages, check, detail)
		}
		n++
	}
	fmt.Printf("RESULT: FAIL — %d non-converged, %d oracle mismatches, %d monotonicity violations, %d errors\n",
		sum.NonConverged, sum.OracleMismatches, sum.MonotoneViolations, sum.Errors)
	os.Exit(1)
}

// nestedFailure classifies a failing cell with the supervised oracle
// leg's check names, so the repro artifact replays under the same label.
func nestedFailure(r *sim.NestedCrashResult) (check, detail string) {
	switch {
	case r.Err != "":
		return "supervised-error", r.Err
	case !r.Converged:
		return "supervised-nonconvergence", fmt.Sprintf("exhausted %d attempts (rung %s)", r.Attempts, r.Rung)
	case !r.OracleMatch:
		return "supervised-oracle", fmt.Sprintf("converged state diverges from the determined state (rung %s)", r.Rung)
	default:
		return "supervised-monotonicity", "an attempt installed work without advancing the install measure"
	}
}

// writeNestedArtifact exports a failing cell as a fuzz v2 repro. The
// campaign's execution loop draws background activity in the same order
// and with the same probabilities as the fuzzer's executor, so the
// schedule below re-creates the identical crash state and the artifact's
// nested_crash field drives the supervised leg through the same restart
// storm.
func writeNestedArtifact(dir string, i int, r *sim.NestedCrashResult, nPages int, check, detail string) {
	cell := fuzz.Cell{
		History: fuzz.History{Method: r.Method, Shape: "nested-crash-campaign", Pages: nPages, Ops: r.Ops},
		Crash:   r.CrashAfter,
		Schedule: fuzz.Schedule{
			Seed:      sim.MixSeed(r.Seed, int64(fault.Sum(r.Method)), int64(r.CrashAfter), 5),
			FlushProb: 0.3, ForceProb: 0.2, CheckpointProb: 0.1,
		},
		NestedCrash: r.Schedule,
	}
	art := fuzz.NewArtifact(cell, check, detail)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("nestedcrash-%03d.json", i))
	if err := art.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Printf("  artifact: %s (replay with: redofuzz -repro %s)\n", path, path)
}

// shardRepro is the self-contained repro artifact for a failing
// sharded differential cell: feeding these fields back into
// sim.CheckSharded re-creates the exact run.
type shardRepro struct {
	Schema        string `json:"schema"`
	Method        string `json:"method"`
	Shards        int    `json:"shards"`
	Ops           int    `json:"ops"`
	PagesPerShard int    `json:"pages_per_shard"`
	CrossEvery    int    `json:"cross_every"`
	Seed          int64  `json:"seed"`
	Crashes       []int  `json:"crashes"`
	Check         string `json:"check"`
	Detail        string `json:"detail"`
}

// runSharded sweeps the sharded certified-cut differential grid:
// eligible methods × shard counts × crash patterns (synchronized and
// per-shard staggered) × seeds. Every cell executes a cross-shard
// history, crashes the shards at their configured points, computes the
// certified cut, recovers each shard from its cut prefix (sequential
// and parallel), audits each shard's projection with the invariant
// checker, and compares the union against the merged single-log
// oracle. Any divergence is a distributed-recovery bug; failing cells
// are exported as repro artifacts when -out is set.
func runSharded(shardsFlag string, nOps, nSeeds int, outDir string, metrics *sim.CampaignMetrics) {
	var counts []int
	for _, part := range strings.Split(shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -shards value %q", part))
		}
		counts = append(counts, n)
	}

	type agg struct {
		cells, ok, cross, skipped int
		droppedTxns, droppedRecs  int
		cutRecs, stableRecs       int
	}
	var keys []string
	byKey := make(map[string]*agg)
	var failures []shardRepro

	for _, m := range sim.ShardableMethods() {
		for _, nShards := range counts {
			key := fmt.Sprintf("%s\t%d", m.Name, nShards)
			a := &agg{}
			keys = append(keys, key)
			byKey[key] = a
			for _, stagger := range []bool{false, true} {
				for s := 0; s < nSeeds; s++ {
					seed := int64(s + 1)
					crashes := sim.DeriveCrashes(seed, nOps, nShards, stagger)
					check, err := sim.CheckSharded(sim.ShardedConfig{
						Method:   m,
						Shards:   nShards,
						NumOps:   nOps,
						Seed:     seed,
						Crashes:  crashes,
						Recorder: metrics.Recorder(m.Name),
					})
					if err != nil {
						fatal(err)
					}
					a.cells++
					a.cross += check.CrossTxns
					a.skipped += check.Skipped
					a.droppedTxns += check.DroppedTxns
					a.droppedRecs += check.DroppedRecords
					a.cutRecs += check.CutRecords
					a.stableRecs += check.StableRecords
					if check.OK() {
						a.ok++
						continue
					}
					failures = append(failures, shardRepro{
						Schema:        "redotheory/shardrepro/v1",
						Method:        m.Name,
						Shards:        nShards,
						Ops:           nOps,
						PagesPerShard: 4,
						CrossEvery:    3,
						Seed:          seed,
						Crashes:       crashes,
						Check:         "sharded-oracle",
						Detail:        check.Mismatch,
					})
				}
			}
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tshards\tcells\tok\tcross txns\trefused ops\tdropped txns\tdropped records\tcut/stable records")
	for _, key := range keys {
		a := byKey[key]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d/%d\n",
			key, a.cells, a.ok, a.cross, a.skipped, a.droppedTxns, a.droppedRecs, a.cutRecs, a.stableRecs)
	}
	w.Flush()

	if len(failures) == 0 {
		fmt.Println("\nRESULT: sharded recovery from the certified cut matched the merged-log oracle in every cell")
		return
	}
	for i, f := range failures {
		fmt.Printf("  FAIL: %s×%d seed=%d crashes=%v: %s\n", f.Method, f.Shards, f.Seed, f.Crashes, f.Detail)
		if outDir != "" {
			writeShardArtifact(outDir, i, f)
		}
	}
	fmt.Printf("RESULT: FAIL — %d sharded differential cells diverged\n", len(failures))
	os.Exit(1)
}

// writeShardArtifact exports a failing sharded cell as a JSON repro.
func writeShardArtifact(dir string, i int, f shardRepro) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("shardrepro-%03d.json", i))
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  artifact: %s\n", path)
}

func runOne(name string, nOps, nPages, crash int, seed int64, online bool, workers int, metrics *sim.CampaignMetrics) {
	mk, ok := factory(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "redosim: unknown method %q\n", name)
		os.Exit(2)
	}
	pages := workload.Pages(nPages)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod(name, nOps, pages, seed)
	if err != nil {
		fatal(err)
	}
	parWorkers := 0
	if workers > 1 {
		parWorkers = workers
	}
	if crash < 0 {
		results, err := sim.SweepObserved(mk, ops, s0, seed, parWorkers, metrics.Recorder(name))
		if err != nil {
			fatal(err)
		}
		s := sim.Summarize(results)
		fmt.Printf("%s: %d/%d crash points recovered, invariant held at %d/%d\n",
			s.Method, s.Recovered, s.Runs, s.InvariantOK, s.Runs)
		fmt.Printf("replayed %d ops (p50/p99 %d/%d per point); recovery wall %s (p50/p99 %s/%s)\n",
			s.Replayed, s.ReplayedP50, s.ReplayedP99,
			s.Wall.Round(time.Microsecond), s.WallP50.Round(time.Microsecond), s.WallP99.Round(time.Microsecond))
		if parWorkers > 0 {
			fmt.Printf("parallel replay (%d workers) agreed at %d/%d crash points\n",
				parWorkers, s.ParallelOK, s.Runs)
			if s.ParallelOK != s.Runs {
				os.Exit(1)
			}
		}
		return
	}
	res, err := sim.Run(mk, sim.Config{Ops: ops, Initial: s0, CrashAfter: crash, Seed: seed, OnlineAudit: online, ParallelWorkers: parWorkers, Recorder: metrics.Recorder(name)})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method         %s\n", res.Method)
	if online {
		fmt.Printf("online audits  %d (all ok: %v)\n", res.OnlineAudits, res.OnlineOK)
	}
	fmt.Printf("crash point    %d of %d ops\n", crash, len(ops))
	fmt.Printf("stable ops     %d\n", res.StableOps)
	fmt.Printf("replayed       %d (examined %d records)\n", res.Replayed, res.Examined)
	fmt.Printf("recovered      %v\n", res.Recovered)
	fmt.Printf("invariant ok   %v\n", res.InvariantOK)
	if parWorkers > 0 {
		fmt.Printf("parallel       agrees=%v components=%d workers=%d\n",
			res.ParallelAgrees, res.ParallelComponents, parWorkers)
	}
	for _, v := range res.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	fmt.Printf("stats          %+v\n", res.Stats)
	if !res.Recovered || !res.InvariantOK || !res.ParallelAgrees {
		os.Exit(1)
	}
}

// emitCrashTrace replays one crash scenario and prints it as a
// redocheck-compatible trace: the stable log's operations with their
// written values, the stable state, and the installed set the method's
// redo test implies. Pipe it into redocheck:
//
//	redosim -emit-trace -method genlsn -ops 30 -crash 20 | redocheck -
func emitCrashTrace(name string, nOps, nPages, crash int, seed int64) {
	mk, ok := factory(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "redosim: unknown method %q\n", name)
		os.Exit(2)
	}
	pages := workload.Pages(nPages)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod(name, nOps, pages, seed)
	if err != nil {
		fatal(err)
	}
	if crash > len(ops) {
		fatal(fmt.Errorf("crash point %d beyond %d ops", crash, len(ops)))
	}
	db := mk(s0)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < crash; i++ {
		if err := db.Exec(ops[i]); err != nil {
			fatal(err)
		}
		if rng.Float64() < 0.3 {
			db.FlushOne()
		}
		if rng.Float64() < 0.2 {
			db.FlushLog()
		}
	}
	db.Crash()
	stableLog := db.StableLog()
	redoSet, err := core.PredictRedoSet(db.StableState(), stableLog, db.Checkpointed(), db.RedoTest(), db.Analyze())
	if err != nil {
		fatal(err)
	}
	installed := graph.NewSet[model.OpID]()
	for _, op := range stableLog.Ops() {
		if !redoSet.Has(op.ID()) {
			installed.Add(op.ID())
		}
	}
	tr, err := trace.Capture(stableLog.Ops(), db.RecoveryBase(), db.StableState(), installed)
	if err != nil {
		fatal(err)
	}
	data, err := tr.Encode()
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

func factoryMust(name string) sim.Factory {
	mk, ok := factory(name)
	if !ok {
		panic(name)
	}
	return mk
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redosim: %v\n", err)
	os.Exit(1)
}
