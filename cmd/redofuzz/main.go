// Command redofuzz is the differential crash-point fuzzer: it generates
// randomized operation histories per recovery method, enumerates crash
// points and cache-steal/flush schedules, and checks the three-way
// recovery oracle on every cell (sequential recovery, partitioned
// parallel recovery, and degraded recovery must all agree with the
// determined state the surviving log defines).
//
//	redofuzz                                  # default grid, all methods
//	redofuzz -seeds 2 -histories 3 -shrink    # deeper grid, minimize failures
//	redofuzz -budget 30s -faults -out /tmp/fz # time-boxed, with fault cells
//	redofuzz -repro repro-000.json            # replay one minimized repro
//
// On any oracle disagreement redofuzz exits 1 and, with -out, writes a
// repro-NNN.json artifact plus a standalone repro-NNN.go replay for each
// failure. With -repro it replays one artifact and exits 1 only if the
// disagreement still reproduces.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"redotheory/internal/fuzz"
	"redotheory/internal/obs"
	"redotheory/internal/sim"
)

func main() {
	seeds := flag.Int("seeds", 1, "top-level seeds to fuzz")
	histories := flag.Int("histories", 1, "histories per method × shape × seed")
	nOps := flag.Int("ops", 12, "operations per history")
	nPages := flag.Int("pages", 4, "pages in the database")
	budget := flag.Duration("budget", 0, "wall-clock budget (0 = run the full grid)")
	shrink := flag.Bool("shrink", false, "minimize failing cells with delta debugging")
	workers := flag.Int("workers", 3, "parallel-recovery worker pool size")
	faults := flag.Bool("faults", false, "also run faulted campaign cells per history and fault kind")
	out := flag.String("out", "", "directory for repro artifacts on failure")
	repro := flag.String("repro", "", "replay one repro artifact and exit (0 = passes, 1 = reproduces)")
	flag.Parse()

	if *repro != "" {
		replay(*repro)
		return
	}

	rec := obs.New()
	rep, err := fuzz.Run(fuzz.Config{
		Seeds:     *seeds,
		Histories: *histories,
		MaxOps:    *nOps,
		Pages:     *nPages,
		Budget:    *budget,
		Shrink:    *shrink,
		Workers:   *workers,
		Faults:    *faults,
		Recorder:  rec,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("redofuzz: %d cells (%d histories", rep.Cells, rep.Histories)
	if rep.FaultCells > 0 {
		fmt.Printf(", %d fault cells", rep.FaultCells)
	}
	fmt.Printf(") in %s\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("coverage: %d partition shapes, %d redo-set sizes", len(rep.PartitionShapes), rep.RedoSizes)
	if len(rep.FaultKinds) > 0 {
		fmt.Printf(", fault kinds %v", rep.FaultKinds)
	}
	fmt.Println()
	if rep.Truncated {
		fmt.Println("budget exhausted before the grid completed")
	}

	if len(rep.Failures) == 0 {
		fmt.Println("all cells agree: no oracle disagreements")
		return
	}

	fmt.Printf("%d ORACLE DISAGREEMENTS\n", len(rep.Failures))
	for i, f := range rep.Failures {
		fmt.Printf("  [%d] %s\n      %s: %s\n", i, f.Cell.String(), f.Check, f.Detail)
		if f.Minimized != nil {
			fmt.Printf("      minimized to %d ops, crash=%d\n", len(f.Minimized.History.Ops), f.Minimized.Crash)
		}
		if f.Artifact != nil && f.Artifact.Flight != nil {
			fmt.Printf("      flight recorder: %d events, %d crash snapshots (of %d total seen)\n",
				len(f.Artifact.Flight.Events), len(f.Artifact.Flight.Snapshots), f.Artifact.Flight.Total)
		}
		if *out != "" && f.Artifact != nil {
			writeArtifact(*out, i, f.Artifact)
		}
	}
	os.Exit(1)
}

// writeArtifact writes repro-NNN.json and its standalone Go replay.
func writeArtifact(dir string, i int, a *fuzz.Artifact) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	jsonPath := filepath.Join(dir, fmt.Sprintf("repro-%03d.json", i))
	if err := a.WriteFile(jsonPath); err != nil {
		fatal(err)
	}
	src, err := a.GoSource()
	if err != nil {
		fatal(err)
	}
	goPath := filepath.Join(dir, fmt.Sprintf("repro-%03d.go", i))
	if err := os.WriteFile(goPath, src, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("      repro written: %s (+ %s)\n", jsonPath, goPath)
}

// replay re-runs one artifact through the full oracle.
func replay(path string) {
	a, err := fuzz.ReadArtifactFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying %s: method=%s ops=%d crash=%d", path, a.Method, len(a.Ops), a.Crash)
	if a.Check != "" {
		fmt.Printf(" recorded=%s", a.Check)
	}
	fmt.Println()
	fail, err := fuzz.Replay(sim.DefaultMethods(), a)
	if err != nil {
		fatal(err)
	}
	if fail != nil {
		fmt.Printf("reproduced: %s: %s\n", fail.Check, fail.Detail)
		os.Exit(1)
	}
	fmt.Println("cell passes: all oracle legs agree")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redofuzz: %v\n", err)
	os.Exit(1)
}
