// Command redocheck audits the Recovery Invariant over a recorded trace:
// given a JSON file with a history, a crash state, and the set of
// operations a system claims are installed, it reports whether
// operations(log) − redo_set induces a prefix of the installation graph
// that explains the state — and if not, exactly which edge or variable
// breaks it. Exit status 0 means the invariant holds.
//
// Usage:
//
//	redocheck trace.json
//	redocheck -            # read the trace from stdin
//	redocheck -example     # print an example trace and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"redotheory/internal/core"
	"redotheory/internal/install"
	"redotheory/internal/trace"
)

const exampleTrace = `{
  "initial": {},
  "ops": [
    {"id": 1, "name": "B", "wrote": {"y": "2"}},
    {"id": 2, "name": "A", "reads": ["y"], "wrote": {"x": "3"}}
  ],
  "state": {"x": "3"},
  "installed": [2]
}`

func main() {
	example := flag.Bool("example", false, "print an example trace and exit")
	verbose := flag.Bool("v", false, "print graphs and exposure details")
	flag.Parse()
	if *example {
		fmt.Println(exampleTrace)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: redocheck [-v] <trace.json | ->")
		os.Exit(2)
	}
	var data []byte
	var err error
	if flag.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}
	tr, err := trace.Decode(data)
	if err != nil {
		fatal(err)
	}
	ops, initial, state, installed, err := tr.Materialize()
	if err != nil {
		fatal(err)
	}
	log := core.NewLog()
	for _, op := range ops {
		log.Append(op)
	}
	ck, err := core.NewChecker(log, initial)
	if err != nil {
		fatal(err)
	}
	rep := ck.CheckInstalled(state, installed)
	fmt.Println(rep.Summary())
	if *verbose {
		cg := ck.Conflict()
		fmt.Println("\nconflict edges:")
		for _, u := range cg.DAG().Nodes() {
			for _, v := range cg.DAG().Succs(u) {
				fmt.Printf("  %s -> %s (%s)\n", cg.Op(u), cg.Op(v), cg.Kind(u, v))
			}
		}
		fmt.Printf("exposed by installed set:   %v\n", install.ExposedVars(cg, installed))
		fmt.Printf("unexposed by installed set: %v\n", install.UnexposedVars(cg, installed))
		fmt.Printf("final state recovery must reach: %v\n", ck.FinalState())
	}
	if !rep.OK {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redocheck: %v\n", err)
	os.Exit(1)
}
