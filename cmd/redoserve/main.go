// Command redoserve is the instant-restart server: it crashes a
// write-heavy fixture, then serves reads and writes immediately while
// redo recovery proceeds lazily, per page, underneath (internal/serve).
//
// Two modes:
//
//	redoserve -bench -out BENCH_serve.json [-baseline BENCH_serve.json]
//
// runs the availability benchmark: per trial it times sequential
// offline recovery over the crashed fixture, then restarts the same
// crash behind the serving engine under concurrent Zipfian client load
// and records each client's time to first successfully served read.
// The availability gate — the instant-restart claim — is that p99
// time-to-first-read stays under -tolerance (default 10%) of the
// offline full-recovery wall-clock, and the command exits non-zero
// when it does not hold. With -baseline pointing at a checked-in
// report, the trend history (num_cpu, gomaxprocs, ratio per run) is
// carried forward like BENCH_parallel.json's.
//
//	redoserve -addr localhost:8080
//
// serves the engine over HTTP for interactive poking: GET
// /read?page=pg03 and /write?page=pg03 go through the admission gate
// (a touch of a cold page recovers it on the spot), /stats reports
// recovery progress, /drain forces full recovery inline. Post-crash
// writes append to the crashed store's own WAL, so killing the server
// and recovering again replays them like any other history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/serve"
	"redotheory/internal/sim"
	"redotheory/internal/trendlog"
	"redotheory/internal/workload"
)

// report is the BENCH_serve.json schema.
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Fixture     struct {
		Desc     string `json:"desc"`
		Ops      int    `json:"ops"`
		Pages    int    `json:"pages"`
		Rounds   int    `json:"compute_rounds"`
		Clients  int    `json:"clients"`
		Requests int    `json:"requests_per_client"`
		Trials   int    `json:"trials"`
	} `json:"fixture"`
	// TTFR are time-to-first-read percentiles over all per-client
	// samples (clients × trials): crash handoff → first served read.
	TTFR struct {
		P50Ns int64 `json:"p50_ns"`
		P99Ns int64 `json:"p99_ns"`
		MaxNs int64 `json:"max_ns"`
	} `json:"ttfr"`
	// OfflineRecoveryNs is the median sequential full-recovery
	// wall-clock — the wait a non-instant restart imposes before the
	// first read. OnlineRecoveryNs is the median time to full recovery
	// while serving (sweeper + client touches sharing the machine).
	OfflineRecoveryNs int64 `json:"offline_recovery_ns"`
	OnlineRecoveryNs  int64 `json:"online_recovery_ns"`
	// Ratio is TTFR.P99Ns / OfflineRecoveryNs; the availability gate
	// requires Ratio ≤ Tolerance.
	Ratio     float64 `json:"ratio_p99_vs_offline"`
	Tolerance float64 `json:"tolerance"`
	// Served traffic and recovery-trigger split, per-trial means (the
	// engine is fresh each trial, so swept + lazy cannot exceed the
	// plan's component count in any trial).
	Reads    float64     `json:"reads_mean"`
	Writes   float64     `json:"writes_mean"`
	Lazy     float64     `json:"lazy_redo_components_mean"`
	Swept    float64     `json:"swept_components_mean"`
	PerTrial []trialStat `json:"per_trial"`
	History  []trend     `json:"history,omitempty"`
	Verdict  string      `json:"verdict"`
}

// trialStat is one trial's engine counters in the report.
type trialStat struct {
	Components int   `json:"components"`
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	Lazy       int64 `json:"lazy_redo_components"`
	Swept      int64 `json:"swept_components"`
}

// trend is one historical run in the report's trend log, matching the
// BENCH_parallel.json convention (oldest first, capped at maxHistory).
type trend struct {
	GeneratedAt string  `json:"generated_at"`
	NumCPU      int     `json:"num_cpu"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	TTFRP99Ns   int64   `json:"ttfr_p99_ns"`
	OfflineNs   int64   `json:"offline_recovery_ns"`
	Ratio       float64 `json:"ratio_p99_vs_offline"`
}

func trendOf(r *report) trend {
	return trend{
		GeneratedAt: r.GeneratedAt,
		NumCPU:      r.NumCPU,
		GoMaxProcs:  r.GoMaxProcs,
		TTFRP99Ns:   r.TTFR.P99Ns,
		OfflineNs:   r.OfflineRecoveryNs,
		Ratio:       r.Ratio,
	}
}

func main() {
	bench := flag.Bool("bench", false, "run the availability benchmark and write the JSON report")
	out := flag.String("out", "BENCH_serve.json", "output path for the benchmark report")
	baseline := flag.String("baseline", "", "checked-in report to inherit trend history from")
	tolerance := flag.Float64("tolerance", 0.10, "availability gate: max allowed p99 TTFR / offline full-recovery ratio")
	nOps := flag.Int("ops", 3000, "operations in the crashed fixture")
	nPages := flag.Int("pages", 512, "pages in the fixture")
	rounds := flag.Int("rounds", 2000, "recomputation rounds per replayed operation")
	clients := flag.Int("clients", 4, "concurrent bench clients")
	requests := flag.Int("requests", 200, "requests per bench client")
	trials := flag.Int("trials", 5, "crash/restart cycles in the benchmark")
	seed := flag.Int64("seed", 1, "fixture and client seed")
	addr := flag.String("addr", "", "serve the engine over HTTP on this address (server mode)")
	flag.Parse()

	if *bench {
		runBench(*out, *baseline, *tolerance, serve.BenchConfig{
			Ops: *nOps, Pages: *nPages, Rounds: *rounds,
			Clients: *clients, Requests: *requests, Trials: *trials, Seed: *seed,
		})
		return
	}
	if *addr == "" {
		fatal(fmt.Errorf("nothing to do: pass -bench or -addr (see -h)"))
	}
	runServer(*addr, *nOps, *nPages, *rounds, *seed)
}

func runBench(out, baseline string, tolerance float64, cfg serve.BenchConfig) {
	var base *report
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			fatal(fmt.Errorf("reading baseline: %w", err))
		}
		base = new(report)
		if err := json.Unmarshal(data, base); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", baseline, err))
		}
	}

	res, err := serve.RunBench(cfg)
	if err != nil {
		fatal(err)
	}

	var rep report
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.Fixture.Desc = res.Fixture
	rep.Fixture.Ops = cfg.Ops
	rep.Fixture.Pages = cfg.Pages
	rep.Fixture.Rounds = cfg.Rounds
	rep.Fixture.Clients = cfg.Clients
	rep.Fixture.Requests = cfg.Requests
	rep.Fixture.Trials = cfg.Trials
	rep.TTFR.P50Ns = int64(res.TTFRP50)
	rep.TTFR.P99Ns = int64(res.TTFRP99)
	rep.TTFR.MaxNs = int64(res.TTFRMax)
	rep.OfflineRecoveryNs = int64(res.OfflineFull)
	rep.OnlineRecoveryNs = int64(res.OnlineFull)
	rep.Ratio = round3(res.Ratio)
	rep.Tolerance = tolerance
	rep.Reads, rep.Writes = res.Reads, res.Writes
	rep.Lazy, rep.Swept = res.Lazy, res.Swept
	for _, ts := range res.PerTrial {
		rep.PerTrial = append(rep.PerTrial, trialStat{
			Components: ts.Components,
			Reads:      ts.Reads, Writes: ts.Writes,
			Lazy: ts.Lazy, Swept: ts.Swept,
		})
	}

	if base != nil {
		rep.History = trendlog.Append(base.History,
			func(t trend) string { return t.GeneratedAt }, trendOf(base))
	}

	fail := ""
	if rep.Ratio > tolerance {
		fail = fmt.Sprintf("p99 time-to-first-read is %.1f%% of offline full recovery, over the %.0f%% availability gate",
			100*rep.Ratio, 100*tolerance)
		rep.Verdict = "FAIL: " + fail
	} else {
		rep.Verdict = fmt.Sprintf("ok: p99 first read in %.1f%% of an offline recovery (gate %.0f%%)",
			100*rep.Ratio, 100*tolerance)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("cpus: %d (GOMAXPROCS %d)\n", rep.NumCPU, rep.GoMaxProcs)
	fmt.Printf("fixture: %s, %d clients × %d requests × %d trials\n",
		res.Fixture, cfg.Clients, cfg.Requests, cfg.Trials)
	fmt.Printf("time to first read: p50 %s  p99 %s  max %s (%d samples)\n",
		res.TTFRP50, res.TTFRP99, res.TTFRMax, res.Samples)
	fmt.Printf("full recovery: offline %s, online (serving) %s\n", res.OfflineFull, res.OnlineFull)
	fmt.Printf("served during recovery (per-trial means): %.1f reads, %.1f writes; components lazy %.1f / swept %.1f\n",
		res.Reads, res.Writes, res.Lazy, res.Swept)
	fmt.Printf("wrote %s\n%s\n", out, rep.Verdict)
	if fail != "" {
		os.Exit(1)
	}
}

// runServer crashes the fixture and serves it over HTTP while the
// sweeper drains recovery in the background.
func runServer(addr string, nOps, nPages, rounds int, seed int64) {
	pages := workload.Pages(nPages)
	ops := workload.HeavyHotPage(nOps, pages, rounds, seed)
	mk := func(s *model.State) method.DB { return method.NewPhysiological(s) }
	db, err := sim.BuildCrashed(mk, workload.InitialState(pages), ops, len(ops), sim.Sched{Seed: seed, ForceOnCrash: true}, nil)
	if err != nil {
		fatal(err)
	}
	rec := obs.New()
	// The engine continues the store's own WAL: post-crash writes are
	// ordinary log records and survive the next crash.
	eng, err := serve.New(db, serve.Options{Recorder: rec, WAL: db.WAL(), Sweeper: true, SweepDelay: time.Second})
	if err != nil {
		fatal(err)
	}
	var nextID atomic.Int64
	nextID.Store(int64(nOps))

	pageParam := func(w http.ResponseWriter, r *http.Request) (model.Var, bool) {
		p := model.Var(r.URL.Query().Get("page"))
		if p == "" {
			http.Error(w, "missing ?page=pgNN", http.StatusBadRequest)
			return "", false
		}
		return p, true
	}
	http.HandleFunc("/read", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pageParam(w, r)
		if !ok {
			return
		}
		v, err := eng.Read(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%s = %s\n", p, v)
	})
	http.HandleFunc("/write", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pageParam(w, r)
		if !ok {
			return
		}
		op := model.ReadWrite(model.OpID(nextID.Add(1)), "client", []model.Var{p}, []model.Var{p})
		if err := eng.Exec(op); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		v, err := eng.Read(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "committed %s; %s = %s\n", op, p, v)
	})
	http.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(eng.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	http.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		if err := eng.Drain(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		st := eng.Stats()
		fmt.Fprintf(w, "fully recovered: %d components (%d pages) in %s\n",
			st.Recovered, st.PagesRecovered, st.FullRecovery)
	})

	fmt.Printf("redoserve: crashed %d ops over %d pages; serving on http://%s\n", nOps, nPages, addr)
	fmt.Printf("  GET /read?page=%s   /write?page=%s   /stats   /drain\n", pages[7], pages[7])
	fatal(http.ListenAndServe(addr, nil))
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "redoserve: %v\n", err)
	os.Exit(1)
}
