// Command redograph rebuilds the paper's figures from the library: for a
// chosen figure or scenario it prints the operations, the conflict graph
// with edge kinds, the installation graph (showing which edges were
// dropped), the states determined by each prefix, the exposure analysis,
// and Graphviz DOT for the graphs.
//
// Usage:
//
//	redograph -figure 4        # Figures 1–8
//	redograph -list            # list available scenarios
//	redograph -all             # every scenario in paper order
//	redograph -dot             # also print DOT output
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
	"redotheory/internal/workload"
	"redotheory/internal/writegraph"
)

func main() {
	figure := flag.Int("figure", 0, "paper figure number (1-8)")
	scenario := flag.String("scenario", "", "scenario by (sub)name, e.g. 'H,J' or 'Scenario 2'")
	all := flag.Bool("all", false, "print every scenario")
	list := flag.Bool("list", false, "list scenarios")
	dot := flag.Bool("dot", false, "also print Graphviz DOT")
	wg := flag.Bool("writegraph", false, "also derive the write graph with same-page writers collapsed (Figures 7 and 8)")
	flag.Parse()

	scenarios := workload.All()
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Note)
		}
		return
	}
	var selected []workload.Scenario
	switch {
	case *all:
		selected = scenarios
	case *scenario != "":
		for _, sc := range scenarios {
			if strings.Contains(strings.ToLower(sc.Name), strings.ToLower(*scenario)) {
				selected = append(selected, sc)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "redograph: no scenario matching %q (try -list)\n", *scenario)
			os.Exit(2)
		}
	case *figure != 0:
		for _, sc := range scenarios {
			if strings.Contains(sc.Name, fmt.Sprintf("Figure %d", *figure)) ||
				strings.Contains(sc.Name, fmt.Sprintf("(Figure %d)", *figure)) {
				selected = append(selected, sc)
			}
		}
		// Figures 5 and 7 derive from the Figure 4 running example.
		if len(selected) == 0 && (*figure == 5 || *figure == 7) {
			selected = append(selected, workload.Figure4())
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "redograph: no scenario for figure %d (try -list)\n", *figure)
			os.Exit(2)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	showWG := *wg || *figure == 7 || *figure == 8
	for i, sc := range selected {
		if i > 0 {
			fmt.Println(strings.Repeat("=", 72))
		}
		render(sc, *dot)
		if showWG {
			renderWriteGraph(sc, *dot)
		}
	}
}

// renderWriteGraph derives the scenario's write graph, collapses the
// writers of each variable into a single node (the one-cache-copy-per-
// page regime of Figures 7 and 8), and prints the resulting nodes,
// forced edges, and a legal install order.
func renderWriteGraph(sc workload.Scenario, dot bool) {
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		fmt.Fprintf(os.Stderr, "redograph: %v\n", err)
		os.Exit(1)
	}
	g := writegraph.FromInstallation(ig, sg)
	fmt.Println("\nwrite graph (same-variable writers collapsed):")
	for _, x := range g.Vars() {
		ws := g.Writers(x)
		if len(ws) < 2 {
			continue
		}
		if _, err := g.Collapse(ws...); err != nil {
			fmt.Printf("  collapse of %s-writers rejected: %v\n", x, err)
		}
	}
	label := func(id writegraph.NodeID) string {
		n := g.Node(id)
		var ops []string
		for _, op := range opsSorted(n) {
			ops = append(ops, cg.Op(op).Name())
		}
		return "{" + strings.Join(ops, ",") + "}→" + strings.Join(varsOf(n), ",")
	}
	for _, id := range g.NodeIDs() {
		fmt.Printf("  node %s\n", label(id))
	}
	for _, u := range g.DAG().Nodes() {
		for _, v := range g.DAG().Succs(u) {
			fmt.Printf("  edge %s -> %s (install order the cache manager must enforce)\n", label(u), label(v))
		}
	}
	fmt.Println("legal install sequence:")
	for {
		m := g.UninstalledMinimal()
		if len(m) == 0 {
			break
		}
		if err := g.Install(m[0]); err != nil {
			fmt.Fprintf(os.Stderr, "redograph: %v\n", err)
			os.Exit(1)
		}
		if err := g.CheckExplainable(); err != nil {
			fmt.Fprintf(os.Stderr, "redograph: state stopped being explainable: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  install %s -> stable state %v (explainable)\n", label(m[0]), g.DeterminedState())
	}
	if dot {
		fmt.Println("\nwrite graph DOT:")
		fmt.Println(graph.Dot(g.DAG(), graph.DotOptions[writegraph.NodeID]{
			Name:      "writegraph",
			NodeLabel: label,
		}))
	}
}

func opsSorted(n *writegraph.Node) []model.OpID {
	out := make([]model.OpID, 0, len(n.Ops()))
	for op := range n.Ops() {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func varsOf(n *writegraph.Node) []string {
	var out []string
	for _, x := range n.Vars() {
		out = append(out, string(x))
	}
	return out
}

func render(sc workload.Scenario, dot bool) {
	fmt.Printf("%s — %s\n\n", sc.Name, sc.Note)
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		fmt.Fprintf(os.Stderr, "redograph: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("operations (invocation order):")
	for _, id := range cg.InvocationOrder() {
		op := cg.Op(id)
		fmt.Printf("  %-18s reads %-8v writes %-8v\n", op, op.Reads(), op.Writes())
	}

	fmt.Println("\nconflict graph edges:")
	printEdges(cg, cg.DAG(), func(u, v model.OpID) string { return cg.Kind(u, v).String() })
	fmt.Println("installation graph edges (pure write-read edges dropped):")
	printEdges(cg, ig.DAG(), func(u, v model.OpID) string { return cg.Kind(u, v).String() })
	for _, u := range cg.DAG().Nodes() {
		for _, v := range cg.DAG().Succs(u) {
			if !ig.DAG().HasEdge(u, v) {
				fmt.Printf("  dropped: %s -> %s (%s)\n", cg.Op(u), cg.Op(v), cg.Kind(u, v))
			}
		}
	}

	fmt.Println("\ninstallation-graph prefixes and the states they determine:")
	prefixes, err := ig.DAG().EnumeratePrefixes(1 << 12)
	if err != nil {
		fmt.Fprintf(os.Stderr, "redograph: %v\n", err)
		os.Exit(1)
	}
	sort.Slice(prefixes, func(i, j int) bool { return len(prefixes[i]) < len(prefixes[j]) })
	conflictPrefixes := 0
	for _, p := range prefixes {
		det, err := ig.DeterminedState(sg, p)
		if err != nil {
			continue
		}
		tag := "installation-only"
		if cg.DAG().IsPrefix(p) {
			tag = "also conflict prefix"
			conflictPrefixes++
		}
		exposed := install.ExposedVars(cg, p)
		unexposed := install.UnexposedVars(cg, p)
		fmt.Printf("  %-16s state %-24s exposed %-10v unexposed %-8v (%s)\n",
			prefixName(cg, p), det, exposed, unexposed, tag)
	}
	fmt.Printf("prefix counts: installation graph %d, conflict graph %d\n",
		len(prefixes), conflictPrefixes)

	if sc.CrashState != nil {
		installed := graph.NewSet(sc.Installed...)
		fmt.Printf("\npaper's crash state %v with installed %s: ", sc.CrashState, prefixName(cg, installed))
		err := ig.PotentiallyRecoverable(sg, installed, sc.CrashState)
		switch {
		case err == nil && sc.Recoverable:
			fmt.Println("recoverable, as the paper says")
		case err != nil && !sc.Recoverable:
			fmt.Printf("unrecoverable, as the paper says (%v)\n", err)
		default:
			fmt.Printf("MISMATCH with the paper: err=%v want recoverable=%v\n", err, sc.Recoverable)
		}
	}

	if dot {
		fmt.Println("\nconflict graph DOT:")
		fmt.Println(graph.Dot(cg.DAG(), graph.DotOptions[model.OpID]{
			Name:      "conflict",
			NodeLabel: func(id model.OpID) string { return cg.Op(id).String() },
			EdgeAttrs: func(u, v model.OpID) string { return fmt.Sprintf("label=%q", cg.Kind(u, v)) },
		}))
		fmt.Println("installation graph DOT:")
		fmt.Println(graph.Dot(ig.DAG(), graph.DotOptions[model.OpID]{
			Name:      "installation",
			NodeLabel: func(id model.OpID) string { return cg.Op(id).String() },
		}))
	}
	fmt.Println()
}

func printEdges(cg *conflict.Graph, dag *graph.Graph[model.OpID], label func(u, v model.OpID) string) {
	n := 0
	for _, u := range dag.Nodes() {
		for _, v := range dag.Succs(u) {
			fmt.Printf("  %s -> %s (%s)\n", cg.Op(u), cg.Op(v), label(u, v))
			n++
		}
	}
	if n == 0 {
		fmt.Println("  (none)")
	}
}

func prefixName(cg *conflict.Graph, p graph.Set[model.OpID]) string {
	if len(p) == 0 {
		return "{}"
	}
	var names []string
	for _, id := range cg.OpIDs() {
		if p.Has(id) {
			names = append(names, cg.Op(id).Name())
		}
	}
	return "{" + strings.Join(names, ",") + "}"
}
