// Package redotheory is an executable reproduction of David Lomet and
// Mark Tuttle's "A Theory of Redo Recovery" (SIGMOD 2003): the conflict,
// installation, state, and write graphs; exposed variables and
// explainable states; the abstract redo recovery procedure and its
// Recovery Invariant; a checker that audits the invariant; and the four
// real recovery methods of Section 6 (logical, physical, physiological,
// and generalized LSN) running on simulated substrates — a page store,
// a write-ahead log manager, a cache manager with careful write
// ordering, and a B-tree.
//
// The library lives under internal/; see README.md for the map,
// DESIGN.md for the paper-to-module inventory, and EXPERIMENTS.md for
// the paper-versus-measured record of every figure. The root package
// holds the benchmark harness (bench_test.go) and the experiment
// harnesses (experiments_test.go) that regenerate the paper's figures
// and claims.
package redotheory
