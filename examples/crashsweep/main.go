// Crashsweep: the E9 experiment as an example — run each of the four
// Section 6 recovery methods over a workload, crash at every point, and
// verify (a) recovery reproduces the stable log's state and (b) the
// recovery invariant held at the crash.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

func main() {
	pages := workload.Pages(6)
	s0 := workload.InitialState(pages)
	factories := []struct {
		name string
		mk   sim.Factory
	}{
		{"logical", func(s *model.State) method.DB { return method.NewLogical(s) }},
		{"physical", func(s *model.State) method.DB { return method.NewPhysical(s) }},
		{"physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) }},
		{"genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) }},
	}
	for _, f := range factories {
		ops, err := workload.ForMethod(f.name, 30, pages, 5)
		if err != nil {
			log.Fatal(err)
		}
		results, err := sim.Sweep(f.mk, ops, s0, 77)
		if err != nil {
			log.Fatal(err)
		}
		s := sim.Summarize(results)
		fmt.Printf("%-14s crash points %2d: recovered %2d, invariant held %2d, total replayed %3d\n",
			f.name, s.Runs, s.Recovered, s.InvariantOK, s.Replayed)
		if s.Recovered != s.Runs || s.InvariantOK != s.Runs {
			log.Fatalf("%s failed a crash point", f.name)
		}
	}
	fmt.Println("\nall methods recover at every crash point; the invariant is the reason why")
}
