// Scenarios: walks the paper's Figures 1–3 end to end — the unrecoverable
// read-write violation, the harmless write-read violation, and the
// exposed-variable refinement — using the library's graphs, exposure
// analysis, and Theorem 3 replay.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/stategraph"
	"redotheory/internal/workload"
)

func main() {
	for _, sc := range []workload.Scenario{
		workload.Scenario1(), workload.Scenario2(), workload.Scenario3(),
	} {
		run(sc)
		fmt.Println()
	}
}

func run(sc workload.Scenario) {
	fmt.Printf("== %s ==\n%s\n", sc.Name, sc.Note)
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range cg.InvocationOrder() {
		op := cg.Op(id)
		fmt.Printf("  %s: reads %v, writes %v\n", op, op.Reads(), op.Writes())
	}
	for _, u := range cg.DAG().Nodes() {
		for _, v := range cg.DAG().Succs(u) {
			kept := "kept in installation graph"
			if !ig.DAG().HasEdge(u, v) {
				kept = "dropped from installation graph"
			}
			fmt.Printf("  conflict edge %s -> %s (%s): %s\n", cg.Op(u), cg.Op(v), cg.Kind(u, v), kept)
		}
	}
	installed := graph.NewSet(sc.Installed...)
	fmt.Printf("  crash state %v with installed ops %v\n", sc.CrashState, sc.Installed)
	for _, x := range cg.Vars() {
		fmt.Printf("  variable %s: exposed=%v\n", x, install.Exposed(cg, installed, x))
	}
	err = ig.PotentiallyRecoverable(sg, installed, sc.CrashState)
	if sc.Recoverable {
		if err != nil {
			log.Fatalf("paper says recoverable, library disagrees: %v", err)
		}
		rec, err := ig.Replay(sg, installed, sc.CrashState)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RECOVERABLE: replaying the uninstalled operations yields %v\n", rec)
	} else {
		fmt.Printf("  UNRECOVERABLE, as the paper argues: %v\n", err)
	}
}
