// Media fault: the robustness story. The paper's recovery procedure
// assumes the stable log and pages are exactly what was forced; this
// example breaks that assumption four ways — page bit-rot, a torn log
// tail, a lost page write under a reading redo test, and a crash inside
// recovery itself — and shows each one detected by integrity metadata
// and survived by degraded recovery (truncate to the last trustworthy
// record, fall back to the recovery base, replay the surviving log in
// order; Lemma 1 is why the replay is correct). It closes with a small
// campaign: methods × fault kinds × crash points, zero silent
// corruption.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

func main() {
	pageBitRot()
	fmt.Println()
	tornTail()
	fmt.Println()
	lostWrite()
	fmt.Println()
	crashInRecovery()
	fmt.Println()
	miniCampaign()
}

// run executes n single-page ops on db and forces the log; installAll
// additionally installs every page (tagging pages at the newest LSNs).
func run(db method.DB, ps []model.Var, n int, installAll bool) {
	for i := 1; i <= n; i++ {
		p := ps[(i-1)%len(ps)]
		if err := db.Exec(model.ReadWrite(model.OpID(i), "upd", []model.Var{p}, []model.Var{p})); err != nil {
			log.Fatal(err)
		}
	}
	db.FlushLog()
	if installAll {
		for db.FlushOne() {
		}
	} else {
		db.FlushOne()
	}
}

func report(res *method.DegradedResult) {
	for _, d := range res.Detections {
		fmt.Printf("  detected %-16s %s\n", d.Code+":", d.Detail)
	}
	switch {
	case res.Unrecoverable:
		fmt.Println("  outcome: unrecoverable — committed work is provably lost, no state returned")
	case res.Degraded:
		fmt.Printf("  outcome: degraded recovery, %d pages quarantined and rewritten, audit ok=%v\n",
			len(res.Quarantined), res.Audit.OK)
	default:
		fmt.Printf("  outcome: clean fast path, audit ok=%v\n", res.Audit.OK)
	}
}

func pageBitRot() {
	fmt.Println("== page bit-rot: the checksum catches what the page-LSN test cannot ==")
	ps := workload.Pages(3)
	db := method.NewPhysiological(workload.InitialState(ps))
	run(db, ps, 6, true)
	db.Crash()
	db.Store().CorruptPage(ps[0])
	res, err := method.RecoverDegraded(db, method.RunToCompletion())
	if err != nil {
		log.Fatal(err)
	}
	report(res)
	if bad := db.Store().VerifyAll(); len(bad) == 0 {
		fmt.Println("  after repair every page re-verifies")
	}
}

func tornTail() {
	fmt.Println("== torn log tail: the chained tail anchor proves records are missing ==")
	ps := workload.Pages(3)
	db := method.NewPhysiological(workload.InitialState(ps))
	run(db, ps, 6, false)
	db.Crash()
	n := db.WAL().TearStableTail(2)
	fmt.Printf("  %d forced records torn off the stable log by the crash\n", n)
	res, err := method.RecoverDegraded(db, method.RunToCompletion())
	if err != nil {
		log.Fatal(err)
	}
	report(res)
	fmt.Printf("  log truncated to its last trustworthy record (now %d records)\n", db.StableLog().Len())
}

func lostWrite() {
	fmt.Println("== lost write under genlsn: the careful-write-order audit ==")
	// genlsn's redo test re-reads the recovering state, which is only
	// sound if page installs respected the read-write dependencies. A
	// lost write reverts a prerequisite page — checksum-valid, above
	// every scalar floor — and only replaying the log's read sets as
	// install-order constraints exposes it.
	ps := workload.Pages(2)
	s0 := workload.InitialState(ps)
	db := method.NewGenLSN(s0)
	ops := []*model.Op{
		model.ReadWrite(1, "u", []model.Var{ps[0]}, []model.Var{ps[0]}),
		model.ReadWrite(2, "u", []model.Var{ps[0], ps[1]}, []model.Var{ps[1]}),
		model.ReadWrite(3, "u", []model.Var{ps[0]}, []model.Var{ps[0]}),
	}
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			log.Fatal(err)
		}
	}
	db.FlushLog()
	for db.FlushOne() {
	}
	db.Crash()
	db.Store().Write(ps[1], s0.Get(ps[1]), 0) // the disk lied: old version survived
	res, err := method.RecoverDegraded(db, method.RunToCompletion())
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func crashInRecovery() {
	fmt.Println("== crash during recovery: the repair-in-progress mark forces a rerun to stay conservative ==")
	ps := workload.Pages(3)
	db := method.NewPhysiological(workload.InitialState(ps))
	run(db, ps, 6, false)
	db.Crash()
	db.WAL().TearStableTail(1)
	first, err := method.RecoverDegraded(db, method.DegradedOptions{AbortAfterRepairs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  first attempt aborted mid-repair after 1 page write (aborted=%v)\n", first.Aborted)
	second, err := method.RecoverDegraded(db, method.RunToCompletion())
	if err != nil {
		log.Fatal(err)
	}
	report(second)
}

func miniCampaign() {
	fmt.Println("== campaign: every method x every fault kind ==")
	methods := []sim.NamedFactory{
		{Name: "logical", New: func(s *model.State) method.DB { return method.NewLogical(s) }},
		{Name: "physiological", New: func(s *model.State) method.DB { return method.NewPhysiological(s) }},
		{Name: "genlsn", New: func(s *model.State) method.DB { return method.NewGenLSN(s) }},
		{Name: "grouplsn", New: func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
	}
	results, err := sim.Campaign(sim.CampaignConfig{
		Methods: methods, NumOps: 10, NumPages: 4,
		CrashPoints: []int{5, 10}, Seeds: []int64{1, 2}, TruncateProb: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := sim.SummarizeCampaign(results)
	fmt.Printf("  %d runs: %d exact, %d degraded, %d unrecoverable, %d not fired\n",
		sum.Runs, sum.ByOutcome[sim.RecoveredExact], sum.ByOutcome[sim.RecoveredDegraded],
		sum.ByOutcome[sim.DetectedUnrecoverable], sum.ByOutcome[sim.FaultNotFired])
	if sum.Silent == 0 {
		fmt.Println("  silent corruption: 0 — every fault was repaired, degraded, or detected")
	} else {
		log.Fatalf("silent corruption: %d", sum.Silent)
	}
}
