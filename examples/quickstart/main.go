// Quickstart: build a small history, derive the conflict and installation
// graphs, install some operations into a stable state, crash, audit the
// recovery invariant, and recover.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/conflict"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

func main() {
	// A tiny banking history over two accounts and an audit counter:
	//   deposit:  a ← a + 100
	//   transfer: b ← a (read a, blindly overwrite b's old balance)
	//   audit:    n ← n + 1
	deposit := model.Incr(1, "a", 100)
	transfer := model.CopyPlus(2, "b", "a", 0)
	audit := model.Incr(3, "n", 1)

	initial := model.StateOf(map[model.Var]model.Value{
		"a": model.IntVal(50), "b": model.IntVal(7),
	})

	// The log is the history; the conflict graph orders its conflicts.
	lg := core.NewLog()
	for _, op := range []*model.Op{deposit, transfer, audit} {
		lg.Append(op)
	}
	cg := conflict.FromOps(deposit, transfer, audit)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state recovery must reproduce: %v\n", sg.FinalState())

	// Install transfer's effect (b=150) but not deposit's. That violates
	// only the write-read edge deposit→transfer, which the installation
	// graph drops — so the state is explainable and recoverable.
	stable := initial.Clone()
	stable.SetInt("b", 150)
	installed := graph.NewSet[model.OpID](transfer.ID())

	if err := ig.Explains(sg, installed, stable); err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	fmt.Printf("stable state %v is explained by installed set {transfer}\n", stable)

	// The checker audits the invariant end to end: given the redo test
	// recovery will use (replay everything not installed), the installed
	// set must induce an explaining prefix.
	ck, err := core.NewChecker(lg, initial)
	if err != nil {
		log.Fatal(err)
	}
	redo := func(op *model.Op, _ *model.State, _ *core.Log, _ core.Analysis) bool {
		return !installed.Has(op.ID())
	}
	rep := ck.Check(stable, lg, graph.NewSet[model.OpID](), redo, nil, true)
	fmt.Println(rep.Summary())

	// Run recovery (Figure 6) and verify.
	res, err := core.Recover(stable.Clone(), lg, graph.NewSet[model.OpID](), redo, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery replayed %d ops -> %v\n", len(res.RedoSet), res.State)
	if !res.State.Equal(sg.FinalState()) {
		log.Fatal("recovery diverged!")
	}
	fmt.Println("recovered state matches the conflict graph's final state")
}
