// Onlineaudit: embeds the online recovery-invariant auditor in a running
// database. The auditor follows execution live — one event per logged
// operation and per page install — and answers "if we crashed right now,
// would recovery work?" after every step. The example then breaks the
// write-ahead rule on purpose and shows the continuous audit catching
// the resulting unexplainable stable state, naming the exact page.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/core"
	"redotheory/internal/method"
	"redotheory/internal/workload"
)

func main() {
	healthyRun()
	fmt.Println()
	walFaultRun()
}

func healthyRun() {
	fmt.Println("== continuous audit of a healthy page-LSN system ==")
	pages := workload.Pages(4)
	s0 := workload.InitialState(pages)
	db := method.NewGenLSN(s0)
	auditor := core.NewAuditor(s0)
	db.SetInstallHook(auditor.PageInstalled)

	ops := workload.ReadManyWriteOne(12, pages, 3, 3)
	for i, op := range ops {
		if err := db.Exec(op); err != nil {
			log.Fatal(err)
		}
		if _, err := auditor.Logged(op); err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			db.FlushOne()
		}
		rep := auditor.Audit(db.StableState())
		status := "recoverable"
		if !rep.OK {
			status = "NOT RECOVERABLE: " + rep.Summary()
		}
		fmt.Printf("  after op %2d: %2d installed, %2d to redo — crash now is %s\n",
			i+1, len(rep.Installed), len(rep.RedoSet), status)
		if !rep.OK {
			log.Fatal("healthy run flagged")
		}
	}
	fmt.Printf("audits performed: %d, all green\n", auditor.Audits)
}

func walFaultRun() {
	fmt.Println("== the same system with the write-ahead rule broken ==")
	pages := workload.Pages(3)
	s0 := workload.InitialState(pages)
	db := method.NewPhysiological(s0)
	db.DisableWAL()
	auditor := core.NewAuditor(s0)
	db.SetInstallHook(auditor.PageInstalled)

	ops := workload.SinglePage(10, pages, 9, false)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			log.Fatal(err)
		}
		if _, err := auditor.Logged(op); err != nil {
			log.Fatal(err)
		}
		db.FlushOne() // installs pages whose log records are still volatile
	}
	// Crash: the volatile log tail evaporates. The stable state now
	// contains effects of operations the surviving log has never heard
	// of. Audit against what actually survived.
	db.Crash()
	survivors, err := core.NewChecker(db.StableLog(), s0)
	if err != nil {
		log.Fatal(err)
	}
	rep := survivors.Check(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze(), true)
	fmt.Println(rep.Summary())
	if rep.OK {
		log.Fatal("WAL violation went undetected")
	}
	fmt.Println("the checker names the mis-explained page: fix the WAL coupling, not the recovery code")
}
