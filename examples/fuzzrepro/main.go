// Fuzz repro walkthrough: what a minimized redofuzz artifact carries
// and how to replay it. The checked-in repro.json was produced by the
// shrinker from a fuzzing run with a deliberately planted oracle bug
// (the package fuzz shrink tests inject one through a test-only hook):
// the original failing cell was a 12-operation physiological history
// crashing at op 8 under a busy flush/checkpoint schedule, and delta
// debugging minimized it to the 2 operations you see in the artifact,
// crash after both, all background activity silenced.
//
// Replaying it here runs the full differential oracle — sequential
// recovery, partitioned parallel recovery, degraded recovery, and the
// invariant checker's determined-state comparison — over the
// reconstructed cell. Since the planted bug lives only in that test
// hook, the real oracle legs all agree and the replay reports the cell
// passing; a repro from a genuine recovery bug would exit with the
// disagreement instead. Either way the replay is deterministic: the
// artifact pins the history (ReadWrite digests are pure functions of
// the recorded id/name/reads/writes), the crash point, and the
// schedule seed.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"

	"redotheory/internal/fuzz"
	"redotheory/internal/sim"
)

//go:embed repro.json
var reproJSON []byte

func main() {
	a, err := fuzz.DecodeArtifact(reproJSON)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact: %s\n", a.Schema)
	fmt.Printf("  method   %s (shape %s, %d pages)\n", a.Method, a.Shape, a.Pages)
	fmt.Printf("  history  %d ops, crash after %d\n", len(a.Ops), a.Crash)
	for i, op := range a.Ops {
		fmt.Printf("    op %d: %s#%d reads=%v writes=%v\n", i, op.Name, op.ID, op.Reads, op.Writes)
	}
	fmt.Printf("  schedule seed=%d flush=%g force=%g checkpoint=%g truncate=%g\n",
		a.Schedule.Seed, a.Schedule.FlushProb, a.Schedule.ForceProb,
		a.Schedule.CheckpointProb, a.Schedule.TruncateProb)
	fmt.Printf("  recorded %s: %s\n\n", a.Check, a.Detail)

	fail, err := fuzz.Replay(sim.DefaultMethods(), a)
	if err != nil {
		log.Fatal(err)
	}
	if fail != nil {
		fmt.Printf("REPRODUCED %s: %s\n", fail.Check, fail.Detail)
		os.Exit(1)
	}
	fmt.Println("replay: all oracle legs agree on this cell.")
	fmt.Println("(The recorded disagreement came from a bug planted through the")
	fmt.Println("test-only hook, so the real recovery paths rightly pass it; a")
	fmt.Println("repro from a genuine bug would exit 1 here with the divergence.)")
}
