// Instantrestart: serve reads and writes during recovery. A hot-page
// history is crashed with its whole log forced — maximal redo debt,
// nothing installed — and instead of replaying everything before
// admitting traffic, the serve engine runs only the decision phase and
// then recovers pages lazily, on first touch. The walkthrough shows
// that a read served while most of the log is still unreplayed already
// equals the offline recovery outcome, that a post-crash write commits
// through the admission gate mid-recovery, and that draining the rest
// lands exactly on sequential recovery plus that write.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/serve"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

func main() {
	pages := workload.Pages(64)
	ops := workload.HotPage(300, pages, 7)
	mk := func(s *model.State) method.DB { return method.NewPhysiological(s) }
	sched := sim.Sched{Seed: 7, ForceOnCrash: true}

	// Offline reference: crash once and recover sequentially, end to end.
	db, err := sim.BuildCrashed(mk, workload.InitialState(pages), ops, len(ops), sched, nil)
	if err != nil {
		log.Fatal(err)
	}
	offline, err := method.Recover(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline recovery replays %d of %d logged operations before the first read\n",
		len(offline.Replayed), len(ops))

	// Instant restart: the identical crash, served immediately.
	db, err = sim.BuildCrashed(mk, workload.InitialState(pages), ops, len(ops), sched, nil)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := serve.New(db, serve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("serve engine up after the decision phase alone: %d/%d components recovered\n",
		st.Recovered, st.Components)

	// First read: touching one page recovers just that page's component.
	hot := ops[0].Writes()[0]
	v, err := eng.Read(hot)
	if err != nil {
		log.Fatal(err)
	}
	st = eng.Stats()
	fmt.Printf("first read %s = %.12s… after recovering %d/%d components\n",
		hot, v, st.Recovered, st.Components)
	if want := offline.State.Get(hot); v != want {
		log.Fatalf("served %q, offline recovery has %q", v, want)
	}
	fmt.Println("the early read already equals the offline recovery outcome")

	// A post-crash write commits mid-recovery: the gate first recovers
	// everything the write could disturb, then appends to the WAL.
	post := model.ReadWrite(model.OpID(len(ops)+1), "post", []model.Var{pages[9]}, []model.Var{pages[9]})
	if err := eng.Exec(post); err != nil {
		log.Fatal(err)
	}
	st = eng.Stats()
	fmt.Printf("committed %s mid-recovery (%d/%d components recovered)\n",
		post, st.Recovered, st.Components)

	// Drain the cold tail and compare against sequential recovery plus
	// the committed write.
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Result()
	if err != nil {
		log.Fatal(err)
	}
	ref := offline.State.Clone()
	if _, err := ref.Apply(post); err != nil {
		log.Fatal(err)
	}
	if !res.State.Equal(ref) {
		log.Fatalf("drained state diverges from offline recovery + write on %v", res.State.Diff(ref))
	}
	st = eng.Stats()
	fmt.Printf("drained: %d/%d components, %d lazily on touch, %d by sweep\n",
		st.Components, st.Components, st.Lazy, st.Swept)
	fmt.Println("\nfull recovery reached lazily, in touch order — same state, but the first read did not wait for it")
}
