// B-tree split: reproduces Section 6.4 / Figure 8. A B-tree runs on two
// recovery methods — physiological (splits physically log the moved
// half) and generalized LSN (splits log a read-old-write-new descriptor,
// and the cache manager enforces new-page-before-old-page write order).
// The example shows the careful write ordering in action, crashes with
// only the new page installed, recovers, and compares log volume.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"redotheory/internal/btree"
	"redotheory/internal/method"
	"redotheory/internal/model"
)

// stateExec reads a recovered state as a tree executor.
type stateExec struct{ s *model.State }

func (e *stateExec) Read(x model.Var) model.Value { return e.s.Get(x) }
func (e *stateExec) Exec(op *model.Op) error      { _, err := e.s.Apply(op); return err }

func main() {
	carefulWriteOrder()
	fmt.Println()
	crashMidSplit()
	fmt.Println()
	logVolume()
}

// carefulWriteOrder shows the Figure 8 constraint: after a generalized
// split, the old page cannot be flushed before the new page.
func carefulWriteOrder() {
	fmt.Println("== careful write order (Figure 8) ==")
	db := method.NewGenLSN(model.NewState())
	tr := btree.New(db, btree.GeneralizedSplit, 2, 1)
	for k := int64(1); k <= 3; k++ {
		if err := tr.Insert(k); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 1..3 with order-2 nodes: %d split(s)\n", tr.Splits)
	flushed := []model.Var{}
	for db.FlushOne() {
		// Record the install order the cache manager chose.
		for _, v := range []model.Var{"bt-root", "bt-n0001", "bt-n0002"} {
			if db.StableState().Get(v) != "" && !contains(flushed, v) {
				flushed = append(flushed, v)
			}
		}
	}
	fmt.Printf("pages reached stable storage in order: %v\n", flushed)
	fmt.Println("(new pages always precede the truncated old page)")
}

func contains(vs []model.Var, x model.Var) bool {
	for _, v := range vs {
		if v == x {
			return true
		}
	}
	return false
}

// crashMidSplit installs only the new page of a split, crashes, and
// recovers: the truncate operation replays against the intact old page.
func crashMidSplit() {
	fmt.Println("== crash with only the new page installed ==")
	db := method.NewGenLSN(model.NewState())
	tr := btree.New(db, btree.GeneralizedSplit, 4, 1)
	keys := []int64{10, 20, 30, 40, 50} // the 5th insert splits the root
	for _, k := range keys {
		if err := tr.Insert(k); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("splits: %d, log records: %d\n", tr.Splits, db.Stats().LogRecords)
	db.FlushOne() // the cache manager picks an installable page: a new one
	db.FlushLog()
	db.Crash()
	res, err := method.Recover(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery replayed %d of %d records\n", len(res.RedoSet), res.Examined)
	rec := btree.New(&stateExec{s: res.State}, btree.GeneralizedSplit, 4, 1)
	if err := rec.Validate(); err != nil {
		log.Fatal(err)
	}
	got, err := rec.Keys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered tree holds %v — intact after the mid-split crash\n", got)
}

// logVolume compares split log bytes across the two strategies.
func logVolume() {
	fmt.Println("== split log volume: physiological vs generalized (E10) ==")
	rng := rand.New(rand.NewSource(11))
	keys := make([]int64, 1500)
	for i := range keys {
		keys[i] = rng.Int63n(1_000_000)
	}
	physio := method.NewPhysiological(model.NewState())
	trP := btree.New(physio, btree.PhysiologicalSplit, 32, 1)
	gen := method.NewGenLSN(model.NewState())
	trG := btree.New(gen, btree.GeneralizedSplit, 32, 1)
	for _, k := range keys {
		if err := trP.Insert(k); err != nil {
			log.Fatal(err)
		}
		if err := trG.Insert(k); err != nil {
			log.Fatal(err)
		}
	}
	pS, gS := btree.SplitLogBytes(physio.Log()), btree.SplitLogBytes(gen.Log())
	fmt.Printf("%d splits each; split-record bytes: physiological %d, generalized %d (%.1fx)\n",
		trP.Splits, pS, gS, float64(pS)/float64(gS))
	fmt.Println("the gap is the moved half of each node, which only physiological logging ships")
}
