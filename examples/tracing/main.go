// Causal-tracing walkthrough: how a recovery turns into a span tree
// and what the profiler reads off it.
//
// The first half traces a recovery live: a small multi-page workload is
// executed and crashed, then recovered by the partitioned parallel
// engine with a recorder sinking into memory. The event stream that
// comes out is the trace model of DESIGN.md §13 — a trace-begin event
// naming the recovery, an umbrella `recover` span, its coordinator
// phases (`decide`, `partition`, `replay`, `merge`) parented under it,
// and one `component` span per interference component, emitted by
// whichever worker replayed it, carrying the component label, worker
// id, record count, and write width.
//
// The second half analyzes the checked-in trace.json — produced by
// `redosim -trace` over every recovery method plus one supervised
// nested-crash run — the way `redotrace` does: split the stream into
// recoveries, walk the span tree for the critical path (the chain of
// spans the recovery actually waited on), rank the component
// stragglers, and draw the ASCII timeline.
package main

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"redotheory/internal/method"
	"redotheory/internal/obs"
	"redotheory/internal/rtrace"
	"redotheory/internal/workload"
)

//go:embed trace.json
var traceJSON []byte

func main() {
	// --- Part 1: trace a recovery live. ---
	pages := workload.Pages(6)
	s0 := workload.InitialState(pages)
	db := method.NewPhysiological(s0)
	for i, op := range workload.SinglePage(24, pages, 7, false) {
		if err := db.Exec(op); err != nil {
			log.Fatal(err)
		}
		if i%3 == 0 {
			db.FlushLog()
		}
	}
	db.FlushLog()
	db.Crash()

	rec := obs.New()
	sink := &obs.MemorySink{}
	rec.SetSink(sink)
	res, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 4, Recorder: rec})
	rec.SetSink(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d ops across %d components; the trace saw:\n",
		len(res.RedoSet), res.Plan.Components)

	recs, err := rtrace.Split(sink.Events())
	if err != nil {
		log.Fatal(err)
	}
	live := rtrace.Main(recs)
	live.Walk(func(n *rtrace.Node, depth int) {
		fmt.Printf("  %*s%s", depth*2, "", n.Label())
		if n.Size > 0 {
			fmt.Printf("  [%d records]", n.Size)
		}
		fmt.Printf("  %s\n", n.Dur())
	})

	// --- Part 2: profile the checked-in campaign trace. ---
	var tr rtrace.Trace
	if err := json.Unmarshal(traceJSON, &tr); err != nil {
		log.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchecked-in trace: %s\n", tr.Source)
	recs, err = rtrace.Split(tr.Events)
	if err != nil {
		log.Fatal(err)
	}
	rtrace.RenderSummary(os.Stdout, recs)
	fmt.Println()

	main_ := rtrace.Main(recs)
	rtrace.RenderCriticalPath(os.Stdout, rtrace.CriticalPath(main_.Roots[0]))
	fmt.Println()
	rtrace.RenderStragglers(os.Stdout, main_, 5)
	fmt.Println()
	rtrace.RenderTimeline(os.Stdout, main_, 48)

	// The same analysis ships as a command: redotrace examples/tracing/trace.json
	// (and -chrome trace-chrome.json exports it for Perfetto / chrome://tracing).
}
