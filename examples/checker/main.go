// Checker: uses the recovery-invariant checker as a recovery auditor.
// It shows a healthy configuration passing, then three distinct
// failure modes being caught with precise diagnoses: a cache manager
// that installs out of installation-graph order (Scenario 1), a torn
// multi-variable installation (Section 5's E,F,G), and a redo test that
// skips a needed operation.
package main

import (
	"fmt"
	"log"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/trace"
)

func main() {
	healthy()
	fmt.Println()
	badWriteOrder()
	fmt.Println()
	tornInstall()
	fmt.Println()
	brokenRedoTest()
}

func audit(t *trace.Trace) *core.Report {
	ops, initial, state, installed, err := t.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	lg := core.NewLog()
	for _, op := range ops {
		lg.Append(op)
	}
	ck, err := core.NewChecker(lg, initial)
	if err != nil {
		log.Fatal(err)
	}
	return ck.CheckInstalled(state, installed)
}

func healthy() {
	fmt.Println("== healthy: Scenario 2's write-read violation is fine ==")
	rep := audit(&trace.Trace{
		Ops: []trace.Op{
			{ID: 1, Name: "B:y<-2", Wrote: map[string]string{"y": "2"}},
			{ID: 2, Name: "A:x<-y+1", Reads: []string{"y"}, Wrote: map[string]string{"x": "3"}},
		},
		State:     map[string]string{"x": "3"},
		Installed: []uint64{2},
	})
	fmt.Println(rep.Summary())
}

func badWriteOrder() {
	fmt.Println("== caught: cache installed past a read-write edge (Scenario 1) ==")
	rep := audit(&trace.Trace{
		Ops: []trace.Op{
			{ID: 1, Name: "A:x<-y+1", Reads: []string{"y"}, Wrote: map[string]string{"x": "1"}},
			{ID: 2, Name: "B:y<-2", Wrote: map[string]string{"y": "2"}},
		},
		State:     map[string]string{"y": "2"},
		Installed: []uint64{2},
	})
	fmt.Println(rep.Summary())
}

func tornInstall() {
	fmt.Println("== caught: torn multi-variable install (Section 5, E/F/G) ==")
	// E: x<-y+1, F: y<-x+1, G: x<-x+1 from 0,0 execute to x=2,y=2. The
	// three must install atomically; here only x reached the disk.
	rep := audit(&trace.Trace{
		Ops: []trace.Op{
			{ID: 1, Name: "E", Reads: []string{"y"}, Wrote: map[string]string{"x": "1"}},
			{ID: 2, Name: "F", Reads: []string{"x"}, Wrote: map[string]string{"y": "2"}},
			{ID: 3, Name: "G", Reads: []string{"x"}, Wrote: map[string]string{"x": "2"}},
		},
		State:     map[string]string{"x": "2"}, // y missing: the group tore
		Installed: []uint64{1, 2, 3},
	})
	fmt.Println(rep.Summary())
}

func brokenRedoTest() {
	fmt.Println("== caught: redo test skips a needed operation ==")
	o := model.Incr(1, "x", 1)
	p := model.CopyPlus(2, "y", "x", 1)
	lg := core.NewLog()
	lg.Append(o)
	lg.Append(p)
	ck, err := core.NewChecker(lg, model.NewState())
	if err != nil {
		log.Fatal(err)
	}
	// Nothing installed, but the redo test never replays O.
	broken := func(op *model.Op, _ *model.State, _ *core.Log, _ core.Analysis) bool {
		return op.ID() != 1
	}
	rep := ck.Check(model.NewState(), lg, graph.NewSet[model.OpID](), broken, nil, true)
	fmt.Println(rep.Summary())
}
