package redotheory_test

// Experiment harnesses: each Test below regenerates one row of
// EXPERIMENTS.md, printing the measured values and asserting the shape
// the paper predicts. Run them all with:
//
//	go test -run Experiment -v .

import (
	"fmt"
	"math/rand"
	"testing"

	"redotheory/internal/btree"
	"redotheory/internal/conflict"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/stategraph"
	"redotheory/internal/workload"
)

func TestExperimentE1E2E3ScenarioVerdicts(t *testing.T) {
	fmt.Println("E1–E3: scenario verdicts (Figures 1–3)")
	for _, sc := range []workload.Scenario{
		workload.Scenario1(), workload.Scenario2(), workload.Scenario3(),
	} {
		cg := conflict.FromOps(sc.Ops...)
		ig := install.FromConflict(cg)
		sg, err := stategraph.FromConflict(cg, sc.Initial)
		if err != nil {
			t.Fatal(err)
		}
		installed := graph.NewSet(sc.Installed...)
		err = ig.PotentiallyRecoverable(sg, installed, sc.CrashState)
		got := err == nil
		fmt.Printf("  %-24s paper: recoverable=%-5v measured: recoverable=%-5v\n",
			sc.Name, sc.Recoverable, got)
		if got != sc.Recoverable {
			t.Errorf("%s: verdict mismatch", sc.Name)
		}
	}
}

func TestExperimentE5PrefixCounts(t *testing.T) {
	// Figure 5's point: the installation graph strictly widens the set of
	// recoverable prefixes. On the running example it is 5 vs 4
	// (including the full and empty prefixes).
	sc := workload.Figure4()
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	ip, err := ig.DAG().EnumeratePrefixes(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cg.DAG().EnumeratePrefixes(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("E5: prefixes on the Figure 4/5 example: installation=%d conflict=%d\n", len(ip), len(cp))
	if len(ip) != 5 || len(cp) != 4 {
		t.Errorf("expected 5 installation prefixes vs 4 conflict prefixes, got %d vs %d", len(ip), len(cp))
	}
	// And in general the containment is one-way.
	rng := rand.New(rand.NewSource(5))
	totalI, totalC := 0, 0
	for trial := 0; trial < 50; trial++ {
		ops := workload.AnyShape(8, workload.Pages(3), rng.Int63())
		g := conflict.FromOps(ops...)
		i2, err1 := install.FromConflict(g).DAG().EnumeratePrefixes(1 << 14)
		c2, err2 := g.DAG().EnumeratePrefixes(1 << 14)
		if err1 != nil || err2 != nil {
			continue
		}
		totalI += len(i2)
		totalC += len(c2)
		if len(i2) < len(c2) {
			t.Error("installation graph has fewer prefixes than the conflict graph")
		}
	}
	fmt.Printf("E5: over 50 random 8-op histories: installation prefixes=%d conflict prefixes=%d (%.2fx)\n",
		totalI, totalC, float64(totalI)/float64(totalC))
}

func TestExperimentE7CarefulWriteOrder(t *testing.T) {
	// Figure 7: collapsing the x-writers O and Q forces y before x.
	s0 := model.NewState()
	s0.SetInt("x", 1)
	cg := conflict.FromOps(
		model.Incr(1, "x", 1),
		model.CopyPlus(2, "y", "x", 1),
		model.Incr(3, "x", 1))
	sg, err := stategraph.FromConflict(cg, s0)
	if err != nil {
		t.Fatal(err)
	}
	// The experiment lives in internal/writegraph's tests; here we record
	// the shape: with O,Q collapsed, the only legal install order is P
	// first. Verified via the minimal-uninstalled sequence.
	ig := install.FromConflict(cg)
	_ = sg
	if !ig.IsPrefix(graph.NewSet[model.OpID](2)) {
		t.Error("P must be installable first")
	}
	fmt.Println("E7: collapse({O,Q}) forces install order [P, {O,Q}] — verified in writegraph tests")
}

func TestExperimentE9CrashMatrix(t *testing.T) {
	fmt.Println("E9: crash matrix — 4 methods × every crash point of a 30-op workload")
	pages := workload.Pages(8)
	s0 := workload.InitialState(pages)
	rows := []struct {
		name string
		mk   sim.Factory
	}{
		{"logical", func(s *model.State) method.DB { return method.NewLogical(s) }},
		{"physical", func(s *model.State) method.DB { return method.NewPhysical(s) }},
		{"physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) }},
		{"physiological+dpt", func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }},
		{"genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) }},
		{"genlsn+mv", func(s *model.State) method.DB { return method.NewGenLSNMV(s) }},
		{"grouplsn", func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
	}
	for _, row := range rows {
		ops, err := workload.ForMethod(row.name, 30, pages, 17)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sim.Sweep(row.mk, ops, s0, 17)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.Summarize(results)
		fmt.Printf("  %-14s crash points=%d recovered=%d invariant=%d replayed=%d examined=%d\n",
			s.Method, s.Runs, s.Recovered, s.InvariantOK, s.Replayed, s.Examined)
		if s.Recovered != s.Runs || s.InvariantOK != s.Runs {
			t.Errorf("%s: not every crash point recovered", row.name)
		}
	}
}

func TestExperimentE10SplitLogVolume(t *testing.T) {
	fmt.Println("E10: B-tree split log bytes, physiological vs generalized (Section 6.4)")
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 1200)
	for i := range keys {
		keys[i] = rng.Int63n(10_000_000)
	}
	prevRatio := 0.0
	for _, order := range []int{8, 16, 32, 64} {
		physio := method.NewPhysiological(model.NewState())
		trP := btree.New(physio, btree.PhysiologicalSplit, order, 1)
		gen := method.NewGenLSN(model.NewState())
		trG := btree.New(gen, btree.GeneralizedSplit, order, 1)
		for _, k := range keys {
			if err := trP.Insert(k); err != nil {
				t.Fatal(err)
			}
			if err := trG.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		pS, gS := btree.SplitLogBytes(physio.Log()), btree.SplitLogBytes(gen.Log())
		ratio := float64(pS) / float64(gS)
		fmt.Printf("  order=%-3d splits=%-4d physio=%-7d genlsn=%-7d ratio=%.2fx\n",
			order, trP.Splits, pS, gS, ratio)
		if ratio <= 1.5 {
			t.Errorf("order %d: ratio %.2f, expected the generalized strategy to win clearly", order, ratio)
		}
		if ratio < prevRatio {
			t.Errorf("order %d: ratio shrank (%.2f -> %.2f); it should grow with page size", order, prevRatio, ratio)
		}
		prevRatio = ratio
	}
}

func TestExperimentE11LegacyEdgeCounts(t *testing.T) {
	// The legacy construction removes at least the new construction's
	// edges; count how many more over random histories.
	rng := rand.New(rand.NewSource(11))
	var conflictE, newE, legacyE int
	for trial := 0; trial < 100; trial++ {
		ops := workload.AnyShape(20, workload.Pages(4), rng.Int63())
		cg := conflict.FromOps(ops...)
		conflictE += cg.DAG().NumEdges()
		newE += install.FromConflict(cg).DAG().NumEdges()
		legacyE += install.LegacyFromConflict(cg).DAG().NumEdges()
	}
	fmt.Printf("E11: edges over 100 random 20-op histories: conflict=%d new-installation=%d legacy=%d\n",
		conflictE, newE, legacyE)
	if newE > conflictE || legacyE > newE {
		t.Errorf("edge containment violated: %d / %d / %d", conflictE, newE, legacyE)
	}
}

func TestExperimentE13CheckpointInterval(t *testing.T) {
	// Extension experiment: recovery work versus checkpoint frequency.
	// More frequent checkpoints shrink the redo scan (Examined) at the
	// price of more checkpoint work; the curve should be monotone.
	fmt.Println("E13: recovery work vs checkpoint interval (physiological, 237 ops)")
	pages := workload.Pages(8)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(237, pages, 23, false)
	prevExamined := -1
	for _, interval := range []int{10, 25, 50, 100, 0} { // 0 = never
		db := method.NewPhysiological(s0)
		for i, op := range ops {
			if err := db.Exec(op); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 { // a lazy background writer: some pages stay dirty
				db.FlushOne()
			}
			if interval > 0 && (i+1)%interval == 0 {
				// Checkpoint-triggered draining: flush everything so the
				// fuzzy bound actually advances to the checkpoint.
				for db.FlushOne() {
				}
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		db.FlushLog()
		stats := db.Stats()
		db.Crash()
		res, err := method.Recover(db)
		if err != nil {
			t.Fatal(err)
		}
		oracle := s0.Clone()
		for _, op := range db.StableLog().Ops() {
			oracle.MustApply(op)
		}
		if !res.State.Equal(oracle) {
			t.Fatalf("interval %d: recovery diverged", interval)
		}
		label := fmt.Sprint(interval)
		if interval == 0 {
			label = "never"
		}
		fmt.Printf("  checkpoint every %-5s ops: examined=%-3d replayed=%-3d checkpoints=%d\n",
			label, res.Examined, len(res.RedoSet), stats.Checkpoints)
		if prevExamined >= 0 && res.Examined < prevExamined {
			t.Errorf("interval %s: examined %d < previous %d; scan work should grow as checkpoints thin out",
				label, res.Examined, prevExamined)
		}
		prevExamined = res.Examined
	}
}

func TestExperimentE14DPTAnalysisBenefit(t *testing.T) {
	// Extension experiment: the ARIES-style analysis phase lets the redo
	// test reject installed operations without reading their pages.
	fmt.Println("E14: DPT analysis skips vs plain page-LSN testing")
	pages := workload.Pages(8)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(150, pages, 29, false)
	db := method.NewPhysiologicalDPT(s0)
	// The first page is never flushed: it pins the checkpoint bound low.
	for i, op := range ops {
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
		// Install everything except the hot page, so plenty of installed
		// work sits above the bound where only the analysis can skip it
		// cheaply.
		for _, p := range pages[1:] {
			_ = db.FlushPage(p)
		}
		if (i+1)%40 == 0 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.FlushLog()
	db.Crash()
	res, err := method.Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	oracle := s0.Clone()
	for _, op := range db.StableLog().Ops() {
		oracle.MustApply(op)
	}
	if !res.State.Equal(oracle) {
		t.Fatal("recovery diverged")
	}
	fmt.Printf("  examined=%d replayed=%d dpt-skips=%d (rejections decided without a page read)\n",
		res.Examined, len(res.RedoSet), db.DPTSkips)
	if db.DPTSkips == 0 {
		t.Error("the analysis phase never fired; the workload should leave installed work above the bound")
	}
}

func TestExperimentE15AtomicGroupSizes(t *testing.T) {
	// Extension experiment for Section 7's "large atomic transitions"
	// problem: multi-page write sets chain atomicity obligations through
	// the shared cache copies. Measure the largest atomic write group
	// the grouplsn method needs as transfers touch more shared pages.
	// The driver is how long the cache accumulates before installing:
	// each transfer entangles two pages, so a background writer that lags
	// k transfers faces atomic groups that grow with k (bounded by the
	// page count). This is precisely why the paper flags "how to manage
	// or avoid large atomic transitions" as challenging.
	fmt.Println("E15: atomic write-group sizes under grouplsn (Section 5/7)")
	prevMax := 0
	for _, lag := range []int{1, 4, 16, 64} {
		pages := workload.Pages(16)
		s0 := workload.InitialState(pages)
		db := method.NewGroupLSN(s0)
		for i, op := range workload.BankTransfers(64, pages, 3) {
			if err := db.Exec(op); err != nil {
				t.Fatal(err)
			}
			if i%lag == lag-1 {
				db.FlushOne()
			}
		}
		for db.FlushOne() {
		}
		fmt.Printf("  writer lag=%-3d transfers=64: group flushes=%-3d max group size=%d\n",
			lag, db.GroupFlushes, db.MaxGroupSize)
		if db.MaxGroupSize < prevMax {
			t.Errorf("group size shrank as the writer lagged more (%d -> %d)", prevMax, db.MaxGroupSize)
		}
		prevMax = db.MaxGroupSize
		db.Crash()
		res, err := method.Recover(db)
		if err != nil {
			t.Fatal(err)
		}
		oracle := s0.Clone()
		for _, op := range db.StableLog().Ops() {
			oracle.MustApply(op)
		}
		if !res.State.Equal(oracle) {
			t.Fatal("grouplsn recovery diverged")
		}
	}
}

func TestExperimentE16LogTruncation(t *testing.T) {
	// Extension experiment: checkpoints exist to bound the log. With
	// truncation after each checkpoint, the retained log stays flat as
	// the history grows; without it, the log grows linearly.
	fmt.Println("E16: retained log records with and without truncation (physiological)")
	pages := workload.Pages(8)
	s0 := workload.InitialState(pages)
	for _, n := range []int{130, 430, 1630} {
		ops := workload.SinglePage(n, pages, 41, false)
		retained := map[bool]int{}
		for _, truncate := range []bool{false, true} {
			db := method.NewPhysiological(s0)
			for i, op := range ops {
				if err := db.Exec(op); err != nil {
					t.Fatal(err)
				}
				db.FlushOne()
				if (i+1)%50 == 0 {
					for db.FlushOne() {
					}
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					if truncate {
						if _, err := db.TruncateCheckpointed(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			db.FlushLog()
			retained[truncate] = db.Log().Len()
			db.Crash()
			res, err := method.Recover(db)
			if err != nil {
				t.Fatal(err)
			}
			oracle := db.RecoveryBase()
			for _, op := range db.StableLog().Ops() {
				oracle.MustApply(op)
			}
			if !res.State.Equal(oracle) {
				t.Fatalf("n=%d truncate=%v: recovery diverged", n, truncate)
			}
		}
		fmt.Printf("  ops=%-5d retained without truncation=%-5d with=%d\n",
			n, retained[false], retained[true])
		if retained[false] != n {
			t.Errorf("untruncated log should retain all %d records", n)
		}
		if retained[true] > 60 {
			t.Errorf("truncated log retained %d records; should stay near the checkpoint interval", retained[true])
		}
	}
}

func TestExperimentE17InvariantNecessity(t *testing.T) {
	// The paper's second main result (Section 1.2): if recovery chooses a
	// redo set, the remaining operations MUST form an explaining prefix
	// for recovery to be guaranteed. Sufficiency (Corollary 4) is exact:
	// whenever the invariant holds, recovery succeeds — asserted here
	// with zero tolerance. Necessity is about guarantees, not instances:
	// a violating redo set can get lucky (Section 7's over-replay
	// latitude), so we report how often violation nevertheless recovers,
	// and assert that it is unreliable (fails somewhere) while the
	// invariant never does.
	rng := rand.New(rand.NewSource(99))
	var holdRecovered, holdTotal, violRecovered, violTotal int
	for trial := 0; trial < 400; trial++ {
		ops := workload.AnyShape(10, workload.Pages(3), rng.Int63())
		lg := coreLogOf(ops)
		ck, err := core.NewChecker(lg, model.NewState())
		if err != nil {
			t.Fatal(err)
		}
		// A random claimed-installed subset, prefix or not, with the
		// state built as the subset's effects applied in log order (what
		// a buggy cache manager might leave behind).
		installed := graph.NewSet[model.OpID]()
		state := model.NewState()
		for _, op := range ops {
			if rng.Float64() < 0.5 {
				installed.Add(op.ID())
				state.MustApply(op)
			}
		}
		redo := func(op *model.Op, _ *model.State, _ *core.Log, _ core.Analysis) bool {
			return !installed.Has(op.ID())
		}
		rep := ck.CheckInstalled(state, installed)
		res, err := core.Recover(state.Clone(), lg, graph.NewSet[model.OpID](), redo, nil)
		if err != nil {
			continue
		}
		recovered := res.State.Equal(ck.FinalState())
		if rep.OK {
			holdTotal++
			if recovered {
				holdRecovered++
			}
		} else {
			violTotal++
			if recovered {
				violRecovered++
			}
		}
	}
	fmt.Printf("E17: invariant holds: %d/%d recovered; invariant violated: %d/%d recovered anyway\n",
		holdRecovered, holdTotal, violRecovered, violTotal)
	if holdRecovered != holdTotal {
		t.Errorf("Corollary 4 broken: %d/%d", holdRecovered, holdTotal)
	}
	if violTotal == 0 || holdTotal == 0 {
		t.Fatal("degenerate sample")
	}
	if violRecovered == violTotal {
		t.Error("every violating configuration recovered; necessity experiment is inert")
	}
}

// coreLogOf builds a core.Log from operations in order.
func coreLogOf(ops []*model.Op) *core.Log {
	l := core.NewLog()
	for _, op := range ops {
		l.Append(op)
	}
	return l
}

func TestExperimentWALFaultDetection(t *testing.T) {
	pages := workload.Pages(4)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(25, pages, 3, false)
	detected := 0
	for crash := 1; crash <= len(ops); crash++ {
		res, err := sim.Run(func(s *model.State) method.DB { return method.NewPhysiological(s) },
			sim.Config{Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash),
				DisableWAL: true, FlushProb: 0.6, ForceProb: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if !res.InvariantOK || !res.Recovered {
			detected++
		}
	}
	fmt.Printf("WAL fault injection: %d/%d crash points detectably broken\n", detected, len(ops))
	if detected == 0 {
		t.Error("WAL fault injection was inert")
	}
}

func TestExperimentE18MediaFaultCampaign(t *testing.T) {
	fmt.Println("E18: media-fault campaign (methods × fault kinds × crash points × seeds)")
	methods := []sim.NamedFactory{
		{Name: "logical", New: func(s *model.State) method.DB { return method.NewLogical(s) }},
		{Name: "physical", New: func(s *model.State) method.DB { return method.NewPhysical(s) }},
		{Name: "physiological", New: func(s *model.State) method.DB { return method.NewPhysiological(s) }},
		{Name: "physiological+dpt", New: func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }},
		{Name: "genlsn", New: func(s *model.State) method.DB { return method.NewGenLSN(s) }},
		{Name: "genlsn+mv", New: func(s *model.State) method.DB { return method.NewGenLSNMV(s) }},
		{Name: "grouplsn", New: func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
	}
	results, err := sim.Campaign(sim.CampaignConfig{
		Methods: methods, NumOps: 14, NumPages: 4,
		CrashPoints: []int{0, 7, 14}, Seeds: []int64{1, 2, 3}, TruncateProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := sim.SummarizeCampaign(results)
	fmt.Printf("  %d runs: %d exact, %d degraded, %d unrecoverable, %d not fired, %d SILENT\n",
		sum.Runs, sum.ByOutcome[sim.RecoveredExact], sum.ByOutcome[sim.RecoveredDegraded],
		sum.ByOutcome[sim.DetectedUnrecoverable], sum.ByOutcome[sim.FaultNotFired], sum.Silent)
	if sum.Silent != 0 {
		for _, r := range results {
			if r.Outcome == sim.SilentCorruption {
				t.Errorf("silent corruption: %s/%s crash=%d seed=%d", r.Method, r.Kind, r.CrashAfter, r.Seed)
			}
		}
	}
	degradedOrDetected := sum.ByOutcome[sim.RecoveredDegraded] + sum.ByOutcome[sim.DetectedUnrecoverable]
	if degradedOrDetected == 0 {
		t.Error("campaign exercised nothing: no run degraded or detected")
	}
}
