# Development targets for the redotheory reproduction.

GO ?= go

.PHONY: all build vet test test-short race soak fuzz fuzz-smoke nestedcrash-smoke shard-smoke trace-smoke serve-smoke bench bench-compare bench-full experiments examples tools campaign metrics cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

soak:
	$(GO) test -run Soak -v .

fuzz:
	$(GO) test -fuzz FuzzDecodeMaterialize -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzInsertSequence -fuzztime 30s ./internal/btree/
	$(GO) test -fuzz FuzzPageDecode -fuzztime 30s ./internal/btree/

# fuzz-smoke is the differential crash-point fuzzer on a fixed-seed
# grid under the race detector: every cell's sequential, parallel, and
# degraded recoveries must agree with the determined state. Exits 1 on
# any oracle disagreement; repro artifacts land in fuzzout/.
fuzz-smoke:
	$(GO) run -race ./cmd/redofuzz -seeds 2 -histories 3 -faults -shrink -budget 30s -out fuzzout

# nestedcrash-smoke crashes recovery itself: a fixed-seed grid of
# methods × crash points × nested-crash schedules run under the race
# detector, where the supervisor must drive every cell's restart loop to
# the determined state with monotone install progress. Exits 1 on
# non-convergence or oracle disagreement; repro artifacts land in
# nestedcrashout/.
nestedcrash-smoke:
	$(GO) run -race ./cmd/redosim -nested-crash -ops 12 -pages 4 -seeds 3 -workers 4 -out nestedcrashout -metrics nestedcrash-metrics.json
	$(GO) run ./cmd/redostats -check nestedcrash-metrics.json

# shard-smoke is the sharded certified-cut differential grid under the
# race detector: every eligible method × shard counts {2,4} ×
# synchronized/staggered per-shard crash points × seeds must recover
# per shard from the certified cut (sequentially and in parallel) to
# exactly the merged single-log oracle's state, with every shard
# projection passing the invariant audit. Exits 1 on any divergence;
# repro artifacts land in shardout/.
shard-smoke:
	$(GO) run -race ./cmd/redosim -shards 2,4 -seeds 2 -ops 24 -out shardout

# trace-smoke exercises the causal-tracing pipeline end to end: trace
# representative recoveries (every method's parallel recovery plus one
# supervised nested-crash run), validate the artifact's well-formedness
# with redotrace -check, render the critical path / straggler / timeline
# profile, export the Chrome trace-event (Perfetto) form, and confirm
# the export is valid JSON.
trace-smoke:
	$(GO) run ./cmd/redosim -trace trace.json -ops 24 -pages 6
	$(GO) run ./cmd/redotrace -check trace.json
	$(GO) run ./cmd/redotrace trace.json
	$(GO) run ./cmd/redotrace -chrome trace-chrome.json trace.json
	$(GO) run ./cmd/redostats -top 10 trace.json
	if command -v python3 >/dev/null; then python3 -m json.tool trace-chrome.json > /dev/null; fi

# serve-smoke is the instant-restart availability benchmark: crash a
# hot-page fixture, serve reads/writes immediately through lazy
# per-page redo under concurrent client load, and drain to full
# recovery. redoserve regenerates BENCH_serve.json (trend history
# carried forward from the checked-in report) and exits 1 when p99
# time-to-first-read exceeds 10% of an offline full recovery.
serve-smoke:
	$(GO) run ./cmd/redoserve -bench -out BENCH_serve.json -baseline BENCH_serve.json

# bench runs the recovery benchmarks and the sequential-vs-parallel
# comparison; redobench writes BENCH_parallel.json and fails when the
# parallel engine breaks its perf contract (slower than sequential) or
# when allocs_per_op regresses >10% against the checked-in baseline.
bench: bench-compare
	$(GO) test -run xxx -bench 'Recovery|Campaign' -benchmem .

# bench-compare benchmarks recovery against the checked-in
# BENCH_parallel.json baseline: it prints a delta table (time and
# allocations per configuration), gates allocs_per_op at 10% over the
# baseline, and regenerates the artifact with the trend history
# carried forward.
bench-compare:
	$(GO) run ./cmd/redobench -out BENCH_parallel.json -baseline BENCH_parallel.json

bench-full:
	$(GO) test -run xxx -bench . -benchmem .

experiments:
	$(GO) test -run Experiment -v .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scenarios
	$(GO) run ./examples/btreesplit
	$(GO) run ./examples/crashsweep
	$(GO) run ./examples/checker
	$(GO) run ./examples/onlineaudit
	$(GO) run ./examples/mediafault
	$(GO) run ./examples/fuzzrepro
	$(GO) run ./examples/tracing
	$(GO) run ./examples/instantrestart

tools:
	$(GO) run ./cmd/redograph -all
	$(GO) run ./cmd/redosim -matrix
	$(GO) run ./cmd/redosim -experiment splitlog
	$(GO) run ./cmd/redosim -walfault

campaign:
	$(GO) run ./cmd/redosim -campaign

# metrics runs the fault campaign with live telemetry, validates the
# report against the v1 schema, and renders the per-method
# phase-time/selectivity table plus the partition width histogram.
metrics:
	$(GO) run ./cmd/redosim -campaign -metrics metrics.json
	$(GO) run ./cmd/redostats -check metrics.json
	$(GO) run ./cmd/redostats -widths metrics.json

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean -testcache
