# Development targets for the redotheory reproduction.

GO ?= go

.PHONY: all build vet test test-short race soak fuzz bench experiments examples tools campaign cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

soak:
	$(GO) test -run Soak -v .

fuzz:
	$(GO) test -fuzz FuzzDecodeMaterialize -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzInsertSequence -fuzztime 30s ./internal/btree/
	$(GO) test -fuzz FuzzPageDecode -fuzztime 30s ./internal/btree/

bench:
	$(GO) test -run xxx -bench . -benchmem .

experiments:
	$(GO) test -run Experiment -v .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scenarios
	$(GO) run ./examples/btreesplit
	$(GO) run ./examples/crashsweep
	$(GO) run ./examples/checker
	$(GO) run ./examples/onlineaudit
	$(GO) run ./examples/mediafault

tools:
	$(GO) run ./cmd/redograph -all
	$(GO) run ./cmd/redosim -matrix
	$(GO) run ./cmd/redosim -experiment splitlog
	$(GO) run ./cmd/redosim -walfault

campaign:
	$(GO) run ./cmd/redosim -campaign

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean -testcache
