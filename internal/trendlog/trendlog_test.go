package trendlog

import (
	"fmt"
	"testing"
)

type entry struct{ At string }

func at(e entry) string { return e.At }

func TestAppendDedupesByKey(t *testing.T) {
	hist := []entry{{"t1"}, {"t2"}}
	got := Append(hist, at, entry{"t2"}, entry{"t3"})
	want := []entry{{"t1"}, {"t2"}, {"t3"}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAppendDedupesWithinHistory(t *testing.T) {
	// A report written before deduplication existed may already carry
	// duplicate entries; Append scrubs them too.
	hist := []entry{{"t1"}, {"t1"}, {"t2"}, {"t1"}}
	got := Append(hist, at, entry{"t3"})
	if len(got) != 3 || got[0].At != "t1" || got[1].At != "t2" || got[2].At != "t3" {
		t.Fatalf("got %v", got)
	}
}

func TestAppendCapsKeepingNewest(t *testing.T) {
	var hist []entry
	for i := 0; i < MaxHistory+10; i++ {
		hist = Append(hist, at, entry{fmt.Sprintf("t%03d", i)})
	}
	if len(hist) != MaxHistory {
		t.Fatalf("len = %d, want %d", len(hist), MaxHistory)
	}
	if hist[0].At != "t010" || hist[len(hist)-1].At != fmt.Sprintf("t%03d", MaxHistory+9) {
		t.Fatalf("window = [%s, %s]: oldest not dropped first", hist[0].At, hist[len(hist)-1].At)
	}
}

func TestAppendEmptyKeysNeverDeduped(t *testing.T) {
	got := Append([]entry{{""}, {""}}, at, entry{""})
	if len(got) != 3 {
		t.Fatalf("empty-key entries collapsed: %v", got)
	}
}

func TestAppendDoesNotMutateInput(t *testing.T) {
	hist := make([]entry, 0, 8)
	hist = append(hist, entry{"t1"})
	Append(hist, at, entry{"t2"})
	if hist[:cap(hist)][1] != (entry{}) {
		t.Fatal("Append wrote into the input slice's spare capacity")
	}
}
