// Package trendlog maintains the bounded trend histories embedded in
// the checked-in benchmark reports (BENCH_*.json). Each -bench run
// inherits the baseline's history and appends the baseline itself as
// one entry; left unchecked the log grows by one entry per run forever,
// and re-running against an unchanged baseline duplicates its entry.
// Append is the single place both cmd/redoserve and cmd/redobench cap
// and dedupe that log.
package trendlog

// MaxHistory bounds every embedded trend log to the newest 50 runs.
const MaxHistory = 50

// Append returns history with the entries appended, deduplicated by key
// and capped. An entry whose key matches one already present — the same
// generated_at timestamp — is dropped, keeping the earliest occurrence;
// entries with an empty key are never deduped (a legacy report may lack
// timestamps). When the result exceeds MaxHistory the oldest entries
// are dropped. The input slices are not modified.
func Append[T any](history []T, key func(T) string, entries ...T) []T {
	out := make([]T, 0, len(history)+len(entries))
	seen := make(map[string]bool, len(history)+len(entries))
	add := func(e T) {
		k := key(e)
		if k != "" {
			if seen[k] {
				return
			}
			seen[k] = true
		}
		out = append(out, e)
	}
	for _, e := range history {
		add(e)
	}
	for _, e := range entries {
		add(e)
	}
	if n := len(out); n > MaxHistory {
		out = out[n-MaxHistory:]
	}
	return out
}
