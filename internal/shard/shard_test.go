package shard

import (
	"errors"
	"strings"
	"testing"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/workload"
)

// eligibleMethods mirrors sim.DefaultMethods minus physical (whose
// per-page blind records carry no single record for the vector). The
// shard package cannot import sim (sim's sharded builder imports
// shard), so the table is restated here.
var eligibleMethods = []struct {
	name string
	mk   Factory
}{
	{"logical", func(s *model.State) method.DB { return method.NewLogical(s) }},
	{"physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) }},
	{"physiological+dpt", func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }},
	{"genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) }},
	{"genlsn+mv", func(s *model.State) method.DB { return method.NewGenLSNMV(s) }},
	{"grouplsn", func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
}

func TestEligible(t *testing.T) {
	for _, m := range eligibleMethods {
		if !Eligible(m.name) {
			t.Errorf("Eligible(%q) = false", m.name)
		}
	}
	if Eligible("physical") {
		t.Error("Eligible(physical) = true; physical logging has no one-record-per-op vector carrier")
	}
}

func TestRouterSplitPartitionsState(t *testing.T) {
	pages := workload.Pages(16)
	initial := workload.InitialState(pages)
	r := NewRouter(4)
	parts := r.Split(initial)
	seen := make(map[model.Var]int)
	for i, part := range parts {
		for _, x := range part.Vars() {
			if prev, dup := seen[x]; dup {
				t.Fatalf("%q on shards %d and %d", x, prev, i)
			}
			seen[x] = i
			if i != r.Shard(x) {
				t.Errorf("%q on shard %d, router says %d", x, i, r.Shard(x))
			}
			if part.Get(x) != initial.Get(x) {
				t.Errorf("%q split with wrong value", x)
			}
		}
	}
	if len(seen) != len(pages) {
		t.Errorf("split covers %d of %d pages", len(seen), len(pages))
	}
}

// twoShardPages returns one page owned by shard 0 and one by shard 1
// of a 2-shard router.
func twoShardPages(t *testing.T, r *Router, pages []model.Var) (model.Var, model.Var) {
	t.Helper()
	var a, b model.Var
	for _, p := range pages {
		switch r.Shard(p) {
		case 0:
			if a == "" {
				a = p
			}
		case 1:
			if b == "" {
				b = p
			}
		}
	}
	if a == "" || b == "" {
		t.Fatal("fixture pages do not cover both shards")
	}
	return a, b
}

func TestCrossExecStampsAllParticipants(t *testing.T) {
	pages := workload.Pages(8)
	d := New(func(s *model.State) method.DB { return method.NewLogical(s) }, 2, workload.InitialState(pages))
	a, b := twoShardPages(t, d.Router(), pages)

	xfer := model.ReadWrite(1, "xfer", []model.Var{a, b}, []model.Var{a, b})
	if err := d.Exec(xfer); err != nil {
		t.Fatal(err)
	}
	if d.CrossTxns() != 1 {
		t.Errorf("CrossTxns = %d, want 1", d.CrossTxns())
	}
	d.FlushLog(0)
	d.FlushLog(1)

	txns, err := d.StableTxns()
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0].ID != 1 {
		t.Fatalf("StableTxns = %+v, want one txn with id 1", txns)
	}
	if len(txns[0].Vec) != 2 {
		t.Errorf("vector %v, want entries for both shards", txns[0].Vec)
	}
	for i := 0; i < 2; i++ {
		r := d.Shard(i).StableLog().Records()
		if len(r) != 1 {
			t.Fatalf("shard %d has %d stable records, want 1", i, len(r))
		}
		if r[0].Labels[LabelTxn] != "1" {
			t.Errorf("shard %d record labels %v lack the txn id", i, r[0].Labels)
		}
		if r[0].Labels[LabelVec] == "" {
			t.Errorf("shard %d record carries no sequence vector", i)
		}
		if !strings.Contains(r[0].Op.Name(), "~t1") {
			t.Errorf("shard %d logged %q, want a projection of txn 1", i, r[0].Op.Name())
		}
		if txns[0].Vec[i] != r[0].LSN {
			t.Errorf("shard %d vector entry %d, record at %d", i, txns[0].Vec[i], r[0].LSN)
		}
	}
}

func TestCrossExecBakesOnlyRemoteReads(t *testing.T) {
	pages := workload.Pages(8)
	d := New(func(s *model.State) method.DB { return method.NewPhysiological(s) }, 2, workload.InitialState(pages))
	a, b := twoShardPages(t, d.Router(), pages)

	// pull: reads a (local) and b (remote), writes a. Shard 1 becomes a
	// read-only participant and must contribute no record, only deps.
	pull := model.ReadWrite(1, "pull", []model.Var{a, b}, []model.Var{a})
	if err := d.Exec(pull); err != nil {
		t.Fatal(err)
	}
	if got := d.Shard(1).WAL().Log().Len(); got != 0 {
		t.Errorf("read-only participant logged %d records, want 0", got)
	}
	d.FlushLog(0)
	txns, err := d.StableTxns()
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 {
		t.Fatalf("StableTxns = %+v", txns)
	}
	if _, ok := txns[0].Vec[1]; ok {
		t.Error("read-only participant appears in the write vector")
	}
	// Shard 1's log is empty, so the observed frontier is 0 and no dep
	// needs recording; exec against a non-empty remote log must record
	// one.
	upd := model.ReadWrite(2, "upd", []model.Var{b}, []model.Var{b})
	if err := d.Exec(upd); err != nil {
		t.Fatal(err)
	}
	if err := d.Exec(model.ReadWrite(3, "pull", []model.Var{a, b}, []model.Var{a})); err != nil {
		t.Fatal(err)
	}
	d.FlushLog(0)
	d.FlushLog(1)
	txns, err = d.StableTxns()
	if err != nil {
		t.Fatal(err)
	}
	last := txns[len(txns)-1]
	if floor, ok := last.Deps[1]; !ok || floor == 0 {
		t.Errorf("txn 3 deps = %v, want an observed frontier for shard 1", last.Deps)
	}
}

func TestExecRefusesFrozenParticipants(t *testing.T) {
	pages := workload.Pages(8)
	d := New(func(s *model.State) method.DB { return method.NewLogical(s) }, 2, workload.InitialState(pages))
	a, b := twoShardPages(t, d.Router(), pages)

	d.Freeze(1)
	err := d.Exec(model.ReadWrite(1, "xfer", []model.Var{a, b}, []model.Var{a, b}))
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("cross exec on a frozen shard: %v, want ErrShardDown", err)
	}
	if got := d.Shard(0).WAL().Log().Len(); got != 0 {
		t.Errorf("refused txn left %d records on the live shard", got)
	}
	if err := d.Exec(model.ReadWrite(2, "upd", []model.Var{a}, []model.Var{a})); err != nil {
		t.Errorf("single-shard exec on the live shard: %v", err)
	}
	if err := d.Exec(model.ReadWrite(3, "upd", []model.Var{b}, []model.Var{b})); !errors.Is(err, ErrShardDown) {
		t.Errorf("single-shard exec on the frozen shard: %v, want ErrShardDown", err)
	}
}

func TestCertificationGateBlocksInstalls(t *testing.T) {
	pages := workload.Pages(8)
	d := New(func(s *model.State) method.DB { return method.NewPhysiological(s) }, 2, workload.InitialState(pages))
	a, b := twoShardPages(t, d.Router(), pages)

	if err := d.Exec(model.ReadWrite(1, "xfer", []model.Var{a, b}, []model.Var{a, b})); err != nil {
		t.Fatal(err)
	}
	d.FlushLog(0) // record stable, WAL would allow the install
	if d.FlushOne(0) {
		t.Fatal("install went through with an uncertified cross-shard record in the log")
	}
	if err := d.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Shard(0).CheckpointBound(); ok {
		t.Fatal("checkpoint went through with an uncertified cross-shard record in the log")
	}

	d.FlushLog(1)
	cut, err := d.Certify()
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Dropped) != 0 {
		t.Fatalf("fully durable txn dropped: %+v", cut.Dropped)
	}
	if !d.FlushOne(0) {
		t.Error("install still blocked after certification")
	}
}

func TestCertifyLeavesTornTxnUncertified(t *testing.T) {
	pages := workload.Pages(8)
	d := New(func(s *model.State) method.DB { return method.NewPhysiological(s) }, 2, workload.InitialState(pages))
	a, b := twoShardPages(t, d.Router(), pages)

	if err := d.Exec(model.ReadWrite(1, "xfer", []model.Var{a, b}, []model.Var{a, b})); err != nil {
		t.Fatal(err)
	}
	d.FlushLog(0) // shard 1's copy stays volatile: the txn is torn
	cut, err := d.Certify()
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Dropped) != 1 {
		t.Fatalf("dropped = %+v, want the torn txn", cut.Dropped)
	}
	if d.FlushOne(0) {
		t.Error("install went through under a torn cross-shard record")
	}
}

func TestCrossHistoryShapes(t *testing.T) {
	router := NewRouter(2)
	pages := workload.Pages(12)
	for _, m := range eligibleMethods {
		ops, err := CrossHistory(m.name, 40, pages, router, 4, 7)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if len(ops) != 40 {
			t.Fatalf("%s: %d ops", m.name, len(ops))
		}
		cross := 0
		for i, op := range ops {
			if op.ID() != model.OpID(i+1) {
				t.Fatalf("%s: op %d has id %d", m.name, i, op.ID())
			}
			shards := make(map[int]bool)
			for _, x := range op.Reads() {
				shards[router.Shard(x)] = true
			}
			for _, x := range op.Writes() {
				shards[router.Shard(x)] = true
			}
			if len(shards) > 1 {
				cross++
			}
		}
		if cross == 0 {
			t.Errorf("%s: history has no cross-shard transactions", m.name)
		}
	}
	if _, err := CrossHistory("physical", 10, pages, router, 4, 7); err == nil {
		t.Error("CrossHistory accepted the physical method")
	}
}
