// Package shard splits a database into N shards, each owning its own
// WAL, checkpoint, and cache, and makes redo recovery distributed: each
// shard recovers its own log prefix with the existing single-log
// engines, in parallel across shards, from a common certified cut.
//
// The paper's explainability theory is stated for a single log, but its
// invariants project onto shards: variables are shard-owned, so every
// conflict-graph edge is intra-shard and a global state is explainable
// iff each shard's projection is explainable under a common cut across
// the logs (DESIGN.md §15). What ties the logs together is cross-shard
// transactions: one system operation whose records land in multiple
// logs. Each participant record carries the shared transaction id and
// the full per-log sequence vector, so any surviving record reveals
// partner records a crash may have lost. The certified cut (cut.go) is
// the maximal vector of per-shard log prefixes in which every
// cross-shard transaction is wholly inside or wholly outside.
//
// Soundness hinges on the certification gate: a shard may install pages
// or checkpoint only while every cross-shard record in its log lies
// within the last certified cut. Certified transactions are fully
// durable on all participants and can never fall out of a future cut
// (the cut is monotone in the stable frontiers), so everything a shard
// ever installs sits inside the crash-time cut and per-shard recovery
// from the cut prefix replays over an explainable stable state.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"redotheory/internal/core"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// Factory builds a fresh method DB over an initial state; the
// coordinator instantiates one per shard over that shard's projection
// of the initial state. It matches sim.Factory.
type Factory func(*model.State) method.DB

// Eligible reports whether the named recovery method can run under the
// sharding coordinator. The coordinator needs exactly one log record
// per executed (projected) operation to carry the transaction vector;
// physical logging splits one operation into per-page blind records
// with fresh ids, so its log has no such record.
func Eligible(name string) bool {
	return !strings.HasPrefix(name, "physical")
}

// projBase is where coordinator-assigned projection operation ids
// start. History ids live far below it, so projections never collide
// with system operations in any per-shard or merged view.
const projBase model.OpID = 1 << 40

// Label keys for cross-shard transaction metadata on log records. The
// WAL checksums LSN and operation identity, not labels, so attaching
// them after the participant records are appended is safe.
const (
	// LabelTxn is the shared transaction id (the system operation's id).
	LabelTxn = "txn"
	// LabelVec is the per-log sequence vector: "shard:lsn" pairs for
	// every writer participant, comma-separated, ascending by shard.
	LabelVec = "txnvec"
	// LabelDep carries causal floors for read-only participants:
	// "shard:lsn" pairs meaning the cut must include that shard's log
	// through lsn for the baked remote reads to be explainable.
	LabelDep = "txndep"
)

// ErrShardDown reports that a transaction's participant shard has
// failed. The coordinator refuses the transaction atomically — nothing
// was logged on any shard.
var ErrShardDown = errors.New("shard: participant shard is down")

// Router deterministically assigns variables to shards (FNV-1a mod N).
type Router struct{ n int }

// NewRouter returns a router over n shards.
func NewRouter(n int) *Router {
	if n < 1 {
		panic(fmt.Sprintf("shard: router over %d shards", n))
	}
	return &Router{n: n}
}

// N returns the shard count.
func (r *Router) N() int { return r.n }

// Shard returns the shard owning variable x.
func (r *Router) Shard(x model.Var) int {
	h := fnv.New32a()
	h.Write([]byte(x))
	return int(h.Sum32() % uint32(r.n))
}

// Split projects a state onto the router's shards: shard i's state
// holds exactly the variables it owns.
func (r *Router) Split(s *model.State) []*model.State {
	out := make([]*model.State, r.n)
	for i := range out {
		out[i] = model.NewState()
	}
	for _, x := range s.Vars() {
		out[r.Shard(x)].Set(x, s.Get(x))
	}
	return out
}

// DB is a sharded database: N independent method DBs plus the
// cross-shard coordinator (transaction projection, sequence vectors,
// cut certification).
type DB struct {
	router *Router
	shards []method.DB
	rec    *obs.Recorder

	frozen []bool
	// crossMax[i] is the highest LSN on shard i carrying cross-shard
	// metadata; the certification gate compares it to certified[i].
	crossMax []core.LSN
	// certified[i] is the last certified cut, monotone in Certify calls.
	certified []core.LSN
	nextProj  model.OpID
	crossTxns int
}

// New builds an n-shard database, splitting the initial state by the
// router and giving every shard its own substrate (store, WAL, cache)
// via the factory.
func New(mk Factory, n int, initial *model.State) *DB {
	router := NewRouter(n)
	parts := router.Split(initial)
	d := &DB{
		router:    router,
		shards:    make([]method.DB, n),
		frozen:    make([]bool, n),
		crossMax:  make([]core.LSN, n),
		certified: make([]core.LSN, n),
		nextProj:  projBase,
	}
	for i := range d.shards {
		d.shards[i] = mk(parts[i])
	}
	return d
}

// Name identifies the configuration, e.g. "physiological×4".
func (d *DB) Name() string {
	return fmt.Sprintf("%s×%d", d.shards[0].Name(), d.router.n)
}

// Router returns the variable-to-shard assignment.
func (d *DB) Router() *Router { return d.router }

// N returns the shard count.
func (d *DB) N() int { return d.router.n }

// Shard exposes shard i's method DB (recovery surface, stats, repair).
func (d *DB) Shard(i int) method.DB { return d.shards[i] }

// SetRecorder attaches a telemetry recorder to the coordinator (gate
// and cut counters). Shard substrates keep their own recorders.
func (d *DB) SetRecorder(rec *obs.Recorder) { d.rec = rec }

// Recorder returns the attached recorder (nil when none).
func (d *DB) Recorder() *obs.Recorder { return d.rec }

// CrossTxns counts the cross-shard transactions executed.
func (d *DB) CrossTxns() int { return d.crossTxns }

// Read returns the current volatile value of a variable from its
// owning shard.
func (d *DB) Read(x model.Var) model.Value {
	return d.shards[d.router.Shard(x)].Read(x)
}

// Participants returns the sorted shard indexes an operation touches
// (reads or writes).
func (d *DB) Participants(op *model.Op) []int {
	seen := make(map[int]bool, d.router.n)
	for _, x := range op.Reads() {
		seen[d.router.Shard(x)] = true
	}
	for _, x := range op.Writes() {
		seen[d.router.Shard(x)] = true
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Exec runs one system operation. An operation confined to one shard
// goes straight to that shard's method. An operation spanning shards
// becomes a cross-shard transaction: the coordinator captures the
// global read set from the live caches, executes a deterministic
// projection (model.Project) on every shard with local writes, and then
// stamps all participant records with the shared transaction id, the
// per-log sequence vector, and causal floors for read-only
// participants. Exec refuses (ErrShardDown) if any participant shard
// has failed; refusal is atomic — nothing is logged anywhere.
func (d *DB) Exec(op *model.Op) error {
	parts := d.Participants(op)
	for _, i := range parts {
		if d.frozen[i] {
			return fmt.Errorf("%w (shard %d, op %s)", ErrShardDown, i, op)
		}
	}
	if len(parts) == 1 {
		return d.shards[parts[0]].Exec(op)
	}

	// Capture the global read set before anything executes: model
	// operations read atomically, so every projection (and every baked
	// remote value) must observe the pre-transaction state.
	reads := make(model.ReadSet, len(op.Reads()))
	readsBy := make(map[int][]model.Var)
	for _, x := range op.Reads() {
		i := d.router.Shard(x)
		reads[x] = d.shards[i].Read(x)
		readsBy[i] = append(readsBy[i], x)
	}
	writesBy := make(map[int][]model.Var)
	for _, x := range op.Writes() {
		i := d.router.Shard(x)
		writesBy[i] = append(writesBy[i], x)
	}

	// Execute one projection per writer shard, in shard order.
	vec := make(map[int]core.LSN, len(writesBy))
	var recs []*core.Record
	for _, i := range parts {
		localWrites, ok := writesBy[i]
		if !ok {
			continue
		}
		proj := model.Project(d.nextProj, op, readsBy[i], localWrites, reads)
		d.nextProj++
		if err := d.shards[i].Exec(proj); err != nil {
			return fmt.Errorf("shard %d: projection of %s: %w", i, op, err)
		}
		r := d.shards[i].WAL().Log().RecordOf(proj.ID())
		if r == nil {
			return fmt.Errorf("shard %d: projection %s of %s left no log record; method %q is not shard-eligible",
				i, proj, op, d.shards[i].Name())
		}
		vec[i] = r.LSN
		recs = append(recs, r)
	}
	if len(recs) == 0 {
		return fmt.Errorf("shard: %s has no writer shard", op)
	}

	// Read-only participants contribute no record; their causal floor is
	// the volatile frontier observed at read time. If a crash loses that
	// prefix the baked values are unexplainable, so the cut must then
	// drop the transaction.
	deps := make(map[int]core.LSN)
	for _, i := range parts {
		if _, isWriter := vec[i]; isWriter {
			continue
		}
		if floor := d.shards[i].WAL().NextLSN() - 1; floor > 0 {
			deps[i] = floor
		}
	}

	txn := strconv.FormatUint(uint64(op.ID()), 10)
	vecLabel := encodeVec(vec)
	depLabel := encodeVec(deps)
	for _, r := range recs {
		r.Labels[LabelTxn] = txn
		r.Labels[LabelVec] = vecLabel
		if depLabel != "" {
			r.Labels[LabelDep] = depLabel
		}
	}
	for i, lsn := range vec {
		if lsn > d.crossMax[i] {
			d.crossMax[i] = lsn
		}
	}
	d.crossTxns++
	d.rec.Inc(obs.MShardCrossTxns)
	return nil
}

// Certify recomputes the certified cut from the shards' current stable
// logs and advances the monotone per-shard certification bounds. The
// certification gate then lets each shard install and checkpoint up to
// (and only up to) cross-shard work inside this cut. A transaction
// certified once can never fall out of a later cut: records appended
// after certification carry larger LSNs than every frontier the cut was
// computed from, so the certified cut stays consistent as the logs and
// frontiers grow.
func (d *DB) Certify() (*Cut, error) {
	in, err := d.cutInput()
	if err != nil {
		return nil, err
	}
	cut, err := ComputeCut(in)
	if err != nil {
		return nil, err
	}
	for i, lsn := range cut.Frontier {
		if lsn > d.certified[i] {
			d.certified[i] = lsn
		}
	}
	d.rec.Inc(obs.MShardCertify)
	return cut, nil
}

// gateOpen reports whether shard i may install or checkpoint: every
// cross-shard record in its log must lie within the certified cut.
func (d *DB) gateOpen(i int) bool {
	if d.crossMax[i] <= d.certified[i] {
		return true
	}
	d.rec.Inc(obs.MShardGateBlocked)
	return false
}

// FlushOne lets shard i's background writer install one eligible page,
// subject to the certification gate; it reports whether it made
// progress.
func (d *DB) FlushOne(i int) bool {
	if d.frozen[i] || !d.gateOpen(i) {
		return false
	}
	return d.shards[i].FlushOne()
}

// FlushLog forces shard i's log. Forcing needs no gate: durability
// never invalidates a cut, it only lets certification advance.
func (d *DB) FlushLog(i int) {
	if !d.frozen[i] {
		d.shards[i].FlushLog()
	}
}

// Checkpoint runs shard i's checkpoint, subject to the certification
// gate (a checkpoint installs work — for logical recovery, all of it).
func (d *DB) Checkpoint(i int) error {
	if d.frozen[i] || !d.gateOpen(i) {
		return nil
	}
	return d.shards[i].Checkpoint()
}

// Truncate drops shard i's checkpoint-covered stable log prefix,
// folding it into the shard's recovery base. Truncated records were
// installed by a gated checkpoint, hence certified; the cut can never
// retreat into a truncated prefix.
func (d *DB) Truncate(i int) (int, error) {
	if d.frozen[i] {
		return 0, nil
	}
	t, ok := d.shards[i].(method.Truncator)
	if !ok {
		return 0, nil
	}
	return t.TruncateCheckpointed()
}

// Freeze marks shard i failed: it stops executing, installing, and
// forcing, so its durable frontier stays where the failure left it.
// Cross-shard transactions touching it are refused from now on, and
// certification naturally stalls for transactions involving it.
func (d *DB) Freeze(i int) { d.frozen[i] = true }

// Frozen reports whether shard i has failed.
func (d *DB) Frozen(i int) bool { return d.frozen[i] }

// Crash fails every shard: caches and unflushed log tails are lost,
// only stable states and stable log prefixes survive.
func (d *DB) Crash() {
	for _, db := range d.shards {
		db.Crash()
	}
}

// Stats sums the per-shard method stats.
func (d *DB) Stats() method.Stats {
	var out method.Stats
	for _, db := range d.shards {
		st := db.Stats()
		out.OpsExecuted += st.OpsExecuted
		out.LogRecords += st.LogRecords
		out.LogBytes += st.LogBytes
		out.PageFlushes += st.PageFlushes
		out.LogForces += st.LogForces
		out.Checkpoints += st.Checkpoints
		out.StablePages += st.StablePages
	}
	return out
}

// cutInput assembles the certified-cut inputs from the shards' stable
// logs: frontiers, low-water marks (records below are folded into the
// recovery base by truncation, i.e. installed), and the cross-shard
// transaction table.
func (d *DB) cutInput() (CutInput, error) {
	n := d.router.n
	in := CutInput{
		Frontiers: make([]core.LSN, n),
		LowWater:  make([]core.LSN, n),
	}
	for i, db := range d.shards {
		in.Frontiers[i] = db.WAL().StableLSN()
		slog := db.StableLog()
		if recs := slog.Records(); len(recs) > 0 {
			in.LowWater[i] = recs[0].LSN
		} else {
			in.LowWater[i] = slog.NextLSN()
		}
	}
	txns, err := d.StableTxns()
	if err != nil {
		return CutInput{}, err
	}
	in.Txns = txns
	return in, nil
}

// StableTxns reconstructs the cross-shard transaction table from the
// shards' stable logs. Every participant record carries the full
// vector, so a transaction some of whose records a crash lost is still
// visible — and detectable as torn — through any surviving record.
func (d *DB) StableTxns() ([]Txn, error) {
	byID := make(map[model.OpID]*Txn)
	var order []model.OpID
	for i, db := range d.shards {
		for _, r := range db.StableLog().Records() {
			idLabel, ok := r.Labels[LabelTxn]
			if !ok {
				continue
			}
			id64, err := strconv.ParseUint(idLabel, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard %d: record %d: bad %s label %q", i, r.LSN, LabelTxn, idLabel)
			}
			id := model.OpID(id64)
			vec, err := decodeVec(r.Labels[LabelVec])
			if err != nil {
				return nil, fmt.Errorf("shard %d: record %d: %w", i, r.LSN, err)
			}
			deps, err := decodeVec(r.Labels[LabelDep])
			if err != nil {
				return nil, fmt.Errorf("shard %d: record %d: %w", i, r.LSN, err)
			}
			if got := vec[i]; got != r.LSN {
				return nil, fmt.Errorf("shard %d: record %d: vector places it at LSN %d", i, r.LSN, got)
			}
			if t, seen := byID[id]; seen {
				if !vecEqual(t.Vec, vec) || !vecEqual(t.Deps, deps) {
					return nil, fmt.Errorf("shard %d: transaction %d: inconsistent vectors across participant records", i, id)
				}
				continue
			}
			byID[id] = &Txn{ID: id, Vec: vec, Deps: deps}
			order = append(order, id)
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	out := make([]Txn, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}

// encodeVec renders a shard→LSN map as "shard:lsn" pairs, ascending by
// shard ("" for an empty map).
func encodeVec(v map[int]core.LSN) string {
	if len(v) == 0 {
		return ""
	}
	shards := make([]int, 0, len(v))
	for i := range v {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	var b strings.Builder
	for k, i := range shards {
		if k > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", i, v[i])
	}
	return b.String()
}

// decodeVec parses encodeVec's output (nil for "").
func decodeVec(s string) (map[int]core.LSN, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]core.LSN)
	for _, pair := range strings.Split(s, ",") {
		shard, lsn, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("shard: bad vector entry %q", pair)
		}
		i, err := strconv.Atoi(shard)
		if err != nil {
			return nil, fmt.Errorf("shard: bad vector shard %q", pair)
		}
		l, err := strconv.ParseUint(lsn, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("shard: bad vector LSN %q", pair)
		}
		out[i] = core.LSN(l)
	}
	return out, nil
}

func vecEqual(a, b map[int]core.LSN) bool {
	if len(a) != len(b) {
		return false
	}
	for i, l := range a {
		if b[i] != l {
			return false
		}
	}
	return true
}
