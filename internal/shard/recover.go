package shard

import (
	"fmt"
	"sort"
	"sync"

	"redotheory/internal/core"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// RecoverOptions configures sharded recovery.
type RecoverOptions struct {
	// Parallel replays each shard with the partitioned parallel engine
	// (method.RecoverParallelLog) instead of sequential dense replay.
	Parallel bool
	// Workers is the per-shard worker-pool size when Parallel is set
	// (0 = GOMAXPROCS).
	Workers int
	// Recorder receives the recovery trace: a root span for the whole
	// procedure, a cut span, and one replay span per shard. Falls back
	// to the DB's attached recorder when nil.
	Recorder *obs.Recorder
	// CheckInvariant additionally audits each shard's projection with
	// the recovery-invariant checker over its cut prefix — the
	// per-shard-projection explainability invariant (DESIGN.md §15).
	CheckInvariant bool
}

// ShardOutcome is one shard's recovery under the certified cut.
type ShardOutcome struct {
	// Shard is the shard index.
	Shard int
	// CutLSN is the shard's certified-cut frontier.
	CutLSN core.LSN
	// StableRecords is the shard's surviving stable log length;
	// CutRecords of those lie within the cut (the rest were dropped for
	// cut atomicity).
	StableRecords int
	CutRecords    int
	// Result is the shard's recovery outcome over its cut prefix.
	Result *core.Result
	// Invariant is the per-shard-projection audit (nil unless
	// RecoverOptions.CheckInvariant).
	Invariant *core.Report
}

// Outcome is a full sharded recovery: the certified cut it recovered
// from and the per-shard outcomes under it.
type Outcome struct {
	// Cut is the certified cut recovery replayed up to.
	Cut *Cut
	// State is the union of the recovered shard states — the system
	// state, since every variable is owned by exactly one shard.
	State *model.State
	// Shards holds the per-shard outcomes, indexed by shard.
	Shards []ShardOutcome
	// DroppedRecords counts stable log records beyond the cut across
	// all shards: durable work recovery had to abandon to keep
	// cross-shard transactions atomic.
	DroppedRecords int
}

// InvariantOK reports whether every audited shard projection satisfies
// the recovery invariant (vacuously true when no audit ran).
func (o *Outcome) InvariantOK() bool {
	for i := range o.Shards {
		if rep := o.Shards[i].Invariant; rep != nil && !rep.OK {
			return false
		}
	}
	return true
}

// Recover runs distributed redo recovery after Crash: compute the
// certified cut from the surviving stable logs, then recover every
// shard from its cut prefix with the existing single-log engines, in
// parallel across shards. Per-shard recovery from the cut prefix is
// sound because the certification gate kept every installed effect and
// every checkpoint bound inside the certified cut, which the crash-time
// maximal cut dominates (see the package comment); so each shard's
// prefix, stable state, and checkpoint set are exactly a single-log
// crash configuration, and the paper's procedure applies unchanged.
func (d *DB) Recover(opts RecoverOptions) (*Outcome, error) {
	rec := opts.Recorder
	if rec == nil {
		rec = d.rec
	}
	n := d.router.n
	root := rec.StartRootSpan(obs.PhaseShardRecover, fmt.Sprintf("sharded recovery ×%d", n))
	defer root.End()

	// Phase 1: the certified cut, from the logs alone.
	cs := rec.StartSpan(obs.PhaseCut)
	in, err := d.cutInput()
	if err != nil {
		cs.End()
		return nil, err
	}
	cut, err := ComputeCut(in)
	cs.End()
	if err != nil {
		return nil, err
	}
	rec.Add(obs.MShardCutRetreats, int64(cut.Retreats))
	rec.Add(obs.MShardCutDropped, int64(len(cut.Dropped)))
	rec.SetGauge(obs.GShardCutLag, int64(cut.Lag(in)))

	out := &Outcome{Cut: cut, Shards: make([]ShardOutcome, n)}

	// Phase 2: per-shard recovery from the cut prefixes, concurrently.
	rootID := root.SpanID()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db := d.shards[i]
			slog := db.StableLog()
			prefix := slog.Prefix(cut.Frontier[i])
			so := &out.Shards[i]
			so.Shard = i
			so.CutLSN = cut.Frontier[i]
			so.StableRecords = slog.Len()
			so.CutRecords = prefix.Len()

			var span *obs.Span
			if rec.Sinking() {
				span = rec.StartSpanWith(obs.PhaseShardReplay, rootID, obs.SpanInfo{
					Comp: fmt.Sprintf("s%d", i),
					Size: prefix.Len(),
				})
			}
			defer span.End()

			if opts.Parallel {
				res, err := method.RecoverParallelLog(db, prefix, method.ParallelOptions{Workers: opts.Workers})
				if err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
					return
				}
				so.Result = res.Result
			} else {
				res, err := core.RecoverDense(db.StableState(), prefix, db.Checkpointed(), db.RedoTest(), db.Analyze())
				if err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
					return
				}
				so.Result = res
			}

			if opts.CheckInvariant {
				checker, err := core.NewChecker(prefix, db.RecoveryBase())
				if err != nil {
					errs[i] = fmt.Errorf("shard %d: building checker: %w", i, err)
					return
				}
				so.Invariant = checker.Check(db.StableState(), prefix, db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Union the shard states and count the abandoned suffix records.
	out.State = model.NewState()
	for i := range out.Shards {
		for _, x := range out.Shards[i].Result.State.Vars() {
			out.State.Set(x, out.Shards[i].Result.State.Get(x))
		}
		out.DroppedRecords += out.Shards[i].StableRecords - out.Shards[i].CutRecords
	}
	rec.Add(obs.MShardCutRecords, int64(out.DroppedRecords))
	return out, nil
}

// MergedOracle rebuilds the system state at the cut by brute force, as
// if the shards had shared one log: union the per-shard recovery bases,
// then apply every stable record within the cut in global (LSN, shard)
// order. Any interleave preserving each shard's order is equivalent —
// variables are shard-owned, so every conflict is intra-shard — and
// this canonical one is deterministic. The differential oracle compares
// sharded recovery against it: per-shard recovery under the certified
// cut must land on exactly this state.
func (d *DB) MergedOracle(cut *Cut) (*model.State, error) {
	state := model.NewState()
	for _, db := range d.shards {
		base := db.RecoveryBase()
		for _, x := range base.Vars() {
			state.Set(x, base.Get(x))
		}
	}
	type entry struct {
		rec   *core.Record
		shard int
	}
	var merged []entry
	for i, db := range d.shards {
		for _, r := range db.StableLog().Records() {
			if r.LSN <= cut.Frontier[i] {
				merged = append(merged, entry{r, i})
			}
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].rec.LSN != merged[b].rec.LSN {
			return merged[a].rec.LSN < merged[b].rec.LSN
		}
		return merged[a].shard < merged[b].shard
	})
	for _, e := range merged {
		if _, err := state.Apply(e.rec.Op); err != nil {
			return nil, fmt.Errorf("shard: merged oracle applying %s (shard %d, LSN %d): %w",
				e.rec.Op, e.shard, e.rec.LSN, err)
		}
	}
	return state, nil
}
