package shard

import (
	"math/rand"
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

func vec(pairs ...core.LSN) map[int]core.LSN {
	out := make(map[int]core.LSN, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out[int(pairs[i])] = pairs[i+1]
	}
	return out
}

func lowWater(n int) []core.LSN {
	out := make([]core.LSN, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestComputeCutKeepsWhollyDurableTxns(t *testing.T) {
	in := CutInput{
		Frontiers: []core.LSN{5, 5},
		LowWater:  lowWater(2),
		Txns:      []Txn{{ID: 10, Vec: vec(0, 3, 1, 2)}},
	}
	cut, err := ComputeCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Frontier[0] != 5 || cut.Frontier[1] != 5 {
		t.Errorf("cut = %v, want the frontiers", cut.Frontier)
	}
	if len(cut.Dropped) != 0 || cut.Retreats != 0 {
		t.Errorf("dropped %d, retreats %d on a wholly durable txn", len(cut.Dropped), cut.Retreats)
	}
}

func TestComputeCutDropsTornTxn(t *testing.T) {
	// Txn 10 has a record at shard0:3 but its shard1 record at LSN 7 is
	// beyond shard 1's stable frontier 5 — the cut must exclude shard
	// 0's copy too.
	in := CutInput{
		Frontiers: []core.LSN{5, 5},
		LowWater:  lowWater(2),
		Txns:      []Txn{{ID: 10, Vec: vec(0, 3, 1, 7)}},
	}
	cut, err := ComputeCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Frontier[0] != 2 || cut.Frontier[1] != 5 {
		t.Errorf("cut = %v, want [2 5]", cut.Frontier)
	}
	if len(cut.Dropped) != 1 || cut.Dropped[0].ID != 10 {
		t.Errorf("dropped = %v, want txn 10", cut.Dropped)
	}
	if cut.Clusters != 1 {
		t.Errorf("clusters = %d, want 1", cut.Clusters)
	}
}

func TestComputeCutCascades(t *testing.T) {
	// Dropping txn 10 (torn on shard 1) retreats shard 0 past txn 11's
	// record at shard0:4 — wait, past shard0:3, so txn 11 at shard0:4 is
	// also excluded and must drop its shard 1 copy at LSN 2.
	in := CutInput{
		Frontiers: []core.LSN{5, 5},
		LowWater:  lowWater(2),
		Txns: []Txn{
			{ID: 10, Vec: vec(0, 3, 1, 7)},
			{ID: 11, Vec: vec(0, 4, 1, 2)},
		},
	}
	cut, err := ComputeCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Frontier[0] != 2 || cut.Frontier[1] != 1 {
		t.Errorf("cut = %v, want [2 1]", cut.Frontier)
	}
	if len(cut.Dropped) != 2 {
		t.Errorf("dropped = %v, want both txns", cut.Dropped)
	}
	// Both dropped txns share shard 0 and shard 1: one cluster.
	if cut.Clusters != 1 {
		t.Errorf("clusters = %d, want 1", cut.Clusters)
	}
}

func TestComputeCutHonorsReadDeps(t *testing.T) {
	// Txn 10 writes only shard 0 but read shard 1 at frontier 8; shard
	// 1's stable frontier is 5, so the observed prefix is not durable
	// and the txn must drop.
	in := CutInput{
		Frontiers: []core.LSN{5, 5},
		LowWater:  lowWater(2),
		Txns:      []Txn{{ID: 10, Vec: vec(0, 3), Deps: vec(1, 8)}},
	}
	cut, err := ComputeCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Frontier[0] != 2 || cut.Frontier[1] != 5 {
		t.Errorf("cut = %v, want [2 5]", cut.Frontier)
	}
	if len(cut.Dropped) != 1 {
		t.Errorf("dropped = %v, want txn 10", cut.Dropped)
	}
}

func TestComputeCutIndependentDropsCluster(t *testing.T) {
	// Two torn txns on disjoint shard pairs: two clusters.
	in := CutInput{
		Frontiers: []core.LSN{5, 5, 5, 5},
		LowWater:  lowWater(4),
		Txns: []Txn{
			{ID: 10, Vec: vec(0, 3, 1, 7)},
			{ID: 11, Vec: vec(2, 4, 3, 9)},
		},
	}
	cut, err := ComputeCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Clusters != 2 {
		t.Errorf("clusters = %d, want 2", cut.Clusters)
	}
}

func TestComputeCutGateViolationIsAnError(t *testing.T) {
	// Txn 10's shard 0 record at LSN 3 sits below shard 0's low-water
	// mark 4 (already truncated, i.e. installed), but its shard 1 copy
	// is torn: no consistent cut exists, which means the certification
	// gate was violated.
	in := CutInput{
		Frontiers: []core.LSN{5, 5},
		LowWater:  []core.LSN{4, 1},
		Txns:      []Txn{{ID: 10, Vec: vec(0, 3, 1, 7)}},
	}
	if _, err := ComputeCut(in); err == nil {
		t.Fatal("no error for a cut forced below low water")
	}
}

// randomCutInput builds a plausible sharded-log snapshot: per-shard
// dense LSN sequences, cross-shard txns claiming one LSN per
// participant shard, frontiers cutting each log at a random point (the
// lost tail), and occasional read-only dependencies.
func randomCutInput(rng *rand.Rand) CutInput {
	n := 2 + rng.Intn(3)
	next := make([]core.LSN, n)
	for i := range next {
		next[i] = 1
	}
	var txns []Txn
	nTxn := rng.Intn(8)
	for t := 0; t < nTxn; t++ {
		// Pick 1–2 writer shards and advance each one's LSN counter,
		// with random gaps standing in for single-shard records.
		nw := 1 + rng.Intn(2)
		perm := rng.Perm(n)
		v := make(map[int]core.LSN)
		for _, i := range perm[:nw] {
			next[i] += core.LSN(rng.Intn(3))
			v[i] = next[i]
			next[i]++
		}
		var deps map[int]core.LSN
		if nw == 1 && rng.Intn(2) == 0 {
			j := perm[nw]
			if next[j] > 1 {
				deps = map[int]core.LSN{j: next[j] - 1}
			}
		}
		txns = append(txns, Txn{ID: model.OpID(100 + t), Vec: v, Deps: deps})
	}
	in := CutInput{
		Frontiers: make([]core.LSN, n),
		LowWater:  lowWater(n),
		Txns:      txns,
	}
	for i := range in.Frontiers {
		// The stable frontier cuts the log anywhere up to its end.
		in.Frontiers[i] = core.LSN(rng.Intn(int(next[i]) + 1))
	}
	return in
}

// TestComputeCutMaximality is the satellite property test: the computed
// cut is consistent, and advancing any shard's prefix by one record
// breaks consistency — no larger certified cut exists (consistent cuts
// are closed under pointwise max, so failing every single-step
// extension is failing them all).
func TestComputeCutMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		in := randomCutInput(rng)
		cut, err := ComputeCut(in)
		if err != nil {
			// Random inputs never place records below low water 1.
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Consistent(in, cut.Frontier) {
			t.Fatalf("trial %d: computed cut %v not consistent for %+v", trial, cut.Frontier, in)
		}
		for i := range cut.Frontier {
			if cut.Frontier[i] >= in.Frontiers[i] {
				continue
			}
			adv := make([]core.LSN, len(cut.Frontier))
			copy(adv, cut.Frontier)
			adv[i]++
			if Consistent(in, adv) {
				t.Fatalf("trial %d: cut %v not maximal: advancing shard %d to %d stays consistent (input %+v)",
					trial, cut.Frontier, i, adv[i], in)
			}
		}
	}
}

// TestComputeCutDeterministic is the satellite determinism test: the
// cut does not depend on the order the transaction table presents the
// transactions (shard logs can be enumerated in any order).
func TestComputeCutDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		in := randomCutInput(rng)
		base, err := ComputeCut(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for shuffle := 0; shuffle < 4; shuffle++ {
			shuffled := CutInput{Frontiers: in.Frontiers, LowWater: in.LowWater}
			shuffled.Txns = append([]Txn(nil), in.Txns...)
			rng.Shuffle(len(shuffled.Txns), func(a, b int) {
				shuffled.Txns[a], shuffled.Txns[b] = shuffled.Txns[b], shuffled.Txns[a]
			})
			got, err := ComputeCut(shuffled)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for i := range base.Frontier {
				if got.Frontier[i] != base.Frontier[i] {
					t.Fatalf("trial %d: cut depends on txn order: %v vs %v", trial, got.Frontier, base.Frontier)
				}
			}
			if len(got.Dropped) != len(base.Dropped) || got.Clusters != base.Clusters {
				t.Fatalf("trial %d: dropped/clusters depend on txn order", trial)
			}
		}
	}
}
