package shard

import (
	"fmt"
	"sort"

	"redotheory/internal/core"
	"redotheory/internal/model"
	"redotheory/internal/partition"
)

// Txn is one cross-shard transaction as reconstructed from the stable
// logs: the shared id plus the per-log sequence vector its records
// carry.
type Txn struct {
	// ID is the originating system operation's id, shared by every
	// participant record.
	ID model.OpID
	// Vec maps each writer-participant shard to the LSN of the
	// transaction's record in that shard's log.
	Vec map[int]core.LSN
	// Deps maps each read-only-participant shard to the log frontier the
	// transaction observed there: the cut must include that prefix for
	// the transaction's baked remote reads to be explainable.
	Deps map[int]core.LSN
}

// Shards returns the transaction's participant shards (writers and
// read-only), sorted.
func (t *Txn) Shards() []int {
	seen := make(map[int]bool, len(t.Vec)+len(t.Deps))
	for i := range t.Vec {
		seen[i] = true
	}
	for i := range t.Deps {
		seen[i] = true
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// CutInput is everything the certified-cut computation needs, all of it
// read off the shards' stable logs.
type CutInput struct {
	// Frontiers[i] is shard i's stable log frontier (highest durable
	// LSN) — the ceiling the cut starts from.
	Frontiers []core.LSN
	// LowWater[i] is the LSN of shard i's first surviving stable record
	// (NextLSN when the stable log is empty). Records below it were
	// truncated into the recovery base, i.e. installed; a cut may not
	// exclude them.
	LowWater []core.LSN
	// Txns is the cross-shard transaction table (StableTxns).
	Txns []Txn
}

// Cut is a certified cut: a vector of per-shard stable-log prefixes in
// which every cross-shard transaction is wholly inside or wholly
// outside, plus how the computation got there.
type Cut struct {
	// Frontier[i] is the highest LSN of shard i's log included in the
	// cut; the shard recovers from log.Prefix(Frontier[i]).
	Frontier []core.LSN
	// Dropped lists the transactions outside the cut (some record or
	// dependency not durable), ascending by id.
	Dropped []Txn
	// Retreats counts individual frontier retreats the fixpoint
	// performed — how much atomicity cost beyond raw durability.
	Retreats int
	// Clusters counts the connected groups of dropped transactions
	// (transactions sharing a participant shard fuse): the number of
	// independent "reasons" the cut is behind the frontiers.
	Clusters int
}

// Lag returns the total number of log records between the cut and the
// stable frontiers, summed over shards — 0 when the cut is exactly the
// frontier vector. (LSNs are dense per log, so frontier differences
// count records.)
func (c *Cut) Lag(in CutInput) int {
	lag := 0
	for i, f := range in.Frontiers {
		lag += int(f - c.Frontier[i])
	}
	return lag
}

// ComputeCut finds the maximal certified cut: the pointwise-largest
// vector cut ≤ in.Frontiers such that for every cross-shard transaction
// either every record LSN in its vector is ≤ the cut (and every
// read-only dependency frontier is too), or every record LSN is > the
// cut.
//
// Maximality and uniqueness: consistent cuts are closed under pointwise
// max — if a transaction is wholly inside either of two consistent cuts
// it is wholly inside their join, and if wholly outside both it is
// wholly outside the join (each vector entry exceeds both cuts at that
// shard, hence their max). So the consistent cuts below the frontier
// vector form a join-semilattice with a unique maximum, and the
// frontier-retreat fixpoint below finds it: the working cut starts at
// the frontiers (≥ the maximum) and only ever retreats to satisfy a
// constraint every consistent cut must satisfy, so it stays ≥ the
// maximum throughout and stops exactly at a consistent cut — the
// maximum. The same argument makes the result independent of the order
// transactions are examined (TestComputeCutDeterministic shuffles it).
//
// ComputeCut errors if the fixpoint would retreat below a low-water
// mark: records below it are already installed into the shard's
// recovery base, so a consistent cut excluding them cannot exist —
// which means some shard installed uncertified cross-shard work, a
// certification-gate violation, not a recoverable condition.
func ComputeCut(in CutInput) (*Cut, error) {
	n := len(in.Frontiers)
	cut := make([]core.LSN, n)
	copy(cut, in.Frontiers)
	c := &Cut{Frontier: cut}

	// Fixpoint: dropping one transaction can retreat a frontier past
	// another transaction's record, dropping it too. Each retreat
	// strictly lowers some entry, so termination is bounded by total log
	// length.
	for changed := true; changed; {
		changed = false
		for ti := range in.Txns {
			t := &in.Txns[ti]
			if txnInside(t, cut) {
				continue
			}
			// Some record or dependency is beyond the cut: the whole
			// transaction must fall outside, so retreat every shard whose
			// log still includes one of its records.
			for i, lsn := range t.Vec {
				if cut[i] < lsn {
					continue
				}
				target := lsn - 1
				if target < in.LowWater[i]-1 {
					return nil, fmt.Errorf(
						"shard: certified cut must retreat shard %d below low water %d to drop txn %d (record at %d): installed uncertified cross-shard work (gate violation)",
						i, in.LowWater[i], t.ID, lsn)
				}
				cut[i] = target
				c.Retreats++
				changed = true
			}
		}
	}

	// Classify and cluster the dropped transactions: transactions
	// sharing a participant shard fuse into one cluster (one retreat
	// cause can entangle both).
	var droppedIdx []int
	for ti := range in.Txns {
		if !txnInside(&in.Txns[ti], cut) {
			droppedIdx = append(droppedIdx, ti)
			c.Dropped = append(c.Dropped, in.Txns[ti])
		}
	}
	sort.Slice(c.Dropped, func(a, b int) bool { return c.Dropped[a].ID < c.Dropped[b].ID })
	if len(droppedIdx) > 0 {
		uf := partition.NewUnionFind(len(droppedIdx))
		lastOn := make(map[int]int) // shard → index into droppedIdx
		for k, ti := range droppedIdx {
			for _, s := range in.Txns[ti].Shards() {
				if prev, ok := lastOn[s]; ok {
					uf.Union(prev, k)
				}
				lastOn[s] = k
			}
		}
		c.Clusters = uf.Sets()
	}
	return c, nil
}

// txnInside reports whether the transaction is wholly inside the cut:
// every record within its shard's prefix and every read-only dependency
// frontier covered.
func txnInside(t *Txn, cut []core.LSN) bool {
	for i, lsn := range t.Vec {
		if lsn > cut[i] {
			return false
		}
	}
	for i, floor := range t.Deps {
		if floor > cut[i] {
			return false
		}
	}
	return true
}

// Consistent reports whether an arbitrary vector is a consistent cut
// for the input: bounded by the frontiers, not excluding installed
// records, and atomic (every transaction wholly inside — dependencies
// included — or wholly outside). The maximality property test advances
// the computed cut one record at a time and watches this fail.
func Consistent(in CutInput, cut []core.LSN) bool {
	for i, f := range in.Frontiers {
		if cut[i] > f || cut[i] < in.LowWater[i]-1 {
			return false
		}
	}
	for ti := range in.Txns {
		t := &in.Txns[ti]
		if txnInside(t, cut) {
			continue
		}
		// Not wholly inside: then no record may be inside.
		for i, lsn := range t.Vec {
			if lsn <= cut[i] {
				return false
			}
		}
	}
	return true
}
