package shard

import (
	"fmt"
	"math/rand"

	"redotheory/internal/model"
)

// CrossHistory generates n deterministic operations mixing single-shard
// read-modify-writes with cross-shard transactions (every crossEvery-th
// operation when crossEvery > 0), shaped so that every operation a
// shard actually executes — the shard-local projection for a cross
// transaction, the operation itself otherwise — is legal for the named
// method:
//
//   - Cross transfers read and write one page on each of two shards, so
//     each projection is a single-page read-modify-write: legal for
//     every eligible method, physiological's strictest shape included.
//   - Cross pulls read a remote page and read-modify-write one local
//     page: the remote shard becomes a read-only participant (exercising
//     dependency certification), and the writer-side projection is again
//     a single-page read-modify-write.
//   - Single-shard operations are single-page read-modify-writes, plus —
//     for methods that accept arbitrary shapes — intra-shard multi-page
//     operations.
//
// Operation ids are 1…n. CrossHistory errors for a non-eligible method
// and degrades to a purely single-shard history when the pages span
// fewer than two shards.
func CrossHistory(name string, n int, pages []model.Var, router *Router, crossEvery int, seed int64) ([]*model.Op, error) {
	if !Eligible(name) {
		return nil, fmt.Errorf("shard: method %q is not shard-eligible", name)
	}
	if len(pages) == 0 {
		return nil, nil
	}
	anyShape := name == "logical" || name == "grouplsn"

	// Group the pages by owning shard; cross transactions need two
	// distinct non-empty groups.
	byShard := make(map[int][]model.Var)
	var shards []int
	for _, p := range pages {
		s := router.Shard(p)
		if len(byShard[s]) == 0 {
			shards = append(shards, s)
		}
		byShard[s] = append(byShard[s], p)
	}

	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		id := model.OpID(i + 1)
		if crossEvery > 0 && len(shards) >= 2 && (i+1)%crossEvery == 0 {
			// Two pages on two distinct shards.
			si := shards[rng.Intn(len(shards))]
			sj := shards[rng.Intn(len(shards))]
			for sj == si {
				sj = shards[rng.Intn(len(shards))]
			}
			a := byShard[si][rng.Intn(len(byShard[si]))]
			b := byShard[sj][rng.Intn(len(byShard[sj]))]
			if rng.Intn(2) == 0 {
				ops[i] = model.ReadWrite(id, "xfer", []model.Var{a, b}, []model.Var{a, b})
			} else {
				ops[i] = model.ReadWrite(id, "pull", []model.Var{a, b}, []model.Var{a})
			}
			continue
		}
		s := shards[rng.Intn(len(shards))]
		local := byShard[s]
		if anyShape && len(local) >= 2 && rng.Intn(3) == 0 {
			// Intra-shard multi-page operation (logical/grouplsn only).
			j, k := rng.Intn(len(local)), rng.Intn(len(local))
			if j == k {
				k = (k + 1) % len(local)
			}
			ops[i] = model.ReadWrite(id, "wide", []model.Var{local[j], local[k]}, []model.Var{local[j], local[k]})
			continue
		}
		p := local[rng.Intn(len(local))]
		ops[i] = model.ReadWrite(id, "upd", []model.Var{p}, []model.Var{p})
	}
	return ops, nil
}
