package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"redotheory/internal/model"
	"redotheory/internal/workload"
)

// buildCrashed drives a sharded DB through a CrossHistory with a random
// background schedule (forces, certifications, installs, checkpoints,
// truncation) and staggered per-shard failures, then crashes whatever
// is still running. It returns the crashed DB and how many operations
// were refused because a participant had already failed.
func buildCrashed(t *testing.T, name string, mk Factory, nShards, nOps int, seed int64) (*DB, int) {
	t.Helper()
	pages := workload.Pages(4 * nShards)
	d := New(mk, nShards, workload.InitialState(pages))
	ops, err := CrossHistory(name, nOps, pages, d.Router(), 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 31))

	// Staggered failures: each shard freezes at its own point in the
	// second half of the history (or survives to the end).
	crashes := make([]int, nShards)
	for i := range crashes {
		crashes[i] = nOps/2 + rng.Intn(nOps/2+1)
	}

	skipped := 0
	for k, op := range ops {
		for i := 0; i < nShards; i++ {
			if k == crashes[i] {
				d.Freeze(i)
			}
		}
		if err := d.Exec(op); err != nil {
			if errors.Is(err, ErrShardDown) {
				skipped++
				continue
			}
			t.Fatalf("%s: exec op %d: %v", name, k, err)
		}
		i := rng.Intn(nShards)
		switch {
		case rng.Float64() < 0.35:
			d.FlushLog(i)
		case rng.Float64() < 0.3:
			if _, err := d.Certify(); err != nil {
				t.Fatalf("%s: certify after op %d: %v", name, k, err)
			}
		case rng.Float64() < 0.4:
			d.FlushOne(i)
		case rng.Float64() < 0.2:
			if err := d.Checkpoint(i); err != nil {
				t.Fatalf("%s: checkpoint shard %d: %v", name, i, err)
			}
		case rng.Float64() < 0.3:
			if _, err := d.Truncate(i); err != nil {
				t.Fatalf("%s: truncate shard %d: %v", name, i, err)
			}
		}
	}
	d.Crash()
	return d, skipped
}

// TestShardedRecoveryMatchesMergedOracle is the tentpole differential
// oracle: per-shard recovery from the certified cut must land on
// exactly the state a merged single-log replay of the cut prefixes
// produces, for every eligible method, shard count, and crash pattern —
// and each shard's projection must satisfy the recovery invariant.
func TestShardedRecoveryMatchesMergedOracle(t *testing.T) {
	for _, m := range eligibleMethods {
		for _, nShards := range []int{2, 4} {
			for seed := int64(1); seed <= 6; seed++ {
				name := fmt.Sprintf("%s×%d/seed%d", m.name, nShards, seed)
				d, _ := buildCrashed(t, m.name, m.mk, nShards, 36, seed)

				out, err := d.Recover(RecoverOptions{CheckInvariant: true})
				if err != nil {
					t.Fatalf("%s: recover: %v", name, err)
				}
				if !out.InvariantOK() {
					for _, so := range out.Shards {
						if so.Invariant != nil && !so.Invariant.OK {
							t.Errorf("%s: shard %d: %s", name, so.Shard, so.Invariant.Summary())
						}
					}
					t.Fatalf("%s: per-shard projection invariant violated", name)
				}

				oracle, err := d.MergedOracle(out.Cut)
				if err != nil {
					t.Fatalf("%s: oracle: %v", name, err)
				}
				if !out.State.Equal(oracle) {
					t.Fatalf("%s: sharded recovery diverged from the merged-log oracle on %v",
						name, out.State.Diff(oracle))
				}

				par, err := d.Recover(RecoverOptions{Parallel: true})
				if err != nil {
					t.Fatalf("%s: parallel recover: %v", name, err)
				}
				if !par.State.Equal(out.State) {
					t.Fatalf("%s: parallel per-shard recovery diverged from sequential on %v",
						name, par.State.Diff(out.State))
				}
				for i := range out.Cut.Frontier {
					if par.Cut.Frontier[i] != out.Cut.Frontier[i] {
						t.Fatalf("%s: cut not deterministic across recovery runs: %v vs %v",
							name, par.Cut.Frontier, out.Cut.Frontier)
					}
				}
			}
		}
	}
}

// TestRecoveryDropsTornCrossTxn pins the semantics on a hand-built
// scenario: a cross-shard transaction whose second record never became
// durable is rolled out of both logs, along with the durable follower
// it would otherwise leave unexplainable.
func TestRecoveryDropsTornCrossTxn(t *testing.T) {
	pages := workload.Pages(8)
	mk := eligibleMethods[0].mk // logical
	d := New(mk, 2, workload.InitialState(pages))
	a, b := twoShardPages(t, d.Router(), pages)

	// upd(a); xfer(a,b); upd(a) — force only shard 0's log, so the
	// transfer is torn: shard 1's copy is volatile at the crash.
	if err := d.Exec(model.ReadWrite(1, "upd", []model.Var{a}, []model.Var{a})); err != nil {
		t.Fatal(err)
	}
	if err := d.Exec(model.ReadWrite(2, "xfer", []model.Var{a, b}, []model.Var{a, b})); err != nil {
		t.Fatal(err)
	}
	if err := d.Exec(model.ReadWrite(3, "upd", []model.Var{a}, []model.Var{a})); err != nil {
		t.Fatal(err)
	}
	d.FlushLog(0)
	d.Crash()

	out, err := d.Recover(RecoverOptions{CheckInvariant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cut.Dropped) != 1 || out.Cut.Dropped[0].ID != 2 {
		t.Fatalf("dropped = %+v, want txn 2", out.Cut.Dropped)
	}
	// Shard 0 had 3 stable records (upd, xfer projection, upd); the cut
	// keeps only the first — the trailing upd is durable but beyond the
	// retreated frontier.
	s0 := out.Shards[d.Router().Shard(a)]
	if s0.StableRecords != 3 || s0.CutRecords != 1 {
		t.Errorf("shard of %q: %d stable, %d in cut; want 3 and 1", a, s0.StableRecords, s0.CutRecords)
	}
	if out.DroppedRecords != 2 {
		t.Errorf("DroppedRecords = %d, want 2", out.DroppedRecords)
	}
	if !out.InvariantOK() {
		t.Error("per-shard invariant violated")
	}
	oracle, err := d.MergedOracle(out.Cut)
	if err != nil {
		t.Fatal(err)
	}
	if !out.State.Equal(oracle) {
		t.Errorf("recovered state diverges from oracle on %v", out.State.Diff(oracle))
	}
}
