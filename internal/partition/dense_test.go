package partition_test

import (
	"fmt"
	"math/rand"
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/model"
	"redotheory/internal/partition"
)

// randomAccessLog builds a log of n operations over the given variables with
// random read/write sets (1–3 writes, 0–3 reads each), the access
// pattern space both planners must agree on.
func randomAccessLog(n, vars int, seed int64) *core.Log {
	rng := rand.New(rand.NewSource(seed))
	names := make([]model.Var, vars)
	for i := range names {
		names[i] = model.Var(fmt.Sprintf("v%d", i))
	}
	pick := func(k int) []model.Var {
		if k > len(names) {
			k = len(names)
		}
		out := make([]model.Var, 0, k)
		seen := make(map[model.Var]bool, k)
		for len(out) < k {
			v := names[rng.Intn(len(names))]
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}
	l := core.NewLog()
	for i := 0; i < n; i++ {
		l.Append(model.ReadWrite(model.OpID(i+1), fmt.Sprintf("op%d", i+1),
			pick(rng.Intn(4)), pick(1+rng.Intn(3))))
	}
	return l
}

// TestFromViewsMatchesFromRecords: the dense planner must compute the
// identical partition to the map-based one — same components in the
// same order, same record schedules, same written variables — across
// random access patterns and random replay subsets. This is the
// correspondence the dense parallel engine's correctness reduces to.
func TestFromViewsMatchesFromRecords(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		l := randomAccessLog(30, 2+int(seed)%7, seed)
		lv := core.NewLogView(l)
		rng := rand.New(rand.NewSource(seed * 31))

		// Replay a random subset of the log, in LSN order — as the
		// decision phase yields it. Include the full-log case.
		var records []*core.Record
		var replayIdx []int
		for i, r := range l.Records() {
			if seed%5 == 0 || rng.Float64() < 0.7 {
				records = append(records, r)
				replayIdx = append(replayIdx, i)
			}
		}

		want := partition.FromRecords(records)
		got := partition.FromViews(lv.Views, replayIdx, lv.In.Len())

		if got.Ops != want.Ops {
			t.Fatalf("seed %d: dense plan schedules %d ops, map plan %d", seed, got.Ops, want.Ops)
		}
		if gs, ws := got.Stats(), want.Stats(); gs != ws {
			t.Fatalf("seed %d: dense stats %+v, map stats %+v", seed, gs, ws)
		}
		if len(got.Components) != len(want.Components) {
			t.Fatalf("seed %d: %d dense components, %d map components", seed, len(got.Components), len(want.Components))
		}
		for ci, wc := range want.Components {
			gc := got.Components[ci]
			if len(gc.Idx) != len(wc.Records) {
				t.Fatalf("seed %d component %d: %d dense records, %d map records", seed, ci, len(gc.Idx), len(wc.Records))
			}
			for k, idx := range gc.Idx {
				if lv.Views[idx].Rec != wc.Records[k] {
					t.Fatalf("seed %d component %d position %d: dense schedules LSN %d, map schedules LSN %d",
						seed, ci, k, lv.Views[idx].Rec.LSN, wc.Records[k].LSN)
				}
			}
			if len(gc.Writes) != len(wc.Writes) {
				t.Fatalf("seed %d component %d: %d dense writes, %d map writes", seed, ci, len(gc.Writes), len(wc.Writes))
			}
			for k, id := range gc.Writes {
				if !wc.Writes.Has(lv.In.Var(id)) {
					t.Fatalf("seed %d component %d: dense writes %q, absent from map component", seed, ci, lv.In.Var(id))
				}
				if k > 0 && gc.Writes[k-1] >= id {
					t.Fatalf("seed %d component %d: Writes not strictly ascending at %d", seed, ci, k)
				}
			}
		}
	}
}

// TestFromViewsEmptyReplay: an empty replay set plans to nothing.
func TestFromViewsEmptyReplay(t *testing.T) {
	l := randomAccessLog(5, 3, 1)
	lv := core.NewLogView(l)
	p := partition.FromViews(lv.Views, nil, lv.In.Len())
	if p.Ops != 0 || len(p.Components) != 0 {
		t.Fatalf("empty replay planned %d ops in %d components", p.Ops, len(p.Components))
	}
	if p.MaxComponentLen() != 0 {
		t.Fatalf("empty plan has critical path %d", p.MaxComponentLen())
	}
}

// TestWriterReaderIndexes: the serve-engine gate indexes must invert
// the plan exactly — WriterIndex maps a variable to the unique
// component writing it (components write disjoint variables) and
// ReaderIndex lists, without duplicates, exactly the components whose
// replay reads the variable without writing it.
func TestWriterReaderIndexes(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		l := randomAccessLog(30, 2+int(seed)%7, seed)
		lv := core.NewLogView(l)
		replayIdx := make([]int, l.Len())
		for i := range replayIdx {
			replayIdx[i] = i
		}
		p := partition.FromViews(lv.Views, replayIdx, lv.In.Len())
		writer := p.WriterIndex(lv.In.Len())
		readers := p.ReaderIndex(lv.Views, lv.In.Len())

		wantWriter := make([]int32, lv.In.Len())
		for i := range wantWriter {
			wantWriter[i] = -1
		}
		wantReaders := make([]map[int32]bool, lv.In.Len())
		for ci, c := range p.Components {
			for _, id := range c.Writes {
				if wantWriter[id] != -1 {
					t.Fatalf("seed %d: variable %d written by components %d and %d", seed, id, wantWriter[id], ci)
				}
				wantWriter[id] = int32(ci)
			}
			for _, vi := range c.Idx {
				for _, id := range lv.Views[vi].Reads {
					if wantReaders[id] == nil {
						wantReaders[id] = map[int32]bool{}
					}
					wantReaders[id][int32(ci)] = true
				}
			}
		}
		for id := 0; id < lv.In.Len(); id++ {
			if writer[id] != wantWriter[id] {
				t.Fatalf("seed %d: writer[%d] = %d, want %d", seed, id, writer[id], wantWriter[id])
			}
			seen := map[int32]bool{}
			for _, ci := range readers[id] {
				if seen[ci] {
					t.Fatalf("seed %d: readers[%d] lists component %d twice", seed, id, ci)
				}
				seen[ci] = true
				if ci == writer[id] {
					t.Fatalf("seed %d: readers[%d] lists its own writer %d", seed, id, ci)
				}
				if !wantReaders[id][ci] {
					t.Fatalf("seed %d: readers[%d] lists component %d, which never reads it", seed, id, ci)
				}
			}
			for ci := range wantReaders[id] {
				if ci != writer[id] && !seen[ci] {
					t.Fatalf("seed %d: readers[%d] misses reading component %d", seed, id, ci)
				}
			}
		}
	}
}
