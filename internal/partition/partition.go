// Package partition plans parallel redo replay. The paper's installation
// graph (Section 3.1, Theorem 3) is a dependency order for recovery:
// operations with no path between them in the graphs governing replay may
// be redone in either order, so they may be redone concurrently. This
// package takes the redo set a recovery method's decision phase chose —
// the uninstalled suffix of the log — and splits it into independent
// components that a worker pool can replay against disjoint slices of the
// state, with a schedule inside each component that preserves the
// sequential procedure's order.
//
// # Which graph partitions replay
//
// The installation graph alone is not enough for methods that replay by
// recomputation. It drops pure write-read edges, and a write-read edge is
// exactly a replayed reader's data dependency on a replayed writer: if A
// writes x and B recomputes from x, replaying B before A feeds B a stale
// read. Blind-write methods (physical logging) have no read sets, so for
// them the restriction of the installation graph and of the conflict
// graph coincide; reading methods (logical, generalized LSN) need the
// write-read and read-write edges kept — the same careful-write-order
// story as Section 6.4, where a reader's page must install before its
// read page is overwritten. So the planner partitions by the conflict
// graph, of which the installation graph's components are the blind-write
// special case. ConflictComponents exposes that graph-theoretic view.
//
// # The schedule the planner actually builds
//
// Components computes the same partition without building a graph at
// all, from interference alone: for every variable written by some
// replayed operation, all replayed operations accessing that variable
// are fused into one component. Under the Recovery Invariant the two
// constructions agree (TestPlanMatchesConflictComponents asserts it):
// the invariant makes the installed set an installation-graph prefix, so
// the replayed writers of a variable are a contiguous suffix of its
// version chain, chained together by write-write edges, and every
// replayed reader attaches to that chain by a direct write-read or
// read-write edge. The interference form is preferred because it is
// O(accesses) with no graph build, and because it stays safe even on
// out-of-contract inputs (a faulted run whose installed set is not a
// prefix): components never share a written variable, so partitioned
// replay equals sequential replay unconditionally — both may then be
// wrong, but identically wrong, which is what lets the campaign's
// corruption oracle treat parallel and sequential recovery as the same
// procedure.
//
// Within a component, records keep LSN order. The log order is
// consistent with the conflict order (Section 4.1), so LSN order is a
// topological order of the restricted conflict graph — the canonical
// schedule Lemma 1 linearization licenses.
package partition

import (
	"fmt"
	"sort"

	"redotheory/internal/conflict"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
)

// Component is one independently replayable unit: records in LSN order
// whose written variables no other component touches.
type Component struct {
	// Records in LSN order (the component's topological schedule).
	Records []*core.Record
	// Writes is the set of variables the component's operations write:
	// its slice of the state. Disjoint across components by construction.
	Writes graph.Set[model.Var]
}

// Plan is a parallel replay schedule for one redo set.
type Plan struct {
	// Components in deterministic order (by first record LSN).
	Components []*Component
	// Ops is the total number of records scheduled.
	Ops int
}

// MaxComponentLen returns the longest component's length — the critical
// path of the plan in records (0 for an empty plan).
func (p *Plan) MaxComponentLen() int {
	m := 0
	for _, c := range p.Components {
		if len(c.Records) > m {
			m = len(c.Records)
		}
	}
	return m
}

// FromLog plans the replay of the given redo set out of the log: the
// records whose operation ids are in the set, fused into interference
// components (see the package comment) and scheduled in LSN order.
func FromLog(log *core.Log, redo graph.Set[model.OpID]) *Plan {
	var records []*core.Record
	for _, r := range log.Records() {
		if redo.Has(r.Op.ID()) {
			records = append(records, r)
		}
	}
	return FromRecords(records)
}

// FromRecords plans the replay of the given records, which must be in
// LSN order (as a log scan yields them).
func FromRecords(records []*core.Record) *Plan {
	uf := NewUnionFind(len(records))
	// Two operations interfere iff they access a common variable that at
	// least one of them writes; union-find fuses the transitive closure.
	// writerOf[x] is a representative index once x has a scheduled
	// writer; pending[x] collects readers seen before any writer — they
	// must observe the pre-write value, so the first writer fuses with
	// all of them. Readers of a variable no scheduled operation writes
	// stay unconstrained: the variable is stable throughout replay.
	writerOf := make(map[model.Var]int)
	pending := make(map[model.Var][]int)
	for i, r := range records {
		for _, x := range r.Op.Writes() {
			if w, ok := writerOf[x]; ok {
				uf.Union(w, i)
			} else {
				writerOf[x] = i
				for _, reader := range pending[x] {
					uf.Union(reader, i)
				}
				delete(pending, x)
			}
		}
		for _, x := range r.Op.Reads() {
			if w, ok := writerOf[x]; ok {
				uf.Union(w, i)
			} else {
				pending[x] = append(pending[x], i)
			}
		}
	}

	byRoot := make(map[int]*Component)
	var order []int
	for i, r := range records {
		root := uf.Find(i)
		c, ok := byRoot[root]
		if !ok {
			c = &Component{Writes: graph.NewSet[model.Var]()}
			byRoot[root] = c
			order = append(order, root)
		}
		c.Records = append(c.Records, r) // i ascends, so LSN order is kept
		for _, x := range r.Op.Writes() {
			c.Writes.Add(x)
		}
	}
	plan := &Plan{Ops: len(records)}
	// order holds roots by first appearance, i.e. by first record LSN.
	for _, root := range order {
		plan.Components = append(plan.Components, byRoot[root])
	}
	return plan
}

// ConflictComponents returns the weakly-connected components of the
// conflict graph restricted to the given operation set: the
// graph-theoretic statement of which replayed operations may not be
// reordered. Component members are sorted by operation id, components by
// smallest member. The planner's interference components coincide with
// these whenever the installed complement is an installation-graph
// prefix (the Recovery Invariant); tests assert that agreement.
func ConflictComponents(cg *conflict.Graph, within graph.Set[model.OpID]) [][]model.OpID {
	return cg.DAG().WeakComponents(within)
}

// InstallComponents is ConflictComponents on the installation graph: the
// partition Theorem 3 licenses for blind-write histories, where no
// write-read edges exist to drop. For histories with readers it may
// split a replayed reader from its replayed writer and is therefore not
// a valid replay partition on its own; it exists to measure (and let
// tests demonstrate) exactly that gap.
func InstallComponents(ig *install.Graph, within graph.Set[model.OpID]) [][]model.OpID {
	return ig.DAG().WeakComponents(within)
}

// Stats summarizes a plan for reporting.
type Stats struct {
	Ops        int
	Components int
	// Largest is the longest component (the critical path).
	Largest int
}

// Stats returns the plan's summary numbers.
func (p *Plan) Stats() Stats {
	return Stats{Ops: p.Ops, Components: len(p.Components), Largest: p.MaxComponentLen()}
}

// Signature renders the stats as a compact "ops/components/largest"
// key. The fuzzer counts distinct signatures as its partition-shape
// coverage metric: two cells with the same signature exercised the same
// parallelism structure.
func (s Stats) Signature() string {
	return fmt.Sprintf("%d/%d/%d", s.Ops, s.Components, s.Largest)
}

// UnionFind is a standard disjoint-set forest over dense indexes with
// path halving and union by size. The planner closes interference
// components with it; the sharded certified-cut computation
// (internal/shard) reuses it to cluster the transactions a frontier
// retreat entangles.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns n singleton sets, one per index in [0, n).
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the canonical representative of i's set.
func (uf *UnionFind) Find(i int) int {
	for uf.parent[i] != i {
		uf.parent[i] = uf.parent[uf.parent[i]]
		i = uf.parent[i]
	}
	return i
}

// Union merges the sets containing a and b.
func (uf *UnionFind) Union(a, b int) {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// Sets counts the distinct sets remaining.
func (uf *UnionFind) Sets() int {
	n := 0
	for i := range uf.parent {
		if uf.Find(i) == i {
			n++
		}
	}
	return n
}

// sortIDs sorts operation ids ascending (test helper shared via export).
func sortIDs(ids []model.OpID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// IDs returns the component's operation ids in ascending order.
func (c *Component) IDs() []model.OpID {
	out := make([]model.OpID, len(c.Records))
	for i, r := range c.Records {
		out[i] = r.Op.ID()
	}
	sortIDs(out)
	return out
}
