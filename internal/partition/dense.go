package partition

import (
	"redotheory/internal/core"
)

// DenseComponent is a Component in the interned representation: record
// indexes into a log view instead of record pointers, and a flat slice
// of written variable ids instead of a map-backed set. Write-id slices
// are disjoint across components by construction, exactly like
// Component.Writes.
type DenseComponent struct {
	// Idx are indexes into the log view's Views slice, in LSN order
	// (the component's topological schedule).
	Idx []int
	// Writes are the unique interned ids the component's operations
	// write, ascending.
	Writes []uint32
}

// DensePlan is a Plan over dense record views.
type DensePlan struct {
	// Components in deterministic order (by first record LSN).
	Components []*DenseComponent
	// Ops is the total number of records scheduled.
	Ops int
}

// MaxComponentLen returns the longest component's length — the
// critical path of the plan in records (0 for an empty plan).
func (p *DensePlan) MaxComponentLen() int {
	m := 0
	for _, c := range p.Components {
		if len(c.Idx) > m {
			m = len(c.Idx)
		}
	}
	return m
}

// Stats returns the plan's summary numbers.
func (p *DensePlan) Stats() Stats {
	return Stats{Ops: p.Ops, Components: len(p.Components), Largest: p.MaxComponentLen()}
}

// WriterIndex returns the page→component table of the plan: entry x is
// the index (into Components) of the component that writes variable id
// x, or -1 when no scheduled operation writes it. Because components
// write disjoint variables, the writer component is unique — this is
// the page→admitted-records index the instant-restart serve engine
// consults on every touch. numIDs is the interner's Len().
func (p *DensePlan) WriterIndex(numIDs int) []int32 {
	out := make([]int32, numIDs)
	for i := range out {
		out[i] = -1
	}
	for ci, c := range p.Components {
		for _, x := range c.Writes {
			out[x] = int32(ci)
		}
	}
	return out
}

// ReaderIndex returns, per variable id, the components whose scheduled
// operations read it without writing it: the stable variables a
// component's recomputation depends on. Interference closure fuses a
// reader with the variable's writer, so for any id with a writer
// component the reader list is empty by construction; non-empty lists
// name variables no component writes. The serve engine's admission
// gate uses this as the careful-write-order constraint for post-crash
// writes: a new write to x may proceed only once every component
// reading x has replayed, or its recomputations would observe the new
// value instead of the crash-time one. views must be the log view the
// plan was built from; numIDs is the interner's Len().
func (p *DensePlan) ReaderIndex(views []core.RecordView, numIDs int) [][]int32 {
	writer := p.WriterIndex(numIDs)
	out := make([][]int32, numIDs)
	for ci, c := range p.Components {
		for _, vi := range c.Idx {
			for _, x := range views[vi].Reads {
				if writer[x] == int32(ci) {
					continue // own write: not a stable dependency
				}
				rs := out[x]
				if n := len(rs); n > 0 && rs[n-1] == int32(ci) {
					continue // already recorded for this component
				}
				out[x] = append(rs, int32(ci))
			}
		}
	}
	return out
}

// FromViews is FromRecords on the dense representation: it plans the
// replay of the records named by replayIdx (indexes into views, in LSN
// order, as the decision phase yields them) with the same interference
// fusion, but the writer and pending-reader tables become flat slices
// indexed by interned variable id — numIDs is the interner's Len() —
// instead of maps keyed by variable name. Same partition, no hashing:
// TestFromViewsMatchesFromRecords asserts the correspondence.
func FromViews(views []core.RecordView, replayIdx []int, numIDs int) *DensePlan {
	uf := NewUnionFind(len(replayIdx))
	// writerOf[x] is the replay position of x's first scheduled writer
	// (-1 when none yet); pending[x] collects readers seen before any
	// writer — see FromRecords for why the first writer fuses with
	// them.
	writerOf := make([]int32, numIDs)
	for i := range writerOf {
		writerOf[i] = -1
	}
	pending := make([][]int32, numIDs)
	for i, vi := range replayIdx {
		v := &views[vi]
		for _, x := range v.Writes {
			if w := writerOf[x]; w >= 0 {
				uf.Union(int(w), i)
			} else {
				writerOf[x] = int32(i)
				for _, reader := range pending[x] {
					uf.Union(int(reader), i)
				}
				pending[x] = nil
			}
		}
		for _, x := range v.Reads {
			if w := writerOf[x]; w >= 0 {
				uf.Union(int(w), i)
			} else {
				pending[x] = append(pending[x], int32(i))
			}
		}
	}

	// Group by root. Roots are replay positions, so flat slices replace
	// FromRecords' byRoot map, and a counting pass sizes two shared
	// arenas exactly: every component's Idx and Writes is a zero-growth
	// sub-slice, so building the plan costs a fixed handful of
	// allocations regardless of how many components there are.
	n := len(replayIdx)
	counts := make([]int32, n)
	wcounts := make([]int32, n)
	comps := 0
	for i := 0; i < n; i++ {
		root := uf.Find(i)
		if counts[root] == 0 {
			comps++
		}
		counts[root]++
	}
	totalWrites := 0
	for _, w := range writerOf {
		if w >= 0 {
			wcounts[uf.Find(int(w))]++
			totalWrites++
		}
	}

	backing := make([]DenseComponent, comps)
	idxArena := make([]int, n)
	writeArena := make([]uint32, totalWrites)
	compAt := make([]*DenseComponent, n)
	plan := &DensePlan{Ops: n, Components: make([]*DenseComponent, 0, comps)}
	idxOff, wOff := 0, 0
	for i, vi := range replayIdx {
		root := uf.Find(i)
		c := compAt[root]
		if c == nil {
			c = &backing[len(plan.Components)]
			// Three-index sub-slices: appends fill the reserved region
			// and can never spill into a neighbour's.
			c.Idx = idxArena[idxOff:idxOff : idxOff+int(counts[root])]
			idxOff += int(counts[root])
			c.Writes = writeArena[wOff:wOff : wOff+int(wcounts[root])]
			wOff += int(wcounts[root])
			compAt[root] = c
			// i ascends, so components order by first record LSN.
			plan.Components = append(plan.Components, c)
		}
		c.Idx = append(c.Idx, vi)
	}
	// Each written id belongs to the component of its first writer;
	// iterating writerOf ascending yields each component's Writes
	// sorted and each id exactly once.
	for x, w := range writerOf {
		if w >= 0 {
			c := compAt[uf.Find(int(w))]
			c.Writes = append(c.Writes, uint32(x))
		}
	}
	return plan
}
