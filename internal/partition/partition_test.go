package partition_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/partition"
)

func logOf(ops ...*model.Op) *core.Log {
	l := core.NewLog()
	for _, o := range ops {
		l.Append(o)
	}
	return l
}

func allOps(l *core.Log) graph.Set[model.OpID] {
	s := graph.NewSet[model.OpID]()
	for _, r := range l.Records() {
		s.Add(r.Op.ID())
	}
	return s
}

func componentIDs(p *partition.Plan) [][]model.OpID {
	out := make([][]model.OpID, len(p.Components))
	for i, c := range p.Components {
		out[i] = c.IDs()
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func rw(id model.OpID, reads, writes []model.Var) *model.Op {
	return model.ReadWrite(id, "op", reads, writes)
}

func v(s string) model.Var { return model.Var(s) }

func TestPlanSplitsIndependentChains(t *testing.T) {
	// Two per-variable chains and one isolated blind write.
	l := logOf(
		rw(1, nil, []model.Var{v("x")}),
		rw(2, nil, []model.Var{v("y")}),
		rw(3, []model.Var{v("x")}, []model.Var{v("x")}),
		rw(4, []model.Var{v("y")}, []model.Var{v("y")}),
		rw(5, nil, []model.Var{v("z")}),
	)
	p := partition.FromLog(l, allOps(l))
	want := [][]model.OpID{{1, 3}, {2, 4}, {5}}
	if got := componentIDs(p); !reflect.DeepEqual(got, want) {
		t.Errorf("components = %v, want %v", got, want)
	}
	if p.Ops != 5 || p.MaxComponentLen() != 2 {
		t.Errorf("Ops = %d, MaxComponentLen = %d", p.Ops, p.MaxComponentLen())
	}
	st := p.Stats()
	if st.Ops != 5 || st.Components != 3 || st.Largest != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestPlanFusesAllPendingReadersWithFirstWriter(t *testing.T) {
	// Two readers of x appear before x's first scheduled writer: both must
	// observe the pre-write value, so both fuse with the writer — and
	// transitively with each other.
	l := logOf(
		rw(1, []model.Var{v("x")}, []model.Var{v("a")}),
		rw(2, []model.Var{v("x")}, []model.Var{v("b")}),
		rw(3, nil, []model.Var{v("x")}),
	)
	p := partition.FromLog(l, allOps(l))
	want := [][]model.OpID{{1, 2, 3}}
	if got := componentIDs(p); !reflect.DeepEqual(got, want) {
		t.Errorf("components = %v, want %v", got, want)
	}
}

func TestPlanReadersOfStableVariableStayIndependent(t *testing.T) {
	// No scheduled operation writes q, so q is stable throughout replay
	// and its readers need no mutual ordering.
	l := logOf(
		rw(1, []model.Var{v("q")}, []model.Var{v("a")}),
		rw(2, []model.Var{v("q")}, []model.Var{v("b")}),
	)
	p := partition.FromLog(l, allOps(l))
	want := [][]model.OpID{{1}, {2}}
	if got := componentIDs(p); !reflect.DeepEqual(got, want) {
		t.Errorf("components = %v, want %v", got, want)
	}
}

func TestPlanKeepsLSNOrderWithinComponents(t *testing.T) {
	l := logOf(
		rw(1, nil, []model.Var{v("x")}),
		rw(2, nil, []model.Var{v("y")}),
		rw(3, []model.Var{v("x")}, []model.Var{v("x")}),
		rw(4, []model.Var{v("x"), v("y")}, []model.Var{v("y")}),
	)
	p := partition.FromLog(l, allOps(l))
	if len(p.Components) != 1 {
		t.Fatalf("expected one fused component, got %d", len(p.Components))
	}
	var lsns []core.LSN
	for _, r := range p.Components[0].Records {
		lsns = append(lsns, r.LSN)
	}
	if !sort.SliceIsSorted(lsns, func(i, j int) bool { return lsns[i] < lsns[j] }) {
		t.Errorf("component records out of LSN order: %v", lsns)
	}
}

func TestPlanFiltersByRedoSet(t *testing.T) {
	l := logOf(
		rw(1, nil, []model.Var{v("x")}),
		rw(2, []model.Var{v("x")}, []model.Var{v("x")}),
		rw(3, []model.Var{v("x")}, []model.Var{v("x")}),
	)
	// Only op 3 is uninstalled: x's earlier writers are stable, so the
	// plan is a single singleton component.
	p := partition.FromLog(l, graph.NewSet[model.OpID](3))
	want := [][]model.OpID{{3}}
	if got := componentIDs(p); !reflect.DeepEqual(got, want) {
		t.Errorf("components = %v, want %v", got, want)
	}
	if p.Ops != 1 {
		t.Errorf("Ops = %d, want 1", p.Ops)
	}
}

func TestPlanWritesAreDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randomLog(rng, 40, 6)
	p := partition.FromLog(l, allOps(l))
	seen := make(map[model.Var]int)
	for ci, c := range p.Components {
		for x := range c.Writes {
			if prev, dup := seen[x]; dup {
				t.Fatalf("variable %s written by components %d and %d", x, prev, ci)
			}
			seen[x] = ci
		}
	}
}

// randomLog builds a log of n operations with random read and write sets
// over nv variables.
func randomLog(rng *rand.Rand, n, nv int) *core.Log {
	vars := make([]model.Var, nv)
	for i := range vars {
		vars[i] = model.Var(string(rune('a' + i)))
	}
	l := core.NewLog()
	for i := 1; i <= n; i++ {
		var reads, writes []model.Var
		for _, x := range vars {
			if rng.Float64() < 0.25 {
				reads = append(reads, x)
			}
			if rng.Float64() < 0.2 {
				writes = append(writes, x)
			}
		}
		if len(writes) == 0 { // every logged operation changes state
			writes = append(writes, vars[rng.Intn(nv)])
		}
		l.Append(rw(model.OpID(i), reads, writes))
	}
	return l
}

// TestPlanMatchesConflictComponents is the agreement the package comment
// promises: when the installed complement is an installation-graph
// prefix (the Recovery Invariant's shape), the planner's interference
// components equal the weakly-connected components of the conflict graph
// restricted to the redo set.
func TestPlanMatchesConflictComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		l := randomLog(rng, 5+rng.Intn(30), 2+rng.Intn(6))
		cg := l.ConflictGraph()
		ig := install.FromConflict(cg)

		// In contract: installed = a prefix of some installation-graph
		// linearization, redo = the rest.
		topo, err := ig.DAG().TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		k := rng.Intn(len(topo) + 1)
		redo := graph.NewSet[model.OpID](topo[k:]...)

		got := componentIDs(partition.FromLog(l, redo))
		want := partition.ConflictComponents(cg, redo)
		if len(want) == 0 {
			want = [][]model.OpID{}
		}
		if len(got) == 0 {
			got = [][]model.OpID{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: plan components %v != conflict components %v", trial, got, want)
		}
	}
}

// TestPlanCoarsensConflictComponentsOutOfContract: on an arbitrary redo
// set — a faulted run whose installed set is no installation-graph
// prefix — the two constructions can differ, because conflict edges only
// chain consecutive accessors and an installed middle writer breaks the
// restricted chain. The plan errs on the safe side: it only ever fuses
// more (every restricted conflict component lies inside one plan
// component), so partitioned replay still equals sequential replay.
func TestPlanCoarsensConflictComponentsOutOfContract(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		l := randomLog(rng, 5+rng.Intn(30), 2+rng.Intn(6))
		cg := l.ConflictGraph()
		redo := graph.NewSet[model.OpID]()
		for _, r := range l.Records() {
			if rng.Float64() < 0.5 {
				redo.Add(r.Op.ID())
			}
		}

		planOf := make(map[model.OpID]int)
		for ci, c := range partition.FromLog(l, redo).Components {
			for _, id := range c.IDs() {
				planOf[id] = ci
			}
		}
		for _, cc := range partition.ConflictComponents(cg, redo) {
			for _, id := range cc[1:] {
				if planOf[id] != planOf[cc[0]] {
					t.Fatalf("trial %d: conflict component %v split across plan components", trial, cc)
				}
			}
		}
	}
}

// TestPlanCoarserThanInstallOnChainGap pins the concrete out-of-contract
// shape down: writers W1→W2→W3 of x with W2 installed. The restricted
// conflict graph has no W1–W3 edge (WW edges chain consecutive writers
// only), yet both replay against x, so the plan must fuse them.
func TestPlanCoarserThanInstallOnChainGap(t *testing.T) {
	l := logOf(
		rw(1, nil, []model.Var{v("x")}),
		rw(2, nil, []model.Var{v("x")}),
		rw(3, nil, []model.Var{v("x")}),
	)
	redo := graph.NewSet[model.OpID](1, 3)
	conf := partition.ConflictComponents(l.ConflictGraph(), redo)
	if want := [][]model.OpID{{1}, {3}}; !reflect.DeepEqual(conf, want) {
		t.Errorf("ConflictComponents = %v, want %v", conf, want)
	}
	got := componentIDs(partition.FromLog(l, redo))
	if want := [][]model.OpID{{1, 3}}; !reflect.DeepEqual(got, want) {
		t.Errorf("plan components = %v, want %v", got, want)
	}
}

// TestInstallComponentsDropReadDependencies demonstrates the gap the
// package comment describes: the installation graph drops the pure
// write-read edge A→B, so its components would let B replay without A —
// feeding B a stale read. The conflict components (and the plan) keep
// them fused.
func TestInstallComponentsDropReadDependencies(t *testing.T) {
	l := logOf(
		rw(1, nil, []model.Var{v("x")}),                // A: blind write x
		rw(2, []model.Var{v("x")}, []model.Var{v("y")}), // B: recomputes y from x
	)
	redo := allOps(l)
	cg := l.ConflictGraph()
	ig := install.FromConflict(cg)

	conf := partition.ConflictComponents(cg, redo)
	if want := [][]model.OpID{{1, 2}}; !reflect.DeepEqual(conf, want) {
		t.Errorf("ConflictComponents = %v, want %v", conf, want)
	}
	inst := partition.InstallComponents(ig, redo)
	if want := [][]model.OpID{{1}, {2}}; !reflect.DeepEqual(inst, want) {
		t.Errorf("InstallComponents = %v, want %v (the dropped WR edge)", inst, want)
	}
	plan := partition.FromLog(l, redo)
	if want := [][]model.OpID{{1, 2}}; !reflect.DeepEqual(componentIDs(plan), want) {
		t.Errorf("plan components = %v, want %v", componentIDs(plan), want)
	}
}

// TestInstallComponentsMatchForBlindWrites: with no read sets there are
// no write-read edges to drop, so the installation graph's components are
// exactly the conflict components — Theorem 3's special case.
func TestInstallComponentsMatchForBlindWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vars := []model.Var{v("x"), v("y"), v("z")}
	l := core.NewLog()
	for i := 1; i <= 25; i++ {
		l.Append(rw(model.OpID(i), nil, []model.Var{vars[rng.Intn(len(vars))]}))
	}
	redo := allOps(l)
	cg := l.ConflictGraph()
	ig := install.FromConflict(cg)
	conf := partition.ConflictComponents(cg, redo)
	inst := partition.InstallComponents(ig, redo)
	if !reflect.DeepEqual(conf, inst) {
		t.Errorf("blind-write components differ: conflict %v, install %v", conf, inst)
	}
}
