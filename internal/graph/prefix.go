package graph

import (
	"cmp"
	"fmt"
	"sort"
)

// Set is a node set used for prefixes and installed sets.
type Set[K comparable] map[K]struct{}

// NewSet builds a Set from keys.
func NewSet[K comparable](ks ...K) Set[K] {
	s := make(Set[K], len(ks))
	for _, k := range ks {
		s[k] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set[K]) Has(k K) bool {
	_, ok := s[k]
	return ok
}

// Add inserts k.
func (s Set[K]) Add(k K) { s[k] = struct{}{} }

// Clone copies the set.
func (s Set[K]) Clone() Set[K] {
	c := make(Set[K], len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// IsPrefix reports whether the node set is a prefix of the graph: every
// node is present and every predecessor of a member is a member. Direct
// predecessors suffice — a set closed under direct predecessors is closed
// under all of them.
func (g *Graph[K]) IsPrefix(s Set[K]) bool {
	_, ok := g.PrefixViolation(s)
	return !ok
}

// PrefixViolation returns an edge u→v with v in the set and u outside it,
// if one exists; such an edge witnesses that the set is not a prefix. A
// set member that is not a node of the graph is reported as a self-pair.
func (g *Graph[K]) PrefixViolation(s Set[K]) ([2]K, bool) {
	// Deterministic scan so checker reports are stable.
	members := make([]K, 0, len(s))
	for k := range s {
		members = append(members, k)
	}
	sortSlice(members)
	for _, v := range members {
		if !g.HasNode(v) {
			return [2]K{v, v}, true
		}
		for _, u := range g.Preds(v) {
			if !s.Has(u) {
				return [2]K{u, v}, true
			}
		}
	}
	return [2]K{}, false
}

func sortSlice[K cmp.Ordered](ks []K) {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
}

// PrefixClosure returns the smallest prefix containing s: s plus every
// ancestor of every member.
func (g *Graph[K]) PrefixClosure(s Set[K]) Set[K] {
	out := s.Clone()
	stack := make([]K, 0, len(s))
	for k := range s {
		stack = append(stack, k)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.preds[n] {
			if !out.Has(p) {
				out.Add(p)
				stack = append(stack, p)
			}
		}
	}
	return out
}

// MinimalOutside returns, in sorted order, the nodes outside the set with
// no direct predecessor outside the set. When the set is a prefix these
// are exactly the minimal elements of the complement under the full path
// order (no path between complement nodes can route through the prefix,
// because prefixes have no incoming edges from outside).
func (g *Graph[K]) MinimalOutside(s Set[K]) []K {
	var out []K
	for k := range g.nodes {
		if s.Has(k) {
			continue
		}
		minimal := true
		for p := range g.preds[k] {
			if !s.Has(p) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, k)
		}
	}
	sortSlice(out)
	return out
}

// EnumeratePrefixes returns every prefix of the graph (including the
// empty set and the full node set), or an error once more than limit
// prefixes exist. The count is exponential in the graph's width; callers
// use this only on the small histories of the equivalence experiments.
func (g *Graph[K]) EnumeratePrefixes(limit int) ([]Set[K], error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	prefixes := []Set[K]{NewSet[K]()}
	// Process nodes in topological order; each node may be added to any
	// existing prefix that already contains all its predecessors.
	for _, n := range order {
		grown := make([]Set[K], 0, len(prefixes))
		for _, p := range prefixes {
			ok := true
			for pred := range g.preds[n] {
				if !p.Has(pred) {
					ok = false
					break
				}
			}
			if ok {
				withN := p.Clone()
				withN.Add(n)
				grown = append(grown, withN)
			}
		}
		prefixes = append(prefixes, grown...)
		if len(prefixes) > limit {
			return nil, fmt.Errorf("graph: more than %d prefixes", limit)
		}
	}
	return prefixes, nil
}

// MinimalByReachability returns the minimal elements of an arbitrary node
// subset under the full path order: members with no other member having a
// path to them. Paths may route through nodes outside the subset. This is
// the reference implementation used to cross-check the cheaper
// chain-based computations; it costs O(|subset| · edges).
func (g *Graph[K]) MinimalByReachability(subset Set[K]) []K {
	var out []K
	for k := range subset {
		minimal := true
		for other := range subset {
			if other == k {
				continue
			}
			if g.HasPath(other, k) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, k)
		}
	}
	sortSlice(out)
	return out
}
