package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnumeratePrefixesDiamond(t *testing.T) {
	g := diamond()
	ps, err := g.EnumeratePrefixes(100)
	if err != nil {
		t.Fatal(err)
	}
	// Ideals of the diamond: {}, {1}, {1,2}, {1,3}, {1,2,3}, {1,2,3,4}.
	if len(ps) != 6 {
		t.Fatalf("got %d prefixes, want 6", len(ps))
	}
	for _, p := range ps {
		if !g.IsPrefix(p) {
			t.Errorf("enumerated non-prefix %v", p)
		}
	}
}

func TestEnumeratePrefixesChainAndAntichain(t *testing.T) {
	// A chain of n nodes has n+1 prefixes.
	chain := New[int]()
	for i := 0; i < 5; i++ {
		chain.AddNode(i)
		if i > 0 {
			chain.AddEdge(i-1, i)
		}
	}
	if ps, _ := chain.EnumeratePrefixes(100); len(ps) != 6 {
		t.Errorf("chain prefixes = %d, want 6", len(ps))
	}
	// An antichain of n nodes has 2^n prefixes.
	anti := New[int]()
	for i := 0; i < 5; i++ {
		anti.AddNode(i)
	}
	if ps, _ := anti.EnumeratePrefixes(100); len(ps) != 32 {
		t.Errorf("antichain prefixes = %d, want 32", len(ps))
	}
}

func TestEnumeratePrefixesLimit(t *testing.T) {
	anti := New[int]()
	for i := 0; i < 20; i++ {
		anti.AddNode(i)
	}
	if _, err := anti.EnumeratePrefixes(1000); err == nil {
		t.Error("limit not enforced")
	}
}

func TestEnumeratePrefixesMatchesBruteForce(t *testing.T) {
	// For random small DAGs, the enumeration matches a brute-force scan
	// of all subsets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 8, 0.3)
		ps, err := g.EnumeratePrefixes(1 << 10)
		if err != nil {
			return false
		}
		// Deduplicate (should already be unique) and count brute force.
		seen := map[string]bool{}
		for _, p := range ps {
			key := ""
			for i := 0; i < 8; i++ {
				if p.Has(i) {
					key += "1"
				} else {
					key += "0"
				}
			}
			if seen[key] {
				return false // duplicate
			}
			seen[key] = true
		}
		brute := 0
		for mask := 0; mask < 1<<8; mask++ {
			s := NewSet[int]()
			for i := 0; i < 8; i++ {
				if mask&(1<<i) != 0 {
					s.Add(i)
				}
			}
			if g.IsPrefix(s) {
				brute++
			}
		}
		return brute == len(ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPrefixClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 10, 0.3)
		s := NewSet[int]()
		for i := 0; i < 10; i++ {
			if rng.Float64() < 0.3 {
				s.Add(i)
			}
		}
		cl := g.PrefixClosure(s)
		if !g.IsPrefix(cl) {
			return false
		}
		cl2 := g.PrefixClosure(cl)
		if len(cl2) != len(cl) {
			return false
		}
		// Minimality: removing any element not in s breaks closure or is
		// unnecessary — check cl is contained in every prefix ⊇ s by
		// checking cl ⊆ closure, which is trivially true; instead check
		// every member of cl is s or an ancestor of some member of s.
		for k := range cl {
			if s.Has(k) {
				continue
			}
			isAncestor := false
			for m := range s {
				if g.HasPath(k, m) {
					isAncestor = true
					break
				}
			}
			if !isAncestor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
