package graph

import (
	"cmp"
	"fmt"
	"strings"
)

// DotOptions controls DOT rendering of a graph.
type DotOptions[K cmp.Ordered] struct {
	// Name is the digraph name; defaults to "G".
	Name string
	// NodeLabel renders a node's label; defaults to fmt.Sprint of the key.
	NodeLabel func(K) string
	// NodeAttrs returns extra DOT attributes for a node (e.g.
	// "style=filled"), without surrounding brackets. Optional.
	NodeAttrs func(K) string
	// EdgeAttrs returns extra DOT attributes for an edge. Optional.
	EdgeAttrs func(u, v K) string
}

// Dot renders the graph in Graphviz DOT syntax with deterministic node and
// edge order, used by cmd/redograph to regenerate the paper's figures.
func Dot[K cmp.Ordered](g *Graph[K], opts DotOptions[K]) string {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	label := opts.NodeLabel
	if label == nil {
		label = func(k K) string { return fmt.Sprint(k) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", name)
	for _, k := range g.Nodes() {
		attrs := fmt.Sprintf("label=%q", label(k))
		if opts.NodeAttrs != nil {
			if extra := opts.NodeAttrs(k); extra != "" {
				attrs += ", " + extra
			}
		}
		fmt.Fprintf(&b, "  %q [%s];\n", fmt.Sprint(k), attrs)
	}
	for _, u := range g.Nodes() {
		for _, v := range g.Succs(u) {
			if opts.EdgeAttrs != nil {
				if extra := opts.EdgeAttrs(u, v); extra != "" {
					fmt.Fprintf(&b, "  %q -> %q [%s];\n", fmt.Sprint(u), fmt.Sprint(v), extra)
					continue
				}
			}
			fmt.Fprintf(&b, "  %q -> %q;\n", fmt.Sprint(u), fmt.Sprint(v))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
