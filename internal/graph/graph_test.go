package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds 1→2, 1→3, 2→4, 3→4.
func diamond() *Graph[int] {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	return g
}

func TestAddNodeEdgeIdempotent(t *testing.T) {
	g := New[int]()
	g.AddNode(1)
	g.AddNode(1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("nodes=%d edges=%d, want 2,1", g.NumNodes(), g.NumEdges())
	}
}

func TestSelfEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1,1) did not panic")
		}
	}()
	New[int]().AddEdge(1, 1)
}

func TestRemoveEdge(t *testing.T) {
	g := diamond()
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.NumEdges() != 3 {
		t.Error("RemoveEdge failed")
	}
	g.RemoveEdge(1, 2) // no-op
	if g.NumEdges() != 3 {
		t.Error("double RemoveEdge changed edge count")
	}
}

func TestRemoveNode(t *testing.T) {
	g := diamond()
	g.RemoveNode(2)
	if g.HasNode(2) || g.NumNodes() != 3 {
		t.Error("RemoveNode failed")
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (1→3, 3→4)", g.NumEdges())
	}
	if g.HasPath(1, 4) != true {
		t.Error("path 1→3→4 should survive")
	}
}

func TestPredsSuccsSorted(t *testing.T) {
	g := New[int]()
	g.AddEdge(3, 1)
	g.AddEdge(2, 1)
	p := g.Preds(1)
	if len(p) != 2 || p[0] != 2 || p[1] != 3 {
		t.Errorf("Preds = %v", p)
	}
}

func TestHasPath(t *testing.T) {
	g := diamond()
	cases := []struct {
		u, v int
		want bool
	}{
		{1, 4, true}, {1, 2, true}, {2, 3, false}, {4, 1, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.HasPath(c.u, c.v); got != c.want {
			t.Errorf("HasPath(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestAncestorsReachable(t *testing.T) {
	g := diamond()
	anc := g.Ancestors(4)
	if len(anc) != 3 {
		t.Errorf("Ancestors(4) = %v, want {1,2,3}", anc)
	}
	desc := g.Reachable(1)
	if len(desc) != 3 {
		t.Errorf("Reachable(1) = %v, want {2,3,4}", desc)
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddEdge(4, 5)
	if g.HasNode(5) {
		t.Error("Clone is not independent")
	}
	if !c.HasEdge(1, 2) {
		t.Error("Clone lost an edge")
	}
}

func TestIsPrefix(t *testing.T) {
	g := diamond()
	cases := []struct {
		set  Set[int]
		want bool
	}{
		{NewSet[int](), true},
		{NewSet(1), true},
		{NewSet(1, 2), true},
		{NewSet(1, 2, 3), true},
		{NewSet(1, 2, 3, 4), true},
		{NewSet(2), false},       // predecessor 1 missing
		{NewSet(1, 4), false},    // predecessors 2,3 missing
		{NewSet(1, 2, 4), false}, // predecessor 3 missing
	}
	for _, c := range cases {
		if got := g.IsPrefix(c.set); got != c.want {
			t.Errorf("IsPrefix(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestPrefixViolationWitness(t *testing.T) {
	g := diamond()
	e, bad := g.PrefixViolation(NewSet(2))
	if !bad || e != [2]int{1, 2} {
		t.Errorf("violation = %v,%v, want (1,2)", e, bad)
	}
	if _, bad := g.PrefixViolation(NewSet(1, 2)); bad {
		t.Error("prefix {1,2} reported as violation")
	}
	// A member missing from the graph is reported as a self-pair.
	e, bad = g.PrefixViolation(NewSet(99))
	if !bad || e != [2]int{99, 99} {
		t.Errorf("missing-node violation = %v,%v", e, bad)
	}
}

func TestPrefixClosure(t *testing.T) {
	g := diamond()
	cl := g.PrefixClosure(NewSet(4))
	if len(cl) != 4 {
		t.Errorf("closure = %v, want all four nodes", cl)
	}
	if !g.IsPrefix(cl) {
		t.Error("closure is not a prefix")
	}
}

func TestMinimalOutside(t *testing.T) {
	g := diamond()
	if got := g.MinimalOutside(NewSet[int]()); len(got) != 1 || got[0] != 1 {
		t.Errorf("MinimalOutside(∅) = %v, want [1]", got)
	}
	if got := g.MinimalOutside(NewSet(1)); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("MinimalOutside({1}) = %v, want [2 3]", got)
	}
	if got := g.MinimalOutside(NewSet(1, 2, 3, 4)); len(got) != 0 {
		t.Errorf("MinimalOutside(all) = %v, want []", got)
	}
}

func TestMinimalAgreementOnPrefixComplements(t *testing.T) {
	// Property: for random DAGs and random prefixes, MinimalOutside agrees
	// with the reachability-based reference on the complement set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 12, 0.3)
		pre := randomPrefix(rng, g)
		fast := g.MinimalOutside(pre)
		comp := NewSet[int]()
		for _, k := range g.Nodes() {
			if !pre.Has(k) {
				comp.Add(k)
			}
		}
		slow := g.MinimalByReachability(comp)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomDAG builds a DAG on n nodes with edges only from lower to higher
// ids, each present with probability p.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph[int] {
	g := New[int]()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// randomPrefix picks a random prefix by walking a topological order and
// stopping early, then randomly dropping a suffix-closed subset.
func randomPrefix(rng *rand.Rand, g *Graph[int]) Set[int] {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	s := NewSet[int]()
	for _, k := range order {
		ok := true
		for _, p := range g.Preds(k) {
			if !s.Has(p) {
				ok = false
				break
			}
		}
		if ok && rng.Float64() < 0.6 {
			s.Add(k)
		}
	}
	return s
}

func TestTopoOrder(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, k := range order {
		pos[k] = i
	}
	for _, u := range g.Nodes() {
		for _, v := range g.Succs(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violates edge %d→%d", u, v)
			}
		}
	}
	// Deterministic: smallest ready node first → 1,2,3,4 for the diamond.
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if g.IsAcyclic() {
		t.Error("IsAcyclic true on a cycle")
	}
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 20, 0.2)
		order, err := g.TopoOrder()
		if err != nil || len(order) != g.NumNodes() {
			return false
		}
		pos := make(map[int]int)
		for i, k := range order {
			pos[k] = i
		}
		for _, u := range g.Nodes() {
			for _, v := range g.Succs(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDotRendering(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	out := Dot(g, DotOptions[int]{Name: "Fig", NodeLabel: func(k int) string {
		if k == 1 {
			return "O"
		}
		return "P"
	}})
	for _, want := range []string{"digraph Fig", `"1" [label="O"]`, `"1" -> "2"`} {
		if !strings.Contains(out, want) {
			t.Errorf("Dot output missing %q:\n%s", want, out)
		}
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(1, 2)
	if !s.Has(1) || s.Has(3) {
		t.Error("Has wrong")
	}
	c := s.Clone()
	c.Add(3)
	if s.Has(3) {
		t.Error("Clone not independent")
	}
}
