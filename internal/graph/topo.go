package graph

import (
	"cmp"
	"container/heap"
	"fmt"
)

// TopoOrder returns a topological order of the graph's nodes, smallest key
// first among ready nodes, so the order is deterministic: it is the
// canonical linearization used when replaying operations "in conflict
// graph order". It returns an error if the graph has a cycle.
func (g *Graph[K]) TopoOrder() ([]K, error) {
	indeg := make(map[K]int, len(g.nodes))
	ready := &keyHeap[K]{}
	for k := range g.nodes {
		indeg[k] = len(g.preds[k])
		if indeg[k] == 0 {
			ready.ks = append(ready.ks, k)
		}
	}
	heap.Init(ready)
	out := make([]K, 0, len(g.nodes))
	for ready.Len() > 0 {
		n := heap.Pop(ready).(K)
		out = append(out, n)
		for s := range g.succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle among %d nodes", len(g.nodes)-len(out))
	}
	return out, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph[K]) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// keyHeap is a min-heap of node keys.
type keyHeap[K cmp.Ordered] struct{ ks []K }

func (h *keyHeap[K]) Len() int           { return len(h.ks) }
func (h *keyHeap[K]) Less(i, j int) bool { return h.ks[i] < h.ks[j] }
func (h *keyHeap[K]) Swap(i, j int)      { h.ks[i], h.ks[j] = h.ks[j], h.ks[i] }
func (h *keyHeap[K]) Push(x interface{}) { h.ks = append(h.ks, x.(K)) }
func (h *keyHeap[K]) Pop() interface{} {
	old := h.ks
	n := len(old)
	x := old[n-1]
	h.ks = old[:n-1]
	return x
}
