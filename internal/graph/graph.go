// Package graph provides the directed-acyclic-graph machinery shared by
// the conflict graph, installation graph, state graph, and write graph:
// nodes, edges, reachability, prefixes, minimal elements, and topological
// orders.
//
// The paper (Section 2.1) defines the predecessors of a node n as every
// node with a path to n, and a prefix of a graph as a node set closed
// under predecessors. A set is closed under all predecessors iff it is
// closed under direct predecessors, so prefix checks here cost O(edges at
// the frontier) rather than a transitive closure.
package graph

import (
	"cmp"
	"fmt"
	"sort"
)

// Graph is a directed graph over node keys of type K. The key type is
// ordered so every iteration order in the package is deterministic.
// Acyclicity is the caller's invariant; IsAcyclic and TopoOrder verify it.
type Graph[K cmp.Ordered] struct {
	nodes map[K]struct{}
	succs map[K]map[K]struct{}
	preds map[K]map[K]struct{}
	edges int
}

// New returns an empty graph.
func New[K cmp.Ordered]() *Graph[K] {
	return &Graph[K]{
		nodes: make(map[K]struct{}),
		succs: make(map[K]map[K]struct{}),
		preds: make(map[K]map[K]struct{}),
	}
}

// AddNode inserts a node. Adding an existing node is a no-op.
func (g *Graph[K]) AddNode(k K) {
	if _, ok := g.nodes[k]; ok {
		return
	}
	g.nodes[k] = struct{}{}
	g.succs[k] = make(map[K]struct{})
	g.preds[k] = make(map[K]struct{})
}

// HasNode reports whether k is a node of the graph.
func (g *Graph[K]) HasNode(k K) bool {
	_, ok := g.nodes[k]
	return ok
}

// AddEdge inserts the edge u→v, adding missing endpoints. Self-edges are
// rejected: conflict definitions never relate an operation to itself.
// Adding an existing edge is a no-op.
func (g *Graph[K]) AddEdge(u, v K) {
	if u == v {
		panic(fmt.Sprintf("graph: self-edge on %v", u))
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.succs[u][v]; ok {
		return
	}
	g.succs[u][v] = struct{}{}
	g.preds[v][u] = struct{}{}
	g.edges++
}

// RemoveEdge deletes the edge u→v if present.
func (g *Graph[K]) RemoveEdge(u, v K) {
	if _, ok := g.succs[u][v]; !ok {
		return
	}
	delete(g.succs[u], v)
	delete(g.preds[v], u)
	g.edges--
}

// RemoveNode deletes a node and all its incident edges.
func (g *Graph[K]) RemoveNode(k K) {
	if !g.HasNode(k) {
		return
	}
	for v := range g.succs[k] {
		delete(g.preds[v], k)
		g.edges--
	}
	for u := range g.preds[k] {
		delete(g.succs[u], k)
		g.edges--
	}
	delete(g.succs, k)
	delete(g.preds, k)
	delete(g.nodes, k)
}

// HasEdge reports whether the direct edge u→v exists.
func (g *Graph[K]) HasEdge(u, v K) bool {
	_, ok := g.succs[u][v]
	return ok
}

// NumNodes returns the node count.
func (g *Graph[K]) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph[K]) NumEdges() int { return g.edges }

// Nodes returns all nodes in sorted order.
func (g *Graph[K]) Nodes() []K {
	out := make([]K, 0, len(g.nodes))
	for k := range g.nodes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Succs returns the direct successors of k in sorted order.
func (g *Graph[K]) Succs(k K) []K { return sortedKeys(g.succs[k]) }

// Preds returns the direct predecessors of k in sorted order.
func (g *Graph[K]) Preds(k K) []K { return sortedKeys(g.preds[k]) }

// OutDegree returns the number of direct successors of k.
func (g *Graph[K]) OutDegree(k K) int { return len(g.succs[k]) }

// InDegree returns the number of direct predecessors of k.
func (g *Graph[K]) InDegree(k K) int { return len(g.preds[k]) }

func sortedKeys[K cmp.Ordered](m map[K]struct{}) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the graph.
func (g *Graph[K]) Clone() *Graph[K] {
	c := New[K]()
	for k := range g.nodes {
		c.AddNode(k)
	}
	for u, vs := range g.succs {
		for v := range vs {
			c.AddEdge(u, v)
		}
	}
	return c
}

// HasPath reports whether there is a directed path (of one or more edges)
// from u to v.
func (g *Graph[K]) HasPath(u, v K) bool {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false
	}
	seen := map[K]struct{}{u: {}}
	stack := []K{u}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.succs[n] {
			if s == v {
				return true
			}
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Reachable returns every node with a path of one or more edges from u —
// i.e. u's descendants. The paper's "predecessors of n" is Ancestors.
func (g *Graph[K]) Reachable(u K) map[K]struct{} {
	out := make(map[K]struct{})
	stack := []K{u}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.succs[n] {
			if _, ok := out[s]; !ok {
				out[s] = struct{}{}
				stack = append(stack, s)
			}
		}
	}
	return out
}

// Ancestors returns every node with a path of one or more edges to v:
// the paper's predecessor set of v.
func (g *Graph[K]) Ancestors(v K) map[K]struct{} {
	out := make(map[K]struct{})
	stack := []K{v}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.preds[n] {
			if _, ok := out[p]; !ok {
				out[p] = struct{}{}
				stack = append(stack, p)
			}
		}
	}
	return out
}
