package graph

import "sort"

// WeakComponents returns the weakly-connected components of the subgraph
// induced by the given node set: two nodes are in the same component when
// an undirected path of edges between members of the set connects them.
// Edges to or from nodes outside the set are ignored — this is the
// restriction the parallel redo planner needs, where the set is the
// uninstalled suffix of the log and edges through installed operations
// carry no replay constraint.
//
// Nodes within each component are sorted ascending, and components are
// ordered by their smallest node, so the result is deterministic.
func (g *Graph[K]) WeakComponents(within Set[K]) [][]K {
	comp := make(map[K]K, len(within)) // node → component representative (min seen so far during BFS)
	var roots []K
	for n := range within {
		if !g.HasNode(n) {
			comp[n] = n
			roots = append(roots, n)
			continue
		}
		if _, done := comp[n]; done {
			continue
		}
		// BFS over undirected edges restricted to the set.
		comp[n] = n
		roots = append(roots, n)
		queue := []K{n}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.succs[u] {
				if within.Has(v) {
					if _, seen := comp[v]; !seen {
						comp[v] = n
						queue = append(queue, v)
					}
				}
			}
			for v := range g.preds[u] {
				if within.Has(v) {
					if _, seen := comp[v]; !seen {
						comp[v] = n
						queue = append(queue, v)
					}
				}
			}
		}
	}
	byRoot := make(map[K][]K, len(roots))
	for n, r := range comp {
		byRoot[r] = append(byRoot[r], n)
	}
	out := make([][]K, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TopoWithin returns a topological order of the subgraph induced by the
// node set, smallest key first among ready nodes (the same canonical
// tie-break as TopoOrder). Edges with an endpoint outside the set are
// ignored. Nodes in the set that are absent from the graph participate
// with no edges.
func (g *Graph[K]) TopoWithin(within Set[K]) ([]K, error) {
	restricted := New[K]()
	for n := range within {
		restricted.AddNode(n)
		if !g.HasNode(n) {
			continue
		}
		for v := range g.succs[n] {
			if within.Has(v) {
				restricted.AddEdge(n, v)
			}
		}
	}
	return restricted.TopoOrder()
}
