package graph

import (
	"reflect"
	"testing"
)

// diamond builds 1→2, 1→3, 2→4, 3→4 plus the isolated node 5.
func diamondGraph() *Graph[int] {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	g.AddNode(5)
	return g
}

func TestWeakComponentsWholeGraph(t *testing.T) {
	g := diamondGraph()
	got := g.WeakComponents(NewSet(1, 2, 3, 4, 5))
	want := [][]int{{1, 2, 3, 4}, {5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WeakComponents = %v, want %v", got, want)
	}
}

func TestWeakComponentsRestriction(t *testing.T) {
	g := diamondGraph()
	// Removing 1 and 4 from the set cuts the diamond in half: 2 and 3
	// are only connected through excluded nodes.
	got := g.WeakComponents(NewSet(2, 3))
	want := [][]int{{2}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WeakComponents({2,3}) = %v, want %v", got, want)
	}
	// Keeping one hub reconnects them.
	got = g.WeakComponents(NewSet(2, 3, 4))
	want = [][]int{{2, 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WeakComponents({2,3,4}) = %v, want %v", got, want)
	}
}

func TestWeakComponentsNodesAbsentFromGraph(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	// 9 is not a node of the graph: it forms its own singleton component.
	got := g.WeakComponents(NewSet(1, 2, 9))
	want := [][]int{{1, 2}, {9}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WeakComponents = %v, want %v", got, want)
	}
}

func TestWeakComponentsEmptySet(t *testing.T) {
	if got := diamondGraph().WeakComponents(NewSet[int]()); len(got) != 0 {
		t.Errorf("WeakComponents(∅) = %v, want empty", got)
	}
}

func TestTopoWithinRespectsInducedEdges(t *testing.T) {
	g := diamondGraph()
	order, err := g.TopoWithin(NewSet(1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 3 {
		t.Fatalf("TopoWithin order = %v", order)
	}
	if !(pos[1] < pos[2] && pos[2] < pos[4]) {
		t.Errorf("TopoWithin order %v violates 1→2→4", order)
	}
}

func TestTopoWithinIgnoresOutsideEdges(t *testing.T) {
	g := New[int]()
	g.AddEdge(2, 1) // 2→1, but 2 is excluded below
	order, err := g.TopoWithin(NewSet(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3} // no induced edges: canonical smallest-first order
	if !reflect.DeepEqual(order, want) {
		t.Errorf("TopoWithin = %v, want %v", order, want)
	}
}

func TestTopoWithinAbsentNode(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	order, err := g.TopoWithin(NewSet(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{2, 7}) {
		t.Errorf("TopoWithin = %v, want [2 7]", order)
	}
}
