package model

import "fmt"

// Project returns a shard-local projection of op: an operation that
// reads only localReads, writes only localWrites, and computes those
// writes by running op's own function over the full read set — live
// local values merged with the baked remote values captured when the
// cross-shard transaction executed.
//
// Only remote reads are baked. Local reads stay live so replaying the
// projection remains sensitive to the local log order, exactly like any
// other operation: replay against wrong local values produces visibly
// wrong writes. Baking the remote values is sound because replay under
// the recovery invariant reconstructs each operation's execution values
// (the paper's Theorem 3) — the remote shard's replay of its own
// prefix rebuilds the very values captured here.
//
// The projection is deterministic iff op is, and it renders as
// "name~t<op-id>#<id>" so the originating transaction stays visible in
// logs and event streams. Project panics on a malformed projection
// (reads/writes not subsets of op's, empty local write set, or a remote
// read without a baked value): projections are built by the sharding
// coordinator, so any of these is a coordinator bug.
func Project(id OpID, op *Op, localReads, localWrites []Var, remote ReadSet) *Op {
	lr := normVars(localReads)
	lw := normVars(localWrites)
	if len(lw) == 0 {
		panic(fmt.Sprintf("model: projection of %s has an empty local write set; read-only participants are not logged", op))
	}
	for _, v := range lr {
		if !op.ReadsVar(v) {
			panic(fmt.Sprintf("model: projection of %s keeps %q, which %s does not read", op, v, op))
		}
	}
	for _, v := range lw {
		if !op.WritesVar(v) {
			panic(fmt.Sprintf("model: projection of %s keeps %q, which %s does not write", op, v, op))
		}
	}
	baked := make(ReadSet, len(op.reads)-len(lr))
	for _, v := range op.reads {
		if containsVar(lr, v) {
			continue
		}
		val, ok := remote[v]
		if !ok {
			panic(fmt.Sprintf("model: projection of %s lacks a baked value for remote read %q", op, v))
		}
		baked[v] = val
	}
	name := fmt.Sprintf("%s~t%d", op.name, op.id)
	return NewOp(id, name, lr, lw, func(r ReadSet) WriteSet {
		full := make(ReadSet, len(op.reads))
		for _, v := range op.reads {
			if containsVar(lr, v) {
				full[v] = r[v]
			} else {
				full[v] = baked[v]
			}
		}
		out := op.apply(full)
		proj := make(WriteSet, len(lw))
		for _, v := range lw {
			if val, ok := out[v]; ok {
				proj[v] = val
			}
		}
		return proj
	})
}
