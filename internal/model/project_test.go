package model

import (
	"strings"
	"testing"
)

func TestProjectSplitsWritesByShard(t *testing.T) {
	// A two-"shard" transfer: reads a and b, writes both. Shard A owns
	// a, shard B owns b.
	op := NewOp(7, "xfer", []Var{"a", "b"}, []Var{"a", "b"}, func(r ReadSet) WriteSet {
		return WriteSet{
			"a": IntVal(AsInt(r["a"]) - 5),
			"b": IntVal(AsInt(r["b"]) + 5),
		}
	})
	// Exec-time values: a=100 (local to A), b=40 (remote to A).
	projA := Project(101, op, []Var{"a"}, []Var{"a"}, ReadSet{"b": IntVal(40)})
	projB := Project(102, op, []Var{"b"}, []Var{"b"}, ReadSet{"a": IntVal(100)})

	sA := StateOf(map[Var]Value{"a": IntVal(100)})
	if _, err := sA.Apply(projA); err != nil {
		t.Fatal(err)
	}
	if got := sA.GetInt("a"); got != 95 {
		t.Errorf("shard A: a = %d, want 95", got)
	}
	sB := StateOf(map[Var]Value{"b": IntVal(40)})
	if _, err := sB.Apply(projB); err != nil {
		t.Fatal(err)
	}
	if got := sB.GetInt("b"); got != 45 {
		t.Errorf("shard B: b = %d, want 45", got)
	}
	if projA.ID() != 101 || projB.ID() != 102 {
		t.Error("projection ids not taken from the coordinator")
	}
	if !strings.Contains(projA.String(), "t7") {
		t.Errorf("projection label %q does not carry the transaction id", projA)
	}
}

func TestProjectLocalReadsStayLive(t *testing.T) {
	// Replaying the projection against a different local value must
	// produce a different write — local reads are not baked.
	op := NewOp(3, "sum", []Var{"a", "b"}, []Var{"a"}, func(r ReadSet) WriteSet {
		return WriteSet{"a": IntVal(AsInt(r["a"]) + AsInt(r["b"]))}
	})
	proj := Project(31, op, []Var{"a"}, []Var{"a"}, ReadSet{"b": IntVal(10)})
	out1, err := proj.Compute(ReadSet{"a": IntVal(1)})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := proj.Compute(ReadSet{"a": IntVal(2)})
	if err != nil {
		t.Fatal(err)
	}
	if AsInt(out1["a"]) != 11 || AsInt(out2["a"]) != 12 {
		t.Errorf("projection not live on local reads: %v then %v", out1, out2)
	}
}

func TestProjectPanicsOnMalformedProjection(t *testing.T) {
	op := NewOp(1, "w", []Var{"a"}, []Var{"a", "b"}, func(r ReadSet) WriteSet {
		return WriteSet{"a": r["a"], "b": r["a"]}
	})
	cases := []struct {
		name string
		call func()
	}{
		{"empty local writes", func() { Project(2, op, nil, nil, nil) }},
		{"write not in op", func() { Project(2, op, nil, []Var{"c"}, ReadSet{"a": ""}) }},
		{"read not in op", func() { Project(2, op, []Var{"z"}, []Var{"a"}, ReadSet{"a": ""}) }},
		{"missing baked value", func() { Project(2, op, nil, []Var{"b"}, nil) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
