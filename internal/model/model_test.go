package model

import (
	"testing"
	"testing/quick"
)

func TestIntValRoundTrip(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 42, -9999999, 1 << 40} {
		if got := AsInt(IntVal(i)); got != i {
			t.Errorf("AsInt(IntVal(%d)) = %d", i, got)
		}
	}
}

func TestAsIntZeroValue(t *testing.T) {
	if got := AsInt(""); got != 0 {
		t.Errorf("AsInt(zero) = %d, want 0", got)
	}
}

func TestAsIntPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsInt did not panic on non-integer value")
		}
	}()
	AsInt("not a number")
}

func TestNewOpNormalizesSets(t *testing.T) {
	o := NewOp(1, "op", []Var{"z", "a", "z"}, []Var{"b", "b", "a"},
		func(ReadSet) WriteSet { return WriteSet{"a": "1", "b": "2"} })
	if got := o.Reads(); len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Errorf("Reads() = %v, want [a z]", got)
	}
	if got := o.Writes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Writes() = %v, want [a b]", got)
	}
}

func TestNewOpRejectsEmptyWriteSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOp did not panic on empty write set")
		}
	}()
	NewOp(1, "bad", []Var{"x"}, nil, func(ReadSet) WriteSet { return nil })
}

func TestOpPredicates(t *testing.T) {
	o := NewOp(7, "o", []Var{"x"}, []Var{"x", "y"},
		func(r ReadSet) WriteSet { return WriteSet{"x": r["x"], "y": "1"} })
	if !o.ReadsVar("x") || o.ReadsVar("y") {
		t.Error("ReadsVar wrong")
	}
	if !o.WritesVar("x") || !o.WritesVar("y") || o.WritesVar("z") {
		t.Error("WritesVar wrong")
	}
	if !o.Accesses("x") || !o.Accesses("y") || o.Accesses("z") {
		t.Error("Accesses wrong")
	}
	if o.BlindlyWrites("x") {
		t.Error("x is read, so not blindly written")
	}
	if !o.BlindlyWrites("y") {
		t.Error("y is written without being read")
	}
}

func TestComputeValidatesWriteSet(t *testing.T) {
	tooFew := NewOp(1, "few", nil, []Var{"x", "y"},
		func(ReadSet) WriteSet { return WriteSet{"x": "1"} })
	if _, err := tooFew.Compute(nil); err == nil {
		t.Error("Compute accepted a write set that is too small")
	}
	wrongVar := NewOp(2, "wrong", nil, []Var{"x"},
		func(ReadSet) WriteSet { return WriteSet{"z": "1"} })
	if _, err := wrongVar.Compute(nil); err == nil {
		t.Error("Compute accepted a write to a variable outside the write set")
	}
}

func TestStateSetGetClone(t *testing.T) {
	s := NewState()
	s.SetInt("x", 3)
	if s.GetInt("x") != 3 {
		t.Fatalf("GetInt = %d", s.GetInt("x"))
	}
	c := s.Clone()
	c.SetInt("x", 9)
	if s.GetInt("x") != 3 {
		t.Error("Clone is not independent")
	}
}

func TestStateZeroValueErasure(t *testing.T) {
	s := NewState()
	s.Set("x", "7")
	s.Set("x", "")
	t2 := NewState()
	if !s.Equal(t2) {
		t.Error("setting the zero value should make the state equal to empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestStateEqualAndDiff(t *testing.T) {
	a := StateOf(map[Var]Value{"x": "1", "y": "2"})
	b := StateOf(map[Var]Value{"x": "1", "y": "3", "z": "4"})
	if a.Equal(b) {
		t.Error("Equal on differing states")
	}
	d := a.Diff(b)
	if len(d) != 2 || d[0] != "y" || d[1] != "z" {
		t.Errorf("Diff = %v, want [y z]", d)
	}
	if !a.EqualOn(b, []Var{"x"}) {
		t.Error("EqualOn x should hold")
	}
	if a.EqualOn(b, []Var{"x", "y"}) {
		t.Error("EqualOn x,y should fail")
	}
}

func TestStateApply(t *testing.T) {
	s := NewState()
	s.SetInt("y", 2)
	a := CopyPlus(1, "x", "y", 1)
	ws, err := s.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if AsInt(ws["x"]) != 3 || s.GetInt("x") != 3 {
		t.Errorf("x = %d, want 3", s.GetInt("x"))
	}
}

func TestSequencePaperScenario1(t *testing.T) {
	// A: x<-y+1 then B: y<-2, from x=y=0 (Figure 1).
	a := CopyPlus(1, "x", "y", 1)
	b := AssignConst(2, "y", IntVal(2))
	seq := SequenceOf(a, b)
	states, err := seq.StateSequence(NewState())
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("state sequence length %d, want 3", len(states))
	}
	if states[1].GetInt("x") != 1 || states[1].GetInt("y") != 0 {
		t.Errorf("S1 = %v, want x=1 y=0", states[1])
	}
	if states[2].GetInt("x") != 1 || states[2].GetInt("y") != 2 {
		t.Errorf("S2 = %v, want x=1 y=2", states[2])
	}
	final, err := seq.FinalState(NewState())
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(states[2]) {
		t.Error("FinalState disagrees with last state of StateSequence")
	}
}

func TestSequenceDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append did not panic on duplicate id")
		}
	}()
	SequenceOf(Incr(1, "x", 1), Incr(1, "x", 1))
}

func TestSequenceLookup(t *testing.T) {
	a := Incr(10, "x", 1)
	b := Incr(20, "y", 1)
	seq := SequenceOf(a, b)
	if seq.Index(20) != 1 || seq.Index(99) != -1 {
		t.Error("Index wrong")
	}
	if seq.Lookup(10) != a || seq.Lookup(99) != nil {
		t.Error("Lookup wrong")
	}
}

func TestReadWriteDeterminism(t *testing.T) {
	o := ReadWrite(5, "rw", []Var{"a", "b"}, []Var{"c", "d"})
	r := ReadSet{"a": "1", "b": "2"}
	w1, err := o.Compute(r)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := o.Compute(r)
	if w1["c"] != w2["c"] || w1["d"] != w2["d"] {
		t.Error("ReadWrite is not deterministic")
	}
	if w1["c"] == w1["d"] {
		t.Error("distinct target variables should get distinct digests")
	}
	// Changing any read value must change every written value.
	w3, _ := o.Compute(ReadSet{"a": "1", "b": "3"})
	if w3["c"] == w1["c"] || w3["d"] == w1["d"] {
		t.Error("digest is insensitive to a read-set value")
	}
}

func TestReadWriteSensitivityProperty(t *testing.T) {
	o := ReadWrite(9, "rw", []Var{"a"}, []Var{"z"})
	f := func(x, y int64) bool {
		if x == y {
			return true
		}
		w1, _ := o.Compute(ReadSet{"a": IntVal(x)})
		w2, _ := o.Compute(ReadSet{"a": IntVal(y)})
		return w1["z"] != w2["z"]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncrBothAtomicUpdate(t *testing.T) {
	s := NewState()
	s.SetInt("x", 1)
	s.SetInt("y", 10)
	c := IncrBoth(1, "x", 2, "y", -3)
	s.MustApply(c)
	if s.GetInt("x") != 3 || s.GetInt("y") != 7 {
		t.Errorf("state = %v, want x=3 y=7", s)
	}
}

func TestStateString(t *testing.T) {
	s := StateOf(map[Var]Value{"y": "2", "x": "1"})
	if got := s.String(); got != "{x=1 y=2}" {
		t.Errorf("String = %q", got)
	}
}
