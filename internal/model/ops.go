package model

import "fmt"

// This file provides constructors for the operation shapes used throughout
// the paper's examples and by the workload generators: blind constant
// assignments (B: y←2), copies with offsets (A: x←y+1), increments
// (G: x←x+1), and multi-variable updates (C: ⟨x←x+1; y←y+1⟩).

// AssignConst returns the blind write x ← c, as in the paper's operation
// B: y←2. Its read set is empty, which is what makes x unexposed when the
// assignment is the minimal uninstalled access (Section 2.3).
func AssignConst(id OpID, x Var, c Value) *Op {
	return NewOp(id, fmt.Sprintf("%s<-%s", x, c), nil, []Var{x},
		func(ReadSet) WriteSet { return WriteSet{x: c} })
}

// CopyPlus returns x ← y + delta, as in the paper's operation A: x←y+1.
func CopyPlus(id OpID, x, y Var, delta int64) *Op {
	return NewOp(id, fmt.Sprintf("%s<-%s+%d", x, y, delta), []Var{y}, []Var{x},
		func(r ReadSet) WriteSet { return WriteSet{x: IntVal(AsInt(r[y]) + delta)} })
}

// Incr returns x ← x + delta, as in the paper's operation G: x←x+1.
func Incr(id OpID, x Var, delta int64) *Op {
	return NewOp(id, fmt.Sprintf("%s<-%s+%d", x, x, delta), []Var{x}, []Var{x},
		func(r ReadSet) WriteSet { return WriteSet{x: IntVal(AsInt(r[x]) + delta)} })
}

// IncrBoth returns ⟨x←x+dx; y←y+dy⟩, the two-variable atomic update of the
// paper's operation C and H.
func IncrBoth(id OpID, x Var, dx int64, y Var, dy int64) *Op {
	return NewOp(id, fmt.Sprintf("<%s+=%d;%s+=%d>", x, dx, y, dy), []Var{x, y}, []Var{x, y},
		func(r ReadSet) WriteSet {
			return WriteSet{
				x: IntVal(AsInt(r[x]) + dx),
				y: IntVal(AsInt(r[y]) + dy),
			}
		})
}

// ReadWrite returns an operation with arbitrary read and write sets whose
// every written variable receives a deterministic digest of the values
// read, salted with the operation id and the variable name. Workload
// generators use it to make histories whose replay correctness is
// sensitive to every read: any wrong read-set value during recovery
// produces a visibly wrong write.
func ReadWrite(id OpID, name string, reads, writes []Var) *Op {
	return NewOp(id, name, reads, writes, func(r ReadSet) WriteSet {
		ws := make(WriteSet, len(writes))
		for _, w := range writes {
			ws[w] = digest(id, w, reads, r)
		}
		return ws
	})
}

// digest deterministically folds the read-set values, the op id, and the
// target variable into a value. FNV-style fold over the canonical (sorted)
// read order; reads is already sorted because Op normalizes it.
func digest(id OpID, target Var, order []Var, r ReadSet) Value {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	mix(fmt.Sprintf("op:%d", id))
	mix("var:" + string(target))
	for _, v := range order {
		mix(string(v) + "=" + string(r[v]))
	}
	return IntVal(int64(h % (1 << 62)))
}
