// Package model implements the system model of Section 2.1 of Lomet &
// Tuttle, "A Theory of Redo Recovery" (SIGMOD 2003): variables, values,
// states, and logged operations.
//
// A recoverable system has a set of variables and a set of values they can
// assume. A state maps each variable to a value. An operation is a
// deterministic function with a fixed read set and a fixed write set: it
// atomically reads the values of the variables in its read set and then
// writes values to the variables in its write set. Determinism is what
// makes redo recovery possible at all — an operation replayed against the
// same read-set values writes the same values (Section 3.3 of the paper).
//
// Values are immutable byte strings. This keeps states cheap to copy and
// compare while being rich enough to encode integers, tuples, and whole
// database pages (see internal/btree for page encoding).
package model

import (
	"fmt"
	"sort"
	"strconv"
)

// Var names a variable of the recoverable system. In a page-oriented
// database a Var is a page identifier; in the paper's small examples it is
// a name like "x" or "y".
type Var string

// Value is the immutable value of a variable. The zero Value is the value
// of every variable in the empty initial state; AsInt decodes it as 0.
type Value string

// IntVal encodes an integer as a Value.
func IntVal(i int64) Value { return Value(strconv.FormatInt(i, 10)) }

// AsInt decodes a Value written by IntVal. The zero Value decodes as 0.
// It panics on any other non-integer Value, which always indicates a
// workload bug (an integer operation applied to a non-integer variable).
func AsInt(v Value) int64 {
	if v == "" {
		return 0
	}
	i, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		panic(fmt.Sprintf("model: value %q is not an integer", v))
	}
	return i
}

// OpID uniquely identifies a logged operation. The conflict and
// installation graphs refer to nodes by the OpID of the operation
// labelling them, following the paper's convention that operations
// labelling a graph are distinct.
type OpID uint64

// ReadSet carries the values an operation observes, keyed by variable.
// Every variable in the operation's read set is present; a variable the
// state has never assigned appears with the zero Value.
type ReadSet map[Var]Value

// WriteSet carries the values an operation produces, keyed by variable.
type WriteSet map[Var]Value

// ApplyFunc computes an operation's writes from its reads. It must be
// deterministic and must populate exactly the operation's write set.
type ApplyFunc func(ReadSet) WriteSet

// Op is a logged operation: a deterministic function with a fixed read set
// and a fixed write set (Section 2.1).
type Op struct {
	id     OpID
	name   string
	str    string // rendered label, precomputed: ops are immutable and the event stream renders every admitted record
	reads  []Var  // sorted, deduplicated
	writes []Var  // sorted, deduplicated
	apply  ApplyFunc
}

// NewOp constructs an operation. The read and write sets are copied,
// deduplicated and sorted. fn must deterministically produce a value for
// exactly the variables in writes.
func NewOp(id OpID, name string, reads, writes []Var, fn ApplyFunc) *Op {
	if len(writes) == 0 {
		panic(fmt.Sprintf("model: operation %s (%d) has an empty write set; only state-changing operations are logged", name, id))
	}
	if fn == nil {
		panic(fmt.Sprintf("model: operation %s (%d) has a nil apply function", name, id))
	}
	return &Op{
		id:     id,
		name:   name,
		str:    fmt.Sprintf("%s#%d", name, id),
		reads:  normVars(reads),
		writes: normVars(writes),
		apply:  fn,
	}
}

func normVars(vs []Var) []Var {
	seen := make(map[Var]struct{}, len(vs))
	out := make([]Var, 0, len(vs))
	for _, v := range vs {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ID returns the operation's unique identifier.
func (o *Op) ID() OpID { return o.id }

// Name returns the operation's human-readable name.
func (o *Op) Name() string { return o.name }

// Reads returns the operation's read set in sorted order. The slice is
// shared; callers must not modify it.
func (o *Op) Reads() []Var { return o.reads }

// Writes returns the operation's write set in sorted order. The slice is
// shared; callers must not modify it.
func (o *Op) Writes() []Var { return o.writes }

// ReadsVar reports whether x is in the operation's read set.
func (o *Op) ReadsVar(x Var) bool { return containsVar(o.reads, x) }

// WritesVar reports whether x is in the operation's write set.
func (o *Op) WritesVar(x Var) bool { return containsVar(o.writes, x) }

// Accesses reports whether the operation reads or writes x.
func (o *Op) Accesses(x Var) bool { return o.ReadsVar(x) || o.WritesVar(x) }

// BlindlyWrites reports whether the operation writes x without reading it.
// Blind writes are what make a variable unexposed (Section 2.3).
func (o *Op) BlindlyWrites(x Var) bool { return o.WritesVar(x) && !o.ReadsVar(x) }

func containsVar(vs []Var, x Var) bool {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= x })
	return i < len(vs) && vs[i] == x
}

// Compute runs the operation's function against the given read-set values
// and validates that it wrote exactly the write set. It does not touch any
// state; use State.Apply to both compute and install the writes.
func (o *Op) Compute(reads ReadSet) (WriteSet, error) {
	in := make(ReadSet, len(o.reads))
	for _, v := range o.reads {
		in[v] = reads[v]
	}
	return o.ComputeFrom(in)
}

// ComputeFrom is Compute for hot replay paths: it runs the operation's
// function directly on the caller-assembled map instead of copying it
// into a fresh one. The caller must populate reads with exactly the
// operation's read set (the dense replay engines rebuild a pooled map
// per record), and the apply function must not retain or mutate the
// map beyond the call. Output validation is identical to Compute.
func (o *Op) ComputeFrom(reads ReadSet) (WriteSet, error) {
	out := o.apply(reads)
	if len(out) != len(o.writes) {
		return nil, fmt.Errorf("model: operation %s wrote %d variables, want write set of %d", o, len(out), len(o.writes))
	}
	for _, v := range o.writes {
		if _, ok := out[v]; !ok {
			return nil, fmt.Errorf("model: operation %s did not write %q, which is in its write set", o, v)
		}
	}
	return out, nil
}

// String formats the operation as "name#id".
func (o *Op) String() string { return o.str }
