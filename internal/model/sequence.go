package model

import "fmt"

// Sequence is an operation sequence O_1 O_2 … O_k (Section 2.1). Together
// with an initial state it generates a state sequence S_0 S_1 … S_k where
// each S_i is the result of applying O_i to S_{i-1}.
type Sequence struct {
	ops []*Op
	ids map[OpID]int // OpID -> position, for uniqueness and lookup
}

// NewSequence returns an empty operation sequence.
func NewSequence() *Sequence {
	return &Sequence{ids: make(map[OpID]int)}
}

// SequenceOf builds a sequence from operations in invocation order.
func SequenceOf(ops ...*Op) *Sequence {
	s := NewSequence()
	for _, o := range ops {
		s.Append(o)
	}
	return s
}

// Append adds an operation to the end of the sequence. Operation IDs must
// be unique within a sequence, mirroring the paper's assumption that the
// operations labelling a graph are distinct.
func (s *Sequence) Append(o *Op) {
	if _, dup := s.ids[o.ID()]; dup {
		panic(fmt.Sprintf("model: duplicate operation id %d in sequence", o.ID()))
	}
	s.ids[o.ID()] = len(s.ops)
	s.ops = append(s.ops, o)
}

// Len returns the number of operations in the sequence.
func (s *Sequence) Len() int { return len(s.ops) }

// Op returns the i-th operation (0-based).
func (s *Sequence) Op(i int) *Op { return s.ops[i] }

// Ops returns the operations in invocation order. The slice is shared;
// callers must not modify it.
func (s *Sequence) Ops() []*Op { return s.ops }

// Index returns the position of the operation with the given id, or -1.
func (s *Sequence) Index(id OpID) int {
	if i, ok := s.ids[id]; ok {
		return i
	}
	return -1
}

// Lookup returns the operation with the given id, or nil.
func (s *Sequence) Lookup(id OpID) *Op {
	if i, ok := s.ids[id]; ok {
		return s.ops[i]
	}
	return nil
}

// StateSequence generates the state sequence S_0 S_1 … S_k from the
// initial state. S_0 is a clone of initial; each subsequent state is an
// independent snapshot.
func (s *Sequence) StateSequence(initial *State) ([]*State, error) {
	out := make([]*State, 0, len(s.ops)+1)
	cur := initial.Clone()
	out = append(out, cur.Clone())
	for _, o := range s.ops {
		if _, err := cur.Apply(o); err != nil {
			return nil, fmt.Errorf("model: applying %s: %w", o, err)
		}
		out = append(out, cur.Clone())
	}
	return out, nil
}

// FinalState applies the whole sequence to a clone of the initial state
// and returns the result: the paper's "final state" determined by the
// conflict graph (Section 2.4), which redo recovery must reconstruct.
func (s *Sequence) FinalState(initial *State) (*State, error) {
	cur := initial.Clone()
	for _, o := range s.ops {
		if _, err := cur.Apply(o); err != nil {
			return nil, fmt.Errorf("model: applying %s: %w", o, err)
		}
	}
	return cur, nil
}
