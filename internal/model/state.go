package model

import (
	"fmt"
	"sort"
	"strings"
)

// State maps each variable to a value (Section 2.1). A State is a total
// function: variables that were never assigned have the zero Value. States
// are mutable; use Clone to snapshot.
type State struct {
	m map[Var]Value
}

// NewState returns the empty state, in which every variable has the zero
// Value.
func NewState() *State { return &State{m: make(map[Var]Value)} }

// StateOf builds a state from an assignment map. The map is copied.
func StateOf(assign map[Var]Value) *State {
	s := NewState()
	for v, val := range assign {
		s.Set(v, val)
	}
	return s
}

// Get returns the value of x. Unassigned variables have the zero Value.
func (s *State) Get(x Var) Value { return s.m[x] }

// GetInt returns the value of x decoded as an integer.
func (s *State) GetInt(x Var) int64 { return AsInt(s.m[x]) }

// Set assigns v to x. Assigning the zero Value erases the entry, so states
// that agree on all variables compare Equal regardless of assignment
// history.
func (s *State) Set(x Var, v Value) {
	if v == "" {
		delete(s.m, x)
		return
	}
	s.m[x] = v
}

// SetInt assigns the integer i to x.
func (s *State) SetInt(x Var, i int64) { s.Set(x, IntVal(i)) }

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{m: make(map[Var]Value, len(s.m))}
	for v, val := range s.m {
		c.m[v] = val
	}
	return c
}

// Equal reports whether the two states assign the same value to every
// variable.
func (s *State) Equal(t *State) bool {
	if len(s.m) != len(t.m) {
		return false
	}
	for v, val := range s.m {
		if t.m[v] != val {
			return false
		}
	}
	return true
}

// EqualOn reports whether the two states agree on every variable in vars.
func (s *State) EqualOn(t *State, vars []Var) bool {
	for _, v := range vars {
		if s.m[v] != t.m[v] {
			return false
		}
	}
	return true
}

// Diff returns the variables on which s and t disagree, in sorted order.
func (s *State) Diff(t *State) []Var {
	seen := make(map[Var]struct{})
	var out []Var
	for v := range s.m {
		if s.m[v] != t.m[v] {
			out = append(out, v)
			seen[v] = struct{}{}
		}
	}
	for v := range t.m {
		if _, ok := seen[v]; ok {
			continue
		}
		if s.m[v] != t.m[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Vars returns the variables with non-zero values, in sorted order.
func (s *State) Vars() []Var {
	out := make([]Var, 0, len(s.m))
	for v := range s.m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of variables with non-zero values.
func (s *State) Len() int { return len(s.m) }

// ReadSetFor gathers the values the operation would observe in this state.
func (s *State) ReadSetFor(o *Op) ReadSet {
	rs := make(ReadSet, len(o.Reads()))
	for _, v := range o.Reads() {
		rs[v] = s.m[v]
	}
	return rs
}

// Apply runs the operation against the state and installs its writes,
// mutating the state in place. It returns the write set the operation
// produced.
func (s *State) Apply(o *Op) (WriteSet, error) {
	ws, err := o.Compute(s.ReadSetFor(o))
	if err != nil {
		return nil, err
	}
	for v, val := range ws {
		s.Set(v, val)
	}
	return ws, nil
}

// MustApply is Apply for workloads whose operations are known well-formed;
// it panics on error.
func (s *State) MustApply(o *Op) WriteSet {
	ws, err := s.Apply(o)
	if err != nil {
		panic(err)
	}
	return ws
}

// String renders the state as "{x=1 y=2}" with variables in sorted order.
func (s *State) String() string {
	vars := s.Vars()
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("%s=%s", v, s.m[v])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
