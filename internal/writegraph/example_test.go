package writegraph_test

import (
	"fmt"

	"redotheory/internal/conflict"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
	"redotheory/internal/writegraph"
)

// ExampleGraph_Collapse reproduces Figure 7: collapsing the x-writers O
// and Q leaves a two-node write graph whose edge forces the cache
// manager to install P's page (y) before the collapsed node's page (x).
func ExampleGraph_Collapse() {
	s0 := model.NewState()
	s0.SetInt("x", 1)
	o := model.Incr(1, "x", 1)
	p := model.CopyPlus(2, "y", "x", 1)
	q := model.Incr(3, "x", 1)
	cg := conflict.FromOps(o, p, q)
	sg, err := stategraph.FromConflict(cg, s0)
	if err != nil {
		panic(err)
	}
	g := writegraph.FromInstallation(install.FromConflict(cg), sg)

	oq, err := g.Collapse(g.NodeOf(o.ID()), g.NodeOf(q.ID()))
	if err != nil {
		panic(err)
	}
	fmt.Println("install {O,Q} first:", g.Install(oq) != nil, "(rejected)")
	if err := g.Install(g.NodeOf(p.ID())); err != nil {
		panic(err)
	}
	fmt.Println("after installing P:", g.DeterminedState())
	if err := g.Install(oq); err != nil {
		panic(err)
	}
	fmt.Println("after installing {O,Q}:", g.DeterminedState())
	fmt.Println("explainable throughout:", g.CheckExplainable() == nil)
	// Output:
	// install {O,Q} first: true (rejected)
	// after installing P: {x=1 y=3}
	// after installing {O,Q}: {x=3 y=3}
	// explainable throughout: true
}

// ExampleGraph_RemoveWrite shows the Section 5 H,J example: J's blind
// write leaves y unexposed, so H installs by writing x alone.
func ExampleGraph_RemoveWrite() {
	h := model.IncrBoth(1, "x", 1, "y", 1)
	j := model.AssignConst(2, "y", model.IntVal(0))
	cg := conflict.FromOps(h, j)
	sg, err := stategraph.FromConflict(cg, model.NewState())
	if err != nil {
		panic(err)
	}
	g := writegraph.FromInstallation(install.FromConflict(cg), sg)
	if err := g.RemoveWrite(g.NodeOf(h.ID()), "y"); err != nil {
		panic(err)
	}
	if err := g.Install(g.NodeOf(h.ID())); err != nil {
		panic(err)
	}
	fmt.Println("state after installing H without y:", g.DeterminedState())
	fmt.Println("explainable:", g.CheckExplainable() == nil)
	// Output:
	// state after installing H without y: {x=1}
	// explainable: true
}
