// Package writegraph implements the write graph of Section 5 of the
// paper: a state graph whose nodes carry an installed flag (installed
// nodes always form a prefix) and that supports the four operations the
// paper defines — install a node, add an edge, collapse nodes, and remove
// a write — each with its stated precondition enforced, never assumed.
//
// The write graph is how a cache manager reasons about flushing: a node is
// the set of variable values that must reach the stable state atomically,
// edges are required write orderings, collapsing models a single cache
// copy per page accumulating several operations' updates, and removing a
// write exploits unexposed variables to avoid writing at all. Corollary 5
// — the state determined by a prefix of a write graph is potentially
// recoverable — is what makes all of this safe, and the package's
// CheckExplainable verifies it directly.
package writegraph

import (
	"sort"

	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

// NodeID identifies a write graph node. Nodes created by collapses get
// fresh ids.
type NodeID uint64

// Node is a write graph node.
type Node struct {
	id        NodeID
	ops       graph.Set[model.OpID]
	writes    map[model.Var]model.Value
	installed bool
}

// ID returns the node id.
func (n *Node) ID() NodeID { return n.id }

// Installed reports the node's installed flag.
func (n *Node) Installed() bool { return n.installed }

// Ops returns the operations labelling the node. Shared; do not modify.
func (n *Node) Ops() graph.Set[model.OpID] { return n.ops }

// Writes returns the node's variable-value pairs: the atomic update that
// installs the node. Shared; do not modify.
func (n *Node) Writes() map[model.Var]model.Value { return n.writes }

// Vars returns the written variables in sorted order.
func (n *Node) Vars() []model.Var {
	out := make([]model.Var, 0, len(n.writes))
	for x := range n.writes {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Graph is a write graph. All mutations validate their preconditions and
// return an error without changing the graph when one fails.
type Graph struct {
	ig          *install.Graph
	sg          *stategraph.Graph
	dag         *graph.Graph[NodeID]
	nodes       map[NodeID]*Node
	opNode      map[model.OpID]NodeID
	writerOrder map[model.Var][]NodeID
	initial     *model.State
	initialNode NodeID // 0 when absent
	nextID      NodeID
}

// FromInstallation derives the simplest write graph from an installation
// graph and its conflict state graph: one uninstalled node per operation,
// labelled with the operation's writes, connected by the installation
// edges (Section 5.1: "The simplest write graph is the installation state
// graph").
func FromInstallation(ig *install.Graph, sg *stategraph.Graph) *Graph {
	g := &Graph{
		ig:          ig,
		sg:          sg,
		dag:         graph.New[NodeID](),
		nodes:       make(map[NodeID]*Node),
		opNode:      make(map[model.OpID]NodeID),
		writerOrder: make(map[model.Var][]NodeID),
		initial:     sg.Initial(),
	}
	cg := ig.Conflict()
	// Create nodes in a topological order of the conflict graph so writer
	// lists come out in version order.
	for _, op := range cg.Linearize() {
		sn := sg.NodeOf(op.ID())
		g.nextID++
		n := &Node{
			id:     g.nextID,
			ops:    graph.NewSet(op.ID()),
			writes: make(map[model.Var]model.Value, len(sn.Writes())),
		}
		for x, v := range sn.Writes() {
			n.writes[x] = v
			g.writerOrder[x] = append(g.writerOrder[x], n.id)
		}
		g.nodes[n.id] = n
		g.dag.AddNode(n.id)
		g.opNode[op.ID()] = n.id
	}
	idag := ig.DAG()
	for _, u := range idag.Nodes() {
		for _, v := range idag.Succs(u) {
			g.dag.AddEdge(g.opNode[u], g.opNode[v])
		}
	}
	return g
}

// WithInitialNode adds the minimum node representing the stable state
// (Section 6: "stable state is represented by a single write graph node,
// the initial or minimum node"). The node is installed, labels no
// operations, writes the initial value of every variable the history
// touches, and precedes every other node. It returns the node's id.
func (g *Graph) WithInitialNode() NodeID {
	if g.initialNode != 0 {
		return g.initialNode
	}
	g.nextID++
	n := &Node{
		id:        g.nextID,
		ops:       graph.NewSet[model.OpID](),
		writes:    make(map[model.Var]model.Value),
		installed: true,
	}
	for _, x := range g.ig.Conflict().Vars() {
		n.writes[x] = g.initial.Get(x)
		g.writerOrder[x] = append([]NodeID{n.id}, g.writerOrder[x]...)
	}
	g.nodes[n.id] = n
	g.dag.AddNode(n.id)
	for id := range g.nodes {
		if id != n.id {
			g.dag.AddEdge(n.id, id)
		}
	}
	g.initialNode = n.id
	return n.id
}

// InitialNode returns the minimum node's id, or 0 if none was created.
func (g *Graph) InitialNode() NodeID { return g.initialNode }

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// NodeOf returns the id of the node an operation currently labels, or 0.
func (g *Graph) NodeOf(op model.OpID) NodeID { return g.opNode[op] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NodeIDs returns all node ids in ascending order.
func (g *Graph) NodeIDs() []NodeID { return g.dag.Nodes() }

// DAG returns the underlying DAG. Shared; do not modify.
func (g *Graph) DAG() *graph.Graph[NodeID] { return g.dag }

// InstalledSet returns the ids of installed nodes.
func (g *Graph) InstalledSet() graph.Set[NodeID] {
	out := graph.NewSet[NodeID]()
	for id, n := range g.nodes {
		if n.installed {
			out.Add(id)
		}
	}
	return out
}

// InstalledOps returns the operations labelling installed nodes.
func (g *Graph) InstalledOps() graph.Set[model.OpID] {
	out := graph.NewSet[model.OpID]()
	for _, n := range g.nodes {
		if n.installed {
			for op := range n.ops {
				out.Add(op)
			}
		}
	}
	return out
}

// UninstalledMinimal returns the uninstalled nodes all of whose direct
// predecessors are installed: the nodes a cache manager may install next.
func (g *Graph) UninstalledMinimal() []NodeID {
	return g.dag.MinimalOutside(g.InstalledSet())
}
