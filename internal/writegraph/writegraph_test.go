package writegraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/conflict"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

// build constructs the write graph for a history given in invocation
// order, from the given initial state.
func build(t testing.TB, s0 *model.State, ops ...*model.Op) *Graph {
	t.Helper()
	cg := conflict.FromOps(ops...)
	sg, err := stategraph.FromConflict(cg, s0)
	if err != nil {
		t.Fatal(err)
	}
	return FromInstallation(install.FromConflict(cg), sg)
}

// figure7 returns the running example's write graph: O: x←x+1,
// P: y←x+1, Q: x←x+1 from x=1.
func figure7(t testing.TB) *Graph {
	s0 := model.NewState()
	s0.SetInt("x", 1)
	return build(t, s0,
		model.Incr(1, "x", 1),
		model.CopyPlus(2, "y", "x", 1),
		model.Incr(3, "x", 1))
}

func TestFromInstallationShape(t *testing.T) {
	g := figure7(t)
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	nO, nP, nQ := g.NodeOf(1), g.NodeOf(2), g.NodeOf(3)
	if !g.DAG().HasEdge(nO, nQ) || !g.DAG().HasEdge(nP, nQ) {
		t.Error("installation edges missing")
	}
	if g.DAG().HasEdge(nO, nP) {
		t.Error("dropped WR edge present in write graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Fatalf("fresh write graph must be explainable: %v", err)
	}
}

func TestInstallRespectsPrefix(t *testing.T) {
	g := figure7(t)
	nO, nP, nQ := g.NodeOf(1), g.NodeOf(2), g.NodeOf(3)
	if err := g.Install(nQ); err == nil {
		t.Error("installed Q before its predecessors")
	}
	if err := g.Install(nP); err != nil {
		t.Errorf("P is minimal (WR edge dropped), install failed: %v", err)
	}
	if err := g.Install(nP); err == nil {
		t.Error("double install accepted")
	}
	if err := g.Install(nO); err != nil {
		t.Error(err)
	}
	if err := g.Install(nQ); err != nil {
		t.Error(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Error(err)
	}
	s := g.DeterminedState()
	if s.GetInt("x") != 3 || s.GetInt("y") != 3 {
		t.Errorf("fully installed state = %v, want x=3 y=3", s)
	}
}

func TestFigure7Collapse(t *testing.T) {
	// Collapsing the x-writers O and Q forces y (operation P) to be
	// written to the stable state before x — the Figure 7 ordering.
	g := figure7(t)
	nO, nP, nQ := g.NodeOf(1), g.NodeOf(2), g.NodeOf(3)
	oq, err := g.Collapse(nO, nQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", g.NumNodes())
	}
	if !g.DAG().HasEdge(nP, oq) {
		t.Error("edge P→{O,Q} missing after collapse")
	}
	n := g.Node(oq)
	if v := n.Writes()["x"]; model.AsInt(v) != 3 {
		t.Errorf("collapsed node writes x=%s, want 3 (Q's value, the later writer)", v)
	}
	if len(n.Ops()) != 2 || !n.Ops().Has(1) || !n.Ops().Has(3) {
		t.Errorf("collapsed ops = %v", n.Ops())
	}
	// The cache manager must now write y before x.
	if err := g.Install(oq); err == nil {
		t.Error("installed {O,Q} before P")
	}
	if err := g.Install(nP); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Errorf("state after installing P: %v", err)
	}
	if err := g.Install(oq); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Error(err)
	}
}

func TestSection5EFGAtomicInstall(t *testing.T) {
	// E: x←y+1, F: y←x+1, G: x←x+1. Installing x's final value alone or
	// y's alone violates installation edges; E,F,G must go atomically
	// (here: collapse F,G after E, or all three).
	g := build(t, model.NewState(),
		model.CopyPlus(1, "x", "y", 1),
		model.CopyPlus(2, "y", "x", 1),
		model.Incr(3, "x", 1))
	nE, nF, nG := g.NodeOf(1), g.NodeOf(2), g.NodeOf(3)
	if err := g.Install(nG); err == nil {
		t.Error("G installed before E,F")
	}
	if err := g.Install(nF); err == nil {
		t.Error("F installed before E")
	}
	merged, err := g.Collapse(nE, nF, nG)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Node(merged)
	if model.AsInt(n.Writes()["x"]) != 2 || model.AsInt(n.Writes()["y"]) != 2 {
		t.Errorf("merged writes = %v, want x=2 y=2", n.Writes())
	}
	if err := g.Install(merged); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Error(err)
	}
	s := g.DeterminedState()
	if s.GetInt("x") != 2 || s.GetInt("y") != 2 {
		t.Errorf("state = %v", s)
	}
}

func TestSection5HJRemoveWrite(t *testing.T) {
	// H: ⟨x++;y++⟩ then J: y←0. J's blind write leaves y unexposed after
	// H, so H can be installed by writing x alone.
	g := build(t, model.NewState(),
		model.IncrBoth(1, "x", 1, "y", 1),
		model.AssignConst(2, "y", model.IntVal(0)))
	nH, nJ := g.NodeOf(1), g.NodeOf(2)
	if err := g.RemoveWrite(nH, "y"); err != nil {
		t.Fatalf("remove-write of unexposed y rejected: %v", err)
	}
	if _, still := g.Node(nH).Writes()["y"]; still {
		t.Error("y still present after removal")
	}
	if err := g.Install(nH); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Errorf("after installing H without y: %v", err)
	}
	s := g.DeterminedState()
	if s.GetInt("x") != 1 || s.GetInt("y") != 0 {
		t.Errorf("state = %v, want x=1 y untouched", s)
	}
	if err := g.Install(nJ); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Error(err)
	}
	if got := g.DeterminedState().GetInt("y"); got != 0 {
		t.Errorf("y = %d, want 0 (J's value)", got)
	}
}

func TestRemoveWriteRejectedWithoutFollowingBlindWriter(t *testing.T) {
	// A lone write of x cannot be removed: the final state needs it.
	g := build(t, model.NewState(), model.Incr(1, "x", 1))
	if err := g.RemoveWrite(g.NodeOf(1), "x"); err == nil {
		t.Error("remove-write accepted with no following writer")
	}
	// A following writer that READS x does not help either (x exposed).
	g2 := build(t, model.NewState(), model.Incr(1, "x", 1), model.Incr(2, "x", 1))
	if err := g2.RemoveWrite(g2.NodeOf(1), "x"); err == nil {
		t.Error("remove-write accepted though the follower reads x")
	}
}

func TestRemoveWriteRejectedWithUninstalledReaderOfVersion(t *testing.T) {
	// w writes x; r reads that version; b blind-writes x afterwards.
	// Removing w's write must be rejected while r is uninstalled, and
	// allowed once r's node is installed... but r's node can only install
	// after w's (WR dropped: r IS installable first; then removal is
	// legal because the only reader of w's version is installed).
	w := model.AssignConst(1, "x", model.IntVal(7))
	r := model.CopyPlus(2, "y", "x", 0)
	b := model.AssignConst(3, "x", model.IntVal(9))
	g := build(t, model.NewState(), w, r, b)
	if err := g.RemoveWrite(g.NodeOf(1), "x"); err == nil {
		t.Fatal("remove-write accepted with uninstalled reader of the version")
	}
	// Install r's node (minimal: its WR edge from w was dropped; the RW
	// edge r→b keeps b after it).
	if err := g.Install(g.NodeOf(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveWrite(g.NodeOf(1), "x"); err != nil {
		t.Fatalf("remove-write rejected after reader installed: %v", err)
	}
	if err := g.Install(g.NodeOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckExplainable(); err != nil {
		t.Error(err)
	}
}

func TestAddEdgeConstraints(t *testing.T) {
	g := figure7(t)
	nO, nP := g.NodeOf(1), g.NodeOf(2)
	// Constrain O before P (beyond the installation graph).
	if err := g.AddEdge(nO, nP); err != nil {
		t.Fatal(err)
	}
	if err := g.Install(nP); err == nil {
		t.Error("P installable despite added edge")
	}
	// Cycle rejected.
	if err := g.AddEdge(nP, nO); err == nil {
		t.Error("cycle accepted")
	}
	// Edge into an installed node rejected.
	if err := g.Install(nO); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(g.NodeOf(3), nO); err == nil {
		t.Error("edge into installed node accepted")
	}
	// Idempotent re-add is fine.
	if err := g.AddEdge(nO, nP); err != nil {
		t.Error(err)
	}
}

func TestCollapseRejectsCycle(t *testing.T) {
	// E→F→G chain: collapsing {E,G} around F would create a cycle.
	g := build(t, model.NewState(),
		model.CopyPlus(1, "x", "y", 1),
		model.CopyPlus(2, "y", "x", 1),
		model.Incr(3, "x", 1))
	if _, err := g.Collapse(g.NodeOf(1), g.NodeOf(3)); err == nil {
		t.Error("cycle-creating collapse accepted")
	}
	if g.NumNodes() != 3 {
		t.Error("failed collapse mutated the graph")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCollapseWithInitialNodeInstalls(t *testing.T) {
	// Collapsing an uninstalled minimal node into the installed initial
	// node is how systems install operations (Section 6).
	g := figure7(t)
	init := g.WithInitialNode()
	if init == 0 || g.InitialNode() != init {
		t.Fatal("initial node not created")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	nP := g.NodeOf(2)
	merged, err := g.Collapse(init, nP)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Node(merged).Installed() {
		t.Error("merged node lost installed flag")
	}
	if err := g.CheckExplainable(); err != nil {
		t.Errorf("after installing P via collapse: %v", err)
	}
	s := g.DeterminedState()
	if s.GetInt("y") != 3 || s.GetInt("x") != 1 {
		t.Errorf("state = %v, want x=1 y=3", s)
	}
	// Installing Q's node by collapse must fail while O's is outside.
	if _, err := g.Collapse(merged, g.NodeOf(3)); err == nil {
		t.Error("collapse installed Q ahead of O")
	}
}

func TestCollapseErrors(t *testing.T) {
	g := figure7(t)
	if _, err := g.Collapse(g.NodeOf(1)); err == nil {
		t.Error("single-node collapse accepted")
	}
	if _, err := g.Collapse(g.NodeOf(1), g.NodeOf(1)); err == nil {
		t.Error("duplicate collapse accepted")
	}
	if _, err := g.Collapse(g.NodeOf(1), 999); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestInstallErrors(t *testing.T) {
	g := figure7(t)
	if err := g.Install(999); err == nil {
		t.Error("unknown node installed")
	}
}

func TestRemoveWriteErrors(t *testing.T) {
	g := figure7(t)
	if err := g.RemoveWrite(999, "x"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := g.RemoveWrite(g.NodeOf(2), "x"); err == nil {
		t.Error("node does not write x")
	}
	if err := g.Install(g.NodeOf(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveWrite(g.NodeOf(2), "y"); err == nil {
		t.Error("remove-write on installed node accepted")
	}
}

func TestCorollary5Property(t *testing.T) {
	// Drive random valid write-graph mutations; after every successful
	// mutation the structural invariants and explainability must hold,
	// and a simulated crash (junk in unexposed variables) must recover.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 10, 4)
		s0 := randomState(rng, 4)
		cg := conflict.FromOps(ops...)
		sg, err := stategraph.FromConflict(cg, s0)
		if err != nil {
			return false
		}
		ig := install.FromConflict(cg)
		g := FromInstallation(ig, sg)
		for step := 0; step < 30; step++ {
			ids := g.NodeIDs()
			switch rng.Intn(4) {
			case 0: // install a minimal node
				if m := g.UninstalledMinimal(); len(m) > 0 {
					if err := g.Install(m[rng.Intn(len(m))]); err != nil {
						return false // minimal nodes must be installable
					}
				}
			case 1: // random edge (may be rejected)
				u, v := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				if u != v {
					_ = g.AddEdge(u, v)
				}
			case 2: // random pairwise collapse (may be rejected)
				u, v := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				if u != v {
					_, _ = g.Collapse(u, v)
				}
			case 3: // random remove-write (may be rejected)
				n := g.Node(ids[rng.Intn(len(ids))])
				if vars := n.Vars(); len(vars) > 0 {
					_ = g.RemoveWrite(n.ID(), vars[rng.Intn(len(vars))])
				}
			}
			if err := g.Validate(); err != nil {
				return false
			}
			if err := g.CheckExplainable(); err != nil {
				return false
			}
		}
		// Crash: determined state plus junk in unexposed variables must
		// replay to the final state.
		installed := g.InstalledOps()
		state := g.DeterminedState()
		for _, x := range install.UnexposedVars(cg, installed) {
			state.SetInt(x, rng.Int63n(1<<40)+99)
		}
		return ig.PotentiallyRecoverable(sg, installed, state) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFullInstallDrain(t *testing.T) {
	// Installing minimal nodes until none remain must reach the final
	// state, for random histories.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 12, 4)
		s0 := randomState(rng, 4)
		cg := conflict.FromOps(ops...)
		sg, err := stategraph.FromConflict(cg, s0)
		if err != nil {
			return false
		}
		g := FromInstallation(install.FromConflict(cg), sg)
		for {
			m := g.UninstalledMinimal()
			if len(m) == 0 {
				break
			}
			if err := g.Install(m[rng.Intn(len(m))]); err != nil {
				return false
			}
		}
		return g.DeterminedState().Equal(sg.FinalState())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- helpers ---

func randomOps(rng *rand.Rand, n, k int) []*model.Op {
	vars := make([]model.Var, k)
	for i := range vars {
		vars[i] = model.Var(string(rune('a' + i)))
	}
	ops := make([]*model.Op, n)
	for i := range ops {
		var reads, writes []model.Var
		for _, v := range vars {
			if rng.Float64() < 0.3 {
				reads = append(reads, v)
			}
			if rng.Float64() < 0.25 {
				writes = append(writes, v)
			}
		}
		if len(writes) == 0 {
			writes = append(writes, vars[rng.Intn(k)])
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "w", reads, writes)
	}
	return ops
}

func randomState(rng *rand.Rand, k int) *model.State {
	s := model.NewState()
	for i := 0; i < k; i++ {
		if rng.Float64() < 0.7 {
			s.SetInt(model.Var(string(rune('a'+i))), rng.Int63n(100))
		}
	}
	return s
}
