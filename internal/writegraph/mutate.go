package writegraph

import (
	"fmt"
	"sort"

	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// Install sets the installed flag on a node (Section 5.1, "Install a
// node"): every predecessor must already be installed, so installed nodes
// always form a prefix. Installing a node models atomically updating the
// stable state with the node's variable-value pairs.
func (g *Graph) Install(id NodeID) error {
	n := g.nodes[id]
	if n == nil {
		return fmt.Errorf("writegraph: install of unknown node %d", id)
	}
	if n.installed {
		return fmt.Errorf("writegraph: node %d already installed", id)
	}
	for _, p := range g.dag.Preds(id) {
		if !g.nodes[p].installed {
			return fmt.Errorf("writegraph: cannot install node %d: predecessor %d is not installed", id, p)
		}
	}
	n.installed = true
	return nil
}

// AddEdge adds a directed edge from node u to node m (Section 5.1, "Add
// an edge"): m must be uninstalled and the result must stay acyclic. A
// cache manager uses this to constrain flush order beyond what the
// installation graph requires (e.g. Figure 8's new-page-before-old-page
// ordering).
func (g *Graph) AddEdge(u, m NodeID) error {
	if g.nodes[u] == nil || g.nodes[m] == nil {
		return fmt.Errorf("writegraph: edge %d→%d references an unknown node", u, m)
	}
	if u == m {
		return fmt.Errorf("writegraph: self-edge on node %d", u)
	}
	if g.nodes[m].installed {
		return fmt.Errorf("writegraph: cannot add edge into installed node %d", m)
	}
	if g.dag.HasEdge(u, m) {
		return nil
	}
	if g.dag.HasPath(m, u) {
		return fmt.Errorf("writegraph: edge %d→%d would create a cycle", u, m)
	}
	g.dag.AddEdge(u, m)
	return nil
}

// Collapse replaces a set of nodes with a single node (Section 5.1,
// "Collapse nodes"): the result must stay acyclic, the merged writes keep
// the last value per variable in the old graph order, and the new node is
// installed iff any collapsed node was — in which case the installed
// prefix property is re-validated. Collapsing is how a cache manager
// models a single cache copy per page (merging uninstalled nodes) and how
// flushing a page installs its operations (collapsing an uninstalled node
// into the installed minimum node). It returns the new node's id.
func (g *Graph) Collapse(ids ...NodeID) (NodeID, error) {
	if len(ids) < 2 {
		return 0, fmt.Errorf("writegraph: collapse needs at least two nodes, got %d", len(ids))
	}
	set := graph.NewSet[NodeID]()
	for _, id := range ids {
		if g.nodes[id] == nil {
			return 0, fmt.Errorf("writegraph: collapse of unknown node %d", id)
		}
		if set.Has(id) {
			return 0, fmt.Errorf("writegraph: node %d listed twice in collapse", id)
		}
		set.Add(id)
	}

	// Simulate the contraction on a clone and check acyclicity.
	sim := g.dag.Clone()
	const probe = NodeID(1<<63 - 1) // fresh id for the simulated merged node
	sim.AddNode(probe)
	for id := range set {
		for _, p := range sim.Preds(id) {
			if !set.Has(p) && p != probe {
				sim.AddEdge(p, probe)
			}
		}
		for _, s := range sim.Succs(id) {
			if !set.Has(s) && s != probe {
				sim.AddEdge(probe, s)
			}
		}
		sim.RemoveNode(id)
	}
	if !sim.IsAcyclic() {
		return 0, fmt.Errorf("writegraph: collapsing %v would create a cycle", ids)
	}

	// The new node is installed iff any member is; the installed prefix
	// property must survive. With an installed merged node, every outside
	// predecessor must be installed.
	anyInstalled := false
	for id := range set {
		if g.nodes[id].installed {
			anyInstalled = true
		}
	}
	if anyInstalled {
		for _, p := range sim.Preds(probe) {
			if !g.nodes[p].installed {
				return 0, fmt.Errorf("writegraph: collapsing %v yields an installed node with uninstalled predecessor %d", ids, p)
			}
		}
	} else {
		// An uninstalled merged node must not absorb an installed
		// successor's position; nothing to check — but an installed
		// successor of an uninstalled merged node would already violate
		// the existing prefix, which Install prevents.
		_ = anyInstalled
	}

	// Merge writes: per variable, members writing it must be contiguous in
	// the writer order (otherwise the contraction would have been cyclic),
	// and the last member's value wins.
	g.nextID++
	n := &Node{
		id:        g.nextID,
		ops:       graph.NewSet[model.OpID](),
		writes:    make(map[model.Var]model.Value),
		installed: anyInstalled,
	}
	for id := range set {
		for op := range g.nodes[id].ops {
			n.ops.Add(op)
			g.opNode[op] = n.id
		}
	}
	for x, order := range g.writerOrder {
		first, last := -1, -1
		for i, w := range order {
			if set.Has(w) {
				if first == -1 {
					first = i
				}
				last = i
			}
		}
		if first == -1 {
			continue
		}
		for i := first; i <= last; i++ {
			if !set.Has(order[i]) {
				return 0, fmt.Errorf("writegraph: writers of %q in collapse set are interleaved with node %d", x, order[i])
			}
		}
		n.writes[x] = g.nodes[order[last]].writes[x]
		newOrder := append([]NodeID{}, order[:first]...)
		newOrder = append(newOrder, n.id)
		newOrder = append(newOrder, order[last+1:]...)
		g.writerOrder[x] = newOrder
	}

	// Rewire the real DAG.
	g.dag.AddNode(n.id)
	for id := range set {
		for _, p := range g.dag.Preds(id) {
			if !set.Has(p) && p != n.id {
				g.dag.AddEdge(p, n.id)
			}
		}
		for _, s := range g.dag.Succs(id) {
			if !set.Has(s) && s != n.id {
				g.dag.AddEdge(n.id, s)
			}
		}
	}
	for id := range set {
		g.dag.RemoveNode(id)
		delete(g.nodes, id)
	}
	g.nodes[n.id] = n
	if set.Has(g.initialNode) {
		g.initialNode = n.id
	}
	return n.id, nil
}

// RemoveWrite removes the pair for variable x from a node's writes
// (Section 5.1, "Remove a write"), so installing the node no longer has
// to update x: the removed value is unexposed and will be superseded.
// The paper's precondition is enforced in the sound, version-precise
// form documented in DESIGN.md:
//
//  1. the node is uninstalled and writes x;
//  2. some node following n writes x without reading it (the following
//     blind write both keeps x unexposed for every prefix containing n
//     and supplies x's value later, so the removed value is never needed
//     by recovery or by the final state);
//  3. every operation outside n that reads x either labels an installed
//     node or read a version of x older than every version n's
//     operations wrote (the paper's "m is ordered before n", made exact).
func (g *Graph) RemoveWrite(id NodeID, x model.Var) error {
	n := g.nodes[id]
	if n == nil {
		return fmt.Errorf("writegraph: remove-write on unknown node %d", id)
	}
	if n.installed {
		return fmt.Errorf("writegraph: remove-write on installed node %d", id)
	}
	if _, ok := n.writes[x]; !ok {
		return fmt.Errorf("writegraph: node %d does not write %q", id, x)
	}

	// Clause 2: a following blind writer of x.
	blindFollows := false
	for nid, m := range g.nodes {
		if nid == id {
			continue
		}
		if _, writes := m.writes[x]; !writes {
			continue
		}
		reads := false
		for op := range m.ops {
			if g.ig.Conflict().Op(op).ReadsVar(x) {
				reads = true
				break
			}
		}
		if !reads && g.dag.HasPath(id, nid) {
			blindFollows = true
			break
		}
	}
	if !blindFollows {
		return fmt.Errorf("writegraph: cannot remove %q from node %d: no following node writes %q without reading it", x, id, x)
	}

	// Clause 3: readers of x outside n must be installed or have read a
	// version older than n's first write of x.
	cg := g.ig.Conflict()
	firstVersion := -1 // version index written by n's earliest x-writer
	for i, w := range cg.Writers(x) {
		if n.ops.Has(w) {
			firstVersion = i + 1 // writer i produces version i+1
			break
		}
	}
	if firstVersion == -1 {
		return fmt.Errorf("writegraph: node %d labelled as writing %q but no labelling operation writes it", id, x)
	}
	for v := 0; v < cg.NumVersions(x); v++ {
		for _, r := range cg.ReadersOfVersion(x, v) {
			if n.ops.Has(r) {
				continue
			}
			home := g.nodes[g.opNode[r]]
			if home != nil && home.installed {
				continue
			}
			if v >= firstVersion {
				return fmt.Errorf("writegraph: cannot remove %q from node %d: uninstalled operation %d reads version %d, which node %d wrote", x, id, r, v, id)
			}
		}
	}

	delete(n.writes, x)
	order := g.writerOrder[x]
	for i, w := range order {
		if w == id {
			g.writerOrder[x] = append(order[:i:i], order[i+1:]...)
			break
		}
	}
	return nil
}

// DeterminedState returns the state determined by the installed prefix of
// the write graph: per variable, the last installed writer's value,
// falling back to the initial state. This is the stable state a cache
// manager driving the write graph would have produced.
func (g *Graph) DeterminedState() *model.State {
	s := g.initial.Clone()
	for x, order := range g.writerOrder {
		for i := len(order) - 1; i >= 0; i-- {
			if g.nodes[order[i]].installed {
				s.Set(x, g.nodes[order[i]].writes[x])
				break
			}
		}
	}
	return s
}

// CheckExplainable verifies Corollary 5 for the graph's current installed
// prefix: the state the prefix determines must be explained by the
// corresponding prefix of the installation graph, and hence be
// potentially recoverable. It returns nil on success.
func (g *Graph) CheckExplainable() error {
	return g.ig.Explains(g.sg, g.InstalledOps(), g.DeterminedState())
}

// Validate checks the structural invariants: acyclicity, installed nodes
// forming a prefix, and writers of each variable totally ordered in the
// recorded order.
func (g *Graph) Validate() error {
	if !g.dag.IsAcyclic() {
		return fmt.Errorf("writegraph: graph has a cycle")
	}
	for id, n := range g.nodes {
		if !n.installed {
			continue
		}
		for _, p := range g.dag.Preds(id) {
			if !g.nodes[p].installed {
				return fmt.Errorf("writegraph: installed node %d has uninstalled predecessor %d", id, p)
			}
		}
	}
	for x, order := range g.writerOrder {
		for i := 0; i+1 < len(order); i++ {
			if !g.dag.HasPath(order[i], order[i+1]) {
				return fmt.Errorf("writegraph: writers %d and %d of %q are not ordered", order[i], order[i+1], x)
			}
		}
	}
	return nil
}

// Writers returns the nodes writing x in graph order. Shared; do not
// modify.
func (g *Graph) Writers(x model.Var) []NodeID { return g.writerOrder[x] }

// Vars returns every variable written by some node, sorted.
func (g *Graph) Vars() []model.Var {
	out := make([]model.Var, 0, len(g.writerOrder))
	for x, order := range g.writerOrder {
		if len(order) > 0 {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
