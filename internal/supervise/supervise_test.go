package supervise

import (
	"math/rand"
	"testing"
	"time"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// noSleep keeps wall clock out of the tests.
func noSleep(time.Duration) {}

func pagesN(n int) []model.Var {
	out := make([]model.Var, n)
	for i := range out {
		out[i] = model.Var(string(rune('a' + i)))
	}
	return out
}

func initialState(ps []model.Var) *model.State {
	s := model.NewState()
	for i, p := range ps {
		s.SetInt(p, int64(100+i))
	}
	return s
}

// oracle is the determined state: the stable log applied in order to the
// recovery base.
func oracle(db method.DB) *model.State {
	s := db.RecoveryBase().Clone()
	for _, op := range db.StableLog().Ops() {
		s.MustApply(op)
	}
	return s
}

func singlePageMk(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op {
	p := ps[rng.Intn(len(ps))]
	return model.ReadWrite(id, "upd", []model.Var{p}, []model.Var{p})
}

func readManyWriteOneMk(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op {
	var reads []model.Var
	for _, p := range ps {
		if rng.Float64() < 0.4 {
			reads = append(reads, p)
		}
	}
	return model.ReadWrite(id, "rw1", reads, []model.Var{ps[rng.Intn(len(ps))]})
}

func anyShapeMk(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op {
	var reads, writes []model.Var
	for _, p := range ps {
		if rng.Float64() < 0.4 {
			reads = append(reads, p)
		}
		if rng.Float64() < 0.4 {
			writes = append(writes, p)
		}
	}
	if len(writes) == 0 {
		writes = []model.Var{ps[rng.Intn(len(ps))]}
	}
	return model.ReadWrite(id, "any", reads, writes)
}

type methodCase struct {
	mk    func(*model.State) method.DB
	shape func(model.OpID, *rand.Rand, []model.Var) *model.Op
}

func allMethods() map[string]methodCase {
	return map[string]methodCase{
		"logical":           {func(s *model.State) method.DB { return method.NewLogical(s) }, anyShapeMk},
		"physical":          {func(s *model.State) method.DB { return method.NewPhysical(s) }, anyShapeMk},
		"physiological":     {func(s *model.State) method.DB { return method.NewPhysiological(s) }, singlePageMk},
		"physiological+dpt": {func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }, singlePageMk},
		"genlsn":            {func(s *model.State) method.DB { return method.NewGenLSN(s) }, readManyWriteOneMk},
		"genlsn+mv":         {func(s *model.State) method.DB { return method.NewGenLSNMV(s) }, readManyWriteOneMk},
		"grouplsn":          {func(s *model.State) method.DB { return method.NewGroupLSN(s) }, anyShapeMk},
	}
}

// crashedDB builds a DB, runs a seeded workload with mixed flushes and
// checkpoints, and crashes it.
func crashedDB(t testing.TB, mc methodCase, seed int64, nops int) method.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := pagesN(4)
	db := mc.mk(initialState(ps))
	for i := 1; i <= nops; i++ {
		if err := db.Exec(mc.shape(model.OpID(i*10), rng, ps)); err != nil {
			t.Fatalf("%s: exec: %v", db.Name(), err)
		}
		switch rng.Intn(5) {
		case 0:
			db.FlushOne()
		case 1:
			db.FlushLog()
		case 2:
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("%s: checkpoint: %v", db.Name(), err)
			}
		}
	}
	db.FlushLog()
	db.Crash()
	return db
}

// TestSuperviseClean: no injected crashes or faults — every method
// converges on the first attempt, on the parallel rung, to the oracle.
func TestSuperviseClean(t *testing.T) {
	for name, mc := range allMethods() {
		t.Run(name, func(t *testing.T) {
			db := crashedDB(t, mc, 11, 12)
			want := oracle(db)
			res, err := Supervise(db, Options{Seed: 1, Sleep: noSleep})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || res.Rung != RungParallel || len(res.Attempts) != 1 {
				t.Fatalf("converged=%v rung=%s attempts=%d", res.Converged, res.Rung, len(res.Attempts))
			}
			if !res.State.Equal(want) {
				t.Errorf("%s: supervised state diverges from oracle", name)
			}
		})
	}
}

// TestSuperviseEveryCrashIndexAndPair is the tentpole's monotone-
// progress regression test: crash the supervised recovery at every redo
// index, and at every pair of indices across two attempts, and prove
// (a) it still converges to the oracle, (b) the install counter
// strictly advances across every attempt that installed anything (with
// K=1 progress checkpoints, even the index-0 crash leaves the next
// attempt ahead or equal), and (c) progress never regresses — a
// regression would make Supervise return ErrProgressRegression, which
// the test treats as fatal.
func TestSuperviseEveryCrashIndexAndPair(t *testing.T) {
	for _, name := range []string{"physiological", "physiological+dpt", "physical", "genlsn", "genlsn+mv", "grouplsn"} {
		mc := allMethods()[name]
		t.Run(name, func(t *testing.T) {
			// Size the index space from a clean run.
			probe := crashedDB(t, mc, 23, 10)
			clean, err := Supervise(probe, Options{Seed: 1, Sleep: noSleep})
			if err != nil || !clean.Converged {
				t.Fatalf("probe: converged=%v err=%v", clean.Converged, err)
			}
			n := clean.TotalInstalls

			var plans []CrashPlan
			for i := 0; i <= n; i++ {
				plans = append(plans, CrashPlan{Points: []int{i}})
			}
			for i := 0; i <= n; i++ {
				for j := 0; j <= n; j++ {
					plans = append(plans, CrashPlan{Points: []int{i, j}})
				}
			}

			for _, plan := range plans {
				db := crashedDB(t, mc, 23, 10)
				want := oracle(db)
				res, err := Supervise(db, Options{
					Seed:          7,
					Sleep:         noSleep,
					Crashes:       plan,
					ProgressEvery: 1,
					MaxAttempts:   len(plan.Points) + 4,
					StartRung:     RungSequential,
					EscalateAfter: len(plan.Points) + 4, // keep the ladder out of this test
				})
				if err != nil {
					t.Fatalf("plan %v: %v", plan.Points, err)
				}
				if !res.Converged {
					t.Fatalf("plan %v: did not converge: %+v", plan.Points, res.Attempts)
				}
				if !res.State.Equal(want) {
					t.Fatalf("plan %v: fixed point diverges from oracle", plan.Points)
				}
				// Strict advance: every attempt that installed work must
				// raise the measure above the previous attempt's.
				last := -1
				for _, a := range res.Attempts {
					if last >= 0 && a.Progress < last {
						t.Fatalf("plan %v: progress regressed %d -> %d", plan.Points, last, a.Progress)
					}
					if a.Installed > 0 && last >= 0 && a.Progress <= last {
						t.Fatalf("plan %v: attempt %d installed %d ops but progress stuck at %d",
							plan.Points, a.Index, a.Installed, a.Progress)
					}
					if !a.AuditOK {
						t.Fatalf("plan %v: Corollary-4 audit failed after attempt %d", plan.Points, a.Index)
					}
					last = a.Progress
				}
				if wantCrashes := len(plan.Points); res.CrashesInjected > wantCrashes {
					t.Fatalf("plan %v: injected %d crashes", plan.Points, res.CrashesInjected)
				}
			}
		})
	}
}

// TestSuperviseLogicalNestedCrash: logical recovery keeps its work
// volatile, so a nested crash discards the attempt entirely and the
// retry starts over; there are no installs and no progress checkpoints.
func TestSuperviseLogicalNestedCrash(t *testing.T) {
	db := crashedDB(t, allMethods()["logical"], 5, 10)
	want := oracle(db)
	res, err := Supervise(db, Options{
		Seed:          3,
		Sleep:         noSleep,
		Crashes:       CrashPlan{Points: []int{0, 2}},
		EscalateAfter: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Attempts) != 3 {
		t.Fatalf("converged=%v attempts=%d", res.Converged, len(res.Attempts))
	}
	if res.InstallCapable || res.TotalInstalls != 0 || res.ProgressCheckpoints != 0 {
		t.Fatalf("logical supervision claimed installs: %+v", res)
	}
	if res.CrashesInjected != 2 {
		t.Fatalf("crashes injected = %d", res.CrashesInjected)
	}
	if !res.State.Equal(want) {
		t.Error("state diverges from oracle")
	}
}

// TestSuperviseProgressCheckpoints: with K=2, a crashed attempt's
// checkpoints let the retry skip the settled prefix — the retry's
// install count covers only the remainder.
func TestSuperviseProgressCheckpoints(t *testing.T) {
	db := crashedDB(t, allMethods()["physiological"], 23, 10)
	want := oracle(db)
	clean, err := Supervise(crashedDB(t, allMethods()["physiological"], 23, 10), Options{Seed: 1, Sleep: noSleep})
	if err != nil || !clean.Converged {
		t.Fatalf("probe failed: %v", err)
	}
	n := clean.TotalInstalls
	if n < 4 {
		t.Fatalf("workload too small: %d installs", n)
	}

	res, err := Supervise(db, Options{
		Seed:          9,
		Sleep:         noSleep,
		Crashes:       CrashPlan{Points: []int{n - 1}},
		ProgressEvery: 2,
		StartRung:     RungSequential,
		EscalateAfter: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.State.Equal(want) {
		t.Fatalf("converged=%v", res.Converged)
	}
	if res.ProgressCheckpoints == 0 {
		t.Fatal("no progress checkpoints appended")
	}
	// The retry must not redo the whole log: the crashed attempt
	// installed n-1 ops and checkpointed at least ⌊(n-1)/2⌋·2 of them.
	retry := res.Attempts[len(res.Attempts)-1]
	if retry.Installed >= n {
		t.Fatalf("retry reinstalled everything (%d of %d)", retry.Installed, n)
	}
}

// TestSuperviseLadder: persistent failures walk the ladder parallel →
// sequential → degraded, and the rung that finishes is reported.
func TestSuperviseLadder(t *testing.T) {
	db := crashedDB(t, allMethods()["physiological"], 31, 8)
	want := oracle(db)
	// Crash the first three attempts before any install: with
	// EscalateAfter=1 the ladder steps down after each.
	res, err := Supervise(db, Options{
		Seed:          5,
		Sleep:         noSleep,
		Crashes:       CrashPlan{Points: []int{0, 0, 0}},
		EscalateAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rung != RungDegraded {
		t.Fatalf("converged=%v rung=%s", res.Converged, res.Rung)
	}
	if res.Escalations != 2 {
		t.Fatalf("escalations = %d, want 2", res.Escalations)
	}
	if res.Degraded == nil {
		t.Fatal("degraded rung finished but its report is missing")
	}
	if !res.State.Equal(want) {
		t.Error("state diverges from oracle")
	}
	// One attempt per rung: the degraded rung's crash point maps onto
	// its abort-after-repairs knob, and a substrate needing no repairs
	// never reaches it — the third attempt completes.
	wantRungs := []Rung{RungParallel, RungSequential, RungDegraded}
	if len(res.Attempts) != len(wantRungs) {
		t.Fatalf("attempts = %d, want %d", len(res.Attempts), len(wantRungs))
	}
	for i, a := range res.Attempts {
		if a.Rung != wantRungs[i] {
			t.Errorf("attempt %d ran on %s, want %s", i, a.Rung, wantRungs[i])
		}
	}
}

// TestSuperviseTransientFaults: a lossy installer stream still
// converges — faulted attempts abort cleanly and the retry resumes from
// the progress checkpoints.
func TestSuperviseTransientFaults(t *testing.T) {
	for _, name := range []string{"physiological", "genlsn", "grouplsn"} {
		mc := allMethods()[name]
		t.Run(name, func(t *testing.T) {
			db := crashedDB(t, mc, 41, 14)
			want := oracle(db)
			res, err := Supervise(db, Options{
				Seed:               41,
				Sleep:              noSleep,
				TransientFaultRate: 0.25,
				ProgressEvery:      1,
				MaxAttempts:        40,
				StartRung:          RungSequential,
				EscalateAfter:      40,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: %+v", res.Attempts)
			}
			if !res.State.Equal(want) {
				t.Error("state diverges from oracle")
			}
			if res.TransientFaults != len(res.Attempts)-1 {
				t.Errorf("faults=%d attempts=%d: every non-final attempt should have faulted",
					res.TransientFaults, len(res.Attempts))
			}
		})
	}
}

// TestSuperviseBackoffDeterministic: same seed, same jittered backoff
// sequence; different seed, different jitter. The delays grow
// exponentially up to the cap and land in [Base/2, Max).
func TestSuperviseBackoffDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var slept []time.Duration
		db := crashedDB(t, allMethods()["physiological"], 17, 8)
		_, err := Supervise(db, Options{
			Seed:          seed,
			Sleep:         func(d time.Duration) { slept = append(slept, d) },
			Crashes:       CrashPlan{Points: []int{0, 0, 0, 0}},
			EscalateAfter: 10,
			BackoffBase:   time.Millisecond,
			BackoffMax:    4 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return slept
	}
	a, b, c := run(100), run(100), run(200)
	if len(a) != 4 {
		t.Fatalf("slept %d times, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different backoff at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
	// Envelope: attempt k's nominal delay is Base·2^(k-1) capped at Max,
	// jittered into [nominal/2, nominal).
	for i, d := range a {
		nominal := time.Millisecond << i
		if nominal > 4*time.Millisecond {
			nominal = 4 * time.Millisecond
		}
		if d < nominal/2 || d >= nominal {
			t.Errorf("backoff %d = %v outside [%v, %v)", i, d, nominal/2, nominal)
		}
	}
}

// TestSupervisePhaseDeadline: a clock that outruns the deadline fails
// every attempt; the run exhausts its attempts without converging and
// reports the deadline as the reason.
func TestSupervisePhaseDeadline(t *testing.T) {
	var now time.Time
	clock := func() time.Time {
		now = now.Add(10 * time.Millisecond)
		return now
	}
	db := crashedDB(t, allMethods()["physiological"], 19, 8)
	res, err := Supervise(db, Options{
		Seed:          1,
		Sleep:         noSleep,
		Clock:         clock,
		PhaseDeadline: 5 * time.Millisecond,
		MaxAttempts:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged despite an impossible deadline")
	}
	if len(res.Attempts) != 3 {
		t.Fatalf("attempts = %d", len(res.Attempts))
	}
	for _, a := range res.Attempts {
		if a.Err != errDeadline.Error() {
			t.Errorf("attempt %d failed with %q, want deadline", a.Index, a.Err)
		}
	}
}

// TestSuperviseMediaFaultEscalatesStraightToDegraded: a torn multi-page
// group (media damage planted under grouplsn) panics the redo test; the
// supervisor converts the panic to media evidence and jumps the ladder
// straight to the degraded rung, which repairs and converges.
func TestSuperviseMediaFaultEscalatesStraightToDegraded(t *testing.T) {
	ps := pagesN(4)
	db := method.NewGroupLSN(initialState(ps))
	for i := 1; i <= 6; i++ {
		op := model.ReadWrite(model.OpID(i), "grp", nil, []model.Var{ps[0], ps[1]})
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	// Plant the damage: install one page of a two-page group directly,
	// leaving its sibling behind — exactly the torn state the group
	// redo test's panic guards against.
	db.Store().Write(ps[0], model.Value("torn"), db.StableLog().Records()[3].LSN)

	res, err := Supervise(db, Options{Seed: 2, Sleep: noSleep, MaxAttempts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res.Attempts)
	}
	if res.Rung != RungDegraded {
		t.Fatalf("finished on %s, want degraded", res.Rung)
	}
	// The jump was direct: no attempt ran on the sequential rung.
	for _, a := range res.Attempts {
		if a.Rung == RungSequential {
			t.Errorf("attempt %d ran on the sequential rung; media evidence should jump straight to degraded", a.Index)
		}
	}
	if !res.State.Equal(oracle(db)) {
		t.Error("state diverges from oracle")
	}
}

// TestSuperviseTelemetry: the attempt counters, progress gauge, backoff
// histogram samples, and ladder events land in the recorder.
func TestSuperviseTelemetry(t *testing.T) {
	rec := obs.New()
	sink := &obs.MemorySink{}
	rec.SetSink(sink)
	db := crashedDB(t, allMethods()["physiological"], 29, 10)
	res, err := Supervise(db, Options{
		Seed:          4,
		Sleep:         noSleep,
		Crashes:       CrashPlan{Points: []int{1, 0, 0}},
		ProgressEvery: 1,
		EscalateAfter: 2,
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res.Attempts)
	}
	if got := rec.CounterValue(obs.MSupAttempts); got != int64(len(res.Attempts)) {
		t.Errorf("attempts counter = %d, want %d", got, len(res.Attempts))
	}
	if got := rec.CounterValue(obs.MSupCrashes); got != int64(res.CrashesInjected) {
		t.Errorf("crash counter = %d, want %d", got, res.CrashesInjected)
	}
	if got := rec.CounterValue(obs.MSupInstalls); got != int64(res.TotalInstalls) {
		t.Errorf("installs counter = %d, want %d", got, res.TotalInstalls)
	}
	if got := rec.CounterValue(obs.MSupConverged); got != 1 {
		t.Errorf("converged counter = %d", got)
	}
	if got := rec.CounterValue(obs.MSupEscalations); got != int64(res.Escalations) {
		t.Errorf("escalations counter = %d, want %d", got, res.Escalations)
	}
	var attempts, rungs int
	for _, e := range sink.Events() {
		switch e.Type {
		case obs.EvAttempt:
			attempts++
		case obs.EvRung:
			rungs++
		}
	}
	if attempts != len(res.Attempts) {
		t.Errorf("attempt events = %d, want %d", attempts, len(res.Attempts))
	}
	if rungs != res.Escalations {
		t.Errorf("rung events = %d, want %d", rungs, res.Escalations)
	}
	snap := rec.Snapshot()
	if _, ok := snap.Durations[obs.MSupBackoff]; !ok {
		t.Error("backoff histogram missing from snapshot")
	}
}

// TestSuperviseExhaustion: attempts run out (every one crashed) —
// Converged=false, no error, and the last rung is reported.
func TestSuperviseExhaustion(t *testing.T) {
	db := crashedDB(t, allMethods()["physiological"], 37, 8)
	res, err := Supervise(db, Options{
		Seed:        1,
		Sleep:       noSleep,
		Crashes:     CrashPlan{Points: []int{0, 0, 0, 0}},
		MaxAttempts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged with every attempt crashed")
	}
	if res.Rung != RungDegraded {
		t.Errorf("last rung = %s, want degraded after repeated failures", res.Rung)
	}
}

// TestSuperviseFlightDumpOnTerminalFailure: a run that exhausts its
// attempt budget must dump the flight recorder — final ring plus one
// preserved snapshot per failed attempt, each labeled with the attempt
// and rung — into the result, and the dump must validate.
func TestSuperviseFlightDumpOnTerminalFailure(t *testing.T) {
	db := crashedDB(t, allMethods()["physiological"], 37, 8)
	flight := obs.NewFlightRecorder(256)
	res, err := Supervise(db, Options{
		Seed:        1,
		Sleep:       noSleep,
		Crashes:     CrashPlan{Points: []int{0, 0, 0, 0}},
		MaxAttempts: 4,
		Recorder:    obs.New(),
		Flight:      flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged with every attempt crashed")
	}
	if res.Flight == nil {
		t.Fatal("terminal failure left no flight dump")
	}
	if err := res.Flight.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Flight.Events) == 0 {
		t.Fatal("flight dump ring is empty")
	}
	if got := len(res.Flight.Snapshots); got != 4 {
		t.Fatalf("%d crash snapshots, want one per failed attempt (4)", got)
	}
	for i, s := range res.Flight.Snapshots {
		if s.Label == "" || len(s.Events) == 0 {
			t.Fatalf("snapshot %d is unlabeled or empty: %+v", i, s)
		}
	}
}

// TestSuperviseFlightNotDumpedOnConvergence: a converged run keeps its
// recorder attached for the campaign but produces no terminal dump.
func TestSuperviseFlightNotDumpedOnConvergence(t *testing.T) {
	db := crashedDB(t, allMethods()["physiological"], 5, 8)
	res, err := Supervise(db, Options{
		Seed:     1,
		Sleep:    noSleep,
		Recorder: obs.New(),
		Flight:   obs.NewFlightRecorder(256),
	})
	if err != nil || !res.Converged {
		t.Fatalf("converged=%v err=%v", res.Converged, err)
	}
	if res.Flight != nil {
		t.Fatal("converged run produced a terminal flight dump")
	}
}

// TestSuperviseSpanTree: a supervised recovery with one nested crash
// traces as a well-formed tree — a trace-begin, a supervise root, one
// attempt span per attempt, and install batches under the attempts.
func TestSuperviseSpanTree(t *testing.T) {
	db := crashedDB(t, allMethods()["physiological"], 5, 8)
	rec := obs.New()
	sink := &obs.MemorySink{}
	rec.SetSink(sink)
	res, err := Supervise(db, Options{
		Seed:          1,
		Sleep:         noSleep,
		Crashes:       CrashPlan{Points: []int{1}},
		MaxAttempts:   6,
		ProgressEvery: 2,
		Recorder:      rec,
	})
	rec.SetSink(nil)
	if err != nil || !res.Converged {
		t.Fatalf("converged=%v err=%v", res.Converged, err)
	}
	events := sink.Events()
	if events[0].Type != obs.EvTraceBegin {
		t.Fatalf("stream opens with %s, want %s", events[0].Type, obs.EvTraceBegin)
	}
	if err := obs.CheckSpanNesting(events); err != nil {
		t.Fatal(err)
	}
	var supervised, attempts, batches int
	var rootID uint64
	for _, e := range events {
		if e.Type != obs.EvSpanBegin || e.Span == 0 {
			continue
		}
		switch e.Phase {
		case obs.PhaseSupervise:
			supervised++
			rootID = e.Span
		case obs.PhaseAttempt:
			attempts++
			if e.Parent != rootID {
				t.Fatalf("attempt span %d parented under %d, want supervise root %d", e.Span, e.Parent, rootID)
			}
			if e.Comp == "" {
				t.Fatalf("attempt span %d carries no attempt/rung label", e.Span)
			}
		case obs.PhaseInstall:
			batches++
		}
	}
	if supervised != 1 {
		t.Fatalf("%d supervise roots, want 1", supervised)
	}
	if attempts != len(res.Attempts) {
		t.Fatalf("%d attempt spans, result records %d attempts", attempts, len(res.Attempts))
	}
	if attempts < 2 {
		t.Fatalf("%d attempts, want ≥2 (one crashed, one converging)", attempts)
	}
	if batches == 0 {
		t.Fatal("no install-batch spans under the attempts")
	}
}
