// Package supervise runs recovery as a supervised process: bounded
// attempts that survive nested crashes and transient storage faults,
// with exponential backoff between attempts, recovery-progress
// checkpoints so each restart skips already-installed work, and a
// degradation ladder that steps from partitioned parallel recovery down
// to sequential and finally to media-fault-tolerant degraded recovery.
//
// The availability reading of Corollary 4 is the whole design: every
// intermediate state of an installing recovery is itself recoverable,
// because the operations that will not be redone always form a prefix
// of the installation graph explaining the current stable state. The
// supervisor leans on that three ways:
//
//   - Restart, don't resume. A crashed attempt needs no cleanup — the
//     next attempt simply runs the recovery procedure over the new
//     (further-installed) stable state.
//
//   - Checkpoint the progress. After every K installed operations the
//     installing pass appends a fuzzy checkpoint whose bound is one
//     past the last processed record (method.ProgressCheckpointer), so
//     a restart skips the settled prefix without re-examining it. The
//     claim is sound because installs happen in log order: every record
//     below the bound is checkpoint-covered, redo-test-rejected
//     (installed), or just installed.
//
//   - Audit every crash point. After each failed attempt the supervisor
//     re-checks the Recovery Invariant with the core checker: the
//     skipped prefix must still explain the stable state. An audit
//     failure is treated as evidence of media damage and escalates
//     straight to the degraded rung rather than failing the run.
//
// Progress is monotone by construction — page LSNs and checkpoint
// bounds only advance — and the supervisor enforces it: the installed
// count (stable log minus the predicted redo set) is measured after
// every attempt and a regression is a hard error, not a retry.
package supervise

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"redotheory/internal/core"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/storage"
	"redotheory/internal/wal"
)

// Rung names a degradation-ladder rung, in escalation order.
type Rung string

const (
	// RungParallel: partitioned parallel recovery computes the outcome
	// and cross-checks the installing pass against it.
	RungParallel Rung = "parallel"
	// RungSequential: the plain in-order installing pass (Figure 6 with
	// persistence), no concurrent machinery.
	RungSequential Rung = "sequential"
	// RungDegraded: media-fault-tolerant recovery — substrate
	// validation, quarantine, conservative full replay.
	RungDegraded Rung = "degraded"
)

// next returns the rung below, saturating at degraded.
func (r Rung) next() Rung {
	switch r {
	case RungParallel:
		return RungSequential
	default:
		return RungDegraded
	}
}

// CrashPlan schedules injected nested crashes, one per attempt:
// Points[k] is how many operations attempt k may install before the
// supervisor simulates a crash (0 crashes before the first install; a
// negative point, or an attempt beyond the schedule, runs clean). An
// attempt that finishes before reaching its point never crashes.
type CrashPlan struct {
	Points []int
}

// point returns the attempt's crash point (-1: no crash planned).
func (p CrashPlan) point(attempt int) int {
	if attempt < len(p.Points) {
		return p.Points[attempt]
	}
	return -1
}

// Options tunes the supervisor. The zero value is usable: defaults are
// filled in by Supervise.
type Options struct {
	// MaxAttempts bounds the attempt loop (default 16).
	MaxAttempts int
	// ProgressEvery is K: a fuzzy progress checkpoint is appended after
	// every K installed operations (default 4; negative disables).
	ProgressEvery int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: min(Base·2^(attempt-1), Max), scaled by deterministic
	// jitter in [0.5, 1) drawn from Seed (defaults 1ms and 50ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter and the transient-fault stream.
	Seed int64
	// PhaseDeadline bounds each attempt's wall clock as measured by
	// Clock; an attempt that exceeds it is failed and retried (0: none).
	PhaseDeadline time.Duration
	// EscalateAfter is how many consecutive failed attempts on a rung
	// trigger escalation to the next rung (default 2). Media-fault
	// evidence escalates straight to degraded regardless.
	EscalateAfter int
	// Workers is the parallel rung's pool size (default 3).
	Workers int
	// StartRung is the ladder rung to start on ("" means RungParallel).
	// Tests and campaigns start lower to exercise one rung in isolation.
	StartRung Rung
	// Crashes schedules injected nested crashes.
	Crashes CrashPlan
	// TransientFaultRate is the per-install probability that the install
	// I/O fails; the attempt is aborted and retried (the fault stream is
	// deterministic in Seed, so a retry draws fresh outcomes).
	TransientFaultRate float64
	// SkipAudit disables the Corollary-4 invariant audit at crash
	// points (the audit is on by default).
	SkipAudit bool
	// Recorder receives attempt/backoff/ladder telemetry (nil disables).
	Recorder *obs.Recorder
	// Flight, when non-nil, is the crash-surviving event ring: the
	// supervisor preserves its tail into a labeled snapshot after every
	// failed attempt and dumps it into Result.Flight when the whole
	// supervised recovery fails. When the recorder (created if needed)
	// has no sink of its own, the flight recorder is attached as the
	// sink for the duration, so events flow into the ring without any
	// further wiring by the caller.
	Flight *obs.FlightRecorder
	// Sleep, when non-nil, replaces time.Sleep for backoff (tests and
	// campaigns pass a no-op to keep wall clock out of the grid).
	Sleep func(time.Duration)
	// Clock, when non-nil, replaces time.Now for deadline checks.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 16
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 50 * time.Millisecond
	}
	if o.EscalateAfter <= 0 {
		o.EscalateAfter = 2
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Attempt reports one supervised attempt.
type Attempt struct {
	// Index is the attempt's ordinal (0-based).
	Index int
	// Rung is the ladder rung the attempt ran on.
	Rung Rung
	// Installed is how many operations the attempt installed.
	Installed int
	// Checkpoints is how many progress checkpoints it appended.
	Checkpoints int
	// Progress is the monotone measure after the attempt: stable-logged
	// operations the method's redo test now considers installed.
	Progress int
	// Crashed is true when the injected nested crash fired.
	Crashed bool
	// Err is the failure reason ("" on success).
	Err string
	// Backoff is the jittered delay slept before this attempt.
	Backoff time.Duration
	// AuditOK is the Corollary-4 audit verdict at this attempt's end
	// (true when the audit was skipped).
	AuditOK bool
}

// Result reports a whole supervised recovery.
type Result struct {
	// Method names the recovery method driven.
	Method string
	// Converged is true when an attempt completed and verified.
	Converged bool
	// Rung is the ladder rung that finished (or the rung of the last
	// attempt when not converged).
	Rung Rung
	// State is the recovered state (nil when not converged).
	State *model.State
	// Attempts lists every attempt in order.
	Attempts []Attempt
	// InstallCapable is whether the method's recovery persists work as
	// it goes (method.ProgressCheckpointer.InstallsDuringRecovery).
	InstallCapable bool
	// TotalInstalls sums installs across attempts.
	TotalInstalls int
	// ProgressCheckpoints sums progress checkpoints appended.
	ProgressCheckpoints int
	// CrashesInjected counts nested crashes that fired.
	CrashesInjected int
	// TransientFaults counts attempts aborted by an injected install
	// fault.
	TransientFaults int
	// Escalations counts ladder transitions.
	Escalations int
	// AuditFailures counts failed Corollary-4 audits (each escalates to
	// the degraded rung).
	AuditFailures int
	// BackoffTotal sums the jittered delays between attempts.
	BackoffTotal time.Duration
	// Degraded carries the degraded rung's full report when that rung
	// produced the final outcome.
	Degraded *method.DegradedResult
	// Unrecoverable is true when the degraded rung proved committed work
	// was lost; the supervisor stops immediately (no rung is lower).
	Unrecoverable bool
	// Flight is the flight-recorder dump captured on terminal failure
	// (Options.Flight set and the supervised recovery did not converge):
	// the preserved per-crash snapshots plus the final event ring.
	Flight *obs.FlightDump
}

// attempt-failure sentinels; Err strings in Attempt derive from these.
var (
	errNestedCrash = errors.New("supervise: injected nested crash")
	errTransient   = errors.New("supervise: transient install fault")
	errDeadline    = errors.New("supervise: phase deadline exceeded")
)

// ErrProgressRegression is returned when the monotone-progress measure
// moved backwards between attempts — a soundness bug, never a condition
// to retry through.
var ErrProgressRegression = errors.New("supervise: installed-prefix progress regressed between attempts")

// splitmix is the splitmix64 finalizer, used to derive the jitter and
// fault streams independently from one seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func derivedRng(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix(uint64(seed)^stream) &^ (1 << 63))))
}

// session is one supervised recovery in flight.
type session struct {
	db       method.DB
	o        Options
	rec      *obs.Recorder
	jitter   *rand.Rand
	faults   *rand.Rand
	res      *Result
	deadline time.Time // zero: no deadline for the current attempt
}

// Supervise drives the crashed DB's recovery to completion under the
// configured crash and fault schedule. It returns the result with
// Converged=false when attempts were exhausted or the degraded rung
// declared the damage unrecoverable; the error return is reserved for
// harness breakage and for monotone-progress regressions
// (ErrProgressRegression), which indicate a soundness bug.
func Supervise(db method.DB, opts Options) (*Result, error) {
	o := opts.withDefaults()
	rung := o.StartRung
	switch rung {
	case "":
		rung = RungParallel
	case RungParallel, RungSequential, RungDegraded:
	default:
		return nil, fmt.Errorf("supervise: unknown start rung %q", rung)
	}
	s := &session{
		db:     db,
		o:      o,
		rec:    o.Recorder,
		jitter: derivedRng(o.Seed, 0x6a09e667f3bcc908),
		faults: derivedRng(o.Seed, 0xbb67ae8584caa73b),
		res:    &Result{Method: db.Name(), Rung: rung},
	}
	if pc, ok := db.(method.ProgressCheckpointer); ok {
		s.res.InstallCapable = pc.InstallsDuringRecovery()
	}
	// Flight wiring: with a ring but no sink of its own, the recorder
	// (created if needed) streams into the ring for the duration. A
	// recorder that is already sinking — the fuzz oracle tees into the
	// ring itself — is left alone.
	if o.Flight != nil {
		if s.rec == nil {
			s.rec = obs.New()
		}
		if !s.rec.Sinking() {
			s.rec.SetSink(o.Flight)
			defer s.rec.SetSink(nil)
		}
	}
	// Root span: the whole supervised recovery is one trace; attempts
	// and the engine recoveries they run nest inside it.
	root := s.rec.StartRootSpan(obs.PhaseSupervise, "supervised "+db.Name())
	defer root.End()

	consecutive := 0
	lastProgress := -1
	for attempt := 0; attempt < o.MaxAttempts; attempt++ {
		backoff := s.backoff(attempt)
		s.rec.Inc(obs.MSupAttempts)

		a := Attempt{Index: attempt, Rung: rung, Backoff: backoff, AuditOK: true}
		as := s.rec.StartSpanInfo(obs.PhaseAttempt, obs.SpanInfo{Comp: fmt.Sprintf("attempt%d/%s", attempt, rung)})
		state, err := s.runAttempt(rung, attempt, &a)

		s.res.TotalInstalls += a.Installed
		s.res.ProgressCheckpoints += a.Checkpoints
		s.rec.Add(obs.MSupInstalls, int64(a.Installed))
		s.rec.Add(obs.MSupCheckpoints, int64(a.Checkpoints))
		if a.Crashed {
			s.res.CrashesInjected++
			s.rec.Inc(obs.MSupCrashes)
		}
		if errors.Is(err, errTransient) {
			s.res.TransientFaults++
			s.rec.Inc(obs.MSupTransient)
		}

		// The monotone measure: how much of the stable log the method's
		// redo test now considers installed. Non-installing methods keep
		// it pinned at zero (their recovery leaves the stable state
		// alone), which is trivially monotone. A measurement that itself
		// trips the method's invariants (grouplsn's redo test panics on a
		// partially-installed group) is media evidence, not a regression.
		progress := lastProgress
		measured := false
		mediaEvidence := false
		if s.res.InstallCapable {
			p, perr := installedCount(db)
			switch {
			case perr == nil:
				progress, measured = p, true
			case isMediaFault(perr):
				mediaEvidence = true
			default:
				as.End()
				s.dumpFlight()
				return s.res, fmt.Errorf("supervise: measuring progress after attempt %d: %w", attempt, perr)
			}
		} else {
			progress, measured = 0, true
		}
		a.Progress = progress
		if measured {
			s.rec.SetGauge(obs.GSupProgress, int64(progress))
			if lastProgress >= 0 && progress < lastProgress {
				a.Err = ErrProgressRegression.Error()
				s.res.Attempts = append(s.res.Attempts, a)
				as.End()
				s.dumpFlight()
				return s.res, fmt.Errorf("%w: %d after attempt %d, was %d", ErrProgressRegression, progress, attempt, lastProgress)
			}
			lastProgress = progress
		}

		if err == nil {
			a.Err = ""
			s.res.Attempts = append(s.res.Attempts, a)
			s.emitAttempt(a, "converged")
			as.End()
			s.res.Converged = true
			s.res.Rung = rung
			s.res.State = state
			s.rec.Inc(obs.MSupConverged)
			return s.res, nil
		}
		a.Err = err.Error()

		// Audit Corollary 4 at the crash point: the prefix recovery will
		// now skip must still explain the stable state. Only meaningful
		// for installing methods — a volatile attempt left no new state
		// behind — and deliberately tolerant: a failed audit is media
		// evidence, so it escalates rather than erroring.
		if !o.SkipAudit && s.res.InstallCapable {
			if ok, aerr := s.audit(); aerr != nil {
				as.End()
				s.dumpFlight()
				return s.res, fmt.Errorf("supervise: auditing after attempt %d: %w", attempt, aerr)
			} else if !ok {
				a.AuditOK = false
				s.res.AuditFailures++
			}
		}
		s.res.Attempts = append(s.res.Attempts, a)
		s.emitAttempt(a, "failed")
		as.End()
		// Freeze the events leading into this failure before the next
		// attempt's traffic overwrites the ring.
		if o.Flight != nil {
			o.Flight.Preserve(fmt.Sprintf("attempt %d on %s: %s", attempt, rung, a.Err))
		}

		if s.res.Unrecoverable {
			s.res.Rung = rung
			s.dumpFlight()
			return s.res, nil
		}

		// Escalation: media evidence jumps straight to the degraded
		// rung; repeated failures step one rung down.
		consecutive++
		target := rung
		if !a.AuditOK || mediaEvidence || isMediaFault(err) {
			target = RungDegraded
		} else if consecutive >= o.EscalateAfter {
			target = rung.next()
		}
		if target != rung {
			rung = target
			consecutive = 0
			s.res.Escalations++
			s.rec.Inc(obs.MSupEscalations)
			s.rec.Emit(obs.Event{Type: obs.EvRung, Detail: string(rung)})
		}
	}
	s.res.Rung = rung
	s.dumpFlight()
	return s.res, nil
}

// dumpFlight captures the terminal flight-recorder dump into the
// result (no-op without a flight ring).
func (s *session) dumpFlight() {
	if s.o.Flight != nil {
		s.res.Flight = s.o.Flight.Dump()
	}
}

// backoff sleeps the exponential jittered delay before attempt k (> 0)
// and returns it.
func (s *session) backoff(attempt int) time.Duration {
	if attempt == 0 {
		return 0
	}
	d := s.o.BackoffBase << (attempt - 1)
	if d > s.o.BackoffMax || d <= 0 {
		d = s.o.BackoffMax
	}
	d = time.Duration(float64(d) * (0.5 + 0.5*s.jitter.Float64()))
	s.rec.ObserveDuration(obs.MSupBackoff, d)
	s.res.BackoffTotal += d
	s.o.Sleep(d)
	return d
}

func (s *session) emitAttempt(a Attempt, outcome string) {
	if !s.rec.Sinking() {
		return
	}
	s.rec.Emit(obs.Event{Type: obs.EvAttempt,
		Detail: fmt.Sprintf("attempt %d on %s: %s (installed %d, progress %d)", a.Index, a.Rung, outcome, a.Installed, a.Progress)})
}

// runAttempt executes one attempt on the given rung. It returns the
// recovered state on success; any failure (injected crash, transient
// fault, deadline, engine error, recovered panic) returns an error. A
// panicking redo test — grouplsn's partially-installed-group invariant,
// tripped by pre-existing media damage — is converted into a media
// fault so the ladder lands on the degraded rung.
func (s *session) runAttempt(rung Rung, attempt int, a *Attempt) (state *model.State, err error) {
	start := s.o.Clock()
	s.deadline = time.Time{}
	if s.o.PhaseDeadline > 0 {
		s.deadline = start.Add(s.o.PhaseDeadline)
	}
	defer func() {
		if p := recover(); p != nil {
			state, err = nil, &mediaFaultError{reason: fmt.Sprintf("recovery panicked: %v", p)}
		}
	}()

	crashAfter := s.o.Crashes.point(attempt)

	if rung == RungDegraded {
		return s.runDegraded(crashAfter, a)
	}

	if !s.res.InstallCapable {
		// Volatile recovery: a nested crash simply discards the attempt.
		if crashAfter >= 0 {
			a.Crashed = true
			return nil, errNestedCrash
		}
		if rung == RungParallel {
			par, perr := method.RecoverParallel(s.db, method.ParallelOptions{Workers: s.o.Workers, Recorder: s.rec})
			if perr != nil {
				return nil, perr
			}
			if derr := s.checkDeadline(); derr != nil {
				return nil, derr
			}
			return par.State, nil
		}
		res, rerr := method.RecoverObserved(s.db, s.rec)
		if rerr != nil {
			return nil, rerr
		}
		if derr := s.checkDeadline(); derr != nil {
			return nil, derr
		}
		return res.State, nil
	}

	// Installing rungs. The parallel rung computes the outcome with the
	// partitioned engine first and cross-checks the installed result
	// against it — a divergence fails the attempt (and, repeated, walks
	// the ladder down to the simpler machinery).
	var target *model.State
	if rung == RungParallel {
		par, perr := method.RecoverParallel(s.db, method.ParallelOptions{Workers: s.o.Workers, Recorder: s.rec})
		if perr != nil {
			return nil, perr
		}
		target = par.State
		if derr := s.checkDeadline(); derr != nil {
			return nil, derr
		}
	}
	if ierr := s.runInstalling(crashAfter, a); ierr != nil {
		return nil, ierr
	}
	final := s.db.StableState()
	if target != nil && !final.Equal(target) {
		return nil, fmt.Errorf("supervise: installing pass diverged from the parallel engine's outcome")
	}
	return final, nil
}

// runDegraded runs the degraded rung, mapping the nested-crash point
// onto its abort-after-repairs knob.
func (s *session) runDegraded(crashAfter int, a *Attempt) (*model.State, error) {
	opts := method.RunToCompletion()
	if crashAfter >= 0 {
		opts = method.DegradedOptions{AbortAfterRepairs: crashAfter}
	}
	deg, err := method.RecoverDegraded(s.db, opts)
	if err != nil {
		return nil, err
	}
	s.res.Degraded = deg
	if deg.Unrecoverable {
		s.res.Unrecoverable = true
		return nil, fmt.Errorf("supervise: degraded recovery declared the damage unrecoverable")
	}
	if deg.Aborted {
		a.Crashed = true
		return nil, errNestedCrash
	}
	if derr := s.checkDeadline(); derr != nil {
		return nil, derr
	}
	return deg.State, nil
}

// runInstalling is the supervised installing pass: RecoverInstalling's
// in-order replay-and-persist loop with the supervisor's crash point,
// transient-fault stream, per-record deadline checks, and periodic
// progress checkpoints layered in. Installs happen at whole-record
// granularity — a faulted install aborts before any of the record's
// pages are written, so multi-page atomic groups are never torn by the
// supervisor itself.
func (s *session) runInstalling(crashAfter int, a *Attempt) error {
	inst, ok := s.db.(method.Installer)
	if !ok {
		return fmt.Errorf("supervise: %s does not support installing recovery", s.db.Name())
	}
	pc, _ := s.db.(method.ProgressCheckpointer)

	state := s.db.StableState()
	log := s.db.StableLog()
	checkpoint := s.db.Checkpointed()
	redo := s.db.RedoTest()
	analyze := s.db.Analyze()

	// One span per fuzzy-checkpointed install batch: opened lazily at
	// the batch's first install, closed when its progress checkpoint is
	// appended (or, via the defer, when the attempt ends mid-batch — a
	// crash point leaves the batch span closed just before the failure
	// surfaces, so flight snapshots show which batch died).
	var bs *obs.Span
	batch := 0
	defer func() { bs.End() }()

	var analysis core.Analysis
	for _, r := range log.Records() {
		if checkpoint.Has(r.Op.ID()) {
			continue
		}
		if err := s.checkDeadline(); err != nil {
			return err
		}
		if analyze != nil {
			analysis = analyze(state, log, nil, analysis)
		}
		if !redo(r.Op, state, log, analysis) {
			continue
		}
		if crashAfter >= 0 && a.Installed >= crashAfter {
			a.Crashed = true
			return errNestedCrash
		}
		if s.o.TransientFaultRate > 0 && s.faults.Float64() < s.o.TransientFaultRate {
			return errTransient
		}
		if bs == nil && s.rec.Sinking() {
			bs = s.rec.StartSpanInfo(obs.PhaseInstall, obs.SpanInfo{
				Comp: fmt.Sprintf("batch%d", batch), Size: s.o.ProgressEvery})
		}
		ws, err := state.Apply(r.Op)
		if err != nil {
			return fmt.Errorf("supervise: replaying %s: %w", r.Op, err)
		}
		for x, v := range ws {
			inst.InstallPage(x, v, r.LSN)
		}
		a.Installed++
		if pc != nil && s.o.ProgressEvery > 0 && a.Installed%s.o.ProgressEvery == 0 {
			pc.AppendProgressCheckpoint(r.LSN + 1)
			a.Checkpoints++
			bs.End()
			bs, batch = nil, batch+1
		}
	}
	return nil
}

func (s *session) checkDeadline() error {
	if !s.deadline.IsZero() && s.o.Clock().After(s.deadline) {
		return errDeadline
	}
	return nil
}

// audit re-checks the Recovery Invariant over the current survivors:
// the checkpoint-skipped prefix must explain the stable state. A panic
// out of the method's redo machinery counts as a failed audit (it is
// evidence of damage the escalation path should see, not a crash).
func (s *session) audit() (ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			ok, err = false, nil
		}
	}()
	log := s.db.StableLog()
	checker, cerr := core.NewCheckerObserved(log, s.db.RecoveryBase(), s.rec)
	if cerr != nil {
		return false, cerr
	}
	rep := checker.Check(s.db.StableState(), log, s.db.Checkpointed(), s.db.RedoTest(), s.db.Analyze(), false)
	return rep.OK, nil
}

// installedCount is the monotone-progress measure: the stable-logged
// operations the method's redo machinery (checkpoint set plus redo
// test) now considers installed. It can only grow — page LSNs and
// checkpoint bounds advance, never retreat. A panicking redo test is
// surfaced as a media fault.
func installedCount(db method.DB) (n int, err error) {
	defer func() {
		if p := recover(); p != nil {
			n, err = 0, &mediaFaultError{reason: fmt.Sprintf("progress measurement panicked: %v", p)}
		}
	}()
	log := db.StableLog()
	redoSet, rerr := core.PredictRedoSet(db.StableState(), log, db.Checkpointed(), db.RedoTest(), db.Analyze())
	if rerr != nil {
		return 0, rerr
	}
	return log.Len() - len(redoSet), nil
}

// mediaFaultError marks attempt failures that should route straight to
// the degraded rung.
type mediaFaultError struct{ reason string }

func (e *mediaFaultError) Error() string { return "supervise: media fault: " + e.reason }

// isMediaFault reports whether the attempt error is evidence of media
// damage rather than a transient condition: a recovered recovery panic,
// a torn atomic group, or a corrupt log record.
func isMediaFault(err error) bool {
	var mf *mediaFaultError
	if errors.As(err, &mf) {
		return true
	}
	if storage.IsTorn(err) {
		return true
	}
	var corrupt *wal.CorruptRecordError
	return errors.As(err, &corrupt)
}
