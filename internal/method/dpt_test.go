package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/model"
)

func TestDPTRecoversAcrossCrashPoints(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewPhysiologicalDPT(s) }, singlePageMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDPTSkipsInstalledWork(t *testing.T) {
	// Flush a page, checkpoint, keep another page dirty: recovery must
	// skip the flushed page's operations via the table alone.
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysiologicalDPT(s0)
	// Dirty both pages.
	if err := db.Exec(singlePageOp(1, ps[0])); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(singlePageOp(2, ps[1])); err != nil {
		t.Fatal(err)
	}
	// Install page 0 only, then checkpoint: the DPT lists only page 1.
	if err := db.cache.Flush(ps[0]); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More work on page 1 after the checkpoint.
	if err := db.Exec(singlePageOp(3, ps[1])); err != nil {
		t.Fatal(err)
	}
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Fatal("state wrong")
	}
	// Op 1 is below the checkpoint bound? The bound is min recLSN of
	// dirty pages = op 2's LSN, so op 1 is checkpoint-covered and ops 2,3
	// are replayed. The DPT's job shows on histories where installed
	// pages interleave past the bound; assert it at least recovered and
	// that the redo set is exactly {2,3}.
	if len(res.RedoSet) != 2 || !res.RedoSet.Has(2) || !res.RedoSet.Has(3) {
		t.Errorf("redo set = %v, want {2,3}", res.RedoSet)
	}
}

func TestDPTSkipCounterFires(t *testing.T) {
	// Exercise both pure-DPT skip paths. Pages: Q pins the checkpoint
	// bound at LSN 1; R is written once (LSN 2), flushed, and never
	// touched again — clean at checkpoint, absent from the reconstructed
	// table, so op 2 is skipped without a page read; P is written (LSN
	// 3), flushed, and re-dirtied (LSN 4), so its snapshot recLSN is 4
	// and op 3 (< 4) is skipped by the table too.
	q, r, p := pages(3)[0], pages(3)[1], pages(3)[2]
	s0 := initialState(pages(3))
	db := NewPhysiologicalDPT(s0)
	mustExec := func(id model.OpID, pg model.Var) {
		t.Helper()
		if err := db.Exec(singlePageOp(id, pg)); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(1, q) // Q dirty, recLSN 1 — the bound
	mustExec(2, r)
	if err := db.cache.Flush(r); err != nil {
		t.Fatal(err)
	}
	mustExec(3, p)
	if err := db.cache.Flush(p); err != nil {
		t.Fatal(err)
	}
	mustExec(4, p) // P re-dirtied: snapshot recLSN 4
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Fatal("state wrong")
	}
	if len(res.RedoSet) != 2 || !res.RedoSet.Has(1) || !res.RedoSet.Has(4) {
		t.Errorf("redo set = %v, want {1,4}", res.RedoSet)
	}
	if db.DPTSkips < 2 {
		t.Errorf("DPT skips = %d, want both op 2 (clean page) and op 3 (below snapshot recLSN)", db.DPTSkips)
	}
}

func TestDPTCrashDuringRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := pages(4)
	s0 := initialState(ps)
	db := NewPhysiologicalDPT(s0)
	for i := 1; i <= 20; i++ {
		if err := db.Exec(singlePageMk(model.OpID(i*10), rng, ps)); err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(4) {
		case 0:
			db.FlushOne()
		case 1:
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.FlushLog()
	db.Crash()
	final := crashingRecoveryToFixpoint(t, db, s0, rng)
	if !final.Equal(oracle(db, s0)) {
		t.Error("fixpoint diverges from oracle")
	}
}
