package method

import (
	"fmt"

	"redotheory/internal/cache"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// GenLSN implements Section 6.4, generalized LSN-based recovery: logged
// operations may read pages other than the one they write (each still
// writes exactly one page, so single-page atomic installs suffice). Every
// written page is tagged with the operation's LSN, and the redo test is
// the page-LSN comparison, as in physiological recovery. What changes is
// the cache manager's obligation: a read-write conflict from operation O
// (read r, write w) to a later writer of r becomes a write graph edge —
// page w must be installed before page r's overwrite — and the method
// registers exactly those "careful write" dependencies with the cache.
// This is what lets a B-tree split log "read old page, write new page"
// instead of physically logging the moved half (Figure 8).
type GenLSN struct {
	*base
	// readersSince tracks, per page, the operations that read the page's
	// current version: LSN plus the page each one wrote. A later write of
	// the page turns each entry into a flush dependency.
	readersSince map[model.Var][]readerRef
}

type readerRef struct {
	lsn       core.LSN
	wrotePage model.Var
}

// NewGenLSN returns a generalized-LSN DB over the initial state.
func NewGenLSN(initial *model.State) *GenLSN {
	return &GenLSN{base: newBase(initial), readersSince: make(map[model.Var][]readerRef)}
}

// NewGenLSNMV returns a generalized-LSN DB whose cache retains multiple
// page versions (Section 1.3's multi-version regimes): when careful
// write-order dependencies form a cycle over the newest page versions —
// operations reading each other's pages crosswise — the cache can still
// make installation progress by flushing older versions, which
// corresponds to not collapsing the page's write graph nodes.
func NewGenLSNMV(initial *model.State) *GenLSN {
	return &GenLSN{base: newBaseMV(initial), readersSince: make(map[model.Var][]readerRef)}
}

// Name returns "genlsn" (or "genlsn+mv" for the multi-version variant).
func (d *GenLSN) Name() string {
	if d.cache.MultiVersion() {
		return "genlsn+mv"
	}
	return "genlsn"
}

// Exec runs a generalized operation: exactly one written page, any read
// pages. It logs a short logical descriptor (no after-images), applies
// the write to the cache, and registers the careful-write dependencies
// induced by the read-write edges ending at this operation.
func (d *GenLSN) Exec(op *model.Op) error {
	if len(op.Writes()) != 1 {
		return fmt.Errorf("genlsn: %s writes %d pages, want exactly 1", op, len(op.Writes()))
	}
	page := op.Writes()[0]
	ws, err := d.computeThrough(op)
	if err != nil {
		return err
	}
	rec := d.log.Append(op, recordSize(op, ws))

	// Read-write edges into this operation: every reader of page's
	// current version that wrote some other page w must have w installed
	// before page carries this operation's effects on disk. (A reader
	// that wrote page itself is ordered by the page's own LSN chain.)
	for _, ref := range d.readersSince[page] {
		if ref.wrotePage != page {
			d.cache.AddDep(cache.Dep{
				Prereq:    ref.wrotePage,
				PrereqLSN: ref.lsn,
				Dependent: page,
				DepLSN:    rec.LSN,
			})
		}
	}
	d.readersSince[page] = nil

	// Record this operation as a reader of the current version of every
	// page it read (including its own page, before the write applies).
	for _, r := range op.Reads() {
		if r == page {
			continue
		}
		d.readersSince[r] = append(d.readersSince[r], readerRef{lsn: rec.LSN, wrotePage: page})
	}

	d.cache.ApplyWrite(page, ws[page], rec.LSN)
	d.noteExec()
	return nil
}

// FlushOne installs one dirty page whose careful-write dependencies and
// WAL gate allow it; the multi-version variant may install an older
// version of an otherwise blocked page.
func (d *GenLSN) FlushOne() bool {
	if d.cache.MultiVersion() {
		return d.flushFirstEligibleBest()
	}
	return d.flushFirstEligible()
}

// Checkpoint takes the same fuzzy checkpoint as physiological recovery:
// the minimum recLSN of the dirty pages bounds the redo scan, because an
// operation below the bound has its written page already installed.
func (d *GenLSN) Checkpoint() error {
	bound, dirty := d.cache.MinRecLSN()
	if !dirty {
		bound = d.log.NextLSN()
	}
	d.log.AppendCheckpoint(bound)
	d.noteCheckpoint()
	return nil
}

// Checkpointed returns the stable-logged operations below the stable
// checkpoint bound.
func (d *GenLSN) Checkpointed() graph.Set[model.OpID] {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return graph.NewSet[model.OpID]()
	}
	return checkpointedUpTo(d.StableLog(), ck.Payload.(core.LSN))
}

// RedoTest is the generalized page-LSN test: redo iff the written page's
// LSN is below the operation's. A replayed operation re-reads its read
// pages from the recovering state; the careful write order guarantees it
// observes exactly what it observed during normal execution.
func (d *GenLSN) RedoTest() core.RedoTest {
	lsns := d.store.LSNs()
	return func(op *model.Op, _ *model.State, log *core.Log, _ core.Analysis) bool {
		page := op.Writes()[0]
		lsn := log.RecordOf(op.ID()).LSN
		if lsn <= lsns[page] {
			return false
		}
		lsns[page] = lsn
		return true
	}
}

// Analyze returns nil.
func (d *GenLSN) Analyze() core.AnalyzeFunc { return nil }

// CarefulWriteOrder is true: the read-write deps registered in Exec are
// exactly the install-order contract RedoTest's re-reads rely on.
func (d *GenLSN) CarefulWriteOrder() bool { return true }

// Stats reports the method's counters.
func (d *GenLSN) Stats() Stats { return d.stats() }

// Crash discards volatile state including the reader tracking.
func (d *GenLSN) Crash() {
	d.base.Crash()
	d.readersSince = make(map[model.Var][]readerRef)
}

var _ DB = (*GenLSN)(nil)
