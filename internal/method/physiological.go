package method

import (
	"fmt"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// Physiological implements Section 6.3: every operation reads and writes
// exactly one page, each page is tagged with the LSN of its last update,
// pages are installed one at a time (collapsing the page's write graph
// node into the stable minimum node), and the redo test compares the
// operation's LSN with the page's LSN. Checkpoints are fuzzy: the
// checkpoint records the minimum recLSN of the dirty pages, and every
// operation logged below that bound is already installed.
type Physiological struct {
	*base
}

// NewPhysiological returns a physiological-recovery DB over the initial
// state.
func NewPhysiological(initial *model.State) *Physiological {
	return &Physiological{base: newBase(initial)}
}

// Name returns "physiological".
func (d *Physiological) Name() string { return "physiological" }

// Exec runs a physiological operation: it must access exactly one page
// (its write set is one page, and its read set is empty or that same
// page).
func (d *Physiological) Exec(op *model.Op) error {
	if len(op.Writes()) != 1 {
		return fmt.Errorf("physiological: %s writes %d pages, want exactly 1", op, len(op.Writes()))
	}
	page := op.Writes()[0]
	if len(op.Reads()) > 1 || (len(op.Reads()) == 1 && op.Reads()[0] != page) {
		return fmt.Errorf("physiological: %s reads %v, may only read its own page %q", op, op.Reads(), page)
	}
	ws, err := d.computeThrough(op)
	if err != nil {
		return err
	}
	rec := d.log.Append(op, recordSize(op, ws))
	d.cache.ApplyWrite(page, ws[page], rec.LSN)
	d.noteExec()
	return nil
}

// FlushOne installs one dirty page (no ordering constraints exist:
// single-page operations put no edges between page nodes, Section 6.3).
func (d *Physiological) FlushOne() bool { return d.flushFirstEligible() }

// Checkpoint takes a fuzzy checkpoint: it records the minimum recLSN of
// the dirty pages (or the log end when clean) without flushing anything.
// Operations below the bound are installed, so recovery may ignore them.
func (d *Physiological) Checkpoint() error {
	bound, dirty := d.cache.MinRecLSN()
	if !dirty {
		bound = d.log.NextLSN()
	}
	d.log.AppendCheckpoint(bound)
	d.noteCheckpoint()
	return nil
}

// Checkpointed returns the stable-logged operations below the stable
// checkpoint's recLSN bound.
func (d *Physiological) Checkpointed() graph.Set[model.OpID] {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return graph.NewSet[model.OpID]()
	}
	return checkpointedUpTo(d.StableLog(), ck.Payload.(core.LSN))
}

// RedoTest returns the page-LSN test of Section 6.3: redo an operation
// iff its LSN exceeds the LSN tagging its page. The test tracks page
// LSNs as it admits operations, starting from the stable tags, so later
// operations on a redone page still compare correctly.
func (d *Physiological) RedoTest() core.RedoTest {
	lsns := d.store.LSNs()
	return func(op *model.Op, _ *model.State, log *core.Log, _ core.Analysis) bool {
		page := op.Writes()[0]
		lsn := log.RecordOf(op.ID()).LSN
		if lsn <= lsns[page] {
			return false // already installed; bypass
		}
		lsns[page] = lsn
		return true
	}
}

// Analyze returns nil: the page-LSN test needs no analysis phase beyond
// the checkpoint bound already consumed by Checkpointed.
func (d *Physiological) Analyze() core.AnalyzeFunc { return nil }

// Stats reports the method's counters.
func (d *Physiological) Stats() Stats { return d.stats() }

var _ DB = (*Physiological)(nil)
