package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/model"
)

// oracle applies the stable-logged operations in LSN order to the initial
// state: the state determined by the surviving log's conflict graph,
// which recovery must reconstruct.
func oracle(db DB, initial *model.State) *model.State {
	s := initial.Clone()
	for _, op := range db.StableLog().Ops() {
		s.MustApply(op)
	}
	return s
}

func pages(n int) []model.Var {
	out := make([]model.Var, n)
	for i := range out {
		out[i] = model.Var(string(rune('a' + i)))
	}
	return out
}

// singlePageOp builds a physiological-legal op: read page p, write page p.
func singlePageOp(id model.OpID, p model.Var) *model.Op {
	return model.ReadWrite(id, "upd", []model.Var{p}, []model.Var{p})
}

func initialState(ps []model.Var) *model.State {
	s := model.NewState()
	for i, p := range ps {
		s.SetInt(p, int64(100+i))
	}
	return s
}

func TestPhysiologicalBasicCrashRecover(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushOne() // install one page (forces log through its LSN)
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle(db, s0); !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
}

func TestPhysiologicalRejectsMultiPageOps(t *testing.T) {
	db := NewPhysiological(model.NewState())
	multi := model.ReadWrite(1, "bad", nil, []model.Var{"a", "b"})
	if err := db.Exec(multi); err == nil {
		t.Error("multi-page op accepted")
	}
	crossRead := model.ReadWrite(2, "bad2", []model.Var{"a"}, []model.Var{"b"})
	if err := db.Exec(crossRead); err == nil {
		t.Error("cross-page read accepted by physiological")
	}
}

func TestPhysiologicalRedoTestSkipsInstalled(t *testing.T) {
	ps := pages(1)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	op := singlePageOp(1, ps[0])
	if err := db.Exec(op); err != nil {
		t.Fatal(err)
	}
	db.FlushOne() // page installed with LSN 1
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RedoSet) != 0 {
		t.Errorf("installed op replayed: %v", res.RedoSet)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestPhysiologicalFuzzyCheckpointBoundsScan(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 4; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%2])); err != nil {
			t.Fatal(err)
		}
	}
	// Install everything, then checkpoint: bound = log end.
	for db.FlushOne() {
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(singlePageOp(5, ps[0])); err != nil {
		t.Fatal(err)
	}
	db.FlushLog()
	db.Crash()
	if ck := db.Checkpointed(); len(ck) != 4 {
		t.Errorf("checkpointed = %v, want 4 ops", ck)
	}
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Examined != 1 {
		t.Errorf("examined = %d, want 1 (scan starts after checkpoint bound)", res.Examined)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestPhysicalAfterImageLogging(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysical(s0)
	// A system op that writes two pages becomes two blind log records.
	op := model.ReadWrite(1, "sys", []model.Var{ps[0]}, []model.Var{ps[0], ps[1]})
	if err := db.Exec(op); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().LogRecords; got != 2 {
		t.Errorf("log records = %d, want 2 (one per page)", got)
	}
	for _, r := range db.StableLog().Records() {
		_ = r
	}
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	want := s0.Clone()
	want.MustApply(op)
	if !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
}

func TestPhysicalCheckpointInstallsAtomically(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysical(s0)
	for i := 1; i <= 3; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%2])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if len(db.Checkpointed()) != 3 {
		t.Errorf("checkpointed = %d ops, want 3", len(db.Checkpointed()))
	}
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RedoSet) != 0 {
		t.Error("checkpoint-covered ops replayed")
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestPhysicalStealIsSafe(t *testing.T) {
	// Flush pages aggressively with no checkpoint: replay-all must still
	// be correct because after-images are idempotent.
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysical(s0)
	for i := 1; i <= 4; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%2])); err != nil {
			t.Fatal(err)
		}
		db.FlushOne()
	}
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong after steal + replay-all")
	}
}

func TestLogicalWholeDatabaseOps(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewLogical(s0)
	// Logical ops may read and write everything.
	op1 := model.ReadWrite(1, "sweep", ps, ps)
	if err := db.Exec(op1); err != nil {
		t.Fatal(err)
	}
	if db.FlushOne() {
		t.Error("logical recovery must not steal")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	op2 := model.ReadWrite(2, "sweep2", ps, ps)
	if err := db.Exec(op2); err != nil {
		t.Fatal(err)
	}
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RedoSet) != 1 || !res.RedoSet.Has(2) {
		t.Errorf("redo set = %v, want {2}", res.RedoSet)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestLogicalStableStateFrozenBetweenCheckpoints(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewLogical(s0)
	if err := db.Exec(model.ReadWrite(1, "w", ps, []model.Var{ps[0]})); err != nil {
		t.Fatal(err)
	}
	if !db.StableState().Equal(s0) {
		t.Error("stable state changed without a checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.StableState().Equal(s0) {
		t.Error("checkpoint did not install the update")
	}
}

func TestGenLSNCarefulWriteOrder(t *testing.T) {
	// Figure 8: P reads x writes y, then Q writes x. The cache must
	// install y before x.
	s0 := model.StateOf(map[model.Var]model.Value{"x": "full-page"})
	db := NewGenLSN(s0)
	p := model.ReadWrite(1, "split", []model.Var{"x"}, []model.Var{"y"})
	q := model.ReadWrite(2, "truncate", []model.Var{"x"}, []model.Var{"x"})
	if err := db.Exec(p); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	// FlushOne must pick y first: x is blocked by the dependency.
	if !db.FlushOne() {
		t.Fatal("no page flushable")
	}
	if db.store.PageLSN("y") != 1 {
		t.Fatalf("first flush installed %v, want y (new page before old)", db.store.LSNs())
	}
	if !db.FlushOne() {
		t.Fatal("x should be flushable after y")
	}
	if db.store.PageLSN("x") != 2 {
		t.Error("x not installed after y")
	}
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestGenLSNRecoversWithNewPageInstalledOnly(t *testing.T) {
	// Install only the new page y, crash: Q (uninstalled) must replay
	// against the still-intact old page x; P (installed) is bypassed.
	s0 := model.StateOf(map[model.Var]model.Value{"x": "full-page"})
	db := NewGenLSN(s0)
	p := model.ReadWrite(1, "split", []model.Var{"x"}, []model.Var{"y"})
	q := model.ReadWrite(2, "truncate", []model.Var{"x"}, []model.Var{"x"})
	if err := db.Exec(p); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	db.FlushOne() // installs y (forces log through LSN 1)
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.RedoSet.Has(1) {
		t.Error("installed split op replayed")
	}
	if !res.RedoSet.Has(2) {
		t.Error("uninstalled truncate not replayed")
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Errorf("recovered %v, want %v", res.State, oracle(db, s0))
	}
}

func TestGenLSNRejectsMultiWrite(t *testing.T) {
	db := NewGenLSN(model.NewState())
	if err := db.Exec(model.ReadWrite(1, "bad", nil, []model.Var{"a", "b"})); err == nil {
		t.Error("multi-write op accepted")
	}
}

// crashDance drives a DB through a random schedule of operations,
// flushes, checkpoints, and log forces, then crashes and verifies
// recovery against the oracle.
func crashDance(t *testing.T, rng *rand.Rand, mk func(*model.State) DB, mkOp func(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op) bool {
	ps := pages(4)
	s0 := initialState(ps)
	db := mk(s0)
	n := 5 + rng.Intn(20)
	for i := 1; i <= n; i++ {
		if err := db.Exec(mkOp(model.OpID(i*10), rng, ps)); err != nil {
			t.Fatalf("%s: exec: %v", db.Name(), err)
		}
		switch rng.Intn(5) {
		case 0:
			db.FlushOne()
		case 1:
			db.FlushLog()
		case 2:
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("%s: checkpoint: %v", db.Name(), err)
			}
		}
	}
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatalf("%s: recover: %v", db.Name(), err)
	}
	return res.State.Equal(oracle(db, s0))
}

func singlePageMk(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op {
	return singlePageOp(id, ps[rng.Intn(len(ps))])
}

func readManyWriteOneMk(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op {
	var reads []model.Var
	for _, p := range ps {
		if rng.Float64() < 0.4 {
			reads = append(reads, p)
		}
	}
	return model.ReadWrite(id, "rw1", reads, []model.Var{ps[rng.Intn(len(ps))]})
}

func anyShapeMk(id model.OpID, rng *rand.Rand, ps []model.Var) *model.Op {
	var reads, writes []model.Var
	for _, p := range ps {
		if rng.Float64() < 0.4 {
			reads = append(reads, p)
		}
		if rng.Float64() < 0.4 {
			writes = append(writes, p)
		}
	}
	if len(writes) == 0 {
		writes = []model.Var{ps[rng.Intn(len(ps))]}
	}
	return model.ReadWrite(id, "any", reads, writes)
}

func TestCrashRecoveryPropertyPhysiological(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewPhysiological(s) }, singlePageMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCrashRecoveryPropertyPhysical(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewPhysical(s) }, anyShapeMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCrashRecoveryPropertyLogical(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewLogical(s) }, anyShapeMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCrashRecoveryPropertyGenLSN(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewGenLSN(s) }, readManyWriteOneMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	ps := pages(2)
	db := NewPhysiological(initialState(ps))
	if err := db.Exec(singlePageOp(1, ps[0])); err != nil {
		t.Fatal(err)
	}
	db.FlushOne()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.OpsExecuted != 1 || st.LogRecords != 1 || st.PageFlushes != 1 || st.Checkpoints != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LogBytes <= 0 {
		t.Error("log bytes not accounted")
	}
}
