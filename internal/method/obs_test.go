package method

import (
	"testing"
	"time"

	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/workload"
)

// TestRecoverParallelObservedCounters: the instrumented parallel engine
// must account for every record exactly once — examined splits into
// admitted plus skipped, replay counts what was admitted, the partition
// width histogram sums to the replayed records — and every phase of the
// pipeline must have a recorded duration. Workers increment shared
// counters concurrently, so running this under -race is the telemetry
// thread-safety proof.
func TestRecoverParallelObservedCounters(t *testing.T) {
	pages := workload.Pages(6)
	for _, f := range parallelFactories {
		f := f
		t.Run(f.name, func(t *testing.T) {
			ops, err := workload.ForMethod(f.name, 24, pages, 7)
			if err != nil {
				t.Fatal(err)
			}
			db := crashedDB(t, f.mk, ops, workload.InitialState(pages), len(ops), 700)

			rec := obs.New()
			if _, err := RecoverParallel(db, ParallelOptions{Workers: 8, Recorder: rec}); err != nil {
				t.Fatal(err)
			}

			examined := rec.CounterValue(obs.MRedoExamined)
			admitted := rec.CounterValue(obs.MRedoAdmitted)
			skipped := rec.CounterValue(obs.MRedoSkipped)
			if examined != admitted+skipped {
				t.Errorf("examined=%d != admitted=%d + skipped=%d", examined, admitted, skipped)
			}
			if got := rec.CounterValue(obs.MReplayRecords); got != admitted {
				t.Errorf("replay.records=%d, want admitted=%d", got, admitted)
			}
			if got := rec.CounterValue(obs.MPartitionPlans); got != 1 {
				t.Errorf("partition.plans=%d, want 1", got)
			}

			snap := rec.Snapshot()
			wh := snap.Sample(obs.MPartitionWidth)
			if wh.Sum != admitted {
				t.Errorf("width histogram sums to %d records, want %d", wh.Sum, admitted)
			}
			if int64(wh.Count) != rec.CounterValue(obs.MReplayComponents) {
				t.Errorf("width histogram has %d components, replay.components=%d",
					wh.Count, rec.CounterValue(obs.MReplayComponents))
			}
			for _, phase := range []obs.Phase{
				obs.PhaseScan, obs.PhaseAnalysis, obs.PhaseDecide,
				obs.PhasePartition, obs.PhaseReplay, obs.PhaseMerge,
			} {
				if h := snap.Duration("phase." + string(phase)); h.Count == 0 {
					t.Errorf("phase %q has no recorded duration", phase)
				}
			}
		})
	}
}

// TestRecoverParallelSpanNesting: the event stream's phase spans must
// form a well-nested causal tree — a root recover span opening a fresh
// trace, decide (with its per-record analysis spans) closing before
// partition opens, partition before replay, replay before merge, and
// every component span parented under the replay span with worker and
// size attribution.
func TestRecoverParallelSpanNesting(t *testing.T) {
	pages := workload.Pages(4)
	ops := workload.SinglePage(20, pages, 3, false)
	db := crashedDB(t, func(s *model.State) DB { return NewPhysiological(s) }, ops, workload.InitialState(pages), len(ops), 42)

	rec := obs.New()
	sink := &obs.MemorySink{}
	rec.SetSink(sink)
	if _, err := RecoverParallel(db, ParallelOptions{Workers: 4, Recorder: rec}); err != nil {
		t.Fatal(err)
	}

	events := sink.Events()
	if err := obs.CheckSpanNesting(events); err != nil {
		t.Fatalf("span nesting: %v", err)
	}
	if len(events) == 0 || events[0].Type != obs.EvTraceBegin {
		t.Fatalf("stream does not open with a trace-begin event")
	}
	// Coordinator phases in pipeline order; component spans are emitted
	// by concurrent workers, so only their parentage is deterministic.
	order := make([]obs.Phase, 0, 5)
	var rootID, replayID uint64
	components := 0
	for _, e := range events {
		if e.Type != obs.EvSpanBegin {
			continue
		}
		switch e.Phase {
		case obs.PhaseAnalysis:
		case obs.PhaseComponent:
			components++
			if e.Parent == 0 || e.Parent != replayID {
				t.Errorf("component span %d parented under %d, want replay span %d", e.Span, e.Parent, replayID)
			}
			if e.Worker < 1 || e.Size < 1 || e.Comp == "" {
				t.Errorf("component span missing attribution: %s", e)
			}
		default:
			order = append(order, e.Phase)
			switch e.Phase {
			case obs.PhaseRecover:
				rootID = e.Span
			case obs.PhaseReplay:
				replayID = e.Span
				if e.Parent != rootID {
					t.Errorf("replay span parented under %d, want root %d", e.Parent, rootID)
				}
			default:
				if e.Parent != rootID {
					t.Errorf("%s span parented under %d, want root %d", e.Phase, e.Parent, rootID)
				}
			}
		}
	}
	if components == 0 {
		t.Errorf("no component spans emitted")
	}
	want := []obs.Phase{obs.PhaseRecover, obs.PhaseDecide, obs.PhasePartition, obs.PhaseReplay, obs.PhaseMerge}
	if len(order) != len(want) {
		t.Fatalf("coordinator span order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("coordinator span order %v, want %v", order, want)
		}
	}
}

// TestRecoverObservedSequential: the instrumented Figure 6 procedure
// must agree with the plain one and leave a complete account — the
// umbrella recover span covers scan+analysis+replay, and the verdict
// events tell the same story as the counters.
func TestRecoverObservedSequential(t *testing.T) {
	ps := pages(3)
	db := NewPhysiological(initialState(ps))
	for i := 1; i <= 9; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			db.FlushOne()
		}
	}
	db.FlushLog()
	db.Crash()

	plain, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	sink := &obs.MemorySink{}
	rec.SetSink(sink)
	observed, err := RecoverObserved(db, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := observed.SameOutcome(plain); err != nil {
		t.Fatalf("observed recovery diverged from plain: %v", err)
	}

	admits, skips := 0, 0
	for _, e := range sink.Events() {
		switch e.Type {
		case obs.EvAdmit:
			admits++
		case obs.EvSkip:
			skips++
		}
	}
	if int64(admits) != rec.CounterValue(obs.MRedoAdmitted) {
		t.Errorf("%d admit events, counter says %d", admits, rec.CounterValue(obs.MRedoAdmitted))
	}
	if int64(skips) != rec.CounterValue(obs.MRedoSkipped)+rec.CounterValue(obs.MRedoCheckpointed) {
		t.Errorf("%d skip events, counters say %d skipped + %d checkpointed",
			skips, rec.CounterValue(obs.MRedoSkipped), rec.CounterValue(obs.MRedoCheckpointed))
	}
	if err := obs.CheckSpanNesting(sink.Events()); err != nil {
		t.Fatalf("span nesting: %v", err)
	}

	snap := rec.Snapshot()
	total := snap.Duration("phase." + string(obs.PhaseRecover)).Sum
	parts := snap.Duration("phase."+string(obs.PhaseScan)).Sum +
		snap.Duration("phase."+string(obs.PhaseAnalysis)).Sum +
		snap.Duration("phase."+string(obs.PhaseReplay)).Sum
	if total < parts {
		t.Errorf("recover span %v shorter than its parts %v", time.Duration(total), time.Duration(parts))
	}
}

// TestRecoverDegradedObserved: detections must surface as counted
// events, and the conservative path must account for its full replay.
func TestRecoverDegradedObserved(t *testing.T) {
	ps := pages(3)
	db := NewPhysiological(initialState(ps))
	rec := obs.New()
	sink := &obs.MemorySink{}
	rec.SetSink(sink)
	db.SetRecorder(rec)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
		db.FlushOne()
	}
	db.FlushLog()
	db.Crash()
	db.Store().CorruptPage(ps[0])

	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("expected the conservative path, got %+v", res)
	}
	if got := rec.CounterValue(obs.MDetections); got != int64(len(res.Detections)) {
		t.Errorf("detections counter %d, result lists %d", got, len(res.Detections))
	}
	if got := rec.CounterValue(obs.MDegradedRuns); got != 1 {
		t.Errorf("degraded.replays = %d, want 1", got)
	}
	detEvents := 0
	for _, e := range sink.Events() {
		if e.Type == obs.EvDetection {
			detEvents++
		}
	}
	if detEvents != len(res.Detections) {
		t.Errorf("%d detection events, result lists %d", detEvents, len(res.Detections))
	}
}
