package method

import (
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// PhysiologicalDPT is physiological recovery with an ARIES-style
// analysis phase (Section 4.3's "analysis phase usually happens at most
// once, at the start of recovery"): checkpoints snapshot the dirty page
// table (page → recLSN), recovery's analysis function rebuilds the table
// by scanning the log forward from the checkpoint, and the redo test
// consults it to skip operations without touching their pages at all —
// a page absent from the reconstructed table was clean at the
// checkpoint and never re-dirtied, so everything logged for it is
// installed; an operation below its page's recLSN predates the page's
// first post-flush update, so it is installed too. Only operations that
// survive both filters pay the page-LSN comparison.
type PhysiologicalDPT struct {
	*Physiological
	// DPTSkips counts redo-test rejections decided by the table alone,
	// without a page read — the metric the analysis phase exists to
	// improve.
	DPTSkips int
}

// dptCheckpoint is the checkpoint payload: the redo scan bound plus the
// dirty page table at checkpoint time.
type dptCheckpoint struct {
	bound core.LSN
	dpt   map[model.Var]core.LSN
}

// NewPhysiologicalDPT returns a physiological DB whose recovery runs an
// ARIES-style analysis phase.
func NewPhysiologicalDPT(initial *model.State) *PhysiologicalDPT {
	return &PhysiologicalDPT{Physiological: NewPhysiological(initial)}
}

// Name returns "physiological+dpt".
func (d *PhysiologicalDPT) Name() string { return "physiological+dpt" }

// Checkpoint records the fuzzy bound and a snapshot of the dirty page
// table.
func (d *PhysiologicalDPT) Checkpoint() error {
	bound, dirty := d.cache.MinRecLSN()
	if !dirty {
		bound = d.log.NextLSN()
	}
	dpt := make(map[model.Var]core.LSN)
	for _, id := range d.cache.DirtyPages() {
		// recLSN is not exported per page; the minimum bound plus the
		// page set is what ARIES needs — the per-page recLSN here is the
		// page's current LSN lower-bounded by the global bound, which is
		// conservative but correct. Use the page's recLSN via RecLSN.
		if lsn, ok := d.cache.RecLSN(id); ok {
			dpt[id] = lsn
		}
	}
	d.log.AppendCheckpoint(dptCheckpoint{bound: bound, dpt: dpt})
	d.noteCheckpoint()
	return nil
}

// Checkpointed returns the operations below the stable checkpoint's
// bound.
func (d *PhysiologicalDPT) Checkpointed() graph.Set[model.OpID] {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return graph.NewSet[model.OpID]()
	}
	return checkpointedUpTo(d.StableLog(), ck.Payload.(dptCheckpoint).bound)
}

// Analyze reconstructs the dirty page table: start from the checkpoint's
// snapshot and scan the stable log forward from the checkpoint position,
// entering each newly dirtied page with the dirtying record's LSN. The
// reconstruction runs once; later iterations thread it through.
func (d *PhysiologicalDPT) Analyze() core.AnalyzeFunc {
	ckPayload := dptCheckpoint{bound: 1, dpt: nil}
	at := core.LSN(1)
	if ck, ok := d.log.StableCheckpoint(); ok {
		ckPayload = ck.Payload.(dptCheckpoint)
		at = ck.AtLSN
	}
	return func(_ *model.State, log *core.Log, _ graph.Set[model.OpID], prev core.Analysis) core.Analysis {
		if prev != nil {
			return prev
		}
		dpt := make(map[model.Var]core.LSN, len(ckPayload.dpt))
		for p, lsn := range ckPayload.dpt {
			dpt[p] = lsn
		}
		for _, r := range log.Records() {
			if r.LSN < at {
				continue
			}
			page := r.Op.Writes()[0]
			if _, ok := dpt[page]; !ok {
				dpt[page] = r.LSN
			}
		}
		return dpt
	}
}

// CheckpointFloors returns the per-page installed-LSN floors the dirty
// page table implies, which are stronger than the scalar bound: a page
// absent from the table was clean at the checkpoint, so every record for
// it below the checkpoint's position is installed; a page present with
// recLSN r has everything below r installed. RedoTest skips on exactly
// these claims without reading the page, so degraded recovery must be
// able to audit them — a stable page below its floor is a lost write
// that the skip would otherwise preserve silently.
func (d *PhysiologicalDPT) CheckpointFloors() map[model.Var]core.LSN {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return nil
	}
	payload := ck.Payload.(dptCheckpoint)
	floors := make(map[model.Var]core.LSN)
	for _, r := range d.StableLog().Records() {
		if r.LSN >= ck.AtLSN {
			break
		}
		p := r.Op.Writes()[0]
		rec, dirty := payload.dpt[p]
		if (!dirty || r.LSN < rec) && r.LSN > floors[p] {
			floors[p] = r.LSN
		}
	}
	return floors
}

// RedoTest filters through the reconstructed table before falling back
// to the page-LSN comparison.
func (d *PhysiologicalDPT) RedoTest() core.RedoTest {
	lsns := d.store.LSNs()
	return func(op *model.Op, _ *model.State, log *core.Log, analysis core.Analysis) bool {
		page := op.Writes()[0]
		lsn := log.RecordOf(op.ID()).LSN
		if dpt, ok := analysis.(map[model.Var]core.LSN); ok {
			rec, dirty := dpt[page]
			if !dirty || lsn < rec {
				d.DPTSkips++
				return false
			}
		}
		if lsn <= lsns[page] {
			return false
		}
		lsns[page] = lsn
		return true
	}
}

var _ DB = (*PhysiologicalDPT)(nil)
