package method

import (
	"testing"

	"redotheory/internal/model"
)

// degradedOracle replays the (already repaired) surviving log from the
// recovery base: the state degraded recovery must reach.
func degradedOracle(db DB) *model.State {
	s := db.RecoveryBase()
	for _, op := range db.StableLog().Ops() {
		s.MustApply(op)
	}
	return s
}

func hasDetection(res *DegradedResult, code string) bool {
	for _, d := range res.Detections {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestDegradedCleanCrashIsFastPath(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushOne()
	db.FlushLog()
	db.Crash()
	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || len(res.Detections) != 0 || res.Unrecoverable {
		t.Fatalf("clean crash degraded: %+v", res)
	}
	if want := degradedOracle(db); !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
	if res.Audit == nil || !res.Audit.OK {
		t.Errorf("audit failed: %v", res.Audit.Summary())
	}
}

func TestDegradedTornTail(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	if n := db.WAL().TearStableTail(2); n != 2 {
		t.Fatalf("tore %d", n)
	}
	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !hasDetection(res, "torn-tail") {
		t.Fatalf("torn tail not degraded-detected: %+v", res)
	}
	if res.Unrecoverable {
		t.Fatal("pure torn tail must be recoverable (degraded)")
	}
	// The oracle is over the log as repaired: the torn suffix is gone.
	if db.StableLog().Len() != 4 {
		t.Fatalf("repaired log has %d records, want 4", db.StableLog().Len())
	}
	if want := degradedOracle(db); !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
	if res.Audit == nil || !res.Audit.OK {
		t.Errorf("audit failed: %v", res.Audit.Summary())
	}
}

func TestDegradedCorruptPageRepaired(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushOne()
	db.FlushLog()
	db.Crash()
	if !db.Store().CorruptPage(ps[0]) {
		t.Fatal("no page to corrupt")
	}
	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !hasDetection(res, "corrupt-page") {
		t.Fatalf("bit-rot not detected: %+v", res)
	}
	if len(res.Quarantined) == 0 || res.Quarantined[0] != ps[0] {
		t.Errorf("quarantined = %v, want [%s]", res.Quarantined, ps[0])
	}
	if want := degradedOracle(db); !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
	// The repair rewrote the rotted page with a fresh checksum.
	if bad := db.Store().VerifyAll(); len(bad) != 0 {
		t.Errorf("store still corrupt after repair: %v", bad)
	}
	if res.Audit == nil || !res.Audit.OK {
		t.Errorf("audit failed: %v", res.Audit.Summary())
	}
}

func TestDegradedStaleBelowCheckpointFloor(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 4; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%2])); err != nil {
			t.Fatal(err)
		}
	}
	// Install everything and checkpoint so the bound covers all four ops.
	for db.FlushOne() {
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	// Simulate a lost write revealed at crash: page a reverts to its
	// initial, checksum-valid version below the checkpoint floor.
	db.Store().Write(ps[0], s0.Get(ps[0]), 0)
	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !hasDetection(res, "stale-page") {
		t.Fatalf("stale page not detected: %+v", res)
	}
	if want := degradedOracle(db); !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
	if res.Audit == nil || !res.Audit.OK {
		t.Errorf("audit failed: %v", res.Audit.Summary())
	}
}

// TestDegradedCarefulOrderViolation: a lost write under genlsn reverts a
// page that a later-installed overwrite depended on. The page is
// checksum-valid and above every floor, so only the careful-write-order
// audit reconstructed from the log's read sets can catch it — and must,
// because genlsn's re-reading redo test would otherwise recompute from
// the stale value.
func TestDegradedCarefulOrderViolation(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewGenLSN(s0)
	ops := []*model.Op{
		model.ReadWrite(1, "u", []model.Var{ps[0]}, []model.Var{ps[0]}),
		model.ReadWrite(2, "u", []model.Var{ps[0], ps[1]}, []model.Var{ps[1]}),
		model.ReadWrite(3, "u", []model.Var{ps[0]}, []model.Var{ps[0]}),
	}
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	for db.FlushOne() {
	}
	db.Crash()
	// Simulate the lost write: page b reverts to its initial version —
	// checksum-valid, no checkpoint floor to fall below — while page a
	// keeps the overwrite (LSN 3) whose install careful order gated on b.
	db.Store().Write(ps[1], s0.Get(ps[1]), 0)
	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !hasDetection(res, "careful-order") {
		t.Fatalf("careful-order violation not detected: %+v", res)
	}
	if want := degradedOracle(db); !res.State.Equal(want) {
		t.Errorf("recovered %v, want %v", res.State, want)
	}
	if res.Audit == nil || !res.Audit.OK {
		t.Errorf("audit failed: %v", res.Audit.Summary())
	}
}

func TestDegradedOrphanIsUnrecoverable(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 3; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%2])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	// A page tagged past the end of the surviving log: its records are gone.
	db.Store().Write(ps[1], "phantom", 99)
	res, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unrecoverable || !hasDetection(res, "orphan-page") {
		t.Fatalf("orphan page not flagged unrecoverable: %+v", res)
	}
	if res.State != nil {
		t.Error("unrecoverable outcome still returned a state")
	}
}

func TestDegradedAbortedRepairConverges(t *testing.T) {
	ps := pages(4)
	s0 := initialState(ps)
	db := NewGroupLSN(s0)
	ops := []*model.Op{
		model.ReadWrite(1, "g", []model.Var{ps[0], ps[1]}, []model.Var{ps[0], ps[1]}),
		model.ReadWrite(2, "g", []model.Var{ps[2], ps[3]}, []model.Var{ps[2], ps[3]}),
		model.ReadWrite(3, "g", []model.Var{ps[0], ps[2]}, []model.Var{ps[0], ps[2]}),
	}
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	db.Store().CorruptPage(ps[0])
	// First attempt crashes after repairing a single page, leaving a
	// partially repaired store (possibly a partial multi-page install).
	first, err := RecoverDegraded(db, DegradedOptions{AbortAfterRepairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Aborted || first.State != nil {
		t.Fatalf("abort not honored: %+v", first)
	}
	// The rerun validates again — whatever the abort left behind must be
	// re-detected or already consistent — and converges.
	second, err := RecoverDegraded(db, RunToCompletion())
	if err != nil {
		t.Fatal(err)
	}
	if second.Aborted || second.Unrecoverable {
		t.Fatalf("rerun did not complete: %+v", second)
	}
	if want := degradedOracle(db); !second.State.Equal(want) {
		t.Errorf("rerun recovered %v, want %v", second.State, want)
	}
	if second.Audit == nil || !second.Audit.OK {
		t.Errorf("audit failed: %v", second.Audit.Summary())
	}
	if bad := db.Store().VerifyAll(); len(bad) != 0 {
		t.Errorf("store corrupt after converged repair: %v", bad)
	}
}

// TestDegradedAllMethodsCleanAndTorn sweeps every method variant through
// a clean crash and a torn-tail crash under RecoverDegraded.
func TestDegradedAllMethodsCleanAndTorn(t *testing.T) {
	type factory struct {
		name string
		make func(*model.State) DB
	}
	factories := []factory{
		{"logical", func(s *model.State) DB { return NewLogical(s) }},
		{"physical", func(s *model.State) DB { return NewPhysical(s) }},
		{"physiological", func(s *model.State) DB { return NewPhysiological(s) }},
		{"physiological+dpt", func(s *model.State) DB { return NewPhysiologicalDPT(s) }},
		{"genlsn", func(s *model.State) DB { return NewGenLSN(s) }},
		{"genlsn+mv", func(s *model.State) DB { return NewGenLSNMV(s) }},
		{"grouplsn", func(s *model.State) DB { return NewGroupLSN(s) }},
	}
	for _, f := range factories {
		for _, tear := range []int{0, 1} {
			ps := pages(3)
			s0 := initialState(ps)
			db := f.make(s0)
			for i := 1; i <= 6; i++ {
				if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
					t.Fatalf("%s: %v", f.name, err)
				}
			}
			db.FlushOne()
			db.FlushLog()
			db.Crash()
			db.WAL().TearStableTail(tear)
			res, err := RecoverDegraded(db, RunToCompletion())
			if err != nil {
				t.Fatalf("%s tear=%d: %v", f.name, tear, err)
			}
			if res.Unrecoverable {
				t.Fatalf("%s tear=%d: unrecoverable: %+v", f.name, tear, res)
			}
			if (tear > 0) != res.Degraded {
				t.Errorf("%s tear=%d: degraded=%v", f.name, tear, res.Degraded)
			}
			if want := degradedOracle(db); !res.State.Equal(want) {
				t.Errorf("%s tear=%d: recovered %v, want %v", f.name, tear, res.State, want)
			}
			if res.Audit == nil || !res.Audit.OK {
				t.Errorf("%s tear=%d: audit failed: %v", f.name, tear, res.Audit.Summary())
			}
		}
	}
}
