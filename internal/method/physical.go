package method

import (
	"fmt"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// Physical implements Section 6.2: the system operation is evaluated
// against the cache, but what reaches the log is one blind after-image
// write per updated page ("logging the exact bytes of data and the exact
// locations written"). Physical log operations read nothing, so the
// installation graph over the log has only write-write edges, every
// page's chain collapses to one node, and the redo test is trivial:
// replay everything since the last checkpoint. A checkpoint flushes all
// dirty pages and then writes the checkpoint record, atomically moving
// the covered operations out of redo_set; until then the variables those
// operations wrote are unexposed (nothing logged reads them), so early
// page flushes ("steal") are harmless.
type Physical struct {
	*base
	// nextID allocates ids for the physical log operations, which are
	// distinct from the system operations that generated them (the paper
	// stresses that the two operation sets "can be quite different").
	nextID model.OpID
}

// NewPhysical returns a physical-recovery DB over the initial state.
func NewPhysical(initial *model.State) *Physical {
	return &Physical{base: newBase(initial), nextID: 1}
}

// Name returns "physical".
func (d *Physical) Name() string { return "physical" }

// Exec evaluates the system operation against the cache and logs one
// blind after-image write per page it updated.
func (d *Physical) Exec(op *model.Op) error {
	ws, err := d.computeThrough(op)
	if err != nil {
		return err
	}
	for _, page := range op.Writes() {
		img := model.AssignConst(d.nextID, page, ws[page])
		d.nextID++
		rec := d.log.Append(img, recordSize(img, model.WriteSet{page: ws[page]}))
		d.cache.ApplyWrite(page, ws[page], rec.LSN)
	}
	d.noteExec()
	return nil
}

// FlushOne installs any dirty page; physical logging permits stealing at
// any time because uninstalled after-images keep their pages unexposed.
func (d *Physical) FlushOne() bool { return d.flushFirstEligible() }

// Checkpoint flushes every dirty page and then writes the checkpoint
// record. Writing the record atomically installs all operations logged
// before it (their effects are already stable) and removes them from
// redo_set, preserving the recovery invariant (Section 6.2).
func (d *Physical) Checkpoint() error {
	if err := d.cache.FlushAll(); err != nil {
		return fmt.Errorf("physical: checkpoint flush: %w", err)
	}
	d.log.AppendCheckpoint(d.log.NextLSN())
	d.noteCheckpoint()
	return nil
}

// Checkpointed returns every stable-logged operation below the stable
// checkpoint.
func (d *Physical) Checkpointed() graph.Set[model.OpID] {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return graph.NewSet[model.OpID]()
	}
	return checkpointedUpTo(d.StableLog(), ck.Payload.(core.LSN))
}

// RedoTest replays every non-checkpointed operation unconditionally:
// after-images are blind, so replay is idempotent and order within a page
// follows the log.
func (d *Physical) RedoTest() core.RedoTest {
	return func(*model.Op, *model.State, *core.Log, core.Analysis) bool { return true }
}

// Analyze returns nil; the checkpoint bound is the whole analysis.
func (d *Physical) Analyze() core.AnalyzeFunc { return nil }

// Stats reports the method's counters.
func (d *Physical) Stats() Stats { return d.stats() }

var _ DB = (*Physical)(nil)
