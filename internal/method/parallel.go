package method

import (
	"fmt"
	"runtime"
	"sync"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/partition"
)

// ParallelOptions configures RecoverParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size. 0 (or negative) means
	// runtime.GOMAXPROCS(0); 1 degenerates to sequential replay through
	// the same code path.
	Workers int
	// Verify additionally runs sequential Recover on an independent
	// clone and errors if the two outcomes differ — the equivalence
	// oracle, for tests and paranoid callers.
	Verify bool
	// Recorder, when non-nil, receives phase spans (decide, partition,
	// replay, merge), per-record redo verdicts, the partition width
	// histogram, and worker-side replay counters. Falls back to the DB's
	// attached recorder when nil.
	Recorder *obs.Recorder
}

// ParallelResult is a core recovery Result plus the plan that produced
// it.
type ParallelResult struct {
	*core.Result
	// Plan summarizes the partition (components, critical path).
	Plan partition.Stats
	// Workers is the pool size actually used.
	Workers int
}

// RecoverParallel runs redo recovery with partitioned, concurrent
// replay and produces the same outcome as sequential Recover (Figure 6):
//
//  1. Decision phase (sequential): scan the log exactly as Recover does,
//     running the method's analysis function and redo test, but applying
//     nothing. Sound because every method's redo test is state-blind —
//     it decides from LSNs and the log, never from the state replay is
//     rebuilding (core.DecideRedo documents the contract).
//  2. Partition: fuse the admitted records into interference components
//     (internal/partition). Components write disjoint variables and read
//     no variable another component writes, so they commute; inside a
//     component, LSN order is a topological order of the restricted
//     conflict graph. This is the installation-graph concurrency argument
//     of Theorem 3 extended with the write-read edges recomputation
//     needs (see partition's package comment and DESIGN.md §8).
//  3. Replay (parallel): a worker pool replays components concurrently.
//     Each worker reads the shared stable state (never written during
//     this phase) through a private overlay holding its component's
//     writes, then the overlays — disjoint by construction — merge into
//     the final state.
//
// Like Recover via the DB surface, it does not modify the crashed DB:
// it works on the fresh projections StableState, StableLog, and a fresh
// RedoTest return.
func RecoverParallel(db DB, opts ParallelOptions) (*ParallelResult, error) {
	rec := opts.Recorder
	if rec == nil {
		rec = db.Recorder()
	}
	state := db.StableState()
	log := db.StableLog()
	res, plan, err := recoverPartitioned(rec, state, log, db.Checkpointed(), db.RedoTest(), db.Analyze(), opts.Workers)
	if err != nil {
		return nil, err
	}
	out := &ParallelResult{Result: res, Plan: plan.Stats(), Workers: poolSize(opts.Workers, len(plan.Components))}
	if opts.Verify {
		seq, err := core.Recover(db.StableState(), log, db.Checkpointed(), db.RedoTest(), db.Analyze())
		if err != nil {
			return nil, fmt.Errorf("method: sequential verification recovery: %w", err)
		}
		if err := res.SameOutcome(seq); err != nil {
			return nil, fmt.Errorf("method: parallel recovery diverged from sequential: %w", err)
		}
	}
	return out, nil
}

// recoverPartitioned is the engine: decide, partition, replay.
func recoverPartitioned(rec *obs.Recorder, state *model.State, log *core.Log, checkpoint graph.Set[model.OpID], redo core.RedoTest, analyze core.AnalyzeFunc, workers int) (*core.Result, *partition.Plan, error) {
	decision := core.DecideRedoObserved(rec, state, log, checkpoint, redo, analyze)

	ps := rec.StartSpan(obs.PhasePartition)
	plan := partition.FromRecords(decision.Replay)
	ps.End()
	rec.Inc(obs.MPartitionPlans)
	for _, c := range plan.Components {
		rec.Observe(obs.MPartitionWidth, int64(len(c.Records)))
	}
	rec.SetGauge(obs.GPartitionLargest, int64(plan.MaxComponentLen()))

	if err := replayPlan(rec, state, plan, workers); err != nil {
		return nil, nil, err
	}

	res := &core.Result{
		State:     state,
		RedoSet:   decision.RedoSet,
		Installed: decision.Installed,
		Examined:  decision.Examined,
	}
	for _, r := range decision.Replay {
		res.Replayed = append(res.Replayed, r.Op.ID())
	}
	return res, plan, nil
}

// poolSize bounds the worker count by the available parallelism and the
// number of components.
func poolSize(workers, components int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if components < 1 {
		components = 1
	}
	if workers > components {
		workers = components
	}
	return workers
}

// replayError carries a replay failure with the LSN it occurred at, so
// concurrent failures resolve to the deterministic (smallest-LSN) one.
type replayError struct {
	lsn core.LSN
	err error
}

// replayPlan applies the plan's components to the state, components
// concurrently across a pool of workers, records inside a component in
// LSN order. Reads go through a per-component overlay over the shared
// base state; the base is never mutated until every worker has finished,
// then the disjoint overlays merge in.
func replayPlan(rec *obs.Recorder, state *model.State, plan *partition.Plan, workers int) error {
	if plan.Ops == 0 {
		// Record zero-duration replay/merge phases so every observed
		// recovery reports the full phase breakdown, admitted work or not.
		rec.ObserveDuration("phase."+string(obs.PhaseReplay), 0)
		rec.ObserveDuration("phase."+string(obs.PhaseMerge), 0)
		return nil
	}
	workers = poolSize(workers, len(plan.Components))

	rs := rec.StartSpan(obs.PhaseReplay)
	overlays := make([]model.WriteSet, len(plan.Components))
	work := make(chan int)
	errs := make(chan replayError, len(plan.Components))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				overlay, err := replayComponent(state, plan.Components[ci])
				if err.err != nil {
					errs <- err
					continue
				}
				rec.Inc(obs.MReplayComponents)
				rec.Add(obs.MReplayRecords, int64(len(plan.Components[ci].Records)))
				overlays[ci] = overlay
			}
		}()
	}
	for ci := range plan.Components {
		work <- ci
	}
	close(work)
	wg.Wait()
	close(errs)
	rs.End()

	var first *replayError
	for e := range errs {
		e := e
		if first == nil || e.lsn < first.lsn {
			first = &e
		}
	}
	if first != nil {
		return first.err
	}

	// Merge: overlays write disjoint variables, so any order works; use
	// component order for determinism anyway.
	ms := rec.StartSpan(obs.PhaseMerge)
	for _, overlay := range overlays {
		for x, v := range overlay {
			state.Set(x, v)
		}
	}
	ms.End()
	return nil
}

// replayComponent recomputes a component's operations in LSN order
// against the shared base state plus the component's own accumulated
// writes. The base is only read — concurrent with other workers' reads —
// and no variable this component reads is written by any other component
// (the partition invariant), so every read observes exactly the value
// sequential replay would have observed.
func replayComponent(base *model.State, c *partition.Component) (model.WriteSet, replayError) {
	overlay := make(model.WriteSet)
	for _, r := range c.Records {
		reads := make(model.ReadSet, len(r.Op.Reads()))
		for _, x := range r.Op.Reads() {
			if v, ok := overlay[x]; ok {
				reads[x] = v
			} else {
				reads[x] = base.Get(x)
			}
		}
		ws, err := r.Op.Compute(reads)
		if err != nil {
			return nil, replayError{lsn: r.LSN, err: fmt.Errorf("core: replaying %s: %w", r.Op, err)}
		}
		for x, v := range ws {
			overlay[x] = v
		}
	}
	return overlay, replayError{}
}
