package method

import (
	"fmt"
	"runtime"
	"sync"

	"redotheory/internal/core"
	"redotheory/internal/dense"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/partition"
)

// ParallelOptions configures RecoverParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size. 0 (or negative) means
	// runtime.GOMAXPROCS(0); 1 degenerates to sequential replay through
	// the same code path.
	Workers int
	// Verify additionally runs sequential Recover on an independent
	// clone and errors if the two outcomes differ — the equivalence
	// oracle, for tests and paranoid callers.
	Verify bool
	// Recorder, when non-nil, receives phase spans (decide, partition,
	// replay, merge), per-record redo verdicts, the partition width
	// histogram, and worker-side replay counters. Falls back to the DB's
	// attached recorder when nil.
	Recorder *obs.Recorder
}

// ParallelResult is a core recovery Result plus the plan that produced
// it.
type ParallelResult struct {
	*core.Result
	// Plan summarizes the partition (components, critical path).
	Plan partition.Stats
	// Workers is the pool size actually used.
	Workers int
}

// RecoverParallel runs redo recovery with partitioned, concurrent
// replay and produces the same outcome as sequential Recover (Figure 6):
//
//  1. Decision phase (sequential): scan the log exactly as Recover does,
//     running the method's analysis function and redo test, but applying
//     nothing. Sound because every method's redo test is state-blind —
//     it decides from LSNs and the log, never from the state replay is
//     rebuilding (core.DecideRedo documents the contract).
//  2. Partition: fuse the admitted records into interference components
//     (internal/partition). Components write disjoint variables and read
//     no variable another component writes, so they commute; inside a
//     component, LSN order is a topological order of the restricted
//     conflict graph. This is the installation-graph concurrency argument
//     of Theorem 3 extended with the write-read edges recomputation
//     needs (see partition's package comment and DESIGN.md §8).
//  3. Replay (parallel): a worker pool replays components concurrently
//     on the dense representation (internal/dense): records are
//     interned views, the state is a flat value arena, and because
//     components write disjoint variable ids, each worker stores its
//     writes straight into its disjoint arena slots — the per-component
//     overlay of the original engine degenerated into a slice of the
//     arena, with a pooled scratch read-set map as the only per-worker
//     buffer. The merge phase then re-marks the presence bitmap and
//     installs the written ids into the map-backed state.
//
// Like Recover via the DB surface, it does not modify the crashed DB:
// it works on the fresh projections StableState, StableLog, and a fresh
// RedoTest return.
func RecoverParallel(db DB, opts ParallelOptions) (*ParallelResult, error) {
	return RecoverParallelLog(db, db.StableLog(), opts)
}

// RecoverParallelLog is RecoverParallel over an explicit stable-log
// prefix instead of db.StableLog(). Sharded recovery (internal/shard)
// replays each shard from its certified-cut prefix, which may be
// strictly shorter than the shard's surviving log; every method's redo
// test and checkpoint set remain sound on a prefix because both are
// bounded by installed work, and the certification gate keeps installed
// work inside the cut. The log must be a prefix of (or equal to)
// db.StableLog(); the Verify oracle runs sequential recovery over the
// same prefix.
func RecoverParallelLog(db DB, log *core.Log, opts ParallelOptions) (*ParallelResult, error) {
	rec := opts.Recorder
	if rec == nil {
		rec = db.Recorder()
	}
	state := db.StableState()
	res, stats, err := recoverPartitioned(rec, state, log, db.Checkpointed(), db.RedoTest(), db.Analyze(), opts.Workers)
	if err != nil {
		return nil, err
	}
	out := &ParallelResult{Result: res, Plan: stats, Workers: poolSize(opts.Workers, stats.Components)}
	if opts.Verify {
		seq, err := core.Recover(db.StableState(), log, db.Checkpointed(), db.RedoTest(), db.Analyze())
		if err != nil {
			return nil, fmt.Errorf("method: sequential verification recovery: %w", err)
		}
		if err := res.SameOutcome(seq); err != nil {
			return nil, fmt.Errorf("method: parallel recovery diverged from sequential: %w", err)
		}
	}
	return out, nil
}

// recoverPartitioned is the engine: decide, partition, replay — all on
// the dense representation past the decision phase.
func recoverPartitioned(rec *obs.Recorder, state *model.State, log *core.Log, checkpoint graph.Set[model.OpID], redo core.RedoTest, analyze core.AnalyzeFunc, workers int) (*core.Result, partition.Stats, error) {
	// Root span: a top-level parallel recovery begins its own trace; the
	// decide/partition/replay/merge spans nest under it, and each replay
	// worker's component spans nest under replay.
	root := rec.StartRootSpan(obs.PhaseRecover, "parallel recovery")
	defer root.End()
	decision := core.DecideRedoObserved(rec, state, log, checkpoint, redo, analyze)
	lv := core.DefaultViews.ViewOfObserved(log, rec)

	ps := rec.StartSpan(obs.PhasePartition)
	plan := partition.FromViews(lv.Views, decision.ReplayIdx, lv.In.Len())
	ps.End()
	rec.Inc(obs.MPartitionPlans)
	for _, c := range plan.Components {
		rec.Observe(obs.MPartitionWidth, int64(len(c.Idx)))
	}
	rec.SetGauge(obs.GPartitionLargest, int64(plan.MaxComponentLen()))

	if err := replayPlan(rec, state, lv, plan, workers); err != nil {
		return nil, partition.Stats{}, err
	}

	return decision.Result(state), plan.Stats(), nil
}

// poolSize bounds the worker count by the available parallelism and the
// number of components.
func poolSize(workers, components int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if components < 1 {
		components = 1
	}
	if workers > components {
		workers = components
	}
	return workers
}

// replayError carries a replay failure with the LSN it occurred at, so
// concurrent failures resolve to the deterministic (smallest-LSN) one.
type replayError struct {
	lsn core.LSN
	err error
}

// replayPlan applies the plan's components to the state, components
// concurrently across a pool of workers, records inside a component in
// LSN order, on the dense representation. Workers replay against a
// shared dense projection of the base state: reads of stable variables
// are concurrent-safe (never written during this phase), and because
// components write disjoint variable ids, each worker stores its
// writes directly into its own disjoint arena slots — the overlay of
// the map-based engine, collapsed into the arena itself. The presence
// bitmap shares words across ids, so workers skip it (StoreRaw); the
// sequential merge phase re-marks the written ids and installs them
// into the map-backed state.
func replayPlan(rec *obs.Recorder, state *model.State, lv *core.LogView, plan *partition.DensePlan, workers int) error {
	if plan.Ops == 0 {
		// Record zero-duration replay/merge phases so every observed
		// recovery reports the full phase breakdown, admitted work or not.
		rec.ObserveDuration("phase."+string(obs.PhaseReplay), 0)
		rec.ObserveDuration("phase."+string(obs.PhaseMerge), 0)
		return nil
	}
	workers = poolSize(workers, len(plan.Components))

	rs := rec.StartSpan(obs.PhaseReplay)
	// Workers parent their component spans under the replay span by
	// explicit id — the ambient stack belongs to the coordinator, which
	// keeps replay open (and on top) for the whole pool run.
	replayID := rs.SpanID()
	ds := dense.FromState(lv.In, state)
	work := make(chan int)
	errs := make(chan replayError, len(plan.Components))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			scratch := dense.GetScratch()
			defer dense.PutScratch(scratch)
			for ci := range work {
				c := plan.Components[ci]
				// One span per interference component, annotated with its
				// size and write width so stragglers are attributable.
				var cs *obs.Span
				if rec.Sinking() {
					cs = rec.StartSpanWith(obs.PhaseComponent, replayID, obs.SpanInfo{
						Comp:   fmt.Sprintf("c%d", ci),
						Worker: worker,
						Size:   len(c.Idx),
						Writes: len(c.Writes),
					})
				}
				err := replayComponent(ds, lv, c, scratch.Reads)
				cs.End()
				if err.err != nil {
					errs <- err
					continue
				}
				rec.Inc(obs.MReplayComponents)
				rec.Add(obs.MReplayRecords, int64(len(c.Idx)))
			}
		}(w + 1)
	}
	for ci := range plan.Components {
		work <- ci
	}
	close(work)
	wg.Wait()
	close(errs)
	rs.End()

	var first *replayError
	for e := range errs {
		e := e
		if first == nil || e.lsn < first.lsn {
			first = &e
		}
	}
	if first != nil {
		return first.err
	}

	// Merge: components write disjoint ids, so any order works; use
	// component order for determinism anyway. Mark restores the
	// presence bitmap the raw worker stores skipped, and WriteBack is
	// where the dense representation rejoins the map/string API.
	ms := rec.StartSpan(obs.PhaseMerge)
	for _, c := range plan.Components {
		for _, id := range c.Writes {
			ds.Mark(id)
		}
		ds.WriteBack(state, c.Writes)
	}
	ms.End()
	return nil
}

// replayComponent recomputes a component's operations in LSN order
// against the shared dense base state plus the component's own
// accumulated writes, which live directly in the component's disjoint
// arena slots. The base ids are only read — concurrent with other
// workers' reads — and no variable this component reads is written by
// any other component (the partition invariant), so every read
// observes exactly the value sequential replay would have observed.
// reads is the worker's pooled scratch map, cleared per record.
func replayComponent(ds *dense.State, lv *core.LogView, c *partition.DenseComponent, reads model.ReadSet) replayError {
	for _, vi := range c.Idx {
		v := &lv.Views[vi]
		op := v.Rec.Op
		clear(reads)
		rvars := op.Reads()
		for k, id := range v.Reads {
			reads[rvars[k]] = ds.Value(id)
		}
		ws, err := op.ComputeFrom(reads)
		if err != nil {
			return replayError{lsn: v.Rec.LSN, err: fmt.Errorf("core: replaying %s: %w", op, err)}
		}
		wvars := op.Writes()
		for k, id := range v.Writes {
			ds.StoreRaw(id, ws[wvars[k]])
		}
	}
	return replayError{}
}
