package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/model"
)

func TestGroupLSNCrashRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewGroupLSN(s) }, anyShapeMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGroupLSNMultiPageOpInstallsAtomically(t *testing.T) {
	// A transfer writes two pages; after any single FlushOne, stable
	// storage holds both or neither of its effects.
	ps := pages(3)
	s0 := initialState(ps)
	db := NewGroupLSN(s0)
	xfer := model.ReadWrite(1, "xfer", []model.Var{ps[0], ps[1]}, []model.Var{ps[0], ps[1]})
	if err := db.Exec(xfer); err != nil {
		t.Fatal(err)
	}
	if !db.FlushOne() {
		t.Fatal("nothing flushed")
	}
	l0, l1 := db.store.PageLSN(ps[0]), db.store.PageLSN(ps[1])
	if l0 != 1 || l1 != 1 {
		t.Fatalf("pages installed separately: LSNs %d, %d", l0, l1)
	}
	if db.MaxGroupSize != 2 || db.GroupFlushes != 1 {
		t.Errorf("group stats: size=%d flushes=%d", db.MaxGroupSize, db.GroupFlushes)
	}
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RedoSet) != 0 {
		t.Errorf("installed transfer replayed: %v", res.RedoSet)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestGroupLSNCollapseGrowsGroups(t *testing.T) {
	// Section 5's warning: two transfers sharing a page chain their
	// atomicity obligations, so the flush group spans all three pages.
	ps := pages(3)
	s0 := initialState(ps)
	db := NewGroupLSN(s0)
	if err := db.Exec(model.ReadWrite(1, "t1", nil, []model.Var{ps[0], ps[1]})); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(model.ReadWrite(2, "t2", nil, []model.Var{ps[1], ps[2]})); err != nil {
		t.Fatal(err)
	}
	got := db.closure(ps[0])
	if len(got) != 3 {
		t.Fatalf("closure = %v, want all three pages", got)
	}
	if !db.FlushOne() {
		t.Fatal("flush failed")
	}
	if db.MaxGroupSize != 3 {
		t.Errorf("MaxGroupSize = %d, want 3", db.MaxGroupSize)
	}
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
}

func TestGroupLSNSection5EFGAtEnd(t *testing.T) {
	// E: x←y+1, F: y←x+1, G: x←x+1 — the crosswise dependencies block
	// every single-page closure, so the cache falls back to one atomic
	// group of both pages, installing E, F, and G together (the paper's
	// Section 5 resolution).
	s0 := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(0), "y": model.IntVal(0)})
	db := NewGroupLSN(s0)
	for _, op := range []*model.Op{
		model.CopyPlus(1, "x", "y", 1),
		model.CopyPlus(2, "y", "x", 1),
		model.Incr(3, "x", 1),
	} {
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}
	if !db.FlushOne() {
		t.Fatal("group fallback did not fire")
	}
	if db.store.PageLSN("x") != 3 || db.store.PageLSN("y") != 2 {
		t.Fatalf("LSNs = x:%d y:%d, want 3,2", db.store.PageLSN("x"), db.store.PageLSN("y"))
	}
	if db.MaxGroupSize != 2 {
		t.Errorf("MaxGroupSize = %d, want 2", db.MaxGroupSize)
	}
	s := db.StableState()
	if s.GetInt("x") != 2 || s.GetInt("y") != 2 {
		t.Errorf("stable = %v, want x=2 y=2", s)
	}
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RedoSet) != 0 {
		t.Errorf("redo set = %v, want empty after atomic install", res.RedoSet)
	}
}

func TestGroupLSNBankTransfersSweep(t *testing.T) {
	// Transfers (two-page write sets) at every crash point: recovery must
	// always conserve and match the oracle.
	ps := pages(4)
	s0 := initialState(ps)
	rng := rand.New(rand.NewSource(31))
	ops := make([]*model.Op, 20)
	for i := range ops {
		a, b := ps[rng.Intn(len(ps))], ps[rng.Intn(len(ps))]
		for b == a {
			b = ps[rng.Intn(len(ps))]
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "xfer", []model.Var{a, b}, []model.Var{a, b})
	}
	for crash := 0; crash <= len(ops); crash++ {
		db := NewGroupLSN(s0)
		for i := 0; i < crash; i++ {
			if err := db.Exec(ops[i]); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				db.FlushOne()
			}
			if i%7 == 0 {
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		db.Crash()
		res, err := Recover(db)
		if err != nil {
			t.Fatalf("crash %d: %v", crash, err)
		}
		if !res.State.Equal(oracle(db, s0)) {
			t.Fatalf("crash %d: state diverged", crash)
		}
	}
}

func TestGroupLSNCrashDuringRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ps := pages(4)
	s0 := initialState(ps)
	db := NewGroupLSN(s0)
	for i := 1; i <= 18; i++ {
		if err := db.Exec(anyShapeMk(model.OpID(i*10), rng, ps)); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(3) == 0 {
			db.FlushOne()
		}
	}
	db.FlushLog()
	db.Crash()
	final := crashingRecoveryToFixpoint(t, db, s0, rng)
	if !final.Equal(oracle(db, s0)) {
		t.Error("fixpoint diverges from oracle")
	}
}
