package method

import (
	"fmt"
	"sort"

	"redotheory/internal/cache"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// GroupLSN extends generalized LSN recovery to operations with
// multi-page write sets, the Section 5 / Section 7 problem of "atomic
// changes to multiple variables in the state": an operation writing
// pages {x, y} must have both or neither of its effects in stable
// storage, so the cache installs the pages of such an operation as one
// atomic multi-page write group. Collapsing each page's updates into a
// single cache copy chains these obligations together — exactly the
// paper's warning that merging write graph nodes "can lead to a single
// write graph node writing a larger number of variables than any
// operation does on its own" — and the method measures how large the
// resulting atomic transitions get (MaxGroupSize). Careful write-order
// dependencies work as in GenLSN, with one extension: a dependency whose
// prerequisite lands in the same atomic group is discharged by the
// atomicity itself, which also dissolves the crosswise-dependency
// deadlocks that stall the single-copy page-at-a-time cache.
type GroupLSN struct {
	*base
	// groupOf maps an operation's LSN to the pages it wrote, for the
	// flush-closure computation.
	groupOf map[core.LSN][]model.Var
	// readersSince tracks readers of each page's current version, with
	// every page the reader wrote.
	readersSince map[model.Var][]groupReaderRef
	// MaxGroupSize records the largest atomic write group installed.
	MaxGroupSize int
	// GroupFlushes counts multi-page atomic installs.
	GroupFlushes int
}

type groupReaderRef struct {
	lsn        core.LSN
	wrotePages []model.Var
}

// NewGroupLSN returns a group-atomic LSN DB over the initial state.
func NewGroupLSN(initial *model.State) *GroupLSN {
	return &GroupLSN{
		base:         newBase(initial),
		groupOf:      make(map[core.LSN][]model.Var),
		readersSince: make(map[model.Var][]groupReaderRef),
	}
}

// Name returns "grouplsn".
func (d *GroupLSN) Name() string { return "grouplsn" }

// Exec runs an operation with any read set and any non-empty write set.
func (d *GroupLSN) Exec(op *model.Op) error {
	ws, err := d.computeThrough(op)
	if err != nil {
		return err
	}
	rec := d.log.Append(op, recordSize(op, ws))
	writes := op.Writes()
	if len(writes) > 1 {
		d.groupOf[rec.LSN] = writes
	}
	// Read-write edges into this operation: each overwritten page's
	// current readers must have every page they wrote installed first.
	for _, page := range writes {
		for _, ref := range d.readersSince[page] {
			for _, wp := range ref.wrotePages {
				if wp != page {
					d.cache.AddDep(cache.Dep{
						Prereq: wp, PrereqLSN: ref.lsn,
						Dependent: page, DepLSN: rec.LSN,
					})
				}
			}
		}
		d.readersSince[page] = nil
	}
	for _, r := range op.Reads() {
		if op.WritesVar(r) {
			continue
		}
		d.readersSince[r] = append(d.readersSince[r], groupReaderRef{lsn: rec.LSN, wrotePages: writes})
	}
	for _, page := range writes {
		d.cache.ApplyWrite(page, ws[page], rec.LSN)
	}
	d.noteExec()
	return nil
}

// closure returns the pages that must be installed atomically with the
// given page: the transitive closure over multi-page operations among
// the unflushed updates, in sorted order.
func (d *GroupLSN) closure(start model.Var) []model.Var {
	seen := graph.NewSet(start)
	stack := []model.Var{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lsn := range d.cache.OpsSince(p) {
			for _, q := range d.groupOf[lsn] {
				if !seen.Has(q) {
					seen.Add(q)
					stack = append(stack, q)
				}
			}
		}
	}
	out := make([]model.Var, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// flushClosure installs the atomic closure of one page if its external
// dependencies allow.
func (d *GroupLSN) flushClosure(start model.Var) error {
	group := d.closure(start)
	if err := d.cache.FlushGroup(group); err != nil {
		return err
	}
	d.GroupFlushes++
	if len(group) > d.MaxGroupSize {
		d.MaxGroupSize = len(group)
	}
	return nil
}

// FlushOne installs one atomic closure whose external dependencies are
// satisfied; if every closure is blocked (a dependency cycle across
// closures), it installs all dirty pages as a single group — the "large
// atomic transition" the paper warns about, measured by MaxGroupSize.
func (d *GroupLSN) FlushOne() bool {
	dirty := d.cache.DirtyPages()
	if len(dirty) == 0 {
		return false
	}
	tried := graph.NewSet[model.Var]()
	for _, p := range dirty {
		if tried.Has(p) {
			continue
		}
		for _, q := range d.closure(p) {
			tried.Add(q)
		}
		if err := d.flushClosure(p); err == nil {
			return true
		}
	}
	// Everything blocked: install the whole dirty set atomically.
	if err := d.cache.FlushGroup(dirty); err != nil {
		return false
	}
	d.GroupFlushes++
	if len(dirty) > d.MaxGroupSize {
		d.MaxGroupSize = len(dirty)
	}
	return true
}

// Checkpoint takes the fuzzy min-recLSN checkpoint.
func (d *GroupLSN) Checkpoint() error {
	bound, dirtyAny := d.cache.MinRecLSN()
	if !dirtyAny {
		bound = d.log.NextLSN()
	}
	d.log.AppendCheckpoint(bound)
	d.noteCheckpoint()
	return nil
}

// Checkpointed returns the stable-logged operations below the stable
// checkpoint bound.
func (d *GroupLSN) Checkpointed() graph.Set[model.OpID] {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return graph.NewSet[model.OpID]()
	}
	return checkpointedUpTo(d.StableLog(), ck.Payload.(core.LSN))
}

// RedoTest: an operation is installed iff every page it wrote carries at
// least its LSN — group-atomic installation guarantees all-or-nothing,
// so testing any one page would suffice, but checking them all doubles
// as a runtime assertion of that atomicity.
func (d *GroupLSN) RedoTest() core.RedoTest {
	lsns := d.store.LSNs()
	return func(op *model.Op, _ *model.State, log *core.Log, _ core.Analysis) bool {
		lsn := log.RecordOf(op.ID()).LSN
		installedPages := 0
		for _, page := range op.Writes() {
			if lsns[page] >= lsn {
				installedPages++
			}
		}
		if installedPages == len(op.Writes()) {
			return false
		}
		if installedPages != 0 {
			panic(fmt.Sprintf("grouplsn: operation %s partially installed (%d of %d pages): atomic group invariant broken",
				op, installedPages, len(op.Writes())))
		}
		for _, page := range op.Writes() {
			if lsn > lsns[page] {
				lsns[page] = lsn
			}
		}
		return true
	}
}

// Analyze returns nil.
func (d *GroupLSN) Analyze() core.AnalyzeFunc { return nil }

// Stats reports the method's counters.
func (d *GroupLSN) Stats() Stats { return d.stats() }

// Crash discards volatile state including the group and reader tracking.
func (d *GroupLSN) Crash() {
	d.base.Crash()
	d.groupOf = make(map[core.LSN][]model.Var)
	d.readersSince = make(map[model.Var][]groupReaderRef)
}

var _ DB = (*GroupLSN)(nil)
