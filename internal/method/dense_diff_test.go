package method

import (
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/workload"
)

// TestDenseRecoverMatchesMapRecover is the differential guarantee
// behind the dense replay engine: for every Section 6 method, every
// workload shape legal for it, and randomized crash points and
// background schedules, three recoveries of the same crashed DB must be
// indistinguishable —
//
//   - the map-based reference procedure (core.Recover, which the
//     Recovery Invariant checker audits),
//   - dense sequential recovery (method.Recover → core.RecoverDense),
//   - dense parallel recovery (RecoverParallel) at several widths —
//
// same final state (State.Equal via SameOutcome), same redo and
// installed sets, same replay order, same records examined.
func TestDenseRecoverMatchesMapRecover(t *testing.T) {
	pages := workload.Pages(5)
	for _, f := range parallelFactories {
		f := f
		shapes, err := workload.ShapesFor(f.name)
		if err != nil {
			t.Fatal(err)
		}
		for _, shape := range shapes {
			shape := shape
			t.Run(f.name+"/"+shape.Name, func(t *testing.T) {
				for seed := int64(1); seed <= 2; seed++ {
					ops := shape.Gen(18, pages, seed)
					initial := workload.InitialState(pages)
					for crash := 0; crash <= len(ops); crash += 2 + int(seed) {
						db := crashedDB(t, f.mk, ops, initial, crash, seed*37+int64(crash))

						ref, err := core.Recover(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze())
						if err != nil {
							t.Fatalf("crash=%d seed=%d: map-based recovery: %v", crash, seed, err)
						}
						dense, err := Recover(db)
						if err != nil {
							t.Fatalf("crash=%d seed=%d: dense recovery: %v", crash, seed, err)
						}
						if err := dense.SameOutcome(ref); err != nil {
							t.Fatalf("crash=%d seed=%d: dense sequential diverged from map-based: %v", crash, seed, err)
						}
						for _, workers := range []int{1, 4} {
							par, err := RecoverParallel(db, ParallelOptions{Workers: workers})
							if err != nil {
								t.Fatalf("crash=%d seed=%d workers=%d: %v", crash, seed, workers, err)
							}
							if err := par.SameOutcome(ref); err != nil {
								t.Fatalf("crash=%d seed=%d workers=%d: dense parallel diverged from map-based: %v", crash, seed, workers, err)
							}
						}
					}
				}
			})
		}
	}
}

// TestDenseRecoverEmptyLog: a crash before any logging recovers to the
// stable state through the dense path, identically to the reference.
func TestDenseRecoverEmptyLog(t *testing.T) {
	pages := workload.Pages(3)
	db := NewPhysiological(workload.InitialState(pages))
	db.Crash()
	ref, err := core.Recover(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze())
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.SameOutcome(ref); err != nil {
		t.Fatal(err)
	}
}
