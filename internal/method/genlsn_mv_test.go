package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/model"
)

func TestGenLSNMVCrashRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		return crashDance(t, rand.New(rand.NewSource(seed)),
			func(s *model.State) DB { return NewGenLSNMV(s) }, readManyWriteOneMk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// crosswise builds the deadlock shape: O1 reads r writes w, O2 reads w
// writes r, O3 reads r writes w — the newest versions of w and r block
// each other.
func crosswise() []*model.Op {
	return []*model.Op{
		model.ReadWrite(1, "o1", []model.Var{"r"}, []model.Var{"w"}),
		model.ReadWrite(2, "o2", []model.Var{"w"}, []model.Var{"r"}),
		model.ReadWrite(3, "o3", []model.Var{"r"}, []model.Var{"w"}),
	}
}

func TestGenLSNSingleCopyStallsOnCrosswiseDeps(t *testing.T) {
	s0 := model.StateOf(map[model.Var]model.Value{"r": "10", "w": "20"})
	db := NewGenLSN(s0)
	for _, op := range crosswise() {
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}
	// The single-copy cache cannot install anything: w@3 waits for r@2,
	// r@2 waits for w@1, and only the newest versions exist.
	if db.FlushOne() {
		t.Fatal("single-copy cache made progress through a dependency cycle")
	}
	// Recovery still works — the log has everything.
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
	if len(res.RedoSet) != 3 {
		t.Errorf("all 3 ops should need replay, got %v", res.RedoSet)
	}
}

func TestGenLSNMVDrainsCrosswiseDeps(t *testing.T) {
	s0 := model.StateOf(map[model.Var]model.Value{"r": "10", "w": "20"})
	db := NewGenLSNMV(s0)
	if db.Name() != "genlsn+mv" {
		t.Fatalf("name = %q", db.Name())
	}
	for _, op := range crosswise() {
		if err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}
	// Version-at-a-time installation drains the whole cache: w's old
	// version (LSN 1) first, then r (LSN 2), then w again (LSN 3).
	steps := 0
	for db.FlushOne() {
		steps++
		if steps > 10 {
			t.Fatal("flush loop did not terminate")
		}
	}
	if steps != 3 {
		t.Errorf("drained in %d installs, want 3 (one per version)", steps)
	}
	if got := db.StableState(); !got.Equal(oracle(db, s0)) {
		// Everything installed: the stable state is the full history's
		// state (all ops logged are stable after the WAL forces).
		t.Errorf("stable = %v, want %v", got, oracle(db, s0))
	}
	// Nothing left to redo.
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RedoSet) != 0 {
		t.Errorf("redo set = %v, want empty", res.RedoSet)
	}
}

func TestGenLSNMVInvariantThroughPartialDrains(t *testing.T) {
	// After every single version install, a crash must leave an
	// explainable state: run the crosswise workload, flush k times,
	// crash, recover, compare.
	for k := 0; k <= 3; k++ {
		s0 := model.StateOf(map[model.Var]model.Value{"r": "10", "w": "20"})
		db := NewGenLSNMV(s0)
		for _, op := range crosswise() {
			if err := db.Exec(op); err != nil {
				t.Fatal(err)
			}
		}
		db.FlushLog()
		for i := 0; i < k; i++ {
			if !db.FlushOne() {
				t.Fatalf("k=%d: flush %d made no progress", k, i)
			}
		}
		db.Crash()
		res, err := Recover(db)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.State.Equal(oracle(db, s0)) {
			t.Errorf("k=%d: recovery diverged", k)
		}
	}
}
