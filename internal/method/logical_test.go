package method

import (
	"testing"

	"redotheory/internal/model"
)

func TestLogicalCrashBetweenStageAndSwing(t *testing.T) {
	// Crash after staging but before the pointer swing: the staging area
	// is discarded, the previous stable state survives, and recovery
	// replays from the previous checkpoint.
	ps := pages(3)
	s0 := initialState(ps)
	db := NewLogical(s0)
	op1 := model.ReadWrite(1, "w1", ps, []model.Var{ps[0]})
	op2 := model.ReadWrite(2, "w2", ps, []model.Var{ps[1]})
	if err := db.Exec(op1); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	afterCk := db.StableState()
	if err := db.Exec(op2); err != nil {
		t.Fatal(err)
	}
	db.StageCheckpoint() // quiesce and stage — then the machine dies
	db.Crash()
	if !db.StableState().Equal(afterCk) {
		t.Fatal("a crash before the swing must leave the previous stable state intact")
	}
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(oracle(db, s0)) {
		t.Errorf("recovered %v, want %v", res.State, oracle(db, s0))
	}
	// op2 was forced by StageCheckpoint, so it is in the stable log and
	// must be replayed; op1 is checkpoint-covered.
	if !res.RedoSet.Has(2) || res.RedoSet.Has(1) {
		t.Errorf("redo set = %v, want {2}", res.RedoSet)
	}
}

func TestLogicalSwingInstallsAtomically(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewLogical(s0)
	// A multi-variable operation: both its writes must appear in the
	// stable state together or not at all.
	op := model.ReadWrite(1, "pair", ps, ps)
	if err := db.Exec(op); err != nil {
		t.Fatal(err)
	}
	db.StageCheckpoint()
	if !db.StableState().Equal(s0) {
		t.Fatal("staging leaked into the stable state")
	}
	db.CompleteCheckpoint()
	want := s0.Clone()
	want.MustApply(op)
	if !db.StableState().Equal(want) {
		t.Fatal("swing did not install the staged pages")
	}
	if db.shadow.Swings != 1 || db.shadow.Staged() != 0 {
		t.Errorf("shadow counters: swings=%d staged=%d", db.shadow.Swings, db.shadow.Staged())
	}
}
