package method

import (
	"fmt"
	"sort"

	"redotheory/internal/core"
	"redotheory/internal/fault"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/wal"
)

// This file is graceful degradation: recovery when the stable state lies.
// The paper's recovery procedure (Figure 6) assumes a clean crash — the
// stable log and pages are exactly what was forced. RecoverDegraded
// weakens that assumption: it first audits both substrates with their
// integrity metadata, and only when they check out does it run the
// method's own fast recovery. On any detection it falls back to the one
// plan that needs no per-method trust: truncate the log to its last
// trustworthy record, fall back to the recovery base (initial state plus
// checkpoint-truncated operations), and replay every surviving logged
// operation in log order. Lemma 1 is the correctness argument — the log
// order is consistent with the conflict order, so full replay from the
// base regenerates exactly the state the surviving log describes — which
// makes the conservative path the media-failure analogue of archive
// recovery (Section 7).

// DegradedOptions tunes RecoverDegraded.
type DegradedOptions struct {
	// AbortAfterRepairs, when ≥ 0, crashes degraded recovery after that
	// many repair page writes (the fault.CrashInRecovery scenario); a
	// rerun must converge. Negative runs to completion.
	AbortAfterRepairs int
}

// RunToCompletion is the default: never abort mid-repair.
func RunToCompletion() DegradedOptions { return DegradedOptions{AbortAfterRepairs: -1} }

// DegradedResult reports what degraded recovery found and produced.
type DegradedResult struct {
	// State is the recovered state (nil when Unrecoverable or Aborted).
	State *model.State
	// Detections lists every integrity failure found, across both
	// substrates and all detection phases.
	Detections []fault.Detection
	// Degraded is true when the conservative full-replay path ran
	// (false: the substrates were clean and the method's own fast
	// recovery ran).
	Degraded bool
	// Unrecoverable is true when detected damage provably lost committed
	// work: orphan pages carrying effects of vanished log records, or
	// valid records stranded past a rotted one. The caller gets the
	// detections, not a state.
	Unrecoverable bool
	// Aborted is true when AbortAfterRepairs stopped the repair phase.
	Aborted bool
	// Quarantined lists the pages validation refused to trust; the
	// conservative path rewrites all of them.
	Quarantined []model.Var
	// Tail is the log repair's report.
	Tail wal.TailRepair
	// Audit is the core invariant checker's verdict on the outcome.
	Audit *core.Report
}

// detect appends a detection.
func (r *DegradedResult) detect(code, format string, args ...interface{}) {
	r.Detections = append(r.Detections, fault.Detection{Code: code, Detail: fmt.Sprintf(format, args...)})
}

// quarantine marks a page untrusted (idempotently).
func (r *DegradedResult) quarantine(x model.Var) {
	for _, q := range r.Quarantined {
		if q == x {
			return
		}
	}
	r.Quarantined = append(r.Quarantined, x)
}

// RecoverDegraded validates the crashed DB's substrates, repairs what it
// can, and recovers. It is the media-fault-tolerant entry point every
// method shares; db must be post-Crash.
func RecoverDegraded(db DB, opts DegradedOptions) (*DegradedResult, error) {
	res := &DegradedResult{}
	st := db.Store()
	rec := db.Recorder()
	defer func() {
		for _, d := range res.Detections {
			rec.Inc(obs.MDetections)
			rec.Emit(obs.Event{Type: obs.EvDetection, Detail: d.Code + ": " + d.Detail})
		}
	}()

	// Phase 1 — log: per-record checksums and the chained tail anchor.
	// RepairTail already truncates to the last trustworthy record and
	// drops stranded checkpoints, so everything below reads the repaired
	// log.
	res.Tail = db.WAL().RepairTail()
	res.Detections = append(res.Detections, res.Tail.Detections...)

	// Phase 2 — pages: checksum every stable page.
	for _, id := range st.VerifyAll() {
		res.detect("corrupt-page", "page %q fails its checksum", id)
		res.quarantine(id)
	}

	// Phase 3 — torn groups: an atomic multi-page write whose intent
	// journal was never cleared left an unknown mix of old and new
	// versions, every one of them individually checksum-valid.
	if intent := st.PendingGroupIntent(); intent != nil {
		res.detect("torn-group", "group write over %v never completed", intent)
		for _, id := range intent {
			res.quarantine(id)
		}
	}

	log := db.StableLog()
	bound, hasCk := db.CheckpointBound()

	// Phase 4 — stale pages: the checkpoint contract says operations
	// below the bound are installed, and log truncation already folded
	// records below previous bounds into the recovery base. Both imply a
	// per-page LSN floor; a stable page tagged below its floor is a lost
	// write — the disk acknowledged an install and kept the old version.
	floors := db.RecoveryBaseLSNs()
	if hasCk {
		for _, r := range log.Records() {
			if r.LSN >= bound {
				break
			}
			for _, x := range r.Op.Writes() {
				if r.LSN > floors[x] {
					floors[x] = r.LSN
				}
			}
		}
	}
	// A method whose checkpoint payload makes per-page installation
	// claims beyond the scalar bound (the dirty-page-table variant) must
	// expose them, because its redo test will skip on them unread.
	if fl, ok := db.(interface{ CheckpointFloors() map[model.Var]core.LSN }); ok {
		for x, lsn := range fl.CheckpointFloors() {
			if lsn > floors[x] {
				floors[x] = lsn
			}
		}
	}
	floorVars := make([]model.Var, 0, len(floors))
	for x := range floors {
		floorVars = append(floorVars, x)
	}
	sort.Slice(floorVars, func(i, j int) bool { return floorVars[i] < floorVars[j] })
	for _, x := range floorVars {
		if st.PageLSN(x) < floors[x] {
			res.detect("stale-page", "page %q is at LSN %d, below its installed floor %d (lost write)",
				x, st.PageLSN(x), floors[x])
			res.quarantine(x)
		}
	}

	// Phase 4b — careful write order: when the method's redo test re-reads
	// the recovering state (genlsn family), correctness rests on the
	// install-order contract that a page overwrite reaches disk only after
	// every page written by a reader of its previous version. A lost write
	// can break this invisibly — the reverted page is checksum-valid and
	// may sit above every floor — but the contract is reconstructible from
	// the log's read sets, mirroring the dependency registration in Exec:
	// if page p carries LSN ≥ L (the overwrite installed), every page w
	// written at L' by a reader of p's pre-L version must carry LSN ≥ L'.
	if db.CarefulWriteOrder() {
		type readerRef struct {
			lsn   core.LSN
			wrote model.Var
		}
		readers := make(map[model.Var][]readerRef)
		for _, r := range log.Records() {
			ws := r.Op.Writes()
			if len(ws) != 1 {
				continue
			}
			p := ws[0]
			for _, ref := range readers[p] {
				if ref.wrote != p && st.PageLSN(p) >= r.LSN && st.PageLSN(ref.wrote) < ref.lsn {
					res.detect("careful-order", "page %q at LSN %d requires %q ≥ %d, found %d (lost write)",
						p, st.PageLSN(p), ref.wrote, ref.lsn, st.PageLSN(ref.wrote))
					res.quarantine(ref.wrote)
				}
			}
			readers[p] = nil
			for _, x := range r.Op.Reads() {
				if x == p {
					continue
				}
				readers[x] = append(readers[x], readerRef{lsn: r.LSN, wrote: p})
			}
		}
	}

	// Phase 5 — orphan pages: a page tagged past every surviving log
	// record carries effects whose records are gone. The work was
	// acknowledged durable; no surviving evidence can replay or even
	// verify it — detected, but not recoverable.
	maxPlausible := log.MaxLSN()
	if hasCk && bound > 0 && bound-1 > maxPlausible {
		maxPlausible = bound - 1
	}
	for _, id := range st.PageIDs() {
		if lsn := st.PageLSN(id); lsn > maxPlausible {
			res.detect("orphan-page", "page %q is at LSN %d but the log ends at %d; its records are lost",
				id, lsn, maxPlausible)
			res.quarantine(id)
			res.Unrecoverable = true
		}
	}
	if res.Tail.DroppedValid > 0 {
		// Valid records stranded past a rotted one: committed operations
		// recovery can no longer replay.
		res.Unrecoverable = true
	}

	// Phase 6 — partial multi-record installs: a record writing several
	// pages where only some carry its LSN. Methods with atomic group
	// installs can never produce this on a clean crash (their redo tests
	// rely on it — grouplsn's panics otherwise), so it means a torn or
	// lost page write, including one left behind by an aborted earlier
	// repair.
	for _, r := range log.Records() {
		ws := r.Op.Writes()
		if len(ws) < 2 {
			continue
		}
		ahead, behind := 0, 0
		for _, x := range ws {
			if st.PageLSN(x) >= r.LSN {
				ahead++
			} else {
				behind++
			}
		}
		if ahead > 0 && behind > 0 {
			res.detect("partial-group", "record %d wrote %d pages but only %d reflect it", r.LSN, len(ws), ahead)
			for _, x := range ws {
				res.quarantine(x)
			}
		}
	}

	// Phase 7 — interrupted repair: the durable repair-in-progress mark
	// means an earlier degraded recovery died mid-rewrite. The page array
	// is then an arbitrary mix of repaired and crash-time versions —
	// individually checksum-valid and possibly undetectable by the LSN
	// phases (single-write pages rewritten out of log order fool
	// read-recompute redo tests) — so the conservative path is forced.
	if st.RepairPending() {
		res.detect("repair-interrupted", "a prior repair pass never finished; page array is mixed")
	}

	if res.Unrecoverable {
		return res, nil
	}

	if len(res.Detections) == 0 {
		// Fast path: both substrates verified clean, so the clean-crash
		// contract holds and the method's own recovery is trusted —
		// audited end-to-end by the invariant checker.
		r, err := Recover(db)
		if err != nil {
			return nil, err
		}
		res.State = r.State
		checker, err := core.NewChecker(log, db.RecoveryBase())
		if err != nil {
			return nil, fmt.Errorf("method: building degraded-recovery checker: %w", err)
		}
		// verifyEnd is off: stateful redo tests (page-LSN families) are
		// single-use, and end-state equality is the caller's oracle check.
		res.Audit = checker.Check(db.StableState(), log, db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
		return res, nil
	}

	// Conservative path: replay the whole surviving log from the
	// recovery base. No redo test, no checkpoint shortcut — both may be
	// poisoned by exactly the faults just detected.
	res.Degraded = true
	rec.Inc(obs.MDegradedRuns)
	span := rec.StartSpan(obs.PhaseReplay)
	state := db.RecoveryBase()
	lsns := db.RecoveryBaseLSNs()
	for _, r := range log.Records() {
		if _, err := state.Apply(r.Op); err != nil {
			span.End()
			return nil, fmt.Errorf("method: degraded replay of %s: %w", r.Op, err)
		}
		rec.Inc(obs.MReplayRecords)
		for _, x := range r.Op.Writes() {
			lsns[x] = r.LSN
		}
	}
	span.End()

	// Repair: rewrite every page from the replayed state with its true
	// LSN tag, resealing checksums. Log order is irrelevant here — the
	// final value per page is what replay determined — and writes land
	// unconditionally (faults were realized at crash time; disarm any
	// still pending so repair is not re-faulted).
	st.DisarmFaults()
	st.BeginRepair()
	repairs := 0
	for _, x := range state.Vars() {
		if opts.AbortAfterRepairs >= 0 && repairs >= opts.AbortAfterRepairs {
			res.Aborted = true
			return res, nil
		}
		st.Write(x, state.Get(x), lsns[x])
		repairs++
	}
	st.EndRepair()
	st.ClearGroupIntent()
	res.State = st.State()

	// Audit: after full replay every logged operation is installed; the
	// invariant checker verifies that complete set explains the repaired
	// state.
	checker, err := core.NewChecker(log, db.RecoveryBase())
	if err != nil {
		return nil, fmt.Errorf("method: building degraded-recovery checker: %w", err)
	}
	res.Audit = checker.CheckInstalled(res.State, log.Operations())
	return res, nil
}
