package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

// TestRecoverInstallingCompletes: a full restart-installing recovery
// reaches the oracle state and persists it.
func TestRecoverInstallingCompletes(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 8; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	n, done, err := RecoverInstalling(db, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !done || n != 8 {
		t.Fatalf("redone=%d done=%v", n, done)
	}
	if !db.StableState().Equal(oracle(db, s0)) {
		t.Error("installed recovery state diverges from oracle")
	}
	// A second recovery finds nothing to do: everything is installed.
	n2, done2, err := RecoverInstalling(db, -1)
	if err != nil || !done2 || n2 != 0 {
		t.Errorf("second recovery redid %d ops (err=%v)", n2, err)
	}
}

// crashingRecoveryToFixpoint repeatedly runs restart-installing recovery
// with random early crashes until one run completes, auditing the
// Recovery Invariant at every intermediate crash, and returns the final
// stable state.
func crashingRecoveryToFixpoint(t testing.TB, db Installer, initial *model.State, rng *rand.Rand) *model.State {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		// Crash after a few redos; the allowance grows so even methods
		// that restart replay from the top (physical: no LSN test) reach
		// a run that completes.
		stop := rng.Intn(4) + attempt
		_, done, err := RecoverInstalling(db, stop)
		if err != nil {
			t.Fatalf("%s: restart recovery: %v", db.Name(), err)
		}
		// Audit the invariant at the intermediate crash state.
		checker, err := core.NewChecker(db.StableLog(), initial)
		if err != nil {
			t.Fatal(err)
		}
		rep := checker.Check(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
		if !rep.OK {
			t.Fatalf("%s: invariant violated mid-recovery: %s", db.Name(), rep.Summary())
		}
		if done {
			return db.StableState()
		}
	}
	t.Fatalf("%s: recovery never completed", db.Name())
	return nil
}

func TestCrashDuringRecoveryProperty(t *testing.T) {
	// Crash during recovery, restart, repeat: the fixed point must be the
	// oracle state, and the invariant must hold at every intermediate
	// crash, for all restart-installing methods.
	mks := map[string]func(*model.State) Installer{
		"physiological": func(s *model.State) Installer { return NewPhysiological(s) },
		"physical":      func(s *model.State) Installer { return NewPhysical(s) },
		"genlsn":        func(s *model.State) Installer { return NewGenLSN(s) },
	}
	shapes := map[string]func(model.OpID, *rand.Rand, []model.Var) *model.Op{
		"physiological": singlePageMk,
		"physical":      anyShapeMk,
		"genlsn":        readManyWriteOneMk,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for name, mk := range mks {
			ps := pages(4)
			s0 := initialState(ps)
			db := mk(s0)
			n := 5 + rng.Intn(15)
			for i := 1; i <= n; i++ {
				if err := db.Exec(shapes[name](model.OpID(i*10), rng, ps)); err != nil {
					return false
				}
				switch rng.Intn(5) {
				case 0:
					db.FlushOne()
				case 1:
					db.FlushLog()
				case 2:
					if err := db.Checkpoint(); err != nil {
						return false
					}
				}
			}
			db.Crash()
			final := crashingRecoveryToFixpoint(t, db, s0, rng)
			if !final.Equal(oracle(db, s0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLogicalRecoveryIsRepeatable(t *testing.T) {
	// Logical recovery keeps its work volatile: running it twice from the
	// same survivors gives the same state (a recovery crash just means
	// starting over from the checkpointed stable state).
	ps := pages(3)
	s0 := initialState(ps)
	db := NewLogical(s0)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(anyShapeMk(model.OpID(i), rand.New(rand.NewSource(int64(i))), ps)); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.FlushLog()
	db.Crash()
	r1, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.State.Equal(r2.State) {
		t.Error("logical recovery is not repeatable")
	}
	if !r1.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
	// And the stable state was never touched by recovery.
	if !db.StableState().Equal(mustCheckpointState(t, db, s0)) {
		t.Error("logical recovery mutated the stable state")
	}
}

// mustCheckpointState recomputes what the stable state should be: the
// initial state plus every checkpoint-covered operation.
func mustCheckpointState(t *testing.T, db DB, s0 *model.State) *model.State {
	t.Helper()
	s := s0.Clone()
	ck := db.Checkpointed()
	for _, op := range db.StableLog().Ops() {
		if ck.Has(op.ID()) {
			s.MustApply(op)
		}
	}
	return s
}
