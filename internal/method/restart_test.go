package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

// TestRecoverInstallingCompletes: a full restart-installing recovery
// reaches the oracle state and persists it.
func TestRecoverInstallingCompletes(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 8; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	n, done, err := RecoverInstalling(db, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !done || n != 8 {
		t.Fatalf("redone=%d done=%v", n, done)
	}
	if !db.StableState().Equal(oracle(db, s0)) {
		t.Error("installed recovery state diverges from oracle")
	}
	// A second recovery finds nothing to do: everything is installed.
	n2, done2, err := RecoverInstalling(db, -1)
	if err != nil || !done2 || n2 != 0 {
		t.Errorf("second recovery redid %d ops (err=%v)", n2, err)
	}
}

// crashingRecoveryToFixpoint repeatedly runs restart-installing recovery
// with random early crashes until one run completes, auditing the
// Recovery Invariant at every intermediate crash, and returns the final
// stable state.
func crashingRecoveryToFixpoint(t testing.TB, db Installer, initial *model.State, rng *rand.Rand) *model.State {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		// Crash after a few redos; the allowance grows so even methods
		// that restart replay from the top (physical: no LSN test) reach
		// a run that completes.
		stop := rng.Intn(4) + attempt
		_, done, err := RecoverInstalling(db, stop)
		if err != nil {
			t.Fatalf("%s: restart recovery: %v", db.Name(), err)
		}
		// Audit the invariant at the intermediate crash state.
		checker, err := core.NewChecker(db.StableLog(), initial)
		if err != nil {
			t.Fatal(err)
		}
		rep := checker.Check(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
		if !rep.OK {
			t.Fatalf("%s: invariant violated mid-recovery: %s", db.Name(), rep.Summary())
		}
		if done {
			return db.StableState()
		}
	}
	t.Fatalf("%s: recovery never completed", db.Name())
	return nil
}

func TestCrashDuringRecoveryProperty(t *testing.T) {
	// Crash during recovery, restart, repeat: the fixed point must be the
	// oracle state, and the invariant must hold at every intermediate
	// crash, for all restart-installing methods.
	mks := map[string]func(*model.State) Installer{
		"physiological": func(s *model.State) Installer { return NewPhysiological(s) },
		"physical":      func(s *model.State) Installer { return NewPhysical(s) },
		"genlsn":        func(s *model.State) Installer { return NewGenLSN(s) },
	}
	shapes := map[string]func(model.OpID, *rand.Rand, []model.Var) *model.Op{
		"physiological": singlePageMk,
		"physical":      anyShapeMk,
		"genlsn":        readManyWriteOneMk,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for name, mk := range mks {
			ps := pages(4)
			s0 := initialState(ps)
			db := mk(s0)
			n := 5 + rng.Intn(15)
			for i := 1; i <= n; i++ {
				if err := db.Exec(shapes[name](model.OpID(i*10), rng, ps)); err != nil {
					return false
				}
				switch rng.Intn(5) {
				case 0:
					db.FlushOne()
				case 1:
					db.FlushLog()
				case 2:
					if err := db.Checkpoint(); err != nil {
						return false
					}
				}
			}
			db.Crash()
			final := crashingRecoveryToFixpoint(t, db, s0, rng)
			if !final.Equal(oracle(db, s0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLogicalRecoveryIsRepeatable(t *testing.T) {
	// Logical recovery keeps its work volatile: running it twice from the
	// same survivors gives the same state (a recovery crash just means
	// starting over from the checkpointed stable state).
	ps := pages(3)
	s0 := initialState(ps)
	db := NewLogical(s0)
	for i := 1; i <= 6; i++ {
		if err := db.Exec(anyShapeMk(model.OpID(i), rand.New(rand.NewSource(int64(i))), ps)); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.FlushLog()
	db.Crash()
	r1, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.State.Equal(r2.State) {
		t.Error("logical recovery is not repeatable")
	}
	if !r1.State.Equal(oracle(db, s0)) {
		t.Error("state wrong")
	}
	// And the stable state was never touched by recovery.
	if !db.StableState().Equal(mustCheckpointState(t, db, s0)) {
		t.Error("logical recovery mutated the stable state")
	}
}

// TestRecoverInstallingStopAfterZero: stopAfter=0 is the degenerate
// crash — recovery dies before its first install. Nothing changes, and
// the untouched crash state still satisfies the Recovery Invariant.
func TestRecoverInstallingStopAfterZero(t *testing.T) {
	ps := pages(3)
	s0 := initialState(ps)
	db := NewPhysiological(s0)
	for i := 1; i <= 5; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%3])); err != nil {
			t.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	before := db.StableState()
	n, done, err := RecoverInstalling(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || done {
		t.Fatalf("redone=%d done=%v, want 0,false", n, done)
	}
	if !db.StableState().Equal(before) {
		t.Error("stopAfter=0 recovery mutated the stable state")
	}
	checker, err := core.NewChecker(db.StableLog(), s0)
	if err != nil {
		t.Fatal(err)
	}
	rep := checker.Check(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
	if !rep.OK {
		t.Fatalf("invariant violated at the zero-install crash: %s", rep.Summary())
	}
	// And an empty log's recovery is already done at stopAfter=0.
	empty := NewPhysiological(s0)
	empty.Crash()
	if n, done, err := RecoverInstalling(empty, 0); err != nil || n != 0 || !done {
		t.Errorf("empty log: redone=%d done=%v err=%v", n, done, err)
	}
}

// TestRecoverInstallingEveryIndex crashes restart recovery at *every*
// redo index — each attempt installs exactly one operation and dies —
// and audits the Corollary-4 invariant at each intermediate state. The
// LSN-family methods must make one install of progress per attempt, so
// the fixed point arrives in exactly as many attempts as there are
// records to redo. (Physical recovery is excluded: its always-true redo
// test restarts replay from the top, so a one-install allowance never
// advances; the growing-allowance property test above covers it.)
func TestRecoverInstallingEveryIndex(t *testing.T) {
	mks := map[string]struct {
		mk    func(*model.State) Installer
		shape func(model.OpID, *rand.Rand, []model.Var) *model.Op
	}{
		"physiological":     {func(s *model.State) Installer { return NewPhysiological(s) }, singlePageMk},
		"physiological+dpt": {func(s *model.State) Installer { return NewPhysiologicalDPT(s) }, singlePageMk},
		"genlsn":            {func(s *model.State) Installer { return NewGenLSN(s) }, readManyWriteOneMk},
		"genlsn+mv":         {func(s *model.State) Installer { return NewGenLSNMV(s) }, readManyWriteOneMk},
	}
	for name, mc := range mks {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			ps := pages(4)
			s0 := initialState(ps)
			db := mc.mk(s0)
			n := 12
			for i := 1; i <= n; i++ {
				if err := db.Exec(mc.shape(model.OpID(i*10), rng, ps)); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(4) == 0 {
					db.FlushOne()
				}
			}
			db.FlushLog()
			db.Crash()
			attempts := 0
			for ; attempts <= n+1; attempts++ {
				redone, done, err := RecoverInstalling(db, 1)
				if err != nil {
					t.Fatal(err)
				}
				checker, err := core.NewChecker(db.StableLog(), s0)
				if err != nil {
					t.Fatal(err)
				}
				rep := checker.Check(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
				if !rep.OK {
					t.Fatalf("invariant violated after crash at index %d: %s", attempts, rep.Summary())
				}
				if done {
					break
				}
				if redone != 1 {
					t.Fatalf("attempt %d redid %d ops before its crash, want exactly 1", attempts, redone)
				}
			}
			if attempts > n {
				t.Fatalf("fixed point not reached after %d one-install attempts", attempts)
			}
			if !db.StableState().Equal(oracle(db, s0)) {
				t.Error("fixed point diverges from oracle")
			}
		})
	}
}

// flakyInstaller wraps an Installer with a transiently failing
// InstallPage: the first `budget` installs are silently lost (the write
// never reaches stable storage). For page-LSN recovery a lost install
// is indistinguishable from a crash just before it — the page keeps its
// old LSN, the next recovery re-admits the operation, and the volatile
// replay state (which did apply the operation) means any later install
// of the same page carries the composed, correct value.
type flakyInstaller struct {
	Installer
	budget int
	rng    *rand.Rand
}

func (f *flakyInstaller) InstallPage(x model.Var, v model.Value, lsn core.LSN) {
	if f.budget > 0 && f.rng.Intn(2) == 0 {
		f.budget--
		return // dropped on the floor
	}
	f.Installer.InstallPage(x, v, lsn)
}

// TestRecoverInstallingFlakyInstaller: restart recovery through a lossy
// installer still converges to the oracle, with the invariant holding
// at every intermediate crash. Only single-page methods are exercised:
// silently dropping one install from a multi-page-read method (genlsn)
// can break careful write ordering — a later operation's page lands
// while the page it read stays stale — which is exactly why the
// supervisor aborts whole attempts on transient faults instead of
// dropping writes (see internal/supervise).
func TestRecoverInstallingFlakyInstaller(t *testing.T) {
	for name, mk := range map[string]func(*model.State) Installer{
		"physiological": func(s *model.State) Installer { return NewPhysiological(s) },
		"physical":      func(s *model.State) Installer { return NewPhysical(s) },
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(55))
			ps := pages(3)
			s0 := initialState(ps)
			db := mk(s0)
			shape := singlePageMk
			if name == "physical" {
				shape = anyShapeMk
			}
			for i := 1; i <= 10; i++ {
				if err := db.Exec(shape(model.OpID(i*10), rng, ps)); err != nil {
					t.Fatal(err)
				}
			}
			db.FlushLog()
			db.Crash()
			flaky := &flakyInstaller{Installer: db, budget: 6, rng: rng}
			final := crashingRecoveryToFixpoint(t, flaky, s0, rng)
			if !final.Equal(oracle(db, s0)) {
				t.Error("flaky-installer fixed point diverges from oracle")
			}
		})
	}
}

// mustCheckpointState recomputes what the stable state should be: the
// initial state plus every checkpoint-covered operation.
func mustCheckpointState(t *testing.T, db DB, s0 *model.State) *model.State {
	t.Helper()
	s := s0.Clone()
	ck := db.Checkpointed()
	for _, op := range db.StableLog().Ops() {
		if ck.Has(op.ID()) {
			s.MustApply(op)
		}
	}
	return s
}
