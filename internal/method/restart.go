package method

import (
	"fmt"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

// This file implements restart-installing recovery: the pattern of
// LSN-based systems where recovery writes redone pages back to stable
// storage as it proceeds, so a crash *during* recovery leaves a state
// from which recovery simply restarts. Corollary 4's proof is exactly
// why this works: after every iteration the operations that will not be
// redone form a prefix of the installation graph explaining the current
// state, so each intermediate state is itself recoverable. The
// crash-during-recovery tests drive this to a fixed point and audit the
// invariant at every intermediate crash.

// Installer is implemented by methods whose recovery may persist redone
// work as it goes (the page-LSN and after-image families). Logical
// recovery deliberately does not implement it: System R keeps recovery's
// work volatile and re-runs from the checkpoint state after a crash.
type Installer interface {
	DB
	// InstallPage writes a page with its LSN tag directly into stable
	// storage, as restart recovery does after redoing an operation.
	InstallPage(x model.Var, v model.Value, lsn core.LSN)
}

// InstallPage writes through to the stable store.
func (b *base) InstallPage(x model.Var, v model.Value, lsn core.LSN) {
	b.store.Write(x, v, lsn)
}

// RecoverInstalling runs the recovery procedure over the DB's survivors,
// persisting every redone operation's writes (tagged with the
// operation's LSN) into stable storage, and stops early after stopAfter
// redone operations to simulate a crash mid-recovery (stopAfter < 0
// means run to completion). It returns how many operations it redid and
// whether it reached the end of the log.
//
// Redone pages are installed in log order, which satisfies every careful
// write-order dependency (a read-write edge's prerequisite operation
// always has the smaller LSN), and the write-ahead rule trivially (the
// log being replayed is already stable).
func RecoverInstalling(db Installer, stopAfter int) (int, bool, error) {
	state := db.StableState()
	log := db.StableLog()
	checkpoint := db.Checkpointed()
	redo := db.RedoTest()
	analyze := db.Analyze()

	var analysis core.Analysis
	redone := 0
	for _, r := range log.Records() {
		if checkpoint.Has(r.Op.ID()) {
			continue
		}
		if stopAfter >= 0 && redone >= stopAfter {
			return redone, false, nil
		}
		if analyze != nil {
			analysis = analyze(state, log, nil, analysis)
		}
		if !redo(r.Op, state, log, analysis) {
			continue
		}
		ws, err := state.Apply(r.Op)
		if err != nil {
			return redone, false, fmt.Errorf("method: restart recovery replaying %s: %w", r.Op, err)
		}
		for x, v := range ws {
			db.InstallPage(x, v, r.LSN)
		}
		redone++
	}
	return redone, true, nil
}
