package method

import (
	"math/rand"
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/model"
	"redotheory/internal/workload"
)

var parallelFactories = []struct {
	name string
	mk   func(*model.State) DB
}{
	{"logical", func(s *model.State) DB { return NewLogical(s) }},
	{"physical", func(s *model.State) DB { return NewPhysical(s) }},
	{"physiological", func(s *model.State) DB { return NewPhysiological(s) }},
	{"physiological+dpt", func(s *model.State) DB { return NewPhysiologicalDPT(s) }},
	{"genlsn", func(s *model.State) DB { return NewGenLSN(s) }},
	{"genlsn+mv", func(s *model.State) DB { return NewGenLSNMV(s) }},
	{"grouplsn", func(s *model.State) DB { return NewGroupLSN(s) }},
}

// crashedDB runs ops[:crash] against a fresh DB with a seeded background
// schedule of flushes, log forces, and checkpoints, then crashes it.
func crashedDB(t *testing.T, mk func(*model.State) DB, ops []*model.Op, initial *model.State, crash int, seed int64) DB {
	t.Helper()
	db := mk(initial)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < crash; i++ {
		if err := db.Exec(ops[i]); err != nil {
			t.Fatalf("%s: exec op %d: %v", db.Name(), i, err)
		}
		if rng.Float64() < 0.3 {
			db.FlushOne()
		}
		if rng.Float64() < 0.2 {
			db.FlushLog()
		}
		if rng.Float64() < 0.1 {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("%s: checkpoint: %v", db.Name(), err)
			}
		}
	}
	db.Crash()
	return db
}

// TestRecoverParallelMatchesSequential is the property test behind the
// parallel engine: over every method, randomized workloads, randomized
// crash points and schedules, RecoverParallel with 1, 2, and 8 workers
// must be indistinguishable from sequential Recover — same state, same
// redo set, same replay order, same records examined — and the outcome
// must match the surviving log's oracle while the crash state passes the
// invariant checker.
func TestRecoverParallelMatchesSequential(t *testing.T) {
	pages := workload.Pages(6)
	for _, f := range parallelFactories {
		f := f
		t.Run(f.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				ops, err := workload.ForMethod(f.name, 24, pages, seed)
				if err != nil {
					t.Fatal(err)
				}
				initial := workload.InitialState(pages)
				for crash := 0; crash <= len(ops); crash += 1 + int(seed)%3 {
					db := crashedDB(t, f.mk, ops, initial, crash, seed*100+int64(crash))

					// Crash-state invariant audit, as in the simulator.
					stableLog := db.StableLog()
					checker, err := core.NewChecker(stableLog, db.RecoveryBase())
					if err != nil {
						t.Fatal(err)
					}
					rep := checker.Check(db.StableState(), stableLog, db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
					if !rep.OK {
						t.Fatalf("crash=%d seed=%d: invariant violated: %v", crash, seed, rep.Violations)
					}

					seq, err := Recover(db)
					if err != nil {
						t.Fatalf("crash=%d seed=%d: sequential recovery: %v", crash, seed, err)
					}
					want := oracle(db, db.RecoveryBase())
					if !seq.State.Equal(want) {
						t.Fatalf("crash=%d seed=%d: sequential recovery missed the oracle: %v", crash, seed, seq.State.Diff(want))
					}

					for _, workers := range []int{1, 2, 8} {
						par, err := RecoverParallel(db, ParallelOptions{Workers: workers})
						if err != nil {
							t.Fatalf("crash=%d seed=%d workers=%d: %v", crash, seed, workers, err)
						}
						if err := par.SameOutcome(seq); err != nil {
							t.Fatalf("crash=%d seed=%d workers=%d: diverged: %v", crash, seed, workers, err)
						}
						if par.Plan.Ops != len(seq.Replayed) {
							t.Fatalf("crash=%d seed=%d workers=%d: plan scheduled %d ops, sequential replayed %d",
								crash, seed, workers, par.Plan.Ops, len(seq.Replayed))
						}
					}
				}
			}
		})
	}
}

// TestRecoverParallelVerifyOption: the built-in oracle mode must accept
// every in-contract recovery.
func TestRecoverParallelVerifyOption(t *testing.T) {
	pages := workload.Pages(4)
	ops := workload.SinglePage(16, pages, 5, false)
	db := crashedDB(t, func(s *model.State) DB { return NewPhysiological(s) },
		ops, workload.InitialState(pages), 12, 5)
	par, err := RecoverParallel(db, ParallelOptions{Workers: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers < 1 {
		t.Errorf("Workers = %d", par.Workers)
	}
}

// TestRecoverParallelDefaultWorkers: Workers <= 0 picks a sensible pool
// and still recovers correctly.
func TestRecoverParallelDefaultWorkers(t *testing.T) {
	pages := workload.Pages(4)
	db := crashedDB(t, func(s *model.State) DB { return NewGenLSN(s) },
		workload.ReadManyWriteOne(16, pages, 2, 11), workload.InitialState(pages), 10, 11)
	seq, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RecoverParallel(db, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.SameOutcome(seq); err != nil {
		t.Error(err)
	}
}
