package method

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/model"
)

func TestTruncateCheckpointedBasics(t *testing.T) {
	ps := pages(2)
	s0 := initialState(ps)
	db := NewPhysical(s0)
	for i := 1; i <= 4; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[(i-1)%2])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil { // flushes all + checkpoint at end
		t.Fatal(err)
	}
	if err := db.Exec(singlePageOp(5, ps[0])); err != nil {
		t.Fatal(err)
	}
	n, err := db.TruncateCheckpointed()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("truncated %d records, want 4", n)
	}
	// The base absorbed the truncated ops.
	want := s0.Clone()
	for _, op := range []*model.Op{} {
		want.MustApply(op)
	}
	base := db.RecoveryBase()
	if base.Equal(s0) {
		t.Fatal("recovery base unchanged by truncation")
	}
	// Crash and recover: base + surviving log = oracle.
	db.FlushLog()
	db.Crash()
	res, err := Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	oracle := db.RecoveryBase()
	for _, op := range db.StableLog().Ops() {
		oracle.MustApply(op)
	}
	if !res.State.Equal(oracle) {
		t.Errorf("recovered %v, want %v", res.State, oracle)
	}
	if db.StableLog().Len() != 1 {
		t.Errorf("surviving log has %d records, want 1", db.StableLog().Len())
	}
}

func TestTruncateWithoutCheckpointIsNoop(t *testing.T) {
	db := NewPhysiological(initialState(pages(1)))
	if err := db.Exec(singlePageOp(1, pages(1)[0])); err != nil {
		t.Fatal(err)
	}
	n, err := db.TruncateCheckpointed()
	if err != nil || n != 0 {
		t.Errorf("truncate without checkpoint: n=%d err=%v", n, err)
	}
}

func TestTruncateIdempotent(t *testing.T) {
	ps := pages(2)
	db := NewPhysical(initialState(ps))
	for i := 1; i <= 3; i++ {
		if err := db.Exec(singlePageOp(model.OpID(i), ps[0])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n, err := db.TruncateCheckpointed(); err != nil || n != 3 {
		t.Fatalf("first truncate: n=%d err=%v", n, err)
	}
	base1 := db.RecoveryBase()
	if n, err := db.TruncateCheckpointed(); err != nil || n != 0 {
		t.Fatalf("second truncate: n=%d err=%v", n, err)
	}
	if !db.RecoveryBase().Equal(base1) {
		t.Error("repeated truncation changed the base")
	}
}

func TestTruncationCrashSweepAllMethods(t *testing.T) {
	// Random schedules with truncation after checkpoints: recovery from
	// base + surviving log must match the full execution at every crash
	// point, for every method.
	mks := map[string]struct {
		mk    func(*model.State) DB
		shape func(model.OpID, *rand.Rand, []model.Var) *model.Op
	}{
		"physiological":     {func(s *model.State) DB { return NewPhysiological(s) }, singlePageMk},
		"physiological+dpt": {func(s *model.State) DB { return NewPhysiologicalDPT(s) }, singlePageMk},
		"physical":          {func(s *model.State) DB { return NewPhysical(s) }, anyShapeMk},
		"logical":           {func(s *model.State) DB { return NewLogical(s) }, anyShapeMk},
		"genlsn":            {func(s *model.State) DB { return NewGenLSN(s) }, readManyWriteOneMk},
		"grouplsn":          {func(s *model.State) DB { return NewGroupLSN(s) }, anyShapeMk},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for name, cfg := range mks {
			ps := pages(4)
			s0 := initialState(ps)
			db := cfg.mk(s0)
			fullOracle := s0.Clone()
			n := 8 + rng.Intn(15)
			for i := 1; i <= n; i++ {
				op := cfg.shape(model.OpID(i*10), rng, ps)
				if err := db.Exec(op); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				fullOracle.MustApply(op)
				switch rng.Intn(5) {
				case 0:
					db.FlushOne()
				case 1:
					db.FlushLog()
				case 2:
					if err := db.Checkpoint(); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if _, err := db.(Truncator).TruncateCheckpointed(); err != nil {
						t.Fatalf("%s: truncate: %v", name, err)
					}
				}
			}
			db.FlushLog()
			db.Crash()
			res, err := Recover(db)
			if err != nil {
				t.Fatalf("%s: recover: %v", name, err)
			}
			// With the whole log forced before the crash, recovery must
			// reproduce the full execution regardless of truncation.
			if !res.State.Equal(fullOracle) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
