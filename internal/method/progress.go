package method

import (
	"redotheory/internal/core"
	"redotheory/internal/model"
)

// This file is the recovery-progress checkpoint: a fuzzy checkpoint a
// *supervised* restart-installing recovery appends mid-flight so the
// next attempt, after a nested crash, skips the prefix it already
// installed. Soundness is Corollary 4's argument made durable: the
// installing pass processes the stable log in order, so when it has
// settled every record below some LSN bound — each one either covered
// by the previous checkpoint, rejected by the redo test (installed), or
// just installed — the claim "operations below bound are installed" is
// exactly the checkpoint contract of Section 4.2, and appending a
// checkpoint record with that bound is a legal fuzzy checkpoint taken
// during recovery (the restart analogue of ARIES fuzzy checkpointing).
//
// The payload must be whatever the method's own Checkpointed/Analyze
// expect: a plain core.LSN bound for the scalar-payload methods, a
// dirty-page-table snapshot for the ARIES-style analysis variant.

// ProgressCheckpointer is implemented by methods that accept a
// recovery-progress checkpoint. All methods embed the base
// implementation; whether taking one is *meaningful* is governed by
// InstallsDuringRecovery — logical recovery keeps recovery work
// volatile, so a progress checkpoint would claim installs that never
// reached the stable state.
type ProgressCheckpointer interface {
	// AppendProgressCheckpoint appends a fuzzy checkpoint claiming every
	// stable-logged operation with LSN < bound is installed. The caller
	// (the recovery supervisor) is responsible for the claim being true.
	AppendProgressCheckpoint(bound core.LSN)
	// InstallsDuringRecovery reports whether the method's recovery may
	// persist redone work as it goes (the page-LSN and after-image
	// families). When false, recovery work is volatile and progress
	// checkpoints must not be taken.
	InstallsDuringRecovery() bool
}

// AppendProgressCheckpoint appends the scalar-bound checkpoint payload
// every LSN-bound method understands.
func (b *base) AppendProgressCheckpoint(bound core.LSN) {
	b.log.AppendCheckpoint(bound)
}

// InstallsDuringRecovery is true for the base: restart-installing
// recovery works for every method whose redo test tolerates installed
// prefixes. Logical recovery overrides it to false.
func (b *base) InstallsDuringRecovery() bool { return true }

// AppendProgressCheckpoint overrides the scalar payload with a
// dirty-page-table snapshot, which is what this method's Checkpointed,
// Analyze, and CheckpointFloors expect. The reconstructed table maps
// each page with uninstalled records to its recLSN — the first stable
// record at or above the bound that writes it. That is precisely the
// table a fuzzy checkpoint taken at this point of recovery would
// claim: pages absent from the table have all their records below the
// bound (installed by the in-order installing pass), and for a present
// page everything below its recLSN is likewise below the bound.
func (d *PhysiologicalDPT) AppendProgressCheckpoint(bound core.LSN) {
	dpt := make(map[model.Var]core.LSN)
	for _, r := range d.StableLog().Records() {
		if r.LSN < bound {
			continue
		}
		page := r.Op.Writes()[0]
		if _, ok := dpt[page]; !ok {
			dpt[page] = r.LSN
		}
	}
	d.log.AppendCheckpoint(dptCheckpoint{bound: bound, dpt: dpt})
}

// InstallsDuringRecovery is false: System R recovery keeps its work
// volatile (the stable state changes only through the checkpoint's
// atomic pointer swing), so there is never installed recovery work for
// a progress checkpoint to record.
func (d *Logical) InstallsDuringRecovery() bool { return false }
