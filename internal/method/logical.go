package method

import (
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/storage"
)

// Logical implements Section 6.1, the System R pattern: logged operations
// are arbitrary state-to-state mappings (they may read and write any
// variables), the stable database does not change between checkpoints,
// and a checkpoint quiesces the system, writes the pending updates to a
// staging area, and then "swings a pointer" — an atomic transition that
// both installs every operation logged since the previous checkpoint
// (collapsing the two-node write graph into one node) and moves those
// operations out of redo_set by writing the checkpoint record. Recovery
// starts from the stable state of the last checkpoint and replays every
// later logged operation.
type Logical struct {
	*base
	shadow *storage.ShadowTable
}

// NewLogical returns a logical-recovery DB over the initial state.
func NewLogical(initial *model.State) *Logical {
	b := newBase(initial)
	return &Logical{base: b, shadow: storage.NewShadowTable(b.store)}
}

// Name returns "logical".
func (d *Logical) Name() string { return "logical" }

// Exec runs a logical operation: any read set, any write set. Updates
// stay in the cache — the stable state is immutable between checkpoints,
// so there is no steal and no per-page WAL coupling.
func (d *Logical) Exec(op *model.Op) error {
	ws, err := d.computeThrough(op)
	if err != nil {
		return err
	}
	rec := d.log.Append(op, recordSize(op, ws))
	for _, x := range op.Writes() {
		d.cache.ApplyWrite(x, ws[x], rec.LSN)
	}
	d.noteExec()
	return nil
}

// FlushOne reports false: logical recovery never steals. Pages reach the
// stable state only through the checkpoint's atomic pointer swing.
func (d *Logical) FlushOne() bool { return false }

// Checkpoint quiesces and checkpoints in the System R pattern: force the
// log, write every dirty page to the staging area (the stable state is
// untouched — StageCheckpoint), then swing the pointer and append the
// checkpoint record (CompleteCheckpoint). Shadow paging is what makes the
// multi-page installation one atomic pointer update; a crash between the
// two phases discards the staging area and recovery restarts from the
// previous checkpoint.
func (d *Logical) Checkpoint() error {
	d.StageCheckpoint()
	return d.CompleteCheckpoint()
}

// StageCheckpoint performs the first checkpoint phase: quiesce, force the
// log, and write the pending updates to the staging area. The current
// stable state is not modified.
func (d *Logical) StageCheckpoint() {
	d.log.Flush()
	for _, id := range d.cache.DirtyPages() {
		d.shadow.StagePage(id, storage.Page{Data: d.cache.Read(id), LSN: d.cache.PageLSN(id)})
	}
}

// CompleteCheckpoint performs the second phase: the atomic pointer swing
// plus the checkpoint record, which together install every operation
// logged so far and remove it from redo_set in one step — the
// invariant-preserving atomicity of Section 6.1. If an injected media
// fault tears the swing, the checkpoint record is NOT written (the swing
// never committed), the error is returned, and the previous checkpoint
// remains the recovery base — exactly the System R abort path.
func (d *Logical) CompleteCheckpoint() error {
	if err := d.shadow.Swing(); err != nil {
		return err
	}
	// The staged copies are now current; drop the cache so reads fall
	// through to them.
	d.cache.Crash()
	d.log.AppendCheckpoint(d.log.NextLSN())
	d.noteCheckpoint()
	return nil
}

// Crash discards the cache, the volatile log tail, and any staging-area
// pages whose pointer swing never happened.
func (d *Logical) Crash() {
	d.shadow.Discard()
	d.base.Crash()
}

// Checkpointed returns every stable-logged operation below the stable
// checkpoint: exactly the operations the pointer swing installed.
func (d *Logical) Checkpointed() graph.Set[model.OpID] {
	ck, ok := d.log.StableCheckpoint()
	if !ok {
		return graph.NewSet[model.OpID]()
	}
	return checkpointedUpTo(d.StableLog(), ck.Payload.(core.LSN))
}

// RedoTest replays every operation after the checkpoint: the stable state
// is exactly the state the checkpoint determined, so each replayed
// operation reads precisely what it read during normal execution.
func (d *Logical) RedoTest() core.RedoTest {
	return func(*model.Op, *model.State, *core.Log, core.Analysis) bool { return true }
}

// Analyze returns a single up-front analysis locating the last stable
// checkpoint (the classic "find the checkpoint record" scan), threaded
// through unchanged on later iterations.
func (d *Logical) Analyze() core.AnalyzeFunc {
	ck, ok := d.log.StableCheckpoint()
	return func(_ *model.State, _ *core.Log, _ graph.Set[model.OpID], prev core.Analysis) core.Analysis {
		if prev != nil {
			return prev
		}
		if !ok {
			return core.LSN(1)
		}
		return ck.AtLSN
	}
}

// Stats reports the method's counters.
func (d *Logical) Stats() Stats { return d.stats() }

var _ DB = (*Logical)(nil)
