package method

import (
	"testing"

	"redotheory/internal/obs"
	"redotheory/internal/workload"
)

// benchDB builds the redobench fixture at test scale: a crashed
// physiological DB whose replay does real recomputation, so the
// plain-vs-observed pair below measures instrumentation overhead on the
// recovery hot path (the property cmd/redobench gates in CI).
func benchDB(b *testing.B) DB {
	pages := workload.Pages(16)
	s0 := workload.InitialState(pages)
	ops := workload.HeavySinglePage(256, pages, 200, 42)
	db := NewPhysiological(s0)
	for _, op := range ops {
		if err := db.Exec(op); err != nil {
			b.Fatal(err)
		}
	}
	db.FlushLog()
	db.Crash()
	return db
}

func BenchmarkRecoverPlain(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoverObserved(b *testing.B) {
	db := benchDB(b)
	rec := obs.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverObserved(db, rec); err != nil {
			b.Fatal(err)
		}
	}
}
