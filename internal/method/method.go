// Package method implements the four real recovery methods of Section 6
// on top of the simulated substrates: logical (System R style, §6.1),
// physical (after-image logging, §6.2), physiological (page-LSN redo
// test, §6.3), and generalized LSN recovery (multi-page operations with
// careful write ordering, §6.4).
//
// Every method exposes the same DB interface so the simulator, the
// crash-matrix experiments, and the recovery-invariant checker treat them
// uniformly: execute an operation, take a checkpoint, let the background
// writer make progress, force the log, crash, and hand recovery exactly
// the four ingredients the paper's abstract procedure needs — a stable
// state, a stable log, a checkpoint set, and a redo test with its
// analysis function.
package method

import (
	"fmt"

	"redotheory/internal/cache"
	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/storage"
	"redotheory/internal/wal"
)

// DB is a running database instance under one recovery method.
type DB interface {
	// Name identifies the method ("logical", "physical", …).
	Name() string
	// Exec runs one system operation through the method: it reads the
	// volatile state, computes, logs, and applies to the cache. The
	// logged operations may differ from the system operation (physical
	// logging turns one system operation into per-page blind writes).
	Exec(op *model.Op) error
	// Read returns the current volatile value of a variable.
	Read(x model.Var) model.Value
	// Checkpoint performs the method's checkpoint.
	Checkpoint() error
	// FlushOne lets the background writer install one eligible page; it
	// reports whether it made progress. Methods without stealing (logical
	// recovery) always report false.
	FlushOne() bool
	// FlushLog forces the log to stable storage.
	FlushLog()
	// Crash discards all volatile state (cache and unflushed log tail).
	Crash()

	// The recovery surface, valid after Crash:

	// StableState returns the surviving page contents.
	StableState() *model.State
	// StableLog returns the surviving log prefix.
	StableLog() *core.Log
	// Checkpointed returns the operations the checkpoint lets recovery
	// ignore (Section 4.2): they are installed by construction.
	Checkpointed() graph.Set[model.OpID]
	// RedoTest returns a fresh redo test bound to the current stable
	// state; stateful tests (page-LSN tracking) start from the stable
	// page LSN table.
	RedoTest() core.RedoTest
	// Analyze returns the method's analysis function (may be nil).
	Analyze() core.AnalyzeFunc

	// Stats exposes counters for the experiments.
	Stats() Stats

	// SetRecorder attaches a telemetry recorder (nil disables): runtime
	// counters and events then flow from the method, its cache, and its
	// log manager, and recovery entry points pick it up for phase spans.
	SetRecorder(*obs.Recorder)
	// Recorder returns the attached recorder (nil when none).
	Recorder() *obs.Recorder

	// DisableWAL turns off the write-ahead-log gate (fault injection):
	// pages may then be installed before their log records are stable.
	// The recovery-invariant checker catches the resulting states.
	DisableWAL()

	// SetInstallHook registers a callback fired after every page install
	// with the page and its LSN — the online auditor's feed. Methods
	// whose installs bypass the cache (logical recovery's pointer swing)
	// do not fire it.
	SetInstallHook(func(model.Var, core.LSN))

	// RecoveryBase returns the state the surviving log applies against:
	// the initial state plus every log-truncated operation.
	RecoveryBase() *model.State

	// The degraded-recovery surface (media faults):

	// Store exposes the stable page store, where integrity validation and
	// quarantine repair happen.
	Store() *storage.Store
	// WAL exposes the log manager, where tail validation and truncation
	// repair happen.
	WAL() *wal.Manager
	// RecoveryBaseLSNs returns, per page, the highest LSN folded into the
	// recovery base by log truncation (0 when none): the LSN floor any
	// surviving stable page must sit at or above.
	RecoveryBaseLSNs() map[model.Var]core.LSN
	// CheckpointBound returns the newest stable checkpoint's LSN bound
	// (records below it are installed) and whether one exists.
	CheckpointBound() (core.LSN, bool)
	// CarefulWriteOrder reports whether the method's cache enforces
	// read-write careful write ordering (Section 6.4): a page overwrite
	// installs only after every page written by a reader of its previous
	// version. Methods whose redo tests re-read the recovering state
	// depend on it; degraded recovery audits it from the log only when
	// the method claims it.
	CarefulWriteOrder() bool
}

// Stats aggregates the counters the experiments report.
type Stats struct {
	OpsExecuted int
	LogRecords  int
	LogBytes    int
	PageFlushes int
	LogForces   int
	Checkpoints int
	StablePages int
}

// Recover runs the paper's abstract recovery procedure (Figure 6) over a
// crashed DB's survivors and returns the rebuilt state together with the
// procedure's Result. The DB itself is not modified; recovery runs on a
// clone of the stable state, exactly as the Recovery Invariant's
// hypothetical does.
//
// Replay runs on the dense representation (core.RecoverDense): interned
// record views, a columnar state, and pooled scratch make the hot path
// allocation-light, while the map-based core.Recover remains the
// reference procedure the checker and the differential tests audit
// against.
func Recover(db DB) (*core.Result, error) {
	return core.RecoverDense(db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze())
}

// RecoverObserved is Recover with telemetry: phase spans, redo-test
// verdict events, and replay timing flow to the recorder. A nil recorder
// makes it exactly Recover.
func RecoverObserved(db DB, rec *obs.Recorder) (*core.Result, error) {
	return core.RecoverDenseObserved(rec, db.StableState(), db.StableLog(), db.Checkpointed(), db.RedoTest(), db.Analyze())
}

// base carries the substrate wiring shared by all methods.
type base struct {
	store       *storage.Store
	log         *wal.Manager
	cache       *cache.Manager
	opsExecuted int
	checkpoints int
	// recoveryBase is the state recovery starts reasoning from: the
	// initial state plus every log-truncated operation. Log truncation
	// (TruncateCheckpointed) folds dropped records into it.
	recoveryBase *model.State
	// baseLSNs records, per page, the highest truncated-record LSN whose
	// write is folded into recoveryBase. Degraded recovery uses it as the
	// floor a stale (lost-write) stable page falls below.
	baseLSNs map[model.Var]core.LSN
	// rec is the attached telemetry recorder (nil = disabled).
	rec *obs.Recorder
}

func newBase(initial *model.State) *base {
	st := storage.FromState(initial)
	lg := wal.NewManager()
	return &base{store: st, log: lg, cache: cache.NewManager(st, lg),
		recoveryBase: initial.Clone(), baseLSNs: make(map[model.Var]core.LSN)}
}

// newBaseMV wires a multi-version cache (see cache.NewMVManager).
func newBaseMV(initial *model.State) *base {
	st := storage.FromState(initial)
	lg := wal.NewManager()
	return &base{store: st, log: lg, cache: cache.NewMVManager(st, lg),
		recoveryBase: initial.Clone(), baseLSNs: make(map[model.Var]core.LSN)}
}

// SetRecorder attaches a telemetry recorder to the method and both its
// substrates (cache installs, WAL forces). Pass nil to disable.
func (b *base) SetRecorder(rec *obs.Recorder) {
	b.rec = rec
	b.cache.SetRecorder(rec)
	b.log.SetRecorder(rec)
}

// Recorder returns the attached telemetry recorder (nil when none).
func (b *base) Recorder() *obs.Recorder { return b.rec }

// noteExec counts one executed operation; methods call it where they
// bump opsExecuted.
func (b *base) noteExec() {
	b.opsExecuted++
	b.rec.Inc(obs.MDBExec)
}

// noteCheckpoint counts one completed checkpoint.
func (b *base) noteCheckpoint() {
	b.checkpoints++
	b.rec.Inc(obs.MDBCheckpoints)
}

// RecoveryBase returns (a clone of) the state the surviving log's
// operations apply against: the original initial state plus every
// truncated operation.
func (b *base) RecoveryBase() *model.State { return b.recoveryBase.Clone() }

// RecoveryBaseLSNs returns a copy of the per-page LSN floors implied by
// log truncation.
func (b *base) RecoveryBaseLSNs() map[model.Var]core.LSN {
	out := make(map[model.Var]core.LSN, len(b.baseLSNs))
	for x, lsn := range b.baseLSNs {
		out[x] = lsn
	}
	return out
}

// Store exposes the stable page store for validation and repair.
func (b *base) Store() *storage.Store { return b.store }

// WAL exposes the log manager for validation and repair.
func (b *base) WAL() *wal.Manager { return b.log }

// CarefulWriteOrder is false for the base: most methods' redo tests
// never read pages other than the one being redone.
func (b *base) CarefulWriteOrder() bool { return false }

// CheckpointBound returns the newest stable checkpoint's installed-below
// LSN bound. Both checkpoint payload shapes carry one.
func (b *base) CheckpointBound() (core.LSN, bool) {
	ck, ok := b.log.StableCheckpoint()
	if !ok {
		return 0, false
	}
	switch payload := ck.Payload.(type) {
	case core.LSN:
		return payload, true
	case dptCheckpoint:
		return payload.bound, true
	}
	return 0, false
}

// TruncateCheckpointed drops the stable log records the newest stable
// checkpoint covers, folding their effects into the recovery base state
// first, and returns how many records were dropped. This is the
// checkpoint's log-bounding purpose: "the recovery procedure need only
// examine the part of the log following this checkpointed log prefix"
// (Section 4), so the prefix itself can go.
func (b *base) TruncateCheckpointed() (int, error) {
	bound, ok := b.CheckpointBound()
	if !ok {
		if _, hasCk := b.log.StableCheckpoint(); hasCk {
			return 0, fmt.Errorf("method: unrecognized checkpoint payload")
		}
		return 0, nil
	}
	for _, r := range b.log.StableLog().Records() {
		if r.LSN >= bound {
			break
		}
		if _, err := b.recoveryBase.Apply(r.Op); err != nil {
			return 0, fmt.Errorf("method: rebasing truncated op %s: %w", r.Op, err)
		}
		for _, x := range r.Op.Writes() {
			b.baseLSNs[x] = r.LSN
		}
	}
	return b.log.TruncateBefore(bound)
}

// Truncator is satisfied by methods that support log truncation (all of
// them, via base); the simulator type-asserts for it.
type Truncator interface {
	TruncateCheckpointed() (int, error)
}

// flushFirstEligibleBest is flushFirstEligible with version-at-a-time
// installation: it may install an older version of a page whose newest
// version is blocked.
func (b *base) flushFirstEligibleBest() bool {
	for _, id := range b.cache.DirtyPages() {
		if b.cache.CanFlushBest(id) {
			if err := b.cache.FlushBest(id); err == nil {
				return true
			}
		}
	}
	return false
}

// Read returns the volatile value of a variable.
func (b *base) Read(x model.Var) model.Value { return b.cache.Read(x) }

// DisableWAL turns off the write-ahead gate on the cache (fault
// injection).
func (b *base) DisableWAL() { b.cache.EnforceWAL = false }

// SetInstallHook registers the cache's install callback.
func (b *base) SetInstallHook(f func(model.Var, core.LSN)) { b.cache.OnInstall = f }

// FlushLog forces the log.
func (b *base) FlushLog() { b.log.Flush() }

// FlushLogTo forces the log through the given LSN, leaving later records
// volatile — used to place crash points inside multi-operation actions.
func (b *base) FlushLogTo(lsn core.LSN) { b.log.FlushTo(lsn) }

// Log returns the full volatile log (test and experiment access).
func (b *base) Log() *core.Log { return b.log.Log() }

// Crash discards the cache and the volatile log tail.
func (b *base) Crash() {
	b.cache.Crash()
	b.log.Crash()
}

// StableState projects the stable page store.
func (b *base) StableState() *model.State { return b.store.State() }

// StableLog returns the stable log prefix.
func (b *base) StableLog() *core.Log { return b.log.StableLog() }

func (b *base) stats() Stats {
	return Stats{
		OpsExecuted: b.opsExecuted,
		LogRecords:  b.log.Log().Len(),
		LogBytes:    b.log.BytesTotal(),
		PageFlushes: b.cache.Flushes,
		LogForces:   b.log.Forces,
		Checkpoints: b.checkpoints,
		StablePages: b.store.Len(),
	}
}

// FlushPage installs one specific dirty page if its dependencies allow;
// experiments use it to shape which pages pin the checkpoint bound.
func (b *base) FlushPage(x model.Var) error { return b.cache.Flush(x) }

// flushFirstEligible installs the first dirty page whose dependencies and
// WAL gate allow it.
func (b *base) flushFirstEligible() bool {
	for _, id := range b.cache.DirtyPages() {
		if b.cache.CanFlush(id) {
			if err := b.cache.Flush(id); err == nil {
				return true
			}
		}
	}
	return false
}

// checkpointedUpTo returns the stable-logged operations with LSN strictly
// below the bound: the canonical "ops the checkpoint covers" set.
func checkpointedUpTo(log *core.Log, bound core.LSN) graph.Set[model.OpID] {
	out := graph.NewSet[model.OpID]()
	for _, r := range log.Records() {
		if r.LSN < bound {
			out.Add(r.Op.ID())
		}
	}
	return out
}

// recordSize models a log record's wire size: a fixed header, the
// operation name (the "logical" payload descriptor), one page id per
// written page, and — for operations with an empty read set — the full
// after-image of every written value. An operation that reads nothing is
// not a recomputable function: replay can only reproduce its writes if
// the exact bytes travel through the log (physical logging). An
// operation with reads is replayed by recomputation, so only its
// descriptor is logged. This is what makes the Section 6.4 log-volume
// comparison meaningful: a physiological B-tree split must physically
// log the moved half (a blind init of the new page), while a generalized
// split reads the old page and ships only a short descriptor.
func recordSize(op *model.Op, writes model.WriteSet) int {
	const header = 16
	size := header + len(op.Name())
	for _, x := range op.Writes() {
		size += len(x)
		if len(op.Reads()) == 0 {
			size += len(writes[x])
		}
	}
	return size
}

// computeThrough evaluates a system operation against the cache and
// returns its write set without applying it.
func (b *base) computeThrough(op *model.Op) (model.WriteSet, error) {
	reads := make(model.ReadSet, len(op.Reads()))
	for _, x := range op.Reads() {
		reads[x] = b.cache.Read(x)
	}
	ws, err := op.Compute(reads)
	if err != nil {
		return nil, fmt.Errorf("method: computing %s: %w", op, err)
	}
	return ws, nil
}
