package install

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

// figure5 builds the running example (O: x←x+1, P: y←x+1, Q: x←x+1 from
// x=1): the conflict graph has edges O→P (WR), O→Q (WW|WR), P→Q (RW); the
// installation graph drops O→P.
func figure5() (*conflict.Graph, *Graph, *stategraph.Graph) {
	o := model.Incr(1, "x", 1)
	p := model.CopyPlus(2, "y", "x", 1)
	q := model.Incr(3, "x", 1)
	cg := conflict.FromOps(o, p, q)
	s0 := model.NewState()
	s0.SetInt("x", 1)
	sg, err := stategraph.FromConflict(cg, s0)
	if err != nil {
		panic(err)
	}
	return cg, FromConflict(cg), sg
}

func TestFigure5EdgeRemoval(t *testing.T) {
	_, ig, _ := figure5()
	if ig.DAG().HasEdge(1, 2) {
		t.Error("pure WR edge O→P survived in the installation graph")
	}
	if !ig.DAG().HasEdge(1, 3) {
		t.Error("O→Q (WW|WR) must survive")
	}
	if !ig.DAG().HasEdge(2, 3) {
		t.Error("P→Q (RW) must survive")
	}
}

func TestFigure5PrefixP(t *testing.T) {
	// {P} is a prefix of the installation graph but not of the conflict
	// graph — the extra recoverable state of Figure 5.
	cg, ig, _ := figure5()
	p := graph.NewSet[model.OpID](2)
	if !ig.IsPrefix(p) {
		t.Error("{P} should be an installation graph prefix")
	}
	if cg.DAG().IsPrefix(p) {
		t.Error("{P} must not be a conflict graph prefix")
	}
}

func TestFigure5MinimalUninstalled(t *testing.T) {
	_, ig, _ := figure5()
	// After {O}: minimal uninstalled is P.
	if got := ig.MinimalUninstalled(graph.NewSet[model.OpID](1)); len(got) != 1 || got[0] != 2 {
		t.Errorf("after {O}: %v, want [2]", got)
	}
	// After {P}: minimal uninstalled is O.
	if got := ig.MinimalUninstalled(graph.NewSet[model.OpID](2)); len(got) != 1 || got[0] != 1 {
		t.Errorf("after {P}: %v, want [1]", got)
	}
}

func TestScenario1Unrecoverable(t *testing.T) {
	// Figure 1: A: x←y+1 then B: y←2 from x=y=0. Installing B alone
	// violates the read-write edge A→B, which survives in the
	// installation graph, so {B} is not a prefix and the resulting state
	// is not explainable.
	a := model.CopyPlus(1, "x", "y", 1)
	b := model.AssignConst(2, "y", model.IntVal(2))
	cg := conflict.FromOps(a, b)
	ig := FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	// State with only B's change installed: x=0 (stale), y=2.
	s := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(2)})
	bOnly := graph.NewSet[model.OpID](2)
	if ig.IsPrefix(bOnly) {
		t.Fatal("{B} must not be an installation prefix")
	}
	errExp := ig.Explains(sg, bOnly, s)
	if errExp == nil {
		t.Fatal("{B} should not explain the state")
	}
	f, ok := errExp.(*ExplainFailure)
	if !ok || !f.NotPrefixSet || f.NotPrefix != [2]model.OpID{1, 2} {
		t.Errorf("failure = %v, want prefix violation on edge 1→2", errExp)
	}
	// No prefix explains this state: x should be 1 after A, but replaying
	// A now reads y=2 and would write x=3.
	for _, pre := range []graph.Set[model.OpID]{
		graph.NewSet[model.OpID](),
		graph.NewSet[model.OpID](1),
		graph.NewSet[model.OpID](1, 2),
	} {
		if err := ig.PotentiallyRecoverable(sg, pre, s); err == nil {
			t.Errorf("state %v should not be recoverable via prefix %v", s, pre)
		}
	}
}

func TestScenario2Recoverable(t *testing.T) {
	// Figure 2: B: y←2 then A: x←y+1 from x=y=0. Installing A's change
	// (x=3) before B violates only the write-read edge B→A, so {A} is an
	// installation prefix and the state is recoverable by replaying B.
	b := model.AssignConst(1, "y", model.IntVal(2))
	a := model.CopyPlus(2, "x", "y", 1)
	cg := conflict.FromOps(b, a)
	ig := FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	s := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)}) // y still 0
	aOnly := graph.NewSet[model.OpID](2)
	if !ig.IsPrefix(aOnly) {
		t.Fatal("{A} must be an installation prefix")
	}
	if err := ig.Explains(sg, aOnly, s); err != nil {
		t.Fatalf("{A} should explain the state: %v", err)
	}
	rec, err := ig.Replay(sg, aOnly, s)
	if err != nil {
		t.Fatal(err)
	}
	if rec.GetInt("x") != 3 || rec.GetInt("y") != 2 {
		t.Errorf("recovered = %v, want x=3 y=2", rec)
	}
	if err := ig.PotentiallyRecoverable(sg, aOnly, s); err != nil {
		t.Error(err)
	}
}

func TestScenario3ExposedVariables(t *testing.T) {
	// Figure 3: C: ⟨x←x+1; y←y+1⟩ then D: x←y+1 from x=y=0. Only C's
	// change to y reaches the state. C's change to x is unexposed (D
	// blind-writes... no — D *reads* y and writes x; x's minimal outside
	// accessor is D, which writes x without reading it), so the state
	// {y=1} is explained by {C} and recovery replays D.
	c := model.IncrBoth(1, "x", 1, "y", 1)
	d := model.CopyPlus(2, "x", "y", 1)
	cg := conflict.FromOps(c, d)
	ig := FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	cOnly := graph.NewSet[model.OpID](1)
	if !Exposed(cg, cOnly, "y") {
		t.Error("y must be exposed by {C}: D reads it")
	}
	if Exposed(cg, cOnly, "x") {
		t.Error("x must be unexposed by {C}: D overwrites it without reading")
	}
	// State with only y installed — x retains its pre-crash garbage 0.
	s := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(1)})
	if err := ig.Explains(sg, cOnly, s); err != nil {
		t.Fatalf("{C} should explain {y=1}: %v", err)
	}
	rec, err := ig.Replay(sg, cOnly, s)
	if err != nil {
		t.Fatal(err)
	}
	if rec.GetInt("x") != 2 || rec.GetInt("y") != 1 {
		t.Errorf("recovered = %v, want x=2 y=1", rec)
	}
	// Even total garbage in x is explained, because x is unexposed.
	junk := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(1), "x": "junk"})
	if err := ig.Explains(sg, cOnly, junk); err != nil {
		t.Errorf("junk in unexposed x should still be explained: %v", err)
	}
}

func TestExposedNoOutsideAccess(t *testing.T) {
	cg, _, _ := figure5()
	all := graph.NewSet[model.OpID](1, 2, 3)
	if !Exposed(cg, all, "x") || !Exposed(cg, all, "y") {
		t.Error("everything exposed when all ops installed")
	}
	// A variable no operation accesses is exposed by any set.
	if !Exposed(cg, graph.NewSet[model.OpID](), "zz") {
		t.Error("untouched variable must be exposed")
	}
}

func TestExposedFlipExample(t *testing.T) {
	// Section 2.3: exposure can flip as I grows. H: ⟨x++;y++⟩ then
	// J: y←0. After I={}: minimal outside accessor of y is H, which
	// reads y → exposed. After I={H}: minimal outside accessor is J,
	// which blind-writes y → unexposed. After I={H,J}: exposed again.
	h := model.IncrBoth(1, "x", 1, "y", 1)
	j := model.AssignConst(2, "y", model.IntVal(0))
	cg := conflict.FromOps(h, j)
	if !Exposed(cg, graph.NewSet[model.OpID](), "y") {
		t.Error("y exposed by {} (H reads it)")
	}
	if Exposed(cg, graph.NewSet[model.OpID](1), "y") {
		t.Error("y unexposed by {H} (J blind-writes it)")
	}
	if !Exposed(cg, graph.NewSet[model.OpID](1, 2), "y") {
		t.Error("y exposed by {H,J}")
	}
}

func TestExposedAgreesWithReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 14, 4)
		cg := conflict.FromOps(ops...)
		ig := FromConflict(cg)
		installed := randomInstallPrefix(rng, ig)
		for _, x := range cg.Vars() {
			if Exposed(cg, installed, x) != ExposedByReachability(cg, installed, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTheorem3PotentialRecoverability(t *testing.T) {
	// The central property: for random histories, ANY installation graph
	// prefix, the determined values on exposed variables, and arbitrary
	// junk on unexposed variables, replaying the uninstalled operations in
	// conflict graph order reaches the final state.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 16, 5)
		s0 := randomState(rng, 5)
		cg := conflict.FromOps(ops...)
		ig := FromConflict(cg)
		sg, err := stategraph.FromConflict(cg, s0)
		if err != nil {
			return false
		}
		installed := randomInstallPrefix(rng, ig)
		state, err := ig.DeterminedState(sg, installed)
		if err != nil {
			return false
		}
		// Scribble junk over unexposed variables: recovery must not care.
		for _, x := range UnexposedVars(cg, installed) {
			state.SetInt(x, rng.Int63n(1<<40)+7777777)
		}
		return ig.PotentiallyRecoverable(sg, installed, state) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestReplayDetectsCorruptExposedVariable(t *testing.T) {
	// Corrupting an exposed variable must be detected: either Explains
	// fails, or replay hits an inapplicable operation, or the final state
	// is wrong. PotentiallyRecoverable must never return nil.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 12, 4)
		s0 := randomState(rng, 4)
		cg := conflict.FromOps(ops...)
		ig := FromConflict(cg)
		sg, err := stategraph.FromConflict(cg, s0)
		if err != nil {
			return false
		}
		installed := randomInstallPrefix(rng, ig)
		state, err := ig.DeterminedState(sg, installed)
		if err != nil {
			return false
		}
		exposed := ExposedVars(cg, installed)
		if len(exposed) == 0 {
			return true
		}
		x := exposed[rng.Intn(len(exposed))]
		state.Set(x, state.Get(x)+"corrupt")
		return ig.PotentiallyRecoverable(sg, installed, state) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConflictPrefixesAreInstallationPrefixes(t *testing.T) {
	// "Prefixes of the installation graph include the prefixes of the
	// conflict graph" (Section 3.1) — the installation graph is a
	// subgraph, so every conflict prefix is an installation prefix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 14, 4)
		cg := conflict.FromOps(ops...)
		ig := FromConflict(cg)
		pre := randomConflictPrefix(rng, cg)
		return ig.IsPrefix(pre)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestApplicableFigure5(t *testing.T) {
	_, ig, sg := figure5()
	// In the state explained by {P} (y=2, x still initial 1), O is
	// applicable: it reads x=1 exactly as in the original execution.
	s := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(1), "y": model.IntVal(2)})
	o := ig.Conflict().Op(1)
	if !ig.Applicable(sg, o, s) {
		t.Error("O should be applicable in the {P}-explained state")
	}
	// After O runs (x=2), Q reads x=2 as originally; O itself no longer is
	// applicable (x moved past the version it read).
	s.SetInt("x", 2)
	if ig.Applicable(sg, o, s) {
		t.Error("O should not be applicable once x has advanced")
	}
	q := ig.Conflict().Op(3)
	if !ig.Applicable(sg, q, s) {
		t.Error("Q should be applicable at x=2")
	}
}

func TestReplayRejectsNonPrefix(t *testing.T) {
	_, ig, sg := figure5()
	if _, err := ig.Replay(sg, graph.NewSet[model.OpID](3), model.NewState()); err == nil {
		t.Error("replay accepted a non-prefix installed set")
	}
}

func TestDeterminedStateFigure5(t *testing.T) {
	_, ig, sg := figure5()
	// Prefix {P}: y=3 (P wrote x+1 with x=2 from O... no — P read x=2?).
	// Execution order O,P,Q from x=1: O writes x=2, P reads x=2 writes
	// y=3, Q writes x=3. Prefix {P} determines y=3, x keeps initial 1.
	s, err := ig.DeterminedState(sg, graph.NewSet[model.OpID](2))
	if err != nil {
		t.Fatal(err)
	}
	if s.GetInt("x") != 1 || s.GetInt("y") != 3 {
		t.Errorf("determined by {P} = %v, want x=1 y=3", s)
	}
}

// --- helpers ---

func randomOps(rng *rand.Rand, n, k int) []*model.Op {
	vars := make([]model.Var, k)
	for i := range vars {
		vars[i] = model.Var(string(rune('a' + i)))
	}
	ops := make([]*model.Op, n)
	for i := range ops {
		var reads, writes []model.Var
		for _, v := range vars {
			if rng.Float64() < 0.3 {
				reads = append(reads, v)
			}
			if rng.Float64() < 0.25 {
				writes = append(writes, v)
			}
		}
		if len(writes) == 0 {
			writes = append(writes, vars[rng.Intn(k)])
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "w", reads, writes)
	}
	return ops
}

func randomState(rng *rand.Rand, k int) *model.State {
	s := model.NewState()
	for i := 0; i < k; i++ {
		if rng.Float64() < 0.7 {
			s.SetInt(model.Var(string(rune('a'+i))), rng.Int63n(100))
		}
	}
	return s
}

func randomInstallPrefix(rng *rand.Rand, ig *Graph) graph.Set[model.OpID] {
	return randomPrefixOf(rng, ig.DAG())
}

func randomConflictPrefix(rng *rand.Rand, cg *conflict.Graph) graph.Set[model.OpID] {
	return randomPrefixOf(rng, cg.DAG())
}

func randomPrefixOf(rng *rand.Rand, dag *graph.Graph[model.OpID]) graph.Set[model.OpID] {
	order, err := dag.TopoOrder()
	if err != nil {
		panic(err)
	}
	s := graph.NewSet[model.OpID]()
	for _, k := range order {
		ok := true
		for _, p := range dag.Preds(k) {
			if !s.Has(p) {
				ok = false
				break
			}
		}
		if ok && rng.Float64() < 0.6 {
			s.Add(k)
		}
	}
	return s
}
