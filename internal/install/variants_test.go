package install

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

func TestLegacyDropsDeadWriteWriteEdges(t *testing.T) {
	// u blind-writes x, v blind-writes x, nothing reads u's version: the
	// legacy graph drops the WW edge; the new graph keeps it.
	u := model.AssignConst(1, "x", model.IntVal(1))
	v := model.AssignConst(2, "x", model.IntVal(2))
	cg := conflict.FromOps(u, v)
	if FromConflict(cg).DAG().NumEdges() != 1 {
		t.Error("new definition must keep the WW edge")
	}
	if LegacyFromConflict(cg).DAG().NumEdges() != 0 {
		t.Error("legacy definition must drop the dead WW edge")
	}
}

func TestLegacyKeepsReadWWEdges(t *testing.T) {
	// u writes x, r reads it, v overwrites: the overwritten version is
	// read, so even the legacy graph keeps u→v.
	u := model.AssignConst(1, "x", model.IntVal(1))
	r := model.CopyPlus(2, "z", "x", 0)
	v := model.AssignConst(3, "x", model.IntVal(2))
	cg := conflict.FromOps(u, r, v)
	lg := LegacyFromConflict(cg)
	if !lg.DAG().HasEdge(1, 3) {
		t.Error("legacy graph dropped a WW edge whose overwritten version is read")
	}
	// The reader's own RW edge to the overwriter stays too.
	if !lg.DAG().HasEdge(2, 3) {
		t.Error("legacy graph dropped an RW edge")
	}
	// And pure WR edges still go.
	if lg.DAG().HasEdge(1, 2) {
		t.Error("legacy graph kept a pure WR edge")
	}
}

func TestLegacyEquivalenceProperty(t *testing.T) {
	// Section 1.3, claim 1: a state is explainable by a prefix of the
	// legacy installation graph iff it is explainable by a prefix of the
	// new one. Forward: every new prefix is a legacy prefix (the legacy
	// graph has a subset of the edges) with identical determined state
	// and exposure. Backward: the state determined by any legacy prefix
	// is explained by some new prefix, and is potentially recoverable.
	//
	// Note the comparison is over determined states: the junk-in-
	// unexposed-variables latitude is only sound relative to the new
	// definition, whose retained write-write edges are exactly what makes
	// the exposure analysis trustworthy (dropping edge 3→4 can make an
	// installed operation's write clobberable by its own replayed
	// predecessor — see the commit history of this test).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 9, 3)
		s0 := randomState(rng, 3)
		cg := conflict.FromOps(ops...)
		sg, err := stategraph.FromConflict(cg, s0)
		if err != nil {
			return false
		}
		ig := FromConflict(cg)
		lg := LegacyFromConflict(cg)

		newPrefixes, err := ig.DAG().EnumeratePrefixes(1 << 14)
		if err != nil {
			return true // too wide; skip this seed
		}
		legacyPrefixes, err := lg.DAG().EnumeratePrefixes(1 << 14)
		if err != nil {
			return true
		}
		// Forward: new prefixes are legacy prefixes.
		for _, p := range newPrefixes {
			if !lg.IsPrefix(p) {
				return false
			}
		}
		// Backward: each legacy-explained state is new-explainable.
		for _, pL := range legacyPrefixes {
			state, err := lg.DeterminedState(sg, pL)
			if err != nil {
				return false
			}
			explained := false
			for _, pN := range newPrefixes {
				if ig.Explains(sg, pN, state) == nil {
					if ig.PotentiallyRecoverable(sg, pN, state) != nil {
						return false // explained but not recoverable: Theorem 3 broken
					}
					explained = true
					break
				}
			}
			if !explained {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAblationKeepWRLosesScenario2(t *testing.T) {
	// With WR edges kept, {A} from Scenario 2 stops being a prefix: the
	// ablation is sound but forbids states the theory proves recoverable.
	b := model.AssignConst(1, "y", model.IntVal(2))
	a := model.CopyPlus(2, "x", "y", 1)
	cg := conflict.FromOps(b, a)
	strict := AblationKeepWR(cg)
	if strict.IsPrefix(graph.NewSet[model.OpID](2)) {
		t.Error("keep-WR ablation accepted {A}; it should be strictly smaller")
	}
	if !FromConflict(cg).IsPrefix(graph.NewSet[model.OpID](2)) {
		t.Error("real definition must accept {A}")
	}
}

func TestAblationKeepWRStrictlyFewerPrefixes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 8, 3)
		cg := conflict.FromOps(ops...)
		np, err := FromConflict(cg).DAG().EnumeratePrefixes(1 << 14)
		if err != nil {
			return true
		}
		sp, err := AblationKeepWR(cg).DAG().EnumeratePrefixes(1 << 14)
		if err != nil {
			return true
		}
		return len(sp) <= len(np)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAblationDropRWBreaksScenario1(t *testing.T) {
	// Dropping RW edges accepts Scenario 1's unrecoverable state as a
	// "prefix"; recovery then corrupts the state — Replay notices the
	// inapplicable operation or the final state is wrong.
	a := model.CopyPlus(1, "x", "y", 1)
	b := model.AssignConst(2, "y", model.IntVal(2))
	cg := conflict.FromOps(a, b)
	sg, err := stategraph.FromConflict(cg, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	broken := AblationDropRW(cg)
	bOnly := graph.NewSet[model.OpID](2)
	if !broken.IsPrefix(bOnly) {
		t.Fatal("drop-RW ablation should (wrongly) accept {B}")
	}
	state := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(2)})
	// The state is NOT recoverable; the unsound graph must fail at replay
	// or produce the wrong final state, never succeed.
	if err := broken.PotentiallyRecoverable(sg, bOnly, state); err == nil {
		t.Error("unsound ablation recovered an unrecoverable state without detection")
	}
}

func TestVariantsAgreeOnFigure5(t *testing.T) {
	cg, _, _ := figure5()
	// Legacy and new agree here: O→Q carries RW (kept by both); no dead
	// WW edges exist.
	lg := LegacyFromConflict(cg)
	ig := FromConflict(cg)
	for _, u := range cg.OpIDs() {
		for _, v := range cg.OpIDs() {
			if lg.DAG().HasEdge(u, v) != ig.DAG().HasEdge(u, v) {
				t.Errorf("edge %d→%d differs between legacy and new", u, v)
			}
		}
	}
}
