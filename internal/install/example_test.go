package install_test

import (
	"fmt"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

// Example walks the paper's Scenario 2: B: y←2 then A: x←y+1 from
// x=y=0. Installing A's result before B's violates only a write-read
// edge, which the installation graph drops, so the crash state {x=3} is
// explainable and replaying B recovers the final state.
func Example() {
	b := model.AssignConst(1, "y", model.IntVal(2))
	a := model.CopyPlus(2, "x", "y", 1)
	cg := conflict.FromOps(b, a)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, model.NewState())
	if err != nil {
		panic(err)
	}

	crashState := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)})
	installed := graph.NewSet[model.OpID](a.ID())

	fmt.Println("installation prefix:", ig.IsPrefix(installed))
	fmt.Println("explains crash state:", ig.Explains(sg, installed, crashState) == nil)
	recovered, err := ig.Replay(sg, installed, crashState)
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered:", recovered)
	// Output:
	// installation prefix: true
	// explains crash state: true
	// recovered: {x=3 y=2}
}

// ExampleExposed shows Scenario 3's exposure analysis: after installing
// C: ⟨x++;y++⟩, the variable x is unexposed because the uninstalled
// D: x←y+1 overwrites it without reading it.
func ExampleExposed() {
	c := model.IncrBoth(1, "x", 1, "y", 1)
	d := model.CopyPlus(2, "x", "y", 1)
	cg := conflict.FromOps(c, d)
	installed := graph.NewSet[model.OpID](c.ID())
	fmt.Println("x exposed:", install.Exposed(cg, installed, "x"))
	fmt.Println("y exposed:", install.Exposed(cg, installed, "y"))
	// Output:
	// x exposed: false
	// y exposed: true
}
