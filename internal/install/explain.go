package install

import (
	"fmt"

	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// ValueSource supplies the values an execution wrote: the initial state,
// each operation's written values, and the final state. The conflict
// state graph (stategraph.Graph) is the canonical implementation; the
// online auditor's incremental ledger is another. Explanation, replay,
// and applicability need only these values — never the state graph's
// edges — which is what makes incremental checking cheap.
type ValueSource interface {
	// Initial returns (a clone of) the initial state S0.
	Initial() *model.State
	// WriteValue returns the value op wrote to x during the execution.
	WriteValue(op model.OpID, x model.Var) (model.Value, bool)
	// FinalState returns the state determined by the whole history.
	FinalState() *model.State
}

// DeterminedState returns the state determined by a prefix of the
// installation graph (Section 3.1): the final values for all variables
// written by the prefix's operations when the operations are executed in
// conflict graph order, with unwritten variables taking their initial
// values. The value labels come from the conflict state graph sg, which
// must have been generated from the same conflict graph.
func (g *Graph) DeterminedState(vs ValueSource, installed graph.Set[model.OpID]) (*model.State, error) {
	if e, bad := g.PrefixViolation(installed); bad {
		return nil, fmt.Errorf("install: installed set is not an installation graph prefix (edge %d→%d crosses it)", e[0], e[1])
	}
	s := vs.Initial()
	for _, x := range g.cg.Vars() {
		writers := g.cg.Writers(x)
		// Writers of x in the prefix form a prefix of x's writer chain
		// (write-write edges survive in the installation graph), so the
		// last chain element inside the set wrote the determined value.
		for i := len(writers) - 1; i >= 0; i-- {
			if installed.Has(writers[i]) {
				v, ok := vs.WriteValue(writers[i], x)
				if !ok {
					return nil, fmt.Errorf("install: state graph node for op %d lacks a value for %q", writers[i], x)
				}
				s.Set(x, v)
				break
			}
		}
	}
	return s, nil
}

// ExplainFailure describes why a prefix does not explain a state: either
// the installed set is not an installation prefix, or an exposed variable
// has the wrong value.
type ExplainFailure struct {
	// NotPrefix holds the crossing edge when the installed set fails the
	// prefix test; both fields are zero otherwise.
	NotPrefix    [2]model.OpID
	NotPrefixSet bool
	// Var, Got, Want identify the first exposed variable whose value in
	// the state differs from the determined value.
	Var  model.Var
	Got  model.Value
	Want model.Value
}

// Error renders the failure.
func (f *ExplainFailure) Error() string {
	if f.NotPrefixSet {
		return fmt.Sprintf("install: installed set is not an installation graph prefix (edge %d→%d crosses it)", f.NotPrefix[0], f.NotPrefix[1])
	}
	return fmt.Sprintf("install: exposed variable %q has value %q, but the installed prefix determines %q", f.Var, f.Got, f.Want)
}

// Explains checks whether the installed prefix explains the state
// (Section 3.2): the installed set is a prefix of the installation graph
// and every variable it leaves exposed has the same value in the state
// and the state determined by the prefix. Unexposed variables may hold
// anything. It returns nil on success and an *ExplainFailure otherwise.
func (g *Graph) Explains(vs ValueSource, installed graph.Set[model.OpID], state *model.State) error {
	if e, bad := g.PrefixViolation(installed); bad {
		return &ExplainFailure{NotPrefix: e, NotPrefixSet: true}
	}
	det, err := g.DeterminedState(vs, installed)
	if err != nil {
		return err
	}
	for _, x := range g.cg.Vars() {
		if !Exposed(g.cg, installed, x) {
			continue
		}
		if got, want := state.Get(x), det.Get(x); got != want {
			return &ExplainFailure{Var: x, Got: got, Want: want}
		}
	}
	// Variables never accessed by any operation must still hold their
	// initial values: they are trivially exposed and determined by S0.
	initial := vs.Initial()
	for _, x := range state.Diff(initial) {
		if len(g.cg.Writers(x)) == 0 && len(g.cg.ReadersOfVersion(x, 0)) == 0 {
			return &ExplainFailure{Var: x, Got: state.Get(x), Want: initial.Get(x)}
		}
	}
	return nil
}
