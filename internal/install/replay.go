package install

import (
	"fmt"

	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// Applicable reports whether the operation is applicable to the state
// (Section 3.3): the values of the variables in its read set are the same
// in the state as in the state determined by the operation's predecessors
// in the conflict graph — i.e. the operation would read exactly what it
// read during normal execution, and hence write exactly what it wrote.
func (g *Graph) Applicable(vs ValueSource, op *model.Op, state *model.State) bool {
	_, err := g.applicabilityViolation(vs, op, state)
	return err == nil
}

// applicabilityViolation returns the first read-set variable whose value
// differs from the value the operation originally read.
func (g *Graph) applicabilityViolation(vs ValueSource, op *model.Op, state *model.State) (model.Var, error) {
	for _, x := range op.Reads() {
		version, ok := g.cg.VersionRead(op.ID(), x)
		if !ok {
			return x, fmt.Errorf("install: operation %s not recorded as a reader of %q", op, x)
		}
		var want model.Value
		if version == 0 {
			want = vs.Initial().Get(x)
		} else {
			w := g.cg.Writers(x)[version-1]
			v, ok := vs.WriteValue(w, x)
			if !ok {
				return x, fmt.Errorf("install: state graph lacks op %d's value for %q", w, x)
			}
			want = v
		}
		if got := state.Get(x); got != want {
			return x, fmt.Errorf("install: operation %s would read %s=%q, but it read %q during normal execution", op, x, got, want)
		}
	}
	return "", nil
}

// Replay implements the constructive argument of the Potential
// Recoverability Theorem (Theorem 3): starting from a state explained by
// the installed prefix, it repeatedly applies a minimal uninstalled
// operation until none remain, and returns the resulting state, which
// equals the final state determined by the conflict graph.
//
// Minimal uninstalled operations are chosen by the direct-edge test: an
// uninstalled operation all of whose direct conflict predecessors are
// installed. Every such operation is applicable — its read-set versions
// were written by installed operations and nothing installed after them —
// and extending the prefix with it preserves explanation, which is the
// induction step of the theorem's proof. Replay verifies applicability
// before every application and fails loudly if it does not hold, so an
// unexplained starting state is detected rather than silently corrupted.
//
// The input state is not modified.
func (g *Graph) Replay(vs ValueSource, installed graph.Set[model.OpID], state *model.State) (*model.State, error) {
	if e, bad := g.PrefixViolation(installed); bad {
		return nil, fmt.Errorf("install: replay from a non-prefix installed set (edge %d→%d crosses it)", e[0], e[1])
	}
	cur := state.Clone()
	// Frontier replay: track, per uninstalled operation, how many direct
	// conflict predecessors are still uninstalled; operations at zero are
	// minimal and applicable. Applying one decrements its uninstalled
	// successors. This is O(ops + edges) instead of rescanning the graph
	// per round.
	cdag := g.cg.DAG()
	indeg := make(map[model.OpID]int, g.cg.NumOps())
	var frontier []model.OpID
	remaining := 0
	for _, id := range cdag.Nodes() {
		if installed.Has(id) {
			continue
		}
		remaining++
		n := 0
		for _, p := range cdag.Preds(id) {
			if !installed.Has(p) {
				n++
			}
		}
		indeg[id] = n
		if n == 0 {
			frontier = append(frontier, id)
		}
	}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		op := g.cg.Op(id)
		if _, err := g.applicabilityViolation(vs, op, cur); err != nil {
			return nil, fmt.Errorf("install: replaying %s: %w", op, err)
		}
		if _, err := cur.Apply(op); err != nil {
			return nil, fmt.Errorf("install: replaying %s: %w", op, err)
		}
		remaining--
		for _, s := range cdag.Succs(id) {
			if installed.Has(s) {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("install: %d operations remain but none is minimal; conflict graph is corrupt", remaining)
	}
	return cur, nil
}

// PotentiallyRecoverable reports whether the state can be recovered by
// replaying some subset of the conflict graph's operations in conflict
// graph order (Section 3). By Theorem 3 this holds whenever some prefix
// of the installation graph explains the state; this function checks the
// given candidate prefix and then verifies the replay reaches the final
// state.
func (g *Graph) PotentiallyRecoverable(vs ValueSource, installed graph.Set[model.OpID], state *model.State) error {
	if err := g.Explains(vs, installed, state); err != nil {
		return err
	}
	got, err := g.Replay(vs, installed, state)
	if err != nil {
		return err
	}
	want := vs.FinalState()
	if !got.Equal(want) {
		return fmt.Errorf("install: replay ended in %v, want final state %v (diff: %v)", got, want, got.Diff(want))
	}
	return nil
}
