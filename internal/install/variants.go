package install

import (
	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// This file implements the paper's prior installation-graph definition
// and two deliberately broken ablations, all sharing Graph's machinery
// (prefix checks, determined states, explanation, replay), so the
// equivalence claim of Section 1.3 and the necessity of each edge class
// can be tested executably.

// LegacyFromConflict derives the installation graph of the authors'
// earlier formulation (Lomet & Tuttle, VLDB 1995), which removed
// write-write edges in addition to write-read edges via "an elaborate
// construction" — elaborate because naive dead-version rules are
// unsound. The construction implemented here removes a conflict edge
// u→v when:
//
//   - it carries no read-write conflict,
//   - v is a pure blind write (its read set is empty) with no conflict
//     successors of its own, and
//   - for every variable y that v writes, no operation other than v
//     reads any version of y up to and including the version v writes.
//
// Installing v ahead of u is then harmless: v's writes are constants
// independent of any predecessor, and the values they displace are never
// observed. Each weakening of this rule is demonstrably unsound, which
// is presumably why the 1995 paper's construction was "elaborate":
// requiring only u's own version to be dead admits prefixes where an
// uninstalled earlier writer is replayed and clobbers a value a later
// reader needs; allowing readers of v's own version admits prefixes
// where replay rewrites the variable underneath such a reader; allowing
// v to have reads admits prefixes whose determined states mix values
// "from the future" with stale inputs, which no prefix of the new graph
// explains; and allowing v to have conflict successors lets a dependent
// of v ride into such a mixed prefix transitively. The rule here is a
// conservative rendering validated by the equivalence property test. Section 1.3 claims the old and new definitions are
// equivalent — a state is explainable by a prefix of one iff it is
// explainable by a prefix of the other — and
// TestLegacyEquivalenceProperty verifies exactly that over the states
// the prefixes determine.
func LegacyFromConflict(cg *conflict.Graph) *Graph {
	dag := graph.New[model.OpID]()
	cdag := cg.DAG()
	for _, u := range cdag.Nodes() {
		dag.AddNode(u)
		for _, v := range cdag.Succs(u) {
			if keepLegacyEdge(cg, u, v) {
				dag.AddEdge(u, v)
			}
		}
	}
	return &Graph{cg: cg, dag: dag}
}

func keepLegacyEdge(cg *conflict.Graph, u, v model.OpID) bool {
	k := cg.Kind(u, v)
	if k&conflict.RW != 0 {
		return true // read-write conflicts always constrain installation
	}
	if k&conflict.WW == 0 {
		return false // pure write-read: dropped, as in the new definition
	}
	// Write-write: droppable only for a maximal pure blind writer v none
	// of whose displaced or written versions are observed.
	opV := cg.Op(v)
	if len(opV.Reads()) != 0 || cg.DAG().OutDegree(v) != 0 {
		return true
	}
	for _, y := range opV.Writes() {
		writers := cg.Writers(y)
		vVersion := -1
		for i, w := range writers {
			if w == v {
				vVersion = i + 1 // writers[i] produces version i+1
				break
			}
		}
		if vVersion == -1 {
			continue
		}
		for j := 0; j <= vVersion; j++ {
			for _, r := range cg.ReadersOfVersion(y, j) {
				if r != v {
					return true // an observed version: the edge matters
				}
			}
		}
	}
	return false
}

// AblationKeepWR returns the conflict graph itself used as an
// installation graph: the "never drop write-read edges" ablation. It is
// sound but needlessly strict — states like Scenario 2's, explainable
// under the real definition, stop being explainable.
func AblationKeepWR(cg *conflict.Graph) *Graph {
	return &Graph{cg: cg, dag: cg.DAG().Clone()}
}

// AblationDropRW returns the unsound ablation that drops read-write
// edges along with write-read ones (keeping an edge only if it carries a
// write-write conflict). Under it Scenario 1's state passes the prefix
// test, and replay then corrupts the state — which is precisely how the
// tests demonstrate that read-write edges are load-bearing.
func AblationDropRW(cg *conflict.Graph) *Graph {
	dag := graph.New[model.OpID]()
	cdag := cg.DAG()
	for _, u := range cdag.Nodes() {
		dag.AddNode(u)
		for _, v := range cdag.Succs(u) {
			if cg.Kind(u, v)&conflict.WW != 0 {
				dag.AddEdge(u, v)
			}
		}
	}
	return &Graph{cg: cg, dag: dag}
}
