// Package install implements the heart of the paper: the installation
// graph (Section 3.1), exposed variables (Section 2.3), explainable states
// (Section 3.2), operation applicability (Section 3.3), and the replay
// argument behind the Potential Recoverability Theorem (Theorem 3).
//
// The installation graph is the conflict graph with the edges resulting
// solely from write-read conflicts removed. Its prefixes are the sets of
// operations that may appear installed in a recoverable state; they
// strictly include the conflict graph's prefixes (Figure 5). A prefix
// explains a state when every variable it leaves exposed has the value the
// prefix determines; explainable states are exactly the potentially
// recoverable ones.
package install

import (
	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// Graph is an installation graph derived from a conflict graph.
type Graph struct {
	cg  *conflict.Graph
	dag *graph.Graph[model.OpID]
	// synced counts how many of the conflict graph's operations (in
	// invocation order) have been incorporated; see Sync.
	synced int
}

// FromConflict derives the installation graph: every conflict edge whose
// kind set is exactly {write-read} is dropped; all other edges are kept.
func FromConflict(cg *conflict.Graph) *Graph {
	g := NewIncremental(cg)
	g.Sync()
	return g
}

// NewIncremental returns an installation graph bound to a growing
// conflict graph. Call Sync after appending operations to the conflict
// graph; each sync only processes the new operations, which works
// because appending to a conflict graph adds edges exclusively into the
// newest operation. The online auditor uses this to keep the
// installation graph current in O(new edges) per operation.
func NewIncremental(cg *conflict.Graph) *Graph {
	return &Graph{cg: cg, dag: graph.New[model.OpID]()}
}

// Sync catches the installation graph up with its conflict graph and
// returns how many operations were added.
func (g *Graph) Sync() int {
	order := g.cg.InvocationOrder()
	added := 0
	for _, id := range order[g.synced:] {
		g.dag.AddNode(id)
		for _, p := range g.cg.DAG().Preds(id) {
			if g.cg.Kind(p, id) != conflict.WR {
				g.dag.AddEdge(p, id)
			}
		}
		added++
	}
	g.synced = len(order)
	return added
}

// Conflict returns the conflict graph the installation graph derives from.
func (g *Graph) Conflict() *conflict.Graph { return g.cg }

// DAG returns the installation DAG. The graph is shared; callers must not
// modify it.
func (g *Graph) DAG() *graph.Graph[model.OpID] { return g.dag }

// IsPrefix reports whether the operation set is a prefix of the
// installation graph. Operations in the set must label the graph.
func (g *Graph) IsPrefix(installed graph.Set[model.OpID]) bool {
	return g.dag.IsPrefix(installed)
}

// PrefixViolation returns an installation edge crossing into the set from
// outside, witnessing that the set is not a prefix.
func (g *Graph) PrefixViolation(installed graph.Set[model.OpID]) ([2]model.OpID, bool) {
	return g.dag.PrefixViolation(installed)
}

// MinimalUninstalled returns the minimal uninstalled operations after the
// prefix: minimal elements of the conflict graph (not the installation
// graph — replay happens in conflict graph order, Section 3.3) among the
// operations outside the installed set.
//
// The installed set must be a prefix of the installation graph, but need
// not be one of the conflict graph; a conflict WR edge may cross from an
// uninstalled operation into the set. Such an edge never affects
// minimality of complement elements, because it points into the set, so
// the direct-predecessor test against the conflict DAG is still exact:
// any conflict path between two uninstalled operations would have to
// leave the installed set again, and the only edges out of an
// installation prefix in the conflict DAG start at set members.
func (g *Graph) MinimalUninstalled(installed graph.Set[model.OpID]) []model.OpID {
	return g.cg.DAG().MinimalOutside(installed)
}
