package install

import (
	"sort"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// Exposed reports whether x is exposed by the operation set I
// (Section 2.3): either no operation outside I accesses x, or some
// operation outside I accesses x and a minimal such operation reads x. A
// variable is unexposed exactly when the minimal outside access is a
// blind write — its current value will be overwritten before anything
// reads it, so recovery never observes it.
//
// The computation walks x's writer chain in version order: writers of x
// are totally ordered by the conflict edges on x, every reader of version
// i precedes the writer of version i+1 (read-write edge) and follows the
// writer of version i (write-read edge), so the earliest chain level
// containing an operation outside I contains the minimal outside
// accessors. If that level is a set of readers, x is exposed; if it is a
// writer, x is exposed iff the writer also reads x. Cost is O(accesses of
// x) with no reachability queries; TestExposedAgreesWithReachability
// cross-checks it against a brute-force implementation.
func Exposed(cg *conflict.Graph, installed graph.Set[model.OpID], x model.Var) bool {
	writers := cg.Writers(x)
	for v := 0; ; v++ {
		for _, r := range cg.ReadersOfVersion(x, v) {
			if !installed.Has(r) {
				return true // a minimal outside accessor reads x
			}
		}
		if v >= len(writers) {
			return true // no operation outside I accesses x
		}
		w := writers[v]
		if !installed.Has(w) {
			// The writer of version v+1 is the minimal outside accessor.
			// It is exposed only if the write also reads x (e.g. x←x+1).
			return cg.Op(w).ReadsVar(x)
		}
	}
}

// ExposedVars returns, in sorted order, every variable of the conflict
// graph exposed by the installed set.
func ExposedVars(cg *conflict.Graph, installed graph.Set[model.OpID]) []model.Var {
	var out []model.Var
	for _, x := range cg.Vars() {
		if Exposed(cg, installed, x) {
			out = append(out, x)
		}
	}
	return out
}

// UnexposedVars returns, in sorted order, every variable of the conflict
// graph left unexposed by the installed set.
func UnexposedVars(cg *conflict.Graph, installed graph.Set[model.OpID]) []model.Var {
	var out []model.Var
	for _, x := range cg.Vars() {
		if !Exposed(cg, installed, x) {
			out = append(out, x)
		}
	}
	return out
}

// ExposedByReachability is the reference implementation of Exposed taken
// directly from the Section 2.3 definition: collect the operations
// outside I accessing x, find the minimal ones under the full conflict
// path order, and check whether one of them reads x. It costs a
// reachability query per accessor pair and exists to cross-check Exposed.
func ExposedByReachability(cg *conflict.Graph, installed graph.Set[model.OpID], x model.Var) bool {
	outside := graph.NewSet[model.OpID]()
	consider := func(id model.OpID) {
		if !installed.Has(id) {
			outside.Add(id)
		}
	}
	writers := cg.Writers(x)
	for v := 0; v <= len(writers); v++ {
		for _, r := range cg.ReadersOfVersion(x, v) {
			consider(r)
		}
		if v < len(writers) {
			consider(writers[v])
		}
	}
	if len(outside) == 0 {
		return true
	}
	minimal := cg.DAG().MinimalByReachability(outside)
	sort.Slice(minimal, func(i, j int) bool { return minimal[i] < minimal[j] })
	for _, id := range minimal {
		if cg.Op(id).ReadsVar(x) {
			return true
		}
	}
	return false
}
