package conflict

import (
	"testing"

	"redotheory/internal/model"
)

func TestSelfFollowingWriteExcluded(t *testing.T) {
	// H: ⟨x++;y++⟩ then J: y←0. H reads y (version 0) and itself writes
	// y, so H — not J — is the "following write" for H's own read: the
	// definition never relates an operation to itself, and H→J carries
	// only the write-write conflict. (The edge survives in the
	// installation graph either way, which is what Section 5 needs.)
	h := model.IncrBoth(1, "x", 1, "y", 1)
	j := model.AssignConst(2, "y", model.IntVal(0))
	g := FromOps(h, j)
	if k := g.Kind(1, 2); k != WW {
		t.Errorf("H→J kind = %v, want WW only", k)
	}
}

func TestReadersAcrossVersionsGetDistinctFollowingWrites(t *testing.T) {
	// r1 reads version 0, w1 writes, r2 reads version 1, w2 writes:
	// r1→w1 and r2→w2 are the only RW edges.
	r1 := model.CopyPlus(1, "a", "x", 0)
	w1 := model.AssignConst(2, "x", model.IntVal(1))
	r2 := model.CopyPlus(3, "b", "x", 0)
	w2 := model.AssignConst(4, "x", model.IntVal(2))
	g := FromOps(r1, w1, r2, w2)
	if g.Kind(1, 2) != RW {
		t.Errorf("r1→w1 = %v", g.Kind(1, 2))
	}
	if g.Kind(3, 4) != RW {
		t.Errorf("r2→w2 = %v", g.Kind(3, 4))
	}
	if g.Kind(1, 4) != 0 {
		t.Errorf("r1→w2 = %v, want none (w1 intervenes)", g.Kind(1, 4))
	}
	if g.Kind(2, 3) != WR {
		t.Errorf("w1→r2 = %v", g.Kind(2, 3))
	}
	if g.Kind(2, 4) != WW {
		t.Errorf("w1→w2 = %v", g.Kind(2, 4))
	}
}

func TestConcurrentReadersShareNoEdge(t *testing.T) {
	// Two readers of the same version do not conflict with each other.
	r1 := model.CopyPlus(1, "a", "x", 0)
	r2 := model.CopyPlus(2, "b", "x", 0)
	g := FromOps(r1, r2)
	if g.Kind(1, 2) != 0 && g.Kind(2, 1) != 0 {
		t.Error("readers of the same version must not conflict")
	}
	if g.DAG().NumEdges() != 0 {
		t.Errorf("edges = %d", g.DAG().NumEdges())
	}
}

func TestVersionRead(t *testing.T) {
	w1 := model.AssignConst(1, "x", model.IntVal(1))
	r := model.CopyPlus(2, "y", "x", 0)
	w2 := model.Incr(3, "x", 1)
	g := FromOps(w1, r, w2)
	if v, ok := g.VersionRead(2, "x"); !ok || v != 1 {
		t.Errorf("r read version %d,%v, want 1", v, ok)
	}
	if v, ok := g.VersionRead(3, "x"); !ok || v != 1 {
		t.Errorf("w2 (x←x+1) read version %d,%v, want 1", v, ok)
	}
	if _, ok := g.VersionRead(1, "x"); ok {
		t.Error("blind write reported a read version")
	}
	if _, ok := g.VersionRead(2, "zz"); ok {
		t.Error("unread variable reported a version")
	}
}

func TestEqualKindSensitivity(t *testing.T) {
	// Graphs with the same edges but different kinds compare unequal.
	// x←x+1 then x←x+1: WW|WR. Compare against blind x←1 then x←x+1:
	// also WW|WR? The first writes then the increment reads it: same
	// kinds. Build a genuinely different pair instead: read-then-write
	// (RW) vs write-then-read-write (WW|WR).
	a1 := model.CopyPlus(1, "y", "x", 0) // reads x
	b1 := model.AssignConst(2, "x", model.IntVal(1))
	g1 := FromOps(a1, b1) // RW edge 1→2

	a2 := model.AssignConst(1, "x", model.IntVal(1))
	b2 := model.Incr(2, "x", 1)
	g2 := FromOps(a2, b2) // WW|WR edge 1→2
	if g1.Equal(g2) {
		t.Error("different kinds compared equal")
	}
}

func TestNumOpsAndHasOp(t *testing.T) {
	g := FromOps(model.Incr(5, "x", 1))
	if g.NumOps() != 1 || !g.HasOp(5) || g.HasOp(6) {
		t.Error("op accounting wrong")
	}
	if g.Op(6) != nil {
		t.Error("unknown op non-nil")
	}
}

func TestLongChainStructure(t *testing.T) {
	// A 1000-op increment chain forms a path graph with WW|WR edges.
	g := New()
	for i := 1; i <= 1000; i++ {
		g.Append(model.Incr(model.OpID(i), "x", 1))
	}
	if g.DAG().NumEdges() != 999 {
		t.Errorf("edges = %d, want 999", g.DAG().NumEdges())
	}
	if len(g.Writers("x")) != 1000 {
		t.Error("writer chain incomplete")
	}
	if g.NumVersions("x") != 1001 {
		t.Errorf("versions = %d", g.NumVersions("x"))
	}
}
