package trace

import (
	"testing"

	"redotheory/internal/core"
)

// FuzzDecodeMaterialize checks that arbitrary bytes never panic the
// decoder or the materializer, and that traces that survive both always
// produce a checkable configuration.
func FuzzDecodeMaterialize(f *testing.F) {
	good, err := (&Trace{
		Ops: []Op{
			{ID: 1, Name: "B", Wrote: map[string]string{"y": "2"}},
			{ID: 2, Name: "A", Reads: []string{"y"}, Wrote: map[string]string{"x": "3"}},
		},
		State:     map[string]string{"x": "3"},
		Installed: []uint64{2},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"ops":[{"id":1,"wrote":{"x":"1"}}],"state":{},"installed":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"ops":[{"id":1,"wrote":{"x":"1"},"reads":["x","x","y"]}],"installed":[1]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		ops, initial, state, installed, err := tr.Materialize()
		if err != nil {
			return
		}
		log := core.NewLog()
		for _, op := range ops {
			log.Append(op)
		}
		ck, err := core.NewChecker(log, initial)
		if err != nil {
			t.Fatalf("materialized trace failed checker construction: %v", err)
		}
		rep := ck.CheckInstalled(state, installed)
		if rep == nil {
			t.Fatal("nil report")
		}
		_ = rep.Summary()
	})
}
