package trace

import (
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// checkTrace materializes a trace and runs the invariant checker.
func checkTrace(t *testing.T, tr *Trace) *core.Report {
	t.Helper()
	ops, initial, state, installed, err := tr.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	log := core.NewLog()
	for _, op := range ops {
		log.Append(op)
	}
	ck, err := core.NewChecker(log, initial)
	if err != nil {
		t.Fatal(err)
	}
	return ck.CheckInstalled(state, installed)
}

func scenario2Trace() *Trace {
	return &Trace{
		Ops: []Op{
			{ID: 1, Name: "B", Wrote: map[string]string{"y": "2"}},
			{ID: 2, Name: "A", Reads: []string{"y"}, Wrote: map[string]string{"x": "3"}},
		},
		State:     map[string]string{"x": "3"},
		Installed: []uint64{2},
	}
}

func TestScenario2TraceChecksOK(t *testing.T) {
	rep := checkTrace(t, scenario2Trace())
	if !rep.OK {
		t.Errorf("scenario 2 trace rejected: %s", rep.Summary())
	}
}

func TestScenario1TraceChecksViolated(t *testing.T) {
	tr := &Trace{
		Ops: []Op{
			{ID: 1, Name: "A", Reads: []string{"y"}, Wrote: map[string]string{"x": "1"}},
			{ID: 2, Name: "B", Wrote: map[string]string{"y": "2"}},
		},
		State:     map[string]string{"y": "2"},
		Installed: []uint64{2},
	}
	rep := checkTrace(t, tr)
	if rep.OK {
		t.Error("scenario 1 trace accepted")
	}
	if rep.Violations[0].Kind != core.NotPrefix {
		t.Errorf("kind = %v", rep.Violations[0].Kind)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := scenario2Trace()
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	rep := checkTrace(t, back)
	if !rep.OK {
		t.Error("round-tripped trace rejected")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte(`{"ops":[]}`)); err == nil {
		t.Error("empty history accepted")
	}
}

func TestMaterializeErrors(t *testing.T) {
	cases := []*Trace{
		{Ops: []Op{{ID: 0, Wrote: map[string]string{"x": "1"}}}},
		{Ops: []Op{{ID: 1, Wrote: map[string]string{"x": "1"}}, {ID: 1, Wrote: map[string]string{"y": "1"}}}},
		{Ops: []Op{{ID: 1, Wrote: map[string]string{}}}},
		{Ops: []Op{{ID: 1, Wrote: map[string]string{"x": "1"}}}, Installed: []uint64{9}},
	}
	for i, tr := range cases {
		if _, _, _, _, err := tr.Materialize(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	// Capture a live history and verify the trace audits identically.
	ops := []*model.Op{
		model.AssignConst(1, "y", model.IntVal(2)),
		model.CopyPlus(2, "x", "y", 1),
	}
	state := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)})
	tr, err := Capture(ops, model.NewState(), state, graph.NewSet[model.OpID](2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 2 || tr.Ops[1].Wrote["x"] != "3" {
		t.Errorf("captured trace = %+v", tr)
	}
	rep := checkTrace(t, tr)
	if !rep.OK {
		t.Errorf("captured trace rejected: %s", rep.Summary())
	}
}
