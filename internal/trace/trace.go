// Package trace records and replays recovery audits: a serialized
// history (operations with the values they wrote), the stable state at a
// crash, and the set of operations a recovery method claims are
// installed. cmd/redocheck reads a trace and runs the recovery-invariant
// checker over it, so the checker can audit systems that merely *log*
// their histories without linking against this library.
//
// Traced operations carry their written values as constants rather than
// executable functions — exactly what the checker needs: the invariant
// (prefix of the installation graph + explanation of exposed variables)
// is a property of the conflict structure and the written values, not of
// the operations' code.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

// Op is a traced operation: its conflict footprint plus the values it
// wrote during the traced execution.
type Op struct {
	ID    uint64            `json:"id"`
	Name  string            `json:"name,omitempty"`
	Reads []string          `json:"reads,omitempty"`
	Wrote map[string]string `json:"wrote"`
}

// Trace is a serialized recovery audit input.
type Trace struct {
	// Initial is the initial state (zero-valued variables omitted).
	Initial map[string]string `json:"initial,omitempty"`
	// Ops is the history in invocation (log) order.
	Ops []Op `json:"ops"`
	// State is the stable state at the crash.
	State map[string]string `json:"state"`
	// Installed is the set of operation ids the system claims are
	// installed (operations recovery would not replay).
	Installed []uint64 `json:"installed"`
}

// Encode renders the trace as indented JSON.
func (t *Trace) Encode() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Decode parses a JSON trace.
func Decode(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(t.Ops) == 0 {
		return nil, fmt.Errorf("trace: no operations")
	}
	return &t, nil
}

// Materialize turns the trace into checker inputs: the history as model
// operations (writing the recorded constants), the initial and crash
// states, and the claimed installed set.
func (t *Trace) Materialize() ([]*model.Op, *model.State, *model.State, graph.Set[model.OpID], error) {
	ops := make([]*model.Op, 0, len(t.Ops))
	seen := make(map[uint64]bool, len(t.Ops))
	for i, to := range t.Ops {
		if to.ID == 0 {
			return nil, nil, nil, nil, fmt.Errorf("trace: op %d has id 0", i)
		}
		if seen[to.ID] {
			return nil, nil, nil, nil, fmt.Errorf("trace: duplicate op id %d", to.ID)
		}
		seen[to.ID] = true
		if len(to.Wrote) == 0 {
			return nil, nil, nil, nil, fmt.Errorf("trace: op %d wrote nothing", to.ID)
		}
		reads := make([]model.Var, len(to.Reads))
		for j, r := range to.Reads {
			reads[j] = model.Var(r)
		}
		writes := make([]model.Var, 0, len(to.Wrote))
		ws := make(model.WriteSet, len(to.Wrote))
		for w, v := range to.Wrote {
			writes = append(writes, model.Var(w))
			ws[model.Var(w)] = model.Value(v)
		}
		name := to.Name
		if name == "" {
			name = fmt.Sprintf("op%d", to.ID)
		}
		wsCopy := ws
		ops = append(ops, model.NewOp(model.OpID(to.ID), name, reads, writes,
			func(model.ReadSet) model.WriteSet { return wsCopy }))
	}
	initial := stateOf(t.Initial)
	state := stateOf(t.State)
	installed := graph.NewSet[model.OpID]()
	for _, id := range t.Installed {
		if !seen[id] {
			return nil, nil, nil, nil, fmt.Errorf("trace: installed op %d is not in the history", id)
		}
		installed.Add(model.OpID(id))
	}
	return ops, initial, state, installed, nil
}

func stateOf(m map[string]string) *model.State {
	s := model.NewState()
	for k, v := range m {
		s.Set(model.Var(k), model.Value(v))
	}
	return s
}

// Capture builds a trace from a live history: the operations are
// executed from the initial state to record their written values (via
// the conflict state graph), and the given crash state and installed set
// are embedded.
func Capture(ops []*model.Op, initial, state *model.State, installed graph.Set[model.OpID]) (*Trace, error) {
	cg := conflict.FromOps(ops...)
	sg, err := stategraph.FromConflict(cg, initial)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t := &Trace{
		Initial: stateMap(initial),
		State:   stateMap(state),
	}
	for _, op := range ops {
		to := Op{ID: uint64(op.ID()), Name: op.Name(), Wrote: map[string]string{}}
		for _, r := range op.Reads() {
			to.Reads = append(to.Reads, string(r))
		}
		node := sg.NodeOf(op.ID())
		for x, v := range node.Writes() {
			to.Wrote[string(x)] = string(v)
		}
		t.Ops = append(t.Ops, to)
	}
	for id := range installed {
		t.Installed = append(t.Installed, uint64(id))
	}
	sort.Slice(t.Installed, func(i, j int) bool { return t.Installed[i] < t.Installed[j] })
	return t, nil
}

func stateMap(s *model.State) map[string]string {
	out := make(map[string]string, s.Len())
	for _, v := range s.Vars() {
		out[string(v)] = string(s.Get(v))
	}
	return out
}
