// Package sim drives crash/recovery simulations: it runs a workload
// through a recovery method with a randomized schedule of background
// flushes, log forces, and checkpoints; crashes at a chosen point; audits
// the Recovery Invariant over the survivors with the core checker; runs
// the abstract recovery procedure; and verifies the recovered state
// against the oracle (the stable log's operations applied in order).
// This is the harness behind the Section 6 crash-matrix experiment (E9)
// and the WAL fault-injection demonstration.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"redotheory/internal/core"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// Factory builds a fresh DB under some method from an initial state.
type Factory func(*model.State) method.DB

// Config describes one simulation run.
type Config struct {
	// Ops is the workload, executed in order.
	Ops []*model.Op
	// Initial is the initial stable state.
	Initial *model.State
	// CrashAfter crashes the system after that many operations have
	// executed (0 = immediately, len(Ops) = after all).
	CrashAfter int
	// Seed drives the background schedule (flushes, forces, checkpoints).
	Seed int64
	// FlushProb, ForceProb, CheckpointProb are per-operation probabilities
	// of the corresponding background action. Zero values get defaults
	// (0.3, 0.2, 0.1).
	FlushProb, ForceProb, CheckpointProb float64
	// TruncateProb is the probability that a checkpoint is followed by a
	// log truncation (folding the covered records into the recovery base
	// state). Zero means never truncate.
	TruncateProb float64
	// DisableWAL injects the write-ahead-log fault.
	DisableWAL bool
	// SkipChecker skips the invariant audit (for pure throughput
	// benchmarks).
	SkipChecker bool
	// OnlineAudit attaches a core.Auditor that follows the execution live
	// (one Logged call per operation, PageInstalled on every flush) and
	// audits the invariant both continuously and at the crash. Only valid
	// for methods that log exactly one record per operation through the
	// cache (the page-LSN family); the caller is responsible for the
	// match.
	OnlineAudit bool
	// ParallelWorkers, when positive, additionally runs partitioned
	// parallel recovery (method.RecoverParallel) with that many workers
	// and records whether it reproduced the sequential outcome.
	ParallelWorkers int
	// Recorder, when non-nil, is attached to the DB for the whole run
	// (exec/flush/checkpoint/WAL counters) and threaded through recovery
	// (phase spans, redo verdicts). Recorders are race-clean, so one may
	// be shared across concurrent runs to aggregate a sweep.
	Recorder *obs.Recorder
}

// Result reports one simulation run.
type Result struct {
	Method string
	// Recovered is true when the recovered state equals the oracle.
	Recovered bool
	// InvariantOK is the checker's verdict on the crash state (true when
	// SkipChecker was set and the recovery outcome was correct).
	InvariantOK bool
	// Violations lists the checker's findings.
	Violations []core.Violation
	// StableOps is how many operations survived in the stable log.
	StableOps int
	// Replayed is how many operations recovery redid.
	Replayed int
	// Examined is how many log records recovery examined.
	Examined int
	// Stats carries the method's counters at crash time.
	Stats method.Stats
	// RecoverErr is non-nil if the recovery procedure itself failed.
	RecoverErr error
	// OnlineOK is the live auditor's verdict at the crash (true when
	// OnlineAudit was off).
	OnlineOK bool
	// TruncatedRecords counts log records dropped by truncation.
	TruncatedRecords int
	// OnlineAudits counts the live audits performed.
	OnlineAudits int
	// ParallelAgrees is the parallel-recovery cross-check verdict: the
	// partitioned replay produced the sequential outcome (true when
	// ParallelWorkers was off).
	ParallelAgrees bool
	// ParallelComponents is how many independent components the parallel
	// plan replayed (0 when ParallelWorkers was off).
	ParallelComponents int
	// Wall is the wall-clock duration of the sequential recovery pass.
	Wall time.Duration
}

// Run executes one simulation.
func Run(mk Factory, cfg Config) (*Result, error) {
	if cfg.Initial == nil {
		cfg.Initial = model.NewState()
	}
	flushP, forceP, ckP := cfg.FlushProb, cfg.ForceProb, cfg.CheckpointProb
	if flushP == 0 {
		flushP = 0.3
	}
	if forceP == 0 {
		forceP = 0.2
	}
	if ckP == 0 {
		ckP = 0.1
	}
	if cfg.CrashAfter < 0 || cfg.CrashAfter > len(cfg.Ops) {
		return nil, fmt.Errorf("sim: crash point %d out of range [0,%d]", cfg.CrashAfter, len(cfg.Ops))
	}

	db := mk(cfg.Initial)
	if cfg.Recorder != nil {
		db.SetRecorder(cfg.Recorder)
	}
	if cfg.DisableWAL {
		db.DisableWAL()
	}
	var auditor *core.Auditor
	if cfg.OnlineAudit {
		auditor = core.NewAuditor(cfg.Initial)
		db.SetInstallHook(auditor.PageInstalled)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	onlineOK := true
	truncated := 0
	for i := 0; i < cfg.CrashAfter; i++ {
		if err := db.Exec(cfg.Ops[i]); err != nil {
			return nil, fmt.Errorf("sim: %s: executing op %d: %w", db.Name(), i, err)
		}
		if auditor != nil {
			if _, err := auditor.Logged(cfg.Ops[i]); err != nil {
				return nil, fmt.Errorf("sim: online auditor: %w", err)
			}
		}
		if rng.Float64() < flushP {
			db.FlushOne()
		}
		if rng.Float64() < forceP {
			db.FlushLog()
		}
		if rng.Float64() < ckP {
			if err := db.Checkpoint(); err != nil {
				return nil, fmt.Errorf("sim: %s: checkpoint: %w", db.Name(), err)
			}
			if cfg.TruncateProb > 0 && rng.Float64() < cfg.TruncateProb {
				if tr, ok := db.(method.Truncator); ok {
					n, err := tr.TruncateCheckpointed()
					if err != nil {
						return nil, fmt.Errorf("sim: %s: truncate: %w", db.Name(), err)
					}
					truncated += n
				}
			}
		}
		if auditor != nil {
			// Continuous auditing: a crash after this step must leave an
			// explainable stable state.
			if rep := auditor.Audit(db.StableState()); !rep.OK {
				onlineOK = false
			}
		}
	}
	stats := db.Stats()
	db.Crash()

	res := &Result{Method: db.Name(), Stats: stats, OnlineOK: onlineOK, TruncatedRecords: truncated}
	if auditor != nil {
		res.OnlineAudits = auditor.Audits
	}
	stableLog := db.StableLog()
	res.StableOps = stableLog.Len()

	// Oracle: the state determined by the surviving log's conflict graph,
	// applied against the recovery base (the initial state plus every
	// truncated operation).
	oracle := db.RecoveryBase()
	for _, op := range stableLog.Ops() {
		if _, err := oracle.Apply(op); err != nil {
			return nil, fmt.Errorf("sim: oracle replay: %w", err)
		}
	}

	// Invariant audit at the crash point.
	if !cfg.SkipChecker {
		checker, err := core.NewChecker(stableLog, db.RecoveryBase())
		if err != nil {
			return nil, fmt.Errorf("sim: building checker: %w", err)
		}
		rep := checker.Check(db.StableState(), stableLog, db.Checkpointed(), db.RedoTest(), db.Analyze(), false)
		res.InvariantOK = rep.OK
		res.Violations = rep.Violations
	}

	// Recovery (fresh redo test) and verification.
	start := time.Now()
	rec, err := method.RecoverObserved(db, cfg.Recorder)
	res.Wall = time.Since(start)
	if err != nil {
		res.RecoverErr = err
		return res, nil
	}
	res.Replayed = len(rec.RedoSet)
	res.Examined = rec.Examined
	res.Recovered = rec.State.Equal(oracle)
	if cfg.SkipChecker {
		res.InvariantOK = res.Recovered
	}

	// Parallel cross-check: partitioned replay must reproduce the
	// sequential outcome bit for bit.
	res.ParallelAgrees = true
	if cfg.ParallelWorkers > 0 {
		par, err := method.RecoverParallel(db, method.ParallelOptions{Workers: cfg.ParallelWorkers})
		if err != nil {
			res.ParallelAgrees = false
			res.RecoverErr = fmt.Errorf("sim: parallel recovery: %w", err)
			return res, nil
		}
		res.ParallelComponents = par.Plan.Components
		if err := par.SameOutcome(rec); err != nil {
			res.ParallelAgrees = false
		}
	}
	return res, nil
}

// Sweep runs a simulation at every crash point from 0 to len(ops) and
// returns the per-point results: the crash-matrix row for one method and
// one workload.
func Sweep(mk Factory, ops []*model.Op, initial *model.State, seed int64) ([]*Result, error) {
	return SweepParallel(mk, ops, initial, seed, 0)
}

// SweepParallel is Sweep with the parallel-recovery cross-check enabled
// at every crash point when workers > 0: each run also recovers via
// method.RecoverParallel and records agreement with the sequential
// procedure.
func SweepParallel(mk Factory, ops []*model.Op, initial *model.State, seed int64, workers int) ([]*Result, error) {
	return SweepObserved(mk, ops, initial, seed, workers, nil)
}

// SweepObserved is SweepParallel with a telemetry recorder attached to
// every run: the recorder accumulates execution counters, phase spans
// from both the sequential and (when workers > 0) partitioned recovery
// passes, and the partition width histogram across all crash points.
func SweepObserved(mk Factory, ops []*model.Op, initial *model.State, seed int64, workers int, rec *obs.Recorder) ([]*Result, error) {
	out := make([]*Result, 0, len(ops)+1)
	for crash := 0; crash <= len(ops); crash++ {
		r, err := Run(mk, Config{Ops: ops, Initial: initial, CrashAfter: crash, Seed: seed + int64(crash), ParallelWorkers: workers, Recorder: rec})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Summary condenses a sweep.
type Summary struct {
	Method      string
	Runs        int
	Recovered   int
	InvariantOK int
	Replayed    int
	Examined    int
	// ParallelOK counts runs whose parallel-recovery cross-check agreed
	// with sequential recovery (equal to Runs when the check was off).
	ParallelOK int
	// ReplayedP50 and ReplayedP99 are per-run replay-count percentiles
	// across the sweep (0 for an empty sweep).
	ReplayedP50 int
	ReplayedP99 int
	// Wall is the summed wall-clock time of the sequential recovery
	// passes; WallP50/WallP99 are the per-run percentiles.
	Wall    time.Duration
	WallP50 time.Duration
	WallP99 time.Duration
}

// Summarize folds sweep results.
func Summarize(rs []*Result) Summary {
	var s Summary
	replayed := make([]int64, 0, len(rs))
	walls := make([]int64, 0, len(rs))
	for _, r := range rs {
		s.Method = r.Method
		s.Runs++
		if r.Recovered {
			s.Recovered++
		}
		if r.InvariantOK {
			s.InvariantOK++
		}
		if r.ParallelAgrees {
			s.ParallelOK++
		}
		s.Replayed += r.Replayed
		s.Examined += r.Examined
		s.Wall += r.Wall
		replayed = append(replayed, int64(r.Replayed))
		walls = append(walls, int64(r.Wall))
	}
	s.ReplayedP50 = int(percentileInt64(replayed, 50))
	s.ReplayedP99 = int(percentileInt64(replayed, 99))
	s.WallP50 = time.Duration(percentileInt64(walls, 50))
	s.WallP99 = time.Duration(percentileInt64(walls, 99))
	return s
}

// percentileInt64 is the nearest-rank percentile of vs, 0 when empty —
// guarded the same way rate guards an empty denominator.
func percentileInt64(vs []int64, p int) int64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]int64, len(vs))
	copy(sorted, vs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// rate divides num by den, returning 0 for an empty denominator so an
// empty sweep summarizes without panicking.
func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// RecoveredRate is the fraction of runs that recovered (0 for no runs).
func (s Summary) RecoveredRate() float64 { return rate(s.Recovered, s.Runs) }

// InvariantRate is the fraction of runs whose invariant check passed.
func (s Summary) InvariantRate() float64 { return rate(s.InvariantOK, s.Runs) }

// RedoSelectivity is the fraction of examined records actually replayed.
func (s Summary) RedoSelectivity() float64 { return rate(s.Replayed, s.Examined) }
