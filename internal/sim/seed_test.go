package sim

import (
	"math/rand"
	"testing"

	"redotheory/internal/fault"
)

// TestCellSeedsPairwiseDistinct is the seed-collision regression test:
// over a dense 7-method × 4-kind × 2000-crash-point × 10-seed grid every
// derived cell seed (both the run-schedule seed and the fault-plan seed)
// must be pairwise distinct. The pre-mixer derivation (seed*1000+crash /
// seed*7919+crash) collides on this grid as soon as crash points exceed
// the multiplier — (seed=1, crash=1000) aliased (seed=2, crash=0) — and
// silently reused workload schedules between cells.
func TestCellSeedsPairwiseDistinct(t *testing.T) {
	methods := []string{"logical", "physical", "physiological",
		"physiological+dpt", "genlsn", "genlsn+mv", "grouplsn"}
	kinds := []fault.Kind{fault.TornGroup, fault.PageBitRot, fault.LostWrite, fault.LogTornTail}
	const crashPoints = 2000
	const seeds = 10

	seen := make(map[int64]string, 2*len(methods)*len(kinds)*crashPoints*seeds)
	note := func(v int64, where string) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("derived seed %d collides: %s and %s", v, prev, where)
		}
		seen[v] = where
	}
	for _, m := range methods {
		for _, k := range kinds {
			for crash := 0; crash < crashPoints; crash++ {
				for seed := int64(1); seed <= seeds; seed++ {
					run, plan := cellSeeds(seed, m, k, crash)
					cell := m + "/" + string(k)
					note(run, cell+"/run")
					note(plan, cell+"/plan")
				}
			}
		}
	}
	if want := 2 * len(methods) * len(kinds) * crashPoints * seeds; len(seen) != want {
		t.Fatalf("derived %d distinct seeds, want %d", len(seen), want)
	}
}

// TestOldSeedDerivationCollided documents the bug the mixer fixes: the
// replaced arithmetic derivation aliases cells once crash points exceed
// the multiplier. If this test ever fails, the grid above no longer
// witnesses the collision and the regression test should be re-derived.
func TestOldSeedDerivationCollided(t *testing.T) {
	old := func(seed int64, crash int) int64 { return seed*1000 + int64(crash) }
	if old(1, 1000) != old(2, 0) {
		t.Fatalf("expected the old derivation to collide on (1,1000) vs (2,0)")
	}
}

// TestMixSeedSensitivity spot-checks that every coordinate, including
// the stream constant, perturbs the derived seed.
func TestMixSeedSensitivity(t *testing.T) {
	base := MixSeed(1, 2, 3, 4, 1)
	for i, other := range []int64{
		MixSeed(2, 2, 3, 4, 1),
		MixSeed(1, 3, 3, 4, 1),
		MixSeed(1, 2, 4, 4, 1),
		MixSeed(1, 2, 3, 5, 1),
		MixSeed(1, 2, 3, 4, 2),
	} {
		if other == base {
			t.Fatalf("coordinate %d does not perturb the derived seed", i)
		}
	}
	if MixSeed(1, 2, 3, 4, 1) != base {
		t.Fatalf("MixSeed is not deterministic")
	}
	if base < 0 {
		t.Fatalf("MixSeed returned a negative seed %d", base)
	}
}

// TestSortResultsIsTotalCanonicalOrder asserts the documented SortResults
// invariant: over one campaign's results the (Method, Kind, CrashAfter,
// Seed) key is a strict total order — no two cells compare equal — so
// sorting any shuffle reproduces the byte-identical canonical sequence.
// The fuzzer's reproducible diffing relies on exactly this.
func TestSortResultsIsTotalCanonicalOrder(t *testing.T) {
	results, err := Campaign(CampaignConfig{
		Methods:     namedFactories(),
		Kinds:       []fault.Kind{fault.PageBitRot, fault.LogTornTail},
		NumOps:      8,
		NumPages:    3,
		CrashPoints: []int{0, 4, 8},
		Seeds:       []int64{1, 2},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(results) < 2 {
		t.Fatalf("campaign produced %d results; need at least 2", len(results))
	}

	key := func(r *FaultResult) [4]interface{} {
		return [4]interface{}{r.Method, r.Kind, r.CrashAfter, r.Seed}
	}
	less := func(a, b *FaultResult) bool {
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.CrashAfter != b.CrashAfter {
			return a.CrashAfter < b.CrashAfter
		}
		return a.Seed < b.Seed
	}
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if !less(a, b) {
			t.Fatalf("canonical order is not strictly increasing at %d: %v vs %v", i, key(a), key(b))
		}
	}

	shuffled := make([]*FaultResult, len(results))
	copy(shuffled, results)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	SortResults(shuffled)
	for i := range results {
		if shuffled[i] != results[i] {
			t.Fatalf("sorting a shuffle diverges from canonical order at %d: %v vs %v",
				i, key(shuffled[i]), key(results[i]))
		}
	}
}
