package sim

import (
	"testing"

	"redotheory/internal/fault"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/workload"
)

func namedFactories() []NamedFactory {
	return []NamedFactory{
		{"logical", func(s *model.State) method.DB { return method.NewLogical(s) }},
		{"physical", func(s *model.State) method.DB { return method.NewPhysical(s) }},
		{"physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) }},
		{"physiological+dpt", func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }},
		{"genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) }},
		{"genlsn+mv", func(s *model.State) method.DB { return method.NewGenLSNMV(s) }},
		{"grouplsn", func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
	}
}

// TestCampaignNoSilentCorruption is the headline robustness assertion:
// across every method × fault kind × crash point × seed, no run is ever
// silently corrupt — each fault is repaired, degraded, detected as
// unrecoverable, or provably never fired.
func TestCampaignNoSilentCorruption(t *testing.T) {
	results, err := Campaign(CampaignConfig{
		Methods:      namedFactories(),
		NumOps:       10,
		NumPages:     4,
		CrashPoints:  []int{0, 5, 10},
		Seeds:        []int64{1, 2},
		TruncateProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeCampaign(results)
	wantRuns := 7 * len(fault.Kinds()) * 3 * 2
	if sum.Runs != wantRuns {
		t.Errorf("runs = %d, want %d", sum.Runs, wantRuns)
	}
	if sum.Silent != 0 {
		for _, r := range results {
			if r.Outcome == SilentCorruption {
				t.Errorf("SILENT: %s/%s crash=%d seed=%d detections=%v",
					r.Method, r.Kind, r.CrashAfter, r.Seed, r.Detections)
			}
		}
		t.Fatalf("%d silent corruptions", sum.Silent)
	}
	// Fault kinds that fire must sometimes be visible in the outcomes —
	// a campaign where nothing ever fires proves nothing.
	fired := 0
	for _, r := range results {
		if r.Outcome == RecoveredDegraded || r.Outcome == DetectedUnrecoverable {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no run ever degraded or detected; campaign exercised nothing")
	}
}

// TestCampaignKindsObserved checks each fault kind produces at least one
// detection somewhere in the matrix (at nonzero crash points it has
// material to bite on).
func TestCampaignKindsObserved(t *testing.T) {
	results, err := Campaign(CampaignConfig{
		Methods:     namedFactories(),
		NumOps:      12,
		NumPages:    4,
		CrashPoints: []int{6, 12},
		Seeds:       []int64{3, 4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeCampaign(results)
	for _, k := range fault.Kinds() {
		by := sum.ByKind[k]
		if by[SilentCorruption] != 0 {
			t.Errorf("%s: %d silent corruptions", k, by[SilentCorruption])
		}
		if by[RecoveredDegraded]+by[DetectedUnrecoverable] == 0 {
			t.Errorf("%s: never detected anywhere in the matrix: %v", k, by)
		}
	}
	if len(sum.Methods()) != 7 {
		t.Errorf("methods = %v", sum.Methods())
	}
}

// TestRunFaultedLostWrite pins one scenario end to end: a lost page
// write under physiological recovery is either caught (stale below a
// checkpoint floor) or harmless (indistinguishable from an unflushed
// page), never silent.
func TestRunFaultedLostWrite(t *testing.T) {
	pages := workload.Pages(3)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod("physiological", 10, pages, 9)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		r, err := RunFaulted(factories["physiological"], Config{
			Ops: ops, Initial: s0, CrashAfter: 10, Seed: seed, TruncateProb: 1,
		}, fault.Plan{Seed: seed, Kind: fault.LostWrite})
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome == SilentCorruption {
			t.Fatalf("seed %d: silent corruption: %+v", seed, r)
		}
	}
}

// TestRunFaultedCrashInRecovery pins the double-crash scenario: recovery
// itself dies mid-repair and the rerun must converge.
func TestRunFaultedCrashInRecovery(t *testing.T) {
	pages := workload.Pages(4)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod("grouplsn", 8, pages, 2)
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for seed := int64(1); seed <= 6; seed++ {
		r, err := RunFaulted(factories["grouplsn"], Config{
			Ops: ops, Initial: s0, CrashAfter: 8, Seed: seed,
		}, fault.Plan{Seed: seed, Kind: fault.CrashInRecovery})
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome == SilentCorruption {
			t.Fatalf("seed %d: silent corruption: %+v", seed, r)
		}
		if r.Outcome == RecoveredDegraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("crash-in-recovery never degraded across six seeds")
	}
}

// --- sweep/summary edge cases (satellite) ---

// TestSweepEmptyOps: a sweep over an empty op list is a single crash-at-0
// run that recovers trivially.
func TestSweepEmptyOps(t *testing.T) {
	s0 := workload.InitialState(workload.Pages(2))
	results, err := Sweep(factories["physiological"], nil, s0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	r := results[0]
	if !r.Recovered || !r.InvariantOK {
		t.Errorf("empty-ops run failed: %+v", r)
	}
}

// TestRunCrashAtZero: crashing before any op executes recovers to the
// initial state.
func TestRunCrashAtZero(t *testing.T) {
	pages := workload.Pages(3)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod("physical", 5, pages, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(factories["physical"], Config{Ops: ops, Initial: s0, CrashAfter: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Recovered || !r.InvariantOK {
		t.Fatalf("crash-at-0 run failed: %+v", r)
	}
	if r.Replayed != 0 {
		t.Errorf("replayed %d records from an empty log", r.Replayed)
	}
}

// TestSummarizeZeroResults: summarizing nothing must not panic or divide
// by zero.
func TestSummarizeZeroResults(t *testing.T) {
	sum := Summarize(nil)
	if sum.Runs != 0 {
		t.Errorf("runs = %d", sum.Runs)
	}
	if got := sum.RecoveredRate(); got != 0 {
		t.Errorf("RecoveredRate() = %v, want 0", got)
	}
	if got := sum.InvariantRate(); got != 0 {
		t.Errorf("InvariantRate() = %v, want 0", got)
	}
	if got := sum.RedoSelectivity(); got != 0 {
		t.Errorf("RedoSelectivity() = %v, want 0", got)
	}
	csum := SummarizeCampaign(nil)
	if csum.Runs != 0 || csum.Silent != 0 || len(csum.Methods()) != 0 {
		t.Errorf("empty campaign summary: %+v", csum)
	}
}

// TestSummaryRates: the guarded rates compute ordinary fractions on a
// real sweep.
func TestSummaryRates(t *testing.T) {
	pages := workload.Pages(3)
	s0 := workload.InitialState(pages)
	ops, err := workload.ForMethod("physiological", 6, pages, 8)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Sweep(factories["physiological"], ops, s0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if got := sum.RecoveredRate(); got != 1 {
		t.Errorf("RecoveredRate() = %v, want 1", got)
	}
	if got := sum.RedoSelectivity(); got < 0 || got > 1 {
		t.Errorf("RedoSelectivity() = %v out of [0,1]", got)
	}
}
