package sim

import "redotheory/internal/fault"

// This file is the campaign's seed-derivation scheme. Every cell of a
// sweep needs its own random stream — the workload schedule and the
// fault plan must differ between cells, and re-running one cell must
// reproduce it exactly — so cell seeds are *derived*, never drawn from a
// shared generator. The old derivation (seed*1000 + crash, seed*7919 +
// crash) collided as soon as crash points exceeded the multiplier:
// (seed=1, crash=1000) and (seed=2, crash=0) reused one stream, silently
// running identical schedules in cells that were supposed to be
// independent. MixSeed replaces it with a splitmix64-style finalizer
// folded over every coordinate, so distinct cells get distinct,
// well-distributed seeds (asserted pairwise over a dense grid by
// TestCellSeedsPairwiseDistinct).

// splitmix64 is the splitmix64 output scrambler (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators"): a bijective
// finalizer whose avalanche behavior makes nearby inputs diverge.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MixSeed folds the given coordinates into one derived seed. Each part
// is absorbed through the splitmix64 finalizer, so seeds derived from
// different coordinate tuples are effectively independent; the result is
// masked non-negative for readability in reports and error messages.
func MixSeed(parts ...int64) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = splitmix64(h ^ uint64(p))
	}
	return int64(h &^ (1 << 63))
}

// cellSeeds derives the two per-cell seeds — the run's background
// schedule and the fault plan — from the cell's grid coordinates.
// Method and kind enter as FNV digests of their names (stable across
// reorderings of the factory table), and the trailing stream constant
// keeps the two streams distinct even on identical coordinates.
func cellSeeds(seed int64, methodName string, kind fault.Kind, crash int) (run, plan int64) {
	run = MixSeed(seed, int64(fault.Sum(methodName)), int64(fault.Sum(string(kind))), int64(crash), 1)
	plan = MixSeed(seed, int64(fault.Sum(methodName)), int64(fault.Sum(string(kind))), int64(crash), 2)
	return run, plan
}
