package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"redotheory/internal/fault"
	"redotheory/internal/workload"
)

// canonicalLines renders campaign results into a canonical byte form:
// identity, outcome, every fired event and detection, and the degraded
// report's flags. Two sweeps agree exactly when these bytes agree.
func canonicalLines(rs []*FaultResult) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s/%s/crash=%d/seed=%d outcome=%s", r.Method, r.Kind, r.CrashAfter, r.Seed, r.Outcome)
		for _, e := range r.Fired {
			fmt.Fprintf(&b, " fired[%s]", e)
		}
		for _, d := range r.Detections {
			fmt.Fprintf(&b, " det[%s]", d)
		}
		if r.Degraded != nil {
			fmt.Fprintf(&b, " degraded=%v unrecoverable=%v quarantined=%d",
				r.Degraded.Degraded, r.Degraded.Unrecoverable, len(r.Degraded.Quarantined))
			if st := r.Degraded.State; st != nil {
				for _, x := range st.Vars() {
					fmt.Fprintf(&b, " %s=%v", x, st.Get(x))
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func smallCampaign(workers int) CampaignConfig {
	return CampaignConfig{
		Methods:      namedFactories()[:4],
		NumOps:       8,
		NumPages:     4,
		CrashPoints:  []int{0, 4, 8},
		Seeds:        []int64{1, 2},
		TruncateProb: 0.5,
		Workers:      workers,
	}
}

// TestCampaignParallelMatchesSequential: the worker pool must be
// invisible — the parallel campaign's sorted results are byte-identical
// to the sequential sweep's, at any worker count.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	seq, err := Campaign(smallCampaign(0))
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalLines(seq)
	for _, workers := range []int{2, 4, 9} {
		par, err := Campaign(smallCampaign(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := canonicalLines(par); got != want {
			t.Errorf("workers=%d: parallel campaign diverged from sequential\nparallel:\n%s\nsequential:\n%s", workers, got, want)
		}
	}
}

// TestCampaignResultsSorted: campaign output is in canonical order —
// method, fault kind, crash point, seed — regardless of worker count.
func TestCampaignResultsSorted(t *testing.T) {
	for _, workers := range []int{0, 4} {
		rs, err := Campaign(smallCampaign(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(rs, resultLess(rs)) {
			t.Errorf("workers=%d: campaign results out of canonical order", workers)
		}
	}
}

func resultLess(rs []*FaultResult) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.CrashAfter != b.CrashAfter {
			return a.CrashAfter < b.CrashAfter
		}
		return a.Seed < b.Seed
	}
}

// TestSortResultsNormalizesAnyOrder: shuffling and re-sorting reproduces
// the canonical order exactly.
func TestSortResultsNormalizesAnyOrder(t *testing.T) {
	var rs []*FaultResult
	for _, m := range []string{"b", "a"} {
		for _, k := range []fault.Kind{fault.PageBitRot, fault.LostWrite} {
			for _, crash := range []int{4, 0} {
				for _, seed := range []int64{2, 1} {
					rs = append(rs, &FaultResult{Method: m, Kind: k, CrashAfter: crash, Seed: seed})
				}
			}
		}
	}
	want := append([]*FaultResult(nil), rs...)
	SortResults(want)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]*FaultResult(nil), rs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		SortResults(shuffled)
		for i := range want {
			if shuffled[i] != want[i] {
				t.Fatalf("trial %d: position %d holds %s/%s/%d/%d, want %s/%s/%d/%d", trial, i,
					shuffled[i].Method, shuffled[i].Kind, shuffled[i].CrashAfter, shuffled[i].Seed,
					want[i].Method, want[i].Kind, want[i].CrashAfter, want[i].Seed)
			}
		}
	}
}

// TestSweepParallelCrossCheck: the parallel-recovery cross-check agrees
// with sequential recovery at every crash point for every method.
func TestSweepParallelCrossCheck(t *testing.T) {
	pages := workload.Pages(4)
	initial := workload.InitialState(pages)
	for _, f := range namedFactories() {
		ops, err := workload.ForMethod(f.Name, 12, pages, 7)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := SweepParallel(f.New, ops, initial, 7, 4)
		if err != nil {
			t.Fatal(err)
		}
		s := Summarize(rs)
		if s.ParallelOK != s.Runs {
			t.Errorf("%s: parallel agreed at %d/%d crash points", f.Name, s.ParallelOK, s.Runs)
		}
		if s.Recovered != s.Runs {
			t.Errorf("%s: recovered at %d/%d crash points", f.Name, s.Recovered, s.Runs)
		}
	}
}
