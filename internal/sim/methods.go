package sim

import (
	"redotheory/internal/method"
	"redotheory/internal/model"
)

// DefaultMethods returns the full factory table of the seven Section 6
// recovery method variants, in canonical order. Campaign drivers
// (redosim, redofuzz, the examples) share it so "all methods" means the
// same thing everywhere.
func DefaultMethods() []NamedFactory {
	return []NamedFactory{
		{Name: "logical", New: func(s *model.State) method.DB { return method.NewLogical(s) }},
		{Name: "physical", New: func(s *model.State) method.DB { return method.NewPhysical(s) }},
		{Name: "physiological", New: func(s *model.State) method.DB { return method.NewPhysiological(s) }},
		{Name: "physiological+dpt", New: func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }},
		{Name: "genlsn", New: func(s *model.State) method.DB { return method.NewGenLSN(s) }},
		{Name: "genlsn+mv", New: func(s *model.State) method.DB { return method.NewGenLSNMV(s) }},
		{Name: "grouplsn", New: func(s *model.State) method.DB { return method.NewGroupLSN(s) }},
	}
}
