package sim

import (
	"testing"
	"testing/quick"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/workload"
)

var factories = map[string]Factory{
	"physiological":     func(s *model.State) method.DB { return method.NewPhysiological(s) },
	"physiological+dpt": func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) },
	"physical":          func(s *model.State) method.DB { return method.NewPhysical(s) },
	"logical":           func(s *model.State) method.DB { return method.NewLogical(s) },
	"genlsn":            func(s *model.State) method.DB { return method.NewGenLSN(s) },
	"genlsn+mv":         func(s *model.State) method.DB { return method.NewGenLSNMV(s) },
	"grouplsn":          func(s *model.State) method.DB { return method.NewGroupLSN(s) },
}

func TestRunAllMethodsRecover(t *testing.T) {
	pages := workload.Pages(6)
	s0 := workload.InitialState(pages)
	for name, mk := range factories {
		ops, err := workload.ForMethod(name, 40, pages, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(mk, Config{Ops: ops, Initial: s0, CrashAfter: 25, Seed: 99})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Recovered {
			t.Errorf("%s: recovery diverged from oracle", name)
		}
		if !res.InvariantOK {
			t.Errorf("%s: invariant violated: %v", name, res.Violations)
		}
		if res.Method != name {
			t.Errorf("method name = %q", res.Method)
		}
	}
}

func TestSweepEveryCrashPoint(t *testing.T) {
	pages := workload.Pages(4)
	s0 := workload.InitialState(pages)
	for name, mk := range factories {
		ops, err := workload.ForMethod(name, 15, pages, 3)
		if err != nil {
			t.Fatal(err)
		}
		results, err := Sweep(mk, ops, s0, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := Summarize(results)
		if sum.Runs != 16 {
			t.Errorf("%s: runs = %d, want 16", name, sum.Runs)
		}
		if sum.Recovered != sum.Runs {
			t.Errorf("%s: only %d/%d crash points recovered", name, sum.Recovered, sum.Runs)
		}
		if sum.InvariantOK != sum.Runs {
			t.Errorf("%s: invariant held at only %d/%d crash points", name, sum.InvariantOK, sum.Runs)
		}
	}
}

func TestWALFaultIsDetected(t *testing.T) {
	// With the WAL gate disabled, some crash point must yield a state the
	// checker rejects or recovery cannot reproduce: a page reaches disk
	// before its log record, so the stable state contains effects of
	// operations that no longer exist.
	pages := workload.Pages(3)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(30, pages, 5, false)
	detected := false
	for crash := 1; crash <= len(ops); crash++ {
		res, err := Run(factories["physiological"], Config{
			Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash),
			DisableWAL: true, ForceProb: 0.05, FlushProb: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.InvariantOK || !res.Recovered {
			detected = true
			break
		}
	}
	if !detected {
		t.Error("WAL violations never produced a detectable bad state; fault injection is inert")
	}
}

func TestCrashMatrixProperty(t *testing.T) {
	// The E9 shape: for random seeds, every method recovers at a random
	// crash point and the invariant holds.
	f := func(seed int64) bool {
		pages := workload.Pages(5)
		s0 := workload.InitialState(pages)
		for name, mk := range factories {
			ops, err := workload.ForMethod(name, 20, pages, seed)
			if err != nil {
				return false
			}
			crash := int(uint64(seed) % uint64(len(ops)+1))
			res, err := Run(mk, Config{Ops: ops, Initial: s0, CrashAfter: crash, Seed: seed})
			if err != nil || !res.Recovered || !res.InvariantOK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunValidatesCrashPoint(t *testing.T) {
	if _, err := Run(factories["physical"], Config{Ops: nil, CrashAfter: 5}); err == nil {
		t.Error("out-of-range crash point accepted")
	}
}

func TestSkipChecker(t *testing.T) {
	pages := workload.Pages(3)
	ops := workload.SinglePage(10, pages, 1, false)
	res, err := Run(factories["physiological"], Config{
		Ops: ops, Initial: workload.InitialState(pages), CrashAfter: 10, Seed: 1, SkipChecker: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered || !res.InvariantOK {
		t.Error("SkipChecker run failed")
	}
	if len(res.Violations) != 0 {
		t.Error("violations reported without checker")
	}
}

func TestOnlineAuditFollowsExecution(t *testing.T) {
	// The live auditor must hold at every step for the page-LSN methods,
	// across random schedules and crash points.
	for _, name := range []string{"physiological", "physiological+dpt", "genlsn", "genlsn+mv", "grouplsn"} {
		pages := workload.Pages(5)
		s0 := workload.InitialState(pages)
		ops, err := workload.ForMethod(name, 30, pages, 13)
		if err != nil {
			t.Fatal(err)
		}
		for crash := 0; crash <= len(ops); crash += 6 {
			res, err := Run(factories[name], Config{
				Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash), OnlineAudit: true,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.OnlineOK {
				t.Errorf("%s crash=%d: live auditor flagged a violation", name, crash)
			}
			if !res.Recovered || !res.InvariantOK {
				t.Errorf("%s crash=%d: offline verdicts failed", name, crash)
			}
			if crash > 0 && res.OnlineAudits != crash {
				t.Errorf("%s: %d audits for %d steps", name, res.OnlineAudits, crash)
			}
		}
	}
}

func TestOnlineAuditCatchesWALFault(t *testing.T) {
	// With the WAL gate off, the live auditor still audits against the
	// full history it observed, so pure page-before-log races do not
	// confuse it — but the offline check against the surviving log does
	// catch them. Both signals are reported; at least one must fire
	// somewhere in the sweep.
	pages := workload.Pages(3)
	s0 := workload.InitialState(pages)
	ops := workload.SinglePage(30, pages, 5, false)
	caught := false
	for crash := 1; crash <= len(ops); crash++ {
		res, err := Run(factories["physiological"], Config{
			Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash),
			DisableWAL: true, FlushProb: 0.6, ForceProb: 0.05, OnlineAudit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.InvariantOK || !res.Recovered || !res.OnlineOK {
			caught = true
		}
	}
	if !caught {
		t.Error("no signal fired under WAL fault injection")
	}
}

func TestTruncationSweep(t *testing.T) {
	// With aggressive truncation after checkpoints, every crash point
	// still recovers: the recovery base absorbs the dropped prefix.
	for name, mk := range factories {
		pages := workload.Pages(5)
		s0 := workload.InitialState(pages)
		ops, err := workload.ForMethod(name, 25, pages, 19)
		if err != nil {
			t.Fatal(err)
		}
		totalTruncated := 0
		for crash := 0; crash <= len(ops); crash += 5 {
			res, err := Run(mk, Config{
				Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash) + 3,
				CheckpointProb: 0.25, TruncateProb: 1.0,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.Recovered || !res.InvariantOK {
				t.Errorf("%s crash=%d: recovered=%v invariant=%v (truncated %d)",
					name, crash, res.Recovered, res.InvariantOK, res.TruncatedRecords)
			}
			totalTruncated += res.TruncatedRecords
		}
		if totalTruncated == 0 {
			t.Errorf("%s: truncation never fired", name)
		}
	}
}

func TestBankTransfersConserveMoney(t *testing.T) {
	// Domain check: transfers through logical recovery conserve the total
	// across crash and recovery at every point.
	pages := workload.Pages(4)
	s0 := workload.InitialState(pages)
	var total int64
	for _, p := range pages {
		total += s0.GetInt(p)
	}
	ops := workload.BankTransfers(12, pages, 21)
	for crash := 0; crash <= len(ops); crash++ {
		res, err := Run(factories["logical"], Config{Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recovered || !res.InvariantOK {
			t.Fatalf("crash %d: recovery failed", crash)
		}
	}
	// Verify conservation on a full no-crash run's oracle.
	final := s0.Clone()
	for _, op := range ops {
		final.MustApply(op)
	}
	var got int64
	for _, p := range pages {
		got += final.GetInt(p)
	}
	if got != total {
		t.Errorf("total = %d, want %d", got, total)
	}
}
