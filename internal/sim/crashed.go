package sim

import (
	"fmt"
	"math/rand"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// Sched is a literal-probability background-activity schedule. Unlike
// Config, a zero probability means "never": the fuzzer's shrinker must
// be able to express "no background activity at all", and the serve
// benchmarks need an everything-logged-nothing-flushed fixture, neither
// of which Config's zero-means-default convention can say.
type Sched struct {
	Seed           int64
	FlushProb      float64
	ForceProb      float64
	CheckpointProb float64
	TruncateProb   float64
	// ForceOnCrash forces the whole log to stable storage immediately
	// before the crash, so the crash loses no log tail — the maximal
	// redo backlog, which is what the instant-restart benchmarks want.
	ForceOnCrash bool
}

// BuildCrashed executes the first crash operations of the history under
// the schedule and crashes the database, returning it ready for
// recovery (the survivors are valid per the method.DB recovery
// surface). It is the execution loop shared by the fuzzer's cells and
// the serve benchmarks; probabilities are taken literally (see Sched).
func BuildCrashed(mk Factory, initial *model.State, ops []*model.Op, crash int, s Sched, rec *obs.Recorder) (method.DB, error) {
	if crash < 0 || crash > len(ops) {
		return nil, fmt.Errorf("sim: crash point %d out of range [0,%d]", crash, len(ops))
	}
	db := mk(initial)
	db.SetRecorder(rec)
	rng := rand.New(rand.NewSource(s.Seed))
	for i := 0; i < crash; i++ {
		if err := db.Exec(ops[i]); err != nil {
			return nil, fmt.Errorf("sim: %s: executing op %d: %w", db.Name(), i, err)
		}
		if rng.Float64() < s.FlushProb {
			db.FlushOne()
		}
		if rng.Float64() < s.ForceProb {
			db.FlushLog()
		}
		if rng.Float64() < s.CheckpointProb {
			if err := db.Checkpoint(); err != nil {
				return nil, fmt.Errorf("sim: %s: checkpoint: %w", db.Name(), err)
			}
			if s.TruncateProb > 0 && rng.Float64() < s.TruncateProb {
				if tr, ok := db.(method.Truncator); ok {
					if _, err := tr.TruncateCheckpointed(); err != nil {
						return nil, fmt.Errorf("sim: %s: truncate: %w", db.Name(), err)
					}
				}
			}
		}
	}
	if s.ForceOnCrash {
		db.FlushLog()
	}
	db.Crash()
	return db, nil
}
