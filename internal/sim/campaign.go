package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"redotheory/internal/fault"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/storage"
	"redotheory/internal/workload"
)

// This file is the media-fault campaign: the robustness analogue of the
// crash matrix. Where Sweep asks "does clean-crash recovery work at
// every crash point", a campaign asks "when the stable state lies —
// torn groups, rotted pages and records, lost writes, torn log tails,
// crashes inside recovery itself — is the lie always caught". Every run
// is classified into one of the Outcome values; the headline assertion
// across the whole matrix is that SilentCorruption never appears: an
// injected fault either doesn't materialize, is repaired (exactly or
// degraded), or is explicitly reported as unrecoverable.

// Outcome classifies one faulted run.
type Outcome string

const (
	// RecoveredExact: recovery reproduced the full-log oracle with no
	// integrity detections (the fault never fired, or fired harmlessly —
	// a lost write above every installed floor is just an unflushed page).
	RecoveredExact Outcome = "recovered-exact"
	// RecoveredDegraded: corruption was detected and recovery produced
	// exactly the state the surviving validated log describes (possibly
	// minus a detectably-torn tail).
	RecoveredDegraded Outcome = "recovered-degraded"
	// DetectedUnrecoverable: corruption was detected and provably lost
	// committed work (orphan pages, records stranded past rot); recovery
	// refused to guess.
	DetectedUnrecoverable Outcome = "detected-unrecoverable"
	// SilentCorruption: the recovered state disagrees with the surviving
	// log's oracle, or the invariant audit failed, without a detection
	// explaining it. The campaign exists to prove this count is zero.
	SilentCorruption Outcome = "SILENT-CORRUPTION"
	// FaultNotFired: the armed fault found no opportunity (e.g. a torn
	// group in a run that never wrote a multi-page group).
	FaultNotFired Outcome = "fault-not-fired"
)

// FaultResult reports one faulted run.
type FaultResult struct {
	Method     string
	Kind       fault.Kind
	CrashAfter int
	Seed       int64
	Outcome    Outcome
	// Fired lists the fault events that actually happened.
	Fired []fault.Event
	// Detections aggregates integrity detections across every recovery
	// pass (a crash-in-recovery run has two).
	Detections []fault.Detection
	// Degraded is the final recovery pass's full report.
	Degraded *method.DegradedResult
}

// RunFaulted executes one run under an armed media-fault plan: the
// workload runs with the injector attached, the system crashes, the
// crash realizes the planned decay, and degraded recovery (re-run once
// if the plan crashes it mid-repair) produces the outcome.
func RunFaulted(mk Factory, cfg Config, plan fault.Plan) (*FaultResult, error) {
	if cfg.Initial == nil {
		cfg.Initial = model.NewState()
	}
	flushP, forceP, ckP := cfg.FlushProb, cfg.ForceProb, cfg.CheckpointProb
	if flushP == 0 {
		flushP = 0.3
	}
	if forceP == 0 {
		forceP = 0.2
	}
	if ckP == 0 {
		ckP = 0.1
	}
	if cfg.CrashAfter < 0 || cfg.CrashAfter > len(cfg.Ops) {
		return nil, fmt.Errorf("sim: crash point %d out of range [0,%d]", cfg.CrashAfter, len(cfg.Ops))
	}

	db := mk(cfg.Initial)
	if cfg.Recorder != nil {
		db.SetRecorder(cfg.Recorder)
	}
	inj := plan.New()
	db.Store().SetInjector(inj)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.CrashAfter; i++ {
		if err := db.Exec(cfg.Ops[i]); err != nil {
			return nil, fmt.Errorf("sim: %s: executing op %d: %w", db.Name(), i, err)
		}
		if rng.Float64() < flushP {
			db.FlushOne()
		}
		if rng.Float64() < forceP {
			db.FlushLog()
		}
		if rng.Float64() < ckP {
			if err := db.Checkpoint(); err != nil {
				if !storage.IsTorn(err) {
					return nil, fmt.Errorf("sim: %s: checkpoint: %w", db.Name(), err)
				}
				// A torn pointer swing aborts the checkpoint; the system
				// keeps running on the previous one. The half-written
				// group stays on disk for recovery to find.
			} else if cfg.TruncateProb > 0 && rng.Float64() < cfg.TruncateProb {
				if tr, ok := db.(method.Truncator); ok {
					if _, err := tr.TruncateCheckpointed(); err != nil {
						return nil, fmt.Errorf("sim: %s: truncate: %w", db.Name(), err)
					}
				}
			}
		}
	}
	db.Crash()

	// The full oracle: what the stable log promised before media decay.
	// Captured now because realization below may shorten the log.
	oracleFull := db.RecoveryBase()
	for _, op := range db.StableLog().Ops() {
		if _, err := oracleFull.Apply(op); err != nil {
			return nil, fmt.Errorf("sim: oracle replay: %w", err)
		}
	}

	abortAfter := realizeAtCrash(db, inj)

	res := &FaultResult{
		Method:     db.Name(),
		Kind:       plan.Kind,
		CrashAfter: cfg.CrashAfter,
		Seed:       cfg.Seed,
	}

	if abortAfter >= 0 {
		first, err := method.RecoverDegraded(db, method.DegradedOptions{AbortAfterRepairs: abortAfter})
		if err != nil {
			return nil, fmt.Errorf("sim: %s: degraded recovery (pass 1): %w", db.Name(), err)
		}
		res.Detections = append(res.Detections, first.Detections...)
	}
	final, err := method.RecoverDegraded(db, method.RunToCompletion())
	if err != nil {
		return nil, fmt.Errorf("sim: %s: degraded recovery: %w", db.Name(), err)
	}
	res.Degraded = final
	res.Detections = append(res.Detections, final.Detections...)
	res.Fired = inj.Fired()

	// The repaired oracle: what the surviving validated log describes
	// after any truncation repair.
	oracleRepaired := db.RecoveryBase()
	for _, op := range db.StableLog().Ops() {
		if _, err := oracleRepaired.Apply(op); err != nil {
			return nil, fmt.Errorf("sim: repaired oracle replay: %w", err)
		}
	}

	res.Outcome = classify(final, res.Detections, inj.HasFired(), oracleFull, oracleRepaired)

	// Observed partitioned pass: clean substrates honor the clean-crash
	// contract, so the method's redo test is trustworthy and a parallel
	// recovery yields the decide/partition/replay/merge phase breakdown
	// and partition width histogram for the rollup. Faulted substrates
	// are skipped — their redo tests may be poisoned by the very damage
	// degraded recovery just detected.
	if cfg.Recorder != nil && !final.Unrecoverable && len(final.Detections) == 0 {
		if _, err := method.RecoverParallel(db, method.ParallelOptions{Workers: 2, Recorder: cfg.Recorder}); err != nil {
			return nil, fmt.Errorf("sim: %s: observed parallel recovery: %w", db.Name(), err)
		}
	}
	return res, nil
}

// realizeAtCrash applies the media decay a crash reveals for the armed
// fault kind, firing the corresponding events, and returns the repair
// count after which recovery should crash (−1: run to completion).
func realizeAtCrash(db method.DB, inj *fault.Injector) int {
	st := db.Store()
	w := db.WAL()
	rng := inj.Rng()
	abort := -1
	switch inj.Kind() {
	case fault.LostWrite:
		st.RealizeCrashFaults()
	case fault.PageBitRot:
		if ids := st.PageIDs(); len(ids) > 0 {
			id := ids[rng.Intn(len(ids))]
			st.CorruptPage(id)
			inj.Fire(fault.PageBitRot, fmt.Sprintf("page %q rotted on the medium", id))
		}
	case fault.LogTornTail:
		k := 1 + rng.Intn(2)
		if n := w.TearStableTail(k); n > 0 {
			inj.Fire(fault.LogTornTail, fmt.Sprintf("last %d stable log records torn away", n))
		}
	case fault.LogBitRot:
		if recs := db.StableLog().Records(); len(recs) > 0 {
			lsn := recs[rng.Intn(len(recs))].LSN
			if w.CorruptRecord(lsn) {
				inj.Fire(fault.LogBitRot, fmt.Sprintf("stable log record %d rotted", lsn))
			}
		}
	case fault.CrashInRecovery:
		// Tear the tail so there is repair work to crash in the middle of.
		if n := w.TearStableTail(1); n > 0 {
			abort = rng.Intn(4)
			inj.Fire(fault.CrashInRecovery, fmt.Sprintf("tail torn, then recovery crashed after %d repair writes", abort))
		}
	}
	st.DisarmFaults()
	return abort
}

// classify maps one run's evidence to its Outcome.
func classify(final *method.DegradedResult, detections []fault.Detection, fired bool, oracleFull, oracleRepaired *model.State) Outcome {
	if final.Unrecoverable {
		return DetectedUnrecoverable
	}
	auditOK := final.Audit != nil && final.Audit.OK
	if final.State == nil || !final.State.Equal(oracleRepaired) || !auditOK {
		return SilentCorruption
	}
	if len(detections) == 0 {
		if !fired {
			return FaultNotFired
		}
		if final.State.Equal(oracleFull) {
			return RecoveredExact
		}
		// Fired, undetected, and the full oracle was missed: the
		// definition of silent corruption.
		return SilentCorruption
	}
	return RecoveredDegraded
}

// NamedFactory pairs a method name with its factory.
type NamedFactory struct {
	Name string
	New  Factory
}

// CampaignConfig describes a fault-injection campaign: the cross product
// of methods × fault kinds × crash points × seeds.
type CampaignConfig struct {
	Methods []NamedFactory
	// Kinds defaults to fault.Kinds() (all of them).
	Kinds []fault.Kind
	// NumOps and NumPages size each run's workload (defaults 12 and 4).
	NumOps, NumPages int
	// CrashPoints defaults to {0, NumOps/2, NumOps}.
	CrashPoints []int
	// Seeds defaults to {1, 2, 3}.
	Seeds []int64
	// TruncateProb is forwarded to each run (checkpoint-driven log
	// truncation exercises the recovery-base floors).
	TruncateProb float64
	// Workers bounds the pool that executes runs concurrently. 0 or 1
	// runs sequentially. Results are identical to a sequential sweep
	// regardless of worker count: every run derives its randomness from
	// its own cell (method, seed, kind, crash point) and results are
	// returned in canonical sorted order either way.
	Workers int
	// Metrics, when non-nil, collects per-method telemetry rollups across
	// every cell: execution/WAL/cache counters, degraded-recovery
	// detections, and (on verified-clean cells) the full phase breakdown
	// and partition width histogram from an observed parallel recovery.
	Metrics *CampaignMetrics
}

// campaignCell is one point of the campaign matrix, fully determined
// before any run executes so scheduling order cannot leak into results.
type campaignCell struct {
	method NamedFactory
	ops    []*model.Op
	kind   fault.Kind
	crash  int
	seed   int64
}

func (c campaignCell) run(initial *model.State, truncateProb float64, metrics *CampaignMetrics) (*FaultResult, error) {
	runSeed, planSeed := cellSeeds(c.seed, c.method.Name, c.kind, c.crash)
	r, err := RunFaulted(c.method.New, Config{
		Ops:          c.ops,
		Initial:      initial,
		CrashAfter:   c.crash,
		Seed:         runSeed,
		TruncateProb: truncateProb,
		Recorder:     metrics.Recorder(c.method.Name),
	}, fault.Plan{Seed: planSeed, Kind: c.kind})
	if err != nil {
		return nil, fmt.Errorf("sim: campaign %s/%s/crash=%d/seed=%d: %w", c.method.Name, c.kind, c.crash, c.seed, err)
	}
	// Report the cell's grid seed, not the derived stream seed: canonical
	// ordering (SortResults) and human diffing key on the campaign grid.
	r.Seed = c.seed
	return r, nil
}

// Campaign sweeps the whole matrix and returns every run's result in
// canonical order (SortResults: method, fault kind, crash point, seed).
// With cfg.Workers > 1 the runs execute on a bounded worker pool; the
// returned results are byte-for-byte the same as a sequential sweep.
func Campaign(cfg CampaignConfig) ([]*FaultResult, error) {
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = fault.Kinds()
	}
	numOps := cfg.NumOps
	if numOps == 0 {
		numOps = 12
	}
	numPages := cfg.NumPages
	if numPages == 0 {
		numPages = 4
	}
	points := cfg.CrashPoints
	if len(points) == 0 {
		points = []int{0, numOps / 2, numOps}
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}

	pages := workload.Pages(numPages)
	initial := workload.InitialState(pages)

	// Materialize every cell first: workloads are generated once per
	// (method, seed) and shared read-only across that pair's runs.
	var cells []campaignCell
	for _, m := range cfg.Methods {
		for _, seed := range seeds {
			ops, err := workload.ForMethod(m.Name, numOps, pages, seed)
			if err != nil {
				return nil, fmt.Errorf("sim: campaign workload for %s: %w", m.Name, err)
			}
			for _, kind := range kinds {
				for _, crash := range points {
					cells = append(cells, campaignCell{method: m, ops: ops, kind: kind, crash: crash, seed: seed})
				}
			}
		}
	}

	out := make([]*FaultResult, len(cells))
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			r, err := c.run(initial, cfg.TruncateProb, cfg.Metrics)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		SortResults(out)
		return out, nil
	}

	// Order-stable aggregation: each worker writes its cell's slot, so
	// completion order never reorders results.
	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	firstErrIdx := len(cells)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r, err := cells[i].run(initial, cfg.TruncateProb, cfg.Metrics)
				if err != nil {
					// Keep the error of the earliest cell, matching what
					// a sequential sweep would have reported.
					mu.Lock()
					if i < firstErrIdx {
						firstErr, firstErrIdx = err, i
					}
					mu.Unlock()
					continue
				}
				out[i] = r
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	SortResults(out)
	return out, nil
}

// SortResults puts fault results into canonical order: method, fault
// kind, crash point, seed. Campaign output is already sorted; the
// function is exported so any aggregator can normalize results produced
// in completion order.
//
// The ordering is a documented invariant: the sort key (Method, Kind,
// CrashAfter, Seed) is exactly the campaign grid coordinate, so it is a
// *total* order over any one campaign's results — no two cells compare
// equal — and sorting is therefore a canonical form independent of
// completion order. The differential fuzzer (internal/fuzz) and any
// cross-run diffing rely on this: two result sets from the same grid can
// be compared element-wise after SortResults.
func SortResults(rs []*FaultResult) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.CrashAfter != b.CrashAfter {
			return a.CrashAfter < b.CrashAfter
		}
		return a.Seed < b.Seed
	})
}

// CampaignSummary condenses a campaign.
type CampaignSummary struct {
	Runs      int
	ByOutcome map[Outcome]int
	// ByKind maps each fault kind to its outcome counts.
	ByKind map[fault.Kind]map[Outcome]int
	// ByMethod maps each method to its outcome counts.
	ByMethod map[string]map[Outcome]int
	// Silent is the headline number; the campaign's promise is zero.
	Silent int
}

// SummarizeCampaign folds campaign results; safe on an empty slice.
func SummarizeCampaign(rs []*FaultResult) CampaignSummary {
	s := CampaignSummary{
		ByOutcome: make(map[Outcome]int),
		ByKind:    make(map[fault.Kind]map[Outcome]int),
		ByMethod:  make(map[string]map[Outcome]int),
	}
	for _, r := range rs {
		s.Runs++
		s.ByOutcome[r.Outcome]++
		if s.ByKind[r.Kind] == nil {
			s.ByKind[r.Kind] = make(map[Outcome]int)
		}
		s.ByKind[r.Kind][r.Outcome]++
		if s.ByMethod[r.Method] == nil {
			s.ByMethod[r.Method] = make(map[Outcome]int)
		}
		s.ByMethod[r.Method][r.Outcome]++
	}
	s.Silent = s.ByOutcome[SilentCorruption]
	return s
}

// Methods returns the summary's method names in sorted order.
func (s CampaignSummary) Methods() []string {
	out := make([]string, 0, len(s.ByMethod))
	for m := range s.ByMethod {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
