package sim

import (
	"fmt"
	"testing"
)

func TestShardableMethodsExcludesPhysical(t *testing.T) {
	ms := ShardableMethods()
	if len(ms) != len(DefaultMethods())-1 {
		t.Fatalf("%d shardable methods, want all but physical", len(ms))
	}
	for _, m := range ms {
		if m.Name == "physical" {
			t.Fatal("physical listed as shardable")
		}
	}
}

func TestCheckShardedGrid(t *testing.T) {
	for _, m := range ShardableMethods() {
		for _, shards := range []int{2, 4} {
			for _, stagger := range []bool{false, true} {
				for seed := int64(1); seed <= 2; seed++ {
					cfg := ShardedConfig{Method: m, Shards: shards, Seed: seed}
					cfg.Crashes = DeriveCrashes(seed, 36, shards, stagger)
					check, err := CheckSharded(cfg)
					if err != nil {
						t.Fatalf("%s×%d stagger=%v seed=%d: %v", m.Name, shards, stagger, seed, err)
					}
					if !check.OK() {
						t.Errorf("%s×%d stagger=%v seed=%d: %s", m.Name, shards, stagger, seed, check.Mismatch)
					}
				}
			}
		}
	}
}

func TestCheckShardedRejectsPhysical(t *testing.T) {
	var physical NamedFactory
	for _, m := range DefaultMethods() {
		if m.Name == "physical" {
			physical = m
		}
	}
	if _, err := CheckSharded(ShardedConfig{Method: physical, Seed: 1}); err == nil {
		t.Fatal("CheckSharded accepted physical logging")
	}
}

func ExampleCheckSharded() {
	check, err := CheckSharded(ShardedConfig{Method: ShardableMethods()[0], Shards: 2, Seed: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(check.Method, check.OK())
	// Output: logical true
}
