package sim

import (
	"testing"

	"redotheory/internal/fault"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/workload"
)

// TestSummarizeEmpty: every derived statistic must guard its empty
// denominator — Summarize(nil) yields zeros, not panics or NaNs.
func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Runs != 0 {
		t.Fatalf("Runs = %d, want 0", s.Runs)
	}
	for name, got := range map[string]float64{
		"RecoveredRate":   s.RecoveredRate(),
		"InvariantRate":   s.InvariantRate(),
		"RedoSelectivity": s.RedoSelectivity(),
	} {
		if got != 0 {
			t.Errorf("%s on an empty sweep = %v, want 0", name, got)
		}
	}
	if s.ReplayedP50 != 0 || s.ReplayedP99 != 0 || s.WallP50 != 0 || s.WallP99 != 0 || s.Wall != 0 {
		t.Errorf("empty-sweep percentiles nonzero: %+v", s)
	}
}

func TestPercentileInt64(t *testing.T) {
	if got := percentileInt64(nil, 50); got != 0 {
		t.Errorf("percentile of nil = %d, want 0", got)
	}
	vs := []int64{5, 1, 9, 3, 7}
	if got := percentileInt64(vs, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentileInt64(vs, 99); got != 9 {
		t.Errorf("p99 = %d, want 9", got)
	}
	if got := percentileInt64(vs, 0); got != 1 {
		t.Errorf("p0 = %d, want 1 (clamped to smallest)", got)
	}
	// The input must survive untouched (Summarize reuses its slices).
	if vs[0] != 5 || vs[4] != 7 {
		t.Errorf("percentileInt64 mutated its input: %v", vs)
	}
}

// TestSweepObservedSummary: an observed sweep populates the percentile
// and wall-clock fields, and the recorder's counters agree with the
// summary's totals.
func TestSweepObservedSummary(t *testing.T) {
	pages := workload.Pages(4)
	ops := workload.SinglePage(12, pages, 3, false)
	rec := obs.New()
	rs, err := SweepObserved(func(s *model.State) method.DB { return method.NewPhysiological(s) },
		ops, workload.InitialState(pages), 11, 2, rec)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rs)
	if s.Recovered != s.Runs {
		t.Fatalf("recovered %d/%d", s.Recovered, s.Runs)
	}
	if s.Wall == 0 {
		t.Error("summed recovery wall clock is zero")
	}
	if s.WallP99 < s.WallP50 {
		t.Errorf("WallP99 %v < WallP50 %v", s.WallP99, s.WallP50)
	}
	if s.ReplayedP99 < s.ReplayedP50 {
		t.Errorf("ReplayedP99 %d < ReplayedP50 %d", s.ReplayedP99, s.ReplayedP50)
	}
	// Both the sequential and parallel pass examine every record, so the
	// recorder holds twice the summary's totals; selectivity is invariant
	// under that doubling.
	if got := rec.CounterValue(obs.MRedoExamined); got != 2*int64(s.Examined) {
		t.Errorf("recorder examined %d, summary %d (want 2x: both passes)", got, s.Examined)
	}
	// Crash points 0..len(ops) execute 0+1+...+len(ops) operations.
	want := int64(len(ops) * (len(ops) + 1) / 2)
	if got := rec.CounterValue(obs.MDBExec); got != want {
		t.Errorf("db.exec = %d, want %d", got, want)
	}
}

// TestCampaignMetricsRollup: a campaign with Metrics attached produces a
// validating v1 report whose methods match the campaign's, with the full
// phase breakdown from the observed clean-cell parallel passes.
func TestCampaignMetricsRollup(t *testing.T) {
	metrics := NewCampaignMetrics()
	cfg := CampaignConfig{
		Methods: []NamedFactory{
			{Name: "physiological", New: func(s *model.State) method.DB { return method.NewPhysiological(s) }},
			{Name: "logical", New: func(s *model.State) method.DB { return method.NewLogical(s) }},
		},
		Kinds:   []fault.Kind{fault.LostWrite, fault.PageBitRot},
		Seeds:   []int64{1, 2},
		Workers: 4,
		Metrics: metrics,
	}
	rs, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no campaign results")
	}
	rep := metrics.Report("test -campaign")
	if err := rep.Validate(); err != nil {
		t.Fatalf("campaign metrics report: %v", err)
	}
	names := rep.MethodNames()
	if len(names) != 2 || names[0] != "logical" || names[1] != "physiological" {
		t.Fatalf("report methods = %v", names)
	}
	for _, name := range names {
		s := rep.Methods[name]
		if s.Counter(obs.MDBExec) == 0 {
			t.Errorf("%s: no executed operations recorded", name)
		}
		if s.Counter(obs.MRedoExamined) == 0 {
			t.Errorf("%s: no examined records recorded", name)
		}
	}
	if rep.Totals.Sample(obs.MPartitionWidth).Count == 0 {
		t.Error("no partition widths observed across the campaign")
	}
}

// TestCampaignMetricsNil: a nil aggregator hands out nil (disabled)
// recorders, so the zero-config path stays zero-cost.
func TestCampaignMetricsNil(t *testing.T) {
	var cm *CampaignMetrics
	if r := cm.Recorder("any"); r != nil {
		t.Fatalf("nil aggregator returned a live recorder: %v", r)
	}
}
