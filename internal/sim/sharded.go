package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"redotheory/internal/core"
	"redotheory/internal/obs"
	"redotheory/internal/shard"
	"redotheory/internal/workload"
)

// ShardedConfig describes one sharded crash/recovery run: a CrossHistory
// workload through an N-shard DB with a randomized per-shard background
// schedule, per-shard failure points, a global crash, and distributed
// recovery from the certified cut.
type ShardedConfig struct {
	// Method names the recovery method; it must be shard-eligible
	// (shard.Eligible).
	Method NamedFactory
	// Shards is the shard count (default 2).
	Shards int
	// NumOps and PagesPerShard size the workload (defaults 36 and 4).
	NumOps, PagesPerShard int
	// CrossEvery makes every CrossEvery-th operation a cross-shard
	// transaction (default 3).
	CrossEvery int
	// Seed drives the workload and the background schedule.
	Seed int64
	// Crashes[i] freezes shard i after that many global operations;
	// nil derives staggered per-shard points from the seed. Use equal
	// entries for a synchronized crash.
	Crashes []int
	// Recorder, when non-nil, is attached to the coordinator and
	// threaded through recovery.
	Recorder *obs.Recorder
}

// ShardedCheck is the verdict of one sharded differential run.
type ShardedCheck struct {
	Method string
	Shards int
	Seed   int64
	// Skipped counts operations refused because a participant shard had
	// already failed.
	Skipped int
	// CrossTxns counts the cross-shard transactions executed.
	CrossTxns int
	// Cut is the certified cut recovery replayed up to.
	Cut []core.LSN
	// DroppedTxns and DroppedRecords count the durable work the cut
	// abandoned for atomicity; StableRecords and CutRecords total the
	// per-shard logs and their cut prefixes.
	DroppedTxns    int
	DroppedRecords int
	StableRecords  int
	CutRecords     int
	// InvariantOK is the per-shard-projection audit verdict.
	InvariantOK bool
	// Mismatch is empty when sharded recovery (sequential and parallel)
	// agreed with the merged single-log oracle; otherwise it explains
	// the first divergence.
	Mismatch string
}

// OK reports whether the run passed: no oracle mismatch and every
// shard projection explainable.
func (c *ShardedCheck) OK() bool { return c.Mismatch == "" && c.InvariantOK }

// ShardableMethods returns DefaultMethods restricted to the methods the
// sharding coordinator supports (everything but physical logging).
func ShardableMethods() []NamedFactory {
	var out []NamedFactory
	for _, m := range DefaultMethods() {
		if shard.Eligible(m.Name) {
			out = append(out, m)
		}
	}
	return out
}

// DeriveCrashes returns per-shard failure points for the config:
// staggered through the second half of the history when stagger is set,
// a single synchronized point otherwise.
func DeriveCrashes(seed int64, numOps, shards int, stagger bool) []int {
	rng := rand.New(rand.NewSource(seed*977 + int64(shards)))
	out := make([]int, shards)
	sync := numOps/2 + rng.Intn(numOps/2+1)
	for i := range out {
		if stagger {
			out[i] = numOps/2 + rng.Intn(numOps/2+1)
		} else {
			out[i] = sync
		}
	}
	return out
}

// BuildShardedCrashed executes the configured run up to and including
// the crash and returns the crashed DB plus how many operations were
// refused due to failed participants. The background schedule
// interleaves log forces, cut certifications, gated installs, gated
// checkpoints, and log truncation per live shard.
func BuildShardedCrashed(cfg ShardedConfig) (*shard.DB, int, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.NumOps == 0 {
		cfg.NumOps = 36
	}
	if cfg.PagesPerShard == 0 {
		cfg.PagesPerShard = 4
	}
	if cfg.CrossEvery == 0 {
		cfg.CrossEvery = 3
	}
	if !shard.Eligible(cfg.Method.Name) {
		return nil, 0, fmt.Errorf("sim: method %q is not shard-eligible", cfg.Method.Name)
	}
	pages := workload.Pages(cfg.PagesPerShard * cfg.Shards)
	d := shard.New(shard.Factory(cfg.Method.New), cfg.Shards, workload.InitialState(pages))
	d.SetRecorder(cfg.Recorder)
	ops, err := shard.CrossHistory(cfg.Method.Name, cfg.NumOps, pages, d.Router(), cfg.CrossEvery, cfg.Seed)
	if err != nil {
		return nil, 0, err
	}
	crashes := cfg.Crashes
	if crashes == nil {
		crashes = DeriveCrashes(cfg.Seed, cfg.NumOps, cfg.Shards, true)
	}
	if len(crashes) != cfg.Shards {
		return nil, 0, fmt.Errorf("sim: %d crash points for %d shards", len(crashes), cfg.Shards)
	}

	rng := rand.New(rand.NewSource(cfg.Seed * 131))
	skipped := 0
	for k, op := range ops {
		for i := 0; i < cfg.Shards; i++ {
			if k == crashes[i] {
				d.Freeze(i)
			}
		}
		if err := d.Exec(op); err != nil {
			if errors.Is(err, shard.ErrShardDown) {
				skipped++
				continue
			}
			return nil, 0, fmt.Errorf("sim: exec op %d: %w", k, err)
		}
		i := rng.Intn(cfg.Shards)
		switch {
		case rng.Float64() < 0.35:
			d.FlushLog(i)
		case rng.Float64() < 0.3:
			if _, err := d.Certify(); err != nil {
				return nil, 0, fmt.Errorf("sim: certify after op %d: %w", k, err)
			}
		case rng.Float64() < 0.4:
			d.FlushOne(i)
		case rng.Float64() < 0.2:
			if err := d.Checkpoint(i); err != nil {
				return nil, 0, fmt.Errorf("sim: checkpoint shard %d: %w", i, err)
			}
		case rng.Float64() < 0.3:
			if _, err := d.Truncate(i); err != nil {
				return nil, 0, fmt.Errorf("sim: truncate shard %d: %w", i, err)
			}
		}
	}
	d.Crash()
	return d, skipped, nil
}

// CheckSharded runs the full sharded differential oracle: build a
// crashed run, recover it per shard from the certified cut (sequential
// dense replay, then partitioned parallel replay), audit every shard's
// projection with the invariant checker, and compare both recovered
// states against the merged single-log oracle. Any disagreement lands
// in Mismatch; infrastructure failures (the run itself breaking) come
// back as an error.
func CheckSharded(cfg ShardedConfig) (*ShardedCheck, error) {
	d, skipped, err := BuildShardedCrashed(cfg)
	if err != nil {
		return nil, err
	}
	check := &ShardedCheck{
		Method:      cfg.Method.Name,
		Shards:      d.N(),
		Seed:        cfg.Seed,
		Skipped:     skipped,
		CrossTxns:   d.CrossTxns(),
		InvariantOK: true,
	}

	out, err := d.Recover(shard.RecoverOptions{CheckInvariant: true, Recorder: cfg.Recorder})
	if err != nil {
		check.Mismatch = fmt.Sprintf("sequential sharded recovery: %v", err)
		return check, nil
	}
	check.Cut = out.Cut.Frontier
	check.DroppedTxns = len(out.Cut.Dropped)
	check.DroppedRecords = out.DroppedRecords
	for _, so := range out.Shards {
		check.StableRecords += so.StableRecords
		check.CutRecords += so.CutRecords
		if so.Invariant != nil && !so.Invariant.OK {
			check.InvariantOK = false
			if check.Mismatch == "" {
				check.Mismatch = fmt.Sprintf("shard %d projection: %s", so.Shard, so.Invariant.Summary())
			}
		}
	}

	oracle, err := d.MergedOracle(out.Cut)
	if err != nil {
		check.Mismatch = fmt.Sprintf("merged oracle: %v", err)
		return check, nil
	}
	if !out.State.Equal(oracle) {
		check.Mismatch = fmt.Sprintf("sharded recovery diverged from merged-log oracle on %v", out.State.Diff(oracle))
		return check, nil
	}

	par, err := d.Recover(shard.RecoverOptions{Parallel: true, Recorder: cfg.Recorder})
	if err != nil {
		check.Mismatch = fmt.Sprintf("parallel sharded recovery: %v", err)
		return check, nil
	}
	if !par.State.Equal(out.State) {
		check.Mismatch = fmt.Sprintf("parallel sharded recovery diverged from sequential on %v", par.State.Diff(out.State))
		return check, nil
	}
	for i := range out.Cut.Frontier {
		if par.Cut.Frontier[i] != out.Cut.Frontier[i] {
			check.Mismatch = fmt.Sprintf("cut not deterministic across recovery runs: %v vs %v", par.Cut.Frontier, out.Cut.Frontier)
			return check, nil
		}
	}
	return check, nil
}
