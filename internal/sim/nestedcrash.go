package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"redotheory/internal/fault"
	"redotheory/internal/model"
	"redotheory/internal/storage"
	"redotheory/internal/supervise"
	"redotheory/internal/workload"
)

// This file is the nested-crash campaign (the E-series experiment): the
// availability reading of Corollary 4 put under test at scale. Where the
// crash matrix crashes the *system* at every point and the fault
// campaign corrupts the *medium*, this campaign crashes the *recovery* —
// repeatedly, on a schedule — and asserts that the supervised restart
// loop (internal/supervise) always converges to the determined state
// with strictly monotone install progress and zero silent corruption.
//
// The grid is methods × workload seeds × crash-during-execution points ×
// nested-crash schedules. A schedule is the supervisor's CrashPlan: entry
// k is how many operations recovery attempt k installs before it is
// crashed. The headline assertion across the matrix: every cell
// converges, matches the oracle, and never moves the install measure
// backwards.

// NestedCrashConfig describes the campaign grid.
type NestedCrashConfig struct {
	Methods []NamedFactory
	// NumOps and NumPages size each cell's workload (defaults 12 and 4).
	NumOps, NumPages int
	// Seeds defaults to {1, 2, 3}.
	Seeds []int64
	// CrashPoints are the crash-during-execution points (defaults
	// {NumOps/2, NumOps}: mid-run and end-of-run system crashes).
	CrashPoints []int
	// Schedules are the nested-crash schedules (defaults
	// DefaultNestedSchedules()).
	Schedules [][]int
	// MaxAttempts bounds each cell's supervised attempt loop (default:
	// schedule length + 8, enough for the full ladder after the last
	// injected crash).
	MaxAttempts int
	// ProgressEvery is the supervisor's progress-checkpoint period K
	// (default 1: checkpoint after every install, the strictest setting,
	// which makes install progress strictly monotone for every
	// install-capable method — including physical, whose always-true
	// redo test advances only through the checkpoint bound).
	ProgressEvery int
	// Workers bounds the pool running cells concurrently (0 or 1:
	// sequential; results are canonical either way).
	Workers int
	// Metrics, when non-nil, collects per-method rollups including the
	// supervise.* attempt/backoff/ladder counters.
	Metrics *CampaignMetrics
}

// DefaultNestedSchedules is the default crash-schedule axis: no crash,
// single crashes at increasing depths, and descending multi-crash
// storms (the worst case: each retry is killed earlier than the last).
func DefaultNestedSchedules() [][]int {
	return [][]int{
		nil,
		{0},
		{1},
		{3},
		{1, 0},
		{2, 1, 0},
	}
}

// NestedCrashResult reports one cell of the campaign.
type NestedCrashResult struct {
	Method     string
	CrashAfter int
	Seed       int64
	// ScheduleIdx and Schedule identify the nested-crash schedule.
	ScheduleIdx int
	Schedule    []int
	// Converged, Rung, and the counters mirror the supervisor's result.
	Converged           bool
	Rung                supervise.Rung
	Attempts            int
	TotalInstalls       int
	ProgressCheckpoints int
	CrashesInjected     int
	Escalations         int
	// OracleMatch is whether the converged state equals the determined
	// state (stable log over the recovery base).
	OracleMatch bool
	// StrictlyMonotone is whether every attempt that installed work
	// strictly advanced the install measure (vacuously true for
	// non-installing methods).
	StrictlyMonotone bool
	// Err carries a supervisor harness error ("" when none).
	Err string
	// Ops is the cell's workload, retained so a failing cell can be
	// written out as a fuzz repro artifact.
	Ops []*model.Op
}

// OK reports whether the cell upheld the campaign's promise.
func (r *NestedCrashResult) OK() bool {
	return r.Err == "" && r.Converged && r.OracleMatch && r.StrictlyMonotone
}

// nestedCell is one fully-determined grid point.
type nestedCell struct {
	method      NamedFactory
	ops         []*model.Op
	crash       int
	seed        int64
	scheduleIdx int
	schedule    []int
}

// runNestedCell executes one cell: workload prefix, system crash,
// oracle capture, supervised recovery under the cell's crash schedule,
// and verdict extraction.
func runNestedCell(c nestedCell, cfg NestedCrashConfig, initial *model.State) (*NestedCrashResult, error) {
	out := &NestedCrashResult{
		Method:      c.method.Name,
		CrashAfter:  c.crash,
		Seed:        c.seed,
		ScheduleIdx: c.scheduleIdx,
		Schedule:    c.schedule,
		Ops:         c.ops,
	}

	// Execute the workload prefix with the standard background-activity
	// mix, then crash. Same probabilities as the fault campaign so the
	// crash states are comparable across experiments.
	db := c.method.New(initial)
	rec := cfg.Metrics.Recorder(c.method.Name)
	if rec != nil {
		db.SetRecorder(rec)
	}
	rng := rand.New(rand.NewSource(MixSeed(c.seed, int64(fault.Sum(c.method.Name)), int64(c.crash), 5)))
	for i := 0; i < c.crash; i++ {
		if err := db.Exec(c.ops[i]); err != nil {
			return nil, fmt.Errorf("sim: nested-crash %s: executing op %d: %w", c.method.Name, i, err)
		}
		if rng.Float64() < 0.3 {
			db.FlushOne()
		}
		if rng.Float64() < 0.2 {
			db.FlushLog()
		}
		if rng.Float64() < 0.1 {
			if err := db.Checkpoint(); err != nil && !storage.IsTorn(err) {
				return nil, fmt.Errorf("sim: nested-crash %s: checkpoint: %w", c.method.Name, err)
			}
		}
	}
	db.Crash()

	// The oracle: the determined state per Theorem 2 — the stable log
	// applied in order to the recovery base. Captured before supervision
	// because the supervised installing passes mutate the stable state.
	oracle := db.RecoveryBase()
	for _, op := range db.StableLog().Ops() {
		if _, err := oracle.Apply(op); err != nil {
			return nil, fmt.Errorf("sim: nested-crash oracle replay: %w", err)
		}
	}

	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(c.schedule) + 8
	}
	progressEvery := cfg.ProgressEvery
	if progressEvery == 0 {
		progressEvery = 1
	}
	res, err := supervise.Supervise(db, supervise.Options{
		MaxAttempts:   maxAttempts,
		ProgressEvery: progressEvery,
		Seed:          MixSeed(c.seed, int64(fault.Sum(c.method.Name)), int64(c.crash), int64(c.scheduleIdx), 6),
		Crashes:       supervise.CrashPlan{Points: c.schedule},
		Recorder:      rec,
		Sleep:         func(time.Duration) {}, // grid cells never wall-clock sleep
	})
	if err != nil {
		out.Err = err.Error()
		out.StrictlyMonotone = false
		return out, nil
	}

	out.Converged = res.Converged
	out.Rung = res.Rung
	out.Attempts = len(res.Attempts)
	out.TotalInstalls = res.TotalInstalls
	out.ProgressCheckpoints = res.ProgressCheckpoints
	out.CrashesInjected = res.CrashesInjected
	out.Escalations = res.Escalations
	out.OracleMatch = res.Converged && res.State != nil && res.State.Equal(oracle)

	// Strict monotonicity: with K=1 checkpoints every attempt that
	// installed work must strictly advance the install measure. The
	// degraded rung replays conservatively without the supervised
	// installing pass, so its attempts are held to non-regression only
	// (which Supervise itself already enforces).
	out.StrictlyMonotone = true
	if res.InstallCapable && progressEvery == 1 {
		last := -1
		for _, a := range res.Attempts {
			if a.Rung != supervise.RungDegraded && a.Installed > 0 && last >= 0 && a.Progress <= last {
				out.StrictlyMonotone = false
			}
			last = a.Progress
		}
	}
	return out, nil
}

// NestedCrashCampaign sweeps the grid and returns every cell's result in
// canonical order (method, crash point, seed, schedule index).
func NestedCrashCampaign(cfg NestedCrashConfig) ([]*NestedCrashResult, error) {
	numOps := cfg.NumOps
	if numOps == 0 {
		numOps = 12
	}
	numPages := cfg.NumPages
	if numPages == 0 {
		numPages = 4
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	points := cfg.CrashPoints
	if len(points) == 0 {
		points = []int{numOps / 2, numOps}
	}
	schedules := cfg.Schedules
	if len(schedules) == 0 {
		schedules = DefaultNestedSchedules()
	}

	pages := workload.Pages(numPages)
	initial := workload.InitialState(pages)

	var cells []nestedCell
	for _, m := range cfg.Methods {
		for _, seed := range seeds {
			ops, err := workload.ForMethod(m.Name, numOps, pages, seed)
			if err != nil {
				return nil, fmt.Errorf("sim: nested-crash workload for %s: %w", m.Name, err)
			}
			for _, crash := range points {
				for si, sched := range schedules {
					cells = append(cells, nestedCell{method: m, ops: ops, crash: crash, seed: seed, scheduleIdx: si, schedule: sched})
				}
			}
		}
	}

	out := make([]*NestedCrashResult, len(cells))
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			r, err := runNestedCell(c, cfg, initial)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		SortNestedResults(out)
		return out, nil
	}

	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	firstErrIdx := len(cells)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r, err := runNestedCell(cells[i], cfg, initial)
				if err != nil {
					mu.Lock()
					if i < firstErrIdx {
						firstErr, firstErrIdx = err, i
					}
					mu.Unlock()
					continue
				}
				out[i] = r
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	SortNestedResults(out)
	return out, nil
}

// SortNestedResults puts nested-crash results into canonical order:
// method, crash point, seed, schedule index — a total order over any one
// campaign's grid.
func SortNestedResults(rs []*NestedCrashResult) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.CrashAfter != b.CrashAfter {
			return a.CrashAfter < b.CrashAfter
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.ScheduleIdx < b.ScheduleIdx
	})
}

// NestedCrashSummary condenses a nested-crash campaign.
type NestedCrashSummary struct {
	Runs      int
	Converged int
	// NonConverged, OracleMismatches, MonotoneViolations, and Errors are
	// the failure axes; the campaign's promise is all zero.
	NonConverged       int
	OracleMismatches   int
	MonotoneViolations int
	Errors             int
	// ByRung counts which ladder rung finished each converged cell.
	ByRung map[supervise.Rung]int
	// ByMethod maps each method to its OK / total cell counts.
	ByMethod map[string][2]int
	// TotalCrashes and TotalAttempts aggregate the injected-crash and
	// attempt counts across the grid.
	TotalCrashes  int
	TotalAttempts int
}

// SummarizeNestedCrash folds campaign results; safe on an empty slice.
func SummarizeNestedCrash(rs []*NestedCrashResult) NestedCrashSummary {
	s := NestedCrashSummary{
		ByRung:   make(map[supervise.Rung]int),
		ByMethod: make(map[string][2]int),
	}
	for _, r := range rs {
		s.Runs++
		s.TotalCrashes += r.CrashesInjected
		s.TotalAttempts += r.Attempts
		if r.Err != "" {
			s.Errors++
		}
		if r.Converged {
			s.Converged++
			s.ByRung[r.Rung]++
		} else {
			s.NonConverged++
		}
		if r.Converged && !r.OracleMatch {
			s.OracleMismatches++
		}
		if !r.StrictlyMonotone {
			s.MonotoneViolations++
		}
		m := s.ByMethod[r.Method]
		m[1]++
		if r.OK() {
			m[0]++
		}
		s.ByMethod[r.Method] = m
	}
	return s
}

// Methods returns the summary's method names in sorted order.
func (s NestedCrashSummary) Methods() []string {
	out := make([]string, 0, len(s.ByMethod))
	for m := range s.ByMethod {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
