package sim

import (
	"testing"

	"redotheory/internal/obs"
	"redotheory/internal/supervise"
)

// TestNestedCrashCampaignConverges is the E-series headline: across
// every method × seed × crash point × nested-crash schedule, supervised
// recovery converges to the oracle's determined state with strictly
// monotone install progress.
func TestNestedCrashCampaignConverges(t *testing.T) {
	metrics := NewCampaignMetrics()
	results, err := NestedCrashCampaign(NestedCrashConfig{
		Methods:     namedFactories(),
		NumOps:      10,
		NumPages:    4,
		Seeds:       []int64{1, 2},
		CrashPoints: []int{5, 10},
		Metrics:     metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeNestedCrash(results)
	wantRuns := 7 * 2 * 2 * len(DefaultNestedSchedules())
	if sum.Runs != wantRuns {
		t.Errorf("runs = %d, want %d", sum.Runs, wantRuns)
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("FAIL %s crash=%d seed=%d sched=%v: converged=%v oracle=%v monotone=%v err=%q",
				r.Method, r.CrashAfter, r.Seed, r.Schedule, r.Converged, r.OracleMatch, r.StrictlyMonotone, r.Err)
		}
	}
	if sum.NonConverged != 0 || sum.OracleMismatches != 0 || sum.MonotoneViolations != 0 || sum.Errors != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	// Schedules with crashes must actually have injected them.
	if sum.TotalCrashes == 0 {
		t.Error("no nested crashes injected across the whole grid")
	}

	// The supervise counters land in the per-method metrics rollup and
	// the v1 report validates with them present.
	rep := metrics.Report("test -nested-crash")
	if err := rep.Validate(); err != nil {
		t.Fatalf("metrics report invalid: %v", err)
	}
	snaps := metrics.Snapshots()
	for _, name := range []string{"physiological", "grouplsn"} {
		snap := snaps[name]
		if snap.Counters[obs.MSupAttempts] == 0 {
			t.Errorf("%s: no supervise attempts recorded", name)
		}
		if snap.Counters[obs.MSupCrashes] == 0 {
			t.Errorf("%s: no nested crashes recorded", name)
		}
	}
}

// TestNestedCrashCampaignDeterministic: worker-pool execution returns
// byte-identical verdicts to the sequential sweep.
func TestNestedCrashCampaignDeterministic(t *testing.T) {
	cfg := NestedCrashConfig{
		Methods:     namedFactories()[:3],
		NumOps:      8,
		Seeds:       []int64{7},
		CrashPoints: []int{8},
		Schedules:   [][]int{{0}, {2, 1}},
	}
	seq, err := NestedCrashCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := NestedCrashCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("len %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Method != b.Method || a.Converged != b.Converged || a.Attempts != b.Attempts ||
			a.TotalInstalls != b.TotalInstalls || a.CrashesInjected != b.CrashesInjected ||
			string(a.Rung) != string(b.Rung) {
			t.Errorf("cell %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestNestedCrashDescendingStorm: the descending schedule {2,1,0} kills
// each retry earlier than the last — the adversarial case progress
// checkpoints exist for. With K=1 the first attempt's two installs are
// checkpointed, so later attempts still sit at or past that prefix and
// the cell converges.
func TestNestedCrashDescendingStorm(t *testing.T) {
	results, err := NestedCrashCampaign(NestedCrashConfig{
		Methods:     []NamedFactory{namedFactories()[2]}, // physiological
		NumOps:      10,
		Seeds:       []int64{3},
		CrashPoints: []int{10},
		Schedules:   [][]int{{2, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.OK() {
		t.Fatalf("storm cell failed: %+v", r)
	}
	if r.CrashesInjected != 3 {
		t.Errorf("crashes = %d, want 3", r.CrashesInjected)
	}
	if r.ProgressCheckpoints == 0 {
		t.Error("no progress checkpoints under the storm schedule")
	}
	if r.Rung == supervise.RungDegraded {
		// Three pre-install crashes escalate, but the run should finish
		// before needing degraded repair (nothing is actually damaged).
		t.Logf("note: storm cell finished on the degraded rung")
	}
}
