package sim

import (
	"sync"

	"redotheory/internal/obs"
)

// CampaignMetrics aggregates telemetry across a campaign (or any other
// multi-method sweep): one obs.Recorder per method, shared live by every
// run of that method. Recorders are race-clean, so concurrent campaign
// workers feed the same per-method recorder without coordination; the
// rollup is a point-in-time snapshot per method.
type CampaignMetrics struct {
	mu        sync.Mutex
	recorders map[string]*obs.Recorder
}

// NewCampaignMetrics returns an empty per-method metric aggregator.
func NewCampaignMetrics() *CampaignMetrics {
	return &CampaignMetrics{recorders: make(map[string]*obs.Recorder)}
}

// Recorder returns the method's shared recorder, creating it on first
// use. Safe for concurrent callers; nil receivers return a nil (disabled)
// recorder.
func (cm *CampaignMetrics) Recorder(methodName string) *obs.Recorder {
	if cm == nil {
		return nil
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	r, ok := cm.recorders[methodName]
	if !ok {
		r = obs.New()
		cm.recorders[methodName] = r
	}
	return r
}

// Snapshots returns a point-in-time snapshot per method.
func (cm *CampaignMetrics) Snapshots() map[string]obs.Snapshot {
	if cm == nil {
		return nil
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	out := make(map[string]obs.Snapshot, len(cm.recorders))
	for name, r := range cm.recorders {
		out[name] = r.Snapshot()
	}
	return out
}

// Report renders the aggregator into the v1 metrics report.
func (cm *CampaignMetrics) Report(source string) *obs.Report {
	return obs.NewReport(source, cm.Snapshots())
}
