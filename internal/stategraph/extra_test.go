package stategraph

import (
	"testing"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

func TestWriteValueAccessor(t *testing.T) {
	cg, s0 := figure4()
	g, err := FromConflict(cg, s0)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := g.WriteValue(1, "x")
	if !ok || model.AsInt(v) != 2 {
		t.Errorf("WriteValue(O,x) = %s,%v, want 2", v, ok)
	}
	if _, ok := g.WriteValue(1, "y"); ok {
		t.Error("O does not write y")
	}
	if _, ok := g.WriteValue(99, "x"); ok {
		t.Error("unknown op accepted")
	}
}

func TestInitialCloneIndependent(t *testing.T) {
	s0 := model.StateOf(map[model.Var]model.Value{"x": "1"})
	g := New(s0)
	got := g.Initial()
	got.Set("x", "mutated")
	if g.Initial().Get("x") != "1" {
		t.Error("Initial returned a shared state")
	}
	// Mutating the caller's s0 after construction must not leak in.
	s0.Set("x", "changed")
	if g.Initial().Get("x") != "1" {
		t.Error("constructor did not clone the initial state")
	}
}

func TestGraphAccessors(t *testing.T) {
	cg, s0 := figure4()
	g, err := FromConflict(cg, s0)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NodeIDs(); len(got) != 3 {
		t.Errorf("NodeIDs = %v", got)
	}
	if vs := g.Vars(); len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Errorf("Vars = %v", vs)
	}
	// Writers of x: O's node then Q's node, in graph order.
	ws := g.Writers("x")
	if len(ws) != 2 {
		t.Fatalf("Writers(x) = %v", ws)
	}
	if !g.DAG().HasPath(ws[0], ws[1]) {
		t.Error("writer order does not follow graph order")
	}
	if g.Node(ws[0]) == nil || g.Node(9999) != nil {
		t.Error("Node lookup wrong")
	}
}

func TestIsPrefixDelegation(t *testing.T) {
	cg, s0 := figure4()
	g, _ := FromConflict(cg, s0)
	no := g.NodeOf(1).ID()
	if !g.IsPrefix(graph.NewSet(no)) {
		t.Error("{O} should be a prefix")
	}
	if g.IsPrefix(graph.NewSet(g.NodeOf(3).ID())) {
		t.Error("{Q} should not be a prefix")
	}
}

func TestFromConflictPropagatesApplyErrors(t *testing.T) {
	// An operation whose apply function misbehaves (writes the wrong set)
	// surfaces as an error from FromConflict.
	bad := model.NewOp(1, "bad", nil, []model.Var{"x", "y"},
		func(model.ReadSet) model.WriteSet { return model.WriteSet{"x": "1"} })
	cg := conflict.FromOps(bad)
	if _, err := FromConflict(cg, model.NewState()); err == nil {
		t.Error("misbehaving operation accepted")
	}
}

func TestMultiOpNodeDeterminedState(t *testing.T) {
	// Hand-built state graph with a collapsed-style node carrying two
	// operations: the determined state uses the node's single value per
	// variable.
	g := New(model.NewState())
	n1 := g.AddNode([]model.OpID{1, 2}, map[model.Var]model.Value{"x": "2", "y": "9"})
	n2 := g.AddNode([]model.OpID{3}, map[model.Var]model.Value{"x": "3"})
	g.AddEdge(n1.ID(), n2.ID())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := g.DeterminedState(graph.NewSet(n1.ID()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != "2" || s.Get("y") != "9" {
		t.Errorf("state = %v", s)
	}
	full := g.FinalState()
	if full.Get("x") != "3" || full.Get("y") != "9" {
		t.Errorf("final = %v", full)
	}
	// PrefixOfOps rejects splitting the collapsed node.
	if _, err := g.PrefixOfOps(graph.NewSet[model.OpID](1)); err == nil {
		t.Error("split node accepted")
	}
	if set, err := g.PrefixOfOps(graph.NewSet[model.OpID](1, 2)); err != nil || len(set) != 1 {
		t.Errorf("PrefixOfOps = %v, %v", set, err)
	}
}
