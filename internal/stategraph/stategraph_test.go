package stategraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// figure4 builds the running example: O: x←x+1, P: y←x+1, Q: x←x+1 from
// x=1, y=0 — chosen so the determined states match Figure 4's rectangles
// (x=1; then x=2; then x=2,y=3; then x=3,y=3).
func figure4() (*conflict.Graph, *model.State) {
	o := model.Incr(1, "x", 1)
	p := model.CopyPlus(2, "y", "x", 1)
	q := model.Incr(3, "x", 1)
	s0 := model.NewState()
	s0.SetInt("x", 1)
	return conflict.FromOps(o, p, q), s0
}

func TestFromConflictFigure4(t *testing.T) {
	cg, s0 := figure4()
	g, err := FromConflict(cg, s0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	no, np, nq := g.NodeOf(1), g.NodeOf(2), g.NodeOf(3)
	if v, _ := no.WriteValue("x"); model.AsInt(v) != 2 {
		t.Errorf("O writes x=%s, want 2", v)
	}
	if v, _ := np.WriteValue("y"); model.AsInt(v) != 3 {
		t.Errorf("P writes y=%s, want 3", v)
	}
	if v, _ := nq.WriteValue("x"); model.AsInt(v) != 3 {
		t.Errorf("Q writes x=%s, want 3", v)
	}
}

func TestDeterminedStatesFigure4(t *testing.T) {
	cg, s0 := figure4()
	g, err := FromConflict(cg, s0)
	if err != nil {
		t.Fatal(err)
	}
	no, np, nq := g.NodeOf(1).ID(), g.NodeOf(2).ID(), g.NodeOf(3).ID()

	cases := []struct {
		name   string
		prefix graph.Set[NodeID]
		x, y   int64
	}{
		{"empty", graph.NewSet[NodeID](), 1, 0},
		{"O", graph.NewSet(no), 2, 0},
		{"O,P", graph.NewSet(no, np), 2, 3},
		{"O,P,Q", graph.NewSet(no, np, nq), 3, 3},
	}
	for _, c := range cases {
		s, err := g.DeterminedState(c.prefix)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if s.GetInt("x") != c.x || s.GetInt("y") != c.y {
			t.Errorf("%s: state = %v, want x=%d y=%d", c.name, s, c.x, c.y)
		}
	}
}

func TestDeterminedStateRejectsNonPrefix(t *testing.T) {
	cg, s0 := figure4()
	g, _ := FromConflict(cg, s0)
	// {Q} alone is not a prefix: O precedes it.
	if _, err := g.DeterminedState(graph.NewSet(g.NodeOf(3).ID())); err == nil {
		t.Error("non-prefix accepted")
	}
}

func TestLemma2PrefixStatesMatchStateSequence(t *testing.T) {
	// Lemma 2: S_i is the state determined by the prefix induced by
	// O_1…O_i, for random histories.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 12, 4)
		seq := model.SequenceOf(ops...)
		s0 := randomState(rng, 4)
		states, err := seq.StateSequence(s0)
		if err != nil {
			return false
		}
		cg := conflict.FromSequence(seq)
		g, err := FromConflict(cg, s0)
		if err != nil {
			return false
		}
		prefix := graph.NewSet[NodeID]()
		for i, o := range ops {
			prefix.Add(g.NodeOf(o.ID()).ID())
			det, err := g.DeterminedState(prefix)
			if err != nil || !det.Equal(states[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStateGraphIndependentOfLinearization(t *testing.T) {
	// The conflict graph uniquely determines the state graph: executing
	// any linearization gives every node the same write labels.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 12, 4)
		s0 := randomState(rng, 4)
		cg := conflict.FromOps(ops...)
		g1, err := FromConflict(cg, s0)
		if err != nil {
			return false
		}
		// Re-build the conflict graph from a random linearization and
		// compare write labels per operation.
		lin := randomLinearization(rng, cg)
		cg2 := conflict.FromOps(lin...)
		g2, err := FromConflict(cg2, s0)
		if err != nil {
			return false
		}
		for _, id := range cg.OpIDs() {
			w1, w2 := g1.NodeOf(id).Writes(), g2.NodeOf(id).Writes()
			if len(w1) != len(w2) {
				return false
			}
			for x, v := range w1 {
				if w2[x] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrefixStateReachableByAnyTotalOrder(t *testing.T) {
	// "any state determined by any prefix of this state graph is reachable
	// by any total ordering of the operations labeling that prefix."
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 10, 3)
		s0 := randomState(rng, 3)
		cg := conflict.FromOps(ops...)
		g, err := FromConflict(cg, s0)
		if err != nil {
			return false
		}
		// Random prefix of the state graph.
		prefix := randomPrefix(rng, g)
		det, err := g.DeterminedState(prefix)
		if err != nil {
			return false
		}
		// Execute the prefix ops in a random conflict-consistent order.
		run := s0.Clone()
		for _, o := range randomSubsetLinearization(rng, cg, prefix, g) {
			if _, err := run.Apply(o); err != nil {
				return false
			}
		}
		return run.Equal(det)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrefixOfOps(t *testing.T) {
	cg, s0 := figure4()
	g, _ := FromConflict(cg, s0)
	set, err := g.PrefixOfOps(graph.NewSet[model.OpID](1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Errorf("set = %v", set)
	}
	if _, err := g.PrefixOfOps(graph.NewSet[model.OpID](9)); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestAddNodeDuplicateOpPanics(t *testing.T) {
	g := New(model.NewState())
	g.AddNode([]model.OpID{1}, map[model.Var]model.Value{"x": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate op label")
		}
	}()
	g.AddNode([]model.OpID{1}, map[model.Var]model.Value{"y": "1"})
}

func TestValidateDetectsUnorderedWriters(t *testing.T) {
	g := New(model.NewState())
	g.AddNode([]model.OpID{1}, map[model.Var]model.Value{"x": "1"})
	g.AddNode([]model.OpID{2}, map[model.Var]model.Value{"x": "2"})
	if err := g.Validate(); err == nil {
		t.Error("two unordered writers of x accepted")
	}
	g.AddEdge(1, 2)
	if err := g.Validate(); err != nil {
		t.Errorf("ordered writers rejected: %v", err)
	}
}

func TestAddEdgeMissingNodePanics(t *testing.T) {
	g := New(model.NewState())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on missing node")
		}
	}()
	g.AddEdge(1, 2)
}

func TestNodeAccessors(t *testing.T) {
	g := New(model.NewState())
	n := g.AddNode([]model.OpID{5, 3}, map[model.Var]model.Value{"b": "2", "a": "1"})
	if ids := n.OpIDs(); len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Errorf("OpIDs = %v", ids)
	}
	if vs := n.Vars(); len(vs) != 2 || vs[0] != "a" || vs[1] != "b" {
		t.Errorf("Vars = %v", vs)
	}
	if _, ok := n.WriteValue("z"); ok {
		t.Error("WriteValue on unwritten var")
	}
	if g.NodeOf(99) != nil {
		t.Error("NodeOf unknown op")
	}
}

func TestFinalStateMatchesSequenceFinal(t *testing.T) {
	cg, s0 := figure4()
	g, _ := FromConflict(cg, s0)
	fin := g.FinalState()
	if fin.GetInt("x") != 3 || fin.GetInt("y") != 3 {
		t.Errorf("final = %v, want x=3 y=3", fin)
	}
}

// --- helpers shared with the conflict package's test style ---

func randomOps(rng *rand.Rand, n, k int) []*model.Op {
	vars := make([]model.Var, k)
	for i := range vars {
		vars[i] = model.Var(string(rune('a' + i)))
	}
	ops := make([]*model.Op, n)
	for i := range ops {
		var reads, writes []model.Var
		for _, v := range vars {
			if rng.Float64() < 0.3 {
				reads = append(reads, v)
			}
			if rng.Float64() < 0.25 {
				writes = append(writes, v)
			}
		}
		if len(writes) == 0 {
			writes = append(writes, vars[rng.Intn(k)])
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "w", reads, writes)
	}
	return ops
}

func randomState(rng *rand.Rand, k int) *model.State {
	s := model.NewState()
	for i := 0; i < k; i++ {
		if rng.Float64() < 0.7 {
			s.SetInt(model.Var(string(rune('a'+i))), rng.Int63n(100))
		}
	}
	return s
}

func randomLinearization(rng *rand.Rand, g *conflict.Graph) []*model.Op {
	indeg := make(map[model.OpID]int)
	var ready []model.OpID
	for _, id := range g.OpIDs() {
		indeg[id] = g.DAG().InDegree(id)
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []*model.Op
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		id := ready[i]
		ready = append(ready[:i], ready[i+1:]...)
		out = append(out, g.Op(id))
		for _, s := range g.DAG().Succs(id) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

// randomPrefix returns a random prefix of the state graph.
func randomPrefix(rng *rand.Rand, g *Graph) graph.Set[NodeID] {
	order, err := g.DAG().TopoOrder()
	if err != nil {
		panic(err)
	}
	s := graph.NewSet[NodeID]()
	for _, k := range order {
		ok := true
		for _, p := range g.DAG().Preds(k) {
			if !s.Has(p) {
				ok = false
				break
			}
		}
		if ok && rng.Float64() < 0.6 {
			s.Add(k)
		}
	}
	return s
}

// randomSubsetLinearization returns the operations of the prefix nodes in
// a random order consistent with the conflict graph.
func randomSubsetLinearization(rng *rand.Rand, cg *conflict.Graph, prefix graph.Set[NodeID], g *Graph) []*model.Op {
	inPrefix := graph.NewSet[model.OpID]()
	for id := range prefix {
		for op := range g.Node(id).Ops() {
			inPrefix.Add(op)
		}
	}
	var out []*model.Op
	for _, o := range randomLinearization(rng, cg) {
		if inPrefix.Has(o.ID()) {
			out = append(out, o)
		}
	}
	return out
}
