package storage

import (
	"strings"
	"testing"

	"redotheory/internal/fault"
	"redotheory/internal/model"
)

func TestArmedFaultQueryAndDisarm(t *testing.T) {
	s := NewStore()
	if _, armed := s.ArmedFault(); armed {
		t.Fatal("fresh store reports an armed fault")
	}
	s.TearNextGroup(1)
	if desc, armed := s.ArmedFault(); !armed || !strings.Contains(desc, "tear-next-group") {
		t.Fatalf("ArmedFault after TearNextGroup = %q, %v", desc, armed)
	}
	s.DisarmFaults()
	if _, armed := s.ArmedFault(); armed {
		t.Fatal("fault still armed after DisarmFaults")
	}
	// Disarmed: the next group must apply cleanly.
	if err := s.WriteGroup(map[model.Var]Page{
		"a": {Data: "1", LSN: 1},
		"b": {Data: "2", LSN: 2},
	}); err != nil {
		t.Fatalf("disarmed group write failed: %v", err)
	}

	s.SetInjector(fault.NewInjector(1, fault.LostWrite))
	if desc, armed := s.ArmedFault(); !armed || desc != string(fault.LostWrite) {
		t.Fatalf("ArmedFault with injector = %q, %v", desc, armed)
	}
	s.DisarmFaults()
	if _, armed := s.ArmedFault(); armed {
		t.Fatal("injector still armed after DisarmFaults")
	}
}

func TestDoubleArmThenNormalWrite(t *testing.T) {
	s := NewStore()
	// Double-arm: the second arm wins (last writer), still one-shot.
	s.TearNextGroup(0)
	s.TearNextGroup(1)
	err := s.WriteGroup(map[model.Var]Page{
		"a": {Data: "1", LSN: 1},
		"b": {Data: "2", LSN: 2},
	})
	if !IsTorn(err) {
		t.Fatalf("double-armed group did not tear: %v", err)
	}
	if _, ok := s.Read("a"); !ok {
		t.Error("tear kept 1 page but prefix page missing")
	}
	if _, ok := s.Read("b"); ok {
		t.Error("page past the tear applied")
	}
	// One-shot: arm consumed, plain single-page writes unaffected.
	if _, armed := s.ArmedFault(); armed {
		t.Fatal("tear still armed after firing")
	}
	s.Write("c", "3", 3)
	if p, _ := s.Read("c"); p.Data != "3" {
		t.Error("normal write after tear failed")
	}
	if err := s.WriteGroup(map[model.Var]Page{"b": {Data: "2", LSN: 2}}); err != nil {
		t.Fatalf("group write after consumed tear failed: %v", err)
	}
}

func TestChecksumSealAndVerify(t *testing.T) {
	s := FromState(model.StateOf(map[model.Var]model.Value{"a": "1"}))
	s.Write("b", "2", 5)
	if err := s.WriteGroup(map[model.Var]Page{"c": {Data: "3", LSN: 6}}); err != nil {
		t.Fatal(err)
	}
	if bad := s.VerifyAll(); len(bad) != 0 {
		t.Fatalf("clean store verifies corrupt: %v", bad)
	}
	if err := s.VerifyPage("missing"); err != nil {
		t.Fatalf("missing page reported corrupt: %v", err)
	}
	if !s.CorruptPage("b") {
		t.Fatal("CorruptPage on present page returned false")
	}
	if err := s.VerifyPage("b"); err == nil {
		t.Fatal("bit-rotted page passed verification")
	} else if _, ok := err.(*CorruptPageError); !ok {
		t.Fatalf("wrong error type: %T", err)
	}
	if bad := s.VerifyAll(); len(bad) != 1 || bad[0] != "b" {
		t.Fatalf("VerifyAll = %v, want [b]", bad)
	}
	if s.CorruptPage("missing") {
		t.Fatal("CorruptPage on missing page returned true")
	}
}

func TestLostWriteRealization(t *testing.T) {
	s := NewStore()
	// loseAt draws from [0,6); with seed 1 find the dead page by writing.
	s.SetInjector(fault.NewInjector(1, fault.LostWrite))
	for i := 0; i < 8; i++ {
		s.Write("p", model.Value(strings.Repeat("x", i+1)), 0)
	}
	s.Write("p", "final", 9)
	s.Write("q", "safe", 10)
	// Pre-crash, the illusion holds: reads see the latest write.
	if p, _ := s.Read("p"); p.Data != "final" {
		t.Fatalf("pre-crash read = %q, want the illusion of success", p.Data)
	}
	reverted := s.RealizeCrashFaults()
	if len(reverted) != 1 || reverted[0] != "p" {
		t.Fatalf("reverted = %v, want [p]", reverted)
	}
	p, _ := s.Read("p")
	if p.Data == "final" {
		t.Fatal("lost write survived the crash")
	}
	// The stale version is checksum-valid: lost writes are NOT detectable
	// by page checksums, only by LSN reasoning.
	if err := s.VerifyPage("p"); err != nil {
		t.Fatalf("stale page should be checksum-valid: %v", err)
	}
	if q, _ := s.Read("q"); q.Data != "safe" {
		t.Fatal("unrelated page affected by realization")
	}
	// Realization is one-shot and detaches the injector.
	if got := s.RealizeCrashFaults(); len(got) != 0 {
		t.Fatalf("second realization reverted %v", got)
	}
	if _, armed := s.ArmedFault(); armed {
		t.Fatal("injector still attached after realization")
	}
}

func TestGroupIntentJournal(t *testing.T) {
	s := NewStore()
	if s.PendingGroupIntent() != nil {
		t.Fatal("fresh store has a pending intent")
	}
	if err := s.WriteGroup(map[model.Var]Page{"a": {Data: "1", LSN: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.PendingGroupIntent() != nil {
		t.Fatal("completed group left its intent pending")
	}
	s.TearNextGroup(1)
	err := s.WriteGroup(map[model.Var]Page{
		"a": {Data: "1", LSN: 2},
		"b": {Data: "2", LSN: 2},
	})
	if !IsTorn(err) {
		t.Fatalf("expected torn group, got %v", err)
	}
	intent := s.PendingGroupIntent()
	if len(intent) != 2 || intent[0] != "a" || intent[1] != "b" {
		t.Fatalf("pending intent = %v, want [a b]", intent)
	}
	s.ClearGroupIntent()
	if s.PendingGroupIntent() != nil {
		t.Fatal("intent survived ClearGroupIntent")
	}
}

func TestInjectorTearsSwing(t *testing.T) {
	st := NewStore()
	sh := NewShadowTable(st)
	sh.StagePage("a", Page{Data: "1", LSN: 1})
	sh.StagePage("b", Page{Data: "2", LSN: 1})
	st.SetInjector(fault.NewInjector(42, fault.TornGroup))
	err := sh.Swing()
	if !IsTorn(err) {
		t.Fatalf("armed torn-group injector did not tear the swing: %v", err)
	}
	if sh.Staged() != 2 {
		t.Fatal("staging cleared despite torn swing")
	}
	if st.PendingGroupIntent() == nil {
		t.Fatal("torn swing left no pending intent")
	}
	// The injector tears only one group; retrying the swing succeeds.
	if err := sh.Swing(); err != nil {
		t.Fatalf("retried swing failed: %v", err)
	}
	if sh.Staged() != 0 || st.PendingGroupIntent() != nil {
		t.Fatal("successful retry did not settle staging/intent")
	}
}
