// Package storage simulates the stable state: a page store that survives
// crashes. Pages are the system's variables; a page write is atomic at
// page granularity (the standard disk assumption behind physiological
// recovery), and optional multi-page atomic groups model the
// shadow-paging "pointer swing" of System R-style logical recovery
// (Section 6.1) and the multi-variable atomic installations of Section 5.
//
// Every page carries an LSN tag — "the LSN is usually on the page"
// (Section 6.3) — naming the last operation whose effects the page
// reflects, plus an integrity checksum over (page id, contents, LSN) so
// media faults are detectable. The store is also the injection point for
// the media-fault model of internal/fault: group writes can tear
// (leaving an uncleared group-intent journal behind, the doublewrite
// buffer's detection trick), single writes can be silently lost (a dead
// sector revealed only at crash realization), and pages can bit-rot
// (caught by the checksum). Clean crashes never need any of this; the
// degraded-recovery path in internal/method consumes the detections.
package storage

import (
	"fmt"
	"sort"
	"strconv"

	"redotheory/internal/core"
	"redotheory/internal/fault"
	"redotheory/internal/model"
)

// Page is a stable page: contents, the LSN tag of the last operation
// that updated it, and an integrity checksum sealed at write time.
type Page struct {
	Data model.Value
	LSN  core.LSN
	// Sum is the checksum over (page id, Data, LSN), computed by the
	// store on every write; callers building Page values by hand need
	// not fill it.
	Sum uint64
}

// pageSum computes the integrity checksum of a page as stored under id.
// Including the id catches misdirected writes as well as bit-rot.
func pageSum(id model.Var, data model.Value, lsn core.LSN) uint64 {
	return fault.Sum("page", string(id), string(data), strconv.FormatUint(uint64(lsn), 10))
}

// CorruptPageError reports a page whose contents no longer match its
// checksum: bit-rot, a torn sector, or a misdirected write.
type CorruptPageError struct {
	Page model.Var
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: page %q is corrupt (checksum mismatch)", e.Page)
}

// TornGroupError reports a multi-page write group that applied only a
// prefix of its pages.
type TornGroupError struct {
	Applied, Size int
}

func (e *TornGroupError) Error() string {
	return fmt.Sprintf("storage: write group torn after %d of %d pages", e.Applied, e.Size)
}

// IsTorn reports whether err is (or wraps) a torn-group failure.
func IsTorn(err error) bool {
	for err != nil {
		if _, ok := err.(*TornGroupError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// lostWrite remembers the page version a dead sector will reveal at
// crash time in place of everything written since.
type lostWrite struct {
	old     Page
	existed bool
}

// Store is the stable page store. It survives Crash; everything volatile
// lives elsewhere (cache, unflushed log tail).
type Store struct {
	pages map[model.Var]Page
	// tearAfter, when non-negative, makes the next WriteGroup apply only
	// that many pages and then fail, simulating a torn multi-page write.
	tearAfter int
	// inj is the armed media-fault injector (nil when no fault armed).
	inj *fault.Injector
	// lost tracks pages whose writes a dead sector has swallowed; the
	// pre-fault version resurfaces at RealizeCrashFaults.
	lost map[model.Var]lostWrite
	// intent is the group-write intent journal: the page set of an
	// in-flight atomic group, recorded before the first page write and
	// cleared after the last. A crash (or tear) leaves it pending, which
	// is how recovery detects a torn group — the doublewrite-buffer /
	// shadow-commit protocol in miniature.
	intent []model.Var
	// repairing is the durable repair-in-progress flag (a control-file
	// dirty bit): set before degraded recovery rewrites pages, cleared
	// after the last write. A crash mid-repair leaves it set, telling the
	// rerun the page array is a half-rewritten mix that must not be
	// trusted by fast-path recovery.
	repairing bool
	// PageWrites counts individual page writes, WriteGroups counts atomic
	// group commits; benchmarks report both.
	PageWrites  int
	GroupWrites int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[model.Var]Page), tearAfter: -1}
}

// FromState initializes a store from a state, with all pages tagged LSN 0.
func FromState(s *model.State) *Store {
	st := NewStore()
	for _, x := range s.Vars() {
		st.pages[x] = Page{Data: s.Get(x), LSN: 0, Sum: pageSum(x, s.Get(x), 0)}
	}
	return st
}

// Read returns the page and whether it exists. A missing page reads as
// the zero page (zero Value, LSN 0), matching the model's total states.
func (s *Store) Read(id model.Var) (Page, bool) {
	p, ok := s.pages[id]
	return p, ok
}

// PageLSN returns the LSN tag of a page (0 for missing pages).
func (s *Store) PageLSN(id model.Var) core.LSN { return s.pages[id].LSN }

// Write atomically replaces one page, sealing its checksum. Single-page
// atomicity is the baseline guarantee real disks provide (modulo torn
// sector handling, which the checksum catches).
func (s *Store) Write(id model.Var, data model.Value, lsn core.LSN) {
	if s.inj != nil && s.inj.LoseWrite(string(id)) {
		s.recordLost(id)
	}
	s.pages[id] = Page{Data: data, LSN: lsn, Sum: pageSum(id, data, lsn)}
	s.PageWrites++
}

// recordLost captures the current version of a page the first time a
// dead sector swallows a write to it. The new contents still appear in
// the store — the controller's cache keeps up the illusion — until
// RealizeCrashFaults reveals what actually reached the platter.
func (s *Store) recordLost(id model.Var) {
	if s.lost == nil {
		s.lost = make(map[model.Var]lostWrite)
	}
	if _, done := s.lost[id]; done {
		return
	}
	old, ok := s.pages[id]
	s.lost[id] = lostWrite{old: old, existed: ok}
}

// WriteGroup atomically replaces a set of pages: either all writes apply
// or (under injected tearing) a prefix does and a TornGroupError is
// returned. Logical recovery's checkpoint pointer swing and Section 5's
// multi-variable installations use this. The group's page set is
// journaled as an intent before the first write and cleared after the
// last, so a torn group is detectable at recovery.
func (s *Store) WriteGroup(pages map[model.Var]Page) error {
	ids := make([]model.Var, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if keep, ok := s.inj.TearGroup(len(ids)); ok && s.tearAfter < 0 {
		s.tearAfter = keep
	}
	s.intent = append([]model.Var(nil), ids...)
	for i, id := range ids {
		if s.tearAfter >= 0 && i == s.tearAfter {
			s.tearAfter = -1
			return &TornGroupError{Applied: i, Size: len(ids)}
		}
		p := pages[id]
		if s.inj != nil && s.inj.LoseWrite(string(id)) {
			s.recordLost(id)
		}
		p.Sum = pageSum(id, p.Data, p.LSN)
		s.pages[id] = p
		s.PageWrites++
	}
	s.intent = nil
	s.GroupWrites++
	return nil
}

// TearNextGroup arms fault injection: the next WriteGroup applies only n
// pages and then fails, leaving the group half-written.
func (s *Store) TearNextGroup(n int) { s.tearAfter = n }

// SetInjector attaches a media-fault injector; its armed faults apply to
// subsequent writes. Pass nil to detach.
func (s *Store) SetInjector(inj *fault.Injector) { s.inj = inj }

// DisarmFaults clears every armed fault: the pending TearNextGroup and
// the attached injector. Already-swallowed lost writes stay swallowed —
// disarming stops future faults, it does not repair the platter.
func (s *Store) DisarmFaults() {
	s.tearAfter = -1
	s.inj = nil
}

// ArmedFault describes the fault currently armed against the store, if
// any: a pending TearNextGroup or an attached injector's kind.
func (s *Store) ArmedFault() (string, bool) {
	if s.tearAfter >= 0 {
		return fmt.Sprintf("tear-next-group(keep %d)", s.tearAfter), true
	}
	if s.inj != nil && s.inj.Kind() != fault.None {
		return string(s.inj.Kind()), true
	}
	return "", false
}

// RealizeCrashFaults applies the media decay a crash reveals: pages with
// lost writes revert to their last version that actually reached the
// platter. It fires the corresponding injector events, then detaches the
// injector — decay happens once, and recovery's own writes must land.
// It returns the ids of the reverted pages in sorted order.
func (s *Store) RealizeCrashFaults() []model.Var {
	var reverted []model.Var
	for id, lw := range s.lost {
		if lw.existed {
			s.pages[id] = lw.old
		} else {
			delete(s.pages, id)
		}
		reverted = append(reverted, id)
	}
	sort.Slice(reverted, func(i, j int) bool { return reverted[i] < reverted[j] })
	s.lost = nil
	s.inj = nil
	return reverted
}

// CorruptPage flips the contents of a page without updating its
// checksum, simulating bit-rot on the medium. It reports whether the
// page existed.
func (s *Store) CorruptPage(id model.Var) bool {
	p, ok := s.pages[id]
	if !ok {
		return false
	}
	if len(p.Data) == 0 {
		p.Data = "\x7f"
	} else {
		b := []byte(p.Data)
		b[0] ^= 0x40
		p.Data = model.Value(b)
	}
	s.pages[id] = p
	return true
}

// VerifyPage recomputes a page's checksum and returns a
// CorruptPageError on mismatch (nil for missing pages: absence is not
// corruption in the total-state model).
func (s *Store) VerifyPage(id model.Var) error {
	p, ok := s.pages[id]
	if !ok {
		return nil
	}
	if p.Sum != pageSum(id, p.Data, p.LSN) {
		return &CorruptPageError{Page: id}
	}
	return nil
}

// VerifyAll checksums every materialized page and returns the corrupt
// ids in sorted order.
func (s *Store) VerifyAll() []model.Var {
	var bad []model.Var
	for id := range s.pages {
		if s.VerifyPage(id) != nil {
			bad = append(bad, id)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}

// BeginRepair durably marks a page-repair pass as in progress.
func (s *Store) BeginRepair() { s.repairing = true }

// EndRepair clears the repair-in-progress mark after the last repair
// write has landed.
func (s *Store) EndRepair() { s.repairing = false }

// RepairPending reports whether a repair pass started but never
// finished — the page array is a half-rewritten mix.
func (s *Store) RepairPending() bool { return s.repairing }

// PendingGroupIntent returns the page set of an atomic group write that
// began but never completed (nil when none): the torn-group detector.
func (s *Store) PendingGroupIntent() []model.Var {
	if s.intent == nil {
		return nil
	}
	return append([]model.Var(nil), s.intent...)
}

// ClearGroupIntent acknowledges a pending group intent after recovery
// has repaired its pages.
func (s *Store) ClearGroupIntent() { s.intent = nil }

// PageIDs returns the ids of all materialized pages in sorted order.
func (s *Store) PageIDs() []model.Var {
	out := make([]model.Var, 0, len(s.pages))
	for id := range s.pages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// State projects the page contents as a model state (dropping LSN tags).
func (s *Store) State() *model.State {
	out := model.NewState()
	for id, p := range s.pages {
		out.Set(id, p.Data)
	}
	return out
}

// LSNs returns a copy of the page LSN table.
func (s *Store) LSNs() map[model.Var]core.LSN {
	out := make(map[model.Var]core.LSN, len(s.pages))
	for id, p := range s.pages {
		if p.LSN != 0 {
			out[id] = p.LSN
		}
	}
	return out
}

// Clone returns an independent copy of the page array (used to snapshot
// the stable state for checkers without letting recovery mutate the
// original). Armed faults and journals are not cloned.
func (s *Store) Clone() *Store {
	c := NewStore()
	for id, p := range s.pages {
		c.pages[id] = p
	}
	return c
}

// Len returns the number of materialized pages.
func (s *Store) Len() int { return len(s.pages) }
