// Package storage simulates the stable state: a page store that survives
// crashes. Pages are the system's variables; a page write is atomic at
// page granularity (the standard disk assumption behind physiological
// recovery), and optional multi-page atomic groups model the
// shadow-paging "pointer swing" of System R-style logical recovery
// (Section 6.1) and the multi-variable atomic installations of Section 5.
//
// Every page carries an LSN tag — "the LSN is usually on the page"
// (Section 6.3) — naming the last operation whose effects the page
// reflects. Fault injection can tear multi-page groups to demonstrate why
// atomicity matters; the recovery-invariant checker catches the resulting
// unexplainable states.
package storage

import (
	"fmt"
	"sort"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

// Page is a stable page: contents plus the LSN tag of the last operation
// that updated it.
type Page struct {
	Data model.Value
	LSN  core.LSN
}

// Store is the stable page store. It survives Crash; everything volatile
// lives elsewhere (cache, unflushed log tail).
type Store struct {
	pages map[model.Var]Page
	// tearAfter, when non-negative, makes the next WriteGroup apply only
	// that many pages and then fail, simulating a torn multi-page write.
	tearAfter int
	// PageWrites counts individual page writes, WriteGroups counts atomic
	// group commits; benchmarks report both.
	PageWrites  int
	GroupWrites int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[model.Var]Page), tearAfter: -1}
}

// FromState initializes a store from a state, with all pages tagged LSN 0.
func FromState(s *model.State) *Store {
	st := NewStore()
	for _, x := range s.Vars() {
		st.pages[x] = Page{Data: s.Get(x)}
	}
	return st
}

// Read returns the page and whether it exists. A missing page reads as
// the zero page (zero Value, LSN 0), matching the model's total states.
func (s *Store) Read(id model.Var) (Page, bool) {
	p, ok := s.pages[id]
	return p, ok
}

// PageLSN returns the LSN tag of a page (0 for missing pages).
func (s *Store) PageLSN(id model.Var) core.LSN { return s.pages[id].LSN }

// Write atomically replaces one page. Single-page atomicity is the
// baseline guarantee real disks provide (modulo torn sector handling).
func (s *Store) Write(id model.Var, data model.Value, lsn core.LSN) {
	s.pages[id] = Page{Data: data, LSN: lsn}
	s.PageWrites++
}

// WriteGroup atomically replaces a set of pages: either all writes apply
// or (under injected tearing) a prefix does and an error is returned.
// Logical recovery's checkpoint pointer swing and Section 5's
// multi-variable installations use this.
func (s *Store) WriteGroup(pages map[model.Var]Page) error {
	ids := make([]model.Var, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if s.tearAfter >= 0 && i == s.tearAfter {
			s.tearAfter = -1
			return fmt.Errorf("storage: write group torn after %d of %d pages", i, len(ids))
		}
		s.pages[id] = pages[id]
		s.PageWrites++
	}
	s.GroupWrites++
	return nil
}

// TearNextGroup arms fault injection: the next WriteGroup applies only n
// pages and then fails, leaving the group half-written.
func (s *Store) TearNextGroup(n int) { s.tearAfter = n }

// State projects the page contents as a model state (dropping LSN tags).
func (s *Store) State() *model.State {
	out := model.NewState()
	for id, p := range s.pages {
		out.Set(id, p.Data)
	}
	return out
}

// LSNs returns a copy of the page LSN table.
func (s *Store) LSNs() map[model.Var]core.LSN {
	out := make(map[model.Var]core.LSN, len(s.pages))
	for id, p := range s.pages {
		if p.LSN != 0 {
			out[id] = p.LSN
		}
	}
	return out
}

// Clone returns an independent copy (used to snapshot the stable state
// for checkers without letting recovery mutate the original).
func (s *Store) Clone() *Store {
	c := NewStore()
	for id, p := range s.pages {
		c.pages[id] = p
	}
	return c
}

// Len returns the number of materialized pages.
func (s *Store) Len() int { return len(s.pages) }
