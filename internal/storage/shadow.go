package storage

import "redotheory/internal/model"

// ShadowTable models System R's staging area and page-table pointer
// (Section 6.1): updated pages are written to a staging area while the
// current stable state stays untouched; Swing atomically makes the
// staged pages current — "writing this checkpoint record 'swings a
// pointer' that atomically installs into stable state all operations
// logged since the previous checkpoint". A crash before the swing
// discards the staging area and leaves the previous stable state intact.
//
// Staging writes are individually durable but the staged pages are
// unreachable until the swing: shadow paging's directory indirection is
// what makes the multi-page installation a single atomic pointer update,
// which is why Swing never tears even though it covers many pages.
type ShadowTable struct {
	store   *Store
	staging map[model.Var]Page
	// Swings counts completed pointer swings.
	Swings int
}

// NewShadowTable returns a staging area over the store.
func NewShadowTable(store *Store) *ShadowTable {
	return &ShadowTable{store: store, staging: make(map[model.Var]Page)}
}

// StagePage writes a page into the staging area. The current state is
// not affected.
func (s *ShadowTable) StagePage(id model.Var, p Page) {
	s.staging[id] = p
}

// Staged returns the number of pages waiting for the swing.
func (s *ShadowTable) Staged() int { return len(s.staging) }

// Swing atomically replaces the current versions of every staged page
// and empties the staging area. Under an armed torn-group fault the
// swing can tear partway (the directory update caught mid-write); the
// staging area is then left intact so a subsequent crash Discard models
// the aborted installation, and the error reports the tear.
func (s *ShadowTable) Swing() error {
	if err := s.store.WriteGroup(s.staging); err != nil {
		return err
	}
	s.staging = make(map[model.Var]Page)
	s.Swings++
	return nil
}

// Discard drops the staging area, as a crash before the swing does.
func (s *ShadowTable) Discard() {
	s.staging = make(map[model.Var]Page)
}
