package storage

import (
	"testing"

	"redotheory/internal/model"
)

func TestReadWrite(t *testing.T) {
	s := NewStore()
	if _, ok := s.Read("p1"); ok {
		t.Error("missing page reported present")
	}
	if s.PageLSN("p1") != 0 {
		t.Error("missing page LSN not 0")
	}
	s.Write("p1", "hello", 7)
	p, ok := s.Read("p1")
	if !ok || p.Data != "hello" || p.LSN != 7 {
		t.Errorf("page = %+v", p)
	}
	if s.PageWrites != 1 {
		t.Errorf("PageWrites = %d", s.PageWrites)
	}
}

func TestFromStateAndState(t *testing.T) {
	st := model.StateOf(map[model.Var]model.Value{"a": "1", "b": "2"})
	s := FromState(st)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.State().Equal(st) {
		t.Error("State() round trip failed")
	}
	if s.PageLSN("a") != 0 {
		t.Error("initial pages must have LSN 0")
	}
}

func TestWriteGroupAtomic(t *testing.T) {
	s := NewStore()
	err := s.WriteGroup(map[model.Var]Page{
		"a": {Data: "1", LSN: 1},
		"b": {Data: "2", LSN: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupWrites != 1 || s.PageWrites != 2 {
		t.Errorf("counters = %d group, %d page", s.GroupWrites, s.PageWrites)
	}
	if p, _ := s.Read("b"); p.Data != "2" {
		t.Error("group write lost a page")
	}
}

func TestWriteGroupTearing(t *testing.T) {
	s := NewStore()
	s.TearNextGroup(1)
	err := s.WriteGroup(map[model.Var]Page{
		"a": {Data: "1", LSN: 1},
		"b": {Data: "2", LSN: 2},
	})
	if err == nil {
		t.Fatal("torn group reported success")
	}
	// Pages apply in sorted order, so exactly "a" landed.
	if _, ok := s.Read("a"); !ok {
		t.Error("prefix page missing")
	}
	if _, ok := s.Read("b"); ok {
		t.Error("page past the tear applied")
	}
	// Tearing is one-shot.
	if err := s.WriteGroup(map[model.Var]Page{"b": {Data: "2", LSN: 2}}); err != nil {
		t.Errorf("second group failed: %v", err)
	}
}

func TestLSNs(t *testing.T) {
	s := NewStore()
	s.Write("a", "1", 3)
	s.Write("b", "2", 0)
	lsns := s.LSNs()
	if len(lsns) != 1 || lsns["a"] != 3 {
		t.Errorf("LSNs = %v", lsns)
	}
}

func TestClone(t *testing.T) {
	s := NewStore()
	s.Write("a", "1", 1)
	c := s.Clone()
	c.Write("a", "2", 2)
	if p, _ := s.Read("a"); p.Data != "1" {
		t.Error("clone not independent")
	}
}
