package storage

import "testing"

func TestShadowStageDoesNotTouchStore(t *testing.T) {
	st := NewStore()
	st.Write("p", "old", 1)
	sh := NewShadowTable(st)
	sh.StagePage("p", Page{Data: "new", LSN: 5})
	if got, _ := st.Read("p"); got.Data != "old" {
		t.Error("staging modified the current state")
	}
	if sh.Staged() != 1 {
		t.Errorf("Staged = %d", sh.Staged())
	}
}

func TestShadowSwing(t *testing.T) {
	st := NewStore()
	st.Write("p", "old", 1)
	sh := NewShadowTable(st)
	sh.StagePage("p", Page{Data: "new", LSN: 5})
	sh.StagePage("q", Page{Data: "fresh", LSN: 6})
	sh.Swing()
	if got, _ := st.Read("p"); got.Data != "new" || got.LSN != 5 {
		t.Errorf("p = %+v", got)
	}
	if got, _ := st.Read("q"); got.Data != "fresh" {
		t.Errorf("q = %+v", got)
	}
	if sh.Staged() != 0 || sh.Swings != 1 {
		t.Errorf("staged=%d swings=%d", sh.Staged(), sh.Swings)
	}
	if st.GroupWrites != 1 {
		t.Errorf("GroupWrites = %d", st.GroupWrites)
	}
}

func TestShadowDiscard(t *testing.T) {
	st := NewStore()
	sh := NewShadowTable(st)
	sh.StagePage("p", Page{Data: "new", LSN: 5})
	sh.Discard()
	sh.Swing()
	if _, ok := st.Read("p"); ok {
		t.Error("discarded page reached the store")
	}
}
