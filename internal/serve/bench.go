package serve

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

// BenchConfig parameterizes the instant-restart availability benchmark.
// The zero value of any field selects its default.
type BenchConfig struct {
	// Ops, Pages, Rounds shape the crashed history: a HeavyHotPage
	// workload of Ops operations over Pages pages, each folding its
	// digest Rounds times so replay work dominates bookkeeping.
	Ops, Pages, Rounds int
	// Clients concurrent client goroutines each issue Requests
	// operations against the serving engine, picking pages from the
	// same Zipfian distribution the history used; every WriteEvery-th
	// request is a post-crash write through the admission gate.
	Clients, Requests, WriteEvery int
	// Trials repeats the whole crash/restart cycle; TTFR percentiles
	// pool the per-client first-read samples across trials.
	Trials int
	// SweepDelay holds the background sweeper back after each restart.
	SweepDelay time.Duration
	Seed       int64
}

func (c *BenchConfig) defaults() {
	if c.Ops == 0 {
		c.Ops = 3000
	}
	if c.Pages == 0 {
		c.Pages = 512
	}
	if c.Rounds == 0 {
		c.Rounds = 2000
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Requests == 0 {
		c.Requests = 200
	}
	if c.WriteEvery == 0 {
		c.WriteEvery = 10
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	// Hold the sweeper back long enough for the first client touches to
	// own the machine: on a single CPU an immediate sweep competes with
	// the very reads whose latency is the point of the measurement. The
	// sweeper then drains the cold tail; only OnlineFull pays for the
	// head start, and availability — not restore time — is the claim
	// under test.
	if c.SweepDelay == 0 {
		c.SweepDelay = 25 * time.Millisecond
	}
}

// BenchResult summarizes one benchmark run.
type BenchResult struct {
	// Fixture describes the crashed history.
	Fixture string
	// Samples is the number of pooled first-read measurements
	// (Clients × Trials).
	Samples int
	// TTFRP50/P99/Max are percentiles of time-to-first-read: the time
	// from the crash handoff (engine construction, i.e. the decision
	// phase) to a client's first successfully served read.
	TTFRP50, TTFRP99, TTFRMax time.Duration
	// OfflineFull is the median wall-clock of sequential offline
	// Recover over the same survivors — what a non-instant restart
	// would wait before serving anything. The availability gate
	// compares TTFRP99 against it.
	OfflineFull time.Duration
	// OnlineFull is the median time from engine start to the last
	// component's recovery while clients and the sweeper share the
	// machine — the restore-time cost of serving early.
	OnlineFull time.Duration
	// Ratio is TTFRP99 / OfflineFull: the fraction of an offline
	// recovery wait a p99 client actually experiences.
	Ratio float64
	// PerTrial holds each trial's engine counters. The engine is fresh
	// per trial, so its counters are per-trial facts: a single trial can
	// trigger at most Components recoveries split between lazy client
	// touches and the sweeper.
	PerTrial []TrialStats
	// Reads/Writes/Lazy/Swept are per-trial means of the engine
	// counters. (They were once sums over all trials, which reported a
	// 144-component plan as thousands of swept components.)
	Reads, Writes, Lazy, Swept float64
}

// TrialStats are one trial's engine counters: the interference
// components in the trial's recovery plan and the served traffic and
// recovery-trigger split observed while draining it.
type TrialStats struct {
	Components                 int
	Reads, Writes, Lazy, Swept int64
}

// RunBench measures instant-restart availability: it crashes a
// HeavyHotPage history with the whole log forced (maximal redo debt,
// nothing installed), then for each trial times (a) sequential offline
// Recover and (b) the serving engine under concurrent Zipfian client
// load, recording each client's first successful read. The headline
// ratio is p99 time-to-first-read over median offline recovery — the
// instant-restart claim is that this is a small fraction.
func RunBench(cfg BenchConfig) (*BenchResult, error) {
	cfg.defaults()
	pages := workload.Pages(cfg.Pages)
	ops := workload.HeavyHotPage(cfg.Ops, pages, cfg.Rounds, cfg.Seed)
	mk := func(s *model.State) method.DB { return method.NewPhysiological(s) }
	sched := sim.Sched{Seed: cfg.Seed, ForceOnCrash: true}

	res := &BenchResult{
		Fixture: fmt.Sprintf("heavyhot/ops=%d,pages=%d,rounds=%d", cfg.Ops, cfg.Pages, cfg.Rounds),
	}
	var ttfrs, onlines, offlines []time.Duration
	for trial := 0; trial < cfg.Trials; trial++ {
		// Offline baseline: crash, then sequential Recover end to end.
		db, err := sim.BuildCrashed(mk, workload.InitialState(pages), ops, len(ops), sched, nil)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := method.Recover(db); err != nil {
			return nil, fmt.Errorf("serve: offline recovery: %w", err)
		}
		offlines = append(offlines, time.Since(t0))

		// Online: same crash, serve immediately under client load.
		db, err = sim.BuildCrashed(mk, workload.InitialState(pages), ops, len(ops), sched, nil)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		eng, err := New(db, Options{Sweeper: true, SweepDelay: cfg.SweepDelay})
		if err != nil {
			return nil, err
		}
		firsts := make([]time.Duration, cfg.Clients)
		errs := make([]error, cfg.Clients)
		var wg sync.WaitGroup
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// The same Zipf parameters as workload.HotPage: clients
				// hammer the pages the crashed history was hot on.
				rng := rand.New(rand.NewSource(cfg.Seed + 101*int64(trial) + int64(c)))
				pick := workload.HotZipf(rng, pages)
				nextID := model.OpID(len(ops) + 1 + c*cfg.Requests)
				for r := 0; r < cfg.Requests; r++ {
					p := pick()
					if (r+1)%cfg.WriteEvery == 0 {
						op := model.ReadWrite(nextID, "client", []model.Var{p}, []model.Var{p})
						nextID++
						if err := eng.Exec(op); err != nil {
							errs[c] = err
							return
						}
					} else {
						if _, err := eng.Read(p); err != nil {
							errs[c] = err
							return
						}
						if firsts[c] == 0 {
							firsts[c] = time.Since(start)
						}
					}
					// A request boundary: a real client hands the connection
					// back between RPCs. Without the yield, one goroutine's
					// request loop can monopolize a single-CPU scheduler for
					// tens of milliseconds of lazy-redo work and the other
					// clients' first reads would measure scheduler occupancy,
					// not recovery availability.
					runtime.Gosched()
				}
			}(c)
		}
		wg.Wait()
		<-eng.Done() // the sweeper drains whatever the clients left cold
		eng.Close()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("serve: bench client: %w", err)
			}
		}
		st := eng.Stats()
		onlines = append(onlines, st.FullRecovery)
		res.PerTrial = append(res.PerTrial, TrialStats{
			Components: st.Components,
			Reads:      st.Reads, Writes: st.Writes,
			Lazy: st.Lazy, Swept: st.Swept,
		})
		ttfrs = append(ttfrs, firsts...)
	}

	for _, ts := range res.PerTrial {
		res.Reads += float64(ts.Reads)
		res.Writes += float64(ts.Writes)
		res.Lazy += float64(ts.Lazy)
		res.Swept += float64(ts.Swept)
	}
	if n := float64(len(res.PerTrial)); n > 0 {
		res.Reads /= n
		res.Writes /= n
		res.Lazy /= n
		res.Swept /= n
	}

	sort.Slice(ttfrs, func(i, j int) bool { return ttfrs[i] < ttfrs[j] })
	sort.Slice(onlines, func(i, j int) bool { return onlines[i] < onlines[j] })
	sort.Slice(offlines, func(i, j int) bool { return offlines[i] < offlines[j] })
	res.Samples = len(ttfrs)
	res.TTFRP50 = pct(ttfrs, 50)
	res.TTFRP99 = pct(ttfrs, 99)
	res.TTFRMax = ttfrs[len(ttfrs)-1]
	res.OfflineFull = pct(offlines, 50)
	res.OnlineFull = pct(onlines, 50)
	if res.OfflineFull > 0 {
		res.Ratio = float64(res.TTFRP99) / float64(res.OfflineFull)
	}
	return res, nil
}

// pct returns the p-th percentile of a sorted duration slice
// (nearest-rank definition).
func pct(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(d)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(d) {
		i = len(d) - 1
	}
	return d[i]
}
