package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

// crashed builds a freshly crashed DB for the named method over the
// given history. Identical arguments build identical crash states, so
// calling it twice yields an offline/online comparison pair.
func crashed(t *testing.T, nf sim.NamedFactory, pages []model.Var, ops []*model.Op, crash int, s sim.Sched) method.DB {
	t.Helper()
	db, err := sim.BuildCrashed(nf.New, workload.InitialState(pages), ops, crash, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMatchesSequentialAcrossMethods is the core equivalence claim:
// for every method, every legal workload shape, and several crash
// points, lazily recovering components in a random touch order reaches
// exactly the outcome of sequential offline Recover — and every read
// served along the way already returns the fully-recovered value.
func TestMatchesSequentialAcrossMethods(t *testing.T) {
	pages := workload.Pages(8)
	for _, nf := range sim.DefaultMethods() {
		shapes, err := workload.ShapesFor(nf.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			ops := sh.Gen(16, pages, 42)
			for _, crash := range []int{0, len(ops) / 2, len(ops)} {
				sched := sim.Sched{Seed: 7, FlushProb: 0.3, ForceProb: 0.5}
				seq, err := method.Recover(crashed(t, nf, pages, ops, crash, sched))
				if err != nil {
					t.Fatalf("%s/%s@%d: sequential: %v", nf.Name, sh.Name, crash, err)
				}
				eng, err := New(crashed(t, nf, pages, ops, crash, sched), Options{})
				if err != nil {
					t.Fatalf("%s/%s@%d: engine: %v", nf.Name, sh.Name, crash, err)
				}
				rng := rand.New(rand.NewSource(int64(crash) + 13))
				order := rng.Perm(len(pages))
				for _, pi := range order {
					p := pages[pi]
					v, err := eng.Read(p)
					if err != nil {
						t.Fatalf("%s/%s@%d: read %s: %v", nf.Name, sh.Name, crash, p, err)
					}
					// No post-crash writes: a served read must already equal
					// the final recovered value.
					if want := seq.State.Get(p); v != want {
						t.Fatalf("%s/%s@%d: read %s = %q before drain, sequential recovery has %q",
							nf.Name, sh.Name, crash, p, v, want)
					}
				}
				if err := eng.Drain(); err != nil {
					t.Fatalf("%s/%s@%d: drain: %v", nf.Name, sh.Name, crash, err)
				}
				res, err := eng.Result()
				if err != nil {
					t.Fatalf("%s/%s@%d: result: %v", nf.Name, sh.Name, crash, err)
				}
				if err := res.SameOutcome(seq); err != nil {
					t.Fatalf("%s/%s@%d: %v", nf.Name, sh.Name, crash, err)
				}
			}
		}
	}
}

// TestMixedTrafficMatchesReference interleaves reads and post-crash
// writes: every mid-stream read must equal a reference that applies
// the same writes, in commit order, on top of the offline recovery
// outcome — and so must the final drained state.
func TestMixedTrafficMatchesReference(t *testing.T) {
	pages := workload.Pages(8)
	for _, nf := range sim.DefaultMethods() {
		ops, err := workload.ForMethod(nf.Name, 16, pages, 99)
		if err != nil {
			t.Fatal(err)
		}
		sched := sim.Sched{Seed: 3, FlushProb: 0.4, ForceProb: 0.6}
		seq, err := method.Recover(crashed(t, nf, pages, ops, len(ops)-2, sched))
		if err != nil {
			t.Fatal(err)
		}
		ref := seq.State.Clone()
		eng, err := New(crashed(t, nf, pages, ops, len(ops)-2, sched), Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		nextID := model.OpID(len(ops) + 1)
		for i := 0; i < 24; i++ {
			p := pages[rng.Intn(len(pages))]
			if i%3 == 2 {
				op := model.ReadWrite(nextID, "post", []model.Var{p}, []model.Var{p})
				nextID++
				if err := eng.Exec(op); err != nil {
					t.Fatalf("%s: exec %s: %v", nf.Name, op, err)
				}
				if _, err := ref.Apply(op); err != nil {
					t.Fatal(err)
				}
			} else {
				v, err := eng.Read(p)
				if err != nil {
					t.Fatalf("%s: read %s: %v", nf.Name, p, err)
				}
				if want := ref.Get(p); v != want {
					t.Fatalf("%s: mid-stream read %s = %q, reference has %q", nf.Name, p, v, want)
				}
			}
		}
		if err := eng.Drain(); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Result()
		if err != nil {
			t.Fatal(err)
		}
		if !res.State.Equal(ref) {
			t.Fatalf("%s: drained state diverges from reference on %v", nf.Name, res.State.Diff(ref))
		}
		if got := len(eng.Commits()); got != 8 {
			t.Fatalf("%s: %d commits recorded, want 8", nf.Name, got)
		}
	}
}

// TestDuplicateExecRejected pins the WAL idempotence guard: committing
// the same operation id twice must fail the second time.
func TestDuplicateExecRejected(t *testing.T) {
	pages := workload.Pages(4)
	nf := sim.DefaultMethods()[2] // physiological
	ops := workload.SinglePage(8, pages, 1, false)
	eng, err := New(crashed(t, nf, pages, ops, len(ops), sim.Sched{Seed: 1, ForceOnCrash: true}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	op := model.ReadWrite(model.OpID(len(ops)+1), "post", []model.Var{pages[0]}, []model.Var{pages[0]})
	if err := eng.Exec(op); err != nil {
		t.Fatal(err)
	}
	if err := eng.Exec(op); err == nil {
		t.Fatal("re-executing a committed operation id did not error")
	}
}

// TestWALContinuationSurvivesSecondCrash: with the crashed DB's own WAL
// passed in, post-crash commits are ordinary log records — a second
// recovery over the same DB replays them and lands exactly on the
// engine's served state.
func TestWALContinuationSurvivesSecondCrash(t *testing.T) {
	pages := workload.Pages(6)
	nf := sim.DefaultMethods()[2] // physiological
	ops := workload.SinglePage(12, pages, 4, false)
	db := crashed(t, nf, pages, ops, len(ops), sim.Sched{Seed: 2, FlushProb: 0.3, ForceOnCrash: true})
	eng, err := New(db, Options{WAL: db.WAL()})
	if err != nil {
		t.Fatal(err)
	}
	var posts []*model.Op
	for i := 0; i < 4; i++ {
		p := pages[i%len(pages)]
		op := model.ReadWrite(model.OpID(len(ops)+1+i), "post", []model.Var{p}, []model.Var{p})
		if err := eng.Exec(op); err != nil {
			t.Fatal(err)
		}
		posts = append(posts, op)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Crash again: the engine's WAL appends were flushed, so a fresh
	// offline recovery sees them as ordinary records needing redo.
	again, err := method.Recover(db)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if !again.State.Equal(res.State) {
		t.Fatalf("second recovery diverges from served state on %v", again.State.Diff(res.State))
	}
	for _, op := range posts {
		if !again.RedoSet.Has(op.ID()) && !again.Installed.Has(op.ID()) {
			t.Fatalf("post-crash op %s neither redone nor installed by the second recovery", op)
		}
	}
}

// TestConcurrentTouchesRedoOnce is the -race exactly-once check: many
// goroutines hammering the same unrecovered pages must replay each
// component exactly once, and every read must see the recovered value.
func TestConcurrentTouchesRedoOnce(t *testing.T) {
	pages := workload.Pages(16)
	nf := sim.DefaultMethods()[2] // physiological
	ops := workload.SinglePage(64, pages, 8, false)
	sched := sim.Sched{Seed: 9, ForceOnCrash: true}
	seq, err := method.Recover(crashed(t, nf, pages, ops, len(ops), sched))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(crashed(t, nf, pages, ops, len(ops), sched), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				p := pages[rng.Intn(len(pages))]
				v, err := eng.Read(p)
				if err != nil {
					errs[g] = err
					return
				}
				if want := seq.State.Get(p); v != want {
					errs[g] = errReadMismatch(p, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	for ci := range eng.comps {
		if n := eng.comps[ci].redone.Load(); n != 1 {
			t.Fatalf("component %d replayed %d times, want exactly once", ci, n)
		}
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.SameOutcome(seq); err != nil {
		t.Fatal(err)
	}
}

type errReadMismatchT struct {
	p         model.Var
	got, want model.Value
}

func (e errReadMismatchT) Error() string {
	return "read " + string(e.p) + " = " + string(e.got) + ", recovered value is " + string(e.want)
}

func errReadMismatch(p model.Var, got, want model.Value) error {
	return errReadMismatchT{p, got, want}
}

// TestSweeperAndClientsNeverDeadlock runs the sweeper, concurrent
// mixed-traffic clients, and an inline Drain against each other; the
// engine must reach full recovery promptly and agree with sequential
// recovery plus the committed writes.
func TestSweeperAndClientsNeverDeadlock(t *testing.T) {
	pages := workload.Pages(12)
	nf := sim.DefaultMethods()[2] // physiological
	ops := workload.SinglePage(48, pages, 11, false)
	sched := sim.Sched{Seed: 4, ForceOnCrash: true}
	eng, err := New(crashed(t, nf, pages, ops, len(ops), sched), Options{Sweeper: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			nextID := model.OpID(len(ops) + 1 + g*100)
			for i := 0; i < 40; i++ {
				p := pages[rng.Intn(len(pages))]
				if i%5 == 4 {
					op := model.ReadWrite(nextID, "post", []model.Var{p}, []model.Var{p})
					nextID++
					_ = eng.Exec(op)
				} else {
					_, _ = eng.Read(p)
				}
			}
		}(g)
	}
	drained := make(chan error, 1)
	go func() { drained <- eng.Drain() }()
	wg.Wait()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain deadlocked against sweeper and clients")
	}
	select {
	case <-eng.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("Done never closed")
	}
	eng.Close()
	if !eng.FullyRecovered() {
		t.Fatal("engine not fully recovered after Done")
	}
	st := eng.Stats()
	if st.Recovered != st.Components {
		t.Fatalf("stats report %d/%d components recovered", st.Recovered, st.Components)
	}
}

// TestResultBeforeFullRecoveryErrors pins that Result refuses to
// materialize a partial recovery.
func TestResultBeforeFullRecoveryErrors(t *testing.T) {
	pages := workload.Pages(6)
	nf := sim.DefaultMethods()[2]
	ops := workload.SinglePage(12, pages, 6, false)
	eng, err := New(crashed(t, nf, pages, ops, len(ops), sim.Sched{Seed: 1, ForceOnCrash: true}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.FullyRecovered() {
		t.Skip("fixture produced no redo debt")
	}
	if _, err := eng.Result(); err == nil {
		t.Fatal("Result succeeded before full recovery")
	}
}

// TestBenchSmoke runs a miniature availability benchmark end to end
// and checks its invariants (samples present, nonzero timings, clients
// actually served during recovery).
func TestBenchSmoke(t *testing.T) {
	res, err := RunBench(BenchConfig{
		Ops: 400, Pages: 64, Rounds: 64,
		Clients: 2, Requests: 40, WriteEvery: 8, Trials: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 4 {
		t.Fatalf("samples = %d, want clients×trials = 4", res.Samples)
	}
	if res.TTFRP50 <= 0 || res.TTFRP99 < res.TTFRP50 || res.TTFRMax < res.TTFRP99 {
		t.Fatalf("percentiles out of order: %+v", res)
	}
	if res.OfflineFull <= 0 || res.OnlineFull <= 0 {
		t.Fatalf("missing recovery timings: %+v", res)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("clients served nothing: %+v", res)
	}
}
