// Package serve is the instant-restart engine: it accepts reads and
// writes immediately after a crash and performs redo lazily, per page,
// on first touch — the single-pass REDO-only instant-recovery design of
// Sauer & Härder, built on the paper's state-blind decision phase.
//
// On startup the engine runs only the cheap decision phase
// (core.DecideRedo): the same scan, analysis calls, and redo-test
// invocations as offline recovery, but applying nothing. The admitted
// record set is then partitioned into interference components
// (internal/partition), and two indexes make any page independently
// recoverable:
//
//   - the writer index maps each page to the unique component that
//     redoes it (components write disjoint pages), so a touch knows
//     exactly which pending work gates it;
//   - the reader index maps each stable page to the components whose
//     recomputations read it, so a post-crash overwrite is held until
//     every such component has replayed — the careful-write-order
//     constraint of Section 6.4, transplanted to serve time.
//
// The admission gate blocks only touches to not-yet-recovered pages: a
// read of page p lazily replays p's component (in LSN order, against
// the dense arena, exactly as one worker of the parallel engine would)
// and proceeds; a write additionally drains p's reader components, then
// appends to the WAL and installs. Touch-order independence is the
// linearization argument of DESIGN.md §8 one more time: components are
// conflict-closed, so any order of component replays — demand order,
// sweep order, or LSN order — reaches the same state as sequential
// Recover (DESIGN.md §14 gives the soundness argument). An optional
// background sweeper drains cold components so full recovery still
// completes while the hot set is being served.
//
// Availability is the point: time-to-first-successful-read is the
// latency of recovering one component, not the whole log, and the
// bench harness (RunBench) measures exactly that gap.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"redotheory/internal/core"
	"redotheory/internal/dense"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/partition"
	"redotheory/internal/wal"
)

// Options configures an Engine.
type Options struct {
	// Recorder receives serve counters, gate-wait and time-to-first-read
	// histograms, lazy-redo spans, and the recovery-progress gauges. Nil
	// disables telemetry.
	Recorder *obs.Recorder
	// WAL is the log manager post-crash writes append to. Pass the
	// crashed DB's own manager (db.WAL()) to continue the existing log —
	// a later crash then recovers the new writes like any others — or
	// nil for a fresh private manager (a new log epoch), which leaves
	// the crashed DB untouched; the fuzzer's oracle leg relies on that.
	WAL *wal.Manager
	// Sweeper starts the background sweeper, which drains components in
	// plan order so full recovery completes even if clients never touch
	// the cold tail.
	Sweeper bool
	// SweepDelay holds the sweeper back after startup, leaving the first
	// burst of client touches the whole machine — availability over
	// restore time.
	SweepDelay time.Duration
}

// compState tracks one component's lazy-recovery lifecycle.
type compState struct {
	// mu serializes the component's replay: the winner replays while
	// every concurrent touch of the same component blocks here — that
	// blocking is the admission gate.
	mu sync.Mutex
	// done flips true exactly once, after replay (or its failure) is
	// installed. The atomic read is the gate's lock-free fast path.
	done atomic.Bool
	// err is the sticky replay failure, set before done flips.
	err error
	// redone counts actual replays — the exactly-once audit the race
	// tests assert on.
	redone atomic.Int64
}

// Engine serves reads and writes during recovery.
type Engine struct {
	rec      *obs.Recorder
	lv       *core.LogView
	decision *core.RedoDecision
	plan     *partition.DensePlan
	ds       *dense.State
	// writer[id] is the component redoing variable id (-1: none);
	// readers[id] lists the components whose replay reads variable id.
	writer  []int32
	readers [][]int32

	// mu guards the map-backed serving state, WAL appends, and the
	// commit order. The dense arena is covered for client writes and
	// presence-bit marking; component replays write their disjoint
	// arena slots outside it, exactly like the parallel engine.
	mu      sync.RWMutex
	state   *model.State
	wal     *wal.Manager
	commits []model.OpID

	comps []compState

	recovered      atomic.Int64
	pagesRecovered atomic.Int64
	reads, writes  atomic.Int64
	lazy, swept    atomic.Int64

	start     time.Time
	firstRead atomic.Int64 // ns from start to the first served read
	fullyAt   atomic.Int64 // ns from start to the last component's recovery

	done     chan struct{} // closed when every component has recovered
	doneOnce sync.Once

	stop        chan struct{}
	stopOnce    sync.Once
	sweeperDone chan struct{}
}

// New builds an engine over a crashed DB's survivors and starts serving
// immediately. Only the decision phase runs here — no record is
// replayed until a touch (or the sweeper) demands it. The DB itself is
// not modified: the engine works on the fresh StableState/StableLog
// projections, like every other recovery entry point.
func New(db method.DB, opts Options) (*Engine, error) {
	rec := opts.Recorder
	state := db.StableState()
	log := db.StableLog()
	decision := core.DecideRedoObserved(rec, state, log, db.Checkpointed(), db.RedoTest(), db.Analyze())
	lv := core.DefaultViews.ViewOfObserved(log, rec)
	ps := rec.StartSpan(obs.PhasePartition)
	plan := partition.FromViews(lv.Views, decision.ReplayIdx, lv.In.Len())
	ps.End()

	wm := opts.WAL
	if wm == nil {
		wm = wal.NewManager()
		wm.SetRecorder(rec)
	}
	e := &Engine{
		rec:         rec,
		lv:          lv,
		decision:    decision,
		plan:        plan,
		ds:          dense.FromState(lv.In, state),
		writer:      plan.WriterIndex(lv.In.Len()),
		readers:     plan.ReaderIndex(lv.Views, lv.In.Len()),
		state:       state,
		wal:         wm,
		comps:       make([]compState, len(plan.Components)),
		start:       time.Now(),
		done:        make(chan struct{}),
		stop:        make(chan struct{}),
		sweeperDone: make(chan struct{}),
	}
	rec.SetGauge(obs.GServeComps, 0)
	rec.SetGauge(obs.GServePages, 0)
	if len(plan.Components) == 0 {
		e.doneOnce.Do(func() { close(e.done) })
	}
	if opts.Sweeper {
		go e.sweep(opts.SweepDelay)
	} else {
		close(e.sweeperDone)
	}
	return e, nil
}

// Read returns the current served value of page x, lazily recovering
// the component that redoes x first. The returned value is exactly what
// a read after full offline recovery (plus any already-committed
// post-crash writes) would observe — serving early never serves stale.
func (e *Engine) Read(x model.Var) (model.Value, error) {
	if err := e.gateRead(x); err != nil {
		return "", err
	}
	e.mu.RLock()
	v, ok := e.ds.Get(x)
	if !ok {
		v = e.state.Get(x)
	}
	e.mu.RUnlock()
	e.reads.Add(1)
	e.rec.Inc(obs.MServeReads)
	if e.firstRead.Load() == 0 {
		d := time.Since(e.start)
		if d <= 0 {
			d = 1
		}
		if e.firstRead.CompareAndSwap(0, int64(d)) {
			e.rec.ObserveDuration(obs.MServeTTFR, d)
		}
	}
	return v, nil
}

// Exec commits a new post-crash operation through the admission gate:
// it lazily recovers every component that redoes a variable the
// operation touches — plus, for written variables, every component
// whose replay reads them (careful write order: a recomputation must
// never observe a post-crash value) — then computes the operation
// against the served state, appends it to the WAL, forces the log, and
// installs the writes. Operations must carry fresh ids; commit order is
// the serialization order the equivalence oracle replays against.
func (e *Engine) Exec(op *model.Op) error {
	for _, x := range op.Reads() {
		if err := e.gateRead(x); err != nil {
			return err
		}
	}
	for _, x := range op.Writes() {
		if err := e.gateWrite(x); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal.Log().RecordOf(op.ID()) != nil {
		return fmt.Errorf("serve: operation id %d is already logged", op.ID())
	}
	ws, err := op.Compute(e.state.ReadSetFor(op))
	if err != nil {
		return fmt.Errorf("serve: executing %s: %w", op, err)
	}
	e.wal.Append(op, recordSize(op, ws))
	// The WAL rule at serve time: the record is stable before any client
	// can observe the write.
	e.wal.Flush()
	for x, v := range ws {
		e.state.Set(x, v)
		if id, ok := e.lv.In.Lookup(x); ok {
			e.ds.Set(id, v)
		}
	}
	e.commits = append(e.commits, op.ID())
	e.writes.Add(1)
	e.rec.Inc(obs.MServeWrites)
	return nil
}

// gateRead admits a read of x: the unique component redoing x (if any)
// must have replayed.
func (e *Engine) gateRead(x model.Var) error {
	id, ok := e.lv.In.Lookup(x)
	if !ok {
		return nil // never logged: stable by construction
	}
	if ci := e.writer[id]; ci >= 0 {
		return e.ensure(int(ci), false)
	}
	return nil
}

// gateWrite admits a write of x: x's own redo component plus every
// component whose replay reads x must have replayed first.
func (e *Engine) gateWrite(x model.Var) error {
	id, ok := e.lv.In.Lookup(x)
	if !ok {
		return nil
	}
	if ci := e.writer[id]; ci >= 0 {
		if err := e.ensure(int(ci), false); err != nil {
			return err
		}
	}
	for _, ci := range e.readers[id] {
		if err := e.ensure(int(ci), false); err != nil {
			return err
		}
	}
	return nil
}

// ensure recovers component ci exactly once and returns its sticky
// outcome. Concurrent callers for the same component block on the
// component mutex while the winner replays — that blocking, measured
// from the fast-path miss to completion, is the gate wait the
// MServeGateWait histogram reports. Callers never hold one component's
// mutex while acquiring another's, so touches and the sweeper cannot
// deadlock however they interleave.
func (e *Engine) ensure(ci int, sweep bool) error {
	cs := &e.comps[ci]
	if cs.done.Load() {
		return cs.err
	}
	t0 := time.Now()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.done.Load() {
		// Lost the race: a concurrent touch (or the sweeper) replayed the
		// component while this caller waited.
		e.rec.ObserveDuration(obs.MServeGateWait, time.Since(t0))
		return cs.err
	}
	c := e.plan.Components[ci]
	var span *obs.Span
	if e.rec.Sinking() {
		span = e.rec.StartSpanWith(obs.PhaseLazyRedo, 0, obs.SpanInfo{
			Comp:   fmt.Sprintf("c%d", ci),
			Size:   len(c.Idx),
			Writes: len(c.Writes),
		})
	}
	cs.err = e.replayComponent(c)
	span.End()
	cs.redone.Add(1)
	cs.done.Store(true)
	e.rec.ObserveDuration(obs.MServeGateWait, time.Since(t0))
	if sweep {
		e.swept.Add(1)
		e.rec.Inc(obs.MServeSwept)
	} else {
		e.lazy.Add(1)
		e.rec.Inc(obs.MServeLazy)
	}
	e.pagesRecovered.Add(int64(len(c.Writes)))
	n := e.recovered.Add(1)
	e.rec.SetGauge(obs.GServeComps, n)
	e.rec.SetGauge(obs.GServePages, e.pagesRecovered.Load())
	if n == int64(len(e.plan.Components)) {
		d := time.Since(e.start)
		if d <= 0 {
			d = 1
		}
		e.fullyAt.Store(int64(d))
		e.doneOnce.Do(func() { close(e.done) })
	}
	return cs.err
}

// replayComponent recomputes the component's records in LSN order
// against the dense arena, storing writes straight into the
// component's disjoint slots — one worker of the parallel engine, run
// on demand. The closure invariant makes the reads safe: the component
// reads only variables it writes itself or variables no component
// writes, and the admission gate holds post-crash writes to the latter
// until every reading component is done.
func (e *Engine) replayComponent(c *partition.DenseComponent) error {
	scratch := dense.GetScratch()
	defer dense.PutScratch(scratch)
	reads := scratch.Reads
	for _, vi := range c.Idx {
		v := &e.lv.Views[vi]
		op := v.Rec.Op
		clear(reads)
		rvars := op.Reads()
		for k, id := range v.Reads {
			reads[rvars[k]] = e.ds.Value(id)
		}
		ws, err := op.ComputeFrom(reads)
		if err != nil {
			return fmt.Errorf("serve: replaying %s: %w", op, err)
		}
		wvars := op.Writes()
		for k, id := range v.Writes {
			e.ds.StoreRaw(id, ws[wvars[k]])
		}
	}
	// Install: presence bits share words across components, so marking
	// needs the state lock, and WriteBack rejoins the map-backed state
	// the serving surface reads fallback values from.
	e.mu.Lock()
	for _, id := range c.Writes {
		e.ds.Mark(id)
	}
	e.ds.WriteBack(e.state, c.Writes)
	e.mu.Unlock()
	return nil
}

// Drain recovers every remaining component inline (plan order) and
// returns the first replay error, if any. Serving continues during and
// after the drain; Drain alongside a running sweeper is safe and just
// splits the remaining work.
func (e *Engine) Drain() error {
	var first error
	for ci := range e.comps {
		if err := e.ensure(ci, true); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sweep is the background sweeper: after the optional delay it drains
// components in plan order, stopping early when Close is called.
func (e *Engine) sweep(delay time.Duration) {
	defer close(e.sweeperDone)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-e.stop:
			return
		}
	}
	for ci := range e.comps {
		select {
		case <-e.stop:
			return
		default:
		}
		// Replay errors are sticky on the component; the touch that needs
		// it will surface them.
		_ = e.ensure(ci, true)
	}
}

// Done returns a channel closed once every component has recovered —
// full recovery, reached lazily, by sweep, or both.
func (e *Engine) Done() <-chan struct{} { return e.done }

// FullyRecovered reports whether every component has replayed.
func (e *Engine) FullyRecovered() bool {
	return e.recovered.Load() == int64(len(e.plan.Components))
}

// Close stops the background sweeper (if any) and waits for it to exit.
// The engine itself keeps serving; Close only quiesces background work.
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.sweeperDone
}

// Result materializes the recovery outcome once every component has
// recovered (it errors before that, and surfaces any sticky replay
// failure). With no post-crash Execs the result is SameOutcome-
// equivalent to sequential Recover over the same survivors — the
// fuzzer's leg 8 asserts it across methods, crash points, and touch
// orders; with Execs the state additionally carries the committed
// writes in commit order (see Commits).
func (e *Engine) Result() (*core.Result, error) {
	if !e.FullyRecovered() {
		return nil, fmt.Errorf("serve: %d of %d components still unrecovered", int64(len(e.plan.Components))-e.recovered.Load(), len(e.plan.Components))
	}
	for ci := range e.comps {
		if err := e.comps[ci].err; err != nil {
			return nil, err
		}
	}
	return e.decision.Result(e.state), nil
}

// Commits returns the committed post-crash operations in commit order —
// the serialization the equivalence oracle replays on top of the
// offline recovery outcome.
func (e *Engine) Commits() []model.OpID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]model.OpID, len(e.commits))
	copy(out, e.commits)
	return out
}

// Stats is a point-in-time summary of the serving engine.
type Stats struct {
	// Components and Recovered count interference components (the units
	// of lazy redo); PagesRecovered counts recovered written pages.
	Components, Recovered, PagesRecovered int
	// Reads and Writes count served client operations; Lazy and Swept
	// split recovered components by trigger.
	Reads, Writes, Lazy, Swept int64
	// FirstRead is the time from engine start to the first served read
	// (0 until one happens); FullRecovery is the time from engine start
	// to the last component's recovery (0 until fully recovered).
	FirstRead, FullRecovery time.Duration
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Components:     len(e.plan.Components),
		Recovered:      int(e.recovered.Load()),
		PagesRecovered: int(e.pagesRecovered.Load()),
		Reads:          e.reads.Load(),
		Writes:         e.writes.Load(),
		Lazy:           e.lazy.Load(),
		Swept:          e.swept.Load(),
		FirstRead:      time.Duration(e.firstRead.Load()),
		FullRecovery:   time.Duration(e.fullyAt.Load()),
	}
}

// recordSize models a post-crash log record's wire size exactly as the
// methods' normal-operation logging does: header, name, page ids, and —
// for blind writes, which cannot be recomputed — the written values.
func recordSize(op *model.Op, ws model.WriteSet) int {
	const header = 16
	size := header + len(op.Name())
	for _, x := range op.Writes() {
		size += len(x)
		if len(op.Reads()) == 0 {
			size += len(ws[x])
		}
	}
	return size
}
