package serve

import (
	"testing"
	"time"
)

// TestRunBenchPerTrialCounters is the regression test for the
// accumulated-stats bug: RunBench once summed each trial's fresh-engine
// counters into a single set reported as if per-run, so a
// 144-component plan showed up as swept_components: 1831 over 5
// trials. Counters must be per-trial facts — a trial can recover at
// most Components components, split between lazy touches and the
// sweeper — and the headline numbers their means.
func TestRunBenchPerTrialCounters(t *testing.T) {
	const trials = 3
	res, err := RunBench(BenchConfig{
		Ops: 120, Pages: 16, Rounds: 4,
		Clients: 2, Requests: 12, WriteEvery: 5,
		Trials: trials, Seed: 7, SweepDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTrial) != trials {
		t.Fatalf("PerTrial has %d entries, want %d", len(res.PerTrial), trials)
	}
	var reads, lazy, swept float64
	for i, ts := range res.PerTrial {
		if ts.Components <= 0 {
			t.Fatalf("trial %d: no components in the recovery plan", i)
		}
		if ts.Swept+ts.Lazy > int64(ts.Components) {
			t.Errorf("trial %d: swept %d + lazy %d exceeds the %d-component plan — counters leaked across trials",
				i, ts.Swept, ts.Lazy, ts.Components)
		}
		if ts.Reads <= 0 {
			t.Errorf("trial %d: no reads recorded", i)
		}
		reads += float64(ts.Reads)
		lazy += float64(ts.Lazy)
		swept += float64(ts.Swept)
	}
	if want := reads / trials; res.Reads != want {
		t.Errorf("Reads = %v, want per-trial mean %v", res.Reads, want)
	}
	if want := lazy / trials; res.Lazy != want {
		t.Errorf("Lazy = %v, want per-trial mean %v", res.Lazy, want)
	}
	if want := swept / trials; res.Swept != want {
		t.Errorf("Swept = %v, want per-trial mean %v", res.Swept, want)
	}
}
