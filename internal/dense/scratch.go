package dense

import (
	"sync"

	"redotheory/internal/model"
)

// Scratch is a pooled replay scratchpad. The hot loop rebuilds an
// operation's read set before every Compute; reusing one map per
// worker instead of allocating one per record removes the dominant
// per-record allocation. The map's buckets survive clear(), so after
// warm-up the loop steady-states at zero read-side allocations.
type Scratch struct {
	// Reads is the reusable read-set map. Users must clear it before
	// assembling each record's reads (replay loops do) so an apply
	// function never observes a stale key from a previous record.
	Reads model.ReadSet
}

var scratchPool = sync.Pool{
	New: func() any { return &Scratch{Reads: make(model.ReadSet, 8)} },
}

// GetScratch takes a scratchpad from the pool. Callers must return it
// with PutScratch (typically via defer) when the replay loop ends.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch clears and returns a scratchpad to the pool.
func PutScratch(s *Scratch) {
	clear(s.Reads)
	scratchPool.Put(s)
}
