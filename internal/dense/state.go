package dense

import "redotheory/internal/model"

// State is the columnar form of a model.State restricted to an
// interner's variables: a flat value arena indexed by variable id plus
// a presence bitmap mirroring the map representation's membership rule
// (a variable is present iff its value is non-zero). Variables outside
// the interner are untouched by construction — replay only reads and
// writes interned variables — so converting back never loses them.
type State struct {
	in     *Interner
	values []model.Value
	dirty  []uint64
}

// NewState returns the empty dense state over the interner's id space.
func NewState(in *Interner) *State {
	n := in.Len()
	return &State{in: in, values: make([]model.Value, n), dirty: make([]uint64, (n+63)/64)}
}

// FromState projects s onto the interner's variables. Variables s does
// not assign get the zero Value, exactly as model.State.Get would
// report them.
func FromState(in *Interner, s *model.State) *State {
	d := NewState(in)
	for id, v := range in.vars {
		if val := s.Get(v); val != "" {
			d.Set(uint32(id), val)
		}
	}
	return d
}

// Interner returns the interner the state's ids are relative to.
func (d *State) Interner() *Interner { return d.in }

// Value returns the value of the variable with the given id.
func (d *State) Value(id uint32) model.Value { return d.values[id] }

// Present reports whether the variable is assigned (non-zero value),
// per the presence bitmap.
func (d *State) Present(id uint32) bool {
	return d.dirty[id>>6]&(1<<(id&63)) != 0
}

// Set assigns v to the variable with the given id, maintaining the
// presence bitmap: assigning the zero Value clears the bit, mirroring
// model.State.Set's erase-on-zero rule.
func (d *State) Set(id uint32, v model.Value) {
	d.values[id] = v
	if v == "" {
		d.dirty[id>>6] &^= 1 << (id & 63)
	} else {
		d.dirty[id>>6] |= 1 << (id & 63)
	}
}

// Get returns the value of the named variable and whether the variable
// is interned. Callers serving reads straight off the arena (the
// instant-restart engine's hot path) use the second return to fall back
// to a map-backed state for variables outside the interner's id space.
// Get reads only the value slot, never the presence bitmap, so it is
// safe concurrent with Mark on other ids.
func (d *State) Get(v model.Var) (model.Value, bool) {
	id, ok := d.in.Lookup(v)
	if !ok {
		return "", false
	}
	return d.values[id], true
}

// StoreRaw writes the value slot only, leaving the presence bitmap
// untouched. Distinct value slots are distinct memory locations, so
// concurrent writers storing to disjoint ids are race-free — bitmap
// words are shared across 64 ids and would not be. Callers must Mark
// the written ids once the concurrent phase is over; the parallel
// replay engine's merge phase does.
func (d *State) StoreRaw(id uint32, v model.Value) { d.values[id] = v }

// Mark recomputes the presence bit of id from its current value,
// restoring the bitmap invariant after a StoreRaw phase.
func (d *State) Mark(id uint32) { d.Set(id, d.values[id]) }

// WriteBack installs the values of the given ids into dst, the
// map-backed state the dense replay ran on behalf of. model.State.Set
// erases zero values, so membership converges regardless of what dst
// held before.
func (d *State) WriteBack(dst *model.State, ids []uint32) {
	for _, id := range ids {
		dst.Set(d.in.Var(id), d.values[id])
	}
}

// ToState converts the dense state to a fresh map-backed state.
func (d *State) ToState() *model.State {
	s := model.NewState()
	for id, v := range d.values {
		if v != "" {
			s.Set(d.in.Var(uint32(id)), v)
		}
	}
	return s
}

// Equal reports whether the two dense states assign the same value to
// every variable. States over the same interner compare arenas
// directly; otherwise it falls back to the map comparison.
func (d *State) Equal(o *State) bool {
	if d.in == o.in {
		for id := range d.values {
			if d.values[id] != o.values[id] {
				return false
			}
		}
		return true
	}
	return d.ToState().Equal(o.ToState())
}
