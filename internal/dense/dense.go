// Package dense is the interned, columnar representation the recovery
// hot path replays against. The map/string model of internal/model is
// the right interface for the theory — states are total functions over
// named variables, operations carry read/write sets as sorted Var
// slices — but it makes every replayed record pay for map allocation
// and string hashing. This package confines those costs to the edges:
//
//   - an Interner assigns each model.Var a small dense uint32 id during
//     the log scan (strings stop at the interning boundary);
//   - a State stores values in a flat arena indexed by id, with a
//     presence bitmap standing in for map membership;
//   - a pooled Scratch gives replay loops a reusable read-set map, so
//     the per-record allocation count no longer scales with the read
//     set.
//
// The representation is an implementation detail of the replay engines
// in internal/core and internal/method: their public surfaces still
// speak *model.State, and the differential tests in internal/method
// assert that dense replay is state-for-state equal to the map-based
// Figure 6 procedure.
package dense

import (
	"fmt"

	"redotheory/internal/model"
)

// Interner assigns dense uint32 ids to variables. Ids are allocated in
// first-seen order starting at 0, so an interner built from a log scan
// gives the log's working set a compact, cache-friendly index space.
//
// An Interner is not safe for concurrent interning, but once fully
// built it is immutable and may be shared by any number of concurrent
// readers (Var, Lookup, Len) — the replay engines build one per log
// view and share it across workers.
type Interner struct {
	ids  map[model.Var]uint32
	vars []model.Var
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[model.Var]uint32)}
}

// Intern returns the id for v, assigning the next free id on first
// sight.
func (in *Interner) Intern(v model.Var) uint32 {
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := uint32(len(in.vars))
	in.ids[v] = id
	in.vars = append(in.vars, v)
	return id
}

// Lookup returns the id for v and whether v has been interned.
func (in *Interner) Lookup(v model.Var) (uint32, bool) {
	id, ok := in.ids[v]
	return id, ok
}

// Var returns the variable with the given id. It panics on an id the
// interner never assigned: a dense id is only meaningful relative to
// the interner that minted it, and mixing interners is a programming
// error no fallback should paper over.
func (in *Interner) Var(id uint32) model.Var {
	if int(id) >= len(in.vars) {
		panic(fmt.Sprintf("dense: unknown variable id %d (interner holds %d ids)", id, len(in.vars)))
	}
	return in.vars[id]
}

// Len returns the number of interned variables; valid ids are
// exactly [0, Len).
func (in *Interner) Len() int { return len(in.vars) }
