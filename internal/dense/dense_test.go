package dense

import (
	"fmt"
	"math/rand"
	"testing"

	"redotheory/internal/model"
)

// TestInternerRoundTrip: interning is a bijection between the seen
// variables and [0, Len): Intern is idempotent, Var inverts it, and
// ids are dense in first-seen order.
func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	vars := []model.Var{"x", "y", "pg00", "pg01", "x:long-name-variable", "z"}
	ids := make([]uint32, len(vars))
	for i, v := range vars {
		ids[i] = in.Intern(v)
		if want := uint32(i); ids[i] != want {
			t.Fatalf("Intern(%q) = %d, want dense first-seen id %d", v, ids[i], want)
		}
	}
	if in.Len() != len(vars) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(vars))
	}
	for i, v := range vars {
		if again := in.Intern(v); again != ids[i] {
			t.Errorf("re-Intern(%q) = %d, want stable id %d", v, again, ids[i])
		}
		if got := in.Var(ids[i]); got != v {
			t.Errorf("Var(%d) = %q, want round-trip %q", ids[i], got, v)
		}
		if id, ok := in.Lookup(v); !ok || id != ids[i] {
			t.Errorf("Lookup(%q) = (%d, %v), want (%d, true)", v, id, ok, ids[i])
		}
	}
	if _, ok := in.Lookup("never-seen"); ok {
		t.Error("Lookup of an uninterned variable reported ok")
	}
}

// TestInternerUnknownIDPanics: a dense id is only meaningful relative
// to the interner that minted it; dereferencing a foreign id must fail
// loudly, not return a wrong variable.
func TestInternerUnknownIDPanics(t *testing.T) {
	in := NewInterner()
	in.Intern("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Var(99) on a 1-variable interner did not panic")
		}
	}()
	in.Var(99)
}

// TestStateRoundTripIdentity is the dense→Var→dense identity property:
// for random states, FromState followed by ToState reproduces the
// original state, and a second FromState of the round-tripped state is
// Equal to the first dense state.
func TestStateRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		in := NewInterner()
		s := model.NewState()
		n := 1 + rng.Intn(80)
		for i := 0; i < n; i++ {
			v := model.Var(fmt.Sprintf("v%02d", rng.Intn(70)))
			in.Intern(v)
			if rng.Intn(3) > 0 { // leave some interned vars unassigned
				s.SetInt(v, rng.Int63n(1000))
			}
		}
		d := FromState(in, s)
		back := d.ToState()
		// ToState only sees interned variables; every assigned variable
		// here was interned, so the round trip must be exact.
		if !back.Equal(s) {
			t.Fatalf("trial %d: round-tripped state %v != original %v", trial, back, s)
		}
		d2 := FromState(in, back)
		if !d.Equal(d2) {
			t.Fatalf("trial %d: dense→Var→dense identity broken", trial)
		}
	}
}

// TestStatePresenceBitmap: Set maintains the presence bitmap under the
// same erase-on-zero rule as model.State, and StoreRaw+Mark restores
// it after a raw-write phase.
func TestStatePresenceBitmap(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 70; i++ { // spans two bitmap words
		in.Intern(model.Var(fmt.Sprintf("v%02d", i)))
	}
	d := NewState(in)
	if d.Present(3) || d.Present(69) {
		t.Fatal("empty state reports variables present")
	}
	d.Set(69, model.IntVal(5))
	if !d.Present(69) || d.Value(69) != model.IntVal(5) {
		t.Fatal("Set did not record value/presence")
	}
	d.Set(69, "")
	if d.Present(69) {
		t.Fatal("assigning the zero Value did not clear presence")
	}

	d.StoreRaw(7, model.IntVal(1))
	if d.Present(7) {
		t.Fatal("StoreRaw touched the presence bitmap")
	}
	d.Mark(7)
	if !d.Present(7) {
		t.Fatal("Mark did not restore the presence bit")
	}
	d.StoreRaw(7, "")
	d.Mark(7)
	if d.Present(7) {
		t.Fatal("Mark of a zero value did not clear the presence bit")
	}
}

// TestStateWriteBack: WriteBack installs exactly the named ids,
// including zero-value erasure, into a map-backed destination.
func TestStateWriteBack(t *testing.T) {
	in := NewInterner()
	x, y, z := in.Intern("x"), in.Intern("y"), in.Intern("z")
	d := NewState(in)
	d.Set(x, model.IntVal(1))
	d.Set(y, "")
	d.Set(z, model.IntVal(3))

	dst := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(9), "w": model.IntVal(4)})
	d.WriteBack(dst, []uint32{x, y})
	want := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(1), "w": model.IntVal(4)})
	if !dst.Equal(want) {
		t.Fatalf("after WriteBack: %v, want %v (z untouched, y erased, w preserved)", dst, want)
	}
}

// TestScratchReuse: the pool hands back cleared scratchpads.
func TestScratchReuse(t *testing.T) {
	s := GetScratch()
	s.Reads["x"] = model.IntVal(1)
	PutScratch(s)
	s2 := GetScratch()
	defer PutScratch(s2)
	if len(s2.Reads) != 0 {
		t.Fatalf("pooled scratch came back with %d stale reads", len(s2.Reads))
	}
}
