// Package wal is the log manager: it owns the volatile/stable split of
// the log, the force (flush) operation, checkpoint records, and the
// write-ahead-log rule. The paper's Section 7 notes that "the write-ahead
// log protocol requires an operation's log record be forced to disk
// before the operation's effects are written to disk"; RequireStable is
// that gate, and the cache manager calls it before every page install.
package wal

import (
	"fmt"
	"strconv"

	"redotheory/internal/core"
	"redotheory/internal/fault"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// CorruptRecordError reports a stable log record whose contents no
// longer match the checksum sealed at append time (log bit-rot, or the
// unreadable half of a mid-record tear).
type CorruptRecordError struct {
	LSN core.LSN
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("wal: log record %d is corrupt (checksum mismatch)", e.LSN)
}

// Checkpoint is a checkpoint record: its own position in the log plus a
// method-specific payload (a redo scan start, a staging-area pointer, a
// dirty page table…).
type Checkpoint struct {
	// AtLSN is the LSN the record was appended at (one past the last
	// operation record it covers).
	AtLSN core.LSN
	// Payload carries method-specific analysis input.
	Payload interface{}
}

// Manager is the log manager.
type Manager struct {
	log       *core.Log
	stableLSN core.LSN // records with LSN ≤ stableLSN survive a crash
	// checkpoints in append order; each is stable iff AtLSN ≤ stableLSN+1
	// and it was flushed (checkpoint records are forced on append).
	checkpoints []Checkpoint
	// bytes tracks the simulated wire size of appended records, for the
	// log-volume experiments (E10).
	bytesTotal  int
	bytesStable int
	// Forces counts Flush calls that did work, a WAL-overhead metric.
	Forces int
	// rec is the attached telemetry recorder (nil = disabled): appended
	// records and effective forces are counted, forces emit events.
	rec *obs.Recorder

	// Integrity metadata (the media-fault detection surface):

	// sums holds each record's checksum, sealed at append time; a record
	// whose recomputed checksum disagrees has rotted on the medium.
	sums map[core.LSN]uint64
	// chain holds the running chained checksum through each LSN
	// (chain[n] folds record n's checksum into chain[n-1]), so a valid
	// tail can prove where it ends.
	chain map[core.LSN]uint64
	// The tail anchor, re-sealed on every force: the chained checksum of
	// the stable prefix plus the LSN it covers. After a crash the anchor
	// is how recovery knows the stable tail's true end — records present
	// but past a corrupt one are untrustworthy, and records missing below
	// anchorLSN were torn away.
	anchorLSN core.LSN
	anchorSum uint64
	// truncatedBefore is the lowest LSN the log is expected to still
	// hold (records below it were legitimately dropped by checkpointed
	// truncation, not by a fault).
	truncatedBefore core.LSN
}

// NewManager returns an empty log manager.
func NewManager() *Manager {
	return &Manager{
		log:             core.NewLog(),
		sums:            make(map[core.LSN]uint64),
		chain:           make(map[core.LSN]uint64),
		truncatedBefore: 1,
	}
}

// SetRecorder attaches a telemetry recorder. Pass nil to disable.
func (m *Manager) SetRecorder(rec *obs.Recorder) { m.rec = rec }

// recordSum is the per-record integrity checksum: LSN plus the logged
// operation's identity.
func recordSum(r *core.Record) uint64 {
	return fault.Sum("record", strconv.FormatUint(uint64(r.LSN), 10), r.Op.String())
}

// chainAt returns the chained checksum through lsn: the stored chain
// entry, or the empty-log base when lsn predates every record.
func (m *Manager) chainAt(lsn core.LSN) uint64 {
	if s, ok := m.chain[lsn]; ok {
		return s
	}
	return fault.Sum("chain-base")
}

// sealAnchor re-seals the tail anchor at the current stable LSN. Called
// on every force, modelling the anchor riding in the same durable write
// (a control-file update or the force's final sector).
func (m *Manager) sealAnchor() {
	m.anchorLSN = m.stableLSN
	m.anchorSum = m.chainAt(m.stableLSN)
}

// Append logs an operation with a simulated record size in bytes and
// returns its record. The record is volatile until flushed.
func (m *Manager) Append(op *model.Op, size int) *core.Record {
	r := m.log.Append(op)
	if size < 0 {
		size = 0
	}
	m.bytesTotal += size
	if r.Labels == nil {
		r.Labels = map[string]string{}
	}
	r.Labels["bytes"] = strconv.Itoa(size)
	r.SetSizeBytes(size)
	sum := recordSum(r)
	m.sums[r.LSN] = sum
	m.chain[r.LSN] = fault.Sum(
		strconv.FormatUint(m.chainAt(r.LSN-1), 16),
		strconv.FormatUint(sum, 16))
	m.rec.Inc(obs.MWALAppends)
	m.rec.Add(obs.MWALBytes, int64(size))
	return r
}

// AppendCheckpoint appends and forces a checkpoint record with the given
// payload. Forcing matches practice: a checkpoint is useless until it is
// stable, and writing it is the atomic act that installs operations in
// the logical and physical schemes (Sections 6.1–6.2).
func (m *Manager) AppendCheckpoint(payload interface{}) Checkpoint {
	ck := Checkpoint{AtLSN: m.log.NextLSN(), Payload: payload}
	m.checkpoints = append(m.checkpoints, ck)
	m.Flush()
	return ck
}

// Flush forces the whole log to stable storage.
func (m *Manager) Flush() {
	if m.stableLSN+1 < m.log.NextLSN() {
		m.Forces++
		m.rec.Inc(obs.MWALForces)
		m.rec.Emit(obs.Event{Type: obs.EvWALForce, LSN: int64(m.log.NextLSN() - 1)})
	}
	m.stableLSN = m.log.NextLSN() - 1
	m.bytesStable = m.bytesTotal
	m.sealAnchor()
}

// FlushTo forces the log through the given LSN (no-op if already stable).
func (m *Manager) FlushTo(lsn core.LSN) {
	if lsn <= m.stableLSN {
		return
	}
	if lsn >= m.log.NextLSN() {
		lsn = m.log.NextLSN() - 1
	}
	m.stableLSN = lsn
	m.Forces++
	m.rec.Inc(obs.MWALForces)
	m.rec.Emit(obs.Event{Type: obs.EvWALForce, LSN: int64(lsn)})
	// Approximate stable bytes: proportional accounting is unnecessary;
	// experiments flush whole-log before measuring.
	m.bytesStable = m.bytesTotal
	m.sealAnchor()
}

// RequireStable is the WAL gate: it returns an error if the record with
// the given LSN has not been forced. Cache managers call it before
// installing a page whose last update is that LSN; the failure-injection
// mode of the simulator skips the call to demonstrate WAL violations.
func (m *Manager) RequireStable(lsn core.LSN) error {
	if lsn > m.stableLSN {
		return fmt.Errorf("wal: record %d is not stable (stable through %d); flush the log before installing", lsn, m.stableLSN)
	}
	return nil
}

// StableLSN returns the highest stable LSN.
func (m *Manager) StableLSN() core.LSN { return m.stableLSN }

// NextLSN returns the LSN the next appended record will get.
func (m *Manager) NextLSN() core.LSN { return m.log.NextLSN() }

// Log returns the full volatile log (the in-memory view).
func (m *Manager) Log() *core.Log { return m.log }

// StableLog returns the records that survive a crash: the stable prefix.
func (m *Manager) StableLog() *core.Log { return m.log.Prefix(m.stableLSN) }

// StableCheckpoint returns the most recent checkpoint whose record is
// stable, if any.
func (m *Manager) StableCheckpoint() (Checkpoint, bool) {
	for i := len(m.checkpoints) - 1; i >= 0; i-- {
		if m.checkpoints[i].AtLSN <= m.stableLSN+1 {
			return m.checkpoints[i], true
		}
	}
	return Checkpoint{}, false
}

// BytesTotal returns the simulated size of all appended records.
func (m *Manager) BytesTotal() int { return m.bytesTotal }

// TruncateBefore drops stable records with LSN < before and returns how
// many were dropped. Only records already stable and covered by a stable
// checkpoint may be truncated; the caller rebases its recovery state
// first. Truncating into the volatile tail or past the newest stable
// checkpoint is refused.
func (m *Manager) TruncateBefore(before core.LSN) (int, error) {
	if before > m.stableLSN+1 {
		return 0, fmt.Errorf("wal: cannot truncate through %d: stable only through %d", before, m.stableLSN)
	}
	ck, ok := m.StableCheckpoint()
	if !ok {
		return 0, fmt.Errorf("wal: cannot truncate without a stable checkpoint")
	}
	if before > ck.AtLSN {
		return 0, fmt.Errorf("wal: cannot truncate through %d: newest stable checkpoint is at %d", before, ck.AtLSN)
	}
	if before > m.truncatedBefore {
		m.truncatedBefore = before
	}
	return m.log.TruncateBefore(before), nil
}

// Crash discards the volatile tail, leaving only the stable prefix, and
// returns the surviving log. Checkpoint records past the stable LSN are
// discarded with it.
func (m *Manager) Crash() *core.Log {
	stable := m.StableLog()
	m.log = stable
	m.bytesTotal = m.bytesStable
	kept := m.checkpoints[:0]
	for _, ck := range m.checkpoints {
		if ck.AtLSN <= m.stableLSN+1 {
			kept = append(kept, ck)
		}
	}
	m.checkpoints = kept
	// The volatile tail's LSNs will be reissued; drop their integrity
	// entries so reissued records seal fresh checksums.
	for lsn := range m.sums {
		if lsn > m.stableLSN {
			delete(m.sums, lsn)
			delete(m.chain, lsn)
		}
	}
	return stable
}
