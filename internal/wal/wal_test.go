package wal

import (
	"testing"

	"redotheory/internal/model"
)

func TestAppendFlushStable(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 10)
	m.Append(model.Incr(2, "x", 1), 20)
	if m.StableLSN() != 0 {
		t.Errorf("stable = %d before flush", m.StableLSN())
	}
	if err := m.RequireStable(1); err == nil {
		t.Error("unflushed record reported stable")
	}
	m.Flush()
	if m.StableLSN() != 2 {
		t.Errorf("stable = %d after flush", m.StableLSN())
	}
	if err := m.RequireStable(2); err != nil {
		t.Error(err)
	}
	if m.BytesTotal() != 30 {
		t.Errorf("bytes = %d", m.BytesTotal())
	}
}

func TestFlushTo(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.Append(model.Incr(2, "x", 1), 1)
	m.Append(model.Incr(3, "x", 1), 1)
	m.FlushTo(2)
	if m.StableLSN() != 2 {
		t.Errorf("stable = %d", m.StableLSN())
	}
	m.FlushTo(1) // no-op backwards
	if m.StableLSN() != 2 {
		t.Error("FlushTo moved backwards")
	}
	m.FlushTo(99) // clamped
	if m.StableLSN() != 3 {
		t.Errorf("stable = %d", m.StableLSN())
	}
}

func TestStableLogAndCrash(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.Flush()
	m.Append(model.Incr(2, "x", 1), 1)
	if got := m.StableLog().Len(); got != 1 {
		t.Errorf("stable log len = %d", got)
	}
	survived := m.Crash()
	if survived.Len() != 1 || survived.RecordOf(2) != nil {
		t.Error("crash kept the volatile tail")
	}
	// The manager keeps working after a crash (new epoch).
	m.Append(model.Incr(3, "y", 1), 1)
	if m.Log().Len() != 2 {
		t.Errorf("post-crash log len = %d", m.Log().Len())
	}
}

func TestCheckpoints(t *testing.T) {
	m := NewManager()
	if _, ok := m.StableCheckpoint(); ok {
		t.Error("phantom checkpoint")
	}
	m.Append(model.Incr(1, "x", 1), 1)
	ck := m.AppendCheckpoint("payload-1")
	if ck.AtLSN != 2 {
		t.Errorf("checkpoint AtLSN = %d, want 2", ck.AtLSN)
	}
	got, ok := m.StableCheckpoint()
	if !ok || got.Payload != "payload-1" {
		t.Errorf("stable checkpoint = %+v, %v", got, ok)
	}
	// A later checkpoint supersedes.
	m.Append(model.Incr(2, "x", 1), 1)
	m.AppendCheckpoint("payload-2")
	got, _ = m.StableCheckpoint()
	if got.Payload != "payload-2" {
		t.Errorf("latest checkpoint = %+v", got)
	}
}

func TestCheckpointSurvivesCrashOnlyIfStable(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.AppendCheckpoint("ck") // forced
	m.Append(model.Incr(2, "x", 1), 1)
	m.Crash()
	if _, ok := m.StableCheckpoint(); !ok {
		t.Error("forced checkpoint lost in crash")
	}
}

func TestForcesCounter(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.Flush()
	m.Flush() // no work
	if m.Forces != 1 {
		t.Errorf("Forces = %d, want 1", m.Forces)
	}
}
