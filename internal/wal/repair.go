package wal

import (
	"fmt"
	"strconv"

	"redotheory/internal/core"
	"redotheory/internal/fault"
)

// This file is the log manager's media-fault surface: injection hooks
// that decay the stable log the way a crash reveals (a torn tail, a
// rotted record) and RepairTail, the recovery-side validation that turns
// every such fault into an explicit detection and truncates the log back
// to its last trustworthy record. The write-ahead rule makes the log the
// root of trust for redo; when the log itself lies, recovery's only safe
// move is to shorten it and fall back — losing a suffix detectably
// rather than replaying garbage silently.

// CorruptRecord simulates bit-rot of one stable log record: its stored
// checksum no longer matches its contents. It reports whether the record
// exists in the stable log.
func (m *Manager) CorruptRecord(lsn core.LSN) bool {
	if lsn > m.stableLSN {
		return false
	}
	r := m.log.Records()
	idx := -1
	for i := range r {
		if r[i].LSN == lsn {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	m.sums[lsn] ^= 0x5a5a5a5a
	return true
}

// TearStableTail drops the last k records of the stable log without
// updating the tail anchor, as a torn final write leaves things: the
// anchor still claims the full tail, so RepairTail can tell the records
// are missing rather than never written. It returns how many records
// were actually dropped.
func (m *Manager) TearStableTail(k int) int {
	recs := m.log.Records()
	if k <= 0 || len(recs) == 0 {
		return 0
	}
	if k > len(recs) {
		k = len(recs)
	}
	var newLast core.LSN
	if k < len(recs) {
		newLast = recs[len(recs)-1-k].LSN
	} else {
		newLast = recs[0].LSN - 1
	}
	m.log = m.log.Prefix(newLast)
	return k
}

// VerifyRecord recomputes a record's checksum against the one sealed at
// append time, returning a CorruptRecordError on mismatch. Records not
// present in the log verify clean (absence is the tear detector's job,
// not the checksum's).
func (m *Manager) VerifyRecord(lsn core.LSN) error {
	r := m.log.RecordOfLSN(lsn)
	if r == nil {
		return nil
	}
	stored, ok := m.sums[lsn]
	if !ok || stored != recordSum(r) {
		return &CorruptRecordError{LSN: lsn}
	}
	return nil
}

// TailRepair reports what RepairTail found and did.
type TailRepair struct {
	// ValidThrough is the LSN of the last trustworthy record; the log now
	// ends there.
	ValidThrough core.LSN
	// TornRecords counts records the tail anchor expected that are
	// missing from the medium.
	TornRecords int
	// CorruptLSN is the first checksum-invalid record (0 when none).
	CorruptLSN core.LSN
	// DroppedValid counts individually-valid records discarded because
	// they sit past the corrupt one — committed work lost detectably.
	DroppedValid int
	// CheckpointsDropped counts checkpoints stranded past ValidThrough.
	CheckpointsDropped int
	// Detections lists every integrity failure found.
	Detections []fault.Detection
}

// Damaged reports whether the repair found anything wrong.
func (r TailRepair) Damaged() bool { return len(r.Detections) > 0 }

// RepairTail validates the stable log after a crash and repairs it:
// every record is checksummed, the chained tail anchor is compared
// against what is actually present, and on any failure the log is
// truncated to the last trustworthy record, stranded checkpoints are
// dropped, and the anchor is re-sealed. The repaired log satisfies
// RequireStable for every surviving record, and a second call finds
// nothing (repair is idempotent — a crash during degraded recovery just
// runs it again).
func (m *Manager) RepairTail() TailRepair {
	rep := TailRepair{}
	recs := m.log.Records()

	// Per-record checksums, in order; trust nothing past the first bad one.
	corruptIdx := -1
	for i, r := range recs {
		if m.VerifyRecord(r.LSN) != nil {
			corruptIdx = i
			rep.CorruptLSN = r.LSN
			rep.Detections = append(rep.Detections, fault.Detection{
				Code:   "corrupt-record",
				Detail: fmt.Sprintf("log record %d fails its checksum", r.LSN),
			})
			break
		}
	}

	maxPresent := m.log.MaxLSN()
	validThrough := maxPresent
	if corruptIdx >= 0 {
		if corruptIdx == 0 {
			validThrough = recs[0].LSN - 1
		} else {
			validThrough = recs[corruptIdx-1].LSN
		}
		for _, r := range recs[corruptIdx+1:] {
			if m.VerifyRecord(r.LSN) == nil {
				rep.DroppedValid++
			}
		}
	}

	// Tail anchor vs what the medium actually holds. Records below
	// truncatedBefore are legitimately gone; anything between the last
	// present record and the anchor was torn away.
	if m.anchorLSN >= m.truncatedBefore {
		low := maxPresent
		if low < m.truncatedBefore-1 {
			low = m.truncatedBefore - 1
		}
		if low < m.anchorLSN {
			rep.TornRecords = int(m.anchorLSN - low)
			rep.Detections = append(rep.Detections, fault.Detection{
				Code: "torn-tail",
				Detail: fmt.Sprintf("tail anchor covers through %d but log ends at %d (%d records torn)",
					m.anchorLSN, low, rep.TornRecords),
			})
		}
	}

	// Belt and suspenders: with per-record sums clean and no tear, the
	// chained anchor must reproduce. A mismatch here means the medium
	// lies in a way the per-record sums missed; trust only the
	// checkpoint-covered base.
	if corruptIdx < 0 && rep.TornRecords == 0 && len(recs) > 0 && m.anchorLSN >= recs[0].LSN {
		run := m.chainAt(recs[0].LSN - 1)
		for _, r := range recs {
			if r.LSN > m.anchorLSN {
				break
			}
			run = fault.Sum(
				strconv.FormatUint(run, 16),
				strconv.FormatUint(recordSum(r), 16))
		}
		if run != m.anchorSum {
			validThrough = m.truncatedBefore - 1
			rep.Detections = append(rep.Detections, fault.Detection{
				Code:   "torn-tail",
				Detail: "chained tail anchor mismatch; dropping the uncovered suffix",
			})
		}
	}

	if validThrough < m.truncatedBefore-1 {
		validThrough = m.truncatedBefore - 1
	}
	rep.ValidThrough = validThrough
	if !rep.Damaged() {
		return rep
	}

	// Repair: shorten to the trustworthy prefix, re-seal, and drop
	// checkpoints that pointed past it.
	if m.log.MaxLSN() > validThrough {
		m.log = m.log.Prefix(validThrough)
	}
	m.stableLSN = validThrough
	kept := m.checkpoints[:0]
	for _, ck := range m.checkpoints {
		if ck.AtLSN <= validThrough+1 {
			kept = append(kept, ck)
		} else {
			rep.CheckpointsDropped++
		}
	}
	m.checkpoints = kept
	for lsn := range m.sums {
		if lsn > validThrough {
			delete(m.sums, lsn)
			delete(m.chain, lsn)
		}
	}
	m.sealAnchor()
	return rep
}
