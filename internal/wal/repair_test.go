package wal

import (
	"strings"
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

func TestRepairTailCleanCrash(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.Append(model.Incr(2, "x", 1), 1)
	m.Flush()
	m.Append(model.Incr(3, "x", 1), 1) // volatile, lost at crash
	m.Crash()
	rep := m.RepairTail()
	if rep.Damaged() {
		t.Fatalf("clean crash reported damage: %+v", rep)
	}
	if rep.ValidThrough != 2 {
		t.Errorf("ValidThrough = %d, want 2", rep.ValidThrough)
	}
}

func TestRepairTornTail(t *testing.T) {
	m := NewManager()
	for i := 1; i <= 4; i++ {
		m.Append(model.Incr(model.OpID(i), "x", 1), 1)
	}
	m.Flush()
	m.AppendCheckpoint(0) // AtLSN 5, stranded once the tail tears
	m.Crash()
	if n := m.TearStableTail(2); n != 2 {
		t.Fatalf("tore %d records, want 2", n)
	}
	rep := m.RepairTail()
	if rep.TornRecords != 2 || rep.ValidThrough != 2 {
		t.Fatalf("repair = %+v, want 2 torn through 2", rep)
	}
	if rep.CheckpointsDropped != 1 {
		t.Errorf("CheckpointsDropped = %d, want 1 (stranded at LSN 5)", rep.CheckpointsDropped)
	}
	if _, ok := m.StableCheckpoint(); ok {
		t.Error("stranded checkpoint still reported stable")
	}
	if m.StableLSN() != 2 {
		t.Errorf("StableLSN = %d after repair, want 2", m.StableLSN())
	}
	if err := m.RequireStable(2); err != nil {
		t.Errorf("surviving record not stable after repair: %v", err)
	}
	// Idempotent: a second pass (crash during degraded recovery) is clean.
	if again := m.RepairTail(); again.Damaged() {
		t.Fatalf("second repair found damage: %+v", again)
	}
}

func TestRepairCorruptRecord(t *testing.T) {
	m := NewManager()
	for i := 1; i <= 5; i++ {
		m.Append(model.Incr(model.OpID(i), "x", 1), 1)
	}
	m.Flush()
	m.Crash()
	if !m.CorruptRecord(3) {
		t.Fatal("CorruptRecord(3) found no record")
	}
	if err := m.VerifyRecord(3); err == nil {
		t.Fatal("corrupt record verified clean")
	} else if !strings.Contains(err.Error(), "record 3") {
		t.Errorf("error = %v", err)
	}
	rep := m.RepairTail()
	if rep.CorruptLSN != 3 || rep.ValidThrough != 2 {
		t.Fatalf("repair = %+v, want corrupt at 3, valid through 2", rep)
	}
	// Records 4 and 5 were individually valid but untrustworthy past the
	// rot: dropped, and counted as detectably lost work.
	if rep.DroppedValid != 2 {
		t.Errorf("DroppedValid = %d, want 2", rep.DroppedValid)
	}
	if m.Log().MaxLSN() != 2 || m.StableLSN() != 2 {
		t.Errorf("log ends at %d stable %d, want 2/2", m.Log().MaxLSN(), m.StableLSN())
	}
	if again := m.RepairTail(); again.Damaged() {
		t.Fatalf("second repair found damage: %+v", again)
	}
}

func TestRepairAfterTruncation(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.Append(model.Incr(2, "x", 1), 1)
	m.Flush()
	m.AppendCheckpoint(0) // AtLSN 3
	if _, err := m.TruncateBefore(3); err != nil {
		t.Fatal(err)
	}
	// Fully truncated log: absence of records 1–2 is legitimate, not a tear.
	m.Crash()
	if rep := m.RepairTail(); rep.Damaged() {
		t.Fatalf("truncated log reported damage: %+v", rep)
	}
	// New records past the truncation point still validate and tear-detect.
	m.Append(model.Incr(3, "x", 1), 1)
	m.Append(model.Incr(4, "x", 1), 1)
	m.Flush()
	m.Crash()
	m.TearStableTail(1)
	rep := m.RepairTail()
	if rep.TornRecords != 1 || rep.ValidThrough != 3 {
		t.Fatalf("repair = %+v, want 1 torn through 3", rep)
	}
}

// TestTruncateBeforeErrors is the table-driven sweep of TruncateBefore's
// refusal paths.
func TestTruncateBeforeErrors(t *testing.T) {
	cases := []struct {
		name    string
		setup   func() *Manager
		before  uint64
		wantErr string
	}{
		{
			name: "into the volatile tail",
			setup: func() *Manager {
				m := NewManager()
				m.Append(model.Incr(1, "x", 1), 1)
				m.Append(model.Incr(2, "x", 1), 1)
				m.AppendCheckpoint(0)              // forces; AtLSN 3
				m.Append(model.Incr(3, "x", 1), 1) // volatile
				return m
			},
			before:  4,
			wantErr: "stable only through",
		},
		{
			name: "no stable checkpoint",
			setup: func() *Manager {
				m := NewManager()
				m.Append(model.Incr(1, "x", 1), 1)
				m.Flush()
				return m
			},
			before:  2,
			wantErr: "without a stable checkpoint",
		},
		{
			name: "past the newest stable checkpoint",
			setup: func() *Manager {
				m := NewManager()
				m.Append(model.Incr(1, "x", 1), 1)
				m.Append(model.Incr(2, "x", 1), 1)
				m.AppendCheckpoint(0) // AtLSN 3
				m.Append(model.Incr(3, "x", 1), 1)
				m.Append(model.Incr(4, "x", 1), 1)
				m.Flush()
				return m
			},
			before:  4,
			wantErr: "newest stable checkpoint",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.setup()
			n, err := m.TruncateBefore(core.LSN(tc.before))
			if err == nil {
				t.Fatalf("TruncateBefore(%d) succeeded, dropped %d", tc.before, n)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
			if m.Log().Len() == 0 {
				t.Error("refused truncation still dropped records")
			}
		})
	}
}

// TestTruncateThenCrashStable covers the TruncateBefore → Crash
// interplay: after truncation drops the prefix and a crash drops the
// volatile tail, every surviving record must still satisfy RequireStable
// and the stable checkpoint must still be found.
func TestTruncateThenCrashStable(t *testing.T) {
	m := NewManager()
	m.Append(model.Incr(1, "x", 1), 1)
	m.Append(model.Incr(2, "x", 1), 1)
	m.AppendCheckpoint(0) // AtLSN 3, forces through 2
	if n, err := m.TruncateBefore(3); err != nil || n != 2 {
		t.Fatalf("truncate = %d, %v", n, err)
	}
	m.Append(model.Incr(3, "x", 1), 1)
	m.Append(model.Incr(4, "x", 1), 1)
	m.FlushTo(3)
	m.Append(model.Incr(5, "x", 1), 1)
	m.Crash() // loses records 4 and 5

	if got := m.Log().MaxLSN(); got != 3 {
		t.Fatalf("surviving log ends at %d, want 3", got)
	}
	if err := m.RequireStable(3); err != nil {
		t.Errorf("surviving record 3 not stable: %v", err)
	}
	if err := m.RequireStable(4); err == nil {
		t.Error("lost record 4 reported stable")
	}
	if _, ok := m.StableCheckpoint(); !ok {
		t.Error("stable checkpoint lost across truncate+crash")
	}
	if rep := m.RepairTail(); rep.Damaged() {
		t.Errorf("truncate+crash log reported damage: %+v", rep)
	}
}
