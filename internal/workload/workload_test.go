package workload

import (
	"math/rand"
	"testing"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

func TestPagesAndInitialState(t *testing.T) {
	ps := Pages(3)
	if len(ps) != 3 || ps[0] != "pg00" || ps[2] != "pg02" {
		t.Errorf("Pages = %v", ps)
	}
	s := InitialState(ps)
	if s.GetInt(ps[1]) != 1001 {
		t.Errorf("initial value = %d", s.GetInt(ps[1]))
	}
}

func TestSinglePageShape(t *testing.T) {
	ps := Pages(4)
	for _, op := range SinglePage(20, ps, 1, true) {
		if len(op.Writes()) != 1 || len(op.Reads()) != 1 || op.Reads()[0] != op.Writes()[0] {
			t.Fatalf("op %s is not single-page", op)
		}
	}
}

func TestReadManyWriteOneShape(t *testing.T) {
	ps := Pages(6)
	sawMultiRead := false
	for _, op := range ReadManyWriteOne(50, ps, 3, 2) {
		if len(op.Writes()) != 1 {
			t.Fatalf("op %s writes %d pages", op, len(op.Writes()))
		}
		if len(op.Reads()) > 1 {
			sawMultiRead = true
		}
	}
	if !sawMultiRead {
		t.Error("generator never produced a multi-read op")
	}
}

func TestBlindWritesShape(t *testing.T) {
	for _, op := range BlindWrites(20, Pages(3), 3) {
		if len(op.Reads()) != 0 || len(op.Writes()) != 1 {
			t.Fatalf("op %s is not a blind single-page write", op)
		}
	}
}

func TestAnyShapeWritesNonEmpty(t *testing.T) {
	for _, op := range AnyShape(50, Pages(4), 4) {
		if len(op.Writes()) == 0 {
			t.Fatal("empty write set")
		}
	}
}

func TestBankTransfersDeterministicAndConserving(t *testing.T) {
	ps := Pages(4)
	ops := BankTransfers(15, ps, 9)
	s := InitialState(ps)
	var before int64
	for _, p := range ps {
		before += s.GetInt(p)
	}
	for _, op := range ops {
		s.MustApply(op)
	}
	var after int64
	for _, p := range ps {
		after += s.GetInt(p)
	}
	if before != after {
		t.Errorf("transfers do not conserve: %d -> %d", before, after)
	}
	// Determinism: same seed, same ops, same result.
	s2 := InitialState(ps)
	for _, op := range BankTransfers(15, ps, 9) {
		s2.MustApply(op)
	}
	if !s.Equal(s2) {
		t.Error("generator not deterministic")
	}
}

func TestForMethod(t *testing.T) {
	ps := Pages(3)
	for _, name := range []string{"physiological", "genlsn", "physical", "logical"} {
		ops, err := ForMethod(name, 5, ps, 1)
		if err != nil || len(ops) != 5 {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ForMethod("nope", 5, ps, 1); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestScenariosMatchPaperVerdicts(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cg := conflict.FromOps(sc.Ops...)
			ig := install.FromConflict(cg)
			sg, err := stategraph.FromConflict(cg, sc.Initial)
			if err != nil {
				t.Fatal(err)
			}
			if sc.CrashState == nil {
				return // structural scenarios: nothing installed
			}
			installed := graph.NewSet(sc.Installed...)
			err = ig.PotentiallyRecoverable(sg, installed, sc.CrashState)
			if sc.Recoverable && err != nil {
				t.Errorf("paper says recoverable, library says: %v", err)
			}
			if !sc.Recoverable && err == nil {
				t.Error("paper says unrecoverable, library recovered it")
			}
		})
	}
}

func TestScenario1NoPrefixExplains(t *testing.T) {
	// Stronger than the verdict: NO installation prefix explains
	// Scenario 1's crash state.
	sc := Scenario1()
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := []graph.Set[model.OpID]{
		graph.NewSet[model.OpID](),
		graph.NewSet[model.OpID](1),
		graph.NewSet[model.OpID](2),
		graph.NewSet[model.OpID](1, 2),
	}
	for _, pre := range prefixes {
		if err := ig.PotentiallyRecoverable(sg, pre, sc.CrashState); err == nil {
			t.Errorf("prefix %v recovered the unrecoverable state", pre)
		}
	}
}

func TestHotPageShape(t *testing.T) {
	ps := Pages(32)
	ops := HotPage(400, ps, 5)
	counts := map[model.Var]int{}
	bursts := 0
	for i, op := range ops {
		if len(op.Writes()) != 1 || len(op.Reads()) != 1 || op.Reads()[0] != op.Writes()[0] {
			t.Fatalf("op %s is not single-page", op)
		}
		counts[op.Writes()[0]]++
		if i > 0 && op.Writes()[0] == ops[i-1].Writes()[0] {
			bursts++
		}
	}
	// Zipfian skew: the hottest page must clearly beat a uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if uniform := len(ops) / len(ps); max <= 2*uniform {
		t.Errorf("hottest page got %d of %d ops — no visible skew (uniform share %d)", max, len(ops), uniform)
	}
	if bursts == 0 {
		t.Error("generator never produced a same-page burst")
	}
	// Determinism: same seed, identical page sequence.
	again := HotPage(400, ps, 5)
	for i := range ops {
		if ops[i].Writes()[0] != again[i].Writes()[0] {
			t.Fatalf("op %d page diverges across identical seeds", i)
		}
	}
}

func TestHeavyHotPageTracksHotPageSequence(t *testing.T) {
	ps := Pages(16)
	light := HotPage(100, ps, 9)
	heavy := HeavyHotPage(100, ps, 3, 9)
	for i := range light {
		if light[i].Writes()[0] != heavy[i].Writes()[0] {
			t.Fatalf("op %d: heavy generator picked %s, light picked %s",
				i, heavy[i].Writes()[0], light[i].Writes()[0])
		}
	}
	// The heavy compute is deterministic per seed.
	s1, s2 := InitialState(ps), InitialState(ps)
	for _, op := range heavy {
		s1.MustApply(op)
	}
	for _, op := range HeavyHotPage(100, ps, 3, 9) {
		s2.MustApply(op)
	}
	if !s1.Equal(s2) {
		t.Error("heavy generator not deterministic")
	}
}

func TestGeneratorsOnDegenerateFixtures(t *testing.T) {
	// rand.NewZipf(rng, s, v, uint64(len(pages)-1)) collapses to imax=0
	// for one page and underflows to ^uint64(0) for zero pages (NewZipf
	// then returns nil and the first pick panics). Every generator must
	// survive pages ∈ {0, 1, 2}: empty fixtures yield empty histories,
	// one page yields that page for every op.
	gens := []struct {
		name string
		gen  func(n int, pages []model.Var, seed int64) []*model.Op
	}{
		{"single-page/uniform", func(n int, ps []model.Var, seed int64) []*model.Op { return SinglePage(n, ps, seed, false) }},
		{"single-page/skew", func(n int, ps []model.Var, seed int64) []*model.Op { return SinglePage(n, ps, seed, true) }},
		{"rmw", func(n int, ps []model.Var, seed int64) []*model.Op { return ReadManyWriteOne(n, ps, 3, seed) }},
		{"any", AnyShape},
		{"blind", BlindWrites},
		{"heavy-single", func(n int, ps []model.Var, seed int64) []*model.Op { return HeavySinglePage(n, ps, 2, seed) }},
		{"hot-page", HotPage},
		{"heavy-hot", func(n int, ps []model.Var, seed int64) []*model.Op { return HeavyHotPage(n, ps, 2, seed) }},
	}
	for _, g := range gens {
		for _, npages := range []int{0, 1, 2} {
			pages := Pages(npages)
			ops := g.gen(8, pages, 7)
			if npages == 0 {
				if len(ops) != 0 {
					t.Errorf("%s over 0 pages: got %d ops, want none", g.name, len(ops))
				}
				continue
			}
			if len(ops) != 8 {
				t.Errorf("%s over %d pages: got %d ops, want 8", g.name, npages, len(ops))
			}
			legal := graph.NewSet(pages...)
			for _, op := range ops {
				for _, v := range append(op.Reads(), op.Writes()...) {
					if !legal.Has(v) {
						t.Fatalf("%s over %d pages: op %s touches unknown page %s", g.name, npages, op, v)
					}
				}
			}
		}
	}
	// BankTransfers needs two distinct accounts; below that it must not
	// spin forever looking for one.
	for _, npages := range []int{0, 1, 2} {
		ops := BankTransfers(4, Pages(npages), 7)
		if npages < 2 && len(ops) != 0 {
			t.Errorf("BankTransfers over %d pages: got %d ops, want none", npages, len(ops))
		}
		if npages == 2 && len(ops) != 4 {
			t.Errorf("BankTransfers over 2 pages: got %d ops, want 4", npages)
		}
	}
}

func TestZipfPickerDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	one := Pages(1)
	pick := Zipf(rng, 1.3, 1, one)
	for i := 0; i < 5; i++ {
		if p := pick(); p != one[0] {
			t.Fatalf("single-page Zipf picked %s", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Zipf over zero pages did not panic")
		}
	}()
	Zipf(rng, 1.3, 1, nil)
}

func TestShapesForIncludeHotPage(t *testing.T) {
	total := 0
	for _, name := range []string{"physiological", "physiological+dpt", "genlsn", "genlsn+mv", "physical", "grouplsn", "logical"} {
		shapes, err := ShapesFor(name)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, sh := range shapes {
			if sh.Name == "hot-page/zipf" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: shape list %d lacks hot-page/zipf", name, len(shapes))
		}
		total += len(shapes)
	}
	if total != 26 {
		t.Errorf("total shapes = %d, want 26 (the fuzzer's history count)", total)
	}
}
