package workload

import (
	"testing"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/stategraph"
)

func TestPagesAndInitialState(t *testing.T) {
	ps := Pages(3)
	if len(ps) != 3 || ps[0] != "pg00" || ps[2] != "pg02" {
		t.Errorf("Pages = %v", ps)
	}
	s := InitialState(ps)
	if s.GetInt(ps[1]) != 1001 {
		t.Errorf("initial value = %d", s.GetInt(ps[1]))
	}
}

func TestSinglePageShape(t *testing.T) {
	ps := Pages(4)
	for _, op := range SinglePage(20, ps, 1, true) {
		if len(op.Writes()) != 1 || len(op.Reads()) != 1 || op.Reads()[0] != op.Writes()[0] {
			t.Fatalf("op %s is not single-page", op)
		}
	}
}

func TestReadManyWriteOneShape(t *testing.T) {
	ps := Pages(6)
	sawMultiRead := false
	for _, op := range ReadManyWriteOne(50, ps, 3, 2) {
		if len(op.Writes()) != 1 {
			t.Fatalf("op %s writes %d pages", op, len(op.Writes()))
		}
		if len(op.Reads()) > 1 {
			sawMultiRead = true
		}
	}
	if !sawMultiRead {
		t.Error("generator never produced a multi-read op")
	}
}

func TestBlindWritesShape(t *testing.T) {
	for _, op := range BlindWrites(20, Pages(3), 3) {
		if len(op.Reads()) != 0 || len(op.Writes()) != 1 {
			t.Fatalf("op %s is not a blind single-page write", op)
		}
	}
}

func TestAnyShapeWritesNonEmpty(t *testing.T) {
	for _, op := range AnyShape(50, Pages(4), 4) {
		if len(op.Writes()) == 0 {
			t.Fatal("empty write set")
		}
	}
}

func TestBankTransfersDeterministicAndConserving(t *testing.T) {
	ps := Pages(4)
	ops := BankTransfers(15, ps, 9)
	s := InitialState(ps)
	var before int64
	for _, p := range ps {
		before += s.GetInt(p)
	}
	for _, op := range ops {
		s.MustApply(op)
	}
	var after int64
	for _, p := range ps {
		after += s.GetInt(p)
	}
	if before != after {
		t.Errorf("transfers do not conserve: %d -> %d", before, after)
	}
	// Determinism: same seed, same ops, same result.
	s2 := InitialState(ps)
	for _, op := range BankTransfers(15, ps, 9) {
		s2.MustApply(op)
	}
	if !s.Equal(s2) {
		t.Error("generator not deterministic")
	}
}

func TestForMethod(t *testing.T) {
	ps := Pages(3)
	for _, name := range []string{"physiological", "genlsn", "physical", "logical"} {
		ops, err := ForMethod(name, 5, ps, 1)
		if err != nil || len(ops) != 5 {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ForMethod("nope", 5, ps, 1); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestScenariosMatchPaperVerdicts(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cg := conflict.FromOps(sc.Ops...)
			ig := install.FromConflict(cg)
			sg, err := stategraph.FromConflict(cg, sc.Initial)
			if err != nil {
				t.Fatal(err)
			}
			if sc.CrashState == nil {
				return // structural scenarios: nothing installed
			}
			installed := graph.NewSet(sc.Installed...)
			err = ig.PotentiallyRecoverable(sg, installed, sc.CrashState)
			if sc.Recoverable && err != nil {
				t.Errorf("paper says recoverable, library says: %v", err)
			}
			if !sc.Recoverable && err == nil {
				t.Error("paper says unrecoverable, library recovered it")
			}
		})
	}
}

func TestScenario1NoPrefixExplains(t *testing.T) {
	// Stronger than the verdict: NO installation prefix explains
	// Scenario 1's crash state.
	sc := Scenario1()
	cg := conflict.FromOps(sc.Ops...)
	ig := install.FromConflict(cg)
	sg, err := stategraph.FromConflict(cg, sc.Initial)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := []graph.Set[model.OpID]{
		graph.NewSet[model.OpID](),
		graph.NewSet[model.OpID](1),
		graph.NewSet[model.OpID](2),
		graph.NewSet[model.OpID](1, 2),
	}
	for _, pre := range prefixes {
		if err := ig.PotentiallyRecoverable(sg, pre, sc.CrashState); err == nil {
			t.Errorf("prefix %v recovered the unrecoverable state", pre)
		}
	}
}
