package workload

import (
	"redotheory/internal/model"
)

// Scenario packages one of the paper's worked examples: the operations in
// invocation order, the initial state, and — where the paper installs a
// specific subset — the installed operation ids and the matching crash
// state, plus whether the paper deems that state recoverable.
type Scenario struct {
	// Name is the paper's label ("Scenario 1", "Figure 4", …).
	Name string
	// Note summarizes what the scenario demonstrates.
	Note string
	// Ops are the operations in invocation order.
	Ops []*model.Op
	// Initial is the initial state.
	Initial *model.State
	// Installed are the ids the scenario installs into the stable state.
	Installed []model.OpID
	// CrashState is the stable state at the crash: the initial state plus
	// the installed operations' (exposed) effects.
	CrashState *model.State
	// Recoverable is the paper's verdict on the crash state.
	Recoverable bool
}

// Scenario1 is Figure 1: A: x←y+1 then B: y←2 from x=y=0; only B's
// change reaches the state. Installing B before A violates the read-write
// edge A→B and the state is unrecoverable.
func Scenario1() Scenario {
	return Scenario{
		Name: "Scenario 1 (Figure 1)",
		Note: "read-write edges are important: installing B before A loses x forever",
		Ops: []*model.Op{
			model.CopyPlus(1, "x", "y", 1),             // A
			model.AssignConst(2, "y", model.IntVal(2)), // B
		},
		Initial:     model.NewState(),
		Installed:   []model.OpID{2},
		CrashState:  model.StateOf(map[model.Var]model.Value{"y": model.IntVal(2)}),
		Recoverable: false,
	}
}

// Scenario2 is Figure 2: B: y←2 then A: x←y+1 from x=y=0; only A's
// change reaches the state. The violated edge is write-read, which the
// installation graph drops, so replaying B recovers the state.
func Scenario2() Scenario {
	return Scenario{
		Name: "Scenario 2 (Figure 2)",
		Note: "write-read edges are unimportant: A may be installed before B",
		Ops: []*model.Op{
			model.AssignConst(1, "y", model.IntVal(2)), // B
			model.CopyPlus(2, "x", "y", 1),             // A
		},
		Initial:     model.NewState(),
		Installed:   []model.OpID{2},
		CrashState:  model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)}),
		Recoverable: true,
	}
}

// Scenario3 is Figure 3: C: ⟨x←x+1; y←y+1⟩ then D: x←y+1 from x=y=0;
// only C's change to y reaches the state. C's change to x is unexposed
// because D overwrites x without reading it, so {C} explains the state
// and replaying D recovers it.
func Scenario3() Scenario {
	return Scenario{
		Name: "Scenario 3 (Figure 3)",
		Note: "only exposed variables matter: C installs by writing y alone",
		Ops: []*model.Op{
			model.IncrBoth(1, "x", 1, "y", 1), // C
			model.CopyPlus(2, "x", "y", 1),    // D
		},
		Initial:     model.NewState(),
		Installed:   []model.OpID{1},
		CrashState:  model.StateOf(map[model.Var]model.Value{"y": model.IntVal(1)}),
		Recoverable: true,
	}
}

// Figure4 is the running example: O: x←x+1, P: y←x+1, Q: x←x+1 from
// x=1, whose conflict state graph Figure 4 draws. No specific install is
// prescribed; Installed/CrashState are empty.
func Figure4() Scenario {
	s0 := model.NewState()
	s0.SetInt("x", 1)
	return Scenario{
		Name: "Figure 4",
		Note: "conflict state graph of O, P, Q with its four prefix states",
		Ops: []*model.Op{
			model.Incr(1, "x", 1),
			model.CopyPlus(2, "y", "x", 1),
			model.Incr(3, "x", 1),
		},
		Initial:     s0,
		Recoverable: true,
	}
}

// Section5EFG is the Section 5 example requiring an atomic multi-variable
// install: E: x←y+1, F: y←x+1, G: x←x+1.
func Section5EFG() Scenario {
	return Scenario{
		Name: "Section 5 (E,F,G)",
		Note: "x and y must be installed atomically: E,F,G collapse to one write graph node",
		Ops: []*model.Op{
			model.CopyPlus(1, "x", "y", 1),
			model.CopyPlus(2, "y", "x", 1),
			model.Incr(3, "x", 1),
		},
		Initial:     model.NewState(),
		Recoverable: true,
	}
}

// Section5HJ is the Section 5 unexposed-variable example: H: ⟨x++;y++⟩
// then J: y←0.
func Section5HJ() Scenario {
	return Scenario{
		Name: "Section 5 (H,J)",
		Note: "J's blind write leaves y unexposed: H installs by writing x alone",
		Ops: []*model.Op{
			model.IncrBoth(1, "x", 1, "y", 1),
			model.AssignConst(2, "y", model.IntVal(0)),
		},
		Initial:     model.NewState(),
		Installed:   []model.OpID{1},
		CrashState:  model.StateOf(map[model.Var]model.Value{"x": model.IntVal(1)}),
		Recoverable: true,
	}
}

// Figure8 is the generalized B-tree split shape: O updates old page x
// (filling it), P reads x and writes the new page y with the moved half,
// Q truncates x. Collapsing the x-writers O and Q reproduces the
// figure's write graph, whose edge from P's node forces the cache
// manager to install y before x.
func Figure8() Scenario {
	return Scenario{
		Name: "Figure 8",
		Note: "generalized split: new page y must be written before old page x",
		Ops: []*model.Op{
			model.ReadWrite(1, "O:update(x)", []model.Var{"x"}, []model.Var{"x"}),
			model.ReadWrite(2, "P:split(x->y)", []model.Var{"x"}, []model.Var{"y"}),
			model.ReadWrite(3, "Q:truncate(x)", []model.Var{"x"}, []model.Var{"x"}),
		},
		Initial:     model.StateOf(map[model.Var]model.Value{"x": "full-btree-page"}),
		Recoverable: true,
	}
}

// All returns every scenario, in paper order.
func All() []Scenario {
	return []Scenario{
		Scenario1(), Scenario2(), Scenario3(),
		Figure4(), Section5EFG(), Section5HJ(), Figure8(),
	}
}
