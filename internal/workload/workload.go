// Package workload generates operation streams for the simulator, the
// experiments, and the benchmarks. Each generator produces deterministic
// operations (via model.ReadWrite digests) so recovery correctness is
// sensitive to every read: replaying an operation against a wrong
// read-set value produces a visibly wrong write.
//
// The shapes match what each Section 6 method can execute:
//
//   - SinglePage: read page p, write page p — physiological-legal.
//   - ReadManyWriteOne: read several pages, write one — generalized-LSN
//     legal (the B-tree split shape).
//   - AnyShape: arbitrary read and write sets — logical/physical only.
//   - BlindWrites: write-only operations — the pure physical shape.
package workload

import (
	"fmt"
	"math/rand"

	"redotheory/internal/model"
)

// Pages returns n page identifiers pg0…pg(n-1).
func Pages(n int) []model.Var {
	out := make([]model.Var, n)
	for i := range out {
		out[i] = model.Var(fmt.Sprintf("pg%02d", i))
	}
	return out
}

// InitialState gives every page a distinct integer value.
func InitialState(pages []model.Var) *model.State {
	s := model.NewState()
	for i, p := range pages {
		s.SetInt(p, int64(1000+i))
	}
	return s
}

// Zipf returns a Zipf-distributed page picker (hot pages first) with
// the given skew parameters. rand.NewZipf's imax argument would be
// uint64(len(pages)-1), which collapses to imax=0 for a single page and
// underflows to ^uint64(0) for an empty slice — NewZipf then returns
// nil and the first pick panics. The degenerate fixtures are guarded
// here instead: one page is always picked, and zero pages panics with a
// diagnosable message (callers that tolerate empty fixtures must return
// an empty history before picking).
func Zipf(rng *rand.Rand, s, v float64, pages []model.Var) func() model.Var {
	switch len(pages) {
	case 0:
		panic("workload: Zipf picker over zero pages")
	case 1:
		p := pages[0]
		return func() model.Var { return p }
	}
	z := rand.NewZipf(rng, s, v, uint64(len(pages)-1))
	return func() model.Var { return pages[z.Uint64()] }
}

// HotZipf is the Zipf picker with the serve/hot-page parameters
// (s=1.2, v=16): a softened head so the hottest page draws a bounded
// share of the traffic. The serve benchmark's clients share it with
// HotPage/HeavyHotPage so post-crash traffic hits the pages the crashed
// history was hot on.
func HotZipf(rng *rand.Rand, pages []model.Var) func() model.Var {
	return Zipf(rng, 1.2, 16, pages)
}

// zipfPick selects a page with a Zipf-ish skew (hot pages first) when
// skew is true, uniformly otherwise.
func zipfPick(rng *rand.Rand, pages []model.Var, skew bool) model.Var {
	if !skew {
		return pages[rng.Intn(len(pages))]
	}
	return Zipf(rng, 1.3, 1, pages)()
}

// SinglePage generates n read-modify-write operations, each touching
// exactly one page.
func SinglePage(n int, pages []model.Var, seed int64, skew bool) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		p := zipfPick(rng, pages, skew)
		ops[i] = model.ReadWrite(model.OpID(i+1), "upd", []model.Var{p}, []model.Var{p})
	}
	return ops
}

// ReadManyWriteOne generates n operations that read up to maxReads pages
// and write exactly one.
func ReadManyWriteOne(n int, pages []model.Var, maxReads int, seed int64) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		var reads []model.Var
		for _, p := range pages {
			if rng.Float64() < float64(maxReads)/float64(len(pages)) {
				reads = append(reads, p)
			}
		}
		w := pages[rng.Intn(len(pages))]
		ops[i] = model.ReadWrite(model.OpID(i+1), "rmw", reads, []model.Var{w})
	}
	return ops
}

// AnyShape generates n operations with arbitrary read and write sets.
func AnyShape(n int, pages []model.Var, seed int64) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		var reads, writes []model.Var
		for _, p := range pages {
			if rng.Float64() < 0.3 {
				reads = append(reads, p)
			}
			if rng.Float64() < 0.3 {
				writes = append(writes, p)
			}
		}
		if len(writes) == 0 {
			writes = []model.Var{pages[rng.Intn(len(pages))]}
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "any", reads, writes)
	}
	return ops
}

// BlindWrites generates n write-only operations.
func BlindWrites(n int, pages []model.Var, seed int64) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		p := pages[rng.Intn(len(pages))]
		ops[i] = model.ReadWrite(model.OpID(i+1), "blind", nil, []model.Var{p})
	}
	return ops
}

// HeavySinglePage generates n single-page read-modify-write operations
// whose compute function iterates the digest fold `rounds` times: a
// stand-in for what replaying a page operation costs in a real system
// (decode the page, recompute the change, re-encode). The parallel
// recovery benchmarks use it so replay work, not scheduling overhead,
// dominates; with a uniform page pick each page's operation chain is an
// independent replay component.
func HeavySinglePage(n int, pages []model.Var, rounds int, seed int64) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		p := pages[rng.Intn(len(pages))]
		id := model.OpID(i + 1)
		ops[i] = model.NewOp(id, "heavy", []model.Var{p}, []model.Var{p},
			func(r model.ReadSet) model.WriteSet {
				const prime = 1099511628211
				h := uint64(14695981039346656037) ^ uint64(id)
				in := string(r[p])
				for k := 0; k < rounds; k++ {
					for j := 0; j < len(in); j++ {
						h ^= uint64(in[j])
						h *= prime
					}
					h ^= uint64(k)
					h *= prime
				}
				return model.WriteSet{p: model.IntVal(int64(h % (1 << 62)))}
			})
	}
	return ops
}

// HotPage generates n single-page read-modify-write operations with a
// production-shaped page distribution: a Zipfian pick concentrates
// traffic on a few hot pages, and bursts occasionally pin several
// consecutive operations to the same page (a user hammering one row, a
// queue draining one partition). It is the default workload of the
// instant-restart serve benchmarks — the hot pages are what clients
// touch first after a crash, so lazy per-page redo recovers them far
// ahead of the cold tail. Like every ShapesFor generator it builds ops
// exclusively with model.ReadWrite, so histories are reconstructible
// from repro artifacts.
func HotPage(n int, pages []model.Var, seed int64) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	// The head is softened (v = 16) so the hottest page draws a bounded
	// share of the traffic — many times its uniform share, but still a
	// small fraction of the whole: skew concentrates the working set
	// without turning the history into one giant interference component
	// whose on-demand replay would approach a full recovery.
	pick := HotZipf(rng, pages)
	ops := make([]*model.Op, n)
	burst := 0
	var p model.Var
	for i := range ops {
		if burst > 0 {
			burst-- // ride the current burst: same page again
		} else {
			p = pick()
			if rng.Float64() < 0.2 {
				burst = 1 + rng.Intn(4)
			}
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "hot", []model.Var{p}, []model.Var{p})
	}
	return ops
}

// HeavyHotPage is HotPage with HeavySinglePage's compute cost: the same
// Zipfian/bursty page sequence, but each operation iterates the digest
// fold `rounds` times so replay work dominates scheduling overhead. The
// serve availability benchmark uses it as its crashed history — cold
// pages carry real redo debt while clients hammer the hot set.
func HeavyHotPage(n int, pages []model.Var, rounds int, seed int64) []*model.Op {
	if len(pages) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	pick := HotZipf(rng, pages)
	ops := make([]*model.Op, n)
	burst := 0
	var p model.Var
	for i := range ops {
		if burst > 0 {
			burst--
		} else {
			p = pick()
			if rng.Float64() < 0.2 {
				burst = 1 + rng.Intn(4)
			}
		}
		id := model.OpID(i + 1)
		pg := p
		ops[i] = model.NewOp(id, "heavyhot", []model.Var{pg}, []model.Var{pg},
			func(r model.ReadSet) model.WriteSet {
				const prime = 1099511628211
				h := uint64(14695981039346656037) ^ uint64(id)
				in := string(r[pg])
				for k := 0; k < rounds; k++ {
					for j := 0; j < len(in); j++ {
						h ^= uint64(in[j])
						h *= prime
					}
					h ^= uint64(k)
					h *= prime
				}
				return model.WriteSet{pg: model.IntVal(int64(h % (1 << 62)))}
			})
	}
	return ops
}

// BankTransfers generates n two-account transfers (read both accounts,
// write both) over the pages as accounts: a classic multi-variable
// workload for the logical and physical methods.
func BankTransfers(n int, pages []model.Var, seed int64) []*model.Op {
	if len(pages) < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]*model.Op, n)
	for i := range ops {
		from := pages[rng.Intn(len(pages))]
		to := pages[rng.Intn(len(pages))]
		for to == from {
			to = pages[rng.Intn(len(pages))]
		}
		amt := rng.Int63n(50) + 1
		f, tt := from, to
		ops[i] = model.NewOp(model.OpID(i+1), fmt.Sprintf("xfer(%s->%s,%d)", f, tt, amt),
			[]model.Var{f, tt}, []model.Var{f, tt},
			func(r model.ReadSet) model.WriteSet {
				return model.WriteSet{
					f:  model.IntVal(model.AsInt(r[f]) - amt),
					tt: model.IntVal(model.AsInt(r[tt]) + amt),
				}
			})
	}
	return ops
}

// Shape is a named workload generator. Every shape returned by
// ShapesFor builds its operations exclusively with model.ReadWrite, so
// an operation is fully reconstructible from its (ID, Name, Reads,
// Writes) tuple — the property the fuzzer's repro artifacts rely on.
type Shape struct {
	Name string
	Gen  func(n int, pages []model.Var, seed int64) []*model.Op
}

// ShapesFor returns every workload shape that is legal for the named
// method, each a distinct distribution over the method's legal operation
// space. The fuzzer iterates these per method; ForMethod stays the
// single-shape default used by the simulator.
func ShapesFor(name string) ([]Shape, error) {
	singleUniform := Shape{"single-page/uniform", func(n int, pages []model.Var, seed int64) []*model.Op {
		return SinglePage(n, pages, seed, false)
	}}
	singleSkew := Shape{"single-page/skew", func(n int, pages []model.Var, seed int64) []*model.Op {
		return SinglePage(n, pages, seed, true)
	}}
	rmwNarrow := Shape{"rmw/narrow", func(n int, pages []model.Var, seed int64) []*model.Op {
		return ReadManyWriteOne(n, pages, 2, seed)
	}}
	rmwWide := Shape{"rmw/wide", func(n int, pages []model.Var, seed int64) []*model.Op {
		return ReadManyWriteOne(n, pages, 5, seed)
	}}
	anyShape := Shape{"any", AnyShape}
	blind := Shape{"blind", BlindWrites}
	// hotPage is single-page RMW, so it is legal for every method.
	hotPage := Shape{"hot-page/zipf", HotPage}
	switch name {
	case "physiological", "physiological+dpt":
		return []Shape{singleUniform, singleSkew, hotPage}, nil
	case "genlsn", "genlsn+mv":
		return []Shape{rmwNarrow, rmwWide, singleUniform, hotPage}, nil
	case "physical", "grouplsn", "logical":
		return []Shape{anyShape, blind, singleUniform, hotPage}, nil
	default:
		return nil, fmt.Errorf("workload: unknown method %q", name)
	}
}

// ForMethod returns a workload legal for the named method.
func ForMethod(name string, n int, pages []model.Var, seed int64) ([]*model.Op, error) {
	switch name {
	case "physiological", "physiological+dpt":
		return SinglePage(n, pages, seed, false), nil
	case "genlsn", "genlsn+mv":
		return ReadManyWriteOne(n, pages, 3, seed), nil
	case "physical", "grouplsn":
		return AnyShape(n, pages, seed), nil
	case "logical":
		return AnyShape(n, pages, seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown method %q", name)
	}
}
