package cache

import (
	"testing"

	"redotheory/internal/core"
	"redotheory/internal/model"
)

func TestFlushGroupAtomicInstall(t *testing.T) {
	c, st, lg := newCache()
	lg.Append(model.ReadWrite(1, "pair", nil, []model.Var{"a", "b"}), 1)
	c.ApplyWrite("a", "1", 1)
	c.ApplyWrite("b", "2", 1)
	if err := c.FlushGroup([]model.Var{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if st.PageLSN("a") != 1 || st.PageLSN("b") != 1 {
		t.Error("group not installed")
	}
	if st.GroupWrites != 1 {
		t.Errorf("GroupWrites = %d", st.GroupWrites)
	}
	if len(c.DirtyPages()) != 0 {
		t.Error("members still dirty")
	}
	if lg.StableLSN() < 1 {
		t.Error("WAL not forced before the group")
	}
}

func TestFlushGroupRejectsCleanMember(t *testing.T) {
	c, _, lg := newCache()
	lg.Append(model.AssignConst(1, "a", "1"), 1)
	c.ApplyWrite("a", "1", 1)
	if err := c.FlushGroup([]model.Var{"a", "zzz"}); err == nil {
		t.Error("group with clean member accepted")
	}
	// The failed attempt must not have installed anything.
	if len(c.DirtyPages()) != 1 {
		t.Error("partial group effects visible")
	}
}

func TestFlushGroupInternalDepsSatisfiedByAtomicity(t *testing.T) {
	c, st, lg := newCache()
	lg.Append(model.AssignConst(1, "a", "1"), 1)
	c.ApplyWrite("a", "1", 1)
	lg.Append(model.AssignConst(2, "b", "2"), 1)
	c.ApplyWrite("b", "2", 2)
	// Crosswise deps: unsatisfiable page-at-a-time.
	c.AddDep(Dep{Prereq: "a", PrereqLSN: 1, Dependent: "b", DepLSN: 2})
	c.AddDep(Dep{Prereq: "b", PrereqLSN: 2, Dependent: "a", DepLSN: 1})
	if err := c.FlushAll(); err == nil {
		t.Fatal("page-at-a-time drain should deadlock")
	}
	if err := c.FlushGroup([]model.Var{"a", "b"}); err != nil {
		t.Fatalf("atomic group should dissolve internal deps: %v", err)
	}
	if st.PageLSN("a") != 1 || st.PageLSN("b") != 2 {
		t.Error("group not installed")
	}
}

func TestFlushGroupExternalDepBlocks(t *testing.T) {
	c, _, lg := newCache()
	lg.Append(model.AssignConst(1, "a", "1"), 1)
	c.ApplyWrite("a", "1", 1)
	// a depends on external page x, which is not stable.
	c.AddDep(Dep{Prereq: "x", PrereqLSN: 5, Dependent: "a", DepLSN: 1})
	if err := c.FlushGroup([]model.Var{"a"}); err == nil {
		t.Error("external unsatisfied prerequisite accepted")
	}
}

func TestOpsSinceTracking(t *testing.T) {
	c, _, lg := newCache()
	if c.OpsSince("p") != nil {
		t.Error("clean page reports ops")
	}
	lg.Append(model.AssignConst(1, "p", "1"), 1)
	c.ApplyWrite("p", "1", 1)
	lg.Append(model.AssignConst(2, "p", "2"), 1)
	c.ApplyWrite("p", "2", 2)
	if got := c.OpsSince("p"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("OpsSince = %v", got)
	}
	if err := c.Flush("p"); err != nil {
		t.Fatal(err)
	}
	if c.OpsSince("p") != nil {
		t.Error("ops survived the flush")
	}
}

func TestOnInstallHookFires(t *testing.T) {
	c, _, lg := newCache()
	var got []core.LSN
	c.OnInstall = func(x model.Var, lsn core.LSN) { got = append(got, lsn) }
	lg.Append(model.AssignConst(1, "p", "1"), 1)
	c.ApplyWrite("p", "1", 1)
	if err := c.Flush("p"); err != nil {
		t.Fatal(err)
	}
	lg.Append(model.ReadWrite(2, "pair", nil, []model.Var{"q", "r"}), 1)
	c.ApplyWrite("q", "2", 2)
	c.ApplyWrite("r", "3", 2)
	if err := c.FlushGroup([]model.Var{"q", "r"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("hook fired %d times, want 3", len(got))
	}
}

func TestMVFlushBestFiresHookWithVersionLSN(t *testing.T) {
	c, _, lg := newMV()
	var got []core.LSN
	c.OnInstall = func(x model.Var, lsn core.LSN) { got = append(got, lsn) }
	lg.Append(model.AssignConst(1, "p", "v1"), 1)
	c.ApplyWrite("p", "v1", 1)
	lg.Append(model.AssignConst(2, "p", "v2"), 1)
	c.ApplyWrite("p", "v2", 2)
	c.AddDep(Dep{Prereq: "q", PrereqLSN: 9, Dependent: "p", DepLSN: 2})
	if err := c.FlushBest("p"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("hook = %v, want the older version's LSN 1", got)
	}
	// The newer version's op remains tracked.
	if ops := c.OpsSince("p"); len(ops) != 1 || ops[0] != 2 {
		t.Errorf("OpsSince after partial flush = %v", ops)
	}
}
