package cache

import (
	"testing"

	"redotheory/internal/model"
	"redotheory/internal/storage"
	"redotheory/internal/wal"
)

func newMV() (*Manager, *storage.Store, *wal.Manager) {
	st := storage.NewStore()
	lg := wal.NewManager()
	return NewMVManager(st, lg), st, lg
}

func TestMVRetainsVersions(t *testing.T) {
	c, _, lg := newMV()
	lg.Append(model.AssignConst(1, "p", "v1"), 1)
	c.ApplyWrite("p", "v1", 1)
	lg.Append(model.AssignConst(2, "p", "v2"), 1)
	c.ApplyWrite("p", "v2", 2)
	lg.Append(model.AssignConst(3, "p", "v3"), 1)
	c.ApplyWrite("p", "v3", 3)
	if got := c.Versions("p"); got != 3 {
		t.Errorf("Versions = %d, want 3", got)
	}
	if c.Read("p") != "v3" {
		t.Error("Read must return the newest version")
	}
}

func TestMVFlushBestPrefersNewest(t *testing.T) {
	c, st, lg := newMV()
	lg.Append(model.AssignConst(1, "p", "v1"), 1)
	c.ApplyWrite("p", "v1", 1)
	lg.Append(model.AssignConst(2, "p", "v2"), 1)
	c.ApplyWrite("p", "v2", 2)
	if err := c.FlushBest("p"); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Read("p"); got.Data != "v2" || got.LSN != 2 {
		t.Errorf("stable = %+v, want newest", got)
	}
	if c.Versions("p") != 0 {
		t.Error("page should be clean after flushing the newest version")
	}
}

func TestMVFlushBestFallsBackToOlderVersion(t *testing.T) {
	c, st, lg := newMV()
	lg.Append(model.AssignConst(1, "p", "v1"), 1)
	c.ApplyWrite("p", "v1", 1)
	lg.Append(model.AssignConst(2, "p", "v2"), 1)
	c.ApplyWrite("p", "v2", 2)
	// Block the newest version: p at LSN ≥ 2 needs q stable at 9.
	c.AddDep(Dep{Prereq: "q", PrereqLSN: 9, Dependent: "p", DepLSN: 2})
	if !c.CanFlushBest("p") {
		t.Fatal("older version should be installable")
	}
	if err := c.FlushBest("p"); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Read("p"); got.Data != "v1" || got.LSN != 1 {
		t.Errorf("stable = %+v, want the older version", got)
	}
	if c.Versions("p") != 1 {
		t.Errorf("Versions = %d, want the newer one retained", c.Versions("p"))
	}
	if min, ok := c.MinRecLSN(); !ok || min != 2 {
		t.Errorf("recLSN = %d,%v, want 2 (the unflushed version)", min, ok)
	}
}

func TestMVBreaksDependencyCycle(t *testing.T) {
	// Crosswise dependencies over the newest versions: single-copy
	// FlushAll deadlocks, version-at-a-time drains.
	c, st, lg := newMV()
	lg.Append(model.AssignConst(1, "w", "w1"), 1)
	c.ApplyWrite("w", "w1", 1)
	lg.Append(model.AssignConst(2, "r", "r2"), 1)
	c.ApplyWrite("r", "r2", 2)
	lg.Append(model.AssignConst(3, "w", "w3"), 1)
	c.ApplyWrite("w", "w3", 3)
	// r@2 needs w stable ≥ 1; w@3 needs r stable ≥ 2.
	c.AddDep(Dep{Prereq: "w", PrereqLSN: 1, Dependent: "r", DepLSN: 2})
	c.AddDep(Dep{Prereq: "r", PrereqLSN: 2, Dependent: "w", DepLSN: 3})
	if err := c.FlushAll(); err == nil {
		t.Fatal("single-copy FlushAll should deadlock on the newest versions")
	}
	if err := c.FlushAllBest(); err != nil {
		t.Fatalf("version-at-a-time drain failed: %v", err)
	}
	if got, _ := st.Read("w"); got.LSN != 3 {
		t.Errorf("w ended at LSN %d, want 3", got.LSN)
	}
	if got, _ := st.Read("r"); got.LSN != 2 {
		t.Errorf("r ended at LSN %d, want 2", got.LSN)
	}
}

func TestMVSingleVersionModeUnchanged(t *testing.T) {
	// In a plain manager, FlushBest behaves exactly like Flush.
	st := storage.NewStore()
	lg := wal.NewManager()
	c := NewManager(st, lg)
	lg.Append(model.AssignConst(1, "p", "v1"), 1)
	c.ApplyWrite("p", "v1", 1)
	lg.Append(model.AssignConst(2, "p", "v2"), 1)
	c.ApplyWrite("p", "v2", 2)
	if c.Versions("p") != 1 {
		t.Error("single-version manager retained history")
	}
	if err := c.FlushBest("p"); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Read("p"); got.Data != "v2" {
		t.Error("FlushBest flushed the wrong version")
	}
}

func TestMVCrashDropsVersions(t *testing.T) {
	c, _, lg := newMV()
	lg.Append(model.AssignConst(1, "p", "v1"), 1)
	c.ApplyWrite("p", "v1", 1)
	lg.Append(model.AssignConst(2, "p", "v2"), 1)
	c.ApplyWrite("p", "v2", 2)
	c.Crash()
	if c.Versions("p") != 0 {
		t.Error("versions survived the crash")
	}
}
