// Package cache is the cache manager: the volatile page cache that
// accumulates the effects of multiple operations per page (the write
// graph's Collapse, Section 5.1) and installs them into stable storage by
// flushing pages. Two rules make flushing safe:
//
//   - the WAL gate: a page flush forces the log through the page's LSN
//     first (Section 7);
//   - flush-order dependencies: Section 6.4's "careful write" ordering.
//     A dependency says page B (at or past some LSN) may not be flushed
//     until page A carries at least some LSN in stable storage — the
//     cache-manager form of a write graph edge, e.g. a B-tree split's new
//     page before the old page's truncation.
//
// A crash discards the cache; only flushed pages and the stable log
// survive.
package cache

import (
	"fmt"
	"sort"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/storage"
	"redotheory/internal/wal"
)

// page is a cached page.
type page struct {
	data model.Value
	// pageLSN is the LSN of the last operation that updated the page.
	pageLSN core.LSN
	// recLSN is the LSN of the first operation whose effects on the page
	// are not yet stable — the fuzzy-checkpoint scan bound.
	recLSN core.LSN
	dirty  bool
	// older retains previous unflushed versions (ascending LSN) in
	// multi-version mode; see mv.go.
	older []pageVersion
	// opsSince lists the LSNs of the operations that updated the page
	// since it was last clean — the group-flush closure walks these.
	opsSince []core.LSN
}

// Dep is a flush-order dependency: before the dependent page may be
// flushed while carrying an LSN ≥ DepLSN, the prerequisite page's stable
// LSN must have reached PrereqLSN.
type Dep struct {
	Prereq    model.Var
	PrereqLSN core.LSN
	Dependent model.Var
	DepLSN    core.LSN
}

// Manager is the cache manager.
type Manager struct {
	store *storage.Store
	log   *wal.Manager
	pages map[model.Var]*page
	deps  []Dep
	// EnforceWAL can be cleared by fault injection to demonstrate what
	// breaks without the write-ahead rule.
	EnforceWAL bool
	// Flushes counts page installs.
	Flushes int
	// multiVersion retains older page versions; see NewMVManager.
	multiVersion bool
	// OnInstall, when set, is invoked after every page install with the
	// page and the LSN it was installed at — the online auditor's feed.
	OnInstall func(model.Var, core.LSN)
	// rec is the attached telemetry recorder (nil = disabled): installs
	// are counted and emitted as flush/steal events.
	rec *obs.Recorder
}

// NewManager returns a cache over the given store and log manager.
func NewManager(store *storage.Store, log *wal.Manager) *Manager {
	return &Manager{
		store:      store,
		log:        log,
		pages:      make(map[model.Var]*page),
		EnforceWAL: true,
	}
}

// SetRecorder attaches a telemetry recorder. Pass nil to disable.
func (m *Manager) SetRecorder(rec *obs.Recorder) { m.rec = rec }

// Read returns the current (volatile) value of a page: the cached copy if
// present, else the stable copy.
func (m *Manager) Read(id model.Var) model.Value {
	if p, ok := m.pages[id]; ok {
		return p.data
	}
	p, _ := m.store.Read(id)
	return p.Data
}

// PageLSN returns the volatile LSN tag of a page.
func (m *Manager) PageLSN(id model.Var) core.LSN {
	if p, ok := m.pages[id]; ok {
		return p.pageLSN
	}
	return m.store.PageLSN(id)
}

// ApplyWrite records an operation's write to a page in the cache,
// collapsing it with whatever updates the page already carries — or, in
// multi-version mode, retaining the previous version alongside.
func (m *Manager) ApplyWrite(id model.Var, data model.Value, lsn core.LSN) {
	p, ok := m.pages[id]
	if !ok {
		p = &page{}
		m.pages[id] = p
	}
	if m.multiVersion && p.dirty {
		p.older = append(p.older, pageVersion{data: p.data, lsn: p.pageLSN})
	}
	p.data = data
	p.pageLSN = lsn
	p.opsSince = append(p.opsSince, lsn)
	if !p.dirty {
		p.dirty = true
		p.recLSN = lsn
	}
}

// OpsSince returns the LSNs of the operations that updated the page
// since it was last clean. The slice is shared; callers must not modify
// it.
func (m *Manager) OpsSince(id model.Var) []core.LSN {
	if p, ok := m.pages[id]; ok && p.dirty {
		return p.opsSince
	}
	return nil
}

// AddDep records a flush-order dependency (a write graph edge).
func (m *Manager) AddDep(d Dep) { m.deps = append(m.deps, d) }

// blockedBy returns the first unsatisfied dependency blocking a flush of
// the page at its current volatile LSN, if any.
func (m *Manager) blockedBy(id model.Var, lsn core.LSN) (Dep, bool) {
	for _, d := range m.deps {
		if d.Dependent != id || lsn < d.DepLSN {
			continue
		}
		if m.store.PageLSN(d.Prereq) < d.PrereqLSN {
			return d, true
		}
	}
	return Dep{}, false
}

// CanFlush reports whether the page is dirty and unblocked.
func (m *Manager) CanFlush(id model.Var) bool {
	p, ok := m.pages[id]
	if !ok || !p.dirty {
		return false
	}
	_, blocked := m.blockedBy(id, p.pageLSN)
	return !blocked
}

// Flush installs one page into stable storage: it checks flush-order
// dependencies, forces the log through the page LSN (WAL), writes the
// page atomically with its LSN tag, and marks the cache copy clean.
func (m *Manager) Flush(id model.Var) error {
	p, ok := m.pages[id]
	if !ok || !p.dirty {
		return fmt.Errorf("cache: page %q is not dirty", id)
	}
	if d, blocked := m.blockedBy(id, p.pageLSN); blocked {
		return fmt.Errorf("cache: flush of %q (LSN %d) blocked: %q must first reach stable LSN %d (careful write order)",
			id, p.pageLSN, d.Prereq, d.PrereqLSN)
	}
	if m.EnforceWAL {
		m.log.FlushTo(p.pageLSN)
	} else if err := m.log.RequireStable(p.pageLSN); err != nil {
		// Fault injection: WAL disabled — install anyway, recording the
		// violation by proceeding. The simulator uses this to produce
		// invariant violations on purpose.
		_ = err
	}
	m.store.Write(id, p.data, p.pageLSN)
	p.dirty = false
	p.older = nil
	p.opsSince = nil
	m.Flushes++
	m.rec.Inc(obs.MCacheFlushes)
	m.rec.Emit(obs.Event{Type: obs.EvCacheFlush, Page: string(id), LSN: int64(p.pageLSN)})
	if m.OnInstall != nil {
		m.OnInstall(id, p.pageLSN)
	}
	m.pruneDeps()
	return nil
}

// FlushGroup installs a set of dirty pages in one atomic multi-page
// write (Section 5's atomic multi-variable installation). Dependencies
// whose prerequisite lies inside the group are satisfied by the
// atomicity itself; prerequisites outside the group must already be
// stable. The log is forced through the group's highest LSN first.
func (m *Manager) FlushGroup(ids []model.Var) error {
	group := graph.NewSet(ids...)
	var maxLSN core.LSN
	for _, id := range ids {
		p, ok := m.pages[id]
		if !ok || !p.dirty {
			return fmt.Errorf("cache: group member %q is not dirty", id)
		}
		if p.pageLSN > maxLSN {
			maxLSN = p.pageLSN
		}
		for _, d := range m.deps {
			if d.Dependent != id || p.pageLSN < d.DepLSN || group.Has(d.Prereq) {
				continue
			}
			if m.store.PageLSN(d.Prereq) < d.PrereqLSN {
				return fmt.Errorf("cache: group flush of %v blocked: external prerequisite %q must first reach stable LSN %d", ids, d.Prereq, d.PrereqLSN)
			}
		}
	}
	if m.EnforceWAL {
		m.log.FlushTo(maxLSN)
	}
	pages := make(map[model.Var]storage.Page, len(ids))
	for _, id := range ids {
		p := m.pages[id]
		pages[id] = storage.Page{Data: p.data, LSN: p.pageLSN}
	}
	if err := m.store.WriteGroup(pages); err != nil {
		return fmt.Errorf("cache: group flush: %w", err)
	}
	m.rec.Inc(obs.MCacheGroups)
	for _, id := range ids {
		p := m.pages[id]
		p.dirty = false
		p.older = nil
		p.opsSince = nil
		m.Flushes++
		m.rec.Inc(obs.MCacheFlushes)
		m.rec.Emit(obs.Event{Type: obs.EvCacheFlush, Page: string(id), LSN: int64(p.pageLSN)})
		if m.OnInstall != nil {
			m.OnInstall(id, p.pageLSN)
		}
	}
	m.pruneDeps()
	return nil
}

// pruneDeps drops dependencies whose prerequisite is satisfied in stable
// storage.
func (m *Manager) pruneDeps() {
	kept := m.deps[:0]
	for _, d := range m.deps {
		if m.store.PageLSN(d.Prereq) < d.PrereqLSN {
			kept = append(kept, d)
		}
	}
	m.deps = kept
}

// FlushAll flushes every dirty page, honoring dependencies by iterating
// until a fixed point; it returns an error if blocked pages remain (a
// dependency cycle, which the write graph's acyclicity precludes for
// well-formed histories).
func (m *Manager) FlushAll() error {
	for {
		progressed := false
		for _, id := range m.DirtyPages() {
			if m.CanFlush(id) {
				if err := m.Flush(id); err != nil {
					return err
				}
				progressed = true
			}
		}
		if len(m.DirtyPages()) == 0 {
			return nil
		}
		if !progressed {
			return fmt.Errorf("cache: %d dirty pages permanently blocked: flush dependencies form a cycle", len(m.DirtyPages()))
		}
	}
}

// DirtyPages returns the dirty page ids in sorted order.
func (m *Manager) DirtyPages() []model.Var {
	var out []model.Var
	for id, p := range m.pages {
		if p.dirty {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecLSN returns the recLSN of a page if it is dirty: the LSN of the
// first operation that dirtied it since it was last clean.
func (m *Manager) RecLSN(id model.Var) (core.LSN, bool) {
	p, ok := m.pages[id]
	if !ok || !p.dirty {
		return 0, false
	}
	return p.recLSN, true
}

// MinRecLSN returns the smallest recLSN among dirty pages and true, or 0
// and false when the cache is clean. Fuzzy checkpoints record this as the
// redo scan bound: every operation below it is installed.
func (m *Manager) MinRecLSN() (core.LSN, bool) {
	var min core.LSN
	found := false
	for _, p := range m.pages {
		if p.dirty && (!found || p.recLSN < min) {
			min = p.recLSN
			found = true
		}
	}
	return min, found
}

// Crash discards the cache and all pending dependencies.
func (m *Manager) Crash() {
	m.pages = make(map[model.Var]*page)
	m.deps = nil
}
