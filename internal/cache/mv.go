package cache

import (
	"fmt"

	"redotheory/internal/core"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/storage"
	"redotheory/internal/wal"
)

// Multi-version mode. The paper's state graphs deliberately "permit us
// to consider regimes that maintain multiple versions of variables"
// (Section 1.3): a cache holding one copy per page must collapse every
// operation's update into it, and collapses can create write-order
// cycles — page A may not be flushed past LSN x until B is stable, while
// B may not be flushed past LSN y until A is stable. Retaining older
// page versions dissolves such cycles: the cache can install an *older*
// version of A (below the dependency's LSN), unblocking B, then finish
// A. In write graph terms, keeping versions means not collapsing the
// page's nodes, so the graph stays acyclic.

// pageVersion is a retained older version of a cached page.
type pageVersion struct {
	data model.Value
	lsn  core.LSN
}

// NewMVManager returns a cache manager that retains older versions of
// dirty pages, enabling version-at-a-time installation.
func NewMVManager(store *storage.Store, log *wal.Manager) *Manager {
	m := NewManager(store, log)
	m.multiVersion = true
	return m
}

// MultiVersion reports whether the cache retains older page versions.
func (m *Manager) MultiVersion() bool { return m.multiVersion }

// Versions returns how many unflushed versions of the page the cache
// holds (0 when clean or absent).
func (m *Manager) Versions(id model.Var) int {
	p, ok := m.pages[id]
	if !ok || !p.dirty {
		return 0
	}
	return len(p.older) + 1
}

// candidates lists the page's unflushed versions, newest first.
func (p *page) candidates() []pageVersion {
	out := make([]pageVersion, 0, len(p.older)+1)
	out = append(out, pageVersion{data: p.data, lsn: p.pageLSN})
	for i := len(p.older) - 1; i >= 0; i-- {
		out = append(out, p.older[i])
	}
	return out
}

// bestFlushable returns the newest unblocked version of a dirty page.
func (m *Manager) bestFlushable(id model.Var) (pageVersion, bool) {
	p, ok := m.pages[id]
	if !ok || !p.dirty {
		return pageVersion{}, false
	}
	for _, v := range p.candidates() {
		if _, blocked := m.blockedBy(id, v.lsn); !blocked {
			return v, true
		}
	}
	return pageVersion{}, false
}

// FlushBest installs the newest version of the page whose dependencies
// are satisfied. In single-version mode only the current version is a
// candidate, so FlushBest coincides with Flush. Flushing an older
// version leaves the page dirty with the newer versions retained.
func (m *Manager) FlushBest(id model.Var) error {
	p, ok := m.pages[id]
	if !ok || !p.dirty {
		return fmt.Errorf("cache: page %q is not dirty", id)
	}
	v, ok := m.bestFlushable(id)
	if !ok {
		return fmt.Errorf("cache: every version of %q is blocked by a write-order dependency", id)
	}
	if m.EnforceWAL {
		m.log.FlushTo(v.lsn)
	}
	m.store.Write(id, v.data, v.lsn)
	m.Flushes++
	if v.lsn == p.pageLSN {
		m.rec.Inc(obs.MCacheFlushes)
		m.rec.Emit(obs.Event{Type: obs.EvCacheFlush, Page: string(id), LSN: int64(v.lsn)})
	} else {
		// An older version installed out from under the blocked newest
		// one: the multi-version cache's "steal".
		m.rec.Inc(obs.MCacheSteals)
		m.rec.Emit(obs.Event{Type: obs.EvCacheSteal, Page: string(id), LSN: int64(v.lsn)})
	}
	if m.OnInstall != nil {
		m.OnInstall(id, v.lsn)
	}
	if v.lsn == p.pageLSN {
		p.dirty = false
		p.older = nil
		p.opsSince = nil
	} else {
		// Drop the flushed version and everything older; the oldest
		// retained version's LSN becomes the new recLSN.
		kept := p.older[:0]
		for _, ov := range p.older {
			if ov.lsn > v.lsn {
				kept = append(kept, ov)
			}
		}
		p.older = kept
		if len(p.older) > 0 {
			p.recLSN = p.older[0].lsn
		} else {
			p.recLSN = p.pageLSN
		}
		keptOps := p.opsSince[:0]
		for _, lsn := range p.opsSince {
			if lsn > v.lsn {
				keptOps = append(keptOps, lsn)
			}
		}
		p.opsSince = keptOps
	}
	m.pruneDeps()
	return nil
}

// CanFlushBest reports whether some version of the page is installable.
func (m *Manager) CanFlushBest(id model.Var) bool {
	_, ok := m.bestFlushable(id)
	return ok
}

// FlushAllBest drains the cache version-at-a-time, iterating to a fixed
// point. Unlike FlushAll it succeeds even when the newest versions form
// a dependency cycle, as long as older versions break it.
func (m *Manager) FlushAllBest() error {
	for {
		progressed := false
		for _, id := range m.DirtyPages() {
			if m.CanFlushBest(id) {
				if err := m.FlushBest(id); err != nil {
					return err
				}
				progressed = true
			}
		}
		if len(m.DirtyPages()) == 0 {
			return nil
		}
		if !progressed {
			return fmt.Errorf("cache: %d dirty pages blocked even version-at-a-time", len(m.DirtyPages()))
		}
	}
}
