package cache

import (
	"testing"

	"redotheory/internal/model"
	"redotheory/internal/storage"
	"redotheory/internal/wal"
)

func newCache() (*Manager, *storage.Store, *wal.Manager) {
	st := storage.NewStore()
	lg := wal.NewManager()
	return NewManager(st, lg), st, lg
}

func TestReadThroughAndWriteBack(t *testing.T) {
	c, st, lg := newCache()
	st.Write("p", "stable", 0)
	if c.Read("p") != "stable" {
		t.Error("read-through failed")
	}
	lg.Append(model.AssignConst(1, "p", "v1"), 8)
	c.ApplyWrite("p", "v1", 1)
	if c.Read("p") != "v1" {
		t.Error("cached value not returned")
	}
	if got, _ := st.Read("p"); got.Data != "stable" {
		t.Error("write leaked to stable before flush")
	}
	if err := c.Flush("p"); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Read("p"); got.Data != "v1" || got.LSN != 1 {
		t.Errorf("stable page = %+v", got)
	}
}

func TestFlushForcesWAL(t *testing.T) {
	c, _, lg := newCache()
	lg.Append(model.AssignConst(1, "p", "v1"), 8)
	c.ApplyWrite("p", "v1", 1)
	if lg.StableLSN() != 0 {
		t.Fatal("log unexpectedly stable")
	}
	if err := c.Flush("p"); err != nil {
		t.Fatal(err)
	}
	if lg.StableLSN() < 1 {
		t.Error("flush did not force the log (WAL violation)")
	}
}

func TestFlushWithoutWALEnforcement(t *testing.T) {
	c, st, lg := newCache()
	c.EnforceWAL = false
	lg.Append(model.AssignConst(1, "p", "v1"), 8)
	c.ApplyWrite("p", "v1", 1)
	if err := c.Flush("p"); err != nil {
		t.Fatal(err)
	}
	if lg.StableLSN() != 0 {
		t.Error("fault injection should not force the log")
	}
	if got, _ := st.Read("p"); got.Data != "v1" {
		t.Error("page not installed")
	}
}

func TestRecLSNAndCollapse(t *testing.T) {
	c, _, lg := newCache()
	lg.Append(model.AssignConst(1, "p", "a"), 1)
	c.ApplyWrite("p", "a", 1)
	lg.Append(model.AssignConst(2, "p", "b"), 1)
	c.ApplyWrite("p", "b", 2) // collapse: one cache copy, two ops
	if c.PageLSN("p") != 2 {
		t.Errorf("pageLSN = %d", c.PageLSN("p"))
	}
	min, ok := c.MinRecLSN()
	if !ok || min != 1 {
		t.Errorf("MinRecLSN = %d,%v, want 1", min, ok)
	}
	if err := c.Flush("p"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MinRecLSN(); ok {
		t.Error("clean cache reports a recLSN")
	}
	// Re-dirtying resets recLSN to the new first update.
	lg.Append(model.AssignConst(3, "p", "c"), 1)
	c.ApplyWrite("p", "c", 3)
	if min, _ := c.MinRecLSN(); min != 3 {
		t.Errorf("recLSN after re-dirty = %d, want 3", min)
	}
}

func TestFlushDependencyOrdering(t *testing.T) {
	// Figure 8 shape: new page y (LSN 1) must reach stable storage before
	// old page x may be overwritten at LSN 2.
	c, st, lg := newCache()
	lg.Append(model.AssignConst(1, "y", "newpage"), 1)
	c.ApplyWrite("y", "newpage", 1)
	lg.Append(model.AssignConst(2, "x", "truncated"), 1)
	c.ApplyWrite("x", "truncated", 2)
	c.AddDep(Dep{Prereq: "y", PrereqLSN: 1, Dependent: "x", DepLSN: 2})

	if c.CanFlush("x") {
		t.Error("x flushable before y is stable")
	}
	if err := c.Flush("x"); err == nil {
		t.Fatal("dependency-violating flush accepted")
	}
	if got, _ := st.Read("x"); got.Data != "" {
		t.Error("blocked flush reached stable storage")
	}
	if err := c.Flush("y"); err != nil {
		t.Fatal(err)
	}
	if !c.CanFlush("x") {
		t.Error("x still blocked after y is stable")
	}
	if err := c.Flush("x"); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAllRespectsDeps(t *testing.T) {
	c, st, lg := newCache()
	lg.Append(model.AssignConst(1, "y", "n"), 1)
	c.ApplyWrite("y", "n", 1)
	lg.Append(model.AssignConst(2, "x", "t"), 1)
	c.ApplyWrite("x", "t", 2)
	c.AddDep(Dep{Prereq: "y", PrereqLSN: 1, Dependent: "x", DepLSN: 2})
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if st.PageLSN("x") != 2 || st.PageLSN("y") != 1 {
		t.Error("FlushAll missed a page")
	}
	if len(c.DirtyPages()) != 0 {
		t.Error("dirty pages remain")
	}
}

func TestFlushAllDetectsCycle(t *testing.T) {
	c, _, lg := newCache()
	lg.Append(model.AssignConst(1, "a", "1"), 1)
	c.ApplyWrite("a", "1", 1)
	lg.Append(model.AssignConst(2, "b", "2"), 1)
	c.ApplyWrite("b", "2", 2)
	c.AddDep(Dep{Prereq: "a", PrereqLSN: 1, Dependent: "b", DepLSN: 2})
	c.AddDep(Dep{Prereq: "b", PrereqLSN: 2, Dependent: "a", DepLSN: 1})
	if err := c.FlushAll(); err == nil {
		t.Error("cyclic dependencies not detected")
	}
}

func TestCrashDropsCache(t *testing.T) {
	c, st, lg := newCache()
	st.Write("p", "stable", 0)
	lg.Append(model.AssignConst(1, "p", "dirty"), 1)
	c.ApplyWrite("p", "dirty", 1)
	c.Crash()
	if c.Read("p") != "stable" {
		t.Error("crash kept a dirty page")
	}
	if len(c.DirtyPages()) != 0 {
		t.Error("dirty list survived crash")
	}
}

func TestFlushCleanPageFails(t *testing.T) {
	c, _, _ := newCache()
	if err := c.Flush("nope"); err == nil {
		t.Error("flushed a page that is not dirty")
	}
}

func TestDepPastLSNDoesNotBlockEarlierFlush(t *testing.T) {
	// A dependency at DepLSN 5 must not block flushing the page while it
	// carries only LSN 3.
	c, _, lg := newCache()
	lg.Append(model.AssignConst(1, "x", "v3"), 1)
	c.ApplyWrite("x", "v3", 1)
	c.AddDep(Dep{Prereq: "y", PrereqLSN: 4, Dependent: "x", DepLSN: 5})
	if !c.CanFlush("x") {
		t.Error("dependency for a later LSN blocked an earlier flush")
	}
}
