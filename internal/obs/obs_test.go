package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	r.Inc("x")
	r.Add("x", 5)
	r.SetGauge("g", 1)
	r.Observe("s", 2)
	r.ObserveDuration("d", time.Second)
	r.Emit(Event{Type: EvAdmit})
	r.SetSink(&MemorySink{})
	r.Expvar("obs-nil-test")
	sp := r.StartSpan(PhaseDecide)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span elapsed %v, want 0", d)
	}
	if v := r.CounterValue("x"); v != 0 {
		t.Fatalf("nil recorder counter = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Durations) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	r.Inc(MRedoAdmitted)
	r.Add(MRedoAdmitted, 4)
	r.SetGauge(GPartitionLargest, 7)
	r.SetGauge(GPartitionLargest, 3)
	s := r.Snapshot()
	if got := s.Counter(MRedoAdmitted); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := s.Gauges[GPartitionLargest]; got != 3 {
		t.Fatalf("gauge = %d, want 3 (last write wins)", got)
	}
}

// TestConcurrentCounters exercises one recorder from many goroutines —
// the campaign worker-pool sharing pattern. Run under -race.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc(MReplayRecords)
				r.Observe(MPartitionWidth, int64(i%17))
				r.ObserveDuration("phase.replay", time.Duration(i))
				r.SetGauge(GPartitionLargest, int64(w))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter(MReplayRecords); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := s.Sample(MPartitionWidth).Count; got != workers*per {
		t.Fatalf("sample count = %d, want %d", got, workers*per)
	}
	if got := s.Duration("phase.replay").Count; got != workers*per {
		t.Fatalf("duration count = %d, want %d", got, workers*per)
	}
}

func TestHistPercentilesAndMerge(t *testing.T) {
	h := newHist()
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	// p50 of 1..100 lands in bucket [32,63]; the estimate is the bucket's
	// lower bound.
	if s.P50 < 16 || s.P50 > 64 {
		t.Fatalf("p50 = %d, want within a bucket of 50", s.P50)
	}
	if s.P99 < 64 || s.P99 > 100 {
		t.Fatalf("p99 = %d, want within a bucket of 99", s.P99)
	}

	h2 := newHist()
	for i := 0; i < 1000; i++ {
		h2.Observe(1000)
	}
	s2 := h2.snapshot()
	s.Merge(s2)
	if s.Count != 1100 || s.Max != 1000 || s.Min != 1 {
		t.Fatalf("merged = %+v", s)
	}
	// After the merge the mass sits at 1000.
	if s.P99 < 512 || s.P99 > 1000 {
		t.Fatalf("merged p99 = %d", s.P99)
	}
	var empty HistSnapshot
	if empty.percentile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram percentile/mean must be 0")
	}
	empty.Merge(s)
	if empty.Count != s.Count {
		t.Fatalf("merge into empty lost data: %+v", empty)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := New(), New()
	a.Add(MRedoExamined, 10)
	a.Add(MRedoAdmitted, 4)
	b.Add(MRedoExamined, 10)
	b.Add(MRedoAdmitted, 1)
	b.Observe(MPartitionWidth, 3)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Counter(MRedoExamined); got != 20 {
		t.Fatalf("merged examined = %d", got)
	}
	if got := sa.RedoSelectivity(); got != 0.25 {
		t.Fatalf("merged selectivity = %v, want 0.25", got)
	}
	if got := sa.Sample(MPartitionWidth).Count; got != 1 {
		t.Fatalf("merged width count = %d", got)
	}
	var zero Snapshot
	if zero.RedoSelectivity() != 0 {
		t.Fatal("empty snapshot selectivity must be 0")
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := New()
	sp := r.StartSpan(PhaseDecide)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("elapsed = %v", d)
	}
	h := r.Snapshot().Duration("phase.decide")
	if h.Count != 1 || h.Sum < int64(time.Millisecond/2) {
		t.Fatalf("phase.decide hist = %+v", h)
	}
}

func TestSinkOrderingAndNesting(t *testing.T) {
	r := New()
	sink := &MemorySink{}
	r.SetSink(sink)
	outer := r.StartSpan(PhaseRecover)
	inner := r.StartSpan(PhaseAnalysis)
	r.Emit(Event{Type: EvAdmit, LSN: 3, Op: "op", Verdict: "admit"})
	inner.End()
	outer.End()

	events := sink.Events()
	if len(events) != 5 {
		t.Fatalf("got %d events: %v", len(events), events)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: %v", i, e.Seq, events)
		}
	}
	if err := CheckSpanNesting(events); err != nil {
		t.Fatal(err)
	}

	// Misnested stream: ends in the wrong order.
	bad := []Event{
		{Type: EvSpanBegin, Phase: PhaseDecide},
		{Type: EvSpanBegin, Phase: PhaseAnalysis},
		{Type: EvSpanEnd, Phase: PhaseDecide},
	}
	if err := CheckSpanNesting(bad); err == nil {
		t.Fatal("misnested spans not detected")
	}
	if err := CheckSpanNesting([]Event{{Type: EvSpanEnd, Phase: PhaseScan}}); err == nil {
		t.Fatal("stray span-end not detected")
	}
	if err := CheckSpanNesting([]Event{{Type: EvSpanBegin, Phase: PhaseScan}}); err == nil {
		t.Fatal("unclosed span not detected")
	}
}

func TestEventString(t *testing.T) {
	for _, e := range []Event{
		{Seq: 1, Type: EvSpanBegin, Phase: PhaseScan},
		{Seq: 2, Type: EvSpanEnd, Phase: PhaseScan, Dur: time.Millisecond},
		{Seq: 3, Type: EvAdmit, LSN: 9, Op: "w(x)", Verdict: "admit"},
		{Seq: 4, Type: EvCacheFlush, Page: "p1", LSN: 4},
		{Seq: 5, Type: EvWALForce, LSN: 12},
		{Seq: 6, Type: EvDetection, Detail: "corrupt-page: p2"},
	} {
		if e.String() == "" {
			t.Fatalf("empty rendering for %+v", e)
		}
	}
}
