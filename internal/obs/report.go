package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// SchemaV1 identifies the metrics report format. Bump on any breaking
// change to the JSON shape; cmd/redostats -check pins it.
const SchemaV1 = "redotheory/metrics/v1"

// Report is the on-disk metrics artifact: what `redosim -metrics`
// writes, `redostats` renders, and the CI schema smoke test validates.
type Report struct {
	Schema      string               `json:"schema"`
	GeneratedAt string               `json:"generated_at"`
	// Source names the producing command and mode (e.g. "redosim -campaign").
	Source  string               `json:"source"`
	Methods map[string]*Snapshot `json:"methods"`
	// Totals is the merge of every method's snapshot.
	Totals *Snapshot `json:"totals"`
}

// NewReport assembles a report from per-method snapshots, computing
// Totals.
func NewReport(source string, methods map[string]Snapshot) *Report {
	rep := &Report{
		Schema:      SchemaV1,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Source:      source,
		Methods:     make(map[string]*Snapshot, len(methods)),
		Totals:      &Snapshot{},
	}
	for name, s := range methods {
		s := s
		rep.Methods[name] = &s
		rep.Totals.Merge(s)
	}
	return rep
}

// phaseKeys are the duration keys every fully-observed method must
// carry: the six stages of the instrumented recovery pipeline.
var phaseKeys = []string{
	"phase." + string(PhaseScan),
	"phase." + string(PhaseAnalysis),
	"phase." + string(PhaseDecide),
	"phase." + string(PhasePartition),
	"phase." + string(PhaseReplay),
	"phase." + string(PhaseMerge),
}

// requiredCounters must be present (possibly zero-valued) per method.
var requiredCounters = []string{MRedoExamined, MRedoAdmitted, MRedoSkipped}

// Validate checks the report against the v1 schema contract: schema tag,
// timestamp, at least one method, per-method phase-time keys and redo
// counters, and a partition width histogram in the totals. It returns
// every problem found, joined, so a failing CI run names all the missing
// keys at once.
func (r *Report) Validate() error {
	var probs []string
	if r.Schema != SchemaV1 {
		probs = append(probs, fmt.Sprintf("schema is %q, want %q", r.Schema, SchemaV1))
	}
	if r.GeneratedAt == "" {
		probs = append(probs, "generated_at is empty")
	}
	if len(r.Methods) == 0 {
		probs = append(probs, "no methods")
	}
	for _, name := range r.MethodNames() {
		s := r.Methods[name]
		if s == nil {
			probs = append(probs, fmt.Sprintf("method %q: nil snapshot", name))
			continue
		}
		for _, c := range requiredCounters {
			if _, ok := s.Counters[c]; !ok {
				probs = append(probs, fmt.Sprintf("method %q: missing counter %q", name, c))
			}
		}
		for _, k := range phaseKeys {
			if _, ok := s.Durations[k]; !ok {
				probs = append(probs, fmt.Sprintf("method %q: missing phase duration %q", name, k))
			}
		}
		probs = append(probs, snapshotSanity(fmt.Sprintf("method %q", name), s)...)
	}
	if r.Totals == nil {
		probs = append(probs, "missing totals")
	} else {
		if _, ok := r.Totals.Samples[MPartitionWidth]; !ok {
			probs = append(probs, fmt.Sprintf("totals: missing sample histogram %q", MPartitionWidth))
		}
		probs = append(probs, snapshotSanity("totals", r.Totals)...)
	}
	if len(probs) != 0 {
		sort.Strings(probs)
		return fmt.Errorf("obs: invalid metrics report:\n  %s", joinLines(probs))
	}
	return nil
}

// snapshotSanity runs the structural histogram checks over every
// histogram in the snapshot and flags negative counters: a live Recorder
// can produce none of these, so each finding identifies a corrupt or
// hand-edited report rather than a schema-version gap.
func snapshotSanity(where string, s *Snapshot) []string {
	var probs []string
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if s.Counters[k] < 0 {
			probs = append(probs, fmt.Sprintf("%s: counter %q is negative (%d)", where, k, s.Counters[k]))
		}
	}
	for label, hists := range map[string]map[string]HistSnapshot{"duration": s.Durations, "sample": s.Samples} {
		names := make([]string, 0, len(hists))
		for k := range hists {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h := hists[k]
			for _, p := range h.sanity() {
				probs = append(probs, fmt.Sprintf("%s: %s histogram %q: %s", where, label, k, p))
			}
		}
	}
	return probs
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// MethodNames returns the report's method names, sorted.
func (r *Report) MethodNames() []string {
	out := make([]string, 0, len(r.Methods))
	for m := range r.Methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding metrics report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing metrics report: %w", err)
	}
	return nil
}

// ReadReportFile loads a metrics report from disk (without validating —
// call Validate for the schema check).
func ReadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading metrics report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: decoding metrics report %s: %w", path, err)
	}
	// JSON "null" (or an empty object) decodes without error into a zero
	// report; reject it here so a truncated-then-padded or wrong file
	// yields a decode error, never a zero-value report that might render.
	if r.Schema == "" && len(r.Methods) == 0 && r.Totals == nil {
		return nil, fmt.Errorf("obs: %s is not a %s report (no schema, methods, or totals)", path, SchemaV1)
	}
	return &r, nil
}

// RenderTable writes the per-method phase-time/selectivity table — the
// cmd/redostats default view. Phase columns show total time spent in the
// phase across all observed recoveries.
func (r *Report) RenderTable(out io.Writer) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tscan\tanalysis\tdecide\tpartition\treplay\tmerge\tselectivity\tadmit/examined\twidth p50/p99/max")
	for _, name := range r.MethodNames() {
		s := r.Methods[name]
		if s == nil {
			continue
		}
		fmt.Fprintf(w, "%s", name)
		for _, k := range phaseKeys {
			fmt.Fprintf(w, "\t%s", fmtTotalNs(s.Duration(k)))
		}
		fmt.Fprintf(w, "\t%.3f", s.RedoSelectivity())
		fmt.Fprintf(w, "\t%d/%d", s.Counter(MRedoAdmitted), s.Counter(MRedoExamined))
		if wh, ok := s.Samples[MPartitionWidth]; ok && wh.Count > 0 {
			fmt.Fprintf(w, "\t%d/%d/%d", wh.P50, wh.P99, wh.Max)
		} else {
			fmt.Fprintf(w, "\t-")
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// cacheLines pairs each cache's hit/miss counter keys for rendering.
var cacheLines = []struct {
	name, hits, misses string
}{
	{"log view", MViewHits, MViewMisses},
	{"op graphs", MGraphHits, MGraphMisses},
}

// RenderCaches writes the campaign-wide memoization counters: hits,
// misses, and hit rate for the log-view and operation-graph caches.
// Reports produced before the cache counters existed render as "-".
func (r *Report) RenderCaches(out io.Writer) {
	if r.Totals == nil {
		return
	}
	fmt.Fprintln(out, "caches:")
	for _, c := range cacheLines {
		_, hOK := r.Totals.Counters[c.hits]
		_, mOK := r.Totals.Counters[c.misses]
		if !hOK && !mOK {
			fmt.Fprintf(out, "  %-10s  -\n", c.name)
			continue
		}
		hits, misses := r.Totals.Counter(c.hits), r.Totals.Counter(c.misses)
		total := hits + misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(hits) / float64(total)
		}
		fmt.Fprintf(out, "  %-10s  %d hits / %d misses (%.1f%% hit rate)\n", c.name, hits, misses, rate)
	}
}

// PhaseTotal is one method's total time in one pipeline phase — a row
// of the redostats -top view over metrics reports.
type PhaseTotal struct {
	Method string
	Phase  string
	Total  time.Duration
}

// SlowestPhases returns every (method, phase) total sorted
// slowest-first.
func (r *Report) SlowestPhases() []PhaseTotal {
	var rows []PhaseTotal
	for _, name := range r.MethodNames() {
		s := r.Methods[name]
		if s == nil {
			continue
		}
		for _, k := range phaseKeys {
			rows = append(rows, PhaseTotal{
				Method: name,
				Phase:  strings.TrimPrefix(k, "phase."),
				Total:  time.Duration(s.Duration(k).Sum),
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Total > rows[j].Total })
	return rows
}

// RenderWidths writes the campaign-wide partition width histogram as a
// bucketed bar chart.
func (r *Report) RenderWidths(out io.Writer) {
	if r.Totals == nil {
		return
	}
	wh, ok := r.Totals.Samples[MPartitionWidth]
	if !ok || wh.Count == 0 {
		fmt.Fprintln(out, "partition widths: (no components observed)")
		return
	}
	fmt.Fprintf(out, "partition widths (%d components, p50=%d p99=%d max=%d):\n",
		wh.Count, wh.P50, wh.P99, wh.Max)
	var peak int64
	for _, n := range wh.Buckets {
		if n > peak {
			peak = n
		}
	}
	if peak <= 0 {
		// Corrupt reports can carry a positive count with empty or
		// negative buckets; Validate flags them, rendering just declines.
		fmt.Fprintln(out, "  (histogram buckets are empty or corrupt)")
		return
	}
	for i, n := range wh.Buckets {
		if n <= 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		bar := int(n * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(out, "  %10s  %6d  %s\n", fmtRange(lo, hi), n, bars(bar))
	}
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (int64, int64) {
	if i == 0 {
		return 0, 0
	}
	lo := int64(1) << (i - 1)
	return lo, lo*2 - 1
}

func fmtRange(lo, hi int64) string {
	if lo == hi {
		return fmt.Sprint(lo)
	}
	return fmt.Sprintf("%d–%d", lo, hi)
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// fmtTotalNs renders a duration histogram's total as a human duration.
func fmtTotalNs(h HistSnapshot) string {
	return time.Duration(h.Sum).Round(time.Microsecond).String()
}
