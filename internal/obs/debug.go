package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// This file is the live side of the telemetry layer: an HTTP endpoint a
// long-running campaign or benchmark exposes behind -debug.addr, serving
// net/http/pprof (CPU/heap/goroutine profiling of recovery in flight),
// expvar, and the current metrics snapshot as JSON.

// Expvar publishes the recorder's live snapshot under the given expvar
// name. Publishing the same name twice is a no-op (expvar panics on
// duplicates; telemetry must not take the process down).
func (r *Recorder) Expvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// NewDebugMux builds the debug HTTP handler: /debug/pprof/*,
// /debug/vars (expvar), and /metrics serving whatever the snapshot
// function returns, as JSON. snap may be nil, in which case /metrics
// serves an empty object.
func NewDebugMux(snap func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if snap != nil {
			v = snap()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	return mux
}

// ServeDebug listens on addr and serves the debug mux in a background
// goroutine, returning the bound address (useful with ":0"). The server
// lives until the process exits; callers wanting a managed lifecycle use
// the returned *http.Server.
func ServeDebug(addr string, snap func() any) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewDebugMux(snap)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
