package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count: bucket 0 holds values ≤ 0, bucket k
// (k ≥ 1) holds values in [2^(k-1), 2^k). 64 buckets cover all of int64.
const histBuckets = 64

// Hist is a fixed power-of-two histogram with atomic buckets: every
// Observe is a handful of atomic operations, so histograms are shared
// across goroutines without locks. Percentiles are approximate (bucket
// lower bound, clamped by the observed min/max), which is plenty for
// phase-time breakdowns and width distributions.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHist() *Hist {
	h := &Hist{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1 → 1, 2..3 → 2, 4..7 → 3, …
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// snapshot freezes the histogram. The loads are not mutually atomic; a
// snapshot taken concurrently with observations is approximate, which is
// the contract for telemetry reads.
func (h *Hist) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	last := -1
	var raw [histBuckets]int64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), raw[:last+1]...)
	}
	s.refresh()
	return s
}

// HistSnapshot is the JSON-ready frozen form of a Hist. Buckets are
// trailing-trimmed; bucket k covers [2^(k-1), 2^k) with bucket 0 for
// values ≤ 0. P50/P99 are recomputed by refresh after any merge.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min,omitempty"`
	Max     int64   `json:"max,omitempty"`
	P50     int64   `json:"p50"`
	P99     int64   `json:"p99"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Merge folds another snapshot into this one and refreshes percentiles.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		// Copy the bucket slice: adopting o's backing array would let a
		// later Merge into s mutate the donor snapshot in place.
		s.Buckets = append([]int64(nil), o.Buckets...)
		return
	}
	s.Sum += o.Sum
	s.Count += o.Count
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(o.Buckets) > len(s.Buckets) {
		s.Buckets = append(s.Buckets, make([]int64, len(o.Buckets)-len(s.Buckets))...)
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.refresh()
}

// refresh recomputes P50/P99 from the buckets.
func (s *HistSnapshot) refresh() {
	s.P50 = s.percentile(0.50)
	s.P99 = s.percentile(0.99)
}

// percentile returns the approximate p-th percentile: the lower bound of
// the bucket holding the nearest-rank observation, clamped to the
// observed [Min, Max]. Returns 0 on an empty histogram.
func (s *HistSnapshot) percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			v := int64(0)
			if i >= 1 {
				v = int64(1) << (i - 1)
			}
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// sanity reports every structural problem with the snapshot — a
// recorder can only produce sane snapshots, so any finding means the
// value came from a corrupt or hand-edited report file. Report.Validate
// runs it over every histogram so cmd/redostats -check fails corrupt
// inputs with a schema error instead of rendering garbage.
func (s *HistSnapshot) sanity() []string {
	var probs []string
	if s.Count < 0 {
		probs = append(probs, fmt.Sprintf("negative observation count %d", s.Count))
	}
	if len(s.Buckets) > histBuckets {
		probs = append(probs, fmt.Sprintf("%d buckets, max %d", len(s.Buckets), histBuckets))
	}
	var total int64
	for i, n := range s.Buckets {
		if n < 0 {
			probs = append(probs, fmt.Sprintf("bucket %d holds negative count %d", i, n))
		}
		total += n
	}
	if s.Count > 0 {
		if len(s.Buckets) == 0 {
			probs = append(probs, fmt.Sprintf("count %d but no buckets", s.Count))
		} else if total != s.Count {
			probs = append(probs, fmt.Sprintf("buckets sum to %d, count says %d", total, s.Count))
		}
		if s.Min > s.Max {
			probs = append(probs, fmt.Sprintf("min %d exceeds max %d", s.Min, s.Max))
		}
	}
	return probs
}

// Mean returns the histogram's mean (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
