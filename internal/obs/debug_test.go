package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	r := New()
	r.Add(MRedoExamined, 7)
	r.Expvar("obs-debug-test")
	r.Expvar("obs-debug-test") // duplicate publish must not panic

	srv, addr, err := ServeDebug("127.0.0.1:0", func() any {
		return map[string]Snapshot{"m": r.Snapshot()}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var metrics map[string]Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &metrics); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if metrics["m"].Counter(MRedoExamined) != 7 {
		t.Fatalf("/metrics snapshot = %+v", metrics)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "obs-debug-test") {
		t.Fatalf("/debug/vars missing published recorder:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index:\n%s", body)
	}
}

func TestDebugMuxNilSnapshot(t *testing.T) {
	srv, addr, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
