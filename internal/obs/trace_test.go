package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentEmitTotalOrder is the tracing concurrency property test
// (run under -race in CI): many workers emitting span and point events
// through one recorder must produce a gaplessly sequenced stream whose
// component spans — begun and ended by distinct goroutines' schedules
// interleaving — still reconstruct into the correct causal tree.
func TestConcurrentEmitTotalOrder(t *testing.T) {
	const workers = 8
	const spansPerWorker = 25

	r := New()
	sink := &MemorySink{}
	r.SetSink(sink)
	root := r.StartRootSpan(PhaseRecover, "concurrent property test")
	rootID := root.SpanID()
	replay := r.StartSpanInfo(PhaseReplay, SpanInfo{})
	replayID := replay.SpanID()

	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < spansPerWorker; i++ {
				sp := r.StartSpanWith(PhaseComponent, replayID, SpanInfo{
					Comp:   fmt.Sprintf("w%d-c%d", worker, i),
					Worker: worker,
					Size:   i + 1,
				})
				r.Emit(Event{Type: EvAdmit, LSN: int64(i), Worker: worker})
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	replay.End()
	root.End()
	r.SetSink(nil)

	events := sink.Events()
	// trace-begin + recover begin/end + replay begin/end + per worker span
	// begin/end and one point event.
	want := 5 + workers*spansPerWorker*3
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}

	// Property 1: the sequence is a gapless total order.
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: emission order and sequence diverge", i, e.Seq)
		}
	}

	// Property 2: the stream is well-formed as a span forest.
	if err := CheckSpanNesting(events); err != nil {
		t.Fatal(err)
	}

	// Property 3: every component span reconstructs — one begin and one
	// end with the same id, parented under the replay span, attributed to
	// its worker, begin before end in the total order.
	type spanRec struct {
		begin, end *Event
	}
	comps := map[uint64]*spanRec{}
	for i := range events {
		e := &events[i]
		if e.Phase != PhaseComponent || e.Span == 0 {
			continue
		}
		s := comps[e.Span]
		if s == nil {
			s = &spanRec{}
			comps[e.Span] = s
		}
		switch e.Type {
		case EvSpanBegin:
			if s.begin != nil {
				t.Fatalf("span %d begun twice", e.Span)
			}
			s.begin = e
		case EvSpanEnd:
			if s.end != nil {
				t.Fatalf("span %d ended twice", e.Span)
			}
			s.end = e
		}
	}
	if len(comps) != workers*spansPerWorker {
		t.Fatalf("reconstructed %d component spans, want %d", len(comps), workers*spansPerWorker)
	}
	perWorker := map[int]int{}
	for id, s := range comps {
		if s.begin == nil || s.end == nil {
			t.Fatalf("span %d is missing its begin or end", id)
		}
		if s.begin.Parent != replayID {
			t.Fatalf("span %d parent = %d, want replay span %d", id, s.begin.Parent, replayID)
		}
		if s.begin.Seq >= s.end.Seq {
			t.Fatalf("span %d ends (seq %d) before it begins (seq %d)", id, s.end.Seq, s.begin.Seq)
		}
		if s.begin.Worker < 1 || s.begin.Worker > workers {
			t.Fatalf("span %d attributed to worker %d", id, s.begin.Worker)
		}
		if s.begin.Comp == "" || s.begin.Size == 0 {
			t.Fatalf("span %d lost its attribution: %+v", id, s.begin)
		}
		perWorker[s.begin.Worker]++
	}
	for w := 1; w <= workers; w++ {
		if perWorker[w] != spansPerWorker {
			t.Fatalf("worker %d contributed %d spans, want %d", w, perWorker[w], spansPerWorker)
		}
	}
	if events[0].Type != EvTraceBegin {
		t.Fatalf("stream opens with %s, want %s", events[0].Type, EvTraceBegin)
	}
	if events[1].Span != rootID || events[1].Parent != 0 {
		t.Fatalf("root span event %+v, want span %d with no parent", events[1], rootID)
	}
}

// TestEmitBatchSequencesAtomically: a batch occupies consecutive
// sequence numbers even with concurrent emitters, shares one stamped
// timestamp, preserves preset timestamps, and is a no-op without a
// sink — the hot replay loop leans on all four.
func TestEmitBatchSequencesAtomically(t *testing.T) {
	r := New()
	var none *Recorder
	none.EmitBatch([]Event{{Type: EvAdmit}}) // nil recorder is free
	r.EmitBatch([]Event{{Type: EvAdmit}})    // no sink attached: dropped

	sink := &MemorySink{}
	r.SetSink(sink)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]Event, 3)
			for i := 0; i < 50; i++ {
				buf[0] = Event{Type: EvSpanBegin, Phase: PhaseAnalysis}
				buf[1] = Event{Type: EvSpanEnd, Phase: PhaseAnalysis}
				buf[2] = Event{Type: EvAdmit, LSN: int64(i), TS: 7}
				r.EmitBatch(buf)
			}
		}()
	}
	wg.Wait()
	r.SetSink(nil)

	events := sink.Events()
	if len(events) != 4*50*3 {
		t.Fatalf("got %d events, want %d", len(events), 4*50*3)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: batches interleaved", i, e.Seq)
		}
	}
	// Batches are contiguous: every admit directly follows its span pair,
	// and the pair shares one timestamp while the preset TS survives.
	for i := 0; i < len(events); i += 3 {
		if events[i].Type != EvSpanBegin || events[i+1].Type != EvSpanEnd || events[i+2].Type != EvAdmit {
			t.Fatalf("batch at %d split: %v %v %v", i, events[i].Type, events[i+1].Type, events[i+2].Type)
		}
		if events[i].TS != events[i+1].TS {
			t.Fatalf("batch at %d stamped two timestamps", i)
		}
		if events[i+2].TS != 7 {
			t.Fatalf("preset TS overwritten: %d", events[i+2].TS)
		}
	}
}

// TestSetSinkResetsAmbient: attaching a sink is a trace boundary — a
// span id stranded on the ambient stack by a panicking recovery must
// not become the parent of the next trace's spans.
func TestSetSinkResetsAmbient(t *testing.T) {
	r := New()
	first := &MemorySink{}
	r.SetSink(first)
	_ = r.StartSpan(PhaseDecide) // never ended, as after a panic
	second := &MemorySink{}
	r.SetSink(second)
	sp := r.StartRootSpan(PhaseRecover, "fresh trace")
	sp.End()
	r.SetSink(nil)

	events := second.Events()
	if events[0].Type != EvTraceBegin {
		t.Fatalf("fresh trace opens with %s, want %s", events[0].Type, EvTraceBegin)
	}
	if events[1].Parent != 0 {
		t.Fatalf("fresh root span inherited stranded parent %d", events[1].Parent)
	}
}
