package obs

import (
	"fmt"
	"sync"
)

// FlightSchemaV1 identifies the flight-recorder dump format.
const FlightSchemaV1 = "redotheory/flight/v1"

const (
	// defaultFlightCapacity bounds the ring when NewFlightRecorder is
	// given a non-positive capacity.
	defaultFlightCapacity = 256
	// maxFlightSnapshots bounds how many preserved crash snapshots a
	// recorder keeps; older ones are dropped first, because the most
	// recent attempts are the ones a post-mortem needs.
	maxFlightSnapshots = 8
	// flightSnapshotTail bounds each preserved snapshot to the tail of
	// the ring at preservation time.
	flightSnapshotTail = 64
)

// FlightRecorder is a bounded ring-buffer event sink that survives
// nested crashes: it keeps the last N events of the stream, and the
// supervisor calls Preserve at each crash point to freeze the tail of
// the ring into a labeled snapshot before the next attempt overwrites
// it. On terminal failure Dump packages the snapshots plus the final
// ring into a redotheory/flight/v1 artifact.
//
// Memory is bounded by construction — capacity ring slots plus at most
// maxFlightSnapshots×flightSnapshotTail snapshot events — so the
// recorder is safe to leave attached for the whole life of a campaign.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
	snaps []FlightSnapshot
	// dropped counts snapshots discarded to stay under maxFlightSnapshots.
	droppedSnaps int
}

// FlightSnapshot is the tail of the ring frozen at one crash point.
type FlightSnapshot struct {
	Label  string  `json:"label"`
	Events []Event `json:"events"`
}

// FlightDump is the terminal-failure artifact: everything the flight
// recorder still holds, ready for JSON export or attachment to a fuzz
// repro artifact.
type FlightDump struct {
	Schema string `json:"schema"`
	// Capacity is the ring size; Total counts every event ever seen, so
	// Total − len(Events) is how many the ring dropped.
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total_events"`
	// DroppedSnapshots counts crash snapshots aged out of the bound.
	DroppedSnapshots int              `json:"dropped_snapshots,omitempty"`
	Snapshots        []FlightSnapshot `json:"snapshots,omitempty"`
	// Events is the final ring contents in emission order.
	Events []Event `json:"events"`
}

// NewFlightRecorder returns a flight recorder holding the last capacity
// events (defaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]Event, capacity)}
}

// Emit stores the event in the ring, overwriting the oldest when full.
func (f *FlightRecorder) Emit(e Event) {
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.total++
	f.mu.Unlock()
}

// ring returns the ring contents in emission order. Caller holds f.mu.
func (f *FlightRecorder) ring() []Event {
	if !f.full {
		return append([]Event(nil), f.buf[:f.next]...)
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Events returns a copy of the ring contents in emission order.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring()
}

// Len reports how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.buf)
	}
	return f.next
}

// Preserve freezes the tail of the ring into a labeled snapshot — the
// supervisor calls it at each nested crash so the events leading into
// the crash outlive the next attempt's traffic. Snapshots beyond the
// bound age out oldest-first.
func (f *FlightRecorder) Preserve(label string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	events := f.ring()
	if len(events) > flightSnapshotTail {
		events = append([]Event(nil), events[len(events)-flightSnapshotTail:]...)
	}
	f.snaps = append(f.snaps, FlightSnapshot{Label: label, Events: events})
	if len(f.snaps) > maxFlightSnapshots {
		drop := len(f.snaps) - maxFlightSnapshots
		f.snaps = append([]FlightSnapshot(nil), f.snaps[drop:]...)
		f.droppedSnaps += drop
	}
}

// Dump packages the preserved snapshots and the final ring into a
// flight/v1 artifact. The recorder keeps recording afterwards.
func (f *FlightRecorder) Dump() *FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := &FlightDump{
		Schema:           FlightSchemaV1,
		Capacity:         len(f.buf),
		Total:            f.total,
		DroppedSnapshots: f.droppedSnaps,
		Events:           f.ring(),
	}
	if len(f.snaps) > 0 {
		d.Snapshots = make([]FlightSnapshot, len(f.snaps))
		for i, s := range f.snaps {
			d.Snapshots[i] = FlightSnapshot{Label: s.Label, Events: append([]Event(nil), s.Events...)}
		}
	}
	return d
}

// Validate checks the dump's internal consistency: the schema tag, the
// capacity bound, and that every event slice is ordered by Seq (events
// within one slice came from one recorder stream).
func (d *FlightDump) Validate() error {
	if d == nil {
		return fmt.Errorf("obs: nil flight dump")
	}
	if d.Schema != FlightSchemaV1 {
		return fmt.Errorf("obs: flight dump schema %q, want %q", d.Schema, FlightSchemaV1)
	}
	if d.Capacity <= 0 {
		return fmt.Errorf("obs: flight dump capacity %d", d.Capacity)
	}
	if len(d.Events) > d.Capacity {
		return fmt.Errorf("obs: flight dump holds %d events over capacity %d", len(d.Events), d.Capacity)
	}
	if uint64(len(d.Events)) > d.Total {
		return fmt.Errorf("obs: flight dump holds %d events but claims only %d were seen", len(d.Events), d.Total)
	}
	if err := seqOrdered("ring", d.Events); err != nil {
		return err
	}
	for _, s := range d.Snapshots {
		if err := seqOrdered("snapshot "+s.Label, s.Events); err != nil {
			return err
		}
	}
	return nil
}

// seqOrdered checks strictly-increasing sequence numbers.
func seqOrdered(what string, events []Event) error {
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			return fmt.Errorf("obs: flight dump %s: seq %d follows %d", what, events[i].Seq, events[i-1].Seq)
		}
	}
	return nil
}
