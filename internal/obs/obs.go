// Package obs is the recovery telemetry layer: typed atomic metrics, a
// structured recovery event stream, and snapshot/export plumbing, with
// zero dependencies beyond the standard library and negligible cost when
// disabled.
//
// The unit of instrumentation is the Recorder. A nil *Recorder is the
// disabled state: every method is nil-safe and free, so instrumented
// code threads one recorder pointer through unconditionally and never
// branches on "is telemetry on". A non-nil Recorder collects three kinds
// of data:
//
//   - Metrics: counters, gauges, and power-of-two histograms (durations
//     in nanoseconds, plain integer samples). All metric updates are
//     single atomic operations after first touch, so a Recorder may be
//     shared freely across goroutines — the parallel replay workers and
//     concurrent campaign cells increment the same recorder race-free.
//
//   - Events: when a Sink is attached (SetSink), the recorder emits a
//     globally-ordered structured event stream — phase span begin/end,
//     per-record redo-test verdicts (admit/skip with the reason), cache
//     flush/steal installs, WAL forces, and degraded-recovery integrity
//     detections. With no sink attached, emission is a nil check.
//
//   - Spans: StartSpan/End wrap a recovery phase; End both observes the
//     duration into the phase's histogram and emits the span events.
//     The phases mirror the paper's abstract recover procedure (see
//     DESIGN.md §9): scan, analysis, decide, partition, replay, merge.
//
// Snapshot() freezes everything into a JSON-ready, mergeable value;
// Report (report.go) is the on-disk schema cmd/redostats renders and
// validates; ServeDebug (debug.go) exposes live snapshots, expvar, and
// net/http/pprof for profiling long campaigns in flight.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names a stage of the recovery procedure. The six stages cover
// both engines: sequential recovery (Figure 6) runs scan/analysis/replay
// interleaved; the partitioned engine runs decide (containing scan and
// analysis), partition, replay, merge.
type Phase string

const (
	// PhaseScan is log-record iteration plus the redo test itself.
	PhaseScan Phase = "scan"
	// PhaseAnalysis is time inside the method's analysis function.
	PhaseAnalysis Phase = "analysis"
	// PhaseDecide is the whole decision phase (scan + analysis, no
	// application) — core.DecideRedo.
	PhaseDecide Phase = "decide"
	// PhasePartition is interference-closure planning over the redo set.
	PhasePartition Phase = "partition"
	// PhaseReplay is operation re-application: sequential replay, the
	// parallel worker pool, or degraded recovery's conservative replay.
	PhaseReplay Phase = "replay"
	// PhaseMerge is folding the workers' disjoint overlays into the state.
	PhaseMerge Phase = "merge"
	// PhaseRecover is the umbrella span around a whole sequential
	// recovery (its scan/analysis/replay children nest inside it).
	PhaseRecover Phase = "recover"
	// PhaseComponent is one interference component replayed by a worker
	// of the parallel engine — the unit straggler analysis attributes
	// replay time to. Its begin event carries Comp/Worker/Size/WriteN.
	PhaseComponent Phase = "component"
	// PhaseSupervise is the umbrella span around a whole supervised
	// recovery (attempts and their nested engine spans inside it).
	PhaseSupervise Phase = "supervise"
	// PhaseAttempt is one supervised-recovery attempt (Comp carries
	// "attempt<n>/<rung>").
	PhaseAttempt Phase = "attempt"
	// PhaseInstall is one fuzzy-checkpointed install batch inside an
	// installing attempt.
	PhaseInstall Phase = "install"
	// PhaseLazyRedo is one interference component recovered on demand by
	// the serve engine — the unit of instant-restart work a client touch
	// (or the background sweeper) triggers. Its begin event carries
	// Comp/Size/WriteN like PhaseComponent.
	PhaseLazyRedo Phase = "lazyredo"
	// PhaseShardRecover is one whole sharded recovery (internal/shard):
	// cut computation plus every shard's per-shard recovery.
	PhaseShardRecover Phase = "shardrecover"
	// PhaseCut is the certified-cut computation over the shards' stable
	// logs (transaction-table scan plus frontier retreat).
	PhaseCut Phase = "cut"
	// PhaseShardReplay is one shard's recovery inside a sharded
	// recovery, annotated with the shard index as its component.
	PhaseShardReplay Phase = "shardreplay"
)

// Metric names recorded by the instrumented packages. Durations land
// under "phase.<name>" via Span; everything here is a counter unless
// noted.
const (
	// Decision-phase counters (core.DecideRedo / core.Recover).
	MRedoExamined     = "redo.examined"      // records the redo test saw
	MRedoAdmitted     = "redo.admitted"      // redo test said replay
	MRedoSkipped      = "redo.skipped"       // redo test said installed
	MRedoCheckpointed = "redo.checkpointed"  // skipped via checkpoint set
	MReplayRecords    = "replay.records"     // operations actually re-applied
	MReplayComponents = "replay.components"  // components replayed
	MPartitionPlans   = "partition.plans"    // partition plans built
	MPartitionWidth   = "partition.width"    // sample histogram: records per component
	GPartitionLargest = "partition.largest"  // gauge: widest component of the last plan
	MDegradedRuns     = "degraded.replays"   // conservative full-replay passes
	MDetections       = "degraded.detections" // integrity detections observed

	// Supervised-recovery counters (internal/supervise).
	MSupAttempts    = "supervise.attempts"             // recovery attempts started
	MSupCrashes     = "supervise.nested_crashes"       // injected crashes survived mid-recovery
	MSupTransient   = "supervise.transient_faults"     // attempts aborted by a transient install fault
	MSupCheckpoints = "supervise.progress_checkpoints" // fuzzy progress checkpoints appended
	MSupEscalations = "supervise.escalations"          // degradation-ladder rung changes
	MSupConverged   = "supervise.converged"            // supervised recoveries that reached fixed point
	MSupInstalls    = "supervise.installs"             // operations installed across all attempts
	MSupBackoff     = "supervise.backoff"              // duration histogram: backoff slept between attempts
	GSupProgress    = "supervise.progress"             // gauge: installed-prefix size after the last attempt

	// Runtime counters (the DB implementations and substrates).
	MDBExec        = "db.exec"        // operations executed
	MDBCheckpoints = "db.checkpoints" // checkpoints taken
	MCacheFlushes  = "cache.flushes"  // page installs
	MCacheSteals   = "cache.steals"   // older-version installs (multi-version cache)
	MCacheGroups   = "cache.group_flushes" // atomic multi-page group installs
	MWALAppends    = "wal.appends"    // log records appended
	MWALBytes      = "wal.bytes"      // simulated log bytes appended
	MWALForces     = "wal.forces"     // log forces that did work

	// Instant-restart serve counters (internal/serve).
	MServeReads    = "serve.reads"        // client reads served
	MServeWrites   = "serve.writes"       // post-crash client writes committed
	MServeLazy     = "serve.lazy_redo"    // components recovered on demand by a touch
	MServeSwept    = "serve.swept"        // components recovered by the background sweeper
	MServeGateWait = "serve.gate_wait"    // duration histogram: time a touch spent blocked on the admission gate
	MServeTTFR     = "serve.ttfr"         // duration histogram: time from engine start to the first served read
	GServePages    = "serve.pages_recovered" // gauge: pages (written variables) recovered so far
	GServeComps    = "serve.components_recovered" // gauge: components recovered so far

	// Sharded-database counters (internal/shard).
	MShardCrossTxns   = "shard.cross_txns"     // cross-shard transactions executed
	MShardCertify     = "shard.certifications" // certification passes run
	MShardGateBlocked = "shard.gate_blocked"   // installs/checkpoints refused by the certification gate
	MShardCutRetreats = "shard.cut_retreats"   // frontier-retreat steps during cut computation
	MShardCutDropped  = "shard.cut_dropped_txns" // transactions outside the certified cut
	MShardCutRecords  = "shard.cut_dropped_records" // stable records excluded by the cut
	GShardCutLag      = "shard.cut_lag_records" // gauge: records between stable frontiers and the last cut, summed over shards

	// Shared-cache effectiveness counters (core.ViewCache/GraphCache).
	MViewHits    = "cache.view_hits"    // log-view cache hits
	MViewMisses  = "cache.view_misses"  // log-view cache builds
	MGraphHits   = "cache.graph_hits"   // conflict/install graph cache hits
	MGraphMisses = "cache.graph_misses" // conflict/install graph builds
)

// Recorder collects metrics and (optionally) emits events. The zero
// value is NOT usable; call New. A nil *Recorder is the disabled
// recorder: every method no-ops.
type Recorder struct {
	counters  sync.Map // string -> *Counter
	gauges    sync.Map // string -> *Gauge
	durations sync.Map // string -> *Hist (nanoseconds)
	samples   sync.Map // string -> *Hist (unitless)

	// sinkMu serializes event emission and sequence assignment so the
	// stream carries a single global order even under concurrent emitters.
	sinkMu sync.Mutex
	sink   Sink
	seq    uint64
	// hasSink mirrors sink != nil for a lock-free fast path: with no sink
	// attached, Emit is one atomic load, and callers can skip building
	// event payloads entirely (Sinking).
	hasSink atomic.Bool

	// spanIDs allocates causal-span ids; traceIDs numbers the traces the
	// recorder has begun. Both only advance while a sink is attached, so
	// the metrics-only configuration never touches them.
	spanIDs  atomic.Uint64
	traceIDs atomic.Uint64
	// spanMu guards ambient, the coordinator-side stack of open span ids
	// that gives StartSpan its implicit parent. Worker spans use
	// StartSpanWith with an explicit parent and never touch it.
	spanMu  sync.Mutex
	ambient []uint64
}

// epoch anchors Event.TS: all recorders stamp nanoseconds since this
// process-wide instant, so timestamps from every recorder in a run are
// directly comparable.
var epoch = time.Now()

// New returns an empty enabled recorder.
func New() *Recorder { return &Recorder{} }

// SetSink attaches the event sink. Call before instrumented work starts;
// a nil sink disables events (metrics keep flowing). Attaching a sink is
// a trace boundary: the ambient span stack is reset, so span ids a
// panicking recovery failed to close under a previous sink cannot leak
// into the new stream's parentage.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sinkMu.Lock()
	r.sink = s
	r.hasSink.Store(s != nil)
	r.sinkMu.Unlock()
	r.spanMu.Lock()
	r.ambient = nil
	r.spanMu.Unlock()
}

// Sinking reports whether an event sink is attached. Hot paths check it
// before building event payloads that cost something to construct (an
// operation rendered to a string), so the metrics-only configuration
// pays for counters and clocks, never for formatting.
func (r *Recorder) Sinking() bool {
	return r != nil && r.hasSink.Load()
}

// counter returns the named counter, creating it on first touch.
func (r *Recorder) counter(name string) *Counter {
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, new(Counter))
	return c.(*Counter)
}

// gauge returns the named gauge, creating it on first touch.
func (r *Recorder) gauge(name string) *Gauge {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return g.(*Gauge)
}

// duration returns the named duration histogram.
func (r *Recorder) duration(name string) *Hist {
	if h, ok := r.durations.Load(name); ok {
		return h.(*Hist)
	}
	h, _ := r.durations.LoadOrStore(name, newHist())
	return h.(*Hist)
}

// sample returns the named sample histogram.
func (r *Recorder) sample(name string) *Hist {
	if h, ok := r.samples.Load(name); ok {
		return h.(*Hist)
	}
	h, _ := r.samples.LoadOrStore(name, newHist())
	return h.(*Hist)
}

// Inc adds 1 to the named counter.
func (r *Recorder) Inc(name string) { r.Add(name, 1) }

// Touch materializes the named counters at their current value (zero if
// new), so snapshots report them even when nothing ever incremented —
// a run that skipped no records still shows redo.skipped = 0.
func (r *Recorder) Touch(names ...string) {
	if r == nil {
		return
	}
	for _, name := range names {
		r.counter(name)
	}
}

// Add adds d to the named counter.
func (r *Recorder) Add(name string, d int64) {
	if r == nil {
		return
	}
	r.counter(name).Add(d)
}

// CounterHandle resolves the named counter once for repeated hot-path
// updates, skipping the per-call registry lookup. A nil recorder yields
// a nil handle, whose Add is a no-op.
func (r *Recorder) CounterHandle(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.counter(name)
}

// SetGauge sets the named gauge.
func (r *Recorder) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.gauge(name).Set(v)
}

// ObserveDuration records d into the named duration histogram.
func (r *Recorder) ObserveDuration(name string, d time.Duration) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.duration(name).Observe(int64(d))
}

// Observe records v into the named sample histogram.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.sample(name).Observe(v)
}

// Emit sends an event to the attached sink, stamping its sequence
// number and trace timestamp. Without a sink it is a nil check.
func (r *Recorder) Emit(e Event) {
	if r == nil || !r.hasSink.Load() {
		return
	}
	r.sinkMu.Lock()
	if r.sink != nil {
		r.seq++
		e.Seq = r.seq
		if e.TS == 0 {
			e.TS = int64(time.Since(epoch))
		}
		r.sink.Emit(e)
	}
	r.sinkMu.Unlock()
}

// EmitBatch emits a slice of events under one acquisition of the
// emission lock, assigning consecutive sequence numbers and one shared
// timestamp (batch members with a preset TS keep it). The replay hot
// loop batches each record's micro events — admit/skip verdicts and the
// id-less per-record span pairs, whose timestamps no consumer reads —
// so the per-event lock and clock cost the tracing overhead gate meters
// is paid once per record instead of once per event. Events are
// stamped in place; the caller may reuse the backing array afterwards.
func (r *Recorder) EmitBatch(events []Event) {
	if r == nil || len(events) == 0 || !r.hasSink.Load() {
		return
	}
	r.sinkMu.Lock()
	if r.sink != nil {
		ts := int64(time.Since(epoch))
		for i := range events {
			r.seq++
			events[i].Seq = r.seq
			if events[i].TS == 0 {
				events[i].TS = ts
			}
			r.sink.Emit(events[i])
		}
	}
	r.sinkMu.Unlock()
}

// Span is an in-flight phase measurement. A nil *Span (from a nil
// recorder) ends harmlessly.
type Span struct {
	r       *Recorder
	phase   Phase
	start   time.Time
	id      uint64
	parent  uint64
	ambient bool // id was pushed on the recorder's ambient stack
}

// SpanID returns the span's causal id (0 when the span was started
// without a sink attached, or on a nil span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SpanInfo carries the attribution attached to a span's begin event:
// which component/attempt/batch it is, which worker ran it, and how big
// it was. The zero value attaches nothing.
type SpanInfo struct {
	Comp   string // component/attempt/batch label ("c3", "attempt0/parallel", …)
	Worker int    // 1-based replay worker, 0 for coordinator spans
	Size   int    // records in the component / installs in the batch
	Writes int    // distinct variables the component writes
}

// StartSpan begins a phase span: it emits the span-begin event and
// starts the clock. When a sink is attached the span gets a fresh id,
// parents under the recorder's innermost ambient span, and becomes the
// ambient parent for spans started before its End — callers on one
// logical thread of control get a causal tree with no explicit
// plumbing. Concurrent workers must use StartSpanWith instead.
func (r *Recorder) StartSpan(p Phase) *Span {
	return r.StartSpanInfo(p, SpanInfo{})
}

// StartSpanInfo is StartSpan with attribution on the begin event.
func (r *Recorder) StartSpanInfo(p Phase, info SpanInfo) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, phase: p}
	if r.hasSink.Load() {
		s.id = r.spanIDs.Add(1)
		s.ambient = true
		r.spanMu.Lock()
		if n := len(r.ambient); n > 0 {
			s.parent = r.ambient[n-1]
		}
		r.ambient = append(r.ambient, s.id)
		r.spanMu.Unlock()
		r.Emit(Event{Type: EvSpanBegin, Phase: p, Span: s.id, Parent: s.parent,
			Comp: info.Comp, Worker: info.Worker, Size: info.Size, WriteN: info.Writes})
	}
	s.start = time.Now()
	return s
}

// StartSpanWith begins a span under an explicit parent id, without
// touching the recorder's ambient stack — the concurrency-safe form for
// parallel replay workers, which all parent under the coordinator's
// replay span while it stays open.
func (r *Recorder) StartSpanWith(p Phase, parent uint64, info SpanInfo) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, phase: p, parent: parent}
	if r.hasSink.Load() {
		s.id = r.spanIDs.Add(1)
		r.Emit(Event{Type: EvSpanBegin, Phase: p, Span: s.id, Parent: parent,
			Comp: info.Comp, Worker: info.Worker, Size: info.Size, WriteN: info.Writes})
	}
	s.start = time.Now()
	return s
}

// StartRootSpan begins a recovery's root span. If no ambient span is
// open it first emits a trace-begin event with a fresh trace id — each
// top-level recovery starts its own trace, while recoveries nested
// inside a supervised attempt join the enclosing trace as subtrees.
func (r *Recorder) StartRootSpan(p Phase, detail string) *Span {
	if r == nil {
		return nil
	}
	if r.hasSink.Load() {
		r.spanMu.Lock()
		root := len(r.ambient) == 0
		r.spanMu.Unlock()
		if root {
			r.Emit(Event{Type: EvTraceBegin, Trace: fmt.Sprintf("t%d", r.traceIDs.Add(1)), Detail: detail})
		}
	}
	return r.StartSpanInfo(p, SpanInfo{})
}

// End closes the span: it observes the elapsed time into the phase's
// duration histogram ("phase.<name>"), emits the span-end event, and
// returns the elapsed time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.ObserveDuration("phase."+string(s.phase), d)
	if s.ambient {
		s.r.spanMu.Lock()
		for i := len(s.r.ambient) - 1; i >= 0; i-- {
			if s.r.ambient[i] == s.id {
				s.r.ambient = append(s.r.ambient[:i], s.r.ambient[i+1:]...)
				break
			}
		}
		s.r.spanMu.Unlock()
	}
	if s.id != 0 {
		s.r.Emit(Event{Type: EvSpanEnd, Phase: s.phase, Dur: d, Span: s.id})
	} else {
		s.r.Emit(Event{Type: EvSpanEnd, Phase: s.phase, Dur: d})
	}
	return d
}

// CounterValue returns the named counter's current value (0 when absent
// or the recorder is nil).
func (r *Recorder) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter).Load()
	}
	return 0
}

// Counter is a monotonically-increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (no-op on a nil handle, so disabled
// recorders stay free in hot loops).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value-wins gauge.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
