package obs

import (
	"math"
	"testing"
)

// TestBucketOfBoundaries pins the bucket map at every power-of-two edge:
// bucket 0 holds values ≤ 0, bucket k (k ≥ 1) covers [2^(k-1), 2^k), and
// MaxInt64 lands in the last bucket (63) rather than out of range.
func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
	}
	for k := 2; k < 63; k++ {
		edge := int64(1) << k
		cases = append(cases,
			struct {
				v    int64
				want int
			}{edge - 1, k},
			struct {
				v    int64
				want int
			}{edge, k + 1},
		)
	}
	cases = append(cases, struct {
		v    int64
		want int
	}{math.MaxInt64, 63})
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		if got := bucketOf(c.v); got < 0 || got >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d, outside [0, %d)", c.v, got, histBuckets)
		}
	}
}

// mkSnap observes the given values into a fresh Hist and snapshots it.
func mkSnap(values ...int64) HistSnapshot {
	h := newHist()
	for _, v := range values {
		h.Observe(v)
	}
	return h.snapshot()
}

// TestHistSnapshotTrailingTrim pins the snapshot's trailing-trim contract:
// buckets past the highest occupied index are dropped, occupied indices
// survive, and the trimmed form still sums to Count.
func TestHistSnapshotTrailingTrim(t *testing.T) {
	s := mkSnap(1, 5) // buckets 1 and 3 occupied → trimmed length 4
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %v, want trailing-trimmed length 4", s.Buckets)
	}
	if s.Buckets[1] != 1 || s.Buckets[3] != 1 || s.Buckets[0] != 0 || s.Buckets[2] != 0 {
		t.Fatalf("buckets = %v, want [0 1 0 1]", s.Buckets)
	}
	if probs := s.sanity(); len(probs) != 0 {
		t.Fatalf("fresh snapshot fails sanity: %v", probs)
	}
	if empty := mkSnap(); empty.Buckets != nil {
		t.Fatalf("empty snapshot carries buckets %v", empty.Buckets)
	}
}

// TestMergeDifferentTrimmedLengths round-trips Merge in both directions
// when the operands were trimmed to different lengths: short-into-long
// must not lose the long tail, and long-into-short must grow the
// receiver. Both orders must agree on every aggregate.
func TestMergeDifferentTrimmedLengths(t *testing.T) {
	short := mkSnap(1, 1, 2)        // buckets [0 2 1]
	long := mkSnap(100, 1000, 5000) // trimmed length 13

	a := short
	a.Buckets = append([]int64(nil), short.Buckets...)
	a.Merge(long)

	b := long
	b.Buckets = append([]int64(nil), long.Buckets...)
	b.Merge(short)

	if a.Count != 6 || b.Count != 6 {
		t.Fatalf("merged counts = %d, %d, want 6", a.Count, b.Count)
	}
	if a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max || a.P50 != b.P50 || a.P99 != b.P99 {
		t.Fatalf("merge is order-sensitive:\n short→long: %+v\n long→short: %+v", b, a)
	}
	if a.Min != 1 || a.Max != 5000 {
		t.Fatalf("merged min/max = %d/%d, want 1/5000", a.Min, a.Max)
	}
	if len(a.Buckets) != len(b.Buckets) {
		t.Fatalf("merged bucket lengths differ: %d vs %d", len(a.Buckets), len(b.Buckets))
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Fatalf("merged buckets diverge at %d:\n%v\n%v", i, a.Buckets, b.Buckets)
		}
	}
	if probs := a.sanity(); len(probs) != 0 {
		t.Fatalf("merged snapshot fails sanity: %v", probs)
	}
}

// TestMergeIntoEmptyDoesNotAliasDonor is the regression test for the
// empty-receiver fast path: adopting the donor's bucket slice by
// reference let a subsequent merge into the receiver mutate the donor
// snapshot in place, silently corrupting any report that merged the same
// snapshot twice (exactly what NewReport does when computing Totals).
func TestMergeIntoEmptyDoesNotAliasDonor(t *testing.T) {
	donor := mkSnap(4, 4, 4)
	want := append([]int64(nil), donor.Buckets...)

	var s HistSnapshot
	s.Merge(donor)
	s.Merge(mkSnap(4, 7))

	if s.Count != 5 {
		t.Fatalf("receiver count = %d, want 5", s.Count)
	}
	for i := range want {
		if donor.Buckets[i] != want[i] {
			t.Fatalf("merge mutated the donor snapshot: buckets %v, want %v", donor.Buckets, want)
		}
	}
}

// TestMergeEmptyDonorIsNoOp pins the other fast path: merging an empty
// snapshot changes nothing, including percentiles.
func TestMergeEmptyDonorIsNoOp(t *testing.T) {
	s := mkSnap(9, 17)
	before := s
	before.Buckets = append([]int64(nil), s.Buckets...)
	s.Merge(HistSnapshot{})
	if s.Count != before.Count || s.Sum != before.Sum || s.P50 != before.P50 || s.P99 != before.P99 {
		t.Fatalf("merging an empty snapshot changed the receiver: %+v vs %+v", s, before)
	}
}

// TestHistSanityFindings exercises every structural check the validator
// relies on to reject corrupt report files.
func TestHistSanityFindings(t *testing.T) {
	cases := []struct {
		name string
		s    HistSnapshot
	}{
		{"negative count", HistSnapshot{Count: -1}},
		{"too many buckets", HistSnapshot{Count: 1, Min: 1, Max: 1, Buckets: make([]int64, histBuckets+1)}},
		{"negative bucket", HistSnapshot{Count: 1, Min: 1, Max: 1, Buckets: []int64{0, -1}}},
		{"count without buckets", HistSnapshot{Count: 3, Min: 1, Max: 2}},
		{"bucket sum mismatch", HistSnapshot{Count: 3, Min: 1, Max: 2, Buckets: []int64{0, 1}}},
		{"min above max", HistSnapshot{Count: 1, Min: 9, Max: 2, Buckets: []int64{0, 0, 0, 0, 1}}},
	}
	for _, c := range cases {
		if probs := c.s.sanity(); len(probs) == 0 {
			t.Errorf("%s: sanity found nothing in %+v", c.name, c.s)
		}
	}
	ok := mkSnap(1, 2, 3)
	if probs := ok.sanity(); len(probs) != 0 {
		t.Fatalf("sane snapshot flagged: %v", probs)
	}
}
