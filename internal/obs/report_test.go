package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fullSnapshot builds a snapshot carrying every key Validate requires.
func fullSnapshot() Snapshot {
	r := New()
	r.Add(MRedoExamined, 8)
	r.Add(MRedoAdmitted, 3)
	r.Add(MRedoSkipped, 5)
	for _, p := range []Phase{PhaseScan, PhaseAnalysis, PhaseDecide, PhasePartition, PhaseReplay, PhaseMerge} {
		r.ObserveDuration("phase."+string(p), time.Microsecond)
	}
	r.Observe(MPartitionWidth, 2)
	r.Observe(MPartitionWidth, 5)
	return r.Snapshot()
}

func TestReportRoundTripAndValidate(t *testing.T) {
	rep := NewReport("test", map[string]Snapshot{"physiological": fullSnapshot(), "genlsn": fullSnapshot()})
	if err := rep.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	if got := rep.Totals.Counter(MRedoExamined); got != 16 {
		t.Fatalf("totals examined = %d, want 16", got)
	}

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
	if len(back.Methods) != 2 {
		t.Fatalf("round trip lost methods: %v", back.MethodNames())
	}
}

func TestReportValidateCatchesMissingKeys(t *testing.T) {
	// Missing phase durations and counters.
	bare := New()
	bare.Add(MRedoExamined, 1)
	rep := NewReport("test", map[string]Snapshot{"m": bare.Snapshot()})
	err := rep.Validate()
	if err == nil {
		t.Fatal("bare snapshot passed validation")
	}
	for _, want := range []string{"phase.decide", "phase.merge", MRedoAdmitted, MPartitionWidth} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("validation error does not name %q:\n%v", want, err)
		}
	}

	// Wrong schema and no methods.
	empty := &Report{Schema: "bogus"}
	err = empty.Validate()
	if err == nil || !strings.Contains(err.Error(), "schema") || !strings.Contains(err.Error(), "no methods") {
		t.Fatalf("empty report error = %v", err)
	}
}

func TestRenderTableAndWidths(t *testing.T) {
	rep := NewReport("test", map[string]Snapshot{"genlsn": fullSnapshot()})
	var tbl, widths strings.Builder
	rep.RenderTable(&tbl)
	rep.RenderWidths(&widths)
	for _, want := range []string{"genlsn", "selectivity", "0.375"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
	if !strings.Contains(widths.String(), "partition widths (2 components") {
		t.Fatalf("widths rendering:\n%s", widths.String())
	}
	// Empty totals render a placeholder, not a panic.
	var none strings.Builder
	(&Report{Totals: &Snapshot{}}).RenderWidths(&none)
	if !strings.Contains(none.String(), "no components") {
		t.Fatalf("empty widths rendering: %q", none.String())
	}
}

// TestCorruptReportInputs feeds the redostats -check pipeline
// (ReadReportFile then Validate) every class of malformed input the tool
// must reject: each case yields a clear error — never a panic and never
// a zero-value report that would pass validation or render garbage.
func TestCorruptReportInputs(t *testing.T) {
	valid := func(mutate func(r *Report)) string {
		rep := NewReport("test", map[string]Snapshot{"genlsn": fullSnapshot()})
		mutate(rep)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"empty file", "", "decoding"},
		{"truncated json", `{"schema": "redotheory/metrics/v1", "methods": {"genl`, "decoding"},
		{"json null", "null", "not a"},
		{"empty object", "{}", "not a"},
		{"json array", "[]", "decoding"},
		{"json string", `"hi"`, "decoding"},
		{"wrong type for methods", `{"schema":"redotheory/metrics/v1","methods":42}`, "decoding"},
		{"wrong schema", valid(func(r *Report) { r.Schema = "bogus/v9" }), "schema"},
		{"null method snapshot", valid(func(r *Report) { r.Methods["genlsn"] = nil }), "nil snapshot"},
		{"missing totals", valid(func(r *Report) { r.Totals = nil }), "missing totals"},
		{"negative counter", valid(func(r *Report) { r.Totals.Counters[MRedoExamined] = -4 }), "negative"},
		{"negative bucket", valid(func(r *Report) {
			h := r.Totals.Samples[MPartitionWidth]
			h.Buckets[1] = -7
			r.Totals.Samples[MPartitionWidth] = h
		}), "negative count"},
		{"bucket sum mismatch", valid(func(r *Report) {
			h := r.Totals.Samples[MPartitionWidth]
			h.Count += 5
			r.Totals.Samples[MPartitionWidth] = h
		}), "count says"},
		{"too many buckets", valid(func(r *Report) {
			h := r.Totals.Samples[MPartitionWidth]
			h.Buckets = append(h.Buckets, make([]int64, 70)...)
			r.Totals.Samples[MPartitionWidth] = h
		}), "max 64"},
		{"min above max", valid(func(r *Report) {
			h := r.Totals.Samples[MPartitionWidth]
			h.Min, h.Max = 99, 1
			r.Totals.Samples[MPartitionWidth] = h
		}), "exceeds max"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "metrics.json")
			if err := os.WriteFile(path, []byte(c.data), 0o644); err != nil {
				t.Fatal(err)
			}
			rep, err := ReadReportFile(path)
			if err == nil {
				err = rep.Validate()
			}
			if err == nil {
				t.Fatalf("corrupt input passed the check pipeline: %q", c.data)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error does not mention %q:\n%v", c.want, err)
			}
		})
	}
}

// TestRenderCorruptWidthsDoesNotPanic feeds RenderWidths histograms that
// fail validation — rendering must decline gracefully, never slice-panic
// on negative bar widths.
func TestRenderCorruptWidthsDoesNotPanic(t *testing.T) {
	for _, h := range []HistSnapshot{
		{Count: 5},                                          // count, no buckets
		{Count: 5, Buckets: []int64{-3, -2}},                // all-negative buckets
		{Count: 5, Min: 1, Max: 9, Buckets: []int64{0, -1, 6}}, // mixed sign
	} {
		rep := &Report{Totals: &Snapshot{Samples: map[string]HistSnapshot{MPartitionWidth: h}}}
		var sb strings.Builder
		rep.RenderWidths(&sb) // must not panic
		if sb.Len() == 0 {
			t.Fatalf("rendering %+v produced no output", h)
		}
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct{ v, lo, hi int64 }{{0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {3, 2, 3}, {4, 4, 7}, {1000, 512, 1023}}
	for _, c := range cases {
		b := bucketOf(c.v)
		lo, hi := bucketBounds(b)
		if c.v < lo || c.v > hi || lo != c.lo || hi != c.hi {
			t.Fatalf("value %d → bucket %d [%d,%d], want [%d,%d]", c.v, b, lo, hi, c.lo, c.hi)
		}
	}
}
