package obs

import (
	"fmt"
	"testing"
)

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		f.Emit(Event{Seq: uint64(i), Type: EvAdmit})
	}
	if f.Len() != 4 {
		t.Fatalf("ring holds %d events, want 4", f.Len())
	}
	events := f.Events()
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d (last 4 of 10)", i, e.Seq, want)
		}
	}
	d := f.Dump()
	if d.Total != 10 || d.Capacity != 4 || len(d.Events) != 4 {
		t.Fatalf("dump total=%d capacity=%d events=%d, want 10/4/4", d.Total, d.Capacity, len(d.Events))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightDefaultCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	if got := f.Dump().Capacity; got != defaultFlightCapacity {
		t.Fatalf("capacity = %d, want default %d", got, defaultFlightCapacity)
	}
}

func TestFlightPreserveBounds(t *testing.T) {
	f := NewFlightRecorder(256)
	seq := uint64(0)
	emit := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			f.Emit(Event{Seq: seq, Type: EvCacheFlush})
		}
	}

	// Each snapshot keeps at most flightSnapshotTail events.
	emit(flightSnapshotTail + 40)
	f.Preserve("big")
	d := f.Dump()
	if n := len(d.Snapshots[0].Events); n != flightSnapshotTail {
		t.Fatalf("snapshot holds %d events, want the %d-event tail", n, flightSnapshotTail)
	}
	if last := d.Snapshots[0].Events[flightSnapshotTail-1].Seq; last != seq {
		t.Fatalf("snapshot tail ends at seq %d, want %d", last, seq)
	}

	// Snapshots beyond the bound age out oldest-first, counted.
	for i := 0; i < maxFlightSnapshots+3; i++ {
		emit(1)
		f.Preserve(fmt.Sprintf("crash %d", i))
	}
	d = f.Dump()
	if len(d.Snapshots) != maxFlightSnapshots {
		t.Fatalf("%d snapshots survive, want the %d bound", len(d.Snapshots), maxFlightSnapshots)
	}
	if d.DroppedSnapshots != 4 { // "big" plus the first three crash snapshots
		t.Fatalf("dropped %d snapshots, want 4", d.DroppedSnapshots)
	}
	if d.Snapshots[0].Label != "crash 3" {
		t.Fatalf("oldest surviving snapshot is %q, want %q", d.Snapshots[0].Label, "crash 3")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightDumpValidateRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FlightDump)
	}{
		{"schema", func(d *FlightDump) { d.Schema = "bogus/v9" }},
		{"capacity", func(d *FlightDump) { d.Capacity = 0 }},
		{"over-capacity", func(d *FlightDump) { d.Capacity = 1 }},
		{"total", func(d *FlightDump) { d.Total = 1 }},
		{"ring-order", func(d *FlightDump) { d.Events[0].Seq = 99 }},
		{"snapshot-order", func(d *FlightDump) { d.Snapshots[0].Events[0].Seq = 99 }},
	}
	for _, tc := range cases {
		f := NewFlightRecorder(8)
		for i := 1; i <= 3; i++ {
			f.Emit(Event{Seq: uint64(i)})
		}
		f.Preserve("crash")
		d := f.Dump()
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: baseline dump invalid: %v", tc.name, err)
		}
		tc.mut(d)
		if err := d.Validate(); err == nil {
			t.Fatalf("%s: corruption not detected", tc.name)
		}
	}
	var nilDump *FlightDump
	if err := nilDump.Validate(); err == nil {
		t.Fatal("nil dump validated")
	}
}

func TestFlightAsRecorderSink(t *testing.T) {
	r := New()
	f := NewFlightRecorder(8)
	r.SetSink(f)
	sp := r.StartSpan(PhaseDecide)
	r.Emit(Event{Type: EvAdmit, LSN: 1})
	sp.End()
	r.SetSink(nil)
	events := f.Events()
	if len(events) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(events))
	}
	if err := f.Dump().Validate(); err != nil {
		t.Fatal(err)
	}
}
