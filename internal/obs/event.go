package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventType classifies a recovery event.
type EventType string

const (
	// EvSpanBegin / EvSpanEnd bracket a recovery phase.
	EvSpanBegin EventType = "span-begin"
	EvSpanEnd   EventType = "span-end"
	// EvAdmit is a redo-test admit: the record will be replayed.
	EvAdmit EventType = "redo-admit"
	// EvSkip is a redo-test skip: the record is considered installed.
	// Verdict carries the reason ("checkpointed" or "redo-test-false").
	EvSkip EventType = "redo-skip"
	// EvCacheFlush is a page install (cache → stable storage).
	EvCacheFlush EventType = "cache-flush"
	// EvCacheSteal is an older-version install by the multi-version
	// cache: a blocked page's elder version stolen out to stable storage.
	EvCacheSteal EventType = "cache-steal"
	// EvWALForce is a log force that made records stable.
	EvWALForce EventType = "wal-force"
	// EvDetection is a degraded-recovery integrity detection.
	EvDetection EventType = "detection"
	// EvAttempt is one supervised-recovery attempt finishing (Detail
	// carries the attempt's rung and outcome).
	EvAttempt EventType = "supervise-attempt"
	// EvRung is a degradation-ladder transition (Detail names the rung
	// escalated to).
	EvRung EventType = "supervise-rung"
	// EvTraceBegin opens a causal trace: one per root recovery (Trace
	// carries the trace id, Detail the root's description). Spans that
	// follow, until the next EvTraceBegin, belong to this trace.
	EvTraceBegin EventType = "trace-begin"
)

// Event is one entry of the recovery event stream. Fields are populated
// per type; Seq is stamped by the emitting Recorder and totally orders
// the stream.
type Event struct {
	Seq   uint64        `json:"seq"`
	Type  EventType     `json:"type"`
	Phase Phase         `json:"phase,omitempty"`   // span events
	LSN   int64         `json:"lsn,omitempty"`     // record/force LSN
	Op    string        `json:"op,omitempty"`      // logged operation (admit/skip)
	Page  string        `json:"page,omitempty"`    // cache events
	Verdict string      `json:"verdict,omitempty"` // redo-test reason
	Detail  string      `json:"detail,omitempty"`  // free-form (detections)
	Dur     time.Duration `json:"dur,omitempty"`   // span-end elapsed

	// Causal-tracing fields (see DESIGN.md §13). TS is nanoseconds since
	// the process trace epoch, stamped by Emit under the emission lock, so
	// it is non-decreasing in Seq order. Span/Parent identify hierarchical
	// spans: ids are allocated per recorder, never reused, and zero on
	// legacy point-measurement span events (the per-record micro spans),
	// which trace analysis ignores.
	TS     int64  `json:"ts,omitempty"`     // ns since trace epoch
	Span   uint64 `json:"span,omitempty"`   // span id (begin/end)
	Parent uint64 `json:"parent,omitempty"` // enclosing span id (begin)
	Trace  string `json:"trace,omitempty"`  // trace id (trace-begin)
	Comp   string `json:"comp,omitempty"`   // component/attempt/batch label
	Worker int    `json:"worker,omitempty"` // 1-based replay worker
	Size   int    `json:"size,omitempty"`   // component records / batch size
	WriteN int    `json:"writes,omitempty"` // component distinct write vars
}

// String renders the event compactly for logs and test failures.
func (e Event) String() string {
	switch e.Type {
	case EvSpanBegin:
		return fmt.Sprintf("#%d %s %s", e.Seq, e.Type, e.Phase)
	case EvSpanEnd:
		return fmt.Sprintf("#%d %s %s (%s)", e.Seq, e.Type, e.Phase, e.Dur)
	case EvAdmit, EvSkip:
		return fmt.Sprintf("#%d %s lsn=%d %s [%s]", e.Seq, e.Type, e.LSN, e.Op, e.Verdict)
	case EvCacheFlush, EvCacheSteal:
		return fmt.Sprintf("#%d %s page=%s lsn=%d", e.Seq, e.Type, e.Page, e.LSN)
	case EvWALForce:
		return fmt.Sprintf("#%d %s through lsn=%d", e.Seq, e.Type, e.LSN)
	default:
		return fmt.Sprintf("#%d %s %s", e.Seq, e.Type, e.Detail)
	}
}

// Sink receives the event stream. Emit is always called with the
// recorder's emission lock held, so implementations see events one at a
// time in sequence order and need no locking of their own against the
// emitter (they do need it against their own readers).
type Sink interface {
	Emit(Event)
}

// MemorySink buffers the stream in memory — the test and export sink.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the buffered stream.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len returns how many events are buffered.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// CheckSpanNesting verifies that the stream's span events are
// well-formed and returns the first violation found.
//
// Span events carrying ids (the causal-tracing spans) are checked as a
// forest: a begin's id must be fresh, its parent (when set) must still
// be open, every end must close an open span of the same phase, and
// nothing may remain open at end of stream. Because worker spans carry
// explicit parents, this check holds even when begins and ends from
// concurrent components interleave arbitrarily in the global order.
//
// Id-less span events (the per-record micro measurements and legacy
// synthetic streams) are held to the original stack discipline: every
// span-end matches the most recently opened id-less span. The engines
// emit micro spans only from the sequential scan loop, so the two
// regimes never confuse each other.
func CheckSpanNesting(events []Event) error {
	open := make(map[uint64]Phase)
	openOrder := []uint64{}
	var stack []Phase
	for _, e := range events {
		switch e.Type {
		case EvSpanBegin:
			if e.Span != 0 {
				if _, dup := open[e.Span]; dup {
					return fmt.Errorf("obs: span id %d begun twice (event %s)", e.Span, e)
				}
				if e.Parent != 0 {
					if _, ok := open[e.Parent]; !ok {
						return fmt.Errorf("obs: span id %d begins under parent %d, which is not open (event %s)", e.Span, e.Parent, e)
					}
				}
				open[e.Span] = e.Phase
				openOrder = append(openOrder, e.Span)
				continue
			}
			stack = append(stack, e.Phase)
		case EvSpanEnd:
			if e.Span != 0 {
				ph, ok := open[e.Span]
				if !ok {
					return fmt.Errorf("obs: span-end for id %d, which is not open (event %s)", e.Span, e)
				}
				if ph != e.Phase {
					return fmt.Errorf("obs: span id %d begun as %q but ended as %q (event %s)", e.Span, ph, e.Phase, e)
				}
				delete(open, e.Span)
				continue
			}
			if len(stack) == 0 {
				return fmt.Errorf("obs: span-end %q with no open span (event %s)", e.Phase, e)
			}
			top := stack[len(stack)-1]
			if top != e.Phase {
				return fmt.Errorf("obs: span-end %q while %q is the innermost open span (event %s)", e.Phase, top, e)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("obs: %d spans never ended (innermost %q)", len(stack), stack[len(stack)-1])
	}
	if len(open) != 0 {
		for i := len(openOrder) - 1; i >= 0; i-- {
			if ph, ok := open[openOrder[i]]; ok {
				return fmt.Errorf("obs: %d identified spans never ended (innermost id %d, phase %q)", len(open), openOrder[i], ph)
			}
		}
	}
	return nil
}
