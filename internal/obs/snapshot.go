package obs

import "sort"

// Snapshot is a frozen, JSON-ready view of a Recorder's metrics.
// Snapshots merge (Merge) so per-cell recorders roll up into per-method
// and campaign totals; all derived numbers (percentiles, selectivity)
// are recomputed from the merged primitives.
type Snapshot struct {
	Counters  map[string]int64        `json:"counters,omitempty"`
	Gauges    map[string]int64        `json:"gauges,omitempty"`
	Durations map[string]HistSnapshot `json:"durations,omitempty"`
	Samples   map[string]HistSnapshot `json:"samples,omitempty"`
}

// Snapshot freezes the recorder's metrics. Returns the zero Snapshot for
// a nil recorder. Safe to call concurrently with metric updates (the
// result is then approximate, never corrupt).
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[k.(string)] = v.(*Gauge).Load()
		return true
	})
	r.durations.Range(func(k, v any) bool {
		if s.Durations == nil {
			s.Durations = make(map[string]HistSnapshot)
		}
		s.Durations[k.(string)] = v.(*Hist).snapshot()
		return true
	})
	r.samples.Range(func(k, v any) bool {
		if s.Samples == nil {
			s.Samples = make(map[string]HistSnapshot)
		}
		s.Samples[k.(string)] = v.(*Hist).snapshot()
		return true
	})
	return s
}

// Merge folds another snapshot into this one: counters add, gauges take
// the other's value when set (last writer wins, matching live gauges),
// histograms merge bucket-wise with percentiles recomputed.
func (s *Snapshot) Merge(o Snapshot) {
	for k, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[k] = v
	}
	for k, v := range o.Durations {
		if s.Durations == nil {
			s.Durations = make(map[string]HistSnapshot)
		}
		h := s.Durations[k]
		h.Merge(v)
		s.Durations[k] = h
	}
	for k, v := range o.Samples {
		if s.Samples == nil {
			s.Samples = make(map[string]HistSnapshot)
		}
		h := s.Samples[k]
		h.Merge(v)
		s.Samples[k] = h
	}
}

// Counter returns a counter's value, 0 when absent.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Duration returns a duration histogram, zero when absent.
func (s Snapshot) Duration(name string) HistSnapshot { return s.Durations[name] }

// Sample returns a sample histogram, zero when absent.
func (s Snapshot) Sample(name string) HistSnapshot { return s.Samples[name] }

// RedoSelectivity is the fraction of examined records the redo test
// admitted, 0 when nothing was examined.
func (s Snapshot) RedoSelectivity() float64 {
	ex := s.Counter(MRedoExamined)
	if ex == 0 {
		return 0
	}
	return float64(s.Counter(MRedoAdmitted)) / float64(ex)
}

// DurationNames returns the snapshot's duration keys, sorted.
func (s Snapshot) DurationNames() []string {
	out := make([]string, 0, len(s.Durations))
	for k := range s.Durations {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
