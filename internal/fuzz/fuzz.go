// Package fuzz is the differential crash-point fuzzer: it generates
// randomized operation histories per method, enumerates crash points and
// cache-steal/flush schedules, and checks a three-way recovery oracle on
// every cell — the sequential abstract procedure, partitioned parallel
// recovery, and degraded (media-fault-tolerant) recovery must all agree,
// and the outcome must be the determined state the surviving log's
// conflict graph defines (Theorem 3). Any disagreement is a bug in one
// of the recovery paths; the shrinker then minimizes the failing history
// with delta debugging and emits a self-contained repro artifact.
//
// Soundness of the oracle rests on the paper's results: on a clean crash
// the stable log is a prefix of the executed history whose order is
// consistent with the conflict order, so sequential replay from the
// recovery base reaches exactly the determined state (Lemma 1,
// Theorem 3); partitioned replay must reproduce it bit for bit
// (components are conflict-closed); and degraded recovery on undamaged
// substrates must take its fast path and land on the same state. The
// fuzzer checks all pairwise agreements plus the invariant checker's
// explainability verdict, so a violation pinpoints which leg diverged.
package fuzz

import (
	"fmt"
	"sort"
	"time"

	"redotheory/internal/fault"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

// Coverage counter and sample names recorded on Config.Recorder.
const (
	MCells         = "fuzz.cells"          // clean oracle cells checked
	MFaultCells    = "fuzz.fault_cells"    // faulted campaign cells checked
	MShardCells    = "fuzz.shard_cells"    // sharded differential cells checked
	MHistories     = "fuzz.histories"      // distinct histories generated
	MDisagreements = "fuzz.disagreements"  // oracle disagreements found
	MRedoSize      = "fuzz.redo_size"      // sample: redo-set size per cell
	MComponents    = "fuzz.components"     // sample: partition components per cell
	GShapes        = "fuzz.partition_shapes" // gauge: distinct partition signatures
)

// Schedule is one background cache-steal/flush/checkpoint schedule. The
// probabilities are taken literally — unlike sim.Config, a zero value
// means "never", which is what lets the shrinker simplify a failing
// schedule all the way down to no background activity at all.
type Schedule struct {
	Seed           int64   `json:"seed"`
	FlushProb      float64 `json:"flush_prob"`
	ForceProb      float64 `json:"force_prob"`
	CheckpointProb float64 `json:"checkpoint_prob"`
	TruncateProb   float64 `json:"truncate_prob"`
}

// History is one generated operation history bound to a method.
type History struct {
	// Method names the recovery method the history is legal for.
	Method string
	// Shape names the workload generator variant that produced it.
	Shape string
	// Seed is the workload generation seed.
	Seed int64
	// Pages is the page-set size the history runs over.
	Pages int
	// Ops is the history itself. Every op is a model.ReadWrite op, so it
	// is fully reconstructible from (ID, Name, Reads, Writes).
	Ops []*model.Op
}

// Cell is one fuzz cell: a history crashed at a point under a schedule.
type Cell struct {
	History  History
	Crash    int
	Schedule Schedule
	// Workers is the parallel-recovery pool size.
	Workers int
	// NestedCrash is the supervised-recovery leg's crash schedule: entry
	// k is how many operations recovery attempt k installs before it is
	// crashed again (nil/empty: recovery runs unmolested).
	NestedCrash []int
}

// String renders the cell coordinate for reports.
func (c *Cell) String() string {
	return fmt.Sprintf("%s/%s seed=%d ops=%d crash=%d sched=%d nested=%v",
		c.History.Method, c.History.Shape, c.History.Seed, len(c.History.Ops), c.Crash, c.Schedule.Seed, c.NestedCrash)
}

// Failure is one oracle disagreement.
type Failure struct {
	// Cell is the original failing cell.
	Cell Cell
	// Check names the oracle leg that disagreed (e.g. "sequential-oracle",
	// "parallel-divergence", "degraded-state", "invariant").
	Check string
	// Detail explains the disagreement.
	Detail string
	// Minimized is the shrunk cell (nil when shrinking was off).
	Minimized *Cell
	// Artifact is the self-contained repro (built from Minimized when
	// present, else from Cell).
	Artifact *Artifact
}

// Config configures a fuzzing run.
type Config struct {
	// Methods defaults to sim.DefaultMethods() (all seven).
	Methods []sim.NamedFactory
	// Seeds is how many top-level seeds to fuzz (default 1).
	Seeds int
	// Histories is how many histories to generate per method × shape ×
	// seed (default 1).
	Histories int
	// MaxOps is the history length (default 12).
	MaxOps int
	// Pages is the page-set size (default 4).
	Pages int
	// Budget bounds the wall-clock time; 0 means no bound. When the
	// budget expires the run stops cleanly and the report is marked
	// truncated.
	Budget time.Duration
	// Shrink minimizes failing cells before reporting them.
	Shrink bool
	// Workers is the parallel-recovery pool size (default 3).
	Workers int
	// Faults additionally runs one faulted campaign cell per history and
	// fault kind, asserting the outcome is never silent corruption.
	Faults bool
	// Recorder receives coverage counters and recovery telemetry
	// (nil disables).
	Recorder *obs.Recorder

	// failCheck, when set, is consulted as an extra oracle leg on every
	// cell: a non-empty return is treated as a disagreement with that
	// detail. It exists only so package tests can inject a synthetic
	// oracle bug and prove the shrinker minimizes it; being unexported it
	// cannot be set from outside the package.
	failCheck func(ops []*model.Op, crash int) string
}

func (cfg *Config) withDefaults() Config {
	out := *cfg
	if len(out.Methods) == 0 {
		out.Methods = sim.DefaultMethods()
	}
	if out.Seeds <= 0 {
		out.Seeds = 1
	}
	if out.Histories <= 0 {
		out.Histories = 1
	}
	if out.MaxOps <= 0 {
		out.MaxOps = 12
	}
	if out.Pages <= 0 {
		out.Pages = 4
	}
	if out.Workers <= 0 {
		out.Workers = 3
	}
	return out
}

// Report summarizes a fuzzing run.
type Report struct {
	// Cells is how many clean oracle cells were checked.
	Cells int
	// FaultCells is how many faulted campaign cells were checked.
	FaultCells int
	// Histories is how many distinct histories were generated.
	Histories int
	// Failures lists every oracle disagreement, in discovery order.
	Failures []*Failure
	// PartitionShapes lists the distinct partition signatures
	// (ops/components/largest) observed across parallel recoveries,
	// sorted — the parallelism-structure coverage metric.
	PartitionShapes []string
	// RedoSizes counts distinct redo-set sizes observed.
	RedoSizes int
	// FaultKinds lists the fault kinds exercised (Faults mode), sorted.
	FaultKinds []string
	// Truncated is true when the budget expired before the grid was
	// exhausted.
	Truncated bool
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Disagreements is the failure count.
func (r *Report) Disagreements() int { return len(r.Failures) }

// scheduleProfiles are the background-activity mixes cycled across
// histories: the sim default, an aggressive-steal profile, a
// force-heavy/rarely-checkpoint profile, and a flush-heavy profile with
// truncation after every checkpoint.
var scheduleProfiles = []Schedule{
	{FlushProb: 0.3, ForceProb: 0.2, CheckpointProb: 0.1, TruncateProb: 0.2},
	{FlushProb: 0.6, ForceProb: 0.5, CheckpointProb: 0.3, TruncateProb: 0.5},
	{FlushProb: 0.05, ForceProb: 0.9, CheckpointProb: 0.02, TruncateProb: 0},
	{FlushProb: 0.9, ForceProb: 0.05, CheckpointProb: 0.25, TruncateProb: 1},
}

// nestedProfiles are the crash-during-recovery schedules cycled across
// cells for the supervised-recovery oracle leg: no nested crash, a crash
// before the first install, one after a single install, and a descending
// two-crash storm.
var nestedProfiles = [][]int{
	nil,
	{0},
	{1},
	{2, 0},
}

// Run executes the fuzzing grid: methods × shapes × seeds × histories ×
// crash points, plus (in Faults mode) one faulted cell per history and
// fault kind. It returns a report; oracle disagreements are collected,
// not fatal. Errors are reserved for harness breakage (a workload
// illegal for its method, an unknown shape).
func Run(cfg Config) (*Report, error) {
	c := cfg.withDefaults()
	rec := c.Recorder
	start := time.Now()
	rep := &Report{}
	shapes := make(map[string]bool)
	redoSizes := make(map[int]bool)
	faultKinds := make(map[string]bool)

	expired := func() bool {
		return c.Budget > 0 && time.Since(start) > c.Budget
	}

grid:
	for seed := int64(1); seed <= int64(c.Seeds); seed++ {
		for _, m := range c.Methods {
			shapeList, err := workload.ShapesFor(m.Name)
			if err != nil {
				return nil, fmt.Errorf("fuzz: %w", err)
			}
			for _, shape := range shapeList {
				for h := 0; h < c.Histories; h++ {
					if expired() {
						rep.Truncated = true
						break grid
					}
					histSeed := sim.MixSeed(seed, int64(fault.Sum(m.Name)), int64(fault.Sum(shape.Name)), int64(h), 3)
					hist := History{
						Method: m.Name,
						Shape:  shape.Name,
						Seed:   histSeed,
						Pages:  c.Pages,
						Ops:    shape.Gen(c.MaxOps, workload.Pages(c.Pages), histSeed),
					}
					rep.Histories++
					rec.Inc(MHistories)
					profile := scheduleProfiles[(int(seed)+h)%len(scheduleProfiles)]
					for crash := 0; crash <= len(hist.Ops); crash++ {
						if expired() {
							rep.Truncated = true
							break grid
						}
						sched := profile
						sched.Seed = sim.MixSeed(histSeed, int64(crash), 4)
						cell := Cell{History: hist, Crash: crash, Schedule: sched, Workers: c.Workers,
							NestedCrash: nestedProfiles[(int(seed)+h+crash)%len(nestedProfiles)]}
						dis, cov, err := checkCell(m, cell, rec, c.failCheck)
						if err != nil {
							return nil, err
						}
						rep.Cells++
						rec.Inc(MCells)
						if cov != nil {
							shapes[cov.partSig] = true
							redoSizes[cov.replayed] = true
							rec.Observe(MRedoSize, int64(cov.replayed))
							rec.Observe(MComponents, int64(cov.components))
						}
						if dis != nil {
							rep.Failures = append(rep.Failures, c.fail(m, cell, dis))
							rec.Inc(MDisagreements)
						}
					}
					if c.Faults {
						if err := runFaultCells(m, hist, profile, rep, rec, faultKinds); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}

	rep.PartitionShapes = sortedKeys(shapes)
	rep.RedoSizes = len(redoSizes)
	rep.FaultKinds = sortedKeys(faultKinds)
	rec.SetGauge(GShapes, int64(len(rep.PartitionShapes)))
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// fail packages a disagreement, shrinking it first when configured.
func (c *Config) fail(m sim.NamedFactory, cell Cell, dis *disagreement) *Failure {
	f := &Failure{Cell: cell, Check: dis.check, Detail: dis.detail}
	art := cell
	flight := dis.flight
	if c.Shrink {
		if min := Shrink(m, cell, c.failCheck); min != nil {
			f.Minimized = min
			art = *min
			// The artifact's flight dump must describe the cell the
			// artifact reproduces: re-run the minimized cell once to
			// capture its telemetry (falling back to the original cell's
			// dump if the re-run surprises us).
			if mdis, _, err := checkCell(m, *min, nil, c.failCheck); err == nil && mdis != nil && mdis.flight != nil {
				flight = mdis.flight
			}
		}
	}
	f.Artifact = NewArtifact(art, dis.check, dis.detail)
	f.Artifact.Flight = flight
	return f
}

// runFaultCells runs one faulted campaign cell per fault kind over the
// history, asserting the media-fault oracle: an injected fault either
// doesn't materialize, is repaired, or is explicitly unrecoverable —
// never silent corruption.
func runFaultCells(m sim.NamedFactory, hist History, profile Schedule, rep *Report, rec *obs.Recorder, kinds map[string]bool) error {
	for _, kind := range fault.Kinds() {
		planSeed := sim.MixSeed(hist.Seed, int64(fault.Sum(string(kind))), 5)
		crash := len(hist.Ops) / 2
		res, err := sim.RunFaulted(m.New, sim.Config{
			Ops:            hist.Ops,
			Initial:        workload.InitialState(workload.Pages(hist.Pages)),
			CrashAfter:     crash,
			Seed:           sim.MixSeed(planSeed, 6),
			FlushProb:      profile.FlushProb,
			ForceProb:      profile.ForceProb,
			CheckpointProb: profile.CheckpointProb,
			TruncateProb:   profile.TruncateProb,
		}, fault.Plan{Seed: planSeed, Kind: kind})
		if err != nil {
			return fmt.Errorf("fuzz: faulted cell %s/%s: %w", m.Name, kind, err)
		}
		rep.FaultCells++
		rec.Inc(MFaultCells)
		kinds[string(kind)] = true
		if res.Outcome == sim.SilentCorruption {
			cell := Cell{History: hist, Crash: crash, Schedule: profile}
			rep.Failures = append(rep.Failures, &Failure{
				Cell:   cell,
				Check:  "fault-silent-corruption",
				Detail: fmt.Sprintf("kind %s: %v", kind, res.Detections),
			})
			rec.Inc(MDisagreements)
		}
	}
	return nil
}

// execute runs the cell's history prefix under its schedule and crashes.
// It delegates to sim.BuildCrashed, which takes the probabilities
// literally: the fuzzer owns schedule shrinking, and a shrunk schedule
// must be able to express "no background activity", which sim.Config's
// zero-means-default convention cannot.
func execute(mk sim.Factory, cell Cell, rec *obs.Recorder) (method.DB, error) {
	s := cell.Schedule
	return sim.BuildCrashed(mk, workload.InitialState(workload.Pages(cell.History.Pages)), cell.History.Ops, cell.Crash, sim.Sched{
		Seed:           s.Seed,
		FlushProb:      s.FlushProb,
		ForceProb:      s.ForceProb,
		CheckpointProb: s.CheckpointProb,
		TruncateProb:   s.TruncateProb,
	}, rec)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
