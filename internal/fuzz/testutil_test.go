package fuzz

import (
	"testing"

	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

// namedFor finds a method factory in the default table.
func namedFor(t *testing.T, name string) sim.NamedFactory {
	t.Helper()
	for _, m := range sim.DefaultMethods() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("method %q not in sim.DefaultMethods()", name)
	return sim.NamedFactory{}
}

func factoryFor(t *testing.T, name string) sim.Factory {
	return namedFor(t, name).New
}

// mkCell generates a cell for the method's first workload shape.
func mkCell(t *testing.T, methodName string, numOps, crash int, sched Schedule) Cell {
	t.Helper()
	shapes, err := workload.ShapesFor(methodName)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 4
	hist := History{
		Method: methodName,
		Shape:  shapes[0].Name,
		Seed:   11,
		Pages:  pages,
		Ops:    shapes[0].Gen(numOps, workload.Pages(pages), 11),
	}
	return Cell{History: hist, Crash: crash, Schedule: sched, Workers: 2}
}
