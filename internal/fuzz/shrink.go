package fuzz

import (
	"redotheory/internal/model"
	"redotheory/internal/sim"
)

// maxShrinkRuns bounds the number of oracle evaluations one shrink may
// spend, so a pathological failure cannot stall the whole campaign.
const maxShrinkRuns = 600

// Shrink minimizes a failing cell with delta debugging. Phases, each
// keeping the cell failing:
//
//  1. Truncate the history to the crash point — operations past the
//     crash never execute, so dropping them cannot change the outcome.
//  2. ddmin over the operations (crash pinned to the full prefix),
//     followed by a greedy single-op removal pass to a fixpoint.
//  3. Earliest failing crash point: crash points below the adopted one
//     are tried in order and the smallest failing prefix wins.
//  4. Schedule simplification: all background probabilities zeroed,
//     then each zeroed individually, then the schedule seed forced to 1.
//  5. Nested-crash simplification: the supervised leg's crash schedule
//     dropped entirely, then shortened one crash at a time from the end.
//
// Every candidate is re-executed from scratch, so the result is exactly
// reproducible. Shrink returns nil when the original cell does not fail
// under re-execution (a flaky harness, which the caller should surface
// as its own bug) and the minimized cell otherwise.
func Shrink(m sim.NamedFactory, cell Cell, failCheck func(ops []*model.Op, crash int) string) *Cell {
	runs := 0
	fails := func(c Cell) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		dis, _, err := checkCell(m, c, nil, failCheck)
		return err == nil && dis != nil
	}
	if !fails(cell) {
		return nil
	}

	cur := cell
	try := func(c Cell) bool {
		if fails(c) {
			cur = c
			return true
		}
		return false
	}

	// Phase 1: drop the unexecuted suffix.
	if cur.Crash < len(cur.History.Ops) {
		try(withOps(cur, cur.History.Ops[:cur.Crash]))
	}

	// Phase 2: ddmin over the executed operations.
	reduced := ddmin(cur.History.Ops, func(cand []*model.Op) bool {
		return fails(withOps(cur, cand))
	})
	try(withOps(cur, reduced))
	for removed := true; removed; {
		removed = false
		for i := 0; i < len(cur.History.Ops); i++ {
			cand := make([]*model.Op, 0, len(cur.History.Ops)-1)
			cand = append(cand, cur.History.Ops[:i]...)
			cand = append(cand, cur.History.Ops[i+1:]...)
			if try(withOps(cur, cand)) {
				removed = true
				break
			}
		}
	}

	// Phase 3: earliest failing crash point (the truncated prefix is the
	// whole history, so lowering the crash point also drops the suffix).
	for c := 0; c < cur.Crash; c++ {
		if try(withOps(cur, cur.History.Ops[:c])) {
			break
		}
	}

	// Phase 4: schedule simplification.
	quiet := cur
	quiet.Schedule.FlushProb, quiet.Schedule.ForceProb = 0, 0
	quiet.Schedule.CheckpointProb, quiet.Schedule.TruncateProb = 0, 0
	if !try(quiet) {
		for _, zero := range []func(*Schedule){
			func(s *Schedule) { s.TruncateProb = 0 },
			func(s *Schedule) { s.CheckpointProb = 0 },
			func(s *Schedule) { s.ForceProb = 0 },
			func(s *Schedule) { s.FlushProb = 0 },
		} {
			cand := cur
			zero(&cand.Schedule)
			try(cand)
		}
	}
	if cur.Schedule.Seed != 1 {
		cand := cur
		cand.Schedule.Seed = 1
		try(cand)
	}

	// Phase 5: nested-crash simplification — a failure that survives with
	// no crash-during-recovery schedule is not about supervision at all.
	if len(cur.NestedCrash) > 0 {
		cand := cur
		cand.NestedCrash = nil
		if !try(cand) {
			for len(cur.NestedCrash) > 1 {
				cand := cur
				cand.NestedCrash = cur.NestedCrash[:len(cur.NestedCrash)-1]
				if !try(cand) {
					break
				}
			}
		}
	}

	return &cur
}

// withOps rebinds the cell to a new operation list, crashing after all
// of it.
func withOps(c Cell, ops []*model.Op) Cell {
	c.History.Ops = ops
	c.Crash = len(ops)
	return c
}

// ddmin is the classic delta-debugging minimization over the op list:
// it repeatedly tries dropping chunks (testing each chunk's complement)
// at doubling granularity until no chunk can be dropped. The result
// still fails; single-op minimality is finished by the caller's greedy
// pass.
func ddmin(ops []*model.Op, fails func([]*model.Op) bool) []*model.Op {
	n := 2
	for len(ops) >= 2 && n <= len(ops) {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			complement := make([]*model.Op, 0, len(ops)-(end-start))
			complement = append(complement, ops[:start]...)
			complement = append(complement, ops[end:]...)
			if len(complement) > 0 && fails(complement) {
				ops = complement
				n = maxInt(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n == len(ops) {
				break
			}
			n = minInt(2*n, len(ops))
		}
	}
	return ops
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
